#include "linalg/smoothers.hpp"

#include <cmath>

#include "ad/kernels.hpp"

namespace mf::linalg {

void jacobi_sweep(Grid2D& u, const Grid2D& f, double h, double omega) {
  const double h2 = h * h;
  Grid2D next = u;
  // Jacobi reads the old iterate and writes a fresh grid: rows are
  // independent, so the sweep threads bitwise-deterministically.
  ad::kernels::parallel_for(u.ny() - 2, u.nx(), [&](int64_t begin, int64_t end) {
    for (int64_t j = begin + 1; j < end + 1; ++j) {
      for (int64_t i = 1; i < u.nx() - 1; ++i) {
        const double gs = 0.25 * (u.at(i + 1, j) + u.at(i - 1, j) +
                                  u.at(i, j + 1) + u.at(i, j - 1) + h2 * f.at(i, j));
        next.at(i, j) = (1 - omega) * u.at(i, j) + omega * gs;
      }
    }
  });
  u = next;
}

void gauss_seidel_sweep(Grid2D& u, const Grid2D& f, double h) {
  sor_sweep(u, f, h, 1.0);
}

void sor_sweep(Grid2D& u, const Grid2D& f, double h, double omega) {
  const double h2 = h * h;
  for (int64_t j = 1; j < u.ny() - 1; ++j) {
    for (int64_t i = 1; i < u.nx() - 1; ++i) {
      const double gs = 0.25 * (u.at(i + 1, j) + u.at(i - 1, j) +
                                u.at(i, j + 1) + u.at(i, j - 1) + h2 * f.at(i, j));
      u.at(i, j) += omega * (gs - u.at(i, j));
    }
  }
}

void red_black_gs_sweep(Grid2D& u, const Grid2D& f, double h) {
  const double h2 = h * h;
  // Within one color every update's stencil touches only the other color,
  // so rows thread without races and the result matches the serial sweep.
  for (int color = 0; color < 2; ++color) {
    ad::kernels::parallel_for(u.ny() - 2, u.nx() / 2, [&](int64_t begin, int64_t end) {
      for (int64_t j = begin + 1; j < end + 1; ++j) {
        for (int64_t i = 1 + ((j + color) & 1); i < u.nx() - 1; i += 2) {
          u.at(i, j) = 0.25 * (u.at(i + 1, j) + u.at(i - 1, j) + u.at(i, j + 1) +
                               u.at(i, j - 1) + h2 * f.at(i, j));
        }
      }
    });
  }
}

double sor_optimal_omega(int64_t n) {
  const double rho = std::cos(M_PI / static_cast<double>(n - 1));
  return 2.0 / (1.0 + std::sqrt(1.0 - rho * rho));
}

int smooth_to_tolerance(Grid2D& u, const Grid2D& f, double h, double tol,
                        int max_sweeps, double omega) {
  for (int s = 1; s <= max_sweeps; ++s) {
    sor_sweep(u, f, h, omega);
    if (residual_norm(u, f, h) < tol) return s;
  }
  return max_sweeps;
}

}  // namespace mf::linalg
