// General 5-point stencil operators over Grid2D fields: the operator
// family behind the scenario axis. The constant-coefficient Poisson path
// keeps its specialized kernels in grid2d/multigrid (bitwise-stability
// contract with earlier PRs); everything else — variable-coefficient
// diffusion, upwinded convection–diffusion, masked (non-rectangular)
// domains — routes through a StencilOperator carrying per-point
// coefficients and an activity mask.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/grid2d.hpp"

namespace mf::linalg {

/// A u at point (i,j) is
///   c·u_ij − w·u_{i−1,j} − e·u_{i+1,j} − s·u_{i,j−1} − n·u_{i,j+1}
/// with per-point coefficients. Points with active == 0 are Dirichlet
/// pins: their value is held, they contribute to neighbours' stencils
/// through the boundary terms but are never solved for. Grid boundary
/// points are implicitly inactive.
struct StencilOperator {
  int64_t nx = 0, ny = 0;
  double h = 1.0;
  std::vector<double> c, w, e, s, n;     // size nx*ny each
  std::vector<std::uint8_t> active;      // 1 = unknown, 0 = Dirichlet pin
  bool symmetric = true;                 // no advection → CG-safe

  int64_t numel() const { return nx * ny; }
  std::size_t idx(int64_t i, int64_t j) const {
    return static_cast<std::size_t>(j * nx + i);
  }
  bool is_active(int64_t i, int64_t j) const {
    return i > 0 && i < nx - 1 && j > 0 && j < ny - 1 && active[idx(i, j)] != 0;
  }

  /// Constant-coefficient −Δ_h: c = 4/h², neighbours 1/h². Matches the
  /// hand-written residual in grid2d.cpp up to floating-point
  /// association (the fast path groups the neighbour sum differently).
  static StencilOperator laplace(int64_t nx, int64_t ny, double h);

  /// −∇·(k(x)∇u) with arithmetic face averaging:
  /// w = (k_{i−1,j}+k_{i,j})/2h², etc.; c = w+e+s+n. k must be positive.
  static StencilOperator variable_diffusion(const Grid2D& k, double h);

  /// −∇·(k∇u) + v·∇u with first-order upwinding of the constant drift
  /// (vx, vy): the advective part adds |v|/h to the diagonal and the
  /// upwind neighbour, keeping the matrix an M-matrix (diagonally
  /// dominant) at any Péclet number.
  static StencilOperator convection_diffusion(const Grid2D& k, double vx,
                                              double vy, double h);

  /// Restrict the unknown set: points with mask == 0 become Dirichlet
  /// pins (value held at whatever u carries, typically 0). mask has one
  /// byte per grid point, row-major like Grid2D.
  void apply_mask(const std::vector<std::uint8_t>& mask);
};

/// r = f − A u on active points; r = 0 elsewhere (pins and boundary).
void stencil_residual(const StencilOperator& op, const Grid2D& u,
                      const Grid2D& f, Grid2D& r);

/// ||r||_2 / sqrt(#points), same normalization as residual_norm().
double stencil_residual_norm(const StencilOperator& op, const Grid2D& u,
                             const Grid2D& f);

/// One red-black Gauss–Seidel sweep (red then black) with relaxation
/// omega; omega = 1 is plain GS. Only active points update.
void stencil_rbgs_sweep(const StencilOperator& op, Grid2D& u, const Grid2D& f,
                        double omega = 1.0);

/// Preconditioned-free conjugate gradient for symmetric operators
/// (diffusion without advection). Returns iterations used, or -1 if the
/// tolerance was not reached. Throws if op.symmetric is false.
int64_t stencil_cg_solve(const StencilOperator& op, Grid2D& u, const Grid2D& f,
                         double tol = 1e-10, int64_t max_iters = 10000);

/// Generic direct-to-tolerance solve: CG when symmetric, SOR sweeps
/// otherwise. u's pinned/boundary values are the Dirichlet data.
/// Returns iterations used (sweeps for SOR), or -1 on non-convergence.
int64_t stencil_solve(const StencilOperator& op, Grid2D& u, const Grid2D& f,
                      double tol = 1e-10, int64_t max_iters = 20000);

}  // namespace mf::linalg
