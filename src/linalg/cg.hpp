// Conjugate gradients on the interior unknowns of -Δ_h u = f (SPD with
// Dirichlet boundaries). Provided as an independent cross-check of the
// multigrid solver.
#pragma once

#include "linalg/grid2d.hpp"

namespace mf::linalg {

struct CgResult {
  int iterations = 0;
  double final_residual = 0.0;
  bool converged = false;
};

CgResult cg_solve(Grid2D& u, const Grid2D& f, double h, double tol = 1e-10,
                  int max_iters = 10000);

}  // namespace mf::linalg
