#include "linalg/stencil.hpp"

#include <cmath>
#include <stdexcept>

#include "ad/kernels.hpp"

namespace mf::linalg {

namespace {

StencilOperator make_base(int64_t nx, int64_t ny, double h) {
  if (nx < 2 || ny < 2) {
    throw std::invalid_argument("StencilOperator: need >= 2 points");
  }
  StencilOperator op;
  op.nx = nx;
  op.ny = ny;
  op.h = h;
  const std::size_t numel = static_cast<std::size_t>(nx * ny);
  op.c.assign(numel, 0.0);
  op.w.assign(numel, 0.0);
  op.e.assign(numel, 0.0);
  op.s.assign(numel, 0.0);
  op.n.assign(numel, 0.0);
  op.active.assign(numel, 1);
  return op;
}

/// A u at an active interior point. Pinned/boundary neighbour values are
/// read straight from u: they carry the Dirichlet data.
inline double apply_at(const StencilOperator& op, const Grid2D& u, int64_t i,
                       int64_t j) {
  const std::size_t k = op.idx(i, j);
  return op.c[k] * u.at(i, j) - op.w[k] * u.at(i - 1, j) -
         op.e[k] * u.at(i + 1, j) - op.s[k] * u.at(i, j - 1) -
         op.n[k] * u.at(i, j + 1);
}

}  // namespace

StencilOperator StencilOperator::laplace(int64_t nx, int64_t ny, double h) {
  StencilOperator op = make_base(nx, ny, h);
  const double inv_h2 = 1.0 / (h * h);
  for (int64_t j = 1; j < ny - 1; ++j) {
    for (int64_t i = 1; i < nx - 1; ++i) {
      const std::size_t k = op.idx(i, j);
      op.c[k] = 4.0 * inv_h2;
      op.w[k] = op.e[k] = op.s[k] = op.n[k] = inv_h2;
    }
  }
  return op;
}

StencilOperator StencilOperator::variable_diffusion(const Grid2D& k, double h) {
  StencilOperator op = make_base(k.nx(), k.ny(), h);
  const double inv_h2 = 1.0 / (h * h);
  for (int64_t j = 1; j < op.ny - 1; ++j) {
    for (int64_t i = 1; i < op.nx - 1; ++i) {
      const std::size_t p = op.idx(i, j);
      const double kc = k.at(i, j);
      op.w[p] = 0.5 * (k.at(i - 1, j) + kc) * inv_h2;
      op.e[p] = 0.5 * (k.at(i + 1, j) + kc) * inv_h2;
      op.s[p] = 0.5 * (k.at(i, j - 1) + kc) * inv_h2;
      op.n[p] = 0.5 * (k.at(i, j + 1) + kc) * inv_h2;
      op.c[p] = op.w[p] + op.e[p] + op.s[p] + op.n[p];
    }
  }
  return op;
}

StencilOperator StencilOperator::convection_diffusion(const Grid2D& k,
                                                      double vx, double vy,
                                                      double h) {
  StencilOperator op = variable_diffusion(k, h);
  op.symmetric = (vx == 0.0 && vy == 0.0);
  const double inv_h = 1.0 / h;
  for (int64_t j = 1; j < op.ny - 1; ++j) {
    for (int64_t i = 1; i < op.nx - 1; ++i) {
      const std::size_t p = op.idx(i, j);
      if (vx >= 0.0) {
        op.c[p] += vx * inv_h;
        op.w[p] += vx * inv_h;
      } else {
        op.c[p] += -vx * inv_h;
        op.e[p] += -vx * inv_h;
      }
      if (vy >= 0.0) {
        op.c[p] += vy * inv_h;
        op.s[p] += vy * inv_h;
      } else {
        op.c[p] += -vy * inv_h;
        op.n[p] += -vy * inv_h;
      }
    }
  }
  return op;
}

void StencilOperator::apply_mask(const std::vector<std::uint8_t>& mask) {
  if (static_cast<int64_t>(mask.size()) != numel()) {
    throw std::invalid_argument("StencilOperator::apply_mask: size mismatch");
  }
  for (std::size_t p = 0; p < mask.size(); ++p) {
    if (mask[p] == 0) active[p] = 0;
  }
}

void stencil_residual(const StencilOperator& op, const Grid2D& u,
                      const Grid2D& f, Grid2D& r) {
  r.fill(0.0);
  ad::kernels::parallel_for(op.ny - 2, op.nx, [&](int64_t begin, int64_t end) {
    for (int64_t j = begin + 1; j < end + 1; ++j) {
      for (int64_t i = 1; i < op.nx - 1; ++i) {
        if (op.active[op.idx(i, j)] == 0) continue;
        r.at(i, j) = f.at(i, j) - apply_at(op, u, i, j);
      }
    }
  });
}

double stencil_residual_norm(const StencilOperator& op, const Grid2D& u,
                             const Grid2D& f) {
  Grid2D r(op.nx, op.ny);
  stencil_residual(op, u, f, r);
  double sum = 0;
  for (double v : r.vec()) sum += v * v;
  return std::sqrt(sum / static_cast<double>(op.numel()));
}

void stencil_rbgs_sweep(const StencilOperator& op, Grid2D& u, const Grid2D& f,
                        double omega) {
  for (int color = 0; color < 2; ++color) {
    for (int64_t j = 1; j < op.ny - 1; ++j) {
      for (int64_t i = 1 + ((j + color) & 1); i < op.nx - 1; i += 2) {
        const std::size_t p = op.idx(i, j);
        if (op.active[p] == 0) continue;
        const double rhs = f.at(i, j) + op.w[p] * u.at(i - 1, j) +
                           op.e[p] * u.at(i + 1, j) + op.s[p] * u.at(i, j - 1) +
                           op.n[p] * u.at(i, j + 1);
        u.at(i, j) += omega * (rhs / op.c[p] - u.at(i, j));
      }
    }
  }
}

int64_t stencil_cg_solve(const StencilOperator& op, Grid2D& u, const Grid2D& f,
                         double tol, int64_t max_iters) {
  if (!op.symmetric) {
    throw std::invalid_argument("stencil_cg_solve: operator not symmetric");
  }
  const int64_t nx = op.nx, ny = op.ny;
  // r = f - A u on active points (boundary/pinned contributions folded in
  // through u's held values).
  Grid2D r(nx, ny), p(nx, ny), ap(nx, ny);
  stencil_residual(op, u, f, r);
  p.vec() = r.vec();
  double rr = 0;
  for (double v : r.vec()) rr += v * v;
  const double stop = tol * tol * static_cast<double>(op.numel());
  if (rr <= stop) return 0;
  for (int64_t it = 1; it <= max_iters; ++it) {
    // ap = A p with p's inactive entries (which are zero) acting as
    // homogeneous Dirichlet data — exactly the restricted operator.
    ap.fill(0.0);
    for (int64_t j = 1; j < ny - 1; ++j) {
      for (int64_t i = 1; i < nx - 1; ++i) {
        if (op.active[op.idx(i, j)] == 0) continue;
        ap.at(i, j) = apply_at(op, p, i, j);
      }
    }
    double pap = 0;
    for (std::size_t k = 0; k < p.vec().size(); ++k) {
      pap += p.vec()[k] * ap.vec()[k];
    }
    if (pap == 0.0) return -1;
    const double alpha = rr / pap;
    double rr_new = 0;
    for (std::size_t k = 0; k < u.vec().size(); ++k) {
      u.vec()[k] += alpha * p.vec()[k];
      r.vec()[k] -= alpha * ap.vec()[k];
      rr_new += r.vec()[k] * r.vec()[k];
    }
    if (rr_new <= stop) return it;
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t k = 0; k < p.vec().size(); ++k) {
      p.vec()[k] = r.vec()[k] + beta * p.vec()[k];
    }
  }
  return -1;
}

int64_t stencil_solve(const StencilOperator& op, Grid2D& u, const Grid2D& f,
                      double tol, int64_t max_iters) {
  if (op.symmetric) return stencil_cg_solve(op, u, f, tol, max_iters);
  // Nonsymmetric (upwinded advection): plain Gauss–Seidel sweeps. The
  // upwind discretization is an M-matrix with a strengthened diagonal,
  // so GS converges unconditionally and faster than on pure Poisson;
  // over-relaxation is not provably safe here, so omega stays 1.
  const int64_t check_every = 8;
  for (int64_t it = 1; it <= max_iters; ++it) {
    stencil_rbgs_sweep(op, u, f, 1.0);
    if (it % check_every == 0 &&
        stencil_residual_norm(op, u, f) <= tol) {
      return it;
    }
  }
  return stencil_residual_norm(op, u, f) <= tol ? max_iters : -1;
}

}  // namespace mf::linalg
