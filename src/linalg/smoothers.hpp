// Stationary iterative methods for -Δ_h u = f with Dirichlet boundaries
// held in the edge entries of u: Jacobi, Gauss-Seidel, SOR, red-black GS.
#pragma once

#include "linalg/grid2d.hpp"

namespace mf::linalg {

/// One weighted-Jacobi sweep; omega = 1 is plain Jacobi, 4/5 is the
/// standard multigrid smoother weight.
void jacobi_sweep(Grid2D& u, const Grid2D& f, double h, double omega = 1.0);

/// One lexicographic Gauss-Seidel sweep.
void gauss_seidel_sweep(Grid2D& u, const Grid2D& f, double h);

/// One SOR sweep with relaxation factor omega in (0, 2).
void sor_sweep(Grid2D& u, const Grid2D& f, double h, double omega);

/// One red-black Gauss-Seidel sweep (the order-independent smoother used
/// inside the multigrid V-cycle).
void red_black_gs_sweep(Grid2D& u, const Grid2D& f, double h);

/// Optimal SOR omega for the 5-point Laplacian on an n-point grid side.
double sor_optimal_omega(int64_t n);

/// Iterate `sweep`-style smoothing until the residual norm drops below
/// `tol` or `max_sweeps` is reached; returns sweeps used.
int smooth_to_tolerance(Grid2D& u, const Grid2D& f, double h, double tol,
                        int max_sweeps, double omega);

}  // namespace mf::linalg
