// Uniform 2-D grid fields and the 5-point Laplacian, shared by the
// numerical solvers (the pyAMG substitute used for ground truth) and the
// Mosaic Flow lattice bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

namespace mf::linalg {

/// A scalar field sampled on an nx x ny grid of *points* (not cells),
/// stored row-major with y as the slow axis: value(i, j) with
/// i in [0, nx), j in [0, ny). Physical spacing is uniform and identical
/// in both directions.
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(int64_t nx, int64_t ny, double fill = 0.0);

  int64_t nx() const { return nx_; }
  int64_t ny() const { return ny_; }
  int64_t numel() const { return nx_ * ny_; }

  double& at(int64_t i, int64_t j) { return v_[static_cast<std::size_t>(j * nx_ + i)]; }
  double at(int64_t i, int64_t j) const { return v_[static_cast<std::size_t>(j * nx_ + i)]; }

  double* data() { return v_.data(); }
  const double* data() const { return v_.data(); }
  std::vector<double>& vec() { return v_; }
  const std::vector<double>& vec() const { return v_; }

  void fill(double value);
  /// Zero interior points, keeping boundary values.
  void zero_interior();

  /// Max |a - b| over all points.
  static double max_abs_diff(const Grid2D& a, const Grid2D& b);
  /// Mean |a - b| over all points.
  static double mean_abs_diff(const Grid2D& a, const Grid2D& b);

 private:
  int64_t nx_ = 0, ny_ = 0;
  std::vector<double> v_;
};

/// Perimeter ordering convention used across the library (training data,
/// SDNet inputs, MFP lattice): counter-clockwise starting at (0,0) —
/// bottom edge left-to-right, right edge bottom-to-top, top edge
/// right-to-left, left edge top-to-bottom. Each corner appears once, so a
/// square (m+1)x(m+1)-point grid yields 4m values.
std::vector<double> extract_perimeter(const Grid2D& g);

/// Write perimeter values (same ordering) onto the edges of `g`.
void apply_perimeter(Grid2D& g, const std::vector<double>& boundary);

/// Number of perimeter points for an nx x ny point grid.
int64_t perimeter_size(int64_t nx, int64_t ny);

/// Physical (x, y) coordinates of each perimeter point, unit spacing h.
std::vector<std::pair<double, double>> perimeter_coords(int64_t nx, int64_t ny,
                                                        double h);

/// r = f - A u with A = -Δ_h (5-point stencil), evaluated on interior
/// points; boundary entries of r are zero.
void residual(const Grid2D& u, const Grid2D& f, double h, Grid2D& r);

/// ||r||_2 normalized by point count.
double residual_norm(const Grid2D& u, const Grid2D& f, double h);

}  // namespace mf::linalg
