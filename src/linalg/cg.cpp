#include "linalg/cg.hpp"

#include <cmath>
#include <vector>

namespace mf::linalg {

namespace {

/// y = A x on interior unknowns, A = -Δ_h, with zero Dirichlet halo.
void apply_A(const Grid2D& x, double h, Grid2D& y) {
  const double inv_h2 = 1.0 / (h * h);
  for (int64_t j = 1; j < x.ny() - 1; ++j) {
    for (int64_t i = 1; i < x.nx() - 1; ++i) {
      y.at(i, j) = (4.0 * x.at(i, j) - x.at(i + 1, j) - x.at(i - 1, j) -
                    x.at(i, j + 1) - x.at(i, j - 1)) * inv_h2;
    }
  }
}

double dot_interior(const Grid2D& a, const Grid2D& b) {
  double s = 0;
  for (int64_t j = 1; j < a.ny() - 1; ++j)
    for (int64_t i = 1; i < a.nx() - 1; ++i) s += a.at(i, j) * b.at(i, j);
  return s;
}

}  // namespace

CgResult cg_solve(Grid2D& u, const Grid2D& f, double h, double tol,
                  int max_iters) {
  CgResult res;
  const int64_t nx = u.nx(), ny = u.ny();
  // r = f - A u, with the boundary contribution of u folded into r.
  Grid2D r(nx, ny), p(nx, ny), Ap(nx, ny);
  residual(u, f, h, r);
  p = r;
  double rr = dot_interior(r, r);
  const double n_int = static_cast<double>((nx - 2) * (ny - 2));
  for (int it = 1; it <= max_iters; ++it) {
    apply_A(p, h, Ap);
    // The boundary of p is zero except where it borders u's Dirichlet
    // values; those were folded into the initial residual, and p keeps
    // zero edges, so apply_A is exact for the interior system.
    const double pAp = dot_interior(p, Ap);
    if (pAp <= 0) break;  // numerical breakdown
    const double alpha = rr / pAp;
    for (int64_t j = 1; j < ny - 1; ++j)
      for (int64_t i = 1; i < nx - 1; ++i) {
        u.at(i, j) += alpha * p.at(i, j);
        r.at(i, j) -= alpha * Ap.at(i, j);
      }
    const double rr_new = dot_interior(r, r);
    res.iterations = it;
    res.final_residual = std::sqrt(rr_new / n_int);
    if (res.final_residual < tol) {
      res.converged = true;
      break;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    for (int64_t j = 1; j < ny - 1; ++j)
      for (int64_t i = 1; i < nx - 1; ++i)
        p.at(i, j) = r.at(i, j) + beta * p.at(i, j);
  }
  return res;
}

}  // namespace mf::linalg
