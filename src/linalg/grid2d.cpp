#include "linalg/grid2d.hpp"

#include <cmath>
#include <stdexcept>

#include "ad/kernels.hpp"

namespace mf::linalg {

Grid2D::Grid2D(int64_t nx, int64_t ny, double fill)
    : nx_(nx), ny_(ny), v_(static_cast<std::size_t>(nx * ny), fill) {
  if (nx < 2 || ny < 2) throw std::invalid_argument("Grid2D: need >= 2 points");
}

void Grid2D::fill(double value) {
  std::fill(v_.begin(), v_.end(), value);
}

void Grid2D::zero_interior() {
  for (int64_t j = 1; j < ny_ - 1; ++j)
    for (int64_t i = 1; i < nx_ - 1; ++i) at(i, j) = 0.0;
}

double Grid2D::max_abs_diff(const Grid2D& a, const Grid2D& b) {
  double m = 0;
  for (std::size_t k = 0; k < a.v_.size(); ++k) {
    m = std::max(m, std::abs(a.v_[k] - b.v_[k]));
  }
  return m;
}

double Grid2D::mean_abs_diff(const Grid2D& a, const Grid2D& b) {
  double s = 0;
  for (std::size_t k = 0; k < a.v_.size(); ++k) s += std::abs(a.v_[k] - b.v_[k]);
  return s / static_cast<double>(a.v_.size());
}

int64_t perimeter_size(int64_t nx, int64_t ny) { return 2 * (nx - 1) + 2 * (ny - 1); }

namespace {

/// Visit perimeter points in the canonical order, calling fn(i, j, k)
/// where k is the position in the boundary vector.
template <typename F>
void for_each_perimeter(int64_t nx, int64_t ny, F&& fn) {
  int64_t k = 0;
  for (int64_t i = 0; i < nx - 1; ++i) fn(i, int64_t{0}, k++);           // bottom
  for (int64_t j = 0; j < ny - 1; ++j) fn(nx - 1, j, k++);               // right
  for (int64_t i = nx - 1; i > 0; --i) fn(i, ny - 1, k++);               // top
  for (int64_t j = ny - 1; j > 0; --j) fn(int64_t{0}, j, k++);           // left
}

}  // namespace

std::vector<double> extract_perimeter(const Grid2D& g) {
  std::vector<double> out(static_cast<std::size_t>(perimeter_size(g.nx(), g.ny())));
  for_each_perimeter(g.nx(), g.ny(), [&](int64_t i, int64_t j, int64_t k) {
    out[static_cast<std::size_t>(k)] = g.at(i, j);
  });
  return out;
}

void apply_perimeter(Grid2D& g, const std::vector<double>& boundary) {
  if (static_cast<int64_t>(boundary.size()) != perimeter_size(g.nx(), g.ny())) {
    throw std::invalid_argument("apply_perimeter: size mismatch");
  }
  for_each_perimeter(g.nx(), g.ny(), [&](int64_t i, int64_t j, int64_t k) {
    g.at(i, j) = boundary[static_cast<std::size_t>(k)];
  });
}

std::vector<std::pair<double, double>> perimeter_coords(int64_t nx, int64_t ny,
                                                        double h) {
  std::vector<std::pair<double, double>> out(
      static_cast<std::size_t>(perimeter_size(nx, ny)));
  for_each_perimeter(nx, ny, [&](int64_t i, int64_t j, int64_t k) {
    out[static_cast<std::size_t>(k)] = {i * h, j * h};
  });
  return out;
}

void residual(const Grid2D& u, const Grid2D& f, double h, Grid2D& r) {
  const double inv_h2 = 1.0 / (h * h);
  r.fill(0.0);
  // Rows write disjoint slices of r: threads freely.
  ad::kernels::parallel_for(u.ny() - 2, u.nx(), [&](int64_t begin, int64_t end) {
    for (int64_t j = begin + 1; j < end + 1; ++j) {
      for (int64_t i = 1; i < u.nx() - 1; ++i) {
        const double lap = (u.at(i + 1, j) + u.at(i - 1, j) + u.at(i, j + 1) +
                            u.at(i, j - 1) - 4.0 * u.at(i, j)) * inv_h2;
        // A u = -Δu; r = f - A u = f + Δu
        r.at(i, j) = f.at(i, j) + lap;
      }
    }
  });
}

double residual_norm(const Grid2D& u, const Grid2D& f, double h) {
  Grid2D r(u.nx(), u.ny());
  residual(u, f, h, r);
  double s = 0;
  for (double v : r.vec()) s += v * v;
  return std::sqrt(s / static_cast<double>(u.numel()));
}

}  // namespace mf::linalg
