// Geometric multigrid V-cycle for -Δ_h u = f with Dirichlet boundaries.
// This is our substitute for pyAMG (Sec. 5.1 of the paper): both produce
// the discrete harmonic solution used as training data and ground truth.
#pragma once

#include "linalg/grid2d.hpp"

namespace mf::linalg {

struct MultigridOptions {
  int pre_smooth = 2;
  int post_smooth = 2;
  int max_cycles = 60;
  double tol = 1e-11;          // residual norm target
  int64_t coarsest = 3;        // direct-ish solve below this many points
};

struct MultigridResult {
  int cycles = 0;
  double final_residual = 0.0;
  bool converged = false;
};

/// Solve in place. `u` carries the Dirichlet boundary values on its edges;
/// the interior is used as the initial guess. Grid sides must satisfy
/// (n - 1) divisible by 2 down to `coarsest` for full efficiency; sides
/// that stop coarsening early fall back to extra smoothing on the
/// coarsest level reached.
MultigridResult multigrid_solve(Grid2D& u, const Grid2D& f, double h,
                                const MultigridOptions& opts = {});

/// Convenience: Laplace (f = 0) with boundary already set on u's edges.
MultigridResult solve_laplace_mg(Grid2D& u, double h,
                                 const MultigridOptions& opts = {});

/// One V-cycle (exposed for convergence-factor tests).
void v_cycle(Grid2D& u, const Grid2D& f, double h, const MultigridOptions& opts);

}  // namespace mf::linalg
