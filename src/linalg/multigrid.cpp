#include "linalg/multigrid.hpp"

#include <cmath>

#include "linalg/smoothers.hpp"

namespace mf::linalg {

namespace {

bool can_coarsen(int64_t n, int64_t coarsest) {
  return (n - 1) % 2 == 0 && (n - 1) / 2 + 1 >= coarsest;
}

/// Full-weighting restriction of the residual to the coarse grid.
Grid2D restrict_full_weighting(const Grid2D& fine) {
  const int64_t ncx = (fine.nx() - 1) / 2 + 1;
  const int64_t ncy = (fine.ny() - 1) / 2 + 1;
  Grid2D coarse(ncx, ncy);
  for (int64_t J = 1; J < ncy - 1; ++J) {
    for (int64_t I = 1; I < ncx - 1; ++I) {
      const int64_t i = 2 * I, j = 2 * J;
      coarse.at(I, J) =
          0.25 * fine.at(i, j) +
          0.125 * (fine.at(i - 1, j) + fine.at(i + 1, j) + fine.at(i, j - 1) +
                   fine.at(i, j + 1)) +
          0.0625 * (fine.at(i - 1, j - 1) + fine.at(i + 1, j - 1) +
                    fine.at(i - 1, j + 1) + fine.at(i + 1, j + 1));
    }
  }
  return coarse;
}

/// Bilinear prolongation; adds the coarse correction into the fine grid
/// interior.
void prolong_and_correct(Grid2D& fine, const Grid2D& coarse) {
  const int64_t nfx = fine.nx(), nfy = fine.ny();
  for (int64_t j = 1; j < nfy - 1; ++j) {
    for (int64_t i = 1; i < nfx - 1; ++i) {
      const int64_t I = i / 2, J = j / 2;
      double c;
      if (i % 2 == 0 && j % 2 == 0) {
        c = coarse.at(I, J);
      } else if (i % 2 == 1 && j % 2 == 0) {
        c = 0.5 * (coarse.at(I, J) + coarse.at(I + 1, J));
      } else if (i % 2 == 0 && j % 2 == 1) {
        c = 0.5 * (coarse.at(I, J) + coarse.at(I, J + 1));
      } else {
        c = 0.25 * (coarse.at(I, J) + coarse.at(I + 1, J) +
                    coarse.at(I, J + 1) + coarse.at(I + 1, J + 1));
      }
      fine.at(i, j) += c;
    }
  }
}

}  // namespace

void v_cycle(Grid2D& u, const Grid2D& f, double h, const MultigridOptions& opts) {
  const bool coarsen =
      can_coarsen(u.nx(), opts.coarsest) && can_coarsen(u.ny(), opts.coarsest);
  if (!coarsen) {
    // Coarsest level (or odd-sized grid): solve nearly exactly by SOR.
    const double omega = sor_optimal_omega(std::max(u.nx(), u.ny()));
    for (int s = 0; s < 100; ++s) sor_sweep(u, f, h, omega);
    return;
  }
  for (int s = 0; s < opts.pre_smooth; ++s) red_black_gs_sweep(u, f, h);
  Grid2D r(u.nx(), u.ny());
  residual(u, f, h, r);
  Grid2D rc = restrict_full_weighting(r);
  Grid2D ec(rc.nx(), rc.ny());  // zero initial guess, zero boundary
  v_cycle(ec, rc, 2 * h, opts);
  prolong_and_correct(u, ec);
  for (int s = 0; s < opts.post_smooth; ++s) red_black_gs_sweep(u, f, h);
}

MultigridResult multigrid_solve(Grid2D& u, const Grid2D& f, double h,
                                const MultigridOptions& opts) {
  MultigridResult res;
  for (int c = 1; c <= opts.max_cycles; ++c) {
    v_cycle(u, f, h, opts);
    res.cycles = c;
    res.final_residual = residual_norm(u, f, h);
    if (res.final_residual < opts.tol) {
      res.converged = true;
      break;
    }
  }
  return res;
}

MultigridResult solve_laplace_mg(Grid2D& u, double h,
                                 const MultigridOptions& opts) {
  Grid2D f(u.nx(), u.ny(), 0.0);
  return multigrid_solve(u, f, h, opts);
}

}  // namespace mf::linalg
