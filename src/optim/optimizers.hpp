// First-order optimizers. LAMB is the one the paper uses at scale
// (Sec. 5.2): layerwise trust ratios keep large-batch data-parallel
// training stable where AdamW degrades.
#pragma once

#include <memory>
#include <vector>

#include "ad/program.hpp"
#include "ad/tensor.hpp"

namespace mf::optim {

using ad::Tensor;

class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params, double lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  /// Apply one update from the gradients currently stored on the params.
  virtual void step() = 0;

  /// True when step() records itself into an enclosing ad::Program
  /// capture (see the prog::on_adam_* hooks), so a compiled training step
  /// can replay the parameter update in-plan. Optimizers returning false
  /// must be stepped eagerly after each replay.
  virtual bool plan_capturable() const { return false; }

  /// Flatten the optimizer's internal state (step counter, moments,
  /// velocities) into doubles for checkpointing; state_from restores it
  /// bitwise. The layout is optimizer-specific but stable for a given
  /// parameter list; state_from throws on a size mismatch.
  virtual std::vector<double> state_to() const { return {}; }
  virtual void state_from(const std::vector<double>& state);

  void zero_grad();
  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }
  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
  double lr_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);
  void step() override;
  std::vector<double> state_to() const override;
  void state_from(const std::vector<double>& state) override;

 private:
  double momentum_, weight_decay_;
  std::vector<std::vector<double>> velocity_;
};

/// Adam / AdamW. With `decoupled_weight_decay` the decay is applied to the
/// weights directly (AdamW, Loshchilov & Hutter) instead of the gradient.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0,
       bool decoupled_weight_decay = false);
  void step() override;
  bool plan_capturable() const override { return true; }
  std::vector<double> state_to() const override;  // [t, m..., v...]
  void state_from(const std::vector<double>& state) override;

  // Optimizer state, exposed for the parity tests (the compiled in-plan
  // update must track the eager moments bitwise).
  int64_t steps_taken() const { return t_; }
  const std::vector<std::vector<double>>& moments_m() const { return m_; }
  const std::vector<std::vector<double>>& moments_v() const { return v_; }

 protected:
  double beta1_, beta2_, eps_, weight_decay_;
  bool decoupled_;
  int64_t t_ = 0;
  std::vector<std::vector<double>> m_, v_;
  /// Live state the captured plan reads at replay (lr, step counter, bias
  /// corrections); see prog::AdamPlanState. Valid as long as `this` is.
  ad::prog::AdamPlanState plan_state_;
};

/// LAMB (You et al., 2020): Adam direction rescaled per parameter tensor by
/// the trust ratio ||w|| / ||update||. The trust-ratio norms make the
/// update non-elementwise, so it captures as one whole-tensor plan step
/// per parameter (prog::on_lamb_param -> sfn::lamb_param_update) rather
/// than an elementwise chain; replayed and eager steps are bitwise
/// interchangeable.
class Lamb final : public Adam {
 public:
  Lamb(std::vector<Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-6, double weight_decay = 0.0);
  void step() override;
  bool plan_capturable() const override { return true; }
};

}  // namespace mf::optim
