#include "optim/optimizers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ad/scalar_fns.hpp"

namespace mf::optim {

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

void Optimizer::state_from(const std::vector<double>& state) {
  if (!state.empty()) {
    throw std::runtime_error(
        "Optimizer::state_from: this optimizer is stateless but the "
        "checkpoint carries " +
        std::to_string(state.size()) + " state values");
  }
}

Sgd::Sgd(std::vector<Tensor> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(static_cast<std::size_t>(params_[i].numel()), 0.0);
  }
}

void Sgd::step() {
  // No in-plan representation (and none planned: SGD is not on the
  // paper's training path). Poison any enclosing capture so the caller
  // ends up with no plan — and stays eager — instead of replaying a
  // forward/backward plan whose parameter update is silently missing.
  if (ad::prog::capturing()) ad::prog::on_uncapturable();
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    Tensor g = p.grad();
    if (!g.defined()) continue;
    for (int64_t j = 0; j < p.numel(); ++j) {
      double gj = g.flat(j) + weight_decay_ * p.flat(j);
      if (momentum_ != 0.0) {
        velocity_[i][static_cast<std::size_t>(j)] =
            momentum_ * velocity_[i][static_cast<std::size_t>(j)] + gj;
        gj = velocity_[i][static_cast<std::size_t>(j)];
      }
      p.flat(j) -= lr_ * gj;
    }
  }
}

std::vector<double> Sgd::state_to() const {
  std::vector<double> s;
  for (const auto& v : velocity_) s.insert(s.end(), v.begin(), v.end());
  return s;
}

void Sgd::state_from(const std::vector<double>& state) {
  std::size_t total = 0;
  for (const auto& v : velocity_) total += v.size();
  if (state.size() != total) {
    throw std::runtime_error("Sgd::state_from: state size mismatch (have " +
                             std::to_string(state.size()) + ", need " +
                             std::to_string(total) + ")");
  }
  std::size_t off = 0;
  for (auto& v : velocity_) {
    std::copy(state.begin() + static_cast<std::ptrdiff_t>(off),
              state.begin() + static_cast<std::ptrdiff_t>(off + v.size()),
              v.begin());
    off += v.size();
  }
}

Adam::Adam(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps, double weight_decay, bool decoupled_weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay),
      decoupled_(decoupled_weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(static_cast<std::size_t>(params_[i].numel()), 0.0);
    v_[i].assign(static_cast<std::size_t>(params_[i].numel()), 0.0);
  }
}

void Adam::step() {
  ++t_;
  // One pass through the shared sfn::adam_update — the exact expression
  // the compiled program replays, so in-plan and eager updates are
  // bitwise interchangeable.
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const bool capturing = ad::prog::capturing();
  if (capturing) {
    plan_state_.lr = &lr_;
    plan_state_.t = &t_;
    plan_state_.beta1 = beta1_;
    plan_state_.beta2 = beta2_;
    plan_state_.eps = eps_;
    plan_state_.weight_decay = weight_decay_;
    plan_state_.decoupled = decoupled_;
    ad::prog::on_adam_tick(&plan_state_);
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    Tensor g = p.grad();
    if (!g.defined()) continue;
    if (capturing) {
      ad::prog::on_adam_param(&plan_state_, p, g, m_[i].data(), v_[i].data());
    }
    for (int64_t j = 0; j < p.numel(); ++j) {
      ad::sfn::adam_update(p.flat(j), g.flat(j), m_[i][static_cast<std::size_t>(j)],
                       v_[i][static_cast<std::size_t>(j)], lr_, beta1_, beta2_,
                       bc1, bc2, eps_, weight_decay_, decoupled_);
    }
  }
}

std::vector<double> Adam::state_to() const {
  // [t, all first moments, all second moments] — t stored as a double
  // (exact for any reachable step count).
  std::vector<double> s;
  s.push_back(static_cast<double>(t_));
  for (const auto& m : m_) s.insert(s.end(), m.begin(), m.end());
  for (const auto& v : v_) s.insert(s.end(), v.begin(), v.end());
  return s;
}

void Adam::state_from(const std::vector<double>& state) {
  std::size_t total = 0;
  for (const auto& m : m_) total += m.size();
  if (state.size() != 1 + 2 * total) {
    throw std::runtime_error("Adam::state_from: state size mismatch (have " +
                             std::to_string(state.size()) + ", need " +
                             std::to_string(1 + 2 * total) + ")");
  }
  t_ = static_cast<int64_t>(state[0]);
  std::size_t off = 1;
  for (auto& m : m_) {
    std::copy(state.begin() + static_cast<std::ptrdiff_t>(off),
              state.begin() + static_cast<std::ptrdiff_t>(off + m.size()),
              m.begin());
    off += m.size();
  }
  for (auto& v : v_) {
    std::copy(state.begin() + static_cast<std::ptrdiff_t>(off),
              state.begin() + static_cast<std::ptrdiff_t>(off + v.size()),
              v.begin());
    off += v.size();
  }
}

Lamb::Lamb(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Adam(std::move(params), lr, beta1, beta2, eps, weight_decay,
           /*decoupled_weight_decay=*/true) {}

void Lamb::step() {
  ++t_;
  // One sfn::lamb_param_update call per parameter — the exact whole-tensor
  // expression the compiled program's kLambParam step replays, so in-plan
  // and eager updates are bitwise interchangeable (same Adam direction,
  // same norm accumulation order, same trust-scaled write).
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const bool capturing = ad::prog::capturing();
  if (capturing) {
    plan_state_.lr = &lr_;
    plan_state_.t = &t_;
    plan_state_.beta1 = beta1_;
    plan_state_.beta2 = beta2_;
    plan_state_.eps = eps_;
    plan_state_.weight_decay = weight_decay_;
    plan_state_.decoupled = true;
    ad::prog::on_adam_tick(&plan_state_);
  }
  std::vector<double> dir;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    Tensor g = p.grad();
    if (!g.defined()) continue;
    if (capturing) {
      ad::prog::on_lamb_param(&plan_state_, p, g, m_[i].data(), v_[i].data());
    }
    ad::sfn::lamb_param_update(p.data(), g.data(), m_[i].data(), v_[i].data(),
                               p.numel(), dir, lr_, beta1_, beta2_, bc1, bc2,
                               eps_, weight_decay_);
  }
}

}  // namespace mf::optim
