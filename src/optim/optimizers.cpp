#include "optim/optimizers.hpp"

#include <cmath>
#include <stdexcept>

#include "ad/scalar_fns.hpp"

namespace mf::optim {

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

Sgd::Sgd(std::vector<Tensor> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(static_cast<std::size_t>(params_[i].numel()), 0.0);
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    Tensor g = p.grad();
    if (!g.defined()) continue;
    for (int64_t j = 0; j < p.numel(); ++j) {
      double gj = g.flat(j) + weight_decay_ * p.flat(j);
      if (momentum_ != 0.0) {
        velocity_[i][static_cast<std::size_t>(j)] =
            momentum_ * velocity_[i][static_cast<std::size_t>(j)] + gj;
        gj = velocity_[i][static_cast<std::size_t>(j)];
      }
      p.flat(j) -= lr_ * gj;
    }
  }
}

Adam::Adam(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps, double weight_decay, bool decoupled_weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay),
      decoupled_(decoupled_weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(static_cast<std::size_t>(params_[i].numel()), 0.0);
    v_[i].assign(static_cast<std::size_t>(params_[i].numel()), 0.0);
  }
}

void Adam::adam_direction(std::size_t i, std::vector<double>& out) {
  Tensor& p = params_[i];
  Tensor g = p.grad();
  out.assign(static_cast<std::size_t>(p.numel()), 0.0);
  if (!g.defined()) return;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (int64_t j = 0; j < p.numel(); ++j) {
    double gj = g.flat(j);
    if (!decoupled_) gj += weight_decay_ * p.flat(j);
    auto& mj = m_[i][static_cast<std::size_t>(j)];
    auto& vj = v_[i][static_cast<std::size_t>(j)];
    mj = beta1_ * mj + (1 - beta1_) * gj;
    vj = beta2_ * vj + (1 - beta2_) * gj * gj;
    const double mhat = mj / bc1;
    const double vhat = vj / bc2;
    out[static_cast<std::size_t>(j)] = mhat / (std::sqrt(vhat) + eps_);
  }
}

void Adam::step() {
  ++t_;
  // Same element-wise arithmetic as adam_direction + the apply loop, in
  // one pass through the shared sfn::adam_update — the exact expression
  // the compiled program replays, so in-plan and eager updates are
  // bitwise interchangeable.
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const bool capturing = ad::prog::capturing();
  if (capturing) {
    plan_state_.lr = &lr_;
    plan_state_.t = &t_;
    plan_state_.beta1 = beta1_;
    plan_state_.beta2 = beta2_;
    plan_state_.eps = eps_;
    plan_state_.weight_decay = weight_decay_;
    plan_state_.decoupled = decoupled_;
    ad::prog::on_adam_tick(&plan_state_);
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    Tensor g = p.grad();
    if (!g.defined()) continue;
    if (capturing) {
      ad::prog::on_adam_param(&plan_state_, p, g, m_[i].data(), v_[i].data());
    }
    for (int64_t j = 0; j < p.numel(); ++j) {
      ad::sfn::adam_update(p.flat(j), g.flat(j), m_[i][static_cast<std::size_t>(j)],
                       v_[i][static_cast<std::size_t>(j)], lr_, beta1_, beta2_,
                       bc1, bc2, eps_, weight_decay_, decoupled_);
    }
  }
}

Lamb::Lamb(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Adam(std::move(params), lr, beta1, beta2, eps, weight_decay,
           /*decoupled_weight_decay=*/true) {}

void Lamb::step() {
  ++t_;
  std::vector<double> dir;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.grad().defined()) continue;
    adam_direction(i, dir);
    // r = adam direction + decoupled weight decay
    double w_norm = 0.0, r_norm = 0.0;
    for (int64_t j = 0; j < p.numel(); ++j) {
      dir[static_cast<std::size_t>(j)] += weight_decay_ * p.flat(j);
      w_norm += p.flat(j) * p.flat(j);
      const double r = dir[static_cast<std::size_t>(j)];
      r_norm += r * r;
    }
    w_norm = std::sqrt(w_norm);
    r_norm = std::sqrt(r_norm);
    // Layerwise trust ratio; 1 when either norm degenerates (LAMB paper).
    const double trust = (w_norm > 0 && r_norm > 0) ? w_norm / r_norm : 1.0;
    for (int64_t j = 0; j < p.numel(); ++j) {
      p.flat(j) -= lr_ * trust * dir[static_cast<std::size_t>(j)];
    }
  }
}

}  // namespace mf::optim
