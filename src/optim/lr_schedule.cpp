#include "optim/lr_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mf::optim {

WarmupPolyDecay::WarmupPolyDecay(double max_lr, int64_t warmup_steps,
                                 int64_t total_steps, double power)
    : max_lr_(max_lr),
      warmup_steps_(warmup_steps),
      total_steps_(total_steps),
      power_(power) {
  if (total_steps <= 0) throw std::invalid_argument("total_steps must be > 0");
  if (warmup_steps < 0 || warmup_steps > total_steps) {
    throw std::invalid_argument("warmup_steps out of range");
  }
}

double WarmupPolyDecay::operator()(int64_t step) const {
  step = std::clamp<int64_t>(step, 0, total_steps_);
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return max_lr_ * static_cast<double>(step + 1) /
           static_cast<double>(warmup_steps_);
  }
  const double remaining = static_cast<double>(total_steps_ - step) /
                           static_cast<double>(std::max<int64_t>(
                               1, total_steps_ - warmup_steps_));
  return max_lr_ * std::pow(remaining, power_);
}

double sqrt_lr_scaling(double base_lr, int64_t ranks) {
  return base_lr * std::sqrt(static_cast<double>(ranks));
}

double scaled_warmup_fraction(double base_fraction, int64_t ranks) {
  return std::min(1.0, base_fraction * static_cast<double>(ranks));
}

}  // namespace mf::optim
