// Learning-rate schedules matching Sec. 5.2: linear warmup followed by
// polynomial decay, plus the square-root batch-size scaling rule used when
// the per-step batch grows with the number of data-parallel ranks.
#pragma once

#include <cstdint>

namespace mf::optim {

/// lr(step): linear warmup to `max_lr` over `warmup_steps`, then polynomial
/// decay (power `power`) to zero at `total_steps`. power = 1 reproduces the
/// paper's "polynomial learning rate decay with the exponent set to one".
class WarmupPolyDecay {
 public:
  WarmupPolyDecay(double max_lr, int64_t warmup_steps, int64_t total_steps,
                  double power = 1.0);

  double operator()(int64_t step) const;

  int64_t warmup_steps() const { return warmup_steps_; }
  int64_t total_steps() const { return total_steps_; }

 private:
  double max_lr_;
  int64_t warmup_steps_;
  int64_t total_steps_;
  double power_;
};

/// Sec. 5.2 (a): scale the max learning rate by the square root of the
/// batch-size increase when scaling to `ranks` data-parallel workers.
double sqrt_lr_scaling(double base_lr, int64_t ranks);

/// Sec. 5.2 (b): warmup fraction scales linearly with the batch increase.
double scaled_warmup_fraction(double base_fraction, int64_t ranks);

}  // namespace mf::optim
