// Reverse-mode autodiff engine: graph nodes, topological traversal,
// grad-of-grad via `create_graph`.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ad/tensor.hpp"

namespace mf::ad {

/// A recorded operation in the autograd graph. Nodes own their input
/// tensors (keeping upstream graph alive). `backward` returns one gradient
/// per input; entries for inputs with `needs[i] == false` may be undefined.
///
/// Backward implementations are written in terms of Tensor ops, so running
/// them with grad mode enabled (create_graph) yields a differentiable graph
/// of the gradients themselves — this is what enables the second-order
/// derivatives of the PDE loss.
struct Node {
  explicit Node(std::string op_name) : name(std::move(op_name)) {}
  virtual ~Node() = default;

  virtual std::vector<Tensor> backward(const Tensor& grad_out,
                                       const std::vector<bool>& needs) = 0;

  std::string name;
  std::vector<Tensor> inputs;
};

/// Node whose backward is a captured lambda; used by all ops.
struct LambdaNode final : Node {
  using BackwardFn = std::function<std::vector<Tensor>(
      const Tensor& grad_out, const std::vector<bool>& needs)>;

  LambdaNode(std::string op_name, BackwardFn fn)
      : Node(std::move(op_name)), backward_fn(std::move(fn)) {}

  std::vector<Tensor> backward(const Tensor& grad_out,
                               const std::vector<bool>& needs) override {
    return backward_fn(grad_out, needs);
  }

  BackwardFn backward_fn;
};

/// Attach a grad_fn to `out` if grad mode is on and any input requires
/// grad. Returns `out` for chaining.
Tensor record(Tensor out, const std::string& name,
              std::vector<Tensor> inputs, LambdaNode::BackwardFn backward);

/// d(output)/d(inputs). `output` need not be scalar if `grad_output` is
/// supplied (vector-Jacobian product). Only gradients for `inputs` are
/// computed; graph branches that cannot reach any requested input are
/// pruned (needed so that e.g. the x-derivative of the network does not
/// drag the boundary-embedding branch into the second-order graph).
///
/// With `create_graph == true` the returned gradients are themselves
/// differentiable.
std::vector<Tensor> grad(const Tensor& output, const std::vector<Tensor>& inputs,
                         const Tensor& grad_output = Tensor(),
                         bool create_graph = false);

/// Standard training backward: accumulate d(output)/d(leaf) into
/// `leaf.grad()` for every reachable leaf with requires_grad.
void backward(const Tensor& output, const Tensor& grad_output = Tensor());

/// Count of nodes reachable from `t`'s grad_fn (diagnostics / tests).
std::size_t graph_size(const Tensor& t);

}  // namespace mf::ad
