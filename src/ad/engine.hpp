// Reverse-mode autodiff engine: graph nodes, topological traversal,
// grad-of-grad via `create_graph`.
//
// Tape nodes live in a per-thread bump arena (arena.hpp): recording an op
// costs one bump allocation for the node plus its control block
// (std::allocate_shared) and one for the input array — no std::function,
// no std::string, no per-node heap traffic. The hottest ops (linear,
// gelu, matmul, add, mul) use typed nodes with no captured state at all;
// the rest store their backward lambda inline in a templated node.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "ad/arena.hpp"
#include "ad/tensor.hpp"

namespace mf::ad {

/// A recorded operation in the autograd graph. Nodes own their input
/// tensors (keeping upstream graph alive). `backward` returns one gradient
/// per input; entries for inputs with `needs[i] == false` may be undefined.
///
/// Backward implementations are written in terms of Tensor ops, so running
/// them with grad mode enabled (create_graph) yields a differentiable graph
/// of the gradients themselves — this is what enables the second-order
/// derivatives of the PDE loss.
struct Node {
  explicit Node(const char* op_name) : name(op_name) {}
  virtual ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  virtual std::vector<Tensor> backward(const Tensor& grad_out,
                                       const std::vector<bool>& needs) = 0;

  /// Copy `n` tensors into an array placed next to the node (tape arena
  /// when enabled, heap otherwise). Called exactly once, at record time.
  void set_inputs(const Tensor* src, std::size_t n);

  std::size_t num_inputs() const { return n_inputs_; }
  const Tensor& input(std::size_t i) const { return inputs_[i]; }

  const char* name;  // static-storage op name; no per-node string

 private:
  Tensor* inputs_ = nullptr;
  std::uint32_t n_inputs_ = 0;
  bool inputs_on_heap_ = false;
};

/// Node whose backward is a lambda stored inline in the node itself (one
/// instantiation per lambda type — no type erasure, no std::function).
template <typename F>
struct LambdaNode final : Node {
  LambdaNode(const char* op_name, F fn) : Node(op_name), fn_(std::move(fn)) {}

  std::vector<Tensor> backward(const Tensor& grad_out,
                               const std::vector<bool>& needs) override {
    return fn_(grad_out, needs);
  }

  F fn_;
};

/// Bump-allocate a node (and its shared_ptr control block) in the calling
/// thread's tape arena.
template <typename NodeT, typename... Args>
std::shared_ptr<NodeT> make_arena_node(Args&&... args) {
  return std::allocate_shared<NodeT>(ArenaAlloc<NodeT>(),
                                     std::forward<Args>(args)...);
}

namespace detail {
/// True when grad mode is on and any input participates in autograd.
bool wants_grad(const Tensor* inputs, std::size_t n);
/// Wire `node` (with `inputs`) in as grad_fn of `out`.
Tensor attach(Tensor out, std::shared_ptr<Node> node, const Tensor* inputs,
              std::size_t n);
}  // namespace detail

/// Attach a grad_fn to `out` if grad mode is on and any input requires
/// grad. Returns `out` for chaining. This pointer+count overload is the
/// primitive; the initializer_list/vector forms below delegate to it.
template <typename F>
Tensor record(Tensor out, const char* name, const Tensor* inputs,
              std::size_t n, F&& backward) {
  if (!detail::wants_grad(inputs, n)) return out;
  auto node =
      make_arena_node<LambdaNode<std::decay_t<F>>>(name, std::forward<F>(backward));
  return detail::attach(std::move(out), std::move(node), inputs, n);
}

template <typename F>
Tensor record(Tensor out, const char* name, std::initializer_list<Tensor> inputs,
              F&& backward) {
  return record(std::move(out), name, inputs.begin(), inputs.size(),
                std::forward<F>(backward));
}

/// Overload for a dynamic input list (concat).
template <typename F>
Tensor record(Tensor out, const char* name, const std::vector<Tensor>& inputs,
              F&& backward) {
  return record(std::move(out), name, inputs.data(), inputs.size(),
                std::forward<F>(backward));
}

/// Record with an explicit (typed, capture-free) node type; used for the
/// hottest ops whose backward reads everything from `input(i)`.
template <typename NodeT, typename... Args>
Tensor record_typed(Tensor out, const Tensor* inputs, std::size_t n,
                    Args&&... args) {
  if (!detail::wants_grad(inputs, n)) return out;
  auto node = make_arena_node<NodeT>(std::forward<Args>(args)...);
  return detail::attach(std::move(out), std::move(node), inputs, n);
}

/// d(output)/d(inputs). `output` need not be scalar if `grad_output` is
/// supplied (vector-Jacobian product). Only gradients for `inputs` are
/// computed; graph branches that cannot reach any requested input are
/// pruned (needed so that e.g. the x-derivative of the network does not
/// drag the boundary-embedding branch into the second-order graph).
///
/// With `create_graph == true` the returned gradients are themselves
/// differentiable.
std::vector<Tensor> grad(const Tensor& output, const std::vector<Tensor>& inputs,
                         const Tensor& grad_output = Tensor(),
                         bool create_graph = false);

/// Standard training backward: accumulate d(output)/d(leaf) into
/// `leaf.grad()` for every reachable leaf with requires_grad.
void backward(const Tensor& output, const Tensor& grad_output = Tensor());

/// Count of nodes reachable from `t`'s grad_fn (diagnostics / tests).
std::size_t graph_size(const Tensor& t);

}  // namespace mf::ad
