#include "ad/tensor.hpp"

#include <numeric>
#include <sstream>

#include "ad/pool.hpp"
#include "ad/program.hpp"

namespace mf::ad {

int64_t numel_of(const Shape& shape) {
  int64_t n = 1;
  for (int64_t s : shape) n *= s;
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

std::vector<int64_t> strides_of(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::on_alloc(std::size_t bytes) {
  const std::size_t now = live_.fetch_add(bytes) + bytes;
  // Lock-free peak update.
  std::size_t peak = peak_.load();
  while (now > peak && !peak_.compare_exchange_weak(peak, now)) {
  }
}

void MemoryTracker::on_free(std::size_t bytes) { live_.fetch_sub(bytes); }

void MemoryTracker::reset_peak() { peak_.store(live_.load()); }

std::size_t MemoryTracker::pooled_idle_bytes() const {
  return PayloadPool::idle_bytes();
}

Payload::Payload(std::size_t n, DType dt)
    : raw_(PayloadPool::acquire_zeroed(n * dtype_size(dt))), dt_(dt) {}

Payload::Payload(const real* src, std::size_t n)
    : raw_(PayloadPool::acquire_copy(src, n * sizeof(real))),
      dt_(DType::kF64) {}

Payload::~Payload() { PayloadPool::release(std::move(raw_)); }

Payload& Payload::operator=(Payload&& o) noexcept {
  if (this != &o) {
    PayloadPool::release(std::move(raw_));
    raw_ = std::move(o.raw_);
    dt_ = o.dt_;
  }
  return *this;
}

Payload& Payload::operator=(const Payload& o) {
  if (this != &o) {
    raw_.assign(o.raw_.begin(), o.raw_.end());  // reuses capacity when equal
    dt_ = o.dt_;
  }
  return *this;
}

TensorImpl::TensorImpl(Shape shape_in)
    : data(static_cast<std::size_t>(numel_of(shape_in)), DType::kF64),
      shape(std::move(shape_in)) {
  MemoryTracker::instance().on_alloc(data.size_bytes());
}

TensorImpl::TensorImpl(Shape shape_in, std::vector<real> values)
    : data(values.data(), values.size()), shape(std::move(shape_in)) {
  if (static_cast<int64_t>(data.size()) != numel_of(shape)) {
    throw std::invalid_argument("TensorImpl: data size does not match shape " +
                                shape_str(shape));
  }
  MemoryTracker::instance().on_alloc(data.size_bytes());
}

TensorImpl::TensorImpl(Shape shape_in, const real* src)
    : data(src, static_cast<std::size_t>(numel_of(shape_in))),
      shape(std::move(shape_in)) {
  MemoryTracker::instance().on_alloc(data.size_bytes());
}

TensorImpl::~TensorImpl() {
  MemoryTracker::instance().on_free(data.size_bytes());
}

Tensor Tensor::zeros(const Shape& shape) {
  return Tensor(std::make_shared<TensorImpl>(shape));
}

Tensor Tensor::ones(const Shape& shape) { return full(shape, real{1}); }

Tensor Tensor::full(const Shape& shape, real value) {
  auto impl = std::make_shared<TensorImpl>(shape);
  std::fill(impl->data.begin(), impl->data.end(), value);
  return Tensor(std::move(impl));
}

Tensor Tensor::from_vector(std::vector<real> values, const Shape& shape) {
  return Tensor(std::make_shared<TensorImpl>(shape, std::move(values)));
}

Tensor Tensor::from_data(const real* src, const Shape& shape) {
  return Tensor(std::make_shared<TensorImpl>(shape, src));
}

Tensor Tensor::scalar(real value) { return full({}, value); }

int64_t Tensor::size(int64_t axis) const {
  const auto& s = impl_->shape;
  if (axis < 0) axis += static_cast<int64_t>(s.size());
  if (axis < 0 || axis >= static_cast<int64_t>(s.size())) {
    throw std::out_of_range("Tensor::size axis out of range for " +
                            shape_str(s));
  }
  return s[static_cast<std::size_t>(axis)];
}

real Tensor::item() const {
  if (numel() != 1) {
    throw std::logic_error("Tensor::item on tensor with shape " +
                           shape_str(shape()));
  }
  return impl_->data[0];
}

real Tensor::at(std::initializer_list<int64_t> idx) const {
  const auto strides = strides_of(impl_->shape);
  if (idx.size() != impl_->shape.size()) {
    throw std::invalid_argument("Tensor::at rank mismatch");
  }
  int64_t flat = 0;
  std::size_t d = 0;
  for (int64_t i : idx) flat += i * strides[d++];
  return impl_->data[static_cast<std::size_t>(flat)];
}

Tensor& Tensor::set_requires_grad(bool value) {
  if (value && impl_->grad_fn) {
    throw std::logic_error(
        "set_requires_grad(true) on a non-leaf tensor is not supported");
  }
  impl_->requires_grad = value;
  return *this;
}

Tensor Tensor::grad() const {
  if (!impl_ || !impl_->grad) return Tensor();
  return Tensor(impl_->grad);
}

void Tensor::set_grad(const Tensor& g) { impl_->grad = g.impl(); }

void Tensor::zero_grad() { impl_->grad.reset(); }

Tensor Tensor::detach() const {
  Tensor out = from_data(impl_->data.data(), impl_->shape);
  // Detach copies move live data (e.g. gradient accumulation into `.grad`
  // snapshots), so a capturing program must record them.
  if (prog::capturing()) prog::on_copy(*this, out);
  return out;
}

Tensor Tensor::clone() const { return detach(); }

namespace {
thread_local bool g_grad_mode = true;
}  // namespace

bool GradMode::enabled() { return g_grad_mode; }
void GradMode::set_enabled(bool value) { g_grad_mode = value; }

}  // namespace mf::ad
