// Dense double-precision tensor with reverse-mode automatic differentiation.
//
// This is the autodiff substrate for the physics-informed neural PDE
// solvers. It supports `create_graph` (the backward pass itself builds a
// differentiable graph), which is required for the PDE residual loss of the
// paper: computing d^2 N / dx^2 needs grad-of-grad, and the final weight
// update differentiates *through* those second-derivative graphs — the
// "three backward passes" described in Sec. 5.2 of the paper.
//
// Design notes:
//  * Tensors are contiguous, row-major, value-semantic handles over a
//    shared implementation (`TensorImpl`).
//  * Ops are free functions in ops.hpp that record `Node`s on a tape when
//    grad mode is enabled and any input requires grad.
//  * Every byte of tensor payload is tracked by `MemoryTracker`, which is
//    how we reproduce the paper's Table 3 (autograd-graph memory with and
//    without the PDE loss).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ad/dtype.hpp"

namespace mf::ad {

using real = double;
using Shape = std::vector<int64_t>;

/// Number of elements implied by a shape.
int64_t numel_of(const Shape& shape);

/// Human-readable "[2, 3]" form, for error messages.
std::string shape_str(const Shape& shape);

/// Row-major strides for a shape.
std::vector<int64_t> strides_of(const Shape& shape);

/// Global accounting of live tensor payload bytes. Reproduces the
/// methodology of Table 3: peak memory during forward+loss+backward.
///
/// Payload pooling (see pool.hpp) does not perturb these numbers: a
/// buffer counts as live exactly while a TensorImpl owns it, whether it
/// came from the pool or from the heap. Bytes parked on free lists are
/// reported separately via pooled_idle_bytes().
class MemoryTracker {
 public:
  static MemoryTracker& instance();

  void on_alloc(std::size_t bytes);
  void on_free(std::size_t bytes);

  /// Currently live payload bytes.
  std::size_t live_bytes() const { return live_.load(); }
  /// High-water mark since the last reset_peak().
  std::size_t peak_bytes() const { return peak_.load(); }
  void reset_peak();

  /// Bytes held idle by the payload pool (not owned by any tensor;
  /// disjoint from live_bytes). Forwards to PayloadPool::idle_bytes().
  std::size_t pooled_idle_bytes() const;

 private:
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> peak_{0};
};

struct Node;  // defined in engine.hpp

/// Byte-addressed tensor payload with a dtype tag. The eager stack's
/// native width is f64 (`real`), and every Tensor handed to user code is
/// f64 — the f64-typed accessors below assume that and are what the whole
/// eager layer compiles against. f32 payloads exist for the compiled-plan
/// compute path and direct pool users; they are addressed through raw()
/// / f32(). Storage is recycled through the PayloadPool, whose free lists
/// key on byte capacity so both widths share buckets.
class Payload {
 public:
  Payload() = default;
  /// n elements of dtype dt, zero-filled (pooled when possible).
  Payload(std::size_t n, DType dt);
  /// Pooled f64 copy of [src, src + n).
  Payload(const real* src, std::size_t n);
  ~Payload();

  Payload(Payload&& o) noexcept : raw_(std::move(o.raw_)), dt_(o.dt_) {}
  Payload& operator=(Payload&& o) noexcept;
  Payload(const Payload&) = delete;
  /// Byte copy (module load paths assign same-shaped payloads; reuses the
  /// destination's capacity, so steady-state assigns do not allocate).
  Payload& operator=(const Payload& o);

  DType dtype() const { return dt_; }
  /// Element count.
  std::size_t size() const { return raw_.size() / dtype_size(dt_); }
  std::size_t size_bytes() const { return raw_.size(); }
  void* raw() { return raw_.data(); }
  const void* raw() const { return raw_.data(); }

  // f64 view — the only width the eager ops/autodiff layer touches.
  real* data() { return reinterpret_cast<real*>(raw_.data()); }
  const real* data() const {
    return reinterpret_cast<const real*>(raw_.data());
  }
  real* begin() { return data(); }
  real* end() { return data() + size(); }
  const real* begin() const { return data(); }
  const real* end() const { return data() + size(); }
  real& operator[](std::size_t i) { return data()[i]; }
  real operator[](std::size_t i) const { return data()[i]; }

  // f32 view (compiled-plan internals, pool tests).
  float* f32() { return reinterpret_cast<float*>(raw_.data()); }
  const float* f32() const {
    return reinterpret_cast<const float*>(raw_.data());
  }

 private:
  std::vector<std::byte> raw_;
  DType dt_ = DType::kF64;
};

/// Shared payload of a Tensor. Allocation and deallocation are reported to
/// the MemoryTracker; the backing buffer is recycled through the
/// PayloadPool (pool.hpp) so steady-state hot loops perform no payload
/// mallocs after warmup.
struct TensorImpl {
  explicit TensorImpl(Shape shape);
  TensorImpl(Shape shape, std::vector<real> values);
  /// Pooled copy of [src, src + numel(shape)).
  TensorImpl(Shape shape, const real* src);
  ~TensorImpl();

  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  Payload data;
  Shape shape;
  bool requires_grad = false;
  std::shared_ptr<Node> grad_fn;         // null for leaves
  std::shared_ptr<TensorImpl> grad;      // accumulated by backward()
};

/// Value-semantic handle to a (possibly autograd-tracked) tensor.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // ---- construction ----
  static Tensor zeros(const Shape& shape);
  static Tensor ones(const Shape& shape);
  static Tensor full(const Shape& shape, real value);
  static Tensor from_vector(std::vector<real> values, const Shape& shape);
  /// Pooled copy of an existing buffer (used by reshape/detach/clone so
  /// they recycle payloads instead of allocating fresh vectors).
  static Tensor from_data(const real* src, const Shape& shape);
  static Tensor scalar(real value);

  // ---- basic queries ----
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl_->shape; }
  int64_t dim() const { return static_cast<int64_t>(impl_->shape.size()); }
  int64_t numel() const { return static_cast<int64_t>(impl_->data.size()); }
  int64_t size(int64_t axis) const;

  real* data() { return impl_->data.data(); }
  const real* data() const { return impl_->data.data(); }
  Payload& vec() { return impl_->data; }
  const Payload& vec() const { return impl_->data; }

  /// Value of a 0-d or single-element tensor.
  real item() const;
  /// Read element by multi-index (slow; for tests and small tensors).
  real at(std::initializer_list<int64_t> idx) const;
  /// Mutable element access by flat index.
  real& flat(int64_t i) { return impl_->data[static_cast<std::size_t>(i)]; }
  real flat(int64_t i) const { return impl_->data[static_cast<std::size_t>(i)]; }

  // ---- autograd ----
  Tensor& set_requires_grad(bool value);
  bool requires_grad() const { return impl_ && impl_->requires_grad; }
  bool has_grad_fn() const { return impl_ && impl_->grad_fn != nullptr; }
  std::shared_ptr<Node> grad_fn() const { return impl_ ? impl_->grad_fn : nullptr; }
  /// Gradient accumulated by backward(); undefined Tensor if none.
  Tensor grad() const;
  void set_grad(const Tensor& g);
  void zero_grad();
  /// A view-copy sharing no autograd history.
  Tensor detach() const;
  /// Deep copy of the payload (no autograd history).
  Tensor clone() const;

  TensorImpl* impl_ptr() const { return impl_.get(); }
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Thread-local autograd recording mode (mirrors torch.no_grad()).
class GradMode {
 public:
  static bool enabled();
  static void set_enabled(bool value);
};

/// RAII guard disabling autograd recording in scope.
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::enabled()) { GradMode::set_enabled(false); }
  ~NoGradGuard() { GradMode::set_enabled(prev_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace mf::ad
