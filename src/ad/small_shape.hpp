// Inline fixed-capacity shape, for backward-lambda captures.
//
// The tape arena (arena.hpp) made recording a node a single bump
// allocation — except for ops whose backward lambda captured a `Shape`
// (std::vector<int64_t>) by value: each capture still heap-allocated the
// vector's buffer. Every tensor in this codebase has rank <= 4, so a
// small inline array removes the last per-record heap traffic from the
// hot-path lambdas (ROADMAP follow-up to PR 3).
//
// SmallShape is also reused for other tiny int64 lists captured by
// lambdas (e.g. concat's per-part lengths).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "ad/tensor.hpp"

namespace mf::ad {

class SmallShape {
 public:
  static constexpr std::size_t kMaxRank = 8;

  SmallShape() = default;
  SmallShape(const Shape& s) {  // implicit: drop-in for lambda captures
    if (s.size() > kMaxRank) {
      throw std::invalid_argument("SmallShape: rank > 8 unsupported");
    }
    n_ = static_cast<std::uint32_t>(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) d_[i] = s[i];
  }

  std::size_t size() const { return n_; }
  int64_t operator[](std::size_t i) const { return d_[i]; }

  /// Append one extent (callers guarantee size() < kMaxRank, e.g. by
  /// taking the heap fallback for wider lists).
  void push_back(int64_t extent) {
    if (n_ >= kMaxRank) {
      throw std::logic_error("SmallShape::push_back: capacity exceeded");
    }
    d_[n_++] = extent;
  }

  /// Materialize as the vector type the ops API takes. Only runs when a
  /// backward actually executes, never at record time.
  Shape to_shape() const { return Shape(d_.begin(), d_.begin() + n_); }

 private:
  std::array<int64_t, kMaxRank> d_{};
  std::uint32_t n_ = 0;
};

}  // namespace mf::ad
