// Per-thread bump arena for autodiff tape nodes.
//
// Every recorded op used to pay `std::make_shared<LambdaNode>` plus a
// heap-captured `std::function`. With the arena, a node (its shared_ptr
// control block included, via std::allocate_shared) is a single bump-
// pointer allocation in a thread-local chunk list, and its input array is
// placed right next to it. Freeing is deferred: node destructors run as
// usual when the graph is released, but the memory is reclaimed wholesale
// — the arena rewinds to empty the next time a node is allocated while no
// node from it is alive. Between training steps / Schwarz cycles this
// means zero malloc/free traffic for the tape.
//
// Safety: the rewind condition (live node count reaches zero) is checked
// only on the owning thread, at allocation time, so a graph that outlives
// a step keeps the arena occupied — never dangling. Allocator copies
// inside control blocks hold the arena via shared_ptr, so the arena
// cannot die before its last node even across thread exit. The cost of
// pinning is real, though: while any node is alive the arena cannot
// rewind, so *every* tape recorded in the meantime (dead or not) keeps
// accumulating chunk memory. Don't retain graph-bearing tensors across
// unbounded numbers of steps; detach() what you keep.
//
// Escape hatch: MF_DISABLE_ARENA=1 routes node allocations back to the
// global heap (results are identical either way; this is a debugging aid).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mf::ad {

class TapeArena {
 public:
  struct Stats {
    std::uint64_t blocks_allocated = 0;  // nodes ever placed in the arena
    std::int64_t live_blocks = 0;        // nodes currently alive
    std::uint64_t rewinds = 0;           // times the arena reset to empty
    std::size_t bytes_reserved = 0;      // chunk memory held
    std::size_t high_water = 0;          // max bytes in use at once
  };

  TapeArena() = default;
  ~TapeArena() = default;
  TapeArena(const TapeArena&) = delete;
  TapeArena& operator=(const TapeArena&) = delete;

  /// Bump-allocate (owning thread only). Rewinds first if every previously
  /// allocated node has died.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Counted-block bookkeeping: the node control-block allocations drive
  /// the rewind heuristic. note_block_freed may run on any thread.
  void note_block_allocated() {
    live_blocks_.fetch_add(1, std::memory_order_relaxed);
    ++blocks_allocated_;
  }
  void note_block_freed() { live_blocks_.fetch_sub(1, std::memory_order_acq_rel); }

  Stats stats() const;

 private:
  void rewind();
  std::size_t total_used() const;

  struct Chunk {
    std::unique_ptr<unsigned char[]> mem;
    std::size_t size = 0;
  };
  static constexpr std::size_t kMinChunk = std::size_t{1} << 20;  // 1 MiB

  std::vector<Chunk> chunks_;
  std::size_t chunk_idx_ = 0;
  std::size_t offset_ = 0;  // within chunks_[chunk_idx_]
  bool dirty_ = false;      // anything allocated since the last rewind
  std::size_t high_water_ = 0;
  std::uint64_t blocks_allocated_ = 0;
  std::uint64_t rewinds_ = 0;
  // Nodes can be released from a different thread than the one that built
  // the graph, so the live count is atomic; bump state is owner-only.
  std::atomic<std::int64_t> live_blocks_{0};
};

/// The calling thread's tape arena (created on first use).
const std::shared_ptr<TapeArena>& this_thread_tape_arena();

/// False when MF_DISABLE_ARENA=1: nodes fall back to the global heap.
bool tape_arena_enabled();

/// Stateful allocator placing counted blocks in a TapeArena. Used with
/// std::allocate_shared so one bump allocation holds both the control
/// block and the node. A null arena (disabled) means plain heap.
template <typename T>
struct ArenaAlloc {
  using value_type = T;

  std::shared_ptr<TapeArena> arena;

  ArenaAlloc()
      : arena(tape_arena_enabled() ? this_thread_tape_arena() : nullptr) {}
  template <typename U>
  ArenaAlloc(const ArenaAlloc<U>& other) : arena(other.arena) {}

  T* allocate(std::size_t n) {
    if (!arena) return static_cast<T*>(::operator new(n * sizeof(T)));
    // Allocate first: the rewind check must observe the live count from
    // *before* this node exists.
    void* p = arena->allocate(n * sizeof(T), alignof(T));
    arena->note_block_allocated();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) {
    if (!arena) {
      ::operator delete(p);
      return;
    }
    // Memory is reclaimed by the arena rewind; just drop the live count.
    arena->note_block_freed();
  }

  template <typename U>
  bool operator==(const ArenaAlloc<U>& other) const {
    return arena == other.arena;
  }
  template <typename U>
  bool operator!=(const ArenaAlloc<U>& other) const {
    return !(*this == other);
  }
};

}  // namespace mf::ad
