// Compiled tape programs: capture one eager step, replay it allocation-
// and dispatch-free.
//
// PR 3 made tape *construction* allocation-free, but every training step
// still re-recorded and re-walked an identical autodiff graph: per-step
// cost was dominated by node recording, shared_ptr traffic and virtual
// backward dispatch rather than FLOPs. `Program` removes all of it for
// steady-state loops with fixed shapes (the Schwarz iteration and the
// three-backward-pass PDE training step):
//
//   capture(fn)  — runs `fn` eagerly on the calling thread while recording
//                  every executed tensor kernel (forward ops, the engine's
//                  backward sweeps including `create_graph` second-order
//                  chains, gradient accumulation into `.grad`, detach
//                  copies) as one flat, execution-ordered plan of typed
//                  steps. Tensors touched by the step become numbered
//                  slots; step operands are slot indices.
//   (lowering)   — at capture end the plan is lowered: the recorded
//                  autodiff graph is released (the arena rewinds), buffers
//                  that nothing outside the program references are
//                  liveness-packed onto a reused internal arena (two
//                  intermediates whose live ranges do not overlap share
//                  storage), and every operand is resolved to a raw
//                  `real*`.
//   replay()     — re-executes the plan: a switch over typed kernel steps
//                  on raw buffers. No tensor construction, no node
//                  recording, no shared_ptr traffic, no virtual dispatch,
//                  no GradMode. Leaf slots (parameters, batch inputs) are
//                  read live, so refilling those tensors in place and
//                  replaying reproduces the eager step bitwise on new
//                  data; gradients land in the same `.grad` buffers the
//                  captured step produced, so `average_gradients` and the
//                  optimizers are untouched.
//
// Validity: a captured plan encodes one fixed graph topology. Callers must
// re-capture when any leaf shape (or anything else that changes the
// recorded control flow, e.g. a loss weight captured as a constant)
// changes — see the shape keys in mosaic::CompiledTrainStep and
// NeuralSubdomainSolver. Kernels make their threading decisions at run
// time from the same work sizes, so replay partitions exactly like eager
// execution at the same thread count.
//
// Fusion: lowering additionally collapses runs of adjacent elementwise
// steps whose slots chain producer→consumer with no other reader in
// between into single `Fused` steps that apply the composed scalar
// expression in one pass over the buffer. Every element still goes
// through the identical sfn:: functors in the identical order, so fused
// replay stays bitwise-identical to eager; the skipped intermediates
// simply never materialize (their slots are dropped from the arena).
//
// Optimizer capture: optim::Adam records its update (moment updates, bias
// correction, weight write) into an enclosing capture via the hooks at
// the bottom of this header, so a plan that captures step + optimizer
// replays forward, backwards and the parameter update with zero eager
// tensor ops — and the `.grad` buffers, no longer read by anything
// outside the plan, get liveness-packed like any other intermediate.
//
// Parallel replay: lowering additionally derives a dependency DAG over
// the plan's steps — reads/writes are explicit in the typed steps, with
// hazards tracked on the post-packing *buffers* so arena reuse is
// honoured — and partitions it into execution waves. With
// MF_PLAN_THREADS=N (N > 1) replay executes each wave's steps across a
// persistent worker pool; scheduling is computed once at capture, never
// per replay. Every executor runs its per-step kernels on the serial
// path, so any topological order — including the serial recorded order —
// produces identical bits; serial replay with kernel threading disabled
// is the bitwise reference. MF_DISABLE_PARALLEL_PLAN=1 forces serial
// replay regardless of MF_PLAN_THREADS.
//
// Batch widening: an inference plan captured at a base batch B0 can be
// widened — every batch-carrying slot gets its leading dimension scaled
// by an integer factor — so one captured plan evaluates any multiple of
// B0 independent instances, turning many skinny width-64 GEMMs into few
// wide ones. widen() declares which external slots carry the batch;
// lowering's recorded slot shapes drive a fail-closed propagation (any
// step that would mix instances — cross-batch reductions, transposes,
// training/optimizer steps — rejects widening and callers fall back to
// per-shape captures). Widened replay of B instances is bitwise
// identical to B0-sized replays of the same instances because every
// widenable kernel computes each row/element independently.
//
// Mixed precision: each Program carries a compute dtype
// (set_compute_dtype, default f64). Under kF32, lowering colors every
// internal (liveness-packed) slot float while external slots — leaves,
// parameters, `.grad` buffers, kept results — stay double, and inserts
// explicit kCast steps at the boundaries; compute steps then run float
// kernels, while in-plan optimizer steps always execute in double on the
// double master weights (gradients widen on entry — the autocast
// pattern). Eager execution is f64-only; the policy exists purely at the
// plan level, and call sites (mosaic::CompiledTrainStep,
// NeuralSubdomainSolver) pick it up from ad::compute_dtype()
// (MF_PRECISION). Under the default kF64 the lowering pass is skipped
// entirely and plans are bitwise identical to before.
//
// Escape hatches: MF_DISABLE_PROGRAM=1 (or program_set_enabled(false))
// makes program_enabled() false; the wired call sites then run eagerly,
// bit-for-bit like pre-PR-4 code (mirrors MF_DISABLE_POOL / _ARENA).
// MF_DISABLE_FUSION=1 keeps programs on but lowers every elementwise
// step individually (the PR 4 plans), also bit-for-bit.
// MF_DISABLE_WIDENING=1 makes widen() refuse, so callers keep per-shape
// captures. MF_DISABLE_PARALLEL_PLAN=1 / MF_PLAN_THREADS control the
// wave executor as above.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "ad/dtype.hpp"
#include "ad/kernels.hpp"
#include "ad/tensor.hpp"

namespace mf::ad {

class Program {
 public:
  struct Stats {
    std::size_t steps = 0;          // typed kernel steps in the plan
    std::size_t slots = 0;          // distinct buffers referenced
    std::size_t external_slots = 0; // slots alive outside the program
    std::size_t arena_bytes = 0;    // liveness-packed internal storage
    std::size_t pinned_bytes = 0;   // externally visible slot payloads
    std::size_t fused_steps = 0;    // Fused steps in the plan
    std::size_t fused_ops = 0;      // elementwise steps folded into them
    std::size_t cast_steps = 0;     // dtype-boundary kCast steps
    std::size_t optim_steps = 0;    // in-plan optimizer parameter updates
    std::size_t waves = 0;          // dependency-DAG execution waves
    std::size_t wide_instances = 0; // live widened replay contexts
    int64_t max_widen_batch = 0;    // largest batch replayed via widening
    double capture_ms = 0;          // wall time of the last capture
    std::uint64_t captures = 0;     // captures over this Program's life
    std::uint64_t replays = 0;
    std::uint64_t widened_replays = 0;
    std::uint64_t health_checks = 0;  // post-replay sentinel scans run
    std::uint64_t health_trips = 0;   // scans that found NaN/Inf/divergence
  };

  Program();
  ~Program();
  Program(Program&&) noexcept;
  Program& operator=(Program&&) noexcept;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  /// Compute dtype for the *next* capture (kF64 default). kF32 makes
  /// lowering color internal slots float and insert boundary casts; a
  /// plan already captured is unaffected — re-capture to apply. Survives
  /// reset(), so callers can set it once at construction.
  void set_compute_dtype(DType dt);
  DType compute_dtype() const;

  /// Run `fn` eagerly while recording, then lower the trace into the
  /// replayable plan. Drops any previous plan first. Capture is
  /// thread-confined and non-reentrant (throws on nested capture). On
  /// return the autodiff graph recorded by `fn` has been released: keep
  /// result tensors if you need their values, not their history.
  void capture(const std::function<void()>& fn);

  /// True when a plan is ready to replay.
  bool captured() const;

  /// Re-execute the captured step against the current contents of its
  /// leaf buffers. Requires captured().
  void replay();

  /// Drop the plan and every retained buffer.
  void reset();

  // ---- batch widening (inference plans) ----
  //
  /// Declare the batch-carrying external tensors of a captured plan (the
  /// plan's inputs and outputs whose leading dimension is the batch; all
  /// must share the same dim0 = the base batch B0) and run the widening
  /// analysis. Returns true when the plan is widenable: replay_widened(b)
  /// then evaluates any b that is a positive multiple of B0. Returns
  /// false — leaving the plan fully usable for plain replay() — when any
  /// step mixes batch instances, when a batch-carrying slot is not
  /// external, or when widening is disabled.
  bool widen(const std::vector<Tensor>& batch_io);

  /// True after a successful widen().
  bool widened() const;

  /// Capture batch B0 of a widened plan (0 when !widened()).
  int64_t widen_base() const;

  /// Widen-dispatch helper for schedulers that form arbitrary-size
  /// cross-request batches: the largest positive multiple of widen_base()
  /// that is <= b (0 when not widened or b < base). Callers cover
  /// widen_cover(b) rows with one widened replay and fall back to eager
  /// execution for the b - widen_cover(b) remainder rows.
  int64_t widen_cover(int64_t b) const;

  /// The buffer a widened replay at batch `b` reads/writes for the
  /// declared tensor `t` (b a positive multiple of B0; for b == B0 this
  /// is t's own payload). Callers pack inputs here before
  /// replay_widened(b) and read outputs after. Layout: the B0-sized
  /// blocks of `t` repeated b / B0 times (instance-major).
  real* widened_buffer(const Tensor& t, int64_t b);

  /// Replay the widened plan at batch `b` (positive multiple of B0).
  /// Requires widened(). Instance contexts are built once per distinct b
  /// and cached.
  void replay_widened(int64_t b);

  Stats stats() const;

  /// Health sentinel verdict of the most recent replay()/replay_widened():
  /// false when the post-replay scan (active under health_checks_enabled())
  /// found a NaN, an Inf, or a diverged (>1e100) value in any external
  /// slot the plan writes. Always true when checks are off or no replay
  /// has run since capture.
  bool last_replay_healthy() const;

  struct Impl;  // also the active capture recorder (see program.cpp)

 private:
  std::unique_ptr<Impl> impl_;
};

/// False when MF_DISABLE_PROGRAM=1: wired call sites stay eager.
bool program_enabled();
/// Override the env default (tests / benches). Returns previous value.
bool program_set_enabled(bool on);

/// False when MF_DISABLE_FUSION=1: lowering keeps every recorded
/// elementwise step as its own plan step (the pre-fusion PR 4 plans).
/// Checked at capture/lowering time, not at replay.
bool program_fusion_enabled();
/// Override the env default (tests / benches). Returns previous value.
bool program_fusion_set_enabled(bool on);

/// False when MF_DISABLE_PARALLEL_PLAN=1: replay stays serial regardless
/// of the thread knob. Checked at replay time.
bool program_parallel_enabled();
bool program_parallel_set_enabled(bool on);

/// Wave-executor width. Defaults to MF_PLAN_THREADS (1 when unset —
/// plan-level parallelism is opt-in because it composes poorly with
/// OpenMP kernel threading: each executor forces its kernels serial).
int program_plan_threads();
/// Override the env default (tests / benches). Returns previous value.
int program_set_plan_threads(int n);

/// False when MF_DISABLE_WIDENING=1: Program::widen() refuses and
/// callers keep per-shape captures.
bool program_widening_enabled();
bool program_widening_set_enabled(bool on);

// ---- numerical health sentinel ----------------------------------------
//
// Opt-in (MF_HEALTH_CHECKS=1) per-replay NaN/Inf/divergence scan over the
// external slots a plan writes. On a trip, the wired call sites
// (mosaic::NeuralSubdomainSolver, mosaic::CompiledTrainStep) walk the
// fallback ladder — widened-f32 plan -> plain f64 replay -> eager —
// poisoning the tripped cache entry instead of propagating garbage.

/// True when MF_HEALTH_CHECKS=1 (default off: the scan costs one pass
/// over the plan's external outputs per replay).
bool health_checks_enabled();
/// Override the env default (tests / serving layer). Returns previous.
bool health_checks_set_enabled(bool on);

/// Process-wide sentinel accounting, aggregated across all Programs.
struct HealthStats {
  std::uint64_t checks = 0;           // sentinel scans run
  std::uint64_t trips = 0;            // scans that found bad values
  std::uint64_t plan_fallbacks = 0;   // ladder: f32 plan -> f64 plan
  std::uint64_t eager_fallbacks = 0;  // ladder: plan -> eager execution
};
HealthStats health_stats();
void health_stats_reset();
/// Call sites report each ladder step they take so the counters above
/// reflect actions, not just detections.
void health_note_fallback(bool to_eager);

// ---- capture hooks ----------------------------------------------------
//
// ops.cpp (and Tensor::detach) call these right where each kernel runs.
// They are no-ops unless the calling thread is inside Program::capture;
// `capturing()` is an inline thread-local test so the eager fast path
// pays one predictable branch per kernel.
namespace prog {

namespace detail {
extern thread_local Program::Impl* g_recorder;
}
inline bool capturing() { return detail::g_recorder != nullptr; }

enum class Unary : std::uint8_t {
  kAddScalar,
  kMulScalar,
  kPowScalar,
  kNeg,
  kExp,
  kLog,
  kSqrt,
  kTanh,
  kAbs,
  kSign,
  kGelu,
};

enum class Binary : std::uint8_t { kAdd, kSub, kMul, kDiv };

void on_unary(Unary fn, real scalar, const Tensor& a, const Tensor& out);
void on_binary(Binary fn, const Tensor& a, const Tensor& b, const Tensor& out);
void on_binary_bcast(Binary fn, const kernels::BroadcastPlan& plan,
                     const Tensor& a, const Tensor& b, const Tensor& out);
void on_broadcast_copy(const kernels::BroadcastPlan& plan, const Tensor& a,
                       const Tensor& out);
void on_reduce(const kernels::ReducePlan& plan, const Tensor& a,
               const Tensor& out);
void on_sum_all(const Tensor& a, const Tensor& out);
void on_sum_axis(const Tensor& a, const Tensor& out, int64_t outer,
                 int64_t n_axis, int64_t inner);
void on_matmul(const Tensor& a, const Tensor& b, const Tensor* bias,
               const Tensor& out, int64_t m, int64_t k, int64_t n);
void on_transpose(const Tensor& a, const Tensor& out, int64_t m, int64_t n);
/// Full-buffer copy (reshape / detach / clone).
void on_copy(const Tensor& src, const Tensor& out);
void on_slice_pack(const Tensor& in, const Tensor& out, int64_t outer,
                   int64_t len, int64_t inner, int64_t n_axis, int64_t start);
void on_slice_scatter(const Tensor& g, const Tensor& out, int64_t outer,
                      int64_t len, int64_t inner, int64_t n_axis,
                      int64_t start);
/// One source block of a concat (called once per part, in order).
void on_concat_part(const Tensor& part, const Tensor& out, int64_t outer,
                    int64_t total, int64_t offset, int64_t len, int64_t inner);
void on_conv1d_forward(const Tensor& in, const Tensor& w, const Tensor* bias,
                       const Tensor& out, int64_t B, int64_t Cin, int64_t L,
                       int64_t Cout, int64_t K, int64_t padding);
void on_conv1d_grad_input(const Tensor& gout, const Tensor& w,
                          const Tensor& out, int64_t B, int64_t Cin, int64_t L,
                          int64_t Cout, int64_t K, int64_t padding);
void on_conv1d_grad_weight(const Tensor& gout, const Tensor& in,
                           const Tensor& out, int64_t B, int64_t Cin,
                           int64_t L, int64_t Cout, int64_t K,
                           int64_t padding);
void on_conv1d_grad_bias(const Tensor& gout, const Tensor& out, int64_t B,
                         int64_t Cout, int64_t Lout);

// ---- in-plan optimizer update (optim::Adam) -----------------------------
//
// Adam::step() calls these while it applies its eager update under an
// enclosing capture, so the parameter update becomes part of the same plan
// as the forward/backward kernels: one tick step per step() call (advances
// `t` and refreshes the bias corrections at replay), then one param step
// per parameter with a defined gradient. The state block is owned by the
// optimizer and read live at replay — the schedule can keep writing `*lr`
// between replays — so the optimizer must outlive the captured plan.
struct AdamPlanState {
  double* lr = nullptr;   // points at the optimizer's live learning rate
  int64_t* t = nullptr;   // points at the optimizer's step counter
  double beta1 = 0.9, beta2 = 0.999, eps = 1e-8, weight_decay = 0;
  bool decoupled = false;
  double bc1 = 1, bc2 = 1;  // refreshed by the tick step at each replay
};
void on_adam_tick(AdamPlanState* st);
/// `m` / `v` point at the optimizer's moment buffers for this parameter
/// (stable for the optimizer's lifetime).
void on_adam_param(AdamPlanState* st, const Tensor& param, const Tensor& grad,
                   double* m, double* v);

/// optim::Lamb records one of these per parameter (after an on_adam_tick
/// sharing the same state block): the Adam direction, the layerwise
/// trust-ratio reduction, and the trust-scaled weight write replay as a
/// single plan step via sfn::lamb_param_update.
void on_lamb_param(AdamPlanState* st, const Tensor& param, const Tensor& grad,
                   double* m, double* v);

/// Called by an optimizer (or any other op) that cannot be represented
/// in a plan while a capture is active: poisons the capture, so
/// Program::capture ends *without* a plan (captured() stays false) and
/// the caller deterministically falls back to eager execution. The eager
/// effects of the capture body have already happened, correctly — only
/// the plan is discarded. Prevents half-captured plans (e.g. forward and
/// backward captured, parameter update silently missing).
void on_uncapturable();

}  // namespace prog

}  // namespace mf::ad
