#include "ad/kernels.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__)
#define MF_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#endif

namespace mf::ad::kernels {

namespace {
std::atomic<int64_t> g_grain{4096};
thread_local int g_serial_depth = 0;
}  // namespace

SerialRegionGuard::SerialRegionGuard() { ++g_serial_depth; }
SerialRegionGuard::~SerialRegionGuard() { --g_serial_depth; }

bool in_serial_region() { return g_serial_depth > 0; }

bool openmp_enabled() {
#ifdef MF_HAVE_OPENMP
  return true;
#else
  return false;
#endif
}

int max_threads() {
#ifdef MF_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_num_threads(int n) {
#ifdef MF_HAVE_OPENMP
  omp_set_num_threads(n > 0 ? n : 1);
#else
  (void)n;
#endif
}

int64_t grain() { return g_grain.load(std::memory_order_relaxed); }

void set_grain(int64_t g) {
  g_grain.store(g > 0 ? g : 1, std::memory_order_relaxed);
}

namespace detail {
bool should_thread(int64_t work) {
#ifdef MF_HAVE_OPENMP
  return work >= grain() && !in_serial_region() && omp_get_max_threads() > 1 &&
         !omp_in_parallel();
#else
  (void)work;
  return false;
#endif
}
}  // namespace detail

BroadcastPlan::BroadcastPlan(const Shape& out, const Shape& a, const Shape& b)
    : out_shape(out) {
  const std::size_t nd = out.size();
  a_strides.assign(nd, 0);
  b_strides.assign(nd, 0);
  const auto sa = strides_of(a);
  const auto sb = strides_of(b);
  const std::size_t oa = nd - a.size();
  const std::size_t ob = nd - b.size();
  for (std::size_t d = 0; d < nd; ++d) {
    if (d >= oa && a[d - oa] != 1) a_strides[d] = sa[d - oa];
    if (d >= ob && b[d - ob] != 1) b_strides[d] = sb[d - ob];
  }
  n = numel_of(out);
}

void broadcast_copy(const BroadcastPlan& plan, const real* src, real* out) {
  map_broadcast(plan, src, src, out, [](real x, real) { return x; });
}

void broadcast_copy(const BroadcastPlan& plan, const float* src, float* out) {
  map_broadcast(plan, src, src, out, [](float x, float) { return x; });
}

ReducePlan::ReducePlan(const Shape& src, const Shape& dst) {
  const std::size_t nd = src.size();
  const std::size_t off = nd - dst.size();
  const auto ss = strides_of(src);
  for (std::size_t d = 0; d < nd; ++d) {
    const int64_t dsize = d < off ? 1 : dst[d - off];
    if (dsize == src[d]) {
      out_sizes.push_back(dsize);
      out_src_strides.push_back(ss[d]);
      n_out *= dsize;
    } else {  // dsize == 1, src[d] > 1: reduced axis
      red_sizes.push_back(src[d]);
      red_src_strides.push_back(ss[d]);
      n_red *= src[d];
    }
  }
}

namespace {
// Shared by both widths. The accumulator is always double: for T = real
// this is the pre-existing expression (bitwise unchanged); for T = float
// it is the mixed-precision stability rule — reduce at master width,
// narrow once at the store.
template <typename T>
void reduce_broadcast_impl(const ReducePlan& plan, const T* src, T* dst) {
  const int64_t n_kept = static_cast<int64_t>(plan.out_sizes.size());
  const int64_t n_reddims = static_cast<int64_t>(plan.red_sizes.size());
  parallel_for(plan.n_out, plan.n_red, [&](int64_t begin, int64_t end) {
    std::vector<int64_t> rid(static_cast<std::size_t>(n_reddims), 0);
    for (int64_t o = begin; o < end; ++o) {
      // Decompose o over the kept dims to find the source base offset.
      int64_t base = 0, rem = o;
      for (int64_t d = n_kept - 1; d >= 0; --d) {
        const auto du = static_cast<std::size_t>(d);
        base += (rem % plan.out_sizes[du]) * plan.out_src_strides[du];
        rem /= plan.out_sizes[du];
      }
      // Walk the reduced subspace.
      double acc = 0;
      std::fill(rid.begin(), rid.end(), 0);
      int64_t roff = 0;
      for (int64_t r = 0; r < plan.n_red; ++r) {
        acc += src[base + roff];
        for (int64_t d = n_reddims - 1; d >= 0; --d) {
          const auto du = static_cast<std::size_t>(d);
          rid[du]++;
          roff += plan.red_src_strides[du];
          if (rid[du] < plan.red_sizes[du]) break;
          roff -= plan.red_src_strides[du] * plan.red_sizes[du];
          rid[du] = 0;
        }
      }
      dst[o] = static_cast<T>(acc);
    }
  });
}
}  // namespace

void reduce_broadcast(const ReducePlan& plan, const real* src, real* dst) {
  reduce_broadcast_impl(plan, src, dst);
}

void reduce_broadcast(const ReducePlan& plan, const float* src, float* dst) {
  reduce_broadcast_impl(plan, src, dst);
}

real reduce_sum(const real* a, int64_t n) {
  real acc = 0;
#ifdef MF_HAVE_OPENMP
  if (detail::should_thread(n)) {
#pragma omp parallel for reduction(+ : acc)
    for (int64_t i = 0; i < n; ++i) acc += a[i];
    return acc;
  }
#endif
  for (int64_t i = 0; i < n; ++i) acc += a[i];
  return acc;
}

double reduce_sum(const float* a, int64_t n) {
  double acc = 0;
#ifdef MF_HAVE_OPENMP
  if (detail::should_thread(n)) {
#pragma omp parallel for reduction(+ : acc)
    for (int64_t i = 0; i < n; ++i) acc += a[i];
    return acc;
  }
#endif
  for (int64_t i = 0; i < n; ++i) acc += a[i];
  return acc;
}

real reduce_max_abs(const real* a, int64_t n) {
  real m = 0;
#ifdef MF_HAVE_OPENMP
  if (detail::should_thread(n)) {
#pragma omp parallel for reduction(max : m)
    for (int64_t i = 0; i < n; ++i) m = std::max(m, std::abs(a[i]));
    return m;
  }
#endif
  for (int64_t i = 0; i < n; ++i) m = std::max(m, std::abs(a[i]));
  return m;
}

real reduce_sq_diff(const real* a, const real* b, int64_t n) {
  real acc = 0;
#ifdef MF_HAVE_OPENMP
  if (detail::should_thread(n)) {
#pragma omp parallel for reduction(+ : acc)
    for (int64_t i = 0; i < n; ++i) {
      const real d = a[i] - b[i];
      acc += d * d;
    }
    return acc;
  }
#endif
  for (int64_t i = 0; i < n; ++i) {
    const real d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

real reduce_abs_diff(const real* a, const real* b, int64_t n) {
  real acc = 0;
#ifdef MF_HAVE_OPENMP
  if (detail::should_thread(n)) {
#pragma omp parallel for reduction(+ : acc)
    for (int64_t i = 0; i < n; ++i) acc += std::abs(a[i] - b[i]);
    return acc;
  }
#endif
  for (int64_t i = 0; i < n; ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

namespace {
// Accumulates at the element width (the dst rows are the accumulators, so
// a double-width accumulator would need a scratch pass); the folded axis
// is a batch dimension of at most a few hundred, well inside f32's
// tolerance budget.
template <typename T>
void sum_axis_impl(const T* src, T* dst, int64_t outer, int64_t n_axis,
                   int64_t inner) {
  parallel_for(outer, n_axis * inner, [&](int64_t begin, int64_t end) {
    for (int64_t o = begin; o < end; ++o) {
      T* drow = dst + o * inner;
      for (int64_t k = 0; k < n_axis; ++k) {
        const T* srow = src + (o * n_axis + k) * inner;
        for (int64_t i = 0; i < inner; ++i) drow[i] += srow[i];
      }
    }
  });
}
}  // namespace

void sum_axis(const real* src, real* dst, int64_t outer, int64_t n_axis,
              int64_t inner) {
  sum_axis_impl(src, dst, outer, n_axis, inner);
}

void sum_axis(const float* src, float* dst, int64_t outer, int64_t n_axis,
              int64_t inner) {
  sum_axis_impl(src, dst, outer, n_axis, inner);
}

// Cache-block sizes (in elements): one b tile is kTileK x kTileN doubles
// (256 KiB), sized so the tile stays resident while every row of the
// thread's chunk streams over it.
constexpr int64_t kTileK = 64;
constexpr int64_t kTileN = 512;

#ifdef MF_HAVE_AVX2_KERNELS
// AVX2 variants of the register-blocked micro-kernel, dispatched at
// runtime so the binary stays baseline x86-64. Bitwise identical to the
// scalar path: each output element is one vector lane accumulating
// `acc += av * b` in the same ascending kk order with separate mulpd /
// addpd (no FMA contraction), and the zero-skip tests the same scalar
// a-element that guards the whole 4-column strip in the scalar code.
__attribute__((target("avx2"))) static void matmul_rows4_avx2(
    const real* a0, const real* a1, const real* a2, const real* a3,
    const real* b, const real* bias, real* orow0, int64_t k, int64_t n) {
  int64_t j0 = 0;
  // 4 rows x 8 columns: 8 accumulator ymm = 8 independent addpd dependency
  // chains, enough ILP to hide the 4-cycle add latency that bounds a
  // single-strip (4-chain) tile.
  for (; j0 + 8 <= n; j0 += 8) {
    __m256d acc0a, acc0b, acc1a, acc1b, acc2a, acc2b, acc3a, acc3b;
    if (bias) {
      const __m256d ba = _mm256_loadu_pd(bias + j0);
      const __m256d bb = _mm256_loadu_pd(bias + j0 + 4);
      acc0a = acc1a = acc2a = acc3a = ba;
      acc0b = acc1b = acc2b = acc3b = bb;
    } else {
      acc0a = acc0b = acc1a = acc1b = acc2a = acc2b = acc3a = acc3b =
          _mm256_setzero_pd();
    }
    const real* brow = b + j0;
    for (int64_t kk = 0; kk < k; ++kk, brow += n) {
      const __m256d bva = _mm256_loadu_pd(brow);
      const __m256d bvb = _mm256_loadu_pd(brow + 4);
      const real av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
      if (av0 != 0) {
        const __m256d av = _mm256_set1_pd(av0);
        acc0a = _mm256_add_pd(acc0a, _mm256_mul_pd(av, bva));
        acc0b = _mm256_add_pd(acc0b, _mm256_mul_pd(av, bvb));
      }
      if (av1 != 0) {
        const __m256d av = _mm256_set1_pd(av1);
        acc1a = _mm256_add_pd(acc1a, _mm256_mul_pd(av, bva));
        acc1b = _mm256_add_pd(acc1b, _mm256_mul_pd(av, bvb));
      }
      if (av2 != 0) {
        const __m256d av = _mm256_set1_pd(av2);
        acc2a = _mm256_add_pd(acc2a, _mm256_mul_pd(av, bva));
        acc2b = _mm256_add_pd(acc2b, _mm256_mul_pd(av, bvb));
      }
      if (av3 != 0) {
        const __m256d av = _mm256_set1_pd(av3);
        acc3a = _mm256_add_pd(acc3a, _mm256_mul_pd(av, bva));
        acc3b = _mm256_add_pd(acc3b, _mm256_mul_pd(av, bvb));
      }
    }
    _mm256_storeu_pd(orow0 + j0, acc0a);
    _mm256_storeu_pd(orow0 + j0 + 4, acc0b);
    _mm256_storeu_pd(orow0 + n + j0, acc1a);
    _mm256_storeu_pd(orow0 + n + j0 + 4, acc1b);
    _mm256_storeu_pd(orow0 + 2 * n + j0, acc2a);
    _mm256_storeu_pd(orow0 + 2 * n + j0 + 4, acc2b);
    _mm256_storeu_pd(orow0 + 3 * n + j0, acc3a);
    _mm256_storeu_pd(orow0 + 3 * n + j0 + 4, acc3b);
  }
  for (; j0 + 4 <= n; j0 += 4) {
    __m256d acc0, acc1, acc2, acc3;
    if (bias) {
      acc0 = acc1 = acc2 = acc3 = _mm256_loadu_pd(bias + j0);
    } else {
      acc0 = acc1 = acc2 = acc3 = _mm256_setzero_pd();
    }
    const real* brow = b + j0;
    for (int64_t kk = 0; kk < k; ++kk, brow += n) {
      const __m256d bv = _mm256_loadu_pd(brow);
      const real av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
      if (av0 != 0)
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_set1_pd(av0), bv));
      if (av1 != 0)
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_set1_pd(av1), bv));
      if (av2 != 0)
        acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(_mm256_set1_pd(av2), bv));
      if (av3 != 0)
        acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(_mm256_set1_pd(av3), bv));
    }
    _mm256_storeu_pd(orow0 + j0, acc0);
    _mm256_storeu_pd(orow0 + n + j0, acc1);
    _mm256_storeu_pd(orow0 + 2 * n + j0, acc2);
    _mm256_storeu_pd(orow0 + 3 * n + j0, acc3);
  }
  if (j0 < n) {  // column remainder: scalar, same per-element order
    const int64_t jw = n - j0;
    real acc[4][4];
    for (int64_t r = 0; r < 4; ++r)
      for (int64_t j = 0; j < jw; ++j) acc[r][j] = bias ? bias[j0 + j] : 0;
    for (int64_t kk = 0; kk < k; ++kk) {
      const real* brow = b + kk * n + j0;
      const real av[4] = {a0[kk], a1[kk], a2[kk], a3[kk]};
      for (int64_t r = 0; r < 4; ++r) {
        if (av[r] != 0) {
          for (int64_t j = 0; j < jw; ++j) acc[r][j] += av[r] * brow[j];
        }
      }
    }
    for (int64_t r = 0; r < 4; ++r)
      for (int64_t j = 0; j < jw; ++j) orow0[r * n + j0 + j] = acc[r][j];
  }
}

__attribute__((target("avx2"))) static void matmul_rows1_avx2(
    const real* arow, const real* b, const real* bias, real* orow, int64_t k,
    int64_t n) {
  int64_t j0 = 0;
  for (; j0 + 4 <= n; j0 += 4) {
    __m256d acc = bias ? _mm256_loadu_pd(bias + j0) : _mm256_setzero_pd();
    const real* brow = b + j0;
    for (int64_t kk = 0; kk < k; ++kk, brow += n) {
      const real av = arow[kk];
      if (av != 0)
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(_mm256_set1_pd(av), _mm256_loadu_pd(brow)));
    }
    _mm256_storeu_pd(orow + j0, acc);
  }
  for (int64_t j = j0; j < n; ++j) orow[j] = bias ? bias[j] : 0;
  for (int64_t kk = 0; kk < k && j0 < n; ++kk) {
    const real av = arow[kk];
    if (av == 0) continue;
    const real* brow = b + kk * n;
    for (int64_t j = j0; j < n; ++j) orow[j] += av * brow[j];
  }
}

/// `orow[j] += av * brow[j]` over a tile strip — the inner update of the
/// cache-blocked path, 4 lanes wide. Independent elements, so plain
/// vectorization is bitwise-exact.
__attribute__((target("avx2"))) static void axpy_avx2(const real* brow,
                                                      real* orow, real av,
                                                      int64_t len) {
  const __m256d avv = _mm256_set1_pd(av);
  int64_t j = 0;
  for (; j + 4 <= len; j += 4) {
    _mm256_storeu_pd(
        orow + j, _mm256_add_pd(_mm256_loadu_pd(orow + j),
                                _mm256_mul_pd(avv, _mm256_loadu_pd(brow + j))));
  }
  for (; j < len; ++j) orow[j] += av * brow[j];
}

static bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

static bool cpu_has_fma() {
  static const bool has = __builtin_cpu_supports("fma");
  return has;
}

// ---- FMA matmul micro-kernels ----
//
// Same tiling as the no-FMA kernels above but with fused multiply-add:
// one vfmadd231pd where the exact path issues mulpd + addpd, roughly
// doubling arithmetic throughput on the port-bound width-64 GEMMs of
// SDNet inference. The fused rounding changes the last bits relative to
// the scalar loop (it is, if anything, more accurate), so this tier is
// hatch-controlled: MF_DISABLE_FMA_KERNELS=1 (or fma_kernels_set_enabled)
// restores the bitwise-exact kernels. The zero-skip of the exact path is
// dropped — it exists to mirror the scalar loop branch-for-branch, which
// this tier does not promise.
__attribute__((target("avx2,fma"))) static void matmul_rows4_fma(
    const real* a0, const real* a1, const real* a2, const real* a3,
    const real* b, const real* bias, real* orow0, int64_t k, int64_t n) {
  int64_t j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    __m256d acc0a, acc0b, acc1a, acc1b, acc2a, acc2b, acc3a, acc3b;
    if (bias) {
      const __m256d ba = _mm256_loadu_pd(bias + j0);
      const __m256d bb = _mm256_loadu_pd(bias + j0 + 4);
      acc0a = acc1a = acc2a = acc3a = ba;
      acc0b = acc1b = acc2b = acc3b = bb;
    } else {
      acc0a = acc0b = acc1a = acc1b = acc2a = acc2b = acc3a = acc3b =
          _mm256_setzero_pd();
    }
    const real* brow = b + j0;
    for (int64_t kk = 0; kk < k; ++kk, brow += n) {
      const __m256d bva = _mm256_loadu_pd(brow);
      const __m256d bvb = _mm256_loadu_pd(brow + 4);
      const __m256d av0 = _mm256_set1_pd(a0[kk]);
      acc0a = _mm256_fmadd_pd(av0, bva, acc0a);
      acc0b = _mm256_fmadd_pd(av0, bvb, acc0b);
      const __m256d av1 = _mm256_set1_pd(a1[kk]);
      acc1a = _mm256_fmadd_pd(av1, bva, acc1a);
      acc1b = _mm256_fmadd_pd(av1, bvb, acc1b);
      const __m256d av2 = _mm256_set1_pd(a2[kk]);
      acc2a = _mm256_fmadd_pd(av2, bva, acc2a);
      acc2b = _mm256_fmadd_pd(av2, bvb, acc2b);
      const __m256d av3 = _mm256_set1_pd(a3[kk]);
      acc3a = _mm256_fmadd_pd(av3, bva, acc3a);
      acc3b = _mm256_fmadd_pd(av3, bvb, acc3b);
    }
    _mm256_storeu_pd(orow0 + j0, acc0a);
    _mm256_storeu_pd(orow0 + j0 + 4, acc0b);
    _mm256_storeu_pd(orow0 + n + j0, acc1a);
    _mm256_storeu_pd(orow0 + n + j0 + 4, acc1b);
    _mm256_storeu_pd(orow0 + 2 * n + j0, acc2a);
    _mm256_storeu_pd(orow0 + 2 * n + j0 + 4, acc2b);
    _mm256_storeu_pd(orow0 + 3 * n + j0, acc3a);
    _mm256_storeu_pd(orow0 + 3 * n + j0 + 4, acc3b);
  }
  for (; j0 + 4 <= n; j0 += 4) {
    __m256d acc0, acc1, acc2, acc3;
    if (bias) {
      acc0 = acc1 = acc2 = acc3 = _mm256_loadu_pd(bias + j0);
    } else {
      acc0 = acc1 = acc2 = acc3 = _mm256_setzero_pd();
    }
    const real* brow = b + j0;
    for (int64_t kk = 0; kk < k; ++kk, brow += n) {
      const __m256d bv = _mm256_loadu_pd(brow);
      acc0 = _mm256_fmadd_pd(_mm256_set1_pd(a0[kk]), bv, acc0);
      acc1 = _mm256_fmadd_pd(_mm256_set1_pd(a1[kk]), bv, acc1);
      acc2 = _mm256_fmadd_pd(_mm256_set1_pd(a2[kk]), bv, acc2);
      acc3 = _mm256_fmadd_pd(_mm256_set1_pd(a3[kk]), bv, acc3);
    }
    _mm256_storeu_pd(orow0 + j0, acc0);
    _mm256_storeu_pd(orow0 + n + j0, acc1);
    _mm256_storeu_pd(orow0 + 2 * n + j0, acc2);
    _mm256_storeu_pd(orow0 + 3 * n + j0, acc3);
  }
  if (j0 < n) {  // column remainder: scalar with explicit std::fma
    const int64_t jw = n - j0;
    real acc[4][4];
    for (int64_t r = 0; r < 4; ++r)
      for (int64_t j = 0; j < jw; ++j) acc[r][j] = bias ? bias[j0 + j] : 0;
    for (int64_t kk = 0; kk < k; ++kk) {
      const real* brow = b + kk * n + j0;
      const real av[4] = {a0[kk], a1[kk], a2[kk], a3[kk]};
      for (int64_t r = 0; r < 4; ++r)
        for (int64_t j = 0; j < jw; ++j)
          acc[r][j] = std::fma(av[r], brow[j], acc[r][j]);
    }
    for (int64_t r = 0; r < 4; ++r)
      for (int64_t j = 0; j < jw; ++j) orow0[r * n + j0 + j] = acc[r][j];
  }
}

__attribute__((target("avx2,fma"))) static void matmul_rows1_fma(
    const real* arow, const real* b, const real* bias, real* orow, int64_t k,
    int64_t n) {
  int64_t j0 = 0;
  for (; j0 + 4 <= n; j0 += 4) {
    __m256d acc = bias ? _mm256_loadu_pd(bias + j0) : _mm256_setzero_pd();
    const real* brow = b + j0;
    for (int64_t kk = 0; kk < k; ++kk, brow += n) {
      acc = _mm256_fmadd_pd(_mm256_set1_pd(arow[kk]), _mm256_loadu_pd(brow),
                            acc);
    }
    _mm256_storeu_pd(orow + j0, acc);
  }
  for (int64_t j = j0; j < n; ++j) orow[j] = bias ? bias[j] : 0;
  for (int64_t kk = 0; kk < k && j0 < n; ++kk) {
    const real av = arow[kk];
    const real* brow = b + kk * n;
    for (int64_t j = j0; j < n; ++j) orow[j] = std::fma(av, brow[j], orow[j]);
  }
}

__attribute__((target("avx2,fma"))) static void axpy_fma(const real* brow,
                                                         real* orow, real av,
                                                         int64_t len) {
  const __m256d avv = _mm256_set1_pd(av);
  int64_t j = 0;
  for (; j + 4 <= len; j += 4) {
    _mm256_storeu_pd(orow + j, _mm256_fmadd_pd(avv, _mm256_loadu_pd(brow + j),
                                               _mm256_loadu_pd(orow + j)));
  }
  for (; j < len; ++j) orow[j] = std::fma(av, brow[j], orow[j]);
}

// ---- float FMA matmul micro-kernels ----
//
// 8-lane ps twins of the FMA tier above: 4 rows of a share every b load,
// with a 16-column (two-register) accumulator strip per row. The float
// tier makes no bitwise promise against a scalar loop (it is
// tolerance-gated), but it is deterministic and thread-count-invariant:
// row partitioning plus a fixed ascending kk order means an output
// element's value never depends on the thread count. No zero-skip — that
// exists in the exact double tier only to mirror the scalar loop
// branch-for-branch.
__attribute__((target("avx2,fma"))) static void matmul_rows4_fma_f(
    const float* a0, const float* a1, const float* a2, const float* a3,
    const float* b, const float* bias, float* orow0, int64_t k, int64_t n) {
  int64_t j0 = 0;
  for (; j0 + 16 <= n; j0 += 16) {
    __m256 acc0a, acc0b, acc1a, acc1b, acc2a, acc2b, acc3a, acc3b;
    if (bias) {
      const __m256 ba = _mm256_loadu_ps(bias + j0);
      const __m256 bb = _mm256_loadu_ps(bias + j0 + 8);
      acc0a = acc1a = acc2a = acc3a = ba;
      acc0b = acc1b = acc2b = acc3b = bb;
    } else {
      acc0a = acc0b = acc1a = acc1b = acc2a = acc2b = acc3a = acc3b =
          _mm256_setzero_ps();
    }
    const float* brow = b + j0;
    for (int64_t kk = 0; kk < k; ++kk, brow += n) {
      const __m256 bva = _mm256_loadu_ps(brow);
      const __m256 bvb = _mm256_loadu_ps(brow + 8);
      const __m256 av0 = _mm256_set1_ps(a0[kk]);
      acc0a = _mm256_fmadd_ps(av0, bva, acc0a);
      acc0b = _mm256_fmadd_ps(av0, bvb, acc0b);
      const __m256 av1 = _mm256_set1_ps(a1[kk]);
      acc1a = _mm256_fmadd_ps(av1, bva, acc1a);
      acc1b = _mm256_fmadd_ps(av1, bvb, acc1b);
      const __m256 av2 = _mm256_set1_ps(a2[kk]);
      acc2a = _mm256_fmadd_ps(av2, bva, acc2a);
      acc2b = _mm256_fmadd_ps(av2, bvb, acc2b);
      const __m256 av3 = _mm256_set1_ps(a3[kk]);
      acc3a = _mm256_fmadd_ps(av3, bva, acc3a);
      acc3b = _mm256_fmadd_ps(av3, bvb, acc3b);
    }
    _mm256_storeu_ps(orow0 + j0, acc0a);
    _mm256_storeu_ps(orow0 + j0 + 8, acc0b);
    _mm256_storeu_ps(orow0 + n + j0, acc1a);
    _mm256_storeu_ps(orow0 + n + j0 + 8, acc1b);
    _mm256_storeu_ps(orow0 + 2 * n + j0, acc2a);
    _mm256_storeu_ps(orow0 + 2 * n + j0 + 8, acc2b);
    _mm256_storeu_ps(orow0 + 3 * n + j0, acc3a);
    _mm256_storeu_ps(orow0 + 3 * n + j0 + 8, acc3b);
  }
  for (; j0 + 8 <= n; j0 += 8) {
    __m256 acc0, acc1, acc2, acc3;
    if (bias) {
      acc0 = acc1 = acc2 = acc3 = _mm256_loadu_ps(bias + j0);
    } else {
      acc0 = acc1 = acc2 = acc3 = _mm256_setzero_ps();
    }
    const float* brow = b + j0;
    for (int64_t kk = 0; kk < k; ++kk, brow += n) {
      const __m256 bv = _mm256_loadu_ps(brow);
      acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[kk]), bv, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[kk]), bv, acc1);
      acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[kk]), bv, acc2);
      acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[kk]), bv, acc3);
    }
    _mm256_storeu_ps(orow0 + j0, acc0);
    _mm256_storeu_ps(orow0 + n + j0, acc1);
    _mm256_storeu_ps(orow0 + 2 * n + j0, acc2);
    _mm256_storeu_ps(orow0 + 3 * n + j0, acc3);
  }
  if (j0 < n) {  // column remainder: scalar with explicit std::fma
    const int64_t jw = n - j0;
    float acc[4][8];
    for (int64_t r = 0; r < 4; ++r)
      for (int64_t j = 0; j < jw; ++j) acc[r][j] = bias ? bias[j0 + j] : 0;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * n + j0;
      const float av[4] = {a0[kk], a1[kk], a2[kk], a3[kk]};
      for (int64_t r = 0; r < 4; ++r)
        for (int64_t j = 0; j < jw; ++j)
          acc[r][j] = std::fma(av[r], brow[j], acc[r][j]);
    }
    for (int64_t r = 0; r < 4; ++r)
      for (int64_t j = 0; j < jw; ++j) orow0[r * n + j0 + j] = acc[r][j];
  }
}

__attribute__((target("avx2,fma"))) static void matmul_rows1_fma_f(
    const float* arow, const float* b, const float* bias, float* orow,
    int64_t k, int64_t n) {
  int64_t j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    __m256 acc = bias ? _mm256_loadu_ps(bias + j0) : _mm256_setzero_ps();
    const float* brow = b + j0;
    for (int64_t kk = 0; kk < k; ++kk, brow += n) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[kk]), _mm256_loadu_ps(brow),
                            acc);
    }
    _mm256_storeu_ps(orow + j0, acc);
  }
  for (int64_t j = j0; j < n; ++j) orow[j] = bias ? bias[j] : 0;
  for (int64_t kk = 0; kk < k && j0 < n; ++kk) {
    const float av = arow[kk];
    const float* brow = b + kk * n;
    for (int64_t j = j0; j < n; ++j) orow[j] = std::fma(av, brow[j], orow[j]);
  }
}

__attribute__((target("avx2,fma"))) static void axpy_fma_f(const float* brow,
                                                           float* orow,
                                                           float av,
                                                           int64_t len) {
  const __m256 avv = _mm256_set1_ps(av);
  int64_t j = 0;
  for (; j + 8 <= len; j += 8) {
    _mm256_storeu_ps(orow + j, _mm256_fmadd_ps(avv, _mm256_loadu_ps(brow + j),
                                               _mm256_loadu_ps(orow + j)));
  }
  for (; j < len; ++j) orow[j] = std::fma(av, brow[j], orow[j]);
}

/// 4-lane body of the arithmetic map_binary overloads; `op` selects the
/// instruction outside the vector loop. Scalar tail for n % 4.
__attribute__((target("avx2"))) static void map_binary_avx2(
    const real* a, const real* b, real* out, int64_t begin, int64_t end,
    int op) {
  int64_t i = begin;
  switch (op) {
    case 0:
      for (; i + 4 <= end; i += 4)
        _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                                _mm256_loadu_pd(b + i)));
      for (; i < end; ++i) out[i] = a[i] + b[i];
      break;
    case 1:
      for (; i + 4 <= end; i += 4)
        _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                                _mm256_loadu_pd(b + i)));
      for (; i < end; ++i) out[i] = a[i] - b[i];
      break;
    case 2:
      for (; i + 4 <= end; i += 4)
        _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                                _mm256_loadu_pd(b + i)));
      for (; i < end; ++i) out[i] = a[i] * b[i];
      break;
    case 3:
      for (; i + 4 <= end; i += 4)
        _mm256_storeu_pd(out + i, _mm256_div_pd(_mm256_loadu_pd(a + i),
                                                _mm256_loadu_pd(b + i)));
      for (; i < end; ++i) out[i] = a[i] / b[i];
      break;
  }
}

/// 8-lane ps twin of map_binary_avx2. Per-lane IEEE ops, so the vector
/// body and the scalar tail produce identical float bits.
__attribute__((target("avx2"))) static void map_binary_avx2_f(
    const float* a, const float* b, float* out, int64_t begin, int64_t end,
    int op) {
  int64_t i = begin;
  switch (op) {
    case 0:
      for (; i + 8 <= end; i += 8)
        _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                                _mm256_loadu_ps(b + i)));
      for (; i < end; ++i) out[i] = a[i] + b[i];
      break;
    case 1:
      for (; i + 8 <= end; i += 8)
        _mm256_storeu_ps(out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                                _mm256_loadu_ps(b + i)));
      for (; i < end; ++i) out[i] = a[i] - b[i];
      break;
    case 2:
      for (; i + 8 <= end; i += 8)
        _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                                _mm256_loadu_ps(b + i)));
      for (; i < end; ++i) out[i] = a[i] * b[i];
      break;
    case 3:
      for (; i + 8 <= end; i += 8)
        _mm256_storeu_ps(out + i, _mm256_div_ps(_mm256_loadu_ps(a + i),
                                                _mm256_loadu_ps(b + i)));
      for (; i < end; ++i) out[i] = a[i] / b[i];
      break;
  }
}
#endif  // MF_HAVE_AVX2_KERNELS

namespace {
template <typename F>
void map_binary_dispatch(const real* a, const real* b, real* out, int64_t n,
                         F f, int op) {
#ifdef MF_HAVE_AVX2_KERNELS
  if (cpu_has_avx2()) {
    parallel_for(n, [&](int64_t begin, int64_t end) {
      map_binary_avx2(a, b, out, begin, end, op);
    });
    return;
  }
#endif
  (void)op;
  parallel_for(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[i] = f(a[i], b[i]);
  });
}
}  // namespace

void map_binary(const real* a, const real* b, real* out, int64_t n, sfn::Add) {
  map_binary_dispatch(a, b, out, n, sfn::Add{}, 0);
}
void map_binary(const real* a, const real* b, real* out, int64_t n, sfn::Sub) {
  map_binary_dispatch(a, b, out, n, sfn::Sub{}, 1);
}
void map_binary(const real* a, const real* b, real* out, int64_t n, sfn::Mul) {
  map_binary_dispatch(a, b, out, n, sfn::Mul{}, 2);
}
void map_binary(const real* a, const real* b, real* out, int64_t n, sfn::Div) {
  map_binary_dispatch(a, b, out, n, sfn::Div{}, 3);
}

namespace {
template <typename F>
void map_binary_dispatch_f(const float* a, const float* b, float* out,
                           int64_t n, F f, int op) {
#ifdef MF_HAVE_AVX2_KERNELS
  if (cpu_has_avx2()) {
    parallel_for(n, [&](int64_t begin, int64_t end) {
      map_binary_avx2_f(a, b, out, begin, end, op);
    });
    return;
  }
#endif
  (void)op;
  parallel_for(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[i] = f(a[i], b[i]);
  });
}
}  // namespace

void map_binary(const float* a, const float* b, float* out, int64_t n,
                sfn::Add) {
  map_binary_dispatch_f(a, b, out, n, sfn::Add{}, 0);
}
void map_binary(const float* a, const float* b, float* out, int64_t n,
                sfn::Sub) {
  map_binary_dispatch_f(a, b, out, n, sfn::Sub{}, 1);
}
void map_binary(const float* a, const float* b, float* out, int64_t n,
                sfn::Mul) {
  map_binary_dispatch_f(a, b, out, n, sfn::Mul{}, 2);
}
void map_binary(const float* a, const float* b, float* out, int64_t n,
                sfn::Div) {
  map_binary_dispatch_f(a, b, out, n, sfn::Div{}, 3);
}

// ---- fast tanh / gelu ----
//
// Cephes-style double-precision tanh (rational minimax on |x| < 0.625,
// exp-based elsewhere, saturated past 19.0625). The scalar remainder
// routine below replicates the vector lane operation-for-operation —
// same polynomial order, same round-to-nearest for the exp exponent,
// same exact 2^n scaling, no FMA on either side (the build never enables
// contraction) — so a given input produces the same bits regardless of
// whether a 4-lane group or the tail computed it. That property is what
// keeps threaded/serial and eager/replay comparisons bitwise stable.

namespace {

constexpr double kTanhSmall = 0.625;
constexpr double kTanhSat = 19.0625;
// tanh rational coefficients (numerator P, monic denominator Q).
constexpr double kTP0 = -9.64399179425052238628e-1;
constexpr double kTP1 = -9.92877231001918586564e1;
constexpr double kTP2 = -1.61468768441708447952e3;
constexpr double kTQ0 = 1.12811678491632931402e2;
constexpr double kTQ1 = 2.23548839060100448583e3;
constexpr double kTQ2 = 4.84406305325125486048e3;
// exp rational coefficients and argument-reduction constants.
constexpr double kEP0 = 1.26177193074810590878e-4;
constexpr double kEP1 = 3.02994407707441961300e-2;
constexpr double kEP2 = 9.99999999999999999910e-1;
constexpr double kEQ0 = 3.00198505138664455042e-6;
constexpr double kEQ1 = 2.52448340349684104192e-3;
constexpr double kEQ2 = 2.27265548208155028766e-1;
constexpr double kEQ3 = 2.0;
constexpr double kLog2E = 1.4426950408889634073599;
constexpr double kExpC1 = 6.93145751953125e-1;
constexpr double kExpC2 = 1.42860682030941723212e-6;

// exp(x) for x in the reduced tanh range [1.25, 2*kTanhSat); not a
// general exp (no overflow/underflow handling — callers bound the arg).
inline double fast_exp_scalar(double x) {
  const double n = std::nearbyint(x * kLog2E);
  x = x - n * kExpC1;
  x = x - n * kExpC2;
  const double z = x * x;
  const double px = x * ((kEP0 * z + kEP1) * z + kEP2);
  const double qx = ((kEQ0 * z + kEQ1) * z + kEQ2) * z + kEQ3;
  const double r = 1.0 + 2.0 * (px / (qx - px));
  // Exact 2^n scaling via exponent-field construction, mirroring the
  // vector lane's integer build of the scale factor.
  return r * std::ldexp(1.0, static_cast<int>(n));
}

inline double fast_tanh_scalar(double x) {
  const double ax = std::fabs(x);
  if (ax < kTanhSmall) {
    const double z = x * x;
    const double num = (kTP0 * z + kTP1) * z + kTP2;
    const double den = ((z + kTQ0) * z + kTQ1) * z + kTQ2;
    return x + (x * z) * (num / den);
  }
  if (ax != ax) return x;  // NaN propagates (cannot reach the bit casts)
  double large = 1.0;
  if (!(ax >= kTanhSat)) {
    const double e = fast_exp_scalar(ax + ax);
    large = 1.0 - 2.0 / (e + 1.0);
  }
  return std::copysign(large, x);
}

inline double fast_gelu_scalar(double x) {
  const double u = sfn::kGeluCoeff * (x + 0.044715 * x * x * x);
  return 0.5 * x * (1.0 + fast_tanh_scalar(u));
}

// ---- float twins ----
//
// Every constant is the double Cephes table narrowed through the element
// type — no double arithmetic hides inside the float path (the satellite
// float-narrowing rule), and the rational forms are already far more
// accurate than float eps. The exponent scaling builds a float via
// (n + 127) << 23, mirroring the double path's (n + 1023) << 52. As with
// the double tier, the scalar tail replicates the lane ops exactly, so an
// element's value never depends on which chunk or lane computed it.

constexpr float kTanhSmallF = static_cast<float>(kTanhSmall);
constexpr float kTanhSatF = static_cast<float>(kTanhSat);
constexpr float kTP0F = static_cast<float>(kTP0);
constexpr float kTP1F = static_cast<float>(kTP1);
constexpr float kTP2F = static_cast<float>(kTP2);
constexpr float kTQ0F = static_cast<float>(kTQ0);
constexpr float kTQ1F = static_cast<float>(kTQ1);
constexpr float kTQ2F = static_cast<float>(kTQ2);
constexpr float kEP0F = static_cast<float>(kEP0);
constexpr float kEP1F = static_cast<float>(kEP1);
constexpr float kEP2F = static_cast<float>(kEP2);
constexpr float kEQ0F = static_cast<float>(kEQ0);
constexpr float kEQ1F = static_cast<float>(kEQ1);
constexpr float kEQ2F = static_cast<float>(kEQ2);
constexpr float kEQ3F = static_cast<float>(kEQ3);
constexpr float kLog2EF = static_cast<float>(kLog2E);
constexpr float kExpC1F = static_cast<float>(kExpC1);
constexpr float kExpC2F = static_cast<float>(kExpC2);

// exp(x) for the reduced tanh range; n stays below 56, so the float
// exponent field cannot overflow.
inline float fast_exp_scalar_f(float x) {
  const float n = std::nearbyint(x * kLog2EF);
  x = x - n * kExpC1F;
  x = x - n * kExpC2F;
  const float z = x * x;
  const float px = x * ((kEP0F * z + kEP1F) * z + kEP2F);
  const float qx = ((kEQ0F * z + kEQ1F) * z + kEQ2F) * z + kEQ3F;
  const float r = 1.0f + 2.0f * (px / (qx - px));
  return r * std::ldexp(1.0f, static_cast<int>(n));
}

inline float fast_tanh_scalar_f(float x) {
  const float ax = std::fabs(x);
  if (ax < kTanhSmallF) {
    const float z = x * x;
    const float num = (kTP0F * z + kTP1F) * z + kTP2F;
    const float den = ((z + kTQ0F) * z + kTQ1F) * z + kTQ2F;
    return x + (x * z) * (num / den);
  }
  if (ax != ax) return x;  // NaN propagates (cannot reach the bit casts)
  float large = 1.0f;
  if (!(ax >= kTanhSatF)) {
    const float e = fast_exp_scalar_f(ax + ax);
    large = 1.0f - 2.0f / (e + 1.0f);
  }
  return std::copysign(large, x);
}

inline float fast_gelu_scalar_f(float x) {
  const float u =
      sfn::gelu_coeff<float> * (x + sfn::gelu_cubic<float> * x * x * x);
  return 0.5f * x * (1.0f + fast_tanh_scalar_f(u));
}

bool fast_tanh_env_default() {
  const char* e = std::getenv("MF_DISABLE_FAST_TANH");
  return !(e && e[0] == '1');
}

std::atomic<bool> g_fast_tanh{fast_tanh_env_default()};

bool fma_kernels_env_default() {
  const char* e = std::getenv("MF_DISABLE_FMA_KERNELS");
  return !(e && e[0] == '1');
}

std::atomic<bool> g_fma_kernels{fma_kernels_env_default()};

}  // namespace

bool fma_kernels_enabled() {
  return g_fma_kernels.load(std::memory_order_relaxed);
}

bool fma_kernels_set_enabled(bool on) {
  return g_fma_kernels.exchange(on, std::memory_order_relaxed);
}

bool fma_kernels_active() {
#ifdef MF_HAVE_AVX2_KERNELS
  return fma_kernels_enabled() && cpu_has_avx2() && cpu_has_fma();
#else
  return false;
#endif
}

bool fast_tanh_enabled() {
  return g_fast_tanh.load(std::memory_order_relaxed);
}

bool fast_tanh_set_enabled(bool on) {
  return g_fast_tanh.exchange(on, std::memory_order_relaxed);
}

bool fast_tanh_active() {
#ifdef MF_HAVE_AVX2_KERNELS
  return fast_tanh_enabled() && cpu_has_avx2();
#else
  return false;
#endif
}

#ifdef MF_HAVE_AVX2_KERNELS
__attribute__((target("avx2"))) static inline __m256d fast_exp_pd(__m256d x) {
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(kLog2E)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  x = _mm256_sub_pd(x, _mm256_mul_pd(n, _mm256_set1_pd(kExpC1)));
  x = _mm256_sub_pd(x, _mm256_mul_pd(n, _mm256_set1_pd(kExpC2)));
  const __m256d z = _mm256_mul_pd(x, x);
  const __m256d px = _mm256_mul_pd(
      x, _mm256_add_pd(
             _mm256_mul_pd(
                 _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kEP0), z),
                               _mm256_set1_pd(kEP1)),
                 z),
             _mm256_set1_pd(kEP2)));
  const __m256d qx = _mm256_add_pd(
      _mm256_mul_pd(
          _mm256_add_pd(
              _mm256_mul_pd(
                  _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kEQ0), z),
                                _mm256_set1_pd(kEQ1)),
                  z),
              _mm256_set1_pd(kEQ2)),
          z),
      _mm256_set1_pd(kEQ3));
  const __m256d r = _mm256_add_pd(
      _mm256_set1_pd(1.0),
      _mm256_mul_pd(_mm256_set1_pd(2.0), _mm256_div_pd(px, _mm256_sub_pd(qx, px))));
  // 2^n: n is integral and small (|n| < 64 in the tanh range), so the
  // int32 convert is exact and the exponent field cannot overflow.
  const __m128i ni = _mm256_cvtpd_epi32(n);
  const __m256i ni64 = _mm256_cvtepi32_epi64(ni);
  const __m256i bits =
      _mm256_slli_epi64(_mm256_add_epi64(ni64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(r, _mm256_castsi256_pd(bits));
}

__attribute__((target("avx2"))) static inline __m256d fast_tanh_pd(__m256d x) {
  const __m256d signmask = _mm256_set1_pd(-0.0);
  const __m256d sign = _mm256_and_pd(x, signmask);
  const __m256d ax = _mm256_andnot_pd(signmask, x);
  // |x| < 0.625: x + x*z*P(z)/Q(z)
  const __m256d z = _mm256_mul_pd(x, x);
  const __m256d num = _mm256_add_pd(
      _mm256_mul_pd(_mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kTP0), z),
                                  _mm256_set1_pd(kTP1)),
                    z),
      _mm256_set1_pd(kTP2));
  const __m256d den = _mm256_add_pd(
      _mm256_mul_pd(
          _mm256_add_pd(
              _mm256_mul_pd(_mm256_add_pd(z, _mm256_set1_pd(kTQ0)), z),
              _mm256_set1_pd(kTQ1)),
          z),
      _mm256_set1_pd(kTQ2));
  const __m256d small = _mm256_add_pd(
      x, _mm256_mul_pd(_mm256_mul_pd(x, z), _mm256_div_pd(num, den)));
  // |x| >= 0.625: 1 - 2/(exp(2|x|) + 1), saturated past kTanhSat.
  const __m256d e = fast_exp_pd(_mm256_add_pd(ax, ax));
  __m256d large = _mm256_sub_pd(
      _mm256_set1_pd(1.0),
      _mm256_div_pd(_mm256_set1_pd(2.0),
                    _mm256_add_pd(e, _mm256_set1_pd(1.0))));
  const __m256d sat = _mm256_cmp_pd(ax, _mm256_set1_pd(kTanhSat), _CMP_GE_OQ);
  large = _mm256_blendv_pd(large, _mm256_set1_pd(1.0), sat);
  large = _mm256_or_pd(large, sign);
  const __m256d small_mask =
      _mm256_cmp_pd(ax, _mm256_set1_pd(kTanhSmall), _CMP_LT_OQ);
  return _mm256_blendv_pd(large, small, small_mask);
}

__attribute__((target("avx2"))) static inline __m256d fast_gelu_pd(__m256d x) {
  const __m256d x3 = _mm256_mul_pd(
      _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(0.044715), x), x), x);
  const __m256d u =
      _mm256_mul_pd(_mm256_set1_pd(sfn::kGeluCoeff), _mm256_add_pd(x, x3));
  const __m256d t = fast_tanh_pd(u);
  return _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(0.5), x),
                       _mm256_add_pd(_mm256_set1_pd(1.0), t));
}

__attribute__((target("avx2"))) static void tanh_block_avx2(const real* a,
                                                            real* out,
                                                            int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, fast_tanh_pd(_mm256_loadu_pd(a + i)));
  for (; i < n; ++i) out[i] = fast_tanh_scalar(a[i]);
}

__attribute__((target("avx2"))) static void gelu_block_avx2(const real* a,
                                                            real* out,
                                                            int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(out + i, fast_gelu_pd(_mm256_loadu_pd(a + i)));
  for (; i < n; ++i) out[i] = fast_gelu_scalar(a[i]);
}

// 8-lane float twins of the pd tanh tier. Same structure, float-narrowed
// constants, and the 2^n scale built in the float exponent field.
__attribute__((target("avx2"))) static inline __m256 fast_exp_ps(__m256 x) {
  const __m256 n = _mm256_round_ps(
      _mm256_mul_ps(x, _mm256_set1_ps(kLog2EF)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  x = _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(kExpC1F)));
  x = _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(kExpC2F)));
  const __m256 z = _mm256_mul_ps(x, x);
  const __m256 px = _mm256_mul_ps(
      x, _mm256_add_ps(
             _mm256_mul_ps(
                 _mm256_add_ps(_mm256_mul_ps(_mm256_set1_ps(kEP0F), z),
                               _mm256_set1_ps(kEP1F)),
                 z),
             _mm256_set1_ps(kEP2F)));
  const __m256 qx = _mm256_add_ps(
      _mm256_mul_ps(
          _mm256_add_ps(
              _mm256_mul_ps(
                  _mm256_add_ps(_mm256_mul_ps(_mm256_set1_ps(kEQ0F), z),
                                _mm256_set1_ps(kEQ1F)),
                  z),
              _mm256_set1_ps(kEQ2F)),
          z),
      _mm256_set1_ps(kEQ3F));
  const __m256 r = _mm256_add_ps(
      _mm256_set1_ps(1.0f),
      _mm256_mul_ps(_mm256_set1_ps(2.0f),
                    _mm256_div_ps(px, _mm256_sub_ps(qx, px))));
  // 2^n via (n + 127) << 23; n is integral and |n| < 56 in the tanh range.
  const __m256i ni = _mm256_cvtps_epi32(n);
  const __m256i bits =
      _mm256_slli_epi32(_mm256_add_epi32(ni, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(r, _mm256_castsi256_ps(bits));
}

__attribute__((target("avx2"))) static inline __m256 fast_tanh_ps(__m256 x) {
  const __m256 signmask = _mm256_set1_ps(-0.0f);
  const __m256 sign = _mm256_and_ps(x, signmask);
  const __m256 ax = _mm256_andnot_ps(signmask, x);
  // |x| < 0.625: x + x*z*P(z)/Q(z)
  const __m256 z = _mm256_mul_ps(x, x);
  const __m256 num = _mm256_add_ps(
      _mm256_mul_ps(_mm256_add_ps(_mm256_mul_ps(_mm256_set1_ps(kTP0F), z),
                                  _mm256_set1_ps(kTP1F)),
                    z),
      _mm256_set1_ps(kTP2F));
  const __m256 den = _mm256_add_ps(
      _mm256_mul_ps(
          _mm256_add_ps(
              _mm256_mul_ps(_mm256_add_ps(z, _mm256_set1_ps(kTQ0F)), z),
              _mm256_set1_ps(kTQ1F)),
          z),
      _mm256_set1_ps(kTQ2F));
  const __m256 small = _mm256_add_ps(
      x, _mm256_mul_ps(_mm256_mul_ps(x, z), _mm256_div_ps(num, den)));
  // |x| >= 0.625: 1 - 2/(exp(2|x|) + 1), saturated past kTanhSat.
  const __m256 e = fast_exp_ps(_mm256_add_ps(ax, ax));
  __m256 large = _mm256_sub_ps(
      _mm256_set1_ps(1.0f),
      _mm256_div_ps(_mm256_set1_ps(2.0f),
                    _mm256_add_ps(e, _mm256_set1_ps(1.0f))));
  const __m256 sat = _mm256_cmp_ps(ax, _mm256_set1_ps(kTanhSatF), _CMP_GE_OQ);
  large = _mm256_blendv_ps(large, _mm256_set1_ps(1.0f), sat);
  large = _mm256_or_ps(large, sign);
  const __m256 small_mask =
      _mm256_cmp_ps(ax, _mm256_set1_ps(kTanhSmallF), _CMP_LT_OQ);
  return _mm256_blendv_ps(large, small, small_mask);
}

__attribute__((target("avx2"))) static inline __m256 fast_gelu_ps(__m256 x) {
  const __m256 x3 = _mm256_mul_ps(
      _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(sfn::gelu_cubic<float>), x),
                    x),
      x);
  const __m256 u = _mm256_mul_ps(_mm256_set1_ps(sfn::gelu_coeff<float>),
                                 _mm256_add_ps(x, x3));
  const __m256 t = fast_tanh_ps(u);
  return _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.5f), x),
                       _mm256_add_ps(_mm256_set1_ps(1.0f), t));
}

__attribute__((target("avx2"))) static void tanh_block_avx2_f(const float* a,
                                                              float* out,
                                                              int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(out + i, fast_tanh_ps(_mm256_loadu_ps(a + i)));
  for (; i < n; ++i) out[i] = fast_tanh_scalar_f(a[i]);
}

__attribute__((target("avx2"))) static void gelu_block_avx2_f(const float* a,
                                                              float* out,
                                                              int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(out + i, fast_gelu_ps(_mm256_loadu_ps(a + i)));
  for (; i < n; ++i) out[i] = fast_gelu_scalar_f(a[i]);
}
#endif  // MF_HAVE_AVX2_KERNELS

void map_unary(const real* a, real* out, int64_t n, sfn::Tanh) {
#ifdef MF_HAVE_AVX2_KERNELS
  if (fast_tanh_active()) {
    parallel_for(n, [&](int64_t begin, int64_t end) {
      tanh_block_avx2(a + begin, out + begin, end - begin);
    });
    return;
  }
#endif
  parallel_for(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[i] = sfn::Tanh{}(a[i]);
  });
}

void map_unary(const real* a, real* out, int64_t n, sfn::Gelu) {
#ifdef MF_HAVE_AVX2_KERNELS
  if (fast_tanh_active()) {
    parallel_for(n, [&](int64_t begin, int64_t end) {
      gelu_block_avx2(a + begin, out + begin, end - begin);
    });
    return;
  }
#endif
  parallel_for(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[i] = sfn::Gelu{}(a[i]);
  });
}

void tanh_block_inplace(real* x, int64_t n) {
#ifdef MF_HAVE_AVX2_KERNELS
  if (fast_tanh_active()) {
    tanh_block_avx2(x, x, n);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) x[i] = sfn::Tanh{}(x[i]);
}

void gelu_block_inplace(real* x, int64_t n) {
#ifdef MF_HAVE_AVX2_KERNELS
  if (fast_tanh_active()) {
    gelu_block_avx2(x, x, n);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) x[i] = sfn::Gelu{}(x[i]);
}

void map_unary(const float* a, float* out, int64_t n, sfn::Tanh) {
#ifdef MF_HAVE_AVX2_KERNELS
  if (fast_tanh_active()) {
    parallel_for(n, [&](int64_t begin, int64_t end) {
      tanh_block_avx2_f(a + begin, out + begin, end - begin);
    });
    return;
  }
#endif
  parallel_for(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[i] = sfn::Tanh{}(a[i]);
  });
}

void map_unary(const float* a, float* out, int64_t n, sfn::Gelu) {
#ifdef MF_HAVE_AVX2_KERNELS
  if (fast_tanh_active()) {
    parallel_for(n, [&](int64_t begin, int64_t end) {
      gelu_block_avx2_f(a + begin, out + begin, end - begin);
    });
    return;
  }
#endif
  parallel_for(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[i] = sfn::Gelu{}(a[i]);
  });
}

void tanh_block_inplace(float* x, int64_t n) {
#ifdef MF_HAVE_AVX2_KERNELS
  if (fast_tanh_active()) {
    tanh_block_avx2_f(x, x, n);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) x[i] = sfn::Tanh{}(x[i]);
}

void gelu_block_inplace(float* x, int64_t n) {
#ifdef MF_HAVE_AVX2_KERNELS
  if (fast_tanh_active()) {
    gelu_block_avx2_f(x, x, n);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) x[i] = sfn::Gelu{}(x[i]);
}

void matmul(const real* a, const real* b, const real* bias, real* out,
            int64_t m, int64_t k, int64_t n) {
  // Tiling gate: block only when b overflows one tile's cache footprint
  // (k*n > kTileK*kTileN elements = 256 KiB). Narrow GEMMs — the
  // width-64 shapes of the fig8 inference path and their k-heavy
  // training backwards — keep the fused i-k-j loop, whose single pass
  // over `out` beats two whenever b is already cache-resident. The two
  // paths accumulate in the same kk order, so results are bitwise
  // identical regardless of which one runs. Decided once, outside the
  // worker lambda, so the hot loops compile unperturbed.
  const bool b_fits_one_tile = k * n <= kTileK * kTileN;
#ifdef MF_HAVE_AVX2_KERNELS
  const bool use_avx2 = cpu_has_avx2();
  const bool use_fma = fma_kernels_active();
#endif
  parallel_for(m, k * n, [&](int64_t begin, int64_t end) {
    if (b_fits_one_tile) {
#ifdef MF_HAVE_AVX2_KERNELS
      if (use_avx2) {
        int64_t i0 = begin;
        if (use_fma) {
          for (; i0 + 4 <= end; i0 += 4) {
            matmul_rows4_fma(a + i0 * k, a + (i0 + 1) * k, a + (i0 + 2) * k,
                             a + (i0 + 3) * k, b, bias, out + i0 * n, k, n);
          }
          for (; i0 < end; ++i0) {
            matmul_rows1_fma(a + i0 * k, b, bias, out + i0 * n, k, n);
          }
          return;
        }
        for (; i0 + 4 <= end; i0 += 4) {
          matmul_rows4_avx2(a + i0 * k, a + (i0 + 1) * k, a + (i0 + 2) * k,
                            a + (i0 + 3) * k, b, bias, out + i0 * n, k, n);
        }
        for (; i0 < end; ++i0) {
          matmul_rows1_avx2(a + i0 * k, b, bias, out + i0 * n, k, n);
        }
        return;
      }
#endif
      // b fits one tile: register-blocked micro-kernel. Four rows of a
      // share every b load, and each row's 4-column accumulator strip
      // lives in registers across the whole k loop — the naive loop's
      // per-kk reload/store of the output row was store-port-bound.
      // For every output element the additions still run in ascending
      // kk order and zero a-elements still contribute nothing, so the
      // result is bitwise identical to the naive i-k-j loop.
      // 4x4 fits the baseline 16-register SSE2 budget: 16 accumulator
      // doubles in 8 xmm, leaving room for the shared b loads and the
      // four row broadcasts.
      constexpr int64_t kRb = 4;  // rows of a per micro-tile
      constexpr int64_t kJb = 4;  // columns of out per accumulator strip
      int64_t i0 = begin;
      for (; i0 + kRb <= end; i0 += kRb) {
        const real* a0 = a + (i0 + 0) * k;
        const real* a1 = a + (i0 + 1) * k;
        const real* a2 = a + (i0 + 2) * k;
        const real* a3 = a + (i0 + 3) * k;
        for (int64_t j0 = 0; j0 < n; j0 += kJb) {
          const int64_t jw = std::min(kJb, n - j0);
          real acc0[kJb], acc1[kJb], acc2[kJb], acc3[kJb];
          if (bias) {
            for (int64_t j = 0; j < jw; ++j) {
              acc0[j] = acc1[j] = acc2[j] = acc3[j] = bias[j0 + j];
            }
          } else {
            for (int64_t j = 0; j < jw; ++j) {
              acc0[j] = acc1[j] = acc2[j] = acc3[j] = 0;
            }
          }
          if (jw == kJb) {
            for (int64_t kk = 0; kk < k; ++kk) {
              const real* brow = b + kk * n + j0;
              const real av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
              if (av0 != 0) {
                for (int64_t j = 0; j < kJb; ++j) acc0[j] += av0 * brow[j];
              }
              if (av1 != 0) {
                for (int64_t j = 0; j < kJb; ++j) acc1[j] += av1 * brow[j];
              }
              if (av2 != 0) {
                for (int64_t j = 0; j < kJb; ++j) acc2[j] += av2 * brow[j];
              }
              if (av3 != 0) {
                for (int64_t j = 0; j < kJb; ++j) acc3[j] += av3 * brow[j];
              }
            }
          } else {
            for (int64_t kk = 0; kk < k; ++kk) {
              const real* brow = b + kk * n + j0;
              const real av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
              if (av0 != 0) {
                for (int64_t j = 0; j < jw; ++j) acc0[j] += av0 * brow[j];
              }
              if (av1 != 0) {
                for (int64_t j = 0; j < jw; ++j) acc1[j] += av1 * brow[j];
              }
              if (av2 != 0) {
                for (int64_t j = 0; j < jw; ++j) acc2[j] += av2 * brow[j];
              }
              if (av3 != 0) {
                for (int64_t j = 0; j < jw; ++j) acc3[j] += av3 * brow[j];
              }
            }
          }
          real* orow = out + i0 * n + j0;
          for (int64_t j = 0; j < jw; ++j) orow[j] = acc0[j];
          for (int64_t j = 0; j < jw; ++j) orow[n + j] = acc1[j];
          for (int64_t j = 0; j < jw; ++j) orow[2 * n + j] = acc2[j];
          for (int64_t j = 0; j < jw; ++j) orow[3 * n + j] = acc3[j];
        }
      }
      // Remainder rows (< kRb): the naive per-row loop.
      for (int64_t i = i0; i < end; ++i) {
        const real* arow = a + i * k;
        real* orow = out + i * n;
        if (bias) {
          for (int64_t j = 0; j < n; ++j) orow[j] = bias[j];
        } else {
          for (int64_t j = 0; j < n; ++j) orow[j] = 0;
        }
        for (int64_t kk = 0; kk < k; ++kk) {
          const real av = arow[kk];
          if (av == 0) continue;
          const real* brow = b + kk * n;
          for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
        }
      }
      return;
    }
    // Blocked i-k-j: for each (k, n) tile of b, stream all rows of the
    // chunk over it before moving on, so the tile is loaded once per
    // chunk instead of once per row. For fixed (i, j), kk still runs
    // monotonically, so the summation order — and hence the result — is
    // bitwise identical to the unblocked loop.
    for (int64_t i = begin; i < end; ++i) {
      real* orow = out + i * n;
      if (bias) {
        for (int64_t j = 0; j < n; ++j) orow[j] = bias[j];
      } else {
        for (int64_t j = 0; j < n; ++j) orow[j] = 0;
      }
    }
    for (int64_t kk0 = 0; kk0 < k; kk0 += kTileK) {
      const int64_t kk1 = std::min(k, kk0 + kTileK);
      for (int64_t j0 = 0; j0 < n; j0 += kTileN) {
        const int64_t j1 = std::min(n, j0 + kTileN);
        for (int64_t i = begin; i < end; ++i) {
          const real* arow = a + i * k;
          real* orow = out + i * n;
          for (int64_t kk = kk0; kk < kk1; ++kk) {
            const real av = arow[kk];
            if (av == 0) continue;
            const real* brow = b + kk * n;
#ifdef MF_HAVE_AVX2_KERNELS
            if (use_fma) {
              axpy_fma(brow + j0, orow + j0, av, j1 - j0);
              continue;
            }
            if (use_avx2) {
              axpy_avx2(brow + j0, orow + j0, av, j1 - j0);
              continue;
            }
#endif
            for (int64_t j = j0; j < j1; ++j) orow[j] += av * brow[j];
          }
        }
      }
    }
  });
}

void matmul(const float* a, const float* b, const float* bias, float* out,
            int64_t m, int64_t k, int64_t n) {
  // Float GEMM for the compiled f32 compute path. Same tiling gate as the
  // double tier (elements, not bytes: the b panel that matters is half the
  // size, so this errs toward the fused loop, which is the right bias for
  // the narrow SDNet shapes). The vector path needs AVX2+FMA together —
  // they co-occur on every AVX2 CPU since Haswell — and falls back to the
  // same deterministic scalar i-k-j loop otherwise. No MF_DISABLE_FMA
  // hatch here: that hatch restores a bitwise-exact double tier, a promise
  // the float tier never makes (it is tolerance-gated).
  const bool b_fits_one_tile = k * n <= kTileK * kTileN;
#ifdef MF_HAVE_AVX2_KERNELS
  const bool use_vec = cpu_has_avx2() && cpu_has_fma();
#endif
  parallel_for(m, k * n, [&](int64_t begin, int64_t end) {
    if (b_fits_one_tile) {
#ifdef MF_HAVE_AVX2_KERNELS
      if (use_vec) {
        int64_t i0 = begin;
        for (; i0 + 4 <= end; i0 += 4) {
          matmul_rows4_fma_f(a + i0 * k, a + (i0 + 1) * k, a + (i0 + 2) * k,
                             a + (i0 + 3) * k, b, bias, out + i0 * n, k, n);
        }
        for (; i0 < end; ++i0) {
          matmul_rows1_fma_f(a + i0 * k, b, bias, out + i0 * n, k, n);
        }
        return;
      }
#endif
      for (int64_t i = begin; i < end; ++i) {
        const float* arow = a + i * k;
        float* orow = out + i * n;
        if (bias) {
          for (int64_t j = 0; j < n; ++j) orow[j] = bias[j];
        } else {
          for (int64_t j = 0; j < n; ++j) orow[j] = 0;
        }
        for (int64_t kk = 0; kk < k; ++kk) {
          const float av = arow[kk];
          const float* brow = b + kk * n;
          for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
        }
      }
      return;
    }
    // Blocked i-k-j over (k, n) tiles of b, as in the double tier.
    for (int64_t i = begin; i < end; ++i) {
      float* orow = out + i * n;
      if (bias) {
        for (int64_t j = 0; j < n; ++j) orow[j] = bias[j];
      } else {
        for (int64_t j = 0; j < n; ++j) orow[j] = 0;
      }
    }
    for (int64_t kk0 = 0; kk0 < k; kk0 += kTileK) {
      const int64_t kk1 = std::min(k, kk0 + kTileK);
      for (int64_t j0 = 0; j0 < n; j0 += kTileN) {
        const int64_t j1 = std::min(n, j0 + kTileN);
        for (int64_t i = begin; i < end; ++i) {
          const float* arow = a + i * k;
          float* orow = out + i * n;
          for (int64_t kk = kk0; kk < kk1; ++kk) {
            const float av = arow[kk];
            const float* brow = b + kk * n;
#ifdef MF_HAVE_AVX2_KERNELS
            if (use_vec) {
              axpy_fma_f(brow + j0, orow + j0, av, j1 - j0);
              continue;
            }
#endif
            for (int64_t j = j0; j < j1; ++j) orow[j] += av * brow[j];
          }
        }
      }
    }
  });
}

namespace {
template <typename T>
void transpose_impl(const T* a, T* out, int64_t m, int64_t n) {
  parallel_for(m, n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i)
      for (int64_t j = 0; j < n; ++j) out[j * m + i] = a[i * n + j];
  });
}
}  // namespace

void transpose(const real* a, real* out, int64_t m, int64_t n) {
  transpose_impl(a, out, m, n);
}

void transpose(const float* a, float* out, int64_t m, int64_t n) {
  transpose_impl(a, out, m, n);
}

namespace {
template <typename T>
void conv1d_forward_impl(const T* input, const T* weight, const T* bias,
                         T* out, int64_t B, int64_t Cin, int64_t L,
                         int64_t Cout, int64_t K, int64_t padding) {
  const int64_t Lout = L + 2 * padding - K + 1;
  parallel_for(B * Cout, Cin * K * Lout, [&](int64_t begin, int64_t end) {
    for (int64_t bc = begin; bc < end; ++bc) {
      const int64_t b = bc / Cout;
      const int64_t co = bc % Cout;
      T* orow = out + bc * Lout;
      const T fill = bias ? bias[co] : T(0);
      for (int64_t t = 0; t < Lout; ++t) orow[t] = fill;
      for (int64_t ci = 0; ci < Cin; ++ci) {
        const T* irow = input + (b * Cin + ci) * L;
        const T* wrow = weight + (co * Cin + ci) * K;
        for (int64_t t = 0; t < Lout; ++t) {
          T acc = 0;
          const int64_t k0 = std::max<int64_t>(0, padding - t);
          const int64_t k1 = std::min<int64_t>(K, L + padding - t);
          for (int64_t k = k0; k < k1; ++k) acc += wrow[k] * irow[t + k - padding];
          orow[t] += acc;
        }
      }
    }
  });
}

template <typename T>
void conv1d_grad_input_impl(const T* grad_out, const T* weight, T* grad_input,
                            int64_t B, int64_t Cin, int64_t L, int64_t Cout,
                            int64_t K, int64_t padding) {
  const int64_t Lout = L + 2 * padding - K + 1;
  // Threads over batch: output channels of one batch element write into the
  // same grad_input rows, so they stay within one thread.
  parallel_for(B, Cout * Cin * K * Lout, [&](int64_t begin, int64_t end) {
    for (int64_t b = begin; b < end; ++b)
      for (int64_t co = 0; co < Cout; ++co)
        for (int64_t t = 0; t < Lout; ++t) {
          const T g = grad_out[(b * Cout + co) * Lout + t];
          if (g == 0) continue;
          for (int64_t ci = 0; ci < Cin; ++ci)
            for (int64_t k = 0; k < K; ++k) {
              const int64_t src = t + k - padding;
              if (src < 0 || src >= L) continue;
              grad_input[(b * Cin + ci) * L + src] +=
                  g * weight[(co * Cin + ci) * K + k];
            }
        }
  });
}

template <typename T>
void conv1d_grad_weight_impl(const T* grad_out, const T* input,
                             T* grad_weight, int64_t B, int64_t Cin, int64_t L,
                             int64_t Cout, int64_t K, int64_t padding) {
  const int64_t Lout = L + 2 * padding - K + 1;
  // Threads over output channels: all batches accumulate into one channel's
  // weight slice, so the batch loop stays within one thread.
  parallel_for(Cout, B * Cin * K * Lout, [&](int64_t begin, int64_t end) {
    for (int64_t co = begin; co < end; ++co)
      for (int64_t b = 0; b < B; ++b)
        for (int64_t t = 0; t < Lout; ++t) {
          const T g = grad_out[(b * Cout + co) * Lout + t];
          if (g == 0) continue;
          for (int64_t ci = 0; ci < Cin; ++ci)
            for (int64_t k = 0; k < K; ++k) {
              const int64_t src = t + k - padding;
              if (src < 0 || src >= L) continue;
              grad_weight[(co * Cin + ci) * K + k] +=
                  g * input[(b * Cin + ci) * L + src];
            }
        }
  });
}

template <typename T>
void conv1d_grad_bias_impl(const T* grad_out, T* grad_bias, int64_t B,
                           int64_t Cout, int64_t Lout) {
  parallel_for(Cout, B * Lout, [&](int64_t begin, int64_t end) {
    for (int64_t co = begin; co < end; ++co) {
      T acc = 0;
      for (int64_t b = 0; b < B; ++b) {
        const T* row = grad_out + (b * Cout + co) * Lout;
        for (int64_t t = 0; t < Lout; ++t) acc += row[t];
      }
      grad_bias[co] += acc;
    }
  });
}
}  // namespace

void conv1d_forward(const real* input, const real* weight, const real* bias,
                    real* out, int64_t B, int64_t Cin, int64_t L, int64_t Cout,
                    int64_t K, int64_t padding) {
  conv1d_forward_impl(input, weight, bias, out, B, Cin, L, Cout, K, padding);
}

void conv1d_forward(const float* input, const float* weight, const float* bias,
                    float* out, int64_t B, int64_t Cin, int64_t L,
                    int64_t Cout, int64_t K, int64_t padding) {
  conv1d_forward_impl(input, weight, bias, out, B, Cin, L, Cout, K, padding);
}

void conv1d_grad_input(const real* grad_out, const real* weight,
                       real* grad_input, int64_t B, int64_t Cin, int64_t L,
                       int64_t Cout, int64_t K, int64_t padding) {
  conv1d_grad_input_impl(grad_out, weight, grad_input, B, Cin, L, Cout, K,
                         padding);
}

void conv1d_grad_input(const float* grad_out, const float* weight,
                       float* grad_input, int64_t B, int64_t Cin, int64_t L,
                       int64_t Cout, int64_t K, int64_t padding) {
  conv1d_grad_input_impl(grad_out, weight, grad_input, B, Cin, L, Cout, K,
                         padding);
}

void conv1d_grad_weight(const real* grad_out, const real* input,
                        real* grad_weight, int64_t B, int64_t Cin, int64_t L,
                        int64_t Cout, int64_t K, int64_t padding) {
  conv1d_grad_weight_impl(grad_out, input, grad_weight, B, Cin, L, Cout, K,
                          padding);
}

void conv1d_grad_weight(const float* grad_out, const float* input,
                        float* grad_weight, int64_t B, int64_t Cin, int64_t L,
                        int64_t Cout, int64_t K, int64_t padding) {
  conv1d_grad_weight_impl(grad_out, input, grad_weight, B, Cin, L, Cout, K,
                          padding);
}

void conv1d_grad_bias(const real* grad_out, real* grad_bias, int64_t B,
                      int64_t Cout, int64_t Lout) {
  conv1d_grad_bias_impl(grad_out, grad_bias, B, Cout, Lout);
}

void conv1d_grad_bias(const float* grad_out, float* grad_bias, int64_t B,
                      int64_t Cout, int64_t Lout) {
  conv1d_grad_bias_impl(grad_out, grad_bias, B, Cout, Lout);
}

// ---- dtype casts ----

void cast_buffer(const double* src, float* dst, int64_t n) {
  parallel_for(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i)
      dst[i] = static_cast<float>(src[i]);
  });
}

void cast_buffer(const float* src, double* dst, int64_t n) {
  parallel_for(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i)
      dst[i] = static_cast<double>(src[i]);
  });
}

}  // namespace mf::ad::kernels
