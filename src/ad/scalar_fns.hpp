// Scalar functors shared by the eager ops (ops.cpp) and the compiled
// program replay (program.cpp).
//
// Bitwise parity between an eagerly executed step and its replay requires
// that both paths evaluate the *same* floating-point expressions. Keeping
// every elementwise scalar function in one header — and instantiating the
// kernels in both translation units from these exact functors — makes that
// guarantee structural instead of accidental.
#pragma once

#include <cmath>

#include "ad/tensor.hpp"

namespace mf::ad::sfn {

constexpr real kGeluCoeff = 0.7978845608028654;  // sqrt(2/pi)

// ---- binary ----
struct Add {
  real operator()(real x, real y) const { return x + y; }
};
struct Sub {
  real operator()(real x, real y) const { return x - y; }
};
struct Mul {
  real operator()(real x, real y) const { return x * y; }
};
struct Div {
  real operator()(real x, real y) const { return x / y; }
};

// ---- unary (the scalar-parameterized ones carry their parameter) ----
struct AddScalar {
  real s;
  real operator()(real x) const { return x + s; }
};
struct MulScalar {
  real s;
  real operator()(real x) const { return x * s; }
};
struct PowScalar {
  real e;
  real operator()(real x) const { return std::pow(x, e); }
};
struct Neg {
  real operator()(real x) const { return -x; }
};
struct Exp {
  real operator()(real x) const { return std::exp(x); }
};
struct Log {
  real operator()(real x) const { return std::log(x); }
};
struct Sqrt {
  real operator()(real x) const { return std::sqrt(x); }
};
struct Tanh {
  real operator()(real x) const { return std::tanh(x); }
};
struct Abs {
  real operator()(real x) const { return std::abs(x); }
};
struct Sign {
  real operator()(real x) const {
    return x > 0 ? real{1} : (x < 0 ? real{-1} : real{0});
  }
};
struct Gelu {
  real operator()(real x) const {
    const real u = kGeluCoeff * (x + 0.044715 * x * x * x);
    return 0.5 * x * (1.0 + std::tanh(u));
  }
};

}  // namespace mf::ad::sfn
