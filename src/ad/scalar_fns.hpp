// Scalar functors shared by the eager ops (ops.cpp) and the compiled
// program replay (program.cpp).
//
// Bitwise parity between an eagerly executed step and its replay requires
// that both paths evaluate the *same* floating-point expressions. Keeping
// every elementwise scalar function in one header — and instantiating the
// kernels in both translation units from these exact functors — makes that
// guarantee structural instead of accidental.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "ad/tensor.hpp"

namespace mf::ad::sfn {

// Typed via the element type at every use site: an f32 path must evaluate
// float(0.7978845608028654), not round a double intermediate — see the
// gelu_coeff<T> usage in Gelu below.
constexpr real kGeluCoeff = 0.7978845608028654;  // sqrt(2/pi)

template <typename T>
inline constexpr T gelu_coeff = T(0.7978845608028654);
template <typename T>
inline constexpr T gelu_cubic = T(0.044715);

// ---- binary ----
//
// Functors are templated over the element type; every eager call site
// instantiates T = real (double), so the f64 expressions are unchanged.
// The compiled-plan replay instantiates float for f32-colored steps.
struct Add {
  template <typename T>
  T operator()(T x, T y) const { return x + y; }
};
struct Sub {
  template <typename T>
  T operator()(T x, T y) const { return x - y; }
};
struct Mul {
  template <typename T>
  T operator()(T x, T y) const { return x * y; }
};
struct Div {
  template <typename T>
  T operator()(T x, T y) const { return x / y; }
};

// ---- unary (the scalar-parameterized ones carry their parameter) ----
//
// Parameters are stored at the tape's native f64 width and narrowed once
// per application, so f32 steps compute x + float(s), never through a
// double intermediate.
struct AddScalar {
  real s;
  template <typename T>
  T operator()(T x) const { return x + T(s); }
};
struct MulScalar {
  real s;
  template <typename T>
  T operator()(T x) const { return x * T(s); }
};
struct PowScalar {
  real e;
  template <typename T>
  T operator()(T x) const { return std::pow(x, T(e)); }
};
struct Neg {
  template <typename T>
  T operator()(T x) const { return -x; }
};
struct Exp {
  template <typename T>
  T operator()(T x) const { return std::exp(x); }
};
struct Log {
  template <typename T>
  T operator()(T x) const { return std::log(x); }
};
struct Sqrt {
  template <typename T>
  T operator()(T x) const { return std::sqrt(x); }
};
struct Tanh {
  template <typename T>
  T operator()(T x) const { return std::tanh(x); }
};
struct Abs {
  template <typename T>
  T operator()(T x) const { return std::abs(x); }
};
struct Sign {
  template <typename T>
  T operator()(T x) const {
    return x > 0 ? T{1} : (x < 0 ? T{-1} : T{0});
  }
};
struct Gelu {
  template <typename T>
  T operator()(T x) const {
    const T u = gelu_coeff<T> * (x + gelu_cubic<T> * x * x * x);
    return T(0.5) * x * (T(1) + std::tanh(u));
  }
};

// ---- optimizer element updates ----
//
// The Adam/AdamW update for one parameter element, shared by the eager
// optimizer (optim::Adam::step) and the compiled program's in-plan
// optimizer step so both paths evaluate the identical FP expression.
// `bc1` / `bc2` are the bias corrections 1 - beta^t for the current step.
inline void adam_update(real& p, real g, double& m, double& v, double lr,
                        double beta1, double beta2, double bc1, double bc2,
                        double eps, double weight_decay, bool decoupled) {
  double gj = g;
  if (!decoupled) gj += weight_decay * p;
  m = beta1 * m + (1 - beta1) * gj;
  v = beta2 * v + (1 - beta2) * gj * gj;
  const double mhat = m / bc1;
  const double vhat = v / bc2;
  double update = mhat / (std::sqrt(vhat) + eps);
  if (decoupled) update += weight_decay * p;
  p -= lr * update;
}

/// The LAMB update for one whole parameter tensor (You et al., 2020),
/// shared by the eager optimizer (optim::Lamb::step) and the compiled
/// program's kLambParam step so both paths evaluate the identical FP
/// expressions in the identical order. LAMB is always decoupled: the
/// weight decay joins the Adam direction, not the gradient. The trust
/// ratio is a whole-tensor reduction, which is why LAMB replays as one
/// plan step per parameter instead of an elementwise chain. `dir` is
/// caller-owned scratch (reused across parameters to avoid reallocation).
inline void lamb_param_update(real* p, const real* g, double* m, double* v,
                              int64_t n, std::vector<double>& dir, double lr,
                              double beta1, double beta2, double bc1,
                              double bc2, double eps, double weight_decay) {
  dir.assign(static_cast<std::size_t>(n), 0.0);
  for (int64_t j = 0; j < n; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    const double gj = g[j];
    m[j] = beta1 * m[j] + (1 - beta1) * gj;
    v[j] = beta2 * v[j] + (1 - beta2) * gj * gj;
    const double mhat = m[j] / bc1;
    const double vhat = v[j] / bc2;
    dir[ju] = mhat / (std::sqrt(vhat) + eps);
  }
  // r = adam direction + decoupled weight decay; layerwise trust ratio
  // falls back to 1 when either norm degenerates (LAMB paper).
  double w_norm = 0.0, r_norm = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    dir[ju] += weight_decay * p[j];
    w_norm += p[j] * p[j];
    const double r = dir[ju];
    r_norm += r * r;
  }
  w_norm = std::sqrt(w_norm);
  r_norm = std::sqrt(r_norm);
  const double trust = (w_norm > 0 && r_norm > 0) ? w_norm / r_norm : 1.0;
  for (int64_t j = 0; j < n; ++j) {
    p[j] -= lr * trust * dir[static_cast<std::size_t>(j)];
  }
}

}  // namespace mf::ad::sfn
