// Element dtypes for the mixed-precision compute path.
//
// The stack's numeric substrate stays `real = double`: eager ops, tensor
// payloads handed to user code, optimizer master weights and moments are
// all f64. What the precision *policy* controls is the compute dtype of
// compiled plans (`ad::Program`): under `MF_PRECISION=f32` the lowering
// pass colors internal plan slots float, inserts cast steps at the f64
// boundaries (external tensors, optimizer state), and the replay
// interpreter runs each step's kernels at the slot width. f64 stays the
// default and is bitwise-identical to a build without this policy.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mf::ad {

enum class DType : std::uint8_t {
  kF32 = 0,
  kF64 = 1,
};

constexpr std::size_t dtype_size(DType dt) {
  return dt == DType::kF32 ? sizeof(float) : sizeof(double);
}

constexpr const char* dtype_name(DType dt) {
  return dt == DType::kF32 ? "f32" : "f64";
}

/// Process-wide compute-dtype policy. Reads MF_PRECISION ("f32" / "f64",
/// default f64) once; set_compute_dtype() overrides it (tests, benches)
/// and returns the previous value. Consulted by the mosaic layer when it
/// captures a plan — already-captured programs keep the dtype they were
/// lowered with, which is why the shape caches key on dtype too.
DType compute_dtype();
DType set_compute_dtype(DType dt);

}  // namespace mf::ad
