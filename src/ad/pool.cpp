#include "ad/pool.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

namespace mf::ad {

namespace {

// Caps keep a runaway workload from hoarding memory: at most this many
// buffers per size bucket, and at most a byte budget per thread
// (MF_POOL_BUDGET_MB overrides). Evicted buffers are simply freed.
// A single PDE-loss step can retain hundreds of same-shaped activations
// at once, all released together when the step's graphs die; the bucket
// must absorb that burst or the next step misses. The byte budget is the
// real cap.
constexpr std::size_t kMaxPerBucket = 1024;

std::size_t thread_budget_bytes() {
  static const std::size_t budget = [] {
    const char* env = std::getenv("MF_POOL_BUDGET_MB");
    const long mb = env ? std::atol(env) : 256;
    return static_cast<std::size_t>(mb > 0 ? mb : 256) * std::size_t{1024} * 1024;
  }();
  return budget;
}

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("MF_DISABLE_POOL");
  return !(env && env[0] == '1');
}()};

// Relaxed global counters: one increment per payload event, comparable to
// the MemoryTracker atomics that already sit on this path.
std::atomic<std::uint64_t> g_hits{0}, g_misses{0}, g_adopted{0}, g_returned{0},
    g_dropped{0};
std::atomic<std::size_t> g_idle_bytes{0};

// Trivially-destructible flag, so it stays readable through the whole
// thread-exit destructor sequence. Guards against tensors owned by other
// thread_local objects (e.g. predictor scratch) whose destructors run
// *after* the cache's and would otherwise release into a dead map.
thread_local bool t_cache_dead = false;

struct Bucket {
  std::vector<std::vector<std::byte>> free;
  std::uint64_t last_use = 0;  // thread-local tick of the last hit/park
};

struct ThreadCache {
  // capacity (in bytes) -> parked buffers with exactly that capacity.
  // Byte keys are dtype-blind: f32 and f64 payloads of equal byte size
  // recycle through the same bucket.
  std::unordered_map<std::size_t, Bucket> buckets;
  std::size_t idle_bytes = 0;
  std::uint64_t tick = 0;

  ~ThreadCache() {
    g_idle_bytes.fetch_sub(idle_bytes, std::memory_order_relaxed);
    t_cache_dead = true;
  }

  void drop_bucket(std::unordered_map<std::size_t, Bucket>::iterator it) {
    std::size_t freed = 0;
    for (const auto& v : it->second.free) freed += v.capacity();
    idle_bytes -= freed;
    g_idle_bytes.fetch_sub(freed, std::memory_order_relaxed);
    buckets.erase(it);
  }

  /// Free the least-recently-used bucket (a workload that changed tensor
  /// shapes left it behind); returns false when there is nothing to evict.
  bool evict_coldest() {
    auto coldest = buckets.end();
    for (auto it = buckets.begin(); it != buckets.end(); ++it) {
      if (coldest == buckets.end() || it->second.last_use < coldest->second.last_use) {
        coldest = it;
      }
    }
    if (coldest == buckets.end()) return false;
    drop_bucket(coldest);
    return true;
  }
};

ThreadCache& cache() {
  thread_local ThreadCache c;
  return c;
}

// Pop a parked buffer with capacity exactly `bytes`, or an empty vector.
std::vector<std::byte> try_pop(std::size_t bytes) {
  if (t_cache_dead) return {};
  ThreadCache& c = cache();
  auto it = c.buckets.find(bytes);
  if (it == c.buckets.end()) return {};
  std::vector<std::byte> v = std::move(it->second.free.back());
  it->second.free.pop_back();
  it->second.last_use = ++c.tick;
  if (it->second.free.empty()) c.buckets.erase(it);  // keep the map tight
  const std::size_t freed = v.capacity();
  c.idle_bytes -= freed;
  g_idle_bytes.fetch_sub(freed, std::memory_order_relaxed);
  return v;
}

}  // namespace

std::vector<std::byte> PayloadPool::acquire_zeroed(std::size_t bytes) {
  if (!enabled() || bytes == 0) return std::vector<std::byte>(bytes);
  std::vector<std::byte> v = try_pop(bytes);
  if (v.capacity() >= bytes) {
    g_hits.fetch_add(1, std::memory_order_relaxed);
    v.assign(bytes, std::byte{0});  // capacity suffices: fill only, no realloc
    return v;
  }
  g_misses.fetch_add(1, std::memory_order_relaxed);
  return std::vector<std::byte>(bytes);
}

std::vector<std::byte> PayloadPool::acquire_copy(const void* src,
                                                 std::size_t bytes) {
  const auto* s = static_cast<const std::byte*>(src);
  if (!enabled() || bytes == 0) return std::vector<std::byte>(s, s + bytes);
  std::vector<std::byte> v = try_pop(bytes);
  if (v.capacity() >= bytes) {
    g_hits.fetch_add(1, std::memory_order_relaxed);
    v.assign(s, s + bytes);
    return v;
  }
  g_misses.fetch_add(1, std::memory_order_relaxed);
  return std::vector<std::byte>(s, s + bytes);
}

void PayloadPool::release(std::vector<std::byte>&& v) {
  const std::size_t cap = v.capacity();
  if (cap == 0) return;
  if (!enabled() || t_cache_dead) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;  // v destructs, buffer freed — pre-pool behavior
  }
  ThreadCache& c = cache();
  {
    auto it = c.buckets.find(cap);  // no empty entry for rejected parks
    if (it != c.buckets.end() && it->second.free.size() >= kMaxPerBucket) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // Over budget: reclaim cold buckets (shapes a previous phase used and
  // abandoned) before giving up on parking this one.
  while (c.idle_bytes + cap > thread_budget_bytes()) {
    if (!c.evict_coldest()) break;
  }
  if (c.idle_bytes + cap > thread_budget_bytes()) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Bucket& bucket = c.buckets[cap];
  bucket.free.push_back(std::move(v));
  bucket.last_use = ++c.tick;
  c.idle_bytes += cap;
  g_idle_bytes.fetch_add(cap, std::memory_order_relaxed);
  g_returned.fetch_add(1, std::memory_order_relaxed);
}

void PayloadPool::note_adopted() {
  g_adopted.fetch_add(1, std::memory_order_relaxed);
}

bool PayloadPool::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

bool PayloadPool::set_enabled(bool on) {
  return g_enabled.exchange(on, std::memory_order_relaxed);
}

PoolStats PayloadPool::stats() {
  PoolStats s;
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.misses = g_misses.load(std::memory_order_relaxed);
  s.adopted = g_adopted.load(std::memory_order_relaxed);
  s.returned = g_returned.load(std::memory_order_relaxed);
  s.dropped = g_dropped.load(std::memory_order_relaxed);
  return s;
}

std::size_t PayloadPool::idle_bytes() {
  return g_idle_bytes.load(std::memory_order_relaxed);
}

void PayloadPool::trim_thread_cache() {
  if (t_cache_dead) return;
  ThreadCache& c = cache();
  g_idle_bytes.fetch_sub(c.idle_bytes, std::memory_order_relaxed);
  c.idle_bytes = 0;
  c.buckets.clear();
}

}  // namespace mf::ad
