// Size-bucketed free-list pool for tensor payloads.
//
// The training and inference hot loops allocate the same tensor shapes
// every step (fixed batch geometry), so instead of a fresh `new[]` per
// payload the pool parks dying byte buffers on a thread-local free list
// keyed by *byte* capacity and hands them back on the next allocation of
// the same size. Keying by bytes (not element count) means f32 and f64
// payloads share free lists: a dead 128-element double buffer serves a
// 256-element float request without fragmenting the cache. After a warmup
// step the steady state performs zero payload mallocs at either width.
//
// Accounting: MemoryTracker's live/peak numbers are unchanged by pooling —
// a pooled buffer counts as live only while a TensorImpl owns it. Bytes
// parked on free lists are tracked separately (`idle_bytes`), so the
// Table 3 memory methodology stays honest.
//
// Escape hatch: MF_DISABLE_POOL=1 (or set_enabled(false)) bypasses the
// pool entirely and reproduces the pre-pool allocation behavior
// bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mf::ad {

using real = double;

/// Cumulative counters, aggregated over all threads since process start.
struct PoolStats {
  std::uint64_t hits = 0;      // payloads served from a free list
  std::uint64_t misses = 0;    // fresh heap allocations
  std::uint64_t adopted = 0;   // caller-built buffers adopted by a TensorImpl
  std::uint64_t returned = 0;  // payloads parked on a free list at death
  std::uint64_t dropped = 0;   // payloads freed (pool full or disabled)

  /// Fresh heap work: everything that was not served from a free list.
  std::uint64_t fresh_allocs() const { return misses; }
};

class PayloadPool {
 public:
  /// Buffer of `bytes` bytes, zero-filled (recycled when possible).
  static std::vector<std::byte> acquire_zeroed(std::size_t bytes);
  /// Buffer holding a copy of [src, src + bytes) (recycled when possible).
  static std::vector<std::byte> acquire_copy(const void* src,
                                             std::size_t bytes);
  /// Park a dying payload on this thread's free list (or free it).
  static void release(std::vector<std::byte>&& v);
  /// Count a caller-built buffer adopted as-is (kept for stats-sum
  /// compatibility; the from_vector path now copies through the pool).
  static void note_adopted();

  static bool enabled();
  /// Override the MF_DISABLE_POOL default (tests / benchmarks). Returns
  /// the previous setting. Disabling does not flush existing caches;
  /// call trim_thread_cache() for bit-exact allocator behavior.
  static bool set_enabled(bool on);

  static PoolStats stats();
  /// Bytes currently parked on free lists across all threads (idle, not
  /// owned by any tensor; disjoint from MemoryTracker::live_bytes()).
  static std::size_t idle_bytes();
  /// Drop every buffer cached by the calling thread.
  static void trim_thread_cache();
};

}  // namespace mf::ad
