// Threaded tensor kernels: the contiguous hot loops factored out of
// ops.cpp, in the batch-parallel operator style of NeuPIMs-like runtimes.
//
// Kernels operate on raw contiguous buffers and are autograd-agnostic:
// ops.cpp records the graph, kernels do the math. With MF_HAVE_OPENMP the
// loops are OpenMP-threaded; otherwise every entry point degrades to the
// identical serial loop, so the backend is always available.
//
// Threading contract:
//  * Elementwise maps assign out[i] from in[i] only — parallel execution is
//    bitwise identical to serial.
//  * Reductions (reduce_sum, reduce_to, matmul rows) may reassociate
//    floating-point sums across threads; callers compare with tolerances.
//  * A kernel only threads when the estimated work exceeds `grain()`
//    elements and the calling thread is not already inside a parallel
//    region (no nested parallelism).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ad/scalar_fns.hpp"
#include "ad/tensor.hpp"

#ifdef MF_HAVE_OPENMP
#include <omp.h>
#endif

namespace mf::ad::kernels {

/// True when compiled against OpenMP.
bool openmp_enabled();

/// Threads a parallel region would use (1 for serial builds).
int max_threads();

/// Cap the OpenMP thread count (no-op for serial builds). Used by tests to
/// compare 1-thread and N-thread execution in one process.
void set_num_threads(int n);

/// Minimum estimated per-kernel work (in elements) before threading kicks
/// in; below it the serial loop is always used. Tests set this to 1 to
/// force threading on tiny tensors.
int64_t grain();
void set_grain(int64_t g);

/// RAII: forces every kernel on the *calling thread* to take the serial
/// path while alive (nestable). The in-process communicator installs one
/// per rank thread: each simulated rank must do its own compute serially,
/// both to avoid a full OpenMP team per rank (oversubscription) and to
/// keep the per-thread CPU-clock scaling methodology of util/timing.hpp
/// honest — offloaded worker time would escape CLOCK_THREAD_CPUTIME_ID.
class SerialRegionGuard {
 public:
  SerialRegionGuard();
  ~SerialRegionGuard();
  SerialRegionGuard(const SerialRegionGuard&) = delete;
  SerialRegionGuard& operator=(const SerialRegionGuard&) = delete;
};

/// True when the calling thread is inside a SerialRegionGuard.
bool in_serial_region();

namespace detail {
bool should_thread(int64_t work);
}

/// Run f(begin, end) over a partition of [0, n). `cost_per_item` weights
/// the threading threshold for loops whose iterations are expensive
/// (matmul rows, convolution channels).
template <typename F>
void parallel_for(int64_t n, [[maybe_unused]] int64_t cost_per_item, F&& f) {
  if (n <= 0) return;
#ifdef MF_HAVE_OPENMP
  if (detail::should_thread(n * std::max<int64_t>(1, cost_per_item))) {
#pragma omp parallel
    {
      const int64_t nt = omp_get_num_threads();
      const int64_t t = omp_get_thread_num();
      const int64_t chunk = (n + nt - 1) / nt;
      const int64_t begin = t * chunk;
      const int64_t end = std::min(n, begin + chunk);
      if (begin < end) f(begin, end);
    }
    return;
  }
#endif
  f(int64_t{0}, n);
}

template <typename F>
void parallel_for(int64_t n, F&& f) {
  parallel_for(n, 1, std::forward<F>(f));
}

// ---- contiguous elementwise maps ----
//
// The map templates are generic over the element type: eager ops always
// instantiate T = real (double), the compiled-plan replay instantiates
// float for f32-colored steps. The sfn:: functors are themselves
// templated, so each width evaluates its own native FP expression.

template <typename T, typename F>
void map_unary(const T* a, T* out, int64_t n, F&& f) {
  parallel_for(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[i] = f(a[i]);
  });
}

template <typename T, typename F>
void map_binary(const T* a, const T* b, T* out, int64_t n, F&& f) {
  parallel_for(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[i] = f(a[i], b[i]);
  });
}

// Non-template overloads for the four arithmetic binary functors: on
// x86-64 hosts with AVX2 these run a runtime-dispatched vector loop
// (vaddpd/vsubpd/vmulpd/vdivpd are IEEE-exact per lane, so results stay
// bitwise identical to the scalar template — which remains the fallback).
// Eager ops and program replay both resolve to these, preserving parity.
// The float overloads are the 8-lane ps twins (also IEEE-exact per lane,
// so f32 vector and scalar paths agree bitwise too).
void map_binary(const real* a, const real* b, real* out, int64_t n, sfn::Add);
void map_binary(const real* a, const real* b, real* out, int64_t n, sfn::Sub);
void map_binary(const real* a, const real* b, real* out, int64_t n, sfn::Mul);
void map_binary(const real* a, const real* b, real* out, int64_t n, sfn::Div);
void map_binary(const float* a, const float* b, float* out, int64_t n,
                sfn::Add);
void map_binary(const float* a, const float* b, float* out, int64_t n,
                sfn::Sub);
void map_binary(const float* a, const float* b, float* out, int64_t n,
                sfn::Mul);
void map_binary(const float* a, const float* b, float* out, int64_t n,
                sfn::Div);

// ---- fast tanh / gelu ----
//
// tanh dominates SDNet inference (every hidden activation is a GELU whose
// cost is one libm tanh, ~27 cycles/element); these overloads replace it
// with a Cephes-style rational approximation — 4 AVX2 lanes in flight,
// accurate to ~1-2 ulp of std::tanh. The vector lanes and the scalar
// remainder evaluate the identical operation sequence, so the value of an
// element never depends on which chunk or lane computed it: threaded
// execution stays bitwise identical to serial, and eager ops and program
// replay (including fused chains, which route through the *_block_inplace
// entry points) stay bitwise identical to each other. Absolute values
// differ from libm in the last bits; MF_DISABLE_FAST_TANH=1 (or the
// setter) restores bit-exact std::tanh everywhere.
/// Env-derived default: false when MF_DISABLE_FAST_TANH=1.
bool fast_tanh_enabled();
/// Override the env default (tests / benches). Returns previous value.
bool fast_tanh_set_enabled(bool on);
/// True when the fast path actually runs: enabled and the CPU has AVX2.
bool fast_tanh_active();
void map_unary(const real* a, real* out, int64_t n, sfn::Tanh);
void map_unary(const real* a, real* out, int64_t n, sfn::Gelu);
void map_unary(const float* a, float* out, int64_t n, sfn::Tanh);
void map_unary(const float* a, float* out, int64_t n, sfn::Gelu);
/// Serial in-place blocks for the fused-chain interpreter; element-for-
/// element identical to the map_unary overloads (fast path when active,
/// the sfn:: functor otherwise).
void tanh_block_inplace(real* x, int64_t n);
void gelu_block_inplace(real* x, int64_t n);
/// Float twins: the 8-lane ps fast path (Cephes constants narrowed to
/// float via the element type, float exponent build) with a scalar tail
/// that replicates the lane ops, so f32 values are chunk-invariant too.
void tanh_block_inplace(float* x, int64_t n);
void gelu_block_inplace(float* x, int64_t n);

// ---- FMA matmul tier ----
//
// When the CPU has FMA, matmul dispatches to fused-multiply-add
// micro-kernels (~2x arithmetic throughput on the width-64 GEMMs). Fused
// rounding shifts the last bits relative to the exact mulpd/addpd tier,
// so it is hatch-controlled: MF_DISABLE_FMA_KERNELS=1 (or the setter)
// restores kernels that are bitwise identical to the naive scalar loop.
// Either way eager, replay, serial and threaded execution all share one
// kernel, so intra-process parity invariants are unaffected.
bool fma_kernels_enabled();
bool fma_kernels_set_enabled(bool on);
bool fma_kernels_active();

// ---- broadcast elementwise ----

/// Precomputed output-dim strides mapping each output element to the flat
/// offsets of two broadcast operands (stride 0 on broadcast axes).
struct BroadcastPlan {
  BroadcastPlan(const Shape& out, const Shape& a, const Shape& b);

  Shape out_shape;
  std::vector<int64_t> a_strides, b_strides;
  int64_t n = 0;
};

/// out[i] = f(a[ai], b[bi]) over the whole broadcast output. Each thread
/// seeds its multi-index from its chunk start, then walks incrementally.
template <typename T, typename F>
void map_broadcast(const BroadcastPlan& plan, const T* a, const T* b,
                   T* out, F&& f) {
  parallel_for(plan.n, [&](int64_t begin, int64_t end) {
    const int64_t nd = static_cast<int64_t>(plan.out_shape.size());
    std::vector<int64_t> idx(static_cast<std::size_t>(nd), 0);
    int64_t ai = 0, bi = 0;
    int64_t rem = begin;
    for (int64_t d = nd - 1; d >= 0; --d) {
      const auto du = static_cast<std::size_t>(d);
      idx[du] = rem % plan.out_shape[du];
      rem /= plan.out_shape[du];
      ai += idx[du] * plan.a_strides[du];
      bi += idx[du] * plan.b_strides[du];
    }
    for (int64_t i = begin; i < end; ++i) {
      out[i] = f(a[ai], b[bi]);
      for (int64_t d = nd - 1; d >= 0; --d) {
        const auto du = static_cast<std::size_t>(d);
        idx[du]++;
        ai += plan.a_strides[du];
        bi += plan.b_strides[du];
        if (idx[du] < plan.out_shape[du]) break;
        ai -= plan.a_strides[du] * plan.out_shape[du];
        bi -= plan.b_strides[du] * plan.out_shape[du];
        idx[du] = 0;
      }
    }
  });
}

/// Materialize `src` (shape `src_shape`) broadcast into the contiguous
/// output described by `plan` (built with a == b == src_shape).
void broadcast_copy(const BroadcastPlan& plan, const real* src, real* out);
void broadcast_copy(const BroadcastPlan& plan, const float* src, float* out);

// ---- reductions ----

/// Sum over the axes along which `dst_shape` broadcasts to `src_shape`.
/// Gather formulation: every output element independently sums its
/// preimage, so the loop parallelizes without scatter races.
struct ReducePlan {
  ReducePlan(const Shape& src, const Shape& dst);

  int64_t n_out = 1;  // numel of dst
  int64_t n_red = 1;  // elements folded into each output
  // Kept dims in original order (sizes match dst), with src strides.
  std::vector<int64_t> out_sizes, out_src_strides;
  // Reduced dims (size 1 in dst, > 1 in src), with src strides.
  std::vector<int64_t> red_sizes, red_src_strides;
};

/// dst[o] = sum of src over o's broadcast preimage. dst is overwritten.
/// The float overload accumulates each output element in double and
/// narrows once at the store (mixed-precision stability rule: reductions
/// accumulate at master width).
void reduce_broadcast(const ReducePlan& plan, const real* src, real* dst);
void reduce_broadcast(const ReducePlan& plan, const float* src, float* dst);

real reduce_sum(const real* a, int64_t n);
real reduce_max_abs(const real* a, int64_t n);
real reduce_sq_diff(const real* a, const real* b, int64_t n);
real reduce_abs_diff(const real* a, const real* b, int64_t n);
/// Float input, double accumulator — callers narrow the result if needed.
double reduce_sum(const float* a, int64_t n);

/// dst[o, i] = sum_k src[o, k, i]; dst must be zero-initialized.
void sum_axis(const real* src, real* dst, int64_t outer, int64_t n_axis,
              int64_t inner);
void sum_axis(const float* src, float* dst, int64_t outer, int64_t n_axis,
              int64_t inner);

// ---- linear algebra ----

/// out[m, n] = a[m, k] @ b[k, n] (+ bias[n] when bias != nullptr).
/// out is overwritten. Threads over rows of `a`.
void matmul(const real* a, const real* b, const real* bias, real* out,
            int64_t m, int64_t k, int64_t n);
/// f32 GEMM: 8-lane ps micro-kernel with FMA contraction when the CPU has
/// it. Unlike the f64 tiers this path makes no bitwise promise against a
/// scalar reference (the f32 policy is tolerance-gated); it is still
/// deterministic and thread-count-invariant because rows partition the
/// work and each output element accumulates in one thread in kk order.
void matmul(const float* a, const float* b, const float* bias, float* out,
            int64_t m, int64_t k, int64_t n);

/// out[n, m] = a[m, n]^T.
void transpose(const real* a, real* out, int64_t m, int64_t n);
void transpose(const float* a, float* out, int64_t m, int64_t n);

// ---- convolution (stride 1, symmetric zero padding) ----

void conv1d_forward(const real* input, const real* weight, const real* bias,
                    real* out, int64_t B, int64_t Cin, int64_t L, int64_t Cout,
                    int64_t K, int64_t padding);
void conv1d_forward(const float* input, const float* weight, const float* bias,
                    float* out, int64_t B, int64_t Cin, int64_t L,
                    int64_t Cout, int64_t K, int64_t padding);
/// grad_input must be zero-initialized. Threads over batch.
void conv1d_grad_input(const real* grad_out, const real* weight,
                       real* grad_input, int64_t B, int64_t Cin, int64_t L,
                       int64_t Cout, int64_t K, int64_t padding);
void conv1d_grad_input(const float* grad_out, const float* weight,
                       float* grad_input, int64_t B, int64_t Cin, int64_t L,
                       int64_t Cout, int64_t K, int64_t padding);
/// grad_weight must be zero-initialized. Threads over output channels.
void conv1d_grad_weight(const real* grad_out, const real* input,
                        real* grad_weight, int64_t B, int64_t Cin, int64_t L,
                        int64_t Cout, int64_t K, int64_t padding);
void conv1d_grad_weight(const float* grad_out, const float* input,
                        float* grad_weight, int64_t B, int64_t Cin, int64_t L,
                        int64_t Cout, int64_t K, int64_t padding);
/// grad_bias must be zero-initialized. Threads over output channels.
void conv1d_grad_bias(const real* grad_out, real* grad_bias, int64_t B,
                      int64_t Cout, int64_t Lout);
void conv1d_grad_bias(const float* grad_out, float* grad_bias, int64_t B,
                      int64_t Cout, int64_t Lout);

// ---- dtype casts ----

/// Contiguous widen/narrow between the plan widths. Elementwise and
/// order-free: f64 -> f32 rounds-to-nearest per element, f32 -> f64 is
/// exact.
void cast_buffer(const double* src, float* dst, int64_t n);
void cast_buffer(const float* src, double* dst, int64_t n);

}  // namespace mf::ad::kernels
