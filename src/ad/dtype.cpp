#include "ad/dtype.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace mf::ad {

namespace {

std::atomic<DType> g_compute_dtype{[] {
  const char* env = std::getenv("MF_PRECISION");
  if (env && std::strcmp(env, "f32") == 0) return DType::kF32;
  return DType::kF64;
}()};

}  // namespace

DType compute_dtype() { return g_compute_dtype.load(std::memory_order_relaxed); }

DType set_compute_dtype(DType dt) {
  return g_compute_dtype.exchange(dt, std::memory_order_relaxed);
}

}  // namespace mf::ad
