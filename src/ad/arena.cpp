#include "ad/arena.hpp"

#include <algorithm>
#include <cstdlib>

namespace mf::ad {

namespace {

bool arena_enabled_from_env() {
  const char* env = std::getenv("MF_DISABLE_ARENA");
  return !(env && env[0] == '1');
}

}  // namespace

bool tape_arena_enabled() {
  static const bool enabled = arena_enabled_from_env();
  return enabled;
}

const std::shared_ptr<TapeArena>& this_thread_tape_arena() {
  thread_local std::shared_ptr<TapeArena> arena = std::make_shared<TapeArena>();
  return arena;
}

void* TapeArena::allocate(std::size_t bytes, std::size_t align) {
  // Lazy reset: only the owning thread allocates, so bump state is free of
  // races; the atomic live count tells us when everything is dead.
  if (dirty_ && live_blocks_.load(std::memory_order_acquire) == 0) {
    rewind();
  }
  dirty_ = true;
  const std::size_t mask = align - 1;
  for (;;) {
    if (chunk_idx_ < chunks_.size()) {
      Chunk& c = chunks_[chunk_idx_];
      const std::size_t base = reinterpret_cast<std::size_t>(c.mem.get());
      const std::size_t aligned = (base + offset_ + mask) & ~mask;
      const std::size_t new_offset = aligned - base + bytes;
      if (new_offset <= c.size) {
        offset_ = new_offset;
        high_water_ = std::max(high_water_, total_used());
        return reinterpret_cast<void*>(aligned);
      }
      // Chunk exhausted: advance (tail is wasted until the next rewind).
      ++chunk_idx_;
      offset_ = 0;
      continue;
    }
    // Need a new chunk. Grow geometrically so long graphs settle into a
    // few large chunks that the rewind then merges into one.
    std::size_t reserved = 0;
    for (const Chunk& c : chunks_) reserved += c.size;
    const std::size_t size = std::max({kMinChunk, bytes + align, reserved});
    chunks_.push_back(Chunk{std::make_unique<unsigned char[]>(size), size});
    chunk_idx_ = chunks_.size() - 1;
    offset_ = 0;
  }
}

std::size_t TapeArena::total_used() const {
  std::size_t used = offset_;
  for (std::size_t i = 0; i < chunk_idx_ && i < chunks_.size(); ++i) {
    used += chunks_[i].size;
  }
  return used;
}

void TapeArena::rewind() {
  ++rewinds_;
  if (chunks_.size() > 1) {
    // Consolidate so the steady state bump-allocates from one chunk.
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    chunks_.clear();
    chunks_.push_back(Chunk{std::make_unique<unsigned char[]>(total), total});
  }
  chunk_idx_ = 0;
  offset_ = 0;
  dirty_ = false;
}

TapeArena::Stats TapeArena::stats() const {
  Stats s;
  s.blocks_allocated = blocks_allocated_;
  s.live_blocks = live_blocks_.load(std::memory_order_relaxed);
  s.rewinds = rewinds_;
  for (const Chunk& c : chunks_) s.bytes_reserved += c.size;
  s.high_water = high_water_;
  return s;
}

}  // namespace mf::ad
