#include "ad/engine.hpp"

#include <algorithm>
#include <new>
#include <unordered_map>
#include <unordered_set>

#include "ad/ops.hpp"

namespace mf::ad {

Node::~Node() {
  for (std::uint32_t i = 0; i < n_inputs_; ++i) inputs_[i].~Tensor();
  if (inputs_on_heap_) ::operator delete(inputs_);
  // Arena-placed arrays are reclaimed wholesale by the arena rewind.
}

void Node::set_inputs(const Tensor* src, std::size_t n) {
  if (n == 0) return;
  void* mem;
  if (tape_arena_enabled()) {
    // Uncounted raw placement: the array dies with its node, strictly
    // before the rewind that reclaims the memory.
    mem = this_thread_tape_arena()->allocate(n * sizeof(Tensor), alignof(Tensor));
  } else {
    mem = ::operator new(n * sizeof(Tensor));
    inputs_on_heap_ = true;
  }
  inputs_ = static_cast<Tensor*>(mem);
  for (std::size_t i = 0; i < n; ++i) new (inputs_ + i) Tensor(src[i]);
  n_inputs_ = static_cast<std::uint32_t>(n);
}

namespace detail {

bool wants_grad(const Tensor* inputs, std::size_t n) {
  if (!GradMode::enabled()) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Tensor& in = inputs[i];
    if (in.defined() && (in.requires_grad() || in.has_grad_fn())) return true;
  }
  return false;
}

Tensor attach(Tensor out, std::shared_ptr<Node> node, const Tensor* inputs,
              std::size_t n) {
  node->set_inputs(inputs, n);
  out.impl()->grad_fn = std::move(node);
  return out;
}

}  // namespace detail

namespace {

/// Topological order (outputs first) of the graph reachable from `root`.
std::vector<Node*> topo_order(Node* root) {
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  // Iterative post-order DFS.
  struct Frame {
    Node* node;
    std::size_t next_child;
  };
  std::vector<Frame> stack;
  if (!root || visited.count(root)) return order;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& f = stack.back();
    bool descended = false;
    while (f.next_child < f.node->num_inputs()) {
      const Tensor& in = f.node->input(f.next_child++);
      Node* child = in.defined() ? in.grad_fn().get() : nullptr;
      if (child && !visited.count(child)) {
        visited.insert(child);
        stack.push_back({child, 0});
        descended = true;
        break;
      }
    }
    if (!descended && f.next_child >= f.node->num_inputs()) {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
  // Post-order gives children first; reverse for outputs-first.
  std::reverse(order.begin(), order.end());
  return order;
}

struct Accumulator {
  std::unordered_map<const TensorImpl*, Tensor> grads;

  void add(const Tensor& target, const Tensor& g) {
    auto it = grads.find(target.impl_ptr());
    if (it == grads.end()) {
      grads.emplace(target.impl_ptr(), g);
    } else {
      it->second = ops::add(it->second, g);
    }
  }

  Tensor take(const TensorImpl* key) {
    auto it = grads.find(key);
    if (it == grads.end()) return Tensor();
    Tensor g = it->second;
    grads.erase(it);
    return g;
  }
};

/// Runs the reverse sweep. `wanted` maps leaf impls (or intermediate impls)
/// to output slots. If `accumulate_leaves` is set, gradients are instead
/// accumulated into every reachable requires_grad leaf's `.grad`.
void run_backward(const Tensor& output, const Tensor& grad_output,
                  const std::vector<Tensor>& inputs, bool create_graph,
                  bool accumulate_leaves, std::vector<Tensor>* results) {
  Tensor seed = grad_output;
  if (!seed.defined()) {
    if (output.numel() != 1) {
      throw std::logic_error(
          "grad/backward on non-scalar output requires an explicit "
          "grad_output");
    }
    seed = Tensor::ones(output.shape());
  }

  std::unordered_map<const TensorImpl*, std::size_t> wanted;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    wanted.emplace(inputs[i].impl_ptr(), i);
  }
  if (results) results->assign(inputs.size(), Tensor());

  auto deliver = [&](const Tensor& target, const Tensor& g) {
    if (results) {
      auto it = wanted.find(target.impl_ptr());
      if (it != wanted.end()) {
        Tensor& slot = (*results)[it->second];
        slot = slot.defined() ? ops::add(slot, g) : g;
      }
    }
    if (accumulate_leaves && target.requires_grad() && !target.has_grad_fn()) {
      Tensor existing = target.grad();
      Tensor sum = existing.defined() ? ops::add(existing, g).detach() : g.detach();
      const_cast<Tensor&>(target).set_grad(sum);
    }
  };

  // Direct request of the output itself.
  deliver(output, seed);

  Node* root = output.grad_fn().get();
  if (!root) return;

  const std::vector<Node*> order = topo_order(root);

  // Need-set: a node is needed if a requested input or a requires_grad leaf
  // (when accumulating) is reachable from it. Compute children-first.
  std::unordered_map<Node*, bool> needed;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    bool need = false;
    for (std::size_t i = 0; i < n->num_inputs(); ++i) {
      const Tensor& in = n->input(i);
      if (!in.defined()) continue;
      if (wanted.count(in.impl_ptr())) need = true;
      if (accumulate_leaves && in.requires_grad() && !in.has_grad_fn()) need = true;
      Node* child = in.grad_fn().get();
      if (child) {
        auto found = needed.find(child);
        if (found != needed.end() && found->second) need = true;
        // Also: the child's *output* tensor could itself be requested.
        if (wanted.count(in.impl_ptr())) need = true;
      }
    }
    needed[n] = need;
  }

  Accumulator acc;
  acc.grads.emplace(output.impl_ptr(), seed);

  // Map from node -> the impl of its output tensor is implicit: a node is
  // reached through the tensor that holds it. We track pending grads keyed
  // by TensorImpl*, and for each node in topo order we need the grad of its
  // output — located via the recorded owner map below.
  std::unordered_map<Node*, const TensorImpl*> owner;
  owner.emplace(root, output.impl_ptr());
  for (Node* n : order) {
    for (std::size_t i = 0; i < n->num_inputs(); ++i) {
      const Tensor& in = n->input(i);
      if (in.defined() && in.grad_fn()) {
        owner.emplace(in.grad_fn().get(), in.impl_ptr());
      }
    }
  }

  const bool prev_mode = GradMode::enabled();
  GradMode::set_enabled(create_graph);
  for (Node* n : order) {
    if (!needed[n]) continue;
    Tensor gout = acc.take(owner[n]);
    if (!gout.defined()) continue;  // no gradient flowed to this node
    std::vector<bool> needs(n->num_inputs(), false);
    for (std::size_t i = 0; i < n->num_inputs(); ++i) {
      const Tensor& in = n->input(i);
      if (!in.defined()) continue;
      if (wanted.count(in.impl_ptr())) needs[i] = true;
      if (accumulate_leaves && in.requires_grad() && !in.has_grad_fn()) needs[i] = true;
      Node* child = in.grad_fn().get();
      if (child && needed[child]) needs[i] = true;
    }
    std::vector<Tensor> gin = n->backward(gout, needs);
    if (gin.size() != n->num_inputs()) {
      GradMode::set_enabled(prev_mode);
      throw std::logic_error("node '" + std::string(n->name) +
                             "' returned wrong number of gradients");
    }
    for (std::size_t i = 0; i < gin.size(); ++i) {
      if (!needs[i] || !gin[i].defined()) continue;
      const Tensor& in = n->input(i);
      deliver(in, gin[i]);
      if (in.grad_fn()) acc.add(in, gin[i]);
    }
  }
  GradMode::set_enabled(prev_mode);
}

}  // namespace

std::vector<Tensor> grad(const Tensor& output, const std::vector<Tensor>& inputs,
                         const Tensor& grad_output, bool create_graph) {
  std::vector<Tensor> results;
  run_backward(output, grad_output, inputs, create_graph,
               /*accumulate_leaves=*/false, &results);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].defined()) {
      results[i] = Tensor::zeros(inputs[i].shape());
    }
  }
  return results;
}

void backward(const Tensor& output, const Tensor& grad_output) {
  run_backward(output, grad_output, {}, /*create_graph=*/false,
               /*accumulate_leaves=*/true, nullptr);
}

std::size_t graph_size(const Tensor& t) {
  Node* root = t.grad_fn().get();
  if (!root) return 0;
  return topo_order(root).size();
}

}  // namespace mf::ad
