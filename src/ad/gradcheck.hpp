// Finite-difference verification of autodiff gradients; used by the
// property-based test suites.
#pragma once

#include <functional>
#include <vector>

#include "ad/engine.hpp"
#include "ad/ops.hpp"
#include "ad/tensor.hpp"

namespace mf::ad {

struct GradcheckResult {
  bool ok = true;
  real max_abs_err = 0;
  real max_rel_err = 0;
};

/// Compares analytic d f / d inputs against central finite differences.
/// `f` must map the inputs to a scalar tensor.
GradcheckResult gradcheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& f,
    std::vector<Tensor> inputs, real eps = 1e-5, real tol = 1e-6);

/// Second-order check: verifies d/dx of (d f/d x · v) for a random constant
/// vector v, exercising create_graph.
GradcheckResult gradcheck_second_order(
    const std::function<Tensor(const std::vector<Tensor>&)>& f,
    std::vector<Tensor> inputs, real eps = 1e-5, real tol = 5e-5);

}  // namespace mf::ad
