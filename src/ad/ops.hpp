// Differentiable tensor operations.
//
// Every op's backward is written in terms of these same ops, so running a
// backward pass with grad mode enabled (`create_graph`) produces a graph of
// the gradient computation that can itself be differentiated. The only
// exception is conv1d, whose backward is first-order only (documented
// below) — in SDNet the convolution sits on the boundary-embedding branch,
// which is never differentiated with respect to the spatial coordinates.
#pragma once

#include <vector>

#include "ad/engine.hpp"
#include "ad/tensor.hpp"

namespace mf::ad::ops {

// ---- shape/broadcast utilities ----

/// NumPy-style broadcast of two shapes; throws when incompatible.
Shape broadcast_shape(const Shape& a, const Shape& b);

/// Materialize `t` broadcast to `shape`. Backward reduces back.
Tensor broadcast_to(const Tensor& t, const Shape& shape);

/// Sum `t` over its broadcast dimensions so the result has `shape`.
/// Inverse of broadcast_to; backward broadcasts back.
Tensor reduce_to(const Tensor& t, const Shape& shape);

/// Contiguous reshape (copy). Backward reshapes back.
Tensor reshape(const Tensor& t, const Shape& shape);

/// 2-D transpose.
Tensor transpose(const Tensor& t);

// ---- elementwise binary (broadcasting) ----
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// ---- elementwise with scalar ----
Tensor add_scalar(const Tensor& a, real s);
Tensor mul_scalar(const Tensor& a, real s);
Tensor pow_scalar(const Tensor& a, real exponent);

// ---- elementwise unary ----
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor square(const Tensor& a);
/// Gaussian Error Linear Unit (tanh approximation), built compositionally
/// from primitives so all orders of derivatives exist. Matches the paper's
/// choice of smooth activation for PINN training (Sec. 3.1).
Tensor gelu(const Tensor& a);
Tensor sigmoid(const Tensor& a);

// ---- reductions ----
Tensor sum(const Tensor& a);
Tensor mean(const Tensor& a);
Tensor sum_axis(const Tensor& a, int64_t axis, bool keepdim);

// ---- linear algebra ----
/// a: [..., K] (leading dims flattened), b: [K, N] -> [..., N].
Tensor matmul(const Tensor& a, const Tensor& b);

/// Fused affine map: x @ w (+ bias) in a single kernel pass. x: [..., K],
/// w: [K, N], bias: [N] or undefined to skip. Backward is compositional
/// (matmul/transpose/reduce_to), so create_graph works through it.
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b);

// ---- structural ----
/// Slice `len` elements starting at `start` along `axis`.
Tensor slice(const Tensor& t, int64_t axis, int64_t start, int64_t len);
/// Concatenate along `axis`.
Tensor concat(const std::vector<Tensor>& parts, int64_t axis);

// ---- convolution ----
/// input: [B, Cin, L], weight: [Cout, Cin, K], bias: [Cout] (optional,
/// pass undefined Tensor to skip). Stride 1, symmetric zero padding.
/// NOTE: backward is first-order only (see header comment).
Tensor conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t padding);

// ---- non-differentiable helpers (no graph) ----
real reduce_max_abs(const Tensor& t);
real mse(const Tensor& a, const Tensor& b);
real mae(const Tensor& a, const Tensor& b);

}  // namespace mf::ad::ops

namespace mf::ad {
// Operator sugar.
inline Tensor operator+(const Tensor& a, const Tensor& b) { return ops::add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return ops::sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return ops::mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return ops::div(a, b); }
inline Tensor operator-(const Tensor& a) { return ops::neg(a); }
inline Tensor operator*(const Tensor& a, real s) { return ops::mul_scalar(a, s); }
inline Tensor operator*(real s, const Tensor& a) { return ops::mul_scalar(a, s); }
inline Tensor operator+(const Tensor& a, real s) { return ops::add_scalar(a, s); }
inline Tensor operator-(const Tensor& a, real s) { return ops::add_scalar(a, -s); }
}  // namespace mf::ad
