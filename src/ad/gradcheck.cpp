#include "ad/gradcheck.hpp"

#include <cmath>

namespace mf::ad {

namespace {

GradcheckResult compare(const std::vector<Tensor>& analytic,
                        const std::vector<Tensor>& numeric, real tol) {
  GradcheckResult r;
  for (std::size_t k = 0; k < analytic.size(); ++k) {
    for (int64_t i = 0; i < analytic[k].numel(); ++i) {
      const real a = analytic[k].flat(i);
      const real n = numeric[k].flat(i);
      const real abs_err = std::abs(a - n);
      const real rel_err = abs_err / std::max<real>(1.0, std::abs(n));
      r.max_abs_err = std::max(r.max_abs_err, abs_err);
      r.max_rel_err = std::max(r.max_rel_err, rel_err);
      if (rel_err > tol) r.ok = false;
    }
  }
  return r;
}

std::vector<Tensor> numeric_grads(
    const std::function<Tensor(const std::vector<Tensor>&)>& f,
    std::vector<Tensor>& inputs, real eps) {
  NoGradGuard no_grad;
  std::vector<Tensor> numeric;
  numeric.reserve(inputs.size());
  for (auto& input : inputs) {
    Tensor g = Tensor::zeros(input.shape());
    for (int64_t i = 0; i < input.numel(); ++i) {
      const real orig = input.flat(i);
      input.flat(i) = orig + eps;
      const real fp = f(inputs).item();
      input.flat(i) = orig - eps;
      const real fm = f(inputs).item();
      input.flat(i) = orig;
      g.flat(i) = (fp - fm) / (2 * eps);
    }
    numeric.push_back(g);
  }
  return numeric;
}

}  // namespace

GradcheckResult gradcheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& f,
    std::vector<Tensor> inputs, real eps, real tol) {
  for (auto& in : inputs) in.set_requires_grad(true);
  Tensor out = f(inputs);
  std::vector<Tensor> analytic = grad(out, inputs);
  std::vector<Tensor> numeric = numeric_grads(f, inputs, eps);
  return compare(analytic, numeric, tol);
}

GradcheckResult gradcheck_second_order(
    const std::function<Tensor(const std::vector<Tensor>&)>& f,
    std::vector<Tensor> inputs, real eps, real tol) {
  for (auto& in : inputs) in.set_requires_grad(true);

  // Fixed pseudo-random direction vectors (deterministic).
  std::vector<Tensor> vs;
  for (const auto& in : inputs) {
    Tensor v = Tensor::zeros(in.shape());
    for (int64_t i = 0; i < v.numel(); ++i) {
      v.flat(i) = 0.3 + 0.17 * static_cast<real>((i * 2654435761u) % 97) / 97.0;
    }
    vs.push_back(v);
  }

  // g(x) = sum_k <df/dx_k, v_k>, computed with create_graph.
  auto directional = [&](const std::vector<Tensor>& xs) {
    Tensor out = f(xs);
    std::vector<Tensor> gs = grad(out, xs, Tensor(), /*create_graph=*/true);
    Tensor acc = Tensor::scalar(0);
    for (std::size_t k = 0; k < gs.size(); ++k) {
      acc = ops::add(acc, ops::sum(ops::mul(gs[k], vs[k])));
    }
    return acc;
  };

  Tensor gval = directional(inputs);
  std::vector<Tensor> analytic = grad(gval, inputs);

  // Numeric differentiation of the directional derivative. Note: the inner
  // grad() call must still run, so no NoGradGuard here; we detach results.
  std::vector<Tensor> numeric;
  for (auto& input : inputs) {
    Tensor g = Tensor::zeros(input.shape());
    for (int64_t i = 0; i < input.numel(); ++i) {
      const real orig = input.flat(i);
      input.flat(i) = orig + eps;
      const real fp = directional(inputs).item();
      input.flat(i) = orig - eps;
      const real fm = directional(inputs).item();
      input.flat(i) = orig;
      g.flat(i) = (fp - fm) / (2 * eps);
    }
    numeric.push_back(g);
  }
  return compare(analytic, numeric, tol);
}

}  // namespace mf::ad
