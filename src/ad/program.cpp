#include "ad/program.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "ad/scalar_fns.hpp"

namespace mf::ad {

namespace {

enum class StepKind : std::uint8_t {
  kUnary,
  kBinary,
  kBinaryBcast,
  kBcastCopy,
  kReduce,
  kSumAll,
  kSumAxis,
  kMatmul,
  kTranspose,
  kCopy,
  kSlicePack,
  kSliceScatter,
  kConcatPart,
  kConv1dFwd,
  kConv1dGradIn,
  kConv1dGradW,
  kConv1dGradB,
};

/// One lowered kernel invocation. Operands are slot indices; `plan`
/// indexes the program's stored broadcast/reduce plans; p0..p5 carry the
/// kernel geometry exactly as the eager op passed it.
struct Step {
  StepKind kind;
  std::uint8_t fn = 0;  // prog::Unary or prog::Binary
  std::int32_t a = -1, b = -1, c = -1;
  std::int32_t out = -1;
  std::int32_t plan = -1;
  real scalar = 0;
  int64_t p0 = 0, p1 = 0, p2 = 0, p3 = 0, p4 = 0, p5 = 0;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<bool> g_prog_enabled{[] {
  const char* env = std::getenv("MF_DISABLE_PROGRAM");
  return !(env && env[0] == '1');
}()};

}  // namespace

bool program_enabled() { return g_prog_enabled.load(std::memory_order_relaxed); }

bool program_set_enabled(bool on) {
  return g_prog_enabled.exchange(on, std::memory_order_relaxed);
}

struct Program::Impl {
  std::vector<Step> steps;
  // One entry per slot. After lowering, entries for internal
  // (liveness-packed) slots are null; external entries pin the payloads
  // the program must keep addressable (leaves are read live through them).
  std::vector<std::shared_ptr<TensorImpl>> slots;
  std::vector<int64_t> slot_len;
  std::vector<real*> buf;
  std::vector<kernels::BroadcastPlan> bplans;
  std::vector<kernels::ReducePlan> rplans;
  // Internal storage: buffers reused across slots whose live ranges do
  // not overlap.
  std::vector<std::vector<real>> arena;

  // Capture-time state.
  std::unordered_map<const TensorImpl*, std::int32_t> slot_of;

  bool ready = false;
  double capture_ms = 0;
  std::uint64_t captures = 0, replays = 0;
  std::size_t external_slots = 0, arena_bytes = 0, pinned_bytes = 0;

  void clear_plan() {
    steps.clear();
    slots.clear();
    slot_len.clear();
    buf.clear();
    bplans.clear();
    rplans.clear();
    arena.clear();
    slot_of.clear();
    ready = false;
    external_slots = arena_bytes = pinned_bytes = 0;
  }
};

namespace prog {
namespace detail {
thread_local Program::Impl* g_recorder = nullptr;
}  // namespace detail

namespace {

std::int32_t intern(Program::Impl& im, const Tensor& t) {
  const TensorImpl* key = t.impl_ptr();
  auto [it, fresh] = im.slot_of.try_emplace(
      key, static_cast<std::int32_t>(im.slots.size()));
  if (fresh) im.slots.push_back(t.impl());
  return it->second;
}

Program::Impl* rec() { return detail::g_recorder; }

}  // namespace

void on_unary(Unary fn, real scalar, const Tensor& a, const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kUnary;
  s.fn = static_cast<std::uint8_t>(fn);
  s.scalar = scalar;
  s.a = intern(*im, a);
  s.out = intern(*im, out);
  s.p0 = out.numel();
  im->steps.push_back(s);
}

void on_binary(Binary fn, const Tensor& a, const Tensor& b, const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kBinary;
  s.fn = static_cast<std::uint8_t>(fn);
  s.a = intern(*im, a);
  s.b = intern(*im, b);
  s.out = intern(*im, out);
  s.p0 = out.numel();
  im->steps.push_back(s);
}

void on_binary_bcast(Binary fn, const kernels::BroadcastPlan& plan,
                     const Tensor& a, const Tensor& b, const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kBinaryBcast;
  s.fn = static_cast<std::uint8_t>(fn);
  s.a = intern(*im, a);
  s.b = intern(*im, b);
  s.out = intern(*im, out);
  s.plan = static_cast<std::int32_t>(im->bplans.size());
  im->bplans.push_back(plan);
  im->steps.push_back(s);
}

void on_broadcast_copy(const kernels::BroadcastPlan& plan, const Tensor& a,
                       const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kBcastCopy;
  s.a = intern(*im, a);
  s.out = intern(*im, out);
  s.plan = static_cast<std::int32_t>(im->bplans.size());
  im->bplans.push_back(plan);
  im->steps.push_back(s);
}

void on_reduce(const kernels::ReducePlan& plan, const Tensor& a,
               const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kReduce;
  s.a = intern(*im, a);
  s.out = intern(*im, out);
  s.plan = static_cast<std::int32_t>(im->rplans.size());
  im->rplans.push_back(plan);
  im->steps.push_back(s);
}

void on_sum_all(const Tensor& a, const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kSumAll;
  s.a = intern(*im, a);
  s.out = intern(*im, out);
  s.p0 = a.numel();
  im->steps.push_back(s);
}

void on_sum_axis(const Tensor& a, const Tensor& out, int64_t outer,
                 int64_t n_axis, int64_t inner) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kSumAxis;
  s.a = intern(*im, a);
  s.out = intern(*im, out);
  s.p0 = outer;
  s.p1 = n_axis;
  s.p2 = inner;
  im->steps.push_back(s);
}

void on_matmul(const Tensor& a, const Tensor& b, const Tensor* bias,
               const Tensor& out, int64_t m, int64_t k, int64_t n) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kMatmul;
  s.a = intern(*im, a);
  s.b = intern(*im, b);
  s.c = (bias && bias->defined()) ? intern(*im, *bias) : -1;
  s.out = intern(*im, out);
  s.p0 = m;
  s.p1 = k;
  s.p2 = n;
  im->steps.push_back(s);
}

void on_transpose(const Tensor& a, const Tensor& out, int64_t m, int64_t n) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kTranspose;
  s.a = intern(*im, a);
  s.out = intern(*im, out);
  s.p0 = m;
  s.p1 = n;
  im->steps.push_back(s);
}

void on_copy(const Tensor& src, const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kCopy;
  s.a = intern(*im, src);
  s.out = intern(*im, out);
  s.p0 = out.numel();
  im->steps.push_back(s);
}

void on_slice_pack(const Tensor& in, const Tensor& out, int64_t outer,
                   int64_t len, int64_t inner, int64_t n_axis, int64_t start) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kSlicePack;
  s.a = intern(*im, in);
  s.out = intern(*im, out);
  s.p0 = outer;
  s.p1 = len;
  s.p2 = inner;
  s.p3 = n_axis;
  s.p4 = start;
  im->steps.push_back(s);
}

void on_slice_scatter(const Tensor& g, const Tensor& out, int64_t outer,
                      int64_t len, int64_t inner, int64_t n_axis,
                      int64_t start) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kSliceScatter;
  s.a = intern(*im, g);
  s.out = intern(*im, out);
  s.p0 = outer;
  s.p1 = len;
  s.p2 = inner;
  s.p3 = n_axis;
  s.p4 = start;
  im->steps.push_back(s);
}

void on_concat_part(const Tensor& part, const Tensor& out, int64_t outer,
                    int64_t total, int64_t offset, int64_t len, int64_t inner) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kConcatPart;
  s.a = intern(*im, part);
  s.out = intern(*im, out);
  s.p0 = outer;
  s.p1 = total;
  s.p2 = offset;
  s.p3 = len;
  s.p4 = inner;
  im->steps.push_back(s);
}

namespace {
void conv_common(Step& s, StepKind kind, const Tensor& a, const Tensor& b,
                 const Tensor* c, const Tensor& out, int64_t B, int64_t Cin,
                 int64_t L, int64_t Cout, int64_t K, int64_t padding) {
  Program::Impl& im = *rec();
  s.kind = kind;
  s.a = intern(im, a);
  s.b = intern(im, b);
  s.c = (c && c->defined()) ? intern(im, *c) : -1;
  s.out = intern(im, out);
  s.p0 = B;
  s.p1 = Cin;
  s.p2 = L;
  s.p3 = Cout;
  s.p4 = K;
  s.p5 = padding;
  im.steps.push_back(s);
}
}  // namespace

void on_conv1d_forward(const Tensor& in, const Tensor& w, const Tensor* bias,
                       const Tensor& out, int64_t B, int64_t Cin, int64_t L,
                       int64_t Cout, int64_t K, int64_t padding) {
  if (!rec()) return;
  Step s;
  conv_common(s, StepKind::kConv1dFwd, in, w, bias, out, B, Cin, L, Cout, K,
              padding);
}

void on_conv1d_grad_input(const Tensor& gout, const Tensor& w,
                          const Tensor& out, int64_t B, int64_t Cin, int64_t L,
                          int64_t Cout, int64_t K, int64_t padding) {
  if (!rec()) return;
  Step s;
  conv_common(s, StepKind::kConv1dGradIn, gout, w, nullptr, out, B, Cin, L,
              Cout, K, padding);
}

void on_conv1d_grad_weight(const Tensor& gout, const Tensor& in,
                           const Tensor& out, int64_t B, int64_t Cin,
                           int64_t L, int64_t Cout, int64_t K,
                           int64_t padding) {
  if (!rec()) return;
  Step s;
  conv_common(s, StepKind::kConv1dGradW, gout, in, nullptr, out, B, Cin, L,
              Cout, K, padding);
}

void on_conv1d_grad_bias(const Tensor& gout, const Tensor& out, int64_t B,
                         int64_t Cout, int64_t Lout) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kConv1dGradB;
  s.a = intern(*im, gout);
  s.out = intern(*im, out);
  s.p0 = B;
  s.p1 = Cout;
  s.p2 = Lout;
  im->steps.push_back(s);
}

}  // namespace prog

namespace {

/// Lower the raw trace: release the recorded autodiff graph, compute slot
/// live ranges, pack internal slots onto reused arena buffers, resolve
/// every operand to a raw pointer.
void lower(Program::Impl& im) {
  const std::size_t S = im.slots.size();
  im.slot_of.clear();
  im.slot_len.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    im.slot_len[s] = static_cast<int64_t>(im.slots[s]->data.size());
  }
  // Release the graph first: tape nodes hold input Tensors, so slot use
  // counts are only meaningful once every node is gone (this is also what
  // lets the tape arena rewind — the program owns buffers, not history).
  for (auto& sp : im.slots) sp->grad_fn.reset();

  // Live ranges. def = first write, first/last = first/last access of any
  // kind. Every step writes a freshly created output, so def normally
  // equals first access; the conservative check below keeps any slot that
  // would be read before its first write (impossible today) external.
  std::vector<std::int32_t> def(S, -1), first(S, -1), last(S, -1);
  auto touch = [&](std::int32_t slot, std::int32_t i, bool write) {
    if (slot < 0) return;
    if (first[slot] < 0) first[slot] = i;
    last[slot] = i;
    if (write && def[slot] < 0) def[slot] = i;
  };
  for (std::size_t i = 0; i < im.steps.size(); ++i) {
    const Step& st = im.steps[i];
    const auto si = static_cast<std::int32_t>(i);
    touch(st.a, si, false);
    touch(st.b, si, false);
    touch(st.c, si, false);
    touch(st.out, si, true);
  }

  // A slot is internal — its buffer reusable — iff nothing outside the
  // program references its TensorImpl (we hold the only count) and a step
  // fully defines it before any use. Everything else stays pinned:
  // leaves, parameters, `.grad` buffers, kept loss tensors, constants
  // materialized at capture time.
  std::vector<char> internal(S, 0);
  for (std::size_t s = 0; s < S; ++s) {
    internal[s] = im.slots[s].use_count() == 1 && def[s] >= 0 &&
                  def[s] == first[s];
  }

  // Exact-size reuse of internal buffers across disjoint live ranges.
  std::vector<std::vector<std::int32_t>> released(im.steps.size());
  for (std::size_t s = 0; s < S; ++s) {
    if (internal[s]) released[static_cast<std::size_t>(last[s])].push_back(
        static_cast<std::int32_t>(s));
  }
  std::unordered_map<int64_t, std::vector<std::int32_t>> free_by_len;
  std::vector<std::int32_t> arena_of(S, -1);
  for (std::size_t i = 0; i < im.steps.size(); ++i) {
    const std::int32_t o = im.steps[i].out;
    if (o >= 0 && internal[static_cast<std::size_t>(o)] &&
        def[static_cast<std::size_t>(o)] == static_cast<std::int32_t>(i)) {
      auto& fl = free_by_len[im.slot_len[static_cast<std::size_t>(o)]];
      if (!fl.empty()) {
        arena_of[static_cast<std::size_t>(o)] = fl.back();
        fl.pop_back();
      } else {
        arena_of[static_cast<std::size_t>(o)] =
            static_cast<std::int32_t>(im.arena.size());
        im.arena.emplace_back(
            static_cast<std::size_t>(im.slot_len[static_cast<std::size_t>(o)]));
      }
    }
    for (std::int32_t s : released[i]) {
      free_by_len[im.slot_len[static_cast<std::size_t>(s)]].push_back(
          arena_of[static_cast<std::size_t>(s)]);
    }
  }

  im.buf.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    if (internal[s]) {
      im.buf[s] = im.arena[static_cast<std::size_t>(arena_of[s])].data();
      im.slots[s].reset();  // payload returns to the pool
    } else {
      im.buf[s] = im.slots[s]->data.data();
      ++im.external_slots;
      im.pinned_bytes += im.slots[s]->data.size() * sizeof(real);
    }
  }
  for (const auto& a : im.arena) im.arena_bytes += a.size() * sizeof(real);
}

void execute(Program::Impl& im, const Step& s) {
  real* const* B = im.buf.data();
  switch (s.kind) {
    case StepKind::kUnary: {
      const real* a = B[s.a];
      real* o = B[s.out];
      const int64_t n = s.p0;
      switch (static_cast<prog::Unary>(s.fn)) {
        case prog::Unary::kAddScalar:
          kernels::map_unary(a, o, n, sfn::AddScalar{s.scalar});
          break;
        case prog::Unary::kMulScalar:
          kernels::map_unary(a, o, n, sfn::MulScalar{s.scalar});
          break;
        case prog::Unary::kPowScalar:
          kernels::map_unary(a, o, n, sfn::PowScalar{s.scalar});
          break;
        case prog::Unary::kNeg:
          kernels::map_unary(a, o, n, sfn::Neg{});
          break;
        case prog::Unary::kExp:
          kernels::map_unary(a, o, n, sfn::Exp{});
          break;
        case prog::Unary::kLog:
          kernels::map_unary(a, o, n, sfn::Log{});
          break;
        case prog::Unary::kSqrt:
          kernels::map_unary(a, o, n, sfn::Sqrt{});
          break;
        case prog::Unary::kTanh:
          kernels::map_unary(a, o, n, sfn::Tanh{});
          break;
        case prog::Unary::kAbs:
          kernels::map_unary(a, o, n, sfn::Abs{});
          break;
        case prog::Unary::kSign:
          kernels::map_unary(a, o, n, sfn::Sign{});
          break;
        case prog::Unary::kGelu:
          kernels::map_unary(a, o, n, sfn::Gelu{});
          break;
      }
      break;
    }
    case StepKind::kBinary: {
      const real* a = B[s.a];
      const real* b = B[s.b];
      real* o = B[s.out];
      const int64_t n = s.p0;
      switch (static_cast<prog::Binary>(s.fn)) {
        case prog::Binary::kAdd:
          kernels::map_binary(a, b, o, n, sfn::Add{});
          break;
        case prog::Binary::kSub:
          kernels::map_binary(a, b, o, n, sfn::Sub{});
          break;
        case prog::Binary::kMul:
          kernels::map_binary(a, b, o, n, sfn::Mul{});
          break;
        case prog::Binary::kDiv:
          kernels::map_binary(a, b, o, n, sfn::Div{});
          break;
      }
      break;
    }
    case StepKind::kBinaryBcast: {
      const kernels::BroadcastPlan& plan =
          im.bplans[static_cast<std::size_t>(s.plan)];
      const real* a = B[s.a];
      const real* b = B[s.b];
      real* o = B[s.out];
      switch (static_cast<prog::Binary>(s.fn)) {
        case prog::Binary::kAdd:
          kernels::map_broadcast(plan, a, b, o, sfn::Add{});
          break;
        case prog::Binary::kSub:
          kernels::map_broadcast(plan, a, b, o, sfn::Sub{});
          break;
        case prog::Binary::kMul:
          kernels::map_broadcast(plan, a, b, o, sfn::Mul{});
          break;
        case prog::Binary::kDiv:
          kernels::map_broadcast(plan, a, b, o, sfn::Div{});
          break;
      }
      break;
    }
    case StepKind::kBcastCopy:
      kernels::broadcast_copy(im.bplans[static_cast<std::size_t>(s.plan)],
                              B[s.a], B[s.out]);
      break;
    case StepKind::kReduce:
      kernels::reduce_broadcast(im.rplans[static_cast<std::size_t>(s.plan)],
                                B[s.a], B[s.out]);
      break;
    case StepKind::kSumAll:
      B[s.out][0] = kernels::reduce_sum(B[s.a], s.p0);
      break;
    case StepKind::kSumAxis: {
      real* o = B[s.out];
      std::fill(o, o + im.slot_len[static_cast<std::size_t>(s.out)], real{0});
      kernels::sum_axis(B[s.a], o, s.p0, s.p1, s.p2);
      break;
    }
    case StepKind::kMatmul:
      kernels::matmul(B[s.a], B[s.b], s.c >= 0 ? B[s.c] : nullptr, B[s.out],
                      s.p0, s.p1, s.p2);
      break;
    case StepKind::kTranspose:
      kernels::transpose(B[s.a], B[s.out], s.p0, s.p1);
      break;
    case StepKind::kCopy:
      std::memcpy(B[s.out], B[s.a],
                  static_cast<std::size_t>(s.p0) * sizeof(real));
      break;
    case StepKind::kSlicePack: {
      const real* p = B[s.a];
      real* po = B[s.out];
      const int64_t len = s.p1, inner = s.p2, n_axis = s.p3, start = s.p4;
      kernels::parallel_for(s.p0, len * inner, [&](int64_t b0, int64_t e0) {
        for (int64_t o = b0; o < e0; ++o) {
          std::memcpy(po + o * len * inner, p + (o * n_axis + start) * inner,
                      static_cast<std::size_t>(len * inner) * sizeof(real));
        }
      });
      break;
    }
    case StepKind::kSliceScatter: {
      // The eager backward wrote its windows into a freshly zeroed
      // payload; with buffer reuse the zero background must be restored.
      const real* pg = B[s.a];
      real* pp = B[s.out];
      std::fill(pp, pp + im.slot_len[static_cast<std::size_t>(s.out)],
                real{0});
      const int64_t len = s.p1, inner = s.p2, n_axis = s.p3, start = s.p4;
      for (int64_t o = 0; o < s.p0; ++o) {
        std::memcpy(pp + (o * n_axis + start) * inner, pg + o * len * inner,
                    static_cast<std::size_t>(len * inner) * sizeof(real));
      }
      break;
    }
    case StepKind::kConcatPart: {
      const real* pp = B[s.a];
      real* po = B[s.out];
      const int64_t total = s.p1, offset = s.p2, len = s.p3, inner = s.p4;
      for (int64_t o = 0; o < s.p0; ++o) {
        std::memcpy(po + (o * total + offset) * inner, pp + o * len * inner,
                    static_cast<std::size_t>(len * inner) * sizeof(real));
      }
      break;
    }
    case StepKind::kConv1dFwd:
      kernels::conv1d_forward(B[s.a], B[s.b], s.c >= 0 ? B[s.c] : nullptr,
                              B[s.out], s.p0, s.p1, s.p2, s.p3, s.p4, s.p5);
      break;
    case StepKind::kConv1dGradIn: {
      real* o = B[s.out];
      std::fill(o, o + im.slot_len[static_cast<std::size_t>(s.out)], real{0});
      kernels::conv1d_grad_input(B[s.a], B[s.b], o, s.p0, s.p1, s.p2, s.p3,
                                 s.p4, s.p5);
      break;
    }
    case StepKind::kConv1dGradW: {
      real* o = B[s.out];
      std::fill(o, o + im.slot_len[static_cast<std::size_t>(s.out)], real{0});
      kernels::conv1d_grad_weight(B[s.a], B[s.b], o, s.p0, s.p1, s.p2, s.p3,
                                  s.p4, s.p5);
      break;
    }
    case StepKind::kConv1dGradB: {
      real* o = B[s.out];
      std::fill(o, o + im.slot_len[static_cast<std::size_t>(s.out)], real{0});
      kernels::conv1d_grad_bias(B[s.a], o, s.p0, s.p1, s.p2);
      break;
    }
  }
}

}  // namespace

Program::Program() : impl_(std::make_unique<Impl>()) {}
Program::~Program() = default;
Program::Program(Program&&) noexcept = default;
Program& Program::operator=(Program&&) noexcept = default;

void Program::capture(const std::function<void()>& fn) {
  if (prog::detail::g_recorder) {
    throw std::logic_error("Program::capture: nested capture on one thread");
  }
  reset();
  Impl& im = *impl_;
  const double t0 = now_ms();
  prog::detail::g_recorder = &im;
  try {
    fn();
  } catch (...) {
    prog::detail::g_recorder = nullptr;
    reset();
    throw;
  }
  prog::detail::g_recorder = nullptr;
  lower(im);
  im.capture_ms = now_ms() - t0;
  ++im.captures;
  im.ready = true;
}

bool Program::captured() const { return impl_->ready; }

void Program::replay() {
  Impl& im = *impl_;
  if (!im.ready) throw std::logic_error("Program::replay before capture");
  for (const Step& s : im.steps) execute(im, s);
  ++im.replays;
}

void Program::reset() { impl_->clear_plan(); }

Program::Stats Program::stats() const {
  const Impl& im = *impl_;
  Stats st;
  st.steps = im.steps.size();
  st.slots = im.slots.size();
  st.external_slots = im.external_slots;
  st.arena_bytes = im.arena_bytes;
  st.pinned_bytes = im.pinned_bytes;
  st.capture_ms = im.capture_ms;
  st.captures = im.captures;
  st.replays = im.replays;
  return st;
}

}  // namespace mf::ad
