#include "ad/program.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>

#if defined(__x86_64__) && defined(__GNUC__)
#define MF_PROG_AVX2 1
#include <immintrin.h>
#endif
#include <unordered_map>
#include <vector>

#include "ad/scalar_fns.hpp"

namespace mf::ad {

namespace {

enum class StepKind : std::uint8_t {
  kUnary,
  kBinary,
  kBinaryBcast,
  kBcastCopy,
  kReduce,
  kSumAll,
  kSumAxis,
  kMatmul,
  kTranspose,
  kCopy,
  kSlicePack,
  kSliceScatter,
  kConcatPart,
  kConv1dFwd,
  kConv1dGradIn,
  kConv1dGradW,
  kConv1dGradB,
  kFused,      // composed run of adjacent elementwise steps
  kAdamTick,   // advance the in-plan optimizer step counter
  kAdamParam,  // in-plan Adam update of one parameter tensor
  kLambParam,  // in-plan LAMB update (trust-ratio reduction + write)
  kCast,       // dtype boundary: fn 0 widens f32->f64, fn 1 narrows
  kStepKindCount_,  // sentinel: one past the last real kind
};

// Profile-tally band layout: [0, kStepKindCount) per step kind, then
// [kStepKindCount, kStepKindCount + kUnaryFnCount) splitting kUnary by
// fn. Sized from the enums so adding a kind or a unary fn grows the
// accumulators instead of silently aliasing a neighbouring band (the
// old fixed `32 + fn` split aliased unary slots as soon as a step kind
// reached 32).
constexpr int kStepKindCount = static_cast<int>(StepKind::kStepKindCount_);
constexpr int kUnaryFnCount = static_cast<int>(prog::Unary::kGelu) + 1;
constexpr int kProfBands = kStepKindCount + kUnaryFnCount;
static_assert(kStepKindCount == 22,
              "StepKind changed: audit the widening propagation switch, "
              "the wave-hazard analysis and the mixed-precision cast "
              "insertion before bumping this");
static_assert(static_cast<int>(prog::Unary::kGelu) ==
                  static_cast<int>(prog::Unary::kSign) + 1,
              "prog::Unary changed: keep kUnaryFnCount = last + 1");

/// One scalar operation of a fused elementwise chain. The chain value is
/// seeded from the fused step's `a` slot and threaded through the ops in
/// recorded order; binary ops read their non-chain operand from `other`.
struct FusedOp {
  enum Form : std::uint8_t {
    kUnaryForm,      // chain = unary(chain)
    kBinChainLeft,   // chain = binary(chain, other)
    kBinChainRight,  // chain = binary(other, chain)
    kBinChainBoth,   // chain = binary(chain, chain)
  };
  std::uint8_t fn = 0;  // prog::Unary or prog::Binary
  std::uint8_t form = kUnaryForm;
  std::int32_t other = -1;
  real scalar = 0;
};

/// One lowered kernel invocation. Operands are slot indices; `plan`
/// indexes the program's stored broadcast/reduce plans; p0..p5 carry the
/// kernel geometry exactly as the eager op passed it.
struct Step {
  StepKind kind;
  std::uint8_t fn = 0;  // prog::Unary or prog::Binary; kCast direction
  // Execution dtype, assigned at lowering: which width this step's
  // kernels run at. Always kF64 unless the program's compute dtype is
  // kF32, in which case compute steps go float while optimizer steps
  // stay double (kCast steps are untyped — fn encodes the direction).
  DType dt = DType::kF64;
  std::int32_t a = -1, b = -1, c = -1;
  std::int32_t out = -1;
  std::int32_t plan = -1;
  real scalar = 0;
  int64_t p0 = 0, p1 = 0, p2 = 0, p3 = 0, p4 = 0, p5 = 0;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<bool> g_prog_enabled{[] {
  const char* env = std::getenv("MF_DISABLE_PROGRAM");
  return !(env && env[0] == '1');
}()};

std::atomic<bool> g_fusion_enabled{[] {
  const char* env = std::getenv("MF_DISABLE_FUSION");
  return !(env && env[0] == '1');
}()};

std::atomic<bool> g_parallel_enabled{[] {
  const char* env = std::getenv("MF_DISABLE_PARALLEL_PLAN");
  return !(env && env[0] == '1');
}()};

std::atomic<int> g_plan_threads{[] {
  const char* env = std::getenv("MF_PLAN_THREADS");
  if (!env || !env[0]) return 1;
  const int n = std::atoi(env);
  return n > 0 ? n : 1;
}()};

std::atomic<bool> g_widening_enabled{[] {
  const char* env = std::getenv("MF_DISABLE_WIDENING");
  return !(env && env[0] == '1');
}()};

// Opt-in: the sentinel scan costs one pass over external outputs per
// replay, so it defaults off and serving/chaos runs turn it on.
std::atomic<bool> g_health_enabled{[] {
  const char* env = std::getenv("MF_HEALTH_CHECKS");
  return env && env[0] == '1';
}()};

std::atomic<std::uint64_t> g_health_checks{0};
std::atomic<std::uint64_t> g_health_trips{0};
std::atomic<std::uint64_t> g_health_plan_fallbacks{0};
std::atomic<std::uint64_t> g_health_eager_fallbacks{0};

// Divergence bound: values past this are treated as numerically dead
// even while still finite (an exploding iteration detected before it
// reaches Inf).
constexpr double kHealthDivergenceBound = 1e100;

}  // namespace

bool program_enabled() { return g_prog_enabled.load(std::memory_order_relaxed); }

bool program_set_enabled(bool on) {
  return g_prog_enabled.exchange(on, std::memory_order_relaxed);
}

bool program_fusion_enabled() {
  return g_fusion_enabled.load(std::memory_order_relaxed);
}

bool program_fusion_set_enabled(bool on) {
  return g_fusion_enabled.exchange(on, std::memory_order_relaxed);
}

bool program_parallel_enabled() {
  return g_parallel_enabled.load(std::memory_order_relaxed);
}

bool program_parallel_set_enabled(bool on) {
  return g_parallel_enabled.exchange(on, std::memory_order_relaxed);
}

int program_plan_threads() {
  return g_plan_threads.load(std::memory_order_relaxed);
}

int program_set_plan_threads(int n) {
  return g_plan_threads.exchange(n > 0 ? n : 1, std::memory_order_relaxed);
}

bool program_widening_enabled() {
  return g_widening_enabled.load(std::memory_order_relaxed);
}

bool program_widening_set_enabled(bool on) {
  return g_widening_enabled.exchange(on, std::memory_order_relaxed);
}

bool health_checks_enabled() {
  return g_health_enabled.load(std::memory_order_relaxed);
}

bool health_checks_set_enabled(bool on) {
  return g_health_enabled.exchange(on, std::memory_order_relaxed);
}

HealthStats health_stats() {
  HealthStats h;
  h.checks = g_health_checks.load(std::memory_order_relaxed);
  h.trips = g_health_trips.load(std::memory_order_relaxed);
  h.plan_fallbacks = g_health_plan_fallbacks.load(std::memory_order_relaxed);
  h.eager_fallbacks = g_health_eager_fallbacks.load(std::memory_order_relaxed);
  return h;
}

void health_stats_reset() {
  g_health_checks.store(0, std::memory_order_relaxed);
  g_health_trips.store(0, std::memory_order_relaxed);
  g_health_plan_fallbacks.store(0, std::memory_order_relaxed);
  g_health_eager_fallbacks.store(0, std::memory_order_relaxed);
}

void health_note_fallback(bool to_eager) {
  auto& counter = to_eager ? g_health_eager_fallbacks : g_health_plan_fallbacks;
  counter.fetch_add(1, std::memory_order_relaxed);
}

struct Program::Impl {
  std::vector<Step> steps;
  // One entry per slot. After lowering, entries for internal
  // (liveness-packed) slots are null; external entries pin the payloads
  // the program must keep addressable (leaves are read live through them).
  std::vector<std::shared_ptr<TensorImpl>> slots;
  std::vector<int64_t> slot_len;
  // Shape of each slot's tensor at record time; drives the widening
  // analysis (which dimension is the batch, how broadcast plans rebuild).
  std::vector<Shape> slot_shape;
  // Storage dtype of each slot's buffer. External slots are always kF64
  // (their payloads are live f64 tensors); internal slots take the
  // program's compute dtype. Sized/filled at lowering.
  std::vector<DType> slot_dt;
  std::vector<void*> buf;
  std::vector<kernels::BroadcastPlan> bplans;
  std::vector<kernels::ReducePlan> rplans;
  // Fused elementwise chains; Step::plan of a kFused step indexes this.
  std::vector<std::vector<FusedOp>> fchains;
  // In-plan optimizer steps. Raw pointers into the optimizer's live state
  // (moments, lr, step counter) — the optimizer must outlive the plan.
  struct AdamParamExec {
    prog::AdamPlanState* state;
    double* m;
    double* v;
    int64_t n;
  };
  struct LambParamExec {
    prog::AdamPlanState* state;
    double* m;
    double* v;
    int64_t n;
    std::vector<double> dir;  // per-exec scratch for the Adam direction
  };
  std::vector<AdamParamExec> adam_params;
  std::vector<LambParamExec> lamb_params;
  std::vector<prog::AdamPlanState*> adam_ticks;
  // Internal storage: byte buffers reused across slots whose live ranges
  // do not overlap (byte-addressed so f32 and f64 slots pack together).
  std::vector<std::vector<std::byte>> arena;

  // Dependency-DAG execution waves over `steps` (computed once at
  // lowering): waves[w] lists step indices whose operand buffers have no
  // read/write hazard against each other; all hazards point at earlier
  // waves. Executing wave-by-wave (steps of one wave in any order or in
  // parallel) is equivalent to the recorded serial order.
  std::vector<std::vector<std::int32_t>> waves;

  // Health sentinel: the external slots any step writes (computed at
  // lowering); the opt-in post-replay scan walks exactly these.
  std::vector<std::int32_t> health_slots;
  bool last_healthy = true;
  std::uint64_t health_checks = 0, health_trips = 0;

  // Capture-time state.
  std::unordered_map<const TensorImpl*, std::int32_t> slot_of;
  // Set by prog::on_uncapturable(): the capture body ran something that
  // cannot be represented in a plan; capture() discards the plan.
  bool poisoned = false;

  // ---- widening state (set by widen()) ----
  struct WideContext {
    int64_t factor = 1;
    std::vector<Step> steps;
    std::vector<kernels::BroadcastPlan> bplans;
    std::vector<int64_t> slot_len;
    std::vector<void*> buf;
    std::vector<std::vector<std::byte>> store;  // per-slot wide buffers
  };
  bool wide_ready = false;
  int64_t base_b = 0;
  std::vector<char> slot_scaled;  // batch-carrying slots (post-analysis)
  std::unordered_map<const TensorImpl*, std::int32_t> declared_slots;
  std::vector<std::unique_ptr<WideContext>> wide_ctxs;
  int64_t max_widen_batch = 0;
  std::uint64_t widened_replays = 0;

  bool ready = false;
  // Compute dtype for the next capture. Deliberately NOT reset by
  // clear_plan(): capture() starts with reset(), and the policy must
  // survive it so set_compute_dtype-then-capture works.
  DType policy_dt = DType::kF64;
  double capture_ms = 0;
  std::uint64_t captures = 0, replays = 0;
  std::size_t external_slots = 0, arena_bytes = 0, pinned_bytes = 0;
  std::size_t fused_steps = 0, fused_ops = 0, cast_steps = 0;

  void clear_plan() {
    steps.clear();
    slots.clear();
    slot_len.clear();
    slot_shape.clear();
    slot_dt.clear();
    buf.clear();
    bplans.clear();
    rplans.clear();
    fchains.clear();
    adam_params.clear();
    lamb_params.clear();
    adam_ticks.clear();
    arena.clear();
    waves.clear();
    health_slots.clear();
    last_healthy = true;
    slot_of.clear();
    poisoned = false;
    wide_ready = false;
    base_b = 0;
    slot_scaled.clear();
    declared_slots.clear();
    wide_ctxs.clear();
    max_widen_batch = 0;
    ready = false;
    external_slots = arena_bytes = pinned_bytes = 0;
    fused_steps = fused_ops = cast_steps = 0;
  }
};

namespace prog {
namespace detail {
thread_local Program::Impl* g_recorder = nullptr;
}  // namespace detail

namespace {

std::int32_t intern(Program::Impl& im, const Tensor& t) {
  const TensorImpl* key = t.impl_ptr();
  auto [it, fresh] = im.slot_of.try_emplace(
      key, static_cast<std::int32_t>(im.slots.size()));
  if (fresh) {
    im.slots.push_back(t.impl());
    im.slot_shape.push_back(t.shape());
  }
  return it->second;
}

Program::Impl* rec() { return detail::g_recorder; }

}  // namespace

void on_unary(Unary fn, real scalar, const Tensor& a, const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kUnary;
  s.fn = static_cast<std::uint8_t>(fn);
  s.scalar = scalar;
  s.a = intern(*im, a);
  s.out = intern(*im, out);
  s.p0 = out.numel();
  im->steps.push_back(s);
}

void on_binary(Binary fn, const Tensor& a, const Tensor& b, const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kBinary;
  s.fn = static_cast<std::uint8_t>(fn);
  s.a = intern(*im, a);
  s.b = intern(*im, b);
  s.out = intern(*im, out);
  s.p0 = out.numel();
  im->steps.push_back(s);
}

void on_binary_bcast(Binary fn, const kernels::BroadcastPlan& plan,
                     const Tensor& a, const Tensor& b, const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kBinaryBcast;
  s.fn = static_cast<std::uint8_t>(fn);
  s.a = intern(*im, a);
  s.b = intern(*im, b);
  s.out = intern(*im, out);
  s.plan = static_cast<std::int32_t>(im->bplans.size());
  im->bplans.push_back(plan);
  im->steps.push_back(s);
}

void on_broadcast_copy(const kernels::BroadcastPlan& plan, const Tensor& a,
                       const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kBcastCopy;
  s.a = intern(*im, a);
  s.out = intern(*im, out);
  s.plan = static_cast<std::int32_t>(im->bplans.size());
  im->bplans.push_back(plan);
  im->steps.push_back(s);
}

void on_reduce(const kernels::ReducePlan& plan, const Tensor& a,
               const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kReduce;
  s.a = intern(*im, a);
  s.out = intern(*im, out);
  s.plan = static_cast<std::int32_t>(im->rplans.size());
  im->rplans.push_back(plan);
  im->steps.push_back(s);
}

void on_sum_all(const Tensor& a, const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kSumAll;
  s.a = intern(*im, a);
  s.out = intern(*im, out);
  s.p0 = a.numel();
  im->steps.push_back(s);
}

void on_sum_axis(const Tensor& a, const Tensor& out, int64_t outer,
                 int64_t n_axis, int64_t inner) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kSumAxis;
  s.a = intern(*im, a);
  s.out = intern(*im, out);
  s.p0 = outer;
  s.p1 = n_axis;
  s.p2 = inner;
  im->steps.push_back(s);
}

void on_matmul(const Tensor& a, const Tensor& b, const Tensor* bias,
               const Tensor& out, int64_t m, int64_t k, int64_t n) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kMatmul;
  s.a = intern(*im, a);
  s.b = intern(*im, b);
  s.c = (bias && bias->defined()) ? intern(*im, *bias) : -1;
  s.out = intern(*im, out);
  s.p0 = m;
  s.p1 = k;
  s.p2 = n;
  im->steps.push_back(s);
}

void on_transpose(const Tensor& a, const Tensor& out, int64_t m, int64_t n) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kTranspose;
  s.a = intern(*im, a);
  s.out = intern(*im, out);
  s.p0 = m;
  s.p1 = n;
  im->steps.push_back(s);
}

void on_copy(const Tensor& src, const Tensor& out) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kCopy;
  s.a = intern(*im, src);
  s.out = intern(*im, out);
  s.p0 = out.numel();
  im->steps.push_back(s);
}

void on_slice_pack(const Tensor& in, const Tensor& out, int64_t outer,
                   int64_t len, int64_t inner, int64_t n_axis, int64_t start) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kSlicePack;
  s.a = intern(*im, in);
  s.out = intern(*im, out);
  s.p0 = outer;
  s.p1 = len;
  s.p2 = inner;
  s.p3 = n_axis;
  s.p4 = start;
  im->steps.push_back(s);
}

void on_slice_scatter(const Tensor& g, const Tensor& out, int64_t outer,
                      int64_t len, int64_t inner, int64_t n_axis,
                      int64_t start) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kSliceScatter;
  s.a = intern(*im, g);
  s.out = intern(*im, out);
  s.p0 = outer;
  s.p1 = len;
  s.p2 = inner;
  s.p3 = n_axis;
  s.p4 = start;
  im->steps.push_back(s);
}

void on_concat_part(const Tensor& part, const Tensor& out, int64_t outer,
                    int64_t total, int64_t offset, int64_t len, int64_t inner) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kConcatPart;
  s.a = intern(*im, part);
  s.out = intern(*im, out);
  s.p0 = outer;
  s.p1 = total;
  s.p2 = offset;
  s.p3 = len;
  s.p4 = inner;
  im->steps.push_back(s);
}

namespace {
void conv_common(Step& s, StepKind kind, const Tensor& a, const Tensor& b,
                 const Tensor* c, const Tensor& out, int64_t B, int64_t Cin,
                 int64_t L, int64_t Cout, int64_t K, int64_t padding) {
  Program::Impl& im = *rec();
  s.kind = kind;
  s.a = intern(im, a);
  s.b = intern(im, b);
  s.c = (c && c->defined()) ? intern(im, *c) : -1;
  s.out = intern(im, out);
  s.p0 = B;
  s.p1 = Cin;
  s.p2 = L;
  s.p3 = Cout;
  s.p4 = K;
  s.p5 = padding;
  im.steps.push_back(s);
}
}  // namespace

void on_conv1d_forward(const Tensor& in, const Tensor& w, const Tensor* bias,
                       const Tensor& out, int64_t B, int64_t Cin, int64_t L,
                       int64_t Cout, int64_t K, int64_t padding) {
  if (!rec()) return;
  Step s;
  conv_common(s, StepKind::kConv1dFwd, in, w, bias, out, B, Cin, L, Cout, K,
              padding);
}

void on_conv1d_grad_input(const Tensor& gout, const Tensor& w,
                          const Tensor& out, int64_t B, int64_t Cin, int64_t L,
                          int64_t Cout, int64_t K, int64_t padding) {
  if (!rec()) return;
  Step s;
  conv_common(s, StepKind::kConv1dGradIn, gout, w, nullptr, out, B, Cin, L,
              Cout, K, padding);
}

void on_conv1d_grad_weight(const Tensor& gout, const Tensor& in,
                           const Tensor& out, int64_t B, int64_t Cin,
                           int64_t L, int64_t Cout, int64_t K,
                           int64_t padding) {
  if (!rec()) return;
  Step s;
  conv_common(s, StepKind::kConv1dGradW, gout, in, nullptr, out, B, Cin, L,
              Cout, K, padding);
}

void on_conv1d_grad_bias(const Tensor& gout, const Tensor& out, int64_t B,
                         int64_t Cout, int64_t Lout) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kConv1dGradB;
  s.a = intern(*im, gout);
  s.out = intern(*im, out);
  s.p0 = B;
  s.p1 = Cout;
  s.p2 = Lout;
  im->steps.push_back(s);
}

void on_adam_tick(AdamPlanState* st) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kAdamTick;
  s.plan = static_cast<std::int32_t>(im->adam_ticks.size());
  im->adam_ticks.push_back(st);
  im->steps.push_back(s);
}

void on_adam_param(AdamPlanState* st, const Tensor& param, const Tensor& grad,
                   double* m, double* v) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kAdamParam;
  s.a = intern(*im, grad);
  s.out = intern(*im, param);
  s.plan = static_cast<std::int32_t>(im->adam_params.size());
  im->adam_params.push_back({st, m, v, param.numel()});
  im->steps.push_back(s);
}

void on_lamb_param(AdamPlanState* st, const Tensor& param, const Tensor& grad,
                   double* m, double* v) {
  Program::Impl* im = rec();
  if (!im) return;
  Step s;
  s.kind = StepKind::kLambParam;
  s.a = intern(*im, grad);
  s.out = intern(*im, param);
  s.plan = static_cast<std::int32_t>(im->lamb_params.size());
  im->lamb_params.push_back({st, m, v, param.numel(), {}});
  im->steps.push_back(s);
}

void on_uncapturable() {
  Program::Impl* im = rec();
  if (im) im->poisoned = true;
}

}  // namespace prog

namespace {

/// Per-slot live ranges over a step list. def = first write, first/last =
/// first/last access of any kind. Fused steps read their chain source,
/// every `other` operand of their ops, and write their output; the folded
/// intermediates are not referenced at all. An in-plan optimizer param
/// step both reads and writes the parameter slot.
struct Ranges {
  std::vector<std::int32_t> def, first, last;
};

void compute_ranges(const Program::Impl& im, Ranges& r) {
  const std::size_t S = im.slots.size();
  r.def.assign(S, -1);
  r.first.assign(S, -1);
  r.last.assign(S, -1);
  auto touch = [&](std::int32_t slot, std::int32_t i, bool write) {
    if (slot < 0) return;
    if (r.first[slot] < 0) r.first[slot] = i;
    r.last[slot] = i;
    if (write && r.def[slot] < 0) r.def[slot] = i;
  };
  for (std::size_t i = 0; i < im.steps.size(); ++i) {
    const Step& st = im.steps[i];
    const auto si = static_cast<std::int32_t>(i);
    touch(st.a, si, false);
    touch(st.b, si, false);
    touch(st.c, si, false);
    if (st.kind == StepKind::kFused) {
      for (const FusedOp& op : im.fchains[static_cast<std::size_t>(st.plan)]) {
        touch(op.other, si, false);
      }
    }
    if (st.kind == StepKind::kAdamParam || st.kind == StepKind::kLambParam) {
      touch(st.out, si, false);  // optimizer updates read the parameter too
    }
    touch(st.out, si, true);
  }
}

/// Collapse runs of adjacent elementwise steps (contiguous unary/binary
/// maps and full-buffer copies) whose output chains straight into the next
/// step — and is read by nothing else, now or later — into single kFused
/// steps. Per element the composed chain evaluates the identical scalar
/// functors in the identical order the individual steps did, so fused
/// replay is bitwise-identical; the skipped intermediates simply never
/// materialize.
void fuse_elementwise(Program::Impl& im, const Ranges& r,
                      const std::vector<char>& internal) {
  const std::size_t n = im.steps.size();
  std::vector<Step> out_steps;
  out_steps.reserve(n);
  auto is_elementwise = [](const Step& s) {
    return s.kind == StepKind::kUnary || s.kind == StepKind::kBinary ||
           s.kind == StepKind::kCopy;
  };
  // Append step k's scalar op to `ops`, with `chain` as the slot holding
  // the current chain value (the previous step's output; for the chain
  // head, its own `a` operand).
  auto push_op = [&](std::vector<FusedOp>& ops, const Step& s,
                     std::int32_t chain) {
    FusedOp op;
    op.fn = s.fn;
    op.scalar = s.scalar;
    if (s.kind == StepKind::kCopy) return;  // identity on the chain value
    if (s.kind == StepKind::kUnary) {
      op.form = FusedOp::kUnaryForm;
    } else if (s.a == chain && s.b == chain) {
      op.form = FusedOp::kBinChainBoth;
    } else if (s.a == chain) {
      op.form = FusedOp::kBinChainLeft;
      op.other = s.b;
    } else {
      op.form = FusedOp::kBinChainRight;
      op.other = s.a;
    }
    ops.push_back(op);
  };
  std::size_t i = 0;
  while (i < n) {
    const Step& head = im.steps[i];
    if (!is_elementwise(head)) {
      out_steps.push_back(head);
      ++i;
      continue;
    }
    // Greedily extend: the next step must be an elementwise map of the
    // same length consuming this step's output, and that output must be
    // invisible to everything else (internal slot, no later reader).
    std::size_t j = i;
    while (j + 1 < n) {
      const Step& cur = im.steps[j];
      const Step& nxt = im.steps[j + 1];
      const std::int32_t o = cur.out;
      if (!is_elementwise(nxt) || nxt.p0 != head.p0) break;
      if (nxt.dt != head.dt) break;  // one execution dtype per chain
      const bool consumes =
          nxt.a == o || (nxt.kind == StepKind::kBinary && nxt.b == o);
      if (!consumes) break;
      if (!internal[static_cast<std::size_t>(o)]) break;
      if (r.last[static_cast<std::size_t>(o)] !=
          static_cast<std::int32_t>(j + 1)) {
        break;  // a later (non-fused) step still reads it
      }
      ++j;
    }
    if (j == i) {
      out_steps.push_back(head);
      ++i;
      continue;
    }
    std::vector<FusedOp> ops;
    ops.reserve(j - i + 1);
    push_op(ops, head, head.a);
    for (std::size_t k = i + 1; k <= j; ++k) {
      push_op(ops, im.steps[k], im.steps[k - 1].out);
    }
    Step f;
    f.kind = StepKind::kFused;
    f.dt = head.dt;
    f.a = head.a;
    f.out = im.steps[j].out;
    f.plan = static_cast<std::int32_t>(im.fchains.size());
    f.p0 = head.p0;
    im.fchains.push_back(std::move(ops));
    out_steps.push_back(f);
    ++im.fused_steps;
    im.fused_ops += j - i + 1;
    i = j + 1;
  }
  im.steps = std::move(out_steps);
}

/// Mixed-precision lowering pass (compute dtype kF32 only). Every step
/// gets an execution dtype — compute steps float, in-plan optimizer steps
/// double (the double master weights / double moments of the autocast
/// pattern), copy-like steps the dtype of their output buffer (a full- or
/// partial-copy must write its destination's width directly: running a
/// kConcatPart through an out-shadow would clobber sibling parts, and an
/// f64->f64 copy must not round through f32), reductions the dtype of
/// their input (their kernels accumulate in double at either width).
/// Operand width mismatches are bridged by shadow slots: an internal
/// twin of the slot at the other width plus an explicit kCast step.
/// Shadows are reused while provably up to date in plan order —
/// narrow(widen(x)) == x exactly, so a write that went f32-shadow ->
/// f64-slot leaves the shadow valid, while a narrowing write-back
/// invalidates it. The pass runs before fusion (chains then require one
/// dtype) and before packing (shadows are ordinary internal slots).
void insert_casts(Program::Impl& im, std::vector<char>& internal) {
  const std::size_t S0 = im.slots.size();
  std::vector<std::int32_t> shadow_of(S0, -1);
  std::vector<char> shadow_valid(S0, 0);
  std::vector<Step> out_steps;
  out_steps.reserve(im.steps.size() + S0);

  auto get_shadow = [&](std::int32_t slot) -> std::int32_t {
    const auto u = static_cast<std::size_t>(slot);
    if (shadow_of[u] < 0) {
      shadow_of[u] = static_cast<std::int32_t>(im.slots.size());
      im.slots.emplace_back(nullptr);
      im.slot_shape.push_back(im.slot_shape[u]);
      im.slot_len.push_back(im.slot_len[u]);
      im.slot_dt.push_back(im.slot_dt[u] == DType::kF32 ? DType::kF64
                                                        : DType::kF32);
      internal.push_back(1);
    }
    return shadow_of[u];
  };

  auto push_cast = [&](std::int32_t src, std::int32_t dst) {
    Step c;
    c.kind = StepKind::kCast;
    c.fn = im.slot_dt[static_cast<std::size_t>(dst)] == DType::kF32 ? 1 : 0;
    c.a = src;
    c.out = dst;
    c.p0 = im.slot_len[static_cast<std::size_t>(dst)];
    out_steps.push_back(c);
    ++im.cast_steps;
  };

  // Slot to read `slot`'s value at width `want` from, materializing (or
  // reusing) the shadow behind a kCast when the widths differ.
  auto read_as = [&](std::int32_t slot, DType want) -> std::int32_t {
    if (slot < 0) return slot;
    const auto u = static_cast<std::size_t>(slot);
    if (im.slot_dt[u] == want) return slot;
    const std::int32_t sh = get_shadow(slot);
    if (!shadow_valid[u]) {
      push_cast(slot, sh);
      shadow_valid[u] = 1;
    }
    return sh;
  };

  for (Step s : im.steps) {
    switch (s.kind) {
      case StepKind::kAdamTick:
      case StepKind::kAdamParam:
      case StepKind::kLambParam:
        s.dt = DType::kF64;
        break;
      case StepKind::kCopy:
      case StepKind::kSlicePack:
      case StepKind::kSliceScatter:
      case StepKind::kConcatPart:
      case StepKind::kTranspose:
      case StepKind::kBcastCopy:
        s.dt = im.slot_dt[static_cast<std::size_t>(s.out)];
        break;
      case StepKind::kReduce:
      case StepKind::kSumAll:
      case StepKind::kSumAxis:
        s.dt = im.slot_dt[static_cast<std::size_t>(s.a)];
        break;
      default:
        s.dt = DType::kF32;  // compute steps run at the policy dtype
        break;
    }
    s.a = read_as(s.a, s.dt);
    s.b = read_as(s.b, s.dt);
    s.c = read_as(s.c, s.dt);
    const std::int32_t orig = s.out;
    const bool redirect =
        orig >= 0 && im.slot_dt[static_cast<std::size_t>(orig)] != s.dt;
    if (redirect) s.out = get_shadow(orig);
    out_steps.push_back(s);
    if (redirect) {
      push_cast(s.out, orig);
      // The shadow stays valid only when the write-back widened (the
      // narrow image round-trips exactly); a narrowing write-back leaves
      // the shadow holding more precision than the slot.
      shadow_valid[static_cast<std::size_t>(orig)] =
          im.slot_dt[static_cast<std::size_t>(orig)] == DType::kF64;
    } else if (orig >= 0 && static_cast<std::size_t>(orig) < S0) {
      shadow_valid[static_cast<std::size_t>(orig)] = 0;  // shadow is stale
    }
  }
  im.steps = std::move(out_steps);
}

/// Derive the dependency DAG over the lowered steps and partition it
/// into execution waves. Hazards are tracked on the *resolved buffer
/// pointers* (im.buf), not slot indices: liveness packing makes two
/// disjoint-lifetime slots share one arena buffer, and that reuse is a
/// real WAR/WAW hazard the slot graph would miss. In-plan optimizer
/// steps add one pseudo-resource per AdamPlanState (the tick writes the
/// bias corrections the parameter steps read). A step lands in the
/// earliest wave that respects every RAW/WAR/WAW edge, so executing
/// waves in order — steps within a wave in any order, or concurrently —
/// reads and writes every buffer in a serializable order equivalent to
/// the recorded one.
void compute_waves(Program::Impl& im) {
  im.waves.clear();
  const std::size_t n = im.steps.size();
  std::unordered_map<const void*, std::int32_t> writer_wave, reader_wave;
  std::vector<std::int32_t> wave_of(n, 0);
  std::int32_t max_wave = -1;
  auto buf_of = [&](std::int32_t slot) -> const void* {
    return slot >= 0 ? static_cast<const void*>(
                           im.buf[static_cast<std::size_t>(slot)])
                     : nullptr;
  };
  std::vector<const void*> reads, writes;
  for (std::size_t i = 0; i < n; ++i) {
    const Step& s = im.steps[i];
    reads.clear();
    writes.clear();
    reads.push_back(buf_of(s.a));
    reads.push_back(buf_of(s.b));
    reads.push_back(buf_of(s.c));
    if (s.kind == StepKind::kFused) {
      for (const FusedOp& op : im.fchains[static_cast<std::size_t>(s.plan)]) {
        reads.push_back(buf_of(op.other));
      }
    }
    if (s.kind == StepKind::kAdamTick) {
      writes.push_back(im.adam_ticks[static_cast<std::size_t>(s.plan)]);
    } else if (s.kind == StepKind::kAdamParam) {
      reads.push_back(im.adam_params[static_cast<std::size_t>(s.plan)].state);
      writes.push_back(buf_of(s.out));
    } else if (s.kind == StepKind::kLambParam) {
      reads.push_back(im.lamb_params[static_cast<std::size_t>(s.plan)].state);
      writes.push_back(buf_of(s.out));
    } else {
      writes.push_back(buf_of(s.out));
    }
    std::int32_t w = 0;
    for (const void* r : reads) {
      if (!r) continue;
      auto it = writer_wave.find(r);
      if (it != writer_wave.end()) w = std::max(w, it->second + 1);
    }
    for (const void* o : writes) {
      if (!o) continue;
      auto it = writer_wave.find(o);
      if (it != writer_wave.end()) w = std::max(w, it->second + 1);
      it = reader_wave.find(o);
      if (it != reader_wave.end()) w = std::max(w, it->second + 1);
    }
    wave_of[i] = w;
    max_wave = std::max(max_wave, w);
    for (const void* r : reads) {
      if (!r) continue;
      auto [it, fresh] = reader_wave.try_emplace(r, w);
      if (!fresh) it->second = std::max(it->second, w);
    }
    for (const void* o : writes) {
      if (o) writer_wave[o] = w;
    }
  }
  im.waves.assign(static_cast<std::size_t>(max_wave + 1), {});
  for (std::size_t i = 0; i < n; ++i) {
    im.waves[static_cast<std::size_t>(wave_of[i])].push_back(
        static_cast<std::int32_t>(i));
  }
}

/// Lower the raw trace: release the recorded autodiff graph, fuse
/// adjacent elementwise chains, compute slot live ranges, pack internal
/// slots onto reused arena buffers, resolve every operand to a raw
/// pointer.
void lower(Program::Impl& im) {
  const std::size_t S0 = im.slots.size();
  im.slot_of.clear();
  im.slot_len.resize(S0);
  for (std::size_t s = 0; s < S0; ++s) {
    im.slot_len[s] = static_cast<int64_t>(im.slots[s]->data.size());
  }
  // Release the graph first: tape nodes hold input Tensors, so slot use
  // counts are only meaningful once every node is gone (this is also what
  // lets the tape arena rewind — the program owns buffers, not history).
  for (auto& sp : im.slots) sp->grad_fn.reset();

  Ranges r;
  compute_ranges(im, r);

  // A slot is internal — its buffer reusable — iff nothing outside the
  // program references its TensorImpl (we hold the only count) and a step
  // fully defines it before any use. Everything else stays pinned:
  // leaves, parameters, `.grad` buffers still bound to parameters, kept
  // loss tensors, constants materialized at capture time.
  std::vector<char> internal(S0, 0);
  for (std::size_t s = 0; s < S0; ++s) {
    internal[s] = im.slots[s].use_count() == 1 && r.def[s] >= 0 &&
                  r.def[s] == r.first[s];
  }

  // Dtype coloring: externals are live f64 payloads; internals take the
  // program's compute dtype. Under the f64 default the cast pass is
  // skipped entirely and the lowered plan is identical to before.
  im.slot_dt.assign(S0, DType::kF64);
  if (im.policy_dt == DType::kF32) {
    for (std::size_t s = 0; s < S0; ++s) {
      if (internal[s]) im.slot_dt[s] = DType::kF32;
    }
    insert_casts(im, internal);  // appends shadow slots + kCast steps
    compute_ranges(im, r);
  }
  const std::size_t S = im.slots.size();

  if (program_fusion_enabled()) {
    fuse_elementwise(im, r, internal);
    // Fusion rewrote the step list; intermediates folded into chains now
    // have no accesses at all and drop out of the packing below.
    compute_ranges(im, r);
  }

  // Exact-byte-size reuse of internal buffers across disjoint live
  // ranges (byte-keyed so an f32 slot can inherit a same-footprint f64
  // buffer and vice versa).
  auto slot_bytes = [&](std::size_t s) -> int64_t {
    return im.slot_len[s] *
           static_cast<int64_t>(dtype_size(im.slot_dt[s]));
  };
  std::vector<std::vector<std::int32_t>> released(im.steps.size());
  for (std::size_t s = 0; s < S; ++s) {
    if (internal[s] && r.last[s] >= 0) {
      released[static_cast<std::size_t>(r.last[s])].push_back(
          static_cast<std::int32_t>(s));
    }
  }
  std::unordered_map<int64_t, std::vector<std::int32_t>> free_by_len;
  std::vector<std::int32_t> arena_of(S, -1);
  for (std::size_t i = 0; i < im.steps.size(); ++i) {
    const std::int32_t o = im.steps[i].out;
    if (o >= 0 && internal[static_cast<std::size_t>(o)] &&
        r.def[static_cast<std::size_t>(o)] == static_cast<std::int32_t>(i)) {
      auto& fl = free_by_len[slot_bytes(static_cast<std::size_t>(o))];
      if (!fl.empty()) {
        arena_of[static_cast<std::size_t>(o)] = fl.back();
        fl.pop_back();
      } else {
        arena_of[static_cast<std::size_t>(o)] =
            static_cast<std::int32_t>(im.arena.size());
        im.arena.emplace_back(
            static_cast<std::size_t>(slot_bytes(static_cast<std::size_t>(o))));
      }
    }
    for (std::int32_t s : released[i]) {
      free_by_len[slot_bytes(static_cast<std::size_t>(s))].push_back(
          arena_of[static_cast<std::size_t>(s)]);
    }
  }

  im.buf.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    if (internal[s] && r.first[s] < 0) {
      // Fused away entirely: no step reads or writes it anymore.
      im.buf[s] = nullptr;
      if (s < S0) im.slots[s].reset();
    } else if (internal[s]) {
      im.buf[s] = im.arena[static_cast<std::size_t>(arena_of[s])].data();
      if (s < S0) im.slots[s].reset();  // payload returns to the pool
    } else {
      im.buf[s] = im.slots[s]->data.raw();
      ++im.external_slots;
      im.pinned_bytes += im.slots[s]->data.size_bytes();
    }
  }
  for (const auto& a : im.arena) im.arena_bytes += a.size();

  // Health sentinel slot list: every external slot some step writes
  // (losses, predictions, `.grad` buffers, optimizer-updated parameters).
  // Internal slots are skipped — they are scratch whose final contents
  // are whatever the last aliasing writer left.
  {
    std::vector<char> listed(S, 0);
    for (const Step& s : im.steps) {
      if (s.kind == StepKind::kAdamTick) continue;  // writes state only
      const std::int32_t o = s.out;
      if (o < 0 || internal[static_cast<std::size_t>(o)] ||
          listed[static_cast<std::size_t>(o)]) {
        continue;
      }
      listed[static_cast<std::size_t>(o)] = 1;
      im.health_slots.push_back(o);
    }
  }

  compute_waves(im);
}

/// Invoke `g` with the sfn:: functor named by a prog::Unary opcode. One
/// switch shared by the standalone unary step and the fused chains, so
/// both replay the exact functors the eager op executed.
template <typename G>
void dispatch_unary(prog::Unary u, real scalar, G&& g) {
  switch (u) {
    case prog::Unary::kAddScalar: g(sfn::AddScalar{scalar}); break;
    case prog::Unary::kMulScalar: g(sfn::MulScalar{scalar}); break;
    case prog::Unary::kPowScalar: g(sfn::PowScalar{scalar}); break;
    case prog::Unary::kNeg: g(sfn::Neg{}); break;
    case prog::Unary::kExp: g(sfn::Exp{}); break;
    case prog::Unary::kLog: g(sfn::Log{}); break;
    case prog::Unary::kSqrt: g(sfn::Sqrt{}); break;
    case prog::Unary::kTanh: g(sfn::Tanh{}); break;
    case prog::Unary::kAbs: g(sfn::Abs{}); break;
    case prog::Unary::kSign: g(sfn::Sign{}); break;
    case prog::Unary::kGelu: g(sfn::Gelu{}); break;
  }
}

template <typename G>
void dispatch_binary(prog::Binary b, G&& g) {
  switch (b) {
    case prog::Binary::kAdd: g(sfn::Add{}); break;
    case prog::Binary::kSub: g(sfn::Sub{}); break;
    case prog::Binary::kMul: g(sfn::Mul{}); break;
    case prog::Binary::kDiv: g(sfn::Div{}); break;
  }
}

#ifdef MF_PROG_AVX2
bool prog_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

/// AVX2 body for the bitwise-exact subset of fused unary ops (IEEE-exact
/// per lane: add/mul with a scalar, sign-bit flip, sign-bit clear, IEEE
/// sqrt). Returns false for transcendental ops — the caller falls back to
/// the scalar functor loop. Loops are written out (no lambdas): lambda
/// bodies do not inherit the enclosing function's target("avx2").
__attribute__((target("avx2"))) bool fused_unary_avx2(real* acc, int64_t len,
                                                      prog::Unary u,
                                                      real scalar) {
  int64_t i = 0;
  switch (u) {
    case prog::Unary::kAddScalar: {
      const __m256d s = _mm256_set1_pd(scalar);
      for (; i + 4 <= len; i += 4)
        _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), s));
      for (; i < len; ++i) acc[i] = sfn::AddScalar{scalar}(acc[i]);
      return true;
    }
    case prog::Unary::kMulScalar: {
      const __m256d s = _mm256_set1_pd(scalar);
      for (; i + 4 <= len; i += 4)
        _mm256_storeu_pd(acc + i, _mm256_mul_pd(_mm256_loadu_pd(acc + i), s));
      for (; i < len; ++i) acc[i] = sfn::MulScalar{scalar}(acc[i]);
      return true;
    }
    case prog::Unary::kNeg: {
      const __m256d m = _mm256_set1_pd(-0.0);
      for (; i + 4 <= len; i += 4)
        _mm256_storeu_pd(acc + i, _mm256_xor_pd(_mm256_loadu_pd(acc + i), m));
      for (; i < len; ++i) acc[i] = sfn::Neg{}(acc[i]);
      return true;
    }
    case prog::Unary::kAbs: {
      const __m256d m = _mm256_set1_pd(-0.0);
      for (; i + 4 <= len; i += 4)
        _mm256_storeu_pd(acc + i,
                         _mm256_andnot_pd(m, _mm256_loadu_pd(acc + i)));
      for (; i < len; ++i) acc[i] = sfn::Abs{}(acc[i]);
      return true;
    }
    case prog::Unary::kSqrt: {
      for (; i + 4 <= len; i += 4)
        _mm256_storeu_pd(acc + i, _mm256_sqrt_pd(_mm256_loadu_pd(acc + i)));
      for (; i < len; ++i) acc[i] = sfn::Sqrt{}(acc[i]);
      return true;
    }
    default:
      return false;
  }
}

/// AVX2 body for fused binary ops. `swapped` selects chain-on-the-right
/// (acc = f(oth, acc)); kBinChainBoth callers pass oth == acc.
__attribute__((target("avx2"))) void fused_binary_avx2(real* acc,
                                                       const real* oth,
                                                       int64_t len,
                                                       prog::Binary b,
                                                       bool swapped) {
  int64_t i = 0;
  if (!swapped) {
    switch (b) {
      case prog::Binary::kAdd:
        for (; i + 4 <= len; i += 4)
          _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                                  _mm256_loadu_pd(oth + i)));
        for (; i < len; ++i) acc[i] = sfn::Add{}(acc[i], oth[i]);
        break;
      case prog::Binary::kSub:
        for (; i + 4 <= len; i += 4)
          _mm256_storeu_pd(acc + i, _mm256_sub_pd(_mm256_loadu_pd(acc + i),
                                                  _mm256_loadu_pd(oth + i)));
        for (; i < len; ++i) acc[i] = sfn::Sub{}(acc[i], oth[i]);
        break;
      case prog::Binary::kMul:
        for (; i + 4 <= len; i += 4)
          _mm256_storeu_pd(acc + i, _mm256_mul_pd(_mm256_loadu_pd(acc + i),
                                                  _mm256_loadu_pd(oth + i)));
        for (; i < len; ++i) acc[i] = sfn::Mul{}(acc[i], oth[i]);
        break;
      case prog::Binary::kDiv:
        for (; i + 4 <= len; i += 4)
          _mm256_storeu_pd(acc + i, _mm256_div_pd(_mm256_loadu_pd(acc + i),
                                                  _mm256_loadu_pd(oth + i)));
        for (; i < len; ++i) acc[i] = sfn::Div{}(acc[i], oth[i]);
        break;
    }
  } else {
    switch (b) {
      case prog::Binary::kAdd:
        for (; i + 4 <= len; i += 4)
          _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(oth + i),
                                                  _mm256_loadu_pd(acc + i)));
        for (; i < len; ++i) acc[i] = sfn::Add{}(oth[i], acc[i]);
        break;
      case prog::Binary::kSub:
        for (; i + 4 <= len; i += 4)
          _mm256_storeu_pd(acc + i, _mm256_sub_pd(_mm256_loadu_pd(oth + i),
                                                  _mm256_loadu_pd(acc + i)));
        for (; i < len; ++i) acc[i] = sfn::Sub{}(oth[i], acc[i]);
        break;
      case prog::Binary::kMul:
        for (; i + 4 <= len; i += 4)
          _mm256_storeu_pd(acc + i, _mm256_mul_pd(_mm256_loadu_pd(oth + i),
                                                  _mm256_loadu_pd(acc + i)));
        for (; i < len; ++i) acc[i] = sfn::Mul{}(oth[i], acc[i]);
        break;
      case prog::Binary::kDiv:
        for (; i + 4 <= len; i += 4)
          _mm256_storeu_pd(acc + i, _mm256_div_pd(_mm256_loadu_pd(oth + i),
                                                  _mm256_loadu_pd(acc + i)));
        for (; i < len; ++i) acc[i] = sfn::Div{}(oth[i], acc[i]);
        break;
    }
  }
}

/// 8-lane float overloads for f32-colored fused chains. The carried
/// scalar stays f64 in the plan and narrows once here — the same
/// `x + T(s)` the templated functor tail computes.
__attribute__((target("avx2"))) bool fused_unary_avx2(float* acc, int64_t len,
                                                      prog::Unary u,
                                                      real scalar) {
  int64_t i = 0;
  switch (u) {
    case prog::Unary::kAddScalar: {
      const __m256 s = _mm256_set1_ps(static_cast<float>(scalar));
      for (; i + 8 <= len; i += 8)
        _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i), s));
      for (; i < len; ++i) acc[i] = sfn::AddScalar{scalar}(acc[i]);
      return true;
    }
    case prog::Unary::kMulScalar: {
      const __m256 s = _mm256_set1_ps(static_cast<float>(scalar));
      for (; i + 8 <= len; i += 8)
        _mm256_storeu_ps(acc + i, _mm256_mul_ps(_mm256_loadu_ps(acc + i), s));
      for (; i < len; ++i) acc[i] = sfn::MulScalar{scalar}(acc[i]);
      return true;
    }
    case prog::Unary::kNeg: {
      const __m256 m = _mm256_set1_ps(-0.0f);
      for (; i + 8 <= len; i += 8)
        _mm256_storeu_ps(acc + i, _mm256_xor_ps(_mm256_loadu_ps(acc + i), m));
      for (; i < len; ++i) acc[i] = sfn::Neg{}(acc[i]);
      return true;
    }
    case prog::Unary::kAbs: {
      const __m256 m = _mm256_set1_ps(-0.0f);
      for (; i + 8 <= len; i += 8)
        _mm256_storeu_ps(acc + i,
                         _mm256_andnot_ps(m, _mm256_loadu_ps(acc + i)));
      for (; i < len; ++i) acc[i] = sfn::Abs{}(acc[i]);
      return true;
    }
    case prog::Unary::kSqrt: {
      for (; i + 8 <= len; i += 8)
        _mm256_storeu_ps(acc + i, _mm256_sqrt_ps(_mm256_loadu_ps(acc + i)));
      for (; i < len; ++i) acc[i] = sfn::Sqrt{}(acc[i]);
      return true;
    }
    default:
      return false;
  }
}

__attribute__((target("avx2"))) void fused_binary_avx2(float* acc,
                                                       const float* oth,
                                                       int64_t len,
                                                       prog::Binary b,
                                                       bool swapped) {
  int64_t i = 0;
  if (!swapped) {
    switch (b) {
      case prog::Binary::kAdd:
        for (; i + 8 <= len; i += 8)
          _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i),
                                                  _mm256_loadu_ps(oth + i)));
        for (; i < len; ++i) acc[i] = sfn::Add{}(acc[i], oth[i]);
        break;
      case prog::Binary::kSub:
        for (; i + 8 <= len; i += 8)
          _mm256_storeu_ps(acc + i, _mm256_sub_ps(_mm256_loadu_ps(acc + i),
                                                  _mm256_loadu_ps(oth + i)));
        for (; i < len; ++i) acc[i] = sfn::Sub{}(acc[i], oth[i]);
        break;
      case prog::Binary::kMul:
        for (; i + 8 <= len; i += 8)
          _mm256_storeu_ps(acc + i, _mm256_mul_ps(_mm256_loadu_ps(acc + i),
                                                  _mm256_loadu_ps(oth + i)));
        for (; i < len; ++i) acc[i] = sfn::Mul{}(acc[i], oth[i]);
        break;
      case prog::Binary::kDiv:
        for (; i + 8 <= len; i += 8)
          _mm256_storeu_ps(acc + i, _mm256_div_ps(_mm256_loadu_ps(acc + i),
                                                  _mm256_loadu_ps(oth + i)));
        for (; i < len; ++i) acc[i] = sfn::Div{}(acc[i], oth[i]);
        break;
    }
  } else {
    switch (b) {
      case prog::Binary::kAdd:
        for (; i + 8 <= len; i += 8)
          _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(oth + i),
                                                  _mm256_loadu_ps(acc + i)));
        for (; i < len; ++i) acc[i] = sfn::Add{}(oth[i], acc[i]);
        break;
      case prog::Binary::kSub:
        for (; i + 8 <= len; i += 8)
          _mm256_storeu_ps(acc + i, _mm256_sub_ps(_mm256_loadu_ps(oth + i),
                                                  _mm256_loadu_ps(acc + i)));
        for (; i < len; ++i) acc[i] = sfn::Sub{}(oth[i], acc[i]);
        break;
      case prog::Binary::kMul:
        for (; i + 8 <= len; i += 8)
          _mm256_storeu_ps(acc + i, _mm256_mul_ps(_mm256_loadu_ps(oth + i),
                                                  _mm256_loadu_ps(acc + i)));
        for (; i < len; ++i) acc[i] = sfn::Mul{}(oth[i], acc[i]);
        break;
      case prog::Binary::kDiv:
        for (; i + 8 <= len; i += 8)
          _mm256_storeu_ps(acc + i, _mm256_div_ps(_mm256_loadu_ps(oth + i),
                                                  _mm256_loadu_ps(acc + i)));
        for (; i < len; ++i) acc[i] = sfn::Div{}(oth[i], acc[i]);
        break;
    }
  }
}
#endif  // MF_PROG_AVX2

/// Execute one step against an explicit buffer/length/broadcast-plan
/// table at element type T. Master replay passes the Impl's own tables;
/// widened replay passes the WideContext's (scaled lengths, rebuilt
/// broadcast plans, wide buffers). Reduce plans, fused chains and
/// optimizer executors are always the Impl's — widening rejects plans
/// where those would need scaling. Optimizer steps are double-only
/// (lowering pins their Step::dt to kF64); the float instantiation
/// compiles them out.
template <typename T>
void execute_typed(Program::Impl& im, const Step& s, void* const* B,
                   const int64_t* slot_len,
                   const kernels::BroadcastPlan* bplans) {
  constexpr bool kIsF64 = std::is_same_v<T, double>;
  auto rd = [&](std::int32_t sl) { return static_cast<const T*>(B[sl]); };
  auto wr = [&](std::int32_t sl) { return static_cast<T*>(B[sl]); };
  switch (s.kind) {
    case StepKind::kUnary: {
      const T* a = rd(s.a);
      T* o = wr(s.out);
      const int64_t n = s.p0;
      dispatch_unary(static_cast<prog::Unary>(s.fn), s.scalar,
                     [&](auto f) { kernels::map_unary(a, o, n, f); });
      break;
    }
    case StepKind::kBinary: {
      const T* a = rd(s.a);
      const T* b = rd(s.b);
      T* o = wr(s.out);
      const int64_t n = s.p0;
      dispatch_binary(static_cast<prog::Binary>(s.fn),
                      [&](auto f) { kernels::map_binary(a, b, o, n, f); });
      break;
    }
    case StepKind::kBinaryBcast: {
      const kernels::BroadcastPlan& plan =
          bplans[static_cast<std::size_t>(s.plan)];
      const T* a = rd(s.a);
      const T* b = rd(s.b);
      T* o = wr(s.out);
      dispatch_binary(static_cast<prog::Binary>(s.fn), [&](auto f) {
        kernels::map_broadcast(plan, a, b, o, f);
      });
      break;
    }
    case StepKind::kFused: {
      // One pass over the buffer, block by block: the chain value lives
      // in a stack block while the composed ops run over it, so the
      // folded intermediates never touch memory. Element i still sees
      // the identical functor sequence the individual steps applied.
      const auto& ops = im.fchains[static_cast<std::size_t>(s.plan)];
      const T* src = rd(s.a);
      T* outp = wr(s.out);
      const FusedOp* fo = ops.data();
      const std::size_t n_ops = ops.size();
#ifdef MF_PROG_AVX2
      const bool avx2 = prog_has_avx2();
#endif
      kernels::parallel_for(
          s.p0, static_cast<int64_t>(n_ops) + 1, [&](int64_t b0, int64_t e0) {
            constexpr int64_t kBlock = 128;
            T acc[kBlock];
            for (int64_t base = b0; base < e0; base += kBlock) {
              const int64_t len = std::min(kBlock, e0 - base);
              for (int64_t t = 0; t < len; ++t) acc[t] = src[base + t];
              for (std::size_t k = 0; k < n_ops; ++k) {
                const FusedOp& op = fo[k];
                switch (op.form) {
                  case FusedOp::kUnaryForm:
                    // tanh/gelu route through the shared block kernels so a
                    // fused chain produces the same bits as the standalone
                    // eager op (fast path when active, sfn functor if not).
                    if (static_cast<prog::Unary>(op.fn) == prog::Unary::kTanh) {
                      kernels::tanh_block_inplace(acc, len);
                      break;
                    }
                    if (static_cast<prog::Unary>(op.fn) == prog::Unary::kGelu) {
                      kernels::gelu_block_inplace(acc, len);
                      break;
                    }
#ifdef MF_PROG_AVX2
                    if (avx2 &&
                        fused_unary_avx2(acc, len,
                                         static_cast<prog::Unary>(op.fn),
                                         op.scalar)) {
                      break;
                    }
#endif
                    dispatch_unary(static_cast<prog::Unary>(op.fn), op.scalar,
                                   [&](auto f) {
                                     for (int64_t t = 0; t < len; ++t) {
                                       acc[t] = f(acc[t]);
                                     }
                                   });
                    break;
                  case FusedOp::kBinChainLeft: {
                    const T* oth = rd(op.other) + base;
#ifdef MF_PROG_AVX2
                    if (avx2) {
                      fused_binary_avx2(acc, oth, len,
                                        static_cast<prog::Binary>(op.fn),
                                        /*swapped=*/false);
                      break;
                    }
#endif
                    dispatch_binary(static_cast<prog::Binary>(op.fn),
                                    [&](auto f) {
                                      for (int64_t t = 0; t < len; ++t) {
                                        acc[t] = f(acc[t], oth[t]);
                                      }
                                    });
                    break;
                  }
                  case FusedOp::kBinChainRight: {
                    const T* oth = rd(op.other) + base;
#ifdef MF_PROG_AVX2
                    if (avx2) {
                      fused_binary_avx2(acc, oth, len,
                                        static_cast<prog::Binary>(op.fn),
                                        /*swapped=*/true);
                      break;
                    }
#endif
                    dispatch_binary(static_cast<prog::Binary>(op.fn),
                                    [&](auto f) {
                                      for (int64_t t = 0; t < len; ++t) {
                                        acc[t] = f(oth[t], acc[t]);
                                      }
                                    });
                    break;
                  }
                  case FusedOp::kBinChainBoth:
#ifdef MF_PROG_AVX2
                    if (avx2) {
                      fused_binary_avx2(acc, acc, len,
                                        static_cast<prog::Binary>(op.fn),
                                        /*swapped=*/false);
                      break;
                    }
#endif
                    dispatch_binary(static_cast<prog::Binary>(op.fn),
                                    [&](auto f) {
                                      for (int64_t t = 0; t < len; ++t) {
                                        acc[t] = f(acc[t], acc[t]);
                                      }
                                    });
                    break;
                }
              }
              for (int64_t t = 0; t < len; ++t) outp[base + t] = acc[t];
            }
          });
      break;
    }
    case StepKind::kAdamTick: {
      if constexpr (kIsF64) {
        prog::AdamPlanState& st =
            *im.adam_ticks[static_cast<std::size_t>(s.plan)];
        ++*st.t;
        st.bc1 = 1.0 - std::pow(st.beta1, static_cast<double>(*st.t));
        st.bc2 = 1.0 - std::pow(st.beta2, static_cast<double>(*st.t));
      }
      break;
    }
    case StepKind::kAdamParam: {
      if constexpr (kIsF64) {
        const auto& ap = im.adam_params[static_cast<std::size_t>(s.plan)];
        const prog::AdamPlanState& st = *ap.state;
        const real* g = rd(s.a);
        real* p = wr(s.out);
        const double lr = *st.lr;
        for (int64_t j = 0; j < ap.n; ++j) {
          sfn::adam_update(p[j], g[j], ap.m[j], ap.v[j], lr, st.beta1,
                           st.beta2, st.bc1, st.bc2, st.eps, st.weight_decay,
                           st.decoupled);
        }
      }
      break;
    }
    case StepKind::kLambParam: {
      if constexpr (kIsF64) {
        auto& lp = im.lamb_params[static_cast<std::size_t>(s.plan)];
        const prog::AdamPlanState& st = *lp.state;
        sfn::lamb_param_update(wr(s.out), rd(s.a), lp.m, lp.v, lp.n, lp.dir,
                               *st.lr, st.beta1, st.beta2, st.bc1, st.bc2,
                               st.eps, st.weight_decay);
      }
      break;
    }
    case StepKind::kBcastCopy:
      kernels::broadcast_copy(bplans[static_cast<std::size_t>(s.plan)],
                              rd(s.a), wr(s.out));
      break;
    case StepKind::kReduce:
      kernels::reduce_broadcast(im.rplans[static_cast<std::size_t>(s.plan)],
                                rd(s.a), wr(s.out));
      break;
    case StepKind::kSumAll:
      // reduce_sum accumulates in double at either width; the scalar
      // result rounds to the out slot's width here.
      wr(s.out)[0] = static_cast<T>(kernels::reduce_sum(rd(s.a), s.p0));
      break;
    case StepKind::kSumAxis: {
      T* o = wr(s.out);
      std::fill(o, o + slot_len[static_cast<std::size_t>(s.out)], T{0});
      kernels::sum_axis(rd(s.a), o, s.p0, s.p1, s.p2);
      break;
    }
    case StepKind::kMatmul:
      kernels::matmul(rd(s.a), rd(s.b), s.c >= 0 ? rd(s.c) : nullptr,
                      wr(s.out), s.p0, s.p1, s.p2);
      break;
    case StepKind::kTranspose:
      kernels::transpose(rd(s.a), wr(s.out), s.p0, s.p1);
      break;
    case StepKind::kCopy:
      std::memcpy(wr(s.out), rd(s.a),
                  static_cast<std::size_t>(s.p0) * sizeof(T));
      break;
    case StepKind::kSlicePack: {
      const T* p = rd(s.a);
      T* po = wr(s.out);
      const int64_t len = s.p1, inner = s.p2, n_axis = s.p3, start = s.p4;
      kernels::parallel_for(s.p0, len * inner, [&](int64_t b0, int64_t e0) {
        for (int64_t o = b0; o < e0; ++o) {
          std::memcpy(po + o * len * inner, p + (o * n_axis + start) * inner,
                      static_cast<std::size_t>(len * inner) * sizeof(T));
        }
      });
      break;
    }
    case StepKind::kSliceScatter: {
      // The eager backward wrote its windows into a freshly zeroed
      // payload; with buffer reuse the zero background must be restored.
      const T* pg = rd(s.a);
      T* pp = wr(s.out);
      std::fill(pp, pp + slot_len[static_cast<std::size_t>(s.out)], T{0});
      const int64_t len = s.p1, inner = s.p2, n_axis = s.p3, start = s.p4;
      for (int64_t o = 0; o < s.p0; ++o) {
        std::memcpy(pp + (o * n_axis + start) * inner, pg + o * len * inner,
                    static_cast<std::size_t>(len * inner) * sizeof(T));
      }
      break;
    }
    case StepKind::kConcatPart: {
      const T* pp = rd(s.a);
      T* po = wr(s.out);
      const int64_t total = s.p1, offset = s.p2, len = s.p3, inner = s.p4;
      for (int64_t o = 0; o < s.p0; ++o) {
        std::memcpy(po + (o * total + offset) * inner, pp + o * len * inner,
                    static_cast<std::size_t>(len * inner) * sizeof(T));
      }
      break;
    }
    case StepKind::kConv1dFwd:
      kernels::conv1d_forward(rd(s.a), rd(s.b), s.c >= 0 ? rd(s.c) : nullptr,
                              wr(s.out), s.p0, s.p1, s.p2, s.p3, s.p4, s.p5);
      break;
    case StepKind::kConv1dGradIn: {
      T* o = wr(s.out);
      std::fill(o, o + slot_len[static_cast<std::size_t>(s.out)], T{0});
      kernels::conv1d_grad_input(rd(s.a), rd(s.b), o, s.p0, s.p1, s.p2, s.p3,
                                 s.p4, s.p5);
      break;
    }
    case StepKind::kConv1dGradW: {
      T* o = wr(s.out);
      std::fill(o, o + slot_len[static_cast<std::size_t>(s.out)], T{0});
      kernels::conv1d_grad_weight(rd(s.a), rd(s.b), o, s.p0, s.p1, s.p2, s.p3,
                                  s.p4, s.p5);
      break;
    }
    case StepKind::kConv1dGradB: {
      T* o = wr(s.out);
      std::fill(o, o + slot_len[static_cast<std::size_t>(s.out)], T{0});
      kernels::conv1d_grad_bias(rd(s.a), o, s.p0, s.p1, s.p2);
      break;
    }
    case StepKind::kCast:
      break;  // handled by the untyped dispatcher below
    case StepKind::kStepKindCount_:
      break;  // sentinel: never lowered
  }
}

/// Untyped entry: kCast bridges the two widths itself; every other step
/// runs at its lowering-assigned Step::dt.
void execute(Program::Impl& im, const Step& s, void* const* B,
             const int64_t* slot_len, const kernels::BroadcastPlan* bplans) {
  if (s.kind == StepKind::kCast) {
    if (s.fn == 1) {
      kernels::cast_buffer(static_cast<const double*>(B[s.a]),
                           static_cast<float*>(B[s.out]), s.p0);
    } else {
      kernels::cast_buffer(static_cast<const float*>(B[s.a]),
                           static_cast<double*>(B[s.out]), s.p0);
    }
    return;
  }
  if (s.dt == DType::kF32) {
    execute_typed<float>(im, s, B, slot_len, bplans);
  } else {
    execute_typed<double>(im, s, B, slot_len, bplans);
  }
}

/// Persistent wave-executor pool shared by every Program in the process.
/// Workers are spawned lazily up to the largest thread count any replay
/// has requested and parked on a condition variable between jobs. One
/// parallel replay at a time (`run_mu_`): within it, all participants —
/// the calling thread plus the active workers — walk the plan's waves in
/// lockstep, claiming steps of the current wave via an atomic cursor and
/// meeting at a barrier between waves (the barrier's mutex also publishes
/// every buffer written in wave w to the readers of wave w+1). Every
/// participant holds a kernels::SerialRegionGuard, so per-step kernels
/// run their serial loops: the step, not the kernel, is the unit of
/// parallelism, and any execution order the waves admit is bitwise
/// identical to serial replay with kernel threading disabled.
/// The pool is intentionally leaked: joining workers during static
/// destruction can deadlock, and the parked threads die with the process.
class PlanPool {
 public:
  static PlanPool& instance() {
    static PlanPool* pool = new PlanPool;
    return *pool;
  }

  /// Execute `im`'s waves over the given step/buffer tables (master or
  /// widened) with `nthreads` participants including the caller.
  void run(Program::Impl& im, const Step* steps, void* const* B,
           const int64_t* slot_len, const kernels::BroadcastPlan* bplans,
           int nthreads) {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    const int want = std::min(nthreads - 1, 255);
    while (static_cast<int>(workers_.size()) < want) {
      const int id = static_cast<int>(workers_.size());
      workers_.emplace_back([this, id] { worker_main(id); });
    }
    job_.im = &im;
    job_.steps = steps;
    job_.B = B;
    job_.slot_len = slot_len;
    job_.bplans = bplans;
    job_.active = want;
    job_.next.store(0, std::memory_order_relaxed);
    nparts_ = static_cast<int>(workers_.size()) + 1;
    {
      std::lock_guard<std::mutex> lk(mu_);
      finished_ = 0;
      ++job_gen_;
    }
    cv_.notify_all();
    {
      kernels::SerialRegionGuard serial;
      run_waves(/*claims=*/true);
    }
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return finished_ == static_cast<int>(workers_.size());
    });
  }

 private:
  struct Job {
    Program::Impl* im = nullptr;
    const Step* steps = nullptr;
    void* const* B = nullptr;
    const int64_t* slot_len = nullptr;
    const kernels::BroadcastPlan* bplans = nullptr;
    int active = 0;  // workers allowed to claim steps this job
    std::atomic<std::size_t> next{0};  // step cursor within current wave
  };

  void worker_main(int id) {
    kernels::SerialRegionGuard serial;
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return job_gen_ != seen; });
        seen = job_gen_;
      }
      // Workers beyond the requested width still take the barriers (the
      // participant count is fixed per job) but claim no steps.
      run_waves(/*claims=*/id < job_.active);
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++finished_;
      }
      done_cv_.notify_all();
    }
  }

  void run_waves(bool claims) {
    Job& j = job_;
    const auto& waves = j.im->waves;
    for (std::size_t w = 0; w < waves.size(); ++w) {
      if (claims) {
        const auto& wave = waves[w];
        std::size_t i;
        while ((i = j.next.fetch_add(1, std::memory_order_relaxed)) <
               wave.size()) {
          execute(*j.im, j.steps[wave[i]], j.B, j.slot_len, j.bplans);
        }
      }
      wave_barrier();
    }
  }

  /// Sense-reversing barrier over all participants; the last arriver
  /// resets the step cursor for the next wave before releasing.
  void wave_barrier() {
    std::unique_lock<std::mutex> lk(bar_mu_);
    if (++arrived_ == nparts_) {
      arrived_ = 0;
      job_.next.store(0, std::memory_order_relaxed);
      ++phase_;
      bar_cv_.notify_all();
    } else {
      const std::uint64_t ph = phase_;
      bar_cv_.wait(lk, [&] { return phase_ != ph; });
    }
  }

  std::mutex run_mu_;  // serializes whole parallel replays
  std::mutex mu_;      // guards job_gen_ / finished_
  std::condition_variable cv_, done_cv_;
  std::mutex bar_mu_;  // per-wave barrier state
  std::condition_variable bar_cv_;
  std::vector<std::thread> workers_;
  Job job_;
  int nparts_ = 1;
  int arrived_ = 0;
  std::uint64_t phase_ = 0;
  std::uint64_t job_gen_ = 0;
  int finished_ = 0;
};

/// True when this replay should go through the wave executor: opted in
/// via MF_PLAN_THREADS, not hatched off, and the plan actually has
/// intra-wave parallelism to exploit (a fully serial chain — one step
/// per wave — would only pay barrier overhead).
bool use_parallel_replay(const Program::Impl& im) {
  return program_parallel_enabled() && program_plan_threads() > 1 &&
         !im.waves.empty() && im.waves.size() < im.steps.size();
}

/// Record-time shape of a slot with the leading dimension scaled by `f`
/// when the slot carries the batch.
Shape wide_shape(const Program::Impl& im, std::int32_t slot, int64_t f) {
  Shape sh = im.slot_shape[static_cast<std::size_t>(slot)];
  if (im.slot_scaled[static_cast<std::size_t>(slot)] && !sh.empty()) {
    sh[0] *= f;
  }
  return sh;
}

/// Shape-level broadcast mirroring BroadcastPlan's trailing alignment.
/// Returns false when `a` and `b` do not broadcast; otherwise `out` is
/// the broadcast result.
bool bcast_result(const Shape& a, const Shape& b, Shape& out) {
  const std::size_t nd = std::max(a.size(), b.size());
  out.assign(nd, 1);
  for (std::size_t d = 0; d < nd; ++d) {
    const int64_t av = d >= nd - a.size() ? a[d - (nd - a.size())] : 1;
    const int64_t bv = d >= nd - b.size() ? b[d - (nd - b.size())] : 1;
    if (av != bv && av != 1 && bv != 1) return false;
    out[d] = std::max(av, bv);
  }
  return true;
}

/// Find or build the replay context for widening factor `f` (> 1): step
/// list with scaled geometry, broadcast plans rebuilt from the widened
/// shapes, and a buffer table where unscaled external slots alias the
/// live master payloads (parameters are read in place, so retraining
/// between widened replays needs no re-widen) while scaled slots and
/// every internal slot get fresh per-slot storage. Deliberately no arena
/// packing: unaliased buffers keep the master wave schedule valid and
/// make instance-independence structural rather than lifetimes-dependent.
Program::Impl::WideContext* get_wide_ctx(Program::Impl& im, int64_t f) {
  for (std::size_t i = 0; i < im.wide_ctxs.size(); ++i) {
    if (im.wide_ctxs[i]->factor == f) {
      // LRU: most recently used context moves to the back, so steady
      // traffic on a few factors never rebuilds.
      if (i + 1 != im.wide_ctxs.size()) {
        auto c = std::move(im.wide_ctxs[i]);
        im.wide_ctxs.erase(im.wide_ctxs.begin() + static_cast<std::ptrdiff_t>(i));
        im.wide_ctxs.push_back(std::move(c));
      }
      return im.wide_ctxs.back().get();
    }
  }
  // Bounded: a server replaying many distinct batch sizes would otherwise
  // accumulate one f-scaled buffer set per distinct factor forever.
  // Contexts are cheap to rebuild (no capture, just step/plan scaling), so
  // evicting the least recently used one is safe.
  // 32 covers an iteration-level batching server whose per-tick group
  // sizes wander (base-1 plans see one factor per distinct batch size).
  constexpr std::size_t kMaxWideCtxs = 32;
  if (im.wide_ctxs.size() >= kMaxWideCtxs) {
    im.wide_ctxs.erase(im.wide_ctxs.begin());
  }
  auto ctx = std::make_unique<Program::Impl::WideContext>();
  ctx->factor = f;
  const std::size_t S = im.slots.size();
  ctx->slot_len = im.slot_len;
  for (std::size_t s = 0; s < S; ++s) {
    if (im.slot_scaled[s]) ctx->slot_len[s] *= f;
  }
  ctx->store.resize(S);
  ctx->buf.assign(S, nullptr);
  for (std::size_t s = 0; s < S; ++s) {
    if (!im.buf[s]) continue;  // fused away entirely
    if (im.slots[s] && !im.slot_scaled[s]) {
      ctx->buf[s] = im.buf[s];
    } else {
      ctx->store[s].assign(static_cast<std::size_t>(ctx->slot_len[s]) *
                               dtype_size(im.slot_dt[s]),
                           std::byte{0});
      ctx->buf[s] = ctx->store[s].data();
    }
  }
  ctx->steps = im.steps;
  for (Step& s : ctx->steps) {
    switch (s.kind) {
      case StepKind::kUnary:
      case StepKind::kBinary:
      case StepKind::kCopy:
      case StepKind::kFused:
      case StepKind::kCast:
        // p0 is the element count; scaled outputs imply scaled inputs.
        if (im.slot_scaled[static_cast<std::size_t>(s.out)]) s.p0 *= f;
        break;
      case StepKind::kMatmul:      // p0 = m, rows including the batch
      case StepKind::kConv1dFwd:   // p0 = B
      case StepKind::kSumAxis:     // p0 = outer, batch-leading
      case StepKind::kSlicePack:   // p0 = outer, batch-leading
      case StepKind::kSliceScatter:
      case StepKind::kConcatPart:
        if (im.slot_scaled[static_cast<std::size_t>(s.a)]) s.p0 *= f;
        break;
      default:
        break;  // plan-driven or unscaled by the widening analysis
    }
  }
  ctx->bplans = im.bplans;
  for (const Step& s : im.steps) {
    if (s.kind == StepKind::kBinaryBcast) {
      ctx->bplans[static_cast<std::size_t>(s.plan)] = kernels::BroadcastPlan(
          wide_shape(im, s.out, f), wide_shape(im, s.a, f),
          wide_shape(im, s.b, f));
    } else if (s.kind == StepKind::kBcastCopy) {
      const Shape a_w = wide_shape(im, s.a, f);
      ctx->bplans[static_cast<std::size_t>(s.plan)] =
          kernels::BroadcastPlan(wide_shape(im, s.out, f), a_w, a_w);
    }
  }
  im.wide_ctxs.push_back(std::move(ctx));
  return im.wide_ctxs.back().get();
}

}  // namespace

Program::Program() : impl_(std::make_unique<Impl>()) {}
Program::~Program() = default;
Program::Program(Program&&) noexcept = default;
Program& Program::operator=(Program&&) noexcept = default;

namespace {

template <typename T>
bool span_healthy(const T* p, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(p[i]);
    if (!std::isfinite(v) || std::abs(v) > kHealthDivergenceBound) {
      return false;
    }
  }
  return true;
}

/// Post-replay sentinel scan over the plan's written external slots.
/// `buf`/`slot_len` parameterize over plain and widened replay contexts.
void run_health_check(Program::Impl& im, void* const* buf,
                      const int64_t* slot_len) {
  if (!health_checks_enabled()) return;
  ++im.health_checks;
  g_health_checks.fetch_add(1, std::memory_order_relaxed);
  bool healthy = true;
  for (std::int32_t s : im.health_slots) {
    const auto idx = static_cast<std::size_t>(s);
    const void* p = buf[idx];
    if (p == nullptr) continue;
    const int64_t n = slot_len[idx];
    const bool ok = im.slot_dt[idx] == DType::kF32
                        ? span_healthy(static_cast<const float*>(p), n)
                        : span_healthy(static_cast<const double*>(p), n);
    if (!ok) {
      healthy = false;
      break;
    }
  }
  im.last_healthy = healthy;
  if (!healthy) {
    ++im.health_trips;
    g_health_trips.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void Program::capture(const std::function<void()>& fn) {
  if (prog::detail::g_recorder) {
    throw std::logic_error("Program::capture: nested capture on one thread");
  }
  reset();
  Impl& im = *impl_;
  const double t0 = now_ms();
  // RAII backstop: the thread-local recorder must be cleared on *every*
  // exit path — a stuck recorder would silently record unrelated later
  // kernels into this plan and permanently block further captures on the
  // thread. The explicit clears below stay (lower() must run with
  // recording off); the guard covers anything they miss.
  struct RecorderGuard {
    ~RecorderGuard() { prog::detail::g_recorder = nullptr; }
  } recorder_guard;
  prog::detail::g_recorder = &im;
  try {
    fn();
  } catch (...) {
    // Poison the in-flight capture exactly like an in-band uncapturable
    // op, then drop every recorded slot: the pinned payloads return to
    // the pool and the released autodiff graph lets the tape arena
    // rewind, instead of a half-recorded plan pinning both.
    prog::on_uncapturable();
    prog::detail::g_recorder = nullptr;
    reset();
    throw;
  }
  prog::detail::g_recorder = nullptr;
  if (im.poisoned) {
    // The body ran something no plan step can represent (see
    // prog::on_uncapturable). Its eager effects already happened,
    // correctly — only the plan is discarded, so captured() stays false
    // and the caller deterministically keeps eager execution instead of
    // replaying a half-captured step.
    reset();
    return;
  }
  lower(im);
  im.capture_ms = now_ms() - t0;
  ++im.captures;
  im.ready = true;
}

bool Program::captured() const { return impl_->ready; }

bool Program::last_replay_healthy() const { return impl_->last_healthy; }

void Program::replay() {
  Impl& im = *impl_;
  if (!im.ready) throw std::logic_error("Program::replay before capture");
  static const bool prof = [] {
    const char* e = std::getenv("MF_PROGRAM_PROFILE");
    return e && e[0] == '1';
  }();
  void* const* B = im.buf.data();
  const int64_t* slot_len = im.slot_len.data();
  const kernels::BroadcastPlan* bplans = im.bplans.data();
  if (prof) {
    // Per-thread accumulators: inference replays programs from several
    // OpenMP threads at once, and a shared tally would be a data race.
    // Band layout and sizes come from the enums (see kProfBands): bands
    // [0, kStepKindCount) tally per step kind, bands above split kUnary
    // by fn. The old fixed-size scheme put the unary split at 32 + fn,
    // which aliased unary bands onto step kinds once the enum grew past
    // 32 entries. Profiling always replays serially, in recorded order.
    static thread_local double acc[kProfBands] = {0};
    static thread_local std::uint64_t cnt[kProfBands] = {0};
    static thread_local std::uint64_t elems[kProfBands] = {0};
    static thread_local std::uint64_t calls = 0;
    for (const Step& s : im.steps) {
      int k = static_cast<int>(s.kind);
      if (s.kind == StepKind::kUnary && s.fn < kUnaryFnCount) {
        k = kStepKindCount + s.fn;
      }
      if (k < 0 || k >= kProfBands) k = 0;  // never taken; belt and braces
      const double t0 = now_ms();
      execute(im, s, B, slot_len, bplans);
      acc[k] += now_ms() - t0;
      ++cnt[k];
      elems[k] += static_cast<std::uint64_t>(s.p0);
    }
    if (++calls % 24 == 0) {
      std::fprintf(stderr, "PROGPROF after %llu replays:\n",
                   static_cast<unsigned long long>(calls));
      for (int k = 0; k < kProfBands; ++k) {
        if (cnt[k]) {
          std::fprintf(stderr,
                       "  kind %2d: %8.3f ms total, %8llu steps, %10llu elems\n",
                       k, acc[k], static_cast<unsigned long long>(cnt[k]),
                       static_cast<unsigned long long>(elems[k]));
        }
      }
    }
  } else if (use_parallel_replay(im)) {
    PlanPool::instance().run(im, im.steps.data(), B, slot_len, bplans,
                             program_plan_threads());
  } else {
    for (const Step& s : im.steps) execute(im, s, B, slot_len, bplans);
  }
  ++im.replays;
  run_health_check(im, im.buf.data(), im.slot_len.data());
}

bool Program::widen(const std::vector<Tensor>& batch_io) {
  Impl& im = *impl_;
  im.wide_ready = false;
  im.base_b = 0;
  im.declared_slots.clear();
  im.wide_ctxs.clear();
  im.slot_scaled.assign(im.slots.size(), 0);
  if (!im.ready || !program_widening_enabled() || batch_io.empty()) {
    return false;
  }
  const std::size_t S = im.slots.size();
  int64_t base = 0;
  for (const Tensor& t : batch_io) {
    if (!t.defined() || t.shape().empty()) return false;
    const int64_t b0 = t.shape()[0];
    if (b0 <= 0 || (base != 0 && b0 != base)) return false;
    base = b0;
    std::int32_t slot = -1;
    for (std::size_t s = 0; s < S; ++s) {
      if (im.slots[s] && im.slots[s].get() == t.impl_ptr()) {
        slot = static_cast<std::int32_t>(s);
        break;
      }
    }
    if (slot < 0) return false;  // not an external slot of this plan
    im.slot_scaled[static_cast<std::size_t>(slot)] = 1;
    im.declared_slots.emplace(t.impl_ptr(), slot);
  }

  // Fail-closed propagation of "carries the batch in dim 0" through the
  // plan, in recorded (dataflow) order. Externals are pre-assigned
  // (scaled iff declared); each step derives its output's scaledness
  // from its operands' or rejects the plan. Multi-writer outputs
  // (concat parts) and externally pinned outputs must agree with every
  // assignment — a scaled result landing in an undeclared external
  // buffer would silently overrun it.
  auto scaled = [&](std::int32_t sl) {
    return sl >= 0 && im.slot_scaled[static_cast<std::size_t>(sl)] != 0;
  };
  std::vector<char> assigned(S, 0);
  for (std::size_t s = 0; s < S; ++s) assigned[s] = im.slots[s] != nullptr;
  auto define_out = [&](std::int32_t sl, bool want) -> bool {
    if (sl < 0) return false;
    const auto u = static_cast<std::size_t>(sl);
    if (assigned[u]) return (im.slot_scaled[u] != 0) == want;
    if (want && im.slot_shape[u].empty()) return false;  // no dim to scale
    assigned[u] = 1;
    im.slot_scaled[u] = want ? 1 : 0;
    return true;
  };
  bool ok = true;
  Shape trial;
  for (const Step& s : im.steps) {
    if (!ok) break;
    switch (s.kind) {
      case StepKind::kUnary:
      case StepKind::kCopy:
      case StepKind::kCast:
        ok = define_out(s.out, scaled(s.a));
        break;
      case StepKind::kBinary:
        // Same-numel elementwise: mixed scaledness would diverge lengths.
        ok = scaled(s.a) == scaled(s.b) && define_out(s.out, scaled(s.a));
        break;
      case StepKind::kFused: {
        const bool want = scaled(s.a);
        for (const FusedOp& op :
             im.fchains[static_cast<std::size_t>(s.plan)]) {
          if (op.other >= 0 && scaled(op.other) != want) {
            ok = false;
            break;
          }
        }
        ok = ok && define_out(s.out, want);
        break;
      }
      case StepKind::kBinaryBcast: {
        const bool want = scaled(s.a) || scaled(s.b);
        ok = define_out(s.out, want);
        if (ok && want) {
          // Trial-widen at factor 2: validity is independent of the
          // factor, so one shape check covers every replay width.
          const Shape out_w = wide_shape(im, s.out, 2);
          ok = bcast_result(wide_shape(im, s.a, 2), wide_shape(im, s.b, 2),
                            trial) &&
               trial == out_w;
        }
        break;
      }
      case StepKind::kBcastCopy: {
        const bool want = scaled(s.a);
        ok = define_out(s.out, want);
        if (ok && want) {
          const Shape out_w = wide_shape(im, s.out, 2);
          ok = bcast_result(wide_shape(im, s.a, 2), out_w, trial) &&
               trial == out_w;
        }
        break;
      }
      case StepKind::kReduce:
      case StepKind::kSumAll:
        // Would fold batch instances into one value.
        ok = !scaled(s.a) && define_out(s.out, false);
        break;
      case StepKind::kSumAxis:
      case StepKind::kSlicePack:
      case StepKind::kSliceScatter:
      case StepKind::kConcatPart:
        // p0 is the product of dims before the worked axis; p0 == 1
        // means the axis *is* (or contains) the batch dimension.
        if (scaled(s.a)) {
          ok = s.p0 > 1 && define_out(s.out, true);
        } else {
          ok = define_out(s.out, false);
        }
        break;
      case StepKind::kMatmul:
        // Batch rides the row dimension of `a`; a batch-carrying rhs or
        // bias would change the contraction itself.
        ok = !scaled(s.b) && !scaled(s.c) && define_out(s.out, scaled(s.a));
        break;
      case StepKind::kTranspose:
        ok = !scaled(s.a) && define_out(s.out, false);
        break;
      case StepKind::kConv1dFwd:
        ok = !scaled(s.b) && !scaled(s.c) && define_out(s.out, scaled(s.a));
        break;
      case StepKind::kConv1dGradIn:
      case StepKind::kConv1dGradW:
      case StepKind::kConv1dGradB:
      case StepKind::kAdamTick:
      case StepKind::kAdamParam:
      case StepKind::kLambParam:
        // Training steps: gradient reductions and optimizer state are
        // sized for the capture batch; widening is inference-only.
        ok = false;
        break;
      case StepKind::kStepKindCount_:
        ok = false;
        break;
    }
  }
  if (!ok) {
    im.slot_scaled.assign(S, 0);
    im.declared_slots.clear();
    return false;
  }
  im.base_b = base;
  im.wide_ready = true;
  return true;
}

bool Program::widened() const { return impl_->wide_ready; }

int64_t Program::widen_base() const {
  return impl_->wide_ready ? impl_->base_b : 0;
}

int64_t Program::widen_cover(int64_t b) const {
  const Impl& im = *impl_;
  if (!im.wide_ready || b < im.base_b) return 0;
  return (b / im.base_b) * im.base_b;
}

real* Program::widened_buffer(const Tensor& t, int64_t b) {
  Impl& im = *impl_;
  if (!im.wide_ready) {
    throw std::logic_error("Program::widened_buffer before widen()");
  }
  auto it = im.declared_slots.find(t.impl_ptr());
  if (it == im.declared_slots.end()) {
    throw std::invalid_argument(
        "Program::widened_buffer: tensor was not declared to widen()");
  }
  if (b <= 0 || b % im.base_b != 0) {
    throw std::invalid_argument(
        "Program::widened_buffer: b must be a positive multiple of the "
        "base batch");
  }
  const int64_t f = b / im.base_b;
  const auto slot = static_cast<std::size_t>(it->second);
  // Declared slots are externals, and externals always stay f64.
  if (f == 1) return static_cast<real*>(im.buf[slot]);
  return static_cast<real*>(get_wide_ctx(im, f)->buf[slot]);
}

void Program::replay_widened(int64_t b) {
  Impl& im = *impl_;
  if (!im.wide_ready) {
    throw std::logic_error("Program::replay_widened before widen()");
  }
  if (b <= 0 || b % im.base_b != 0) {
    throw std::invalid_argument(
        "Program::replay_widened: b must be a positive multiple of the "
        "base batch");
  }
  const int64_t f = b / im.base_b;
  if (f == 1) {
    // Base width: the declared tensors' own payloads are the io buffers.
    replay();
    im.max_widen_batch = std::max(im.max_widen_batch, b);
    return;
  }
  Impl::WideContext& ctx = *get_wide_ctx(im, f);
  if (use_parallel_replay(im)) {
    // The master wave schedule is valid for every width: wide contexts
    // drop arena aliasing (fresh per-slot buffers), so their hazards are
    // a subset of the master's.
    PlanPool::instance().run(im, ctx.steps.data(), ctx.buf.data(),
                             ctx.slot_len.data(), ctx.bplans.data(),
                             program_plan_threads());
  } else {
    for (const Step& s : ctx.steps) {
      execute(im, s, ctx.buf.data(), ctx.slot_len.data(), ctx.bplans.data());
    }
  }
  ++im.replays;
  ++im.widened_replays;
  im.max_widen_batch = std::max(im.max_widen_batch, b);
  run_health_check(im, ctx.buf.data(), ctx.slot_len.data());
}

void Program::reset() { impl_->clear_plan(); }

void Program::set_compute_dtype(DType dt) { impl_->policy_dt = dt; }

DType Program::compute_dtype() const { return impl_->policy_dt; }

Program::Stats Program::stats() const {
  const Impl& im = *impl_;
  Stats st;
  st.steps = im.steps.size();
  st.slots = im.slots.size();
  st.external_slots = im.external_slots;
  st.arena_bytes = im.arena_bytes;
  st.pinned_bytes = im.pinned_bytes;
  st.fused_steps = im.fused_steps;
  st.fused_ops = im.fused_ops;
  st.cast_steps = im.cast_steps;
  st.optim_steps = im.adam_params.size() + im.lamb_params.size();
  st.waves = im.waves.size();
  st.wide_instances = im.wide_ctxs.size();
  st.max_widen_batch = im.max_widen_batch;
  st.capture_ms = im.capture_ms;
  st.health_checks = im.health_checks;
  st.health_trips = im.health_trips;
  st.captures = im.captures;
  st.replays = im.replays;
  st.widened_replays = im.widened_replays;
  return st;
}

}  // namespace mf::ad
