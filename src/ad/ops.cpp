#include "ad/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mf::ad::ops {

namespace {

constexpr real kGeluCoeff = 0.7978845608028654;  // sqrt(2/pi)

/// Iterates an output shape while mapping each output element to the flat
/// offsets of two broadcast operands.
struct BroadcastIter {
  explicit BroadcastIter(const Shape& out, const Shape& a, const Shape& b)
      : out_shape(out) {
    const std::size_t nd = out.size();
    a_strides.assign(nd, 0);
    b_strides.assign(nd, 0);
    const auto sa = strides_of(a);
    const auto sb = strides_of(b);
    const std::size_t oa = nd - a.size();
    const std::size_t ob = nd - b.size();
    for (std::size_t d = 0; d < nd; ++d) {
      if (d >= oa && a[d - oa] != 1) a_strides[d] = sa[d - oa];
      if (d >= ob && b[d - ob] != 1) b_strides[d] = sb[d - ob];
    }
  }

  template <typename F>
  void run(int64_t n, F&& f) const {
    const std::size_t nd = out_shape.size();
    std::vector<int64_t> idx(nd, 0);
    int64_t ai = 0, bi = 0;
    for (int64_t i = 0; i < n; ++i) {
      f(i, ai, bi);
      // increment multi-index (row-major)
      for (int64_t d = static_cast<int64_t>(nd) - 1; d >= 0; --d) {
        idx[d]++;
        ai += a_strides[d];
        bi += b_strides[d];
        if (idx[d] < out_shape[d]) break;
        ai -= a_strides[d] * out_shape[d];
        bi -= b_strides[d] * out_shape[d];
        idx[d] = 0;
      }
    }
  }

  Shape out_shape;
  std::vector<int64_t> a_strides, b_strides;
};

template <typename F>
Tensor elementwise_binary_fwd(const Tensor& a, const Tensor& b, F&& f) {
  const Shape out_shape = broadcast_shape(a.shape(), b.shape());
  Tensor out = Tensor::zeros(out_shape);
  const int64_t n = out.numel();
  if (a.shape() == b.shape()) {
    const real* pa = a.data();
    const real* pb = b.data();
    real* po = out.data();
    for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
  } else {
    BroadcastIter it(out_shape, a.shape(), b.shape());
    const real* pa = a.data();
    const real* pb = b.data();
    real* po = out.data();
    it.run(n, [&](int64_t i, int64_t ai, int64_t bi) { po[i] = f(pa[ai], pb[bi]); });
  }
  return out;
}

template <typename F>
Tensor elementwise_unary(const Tensor& a, const std::string& name, F&& f,
                         LambdaNode::BackwardFn backward) {
  Tensor out = Tensor::zeros(a.shape());
  const real* pa = a.data();
  real* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return record(std::move(out), name, {a}, std::move(backward));
}

}  // namespace

Shape broadcast_shape(const Shape& a, const Shape& b) {
  const std::size_t nd = std::max(a.size(), b.size());
  Shape out(nd, 1);
  for (std::size_t d = 0; d < nd; ++d) {
    const int64_t da = d < nd - a.size() ? 1 : a[d - (nd - a.size())];
    const int64_t db = d < nd - b.size() ? 1 : b[d - (nd - b.size())];
    if (da != db && da != 1 && db != 1) {
      throw std::invalid_argument("cannot broadcast " + shape_str(a) + " with " +
                                  shape_str(b));
    }
    out[d] = std::max(da, db);
  }
  return out;
}

Tensor broadcast_to(const Tensor& t, const Shape& shape) {
  if (t.shape() == shape) return t;
  // Validate by broadcasting.
  if (broadcast_shape(t.shape(), shape) != shape) {
    throw std::invalid_argument("broadcast_to: " + shape_str(t.shape()) +
                                " -> " + shape_str(shape));
  }
  Tensor out = Tensor::zeros(shape);
  BroadcastIter it(shape, t.shape(), t.shape());
  const real* p = t.data();
  real* po = out.data();
  it.run(out.numel(), [&](int64_t i, int64_t ai, int64_t) { po[i] = p[ai]; });
  const Shape orig = t.shape();
  return record(std::move(out), "broadcast_to", {t},
                [orig](const Tensor& g, const std::vector<bool>&) {
                  return std::vector<Tensor>{reduce_to(g, orig)};
                });
}

Tensor reduce_to(const Tensor& t, const Shape& shape) {
  if (t.shape() == shape) return t;
  if (broadcast_shape(shape, t.shape()) != t.shape()) {
    throw std::invalid_argument("reduce_to: " + shape_str(t.shape()) + " -> " +
                                shape_str(shape));
  }
  Tensor out = Tensor::zeros(shape);
  BroadcastIter it(t.shape(), shape, shape);
  const real* p = t.data();
  real* po = out.data();
  it.run(t.numel(), [&](int64_t i, int64_t oi, int64_t) { po[oi] += p[i]; });
  const Shape orig = t.shape();
  return record(std::move(out), "reduce_to", {t},
                [orig](const Tensor& g, const std::vector<bool>&) {
                  return std::vector<Tensor>{broadcast_to(g, orig)};
                });
}

Tensor reshape(const Tensor& t, const Shape& shape) {
  Shape resolved = shape;
  int64_t known = 1;
  int64_t infer = -1;
  for (std::size_t d = 0; d < resolved.size(); ++d) {
    if (resolved[d] == -1) {
      infer = static_cast<int64_t>(d);
    } else {
      known *= resolved[d];
    }
  }
  if (infer >= 0) resolved[static_cast<std::size_t>(infer)] = t.numel() / known;
  if (numel_of(resolved) != t.numel()) {
    throw std::invalid_argument("reshape: cannot view " + shape_str(t.shape()) +
                                " as " + shape_str(resolved));
  }
  Tensor out = Tensor::from_vector(t.vec(), resolved);
  const Shape orig = t.shape();
  return record(std::move(out), "reshape", {t},
                [orig](const Tensor& g, const std::vector<bool>&) {
                  return std::vector<Tensor>{reshape(g, orig)};
                });
}

Tensor transpose(const Tensor& t) {
  if (t.dim() != 2) throw std::invalid_argument("transpose expects 2-D tensor");
  const int64_t m = t.size(0), n = t.size(1);
  Tensor out = Tensor::zeros({n, m});
  const real* p = t.data();
  real* po = out.data();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) po[j * m + i] = p[i * n + j];
  return record(std::move(out), "transpose", {t},
                [](const Tensor& g, const std::vector<bool>&) {
                  return std::vector<Tensor>{transpose(g)};
                });
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = elementwise_binary_fwd(a, b, [](real x, real y) { return x + y; });
  const Shape sa = a.shape(), sb = b.shape();
  return record(std::move(out), "add", {a, b},
                [sa, sb](const Tensor& g, const std::vector<bool>& needs) {
                  std::vector<Tensor> gs(2);
                  if (needs[0]) gs[0] = reduce_to(g, sa);
                  if (needs[1]) gs[1] = reduce_to(g, sb);
                  return gs;
                });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = elementwise_binary_fwd(a, b, [](real x, real y) { return x - y; });
  const Shape sa = a.shape(), sb = b.shape();
  return record(std::move(out), "sub", {a, b},
                [sa, sb](const Tensor& g, const std::vector<bool>& needs) {
                  std::vector<Tensor> gs(2);
                  if (needs[0]) gs[0] = reduce_to(g, sa);
                  if (needs[1]) gs[1] = reduce_to(neg(g), sb);
                  return gs;
                });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = elementwise_binary_fwd(a, b, [](real x, real y) { return x * y; });
  const Shape sa = a.shape(), sb = b.shape();
  return record(std::move(out), "mul", {a, b},
                [a, b, sa, sb](const Tensor& g, const std::vector<bool>& needs) {
                  std::vector<Tensor> gs(2);
                  if (needs[0]) gs[0] = reduce_to(mul(g, b), sa);
                  if (needs[1]) gs[1] = reduce_to(mul(g, a), sb);
                  return gs;
                });
}

Tensor div(const Tensor& a, const Tensor& b) {
  Tensor out = elementwise_binary_fwd(a, b, [](real x, real y) { return x / y; });
  const Shape sa = a.shape(), sb = b.shape();
  return record(std::move(out), "div", {a, b},
                [a, b, sa, sb](const Tensor& g, const std::vector<bool>& needs) {
                  std::vector<Tensor> gs(2);
                  if (needs[0]) gs[0] = reduce_to(div(g, b), sa);
                  if (needs[1]) {
                    gs[1] = reduce_to(neg(div(mul(g, a), mul(b, b))), sb);
                  }
                  return gs;
                });
}

Tensor add_scalar(const Tensor& a, real s) {
  return elementwise_unary(
      a, "add_scalar", [s](real x) { return x + s; },
      [](const Tensor& g, const std::vector<bool>&) {
        return std::vector<Tensor>{g};
      });
}

Tensor mul_scalar(const Tensor& a, real s) {
  return elementwise_unary(
      a, "mul_scalar", [s](real x) { return x * s; },
      [s](const Tensor& g, const std::vector<bool>&) {
        return std::vector<Tensor>{mul_scalar(g, s)};
      });
}

Tensor pow_scalar(const Tensor& a, real exponent) {
  return elementwise_unary(
      a, "pow_scalar", [exponent](real x) { return std::pow(x, exponent); },
      [a, exponent](const Tensor& g, const std::vector<bool>&) {
        Tensor d = mul_scalar(pow_scalar(a, exponent - 1), exponent);
        return std::vector<Tensor>{mul(g, d)};
      });
}

Tensor neg(const Tensor& a) {
  return elementwise_unary(
      a, "neg", [](real x) { return -x; },
      [](const Tensor& g, const std::vector<bool>&) {
        return std::vector<Tensor>{neg(g)};
      });
}

Tensor exp(const Tensor& a) {
  return elementwise_unary(
      a, "exp", [](real x) { return std::exp(x); },
      [a](const Tensor& g, const std::vector<bool>&) {
        return std::vector<Tensor>{mul(g, exp(a))};
      });
}

Tensor log(const Tensor& a) {
  return elementwise_unary(
      a, "log", [](real x) { return std::log(x); },
      [a](const Tensor& g, const std::vector<bool>&) {
        return std::vector<Tensor>{div(g, a)};
      });
}

Tensor sqrt(const Tensor& a) {
  return elementwise_unary(
      a, "sqrt", [](real x) { return std::sqrt(x); },
      [a](const Tensor& g, const std::vector<bool>&) {
        return std::vector<Tensor>{mul(g, mul_scalar(pow_scalar(a, -0.5), 0.5))};
      });
}

Tensor tanh(const Tensor& a) {
  return elementwise_unary(
      a, "tanh", [](real x) { return std::tanh(x); },
      [a](const Tensor& g, const std::vector<bool>&) {
        Tensor y = tanh(a);
        Tensor one_minus = add_scalar(neg(mul(y, y)), 1.0);
        return std::vector<Tensor>{mul(g, one_minus)};
      });
}

Tensor abs(const Tensor& a) {
  return elementwise_unary(
      a, "abs", [](real x) { return std::abs(x); },
      [a](const Tensor& g, const std::vector<bool>&) {
        // sign(a) treated as a constant (derivative zero a.e.)
        Tensor s = Tensor::zeros(a.shape());
        for (int64_t i = 0; i < a.numel(); ++i) {
          s.flat(i) = a.flat(i) > 0 ? 1.0 : (a.flat(i) < 0 ? -1.0 : 0.0);
        }
        return std::vector<Tensor>{mul(g, s)};
      });
}

Tensor square(const Tensor& a) { return mul(a, a); }

Tensor gelu(const Tensor& a) {
  // 0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 x^3)))
  Tensor x3 = mul(mul(a, a), a);
  Tensor inner = mul_scalar(add(a, mul_scalar(x3, 0.044715)), kGeluCoeff);
  Tensor t = tanh(inner);
  return mul_scalar(mul(a, add_scalar(t, 1.0)), 0.5);
}

Tensor sigmoid(const Tensor& a) {
  // 0.5 * (1 + tanh(x/2)) — compositional, all orders differentiable.
  return mul_scalar(add_scalar(tanh(mul_scalar(a, 0.5)), 1.0), 0.5);
}

Tensor sum(const Tensor& a) {
  real acc = 0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += a.flat(i);
  Tensor out = Tensor::scalar(acc);
  const Shape orig = a.shape();
  return record(std::move(out), "sum", {a},
                [orig](const Tensor& g, const std::vector<bool>&) {
                  return std::vector<Tensor>{broadcast_to(reshape(g, Shape(orig.size(), 1)), orig)};
                });
}

Tensor mean(const Tensor& a) {
  return mul_scalar(sum(a), 1.0 / static_cast<real>(a.numel()));
}

Tensor sum_axis(const Tensor& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.dim();
  const Shape& s = a.shape();
  Shape kept = s;
  kept[static_cast<std::size_t>(axis)] = 1;
  // outer x axis x inner decomposition
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= s[static_cast<std::size_t>(d)];
  for (int64_t d = axis + 1; d < a.dim(); ++d) inner *= s[static_cast<std::size_t>(d)];
  const int64_t n_axis = s[static_cast<std::size_t>(axis)];
  Tensor out = Tensor::zeros(kept);
  const real* p = a.data();
  real* po = out.data();
  for (int64_t o = 0; o < outer; ++o)
    for (int64_t k = 0; k < n_axis; ++k)
      for (int64_t i = 0; i < inner; ++i)
        po[o * inner + i] += p[(o * n_axis + k) * inner + i];
  const Shape orig = s;
  Tensor res = record(std::move(out), "sum_axis", {a},
                      [orig](const Tensor& g, const std::vector<bool>&) {
                        return std::vector<Tensor>{broadcast_to(g, orig)};
                      });
  if (!keepdim) {
    Shape squeezed;
    for (int64_t d = 0; d < a.dim(); ++d) {
      if (d != axis) squeezed.push_back(s[static_cast<std::size_t>(d)]);
    }
    res = reshape(res, squeezed);
  }
  return res;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (b.dim() != 2) throw std::invalid_argument("matmul: rhs must be 2-D");
  if (a.dim() < 2) throw std::invalid_argument("matmul: lhs must be >= 2-D");
  const int64_t k = a.size(-1);
  if (k != b.size(0)) {
    throw std::invalid_argument("matmul: inner dims " + shape_str(a.shape()) +
                                " x " + shape_str(b.shape()));
  }
  const int64_t n = b.size(1);
  const int64_t m = a.numel() / k;
  Shape out_shape = a.shape();
  out_shape.back() = n;
  Tensor out = Tensor::zeros(out_shape);
  const real* pa = a.data();
  const real* pb = b.data();
  real* po = out.data();
  // i-k-j loop order: unit-stride inner loops.
  for (int64_t i = 0; i < m; ++i) {
    const real* arow = pa + i * k;
    real* orow = po + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const real av = arow[kk];
      if (av == 0) continue;
      const real* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  const Shape sa = a.shape();
  return record(std::move(out), "matmul", {a, b},
                [a, b, sa, k](const Tensor& g, const std::vector<bool>& needs) {
                  std::vector<Tensor> gs(2);
                  if (needs[0]) gs[0] = matmul(g, transpose(b));
                  if (needs[1]) {
                    Tensor a2 = reshape(a, {-1, k});
                    Tensor g2 = reshape(g, {a2.size(0), -1});
                    gs[1] = matmul(transpose(a2), g2);
                  }
                  return gs;
                });
}

Tensor slice(const Tensor& t, int64_t axis, int64_t start, int64_t len) {
  if (axis < 0) axis += t.dim();
  const Shape& s = t.shape();
  const int64_t n_axis = s[static_cast<std::size_t>(axis)];
  if (start < 0 || start + len > n_axis) {
    throw std::out_of_range("slice out of range");
  }
  Shape out_shape = s;
  out_shape[static_cast<std::size_t>(axis)] = len;
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= s[static_cast<std::size_t>(d)];
  for (int64_t d = axis + 1; d < t.dim(); ++d) inner *= s[static_cast<std::size_t>(d)];
  Tensor out = Tensor::zeros(out_shape);
  const real* p = t.data();
  real* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(po + o * len * inner, p + (o * n_axis + start) * inner,
                static_cast<std::size_t>(len * inner) * sizeof(real));
  }
  const Shape orig = s;
  return record(std::move(out), "slice", {t},
                [orig, axis, start, len, outer, inner, n_axis](
                    const Tensor& g, const std::vector<bool>&) {
                  // Embed g into zeros of the original shape ("pad").
                  Tensor padded = Tensor::zeros(orig);
                  const real* pg = g.data();
                  real* pp = padded.data();
                  for (int64_t o = 0; o < outer; ++o) {
                    std::memcpy(pp + (o * n_axis + start) * inner,
                                pg + o * len * inner,
                                static_cast<std::size_t>(len * inner) * sizeof(real));
                  }
                  Tensor res = record(
                      std::move(padded), "slice_backward", {g},
                      [axis, start, len](const Tensor& gg, const std::vector<bool>&) {
                        return std::vector<Tensor>{slice(gg, axis, start, len)};
                      });
                  return std::vector<Tensor>{res};
                });
}

Tensor concat(const std::vector<Tensor>& parts, int64_t axis) {
  if (parts.empty()) throw std::invalid_argument("concat: empty input");
  if (axis < 0) axis += parts[0].dim();
  Shape out_shape = parts[0].shape();
  int64_t total = 0;
  for (const auto& p : parts) total += p.size(axis);
  out_shape[static_cast<std::size_t>(axis)] = total;
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= out_shape[static_cast<std::size_t>(d)];
  for (int64_t d = axis + 1; d < static_cast<int64_t>(out_shape.size()); ++d)
    inner *= out_shape[static_cast<std::size_t>(d)];
  Tensor out = Tensor::zeros(out_shape);
  real* po = out.data();
  int64_t offset = 0;
  for (const auto& p : parts) {
    const int64_t len = p.size(axis);
    const real* pp = p.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(po + (o * total + offset) * inner, pp + o * len * inner,
                  static_cast<std::size_t>(len * inner) * sizeof(real));
    }
    offset += len;
  }
  std::vector<int64_t> lens;
  for (const auto& p : parts) lens.push_back(p.size(axis));
  return record(std::move(out), "concat", parts,
                [axis, lens](const Tensor& g, const std::vector<bool>& needs) {
                  std::vector<Tensor> gs(lens.size());
                  int64_t off = 0;
                  for (std::size_t i = 0; i < lens.size(); ++i) {
                    if (needs[i]) gs[i] = slice(g, axis, off, lens[i]);
                    off += lens[i];
                  }
                  return gs;
                });
}

namespace {

/// Raw (non-recording) conv1d gradient kernels.
Tensor conv1d_grad_input(const Tensor& grad_out, const Tensor& weight,
                         int64_t padding, int64_t L) {
  const int64_t B = grad_out.size(0), Cout = grad_out.size(1),
                Lout = grad_out.size(2);
  const int64_t Cin = weight.size(1), K = weight.size(2);
  Tensor gi = Tensor::zeros({B, Cin, L});
  const real* pg = grad_out.data();
  const real* pw = weight.data();
  real* po = gi.data();
  for (int64_t b = 0; b < B; ++b)
    for (int64_t co = 0; co < Cout; ++co)
      for (int64_t t = 0; t < Lout; ++t) {
        const real g = pg[(b * Cout + co) * Lout + t];
        if (g == 0) continue;
        for (int64_t ci = 0; ci < Cin; ++ci)
          for (int64_t k = 0; k < K; ++k) {
            const int64_t src = t + k - padding;
            if (src < 0 || src >= L) continue;
            po[(b * Cin + ci) * L + src] += g * pw[(co * Cin + ci) * K + k];
          }
      }
  return gi;
}

Tensor conv1d_grad_weight(const Tensor& grad_out, const Tensor& input,
                          int64_t padding, int64_t Cout, int64_t K) {
  const int64_t B = input.size(0), Cin = input.size(1), L = input.size(2);
  const int64_t Lout = grad_out.size(2);
  Tensor gw = Tensor::zeros({Cout, Cin, K});
  const real* pg = grad_out.data();
  const real* pi = input.data();
  real* po = gw.data();
  for (int64_t b = 0; b < B; ++b)
    for (int64_t co = 0; co < Cout; ++co)
      for (int64_t t = 0; t < Lout; ++t) {
        const real g = pg[(b * Cout + co) * Lout + t];
        if (g == 0) continue;
        for (int64_t ci = 0; ci < Cin; ++ci)
          for (int64_t k = 0; k < K; ++k) {
            const int64_t src = t + k - padding;
            if (src < 0 || src >= L) continue;
            po[(co * Cin + ci) * K + k] += g * pi[(b * Cin + ci) * L + src];
          }
      }
  return gw;
}

}  // namespace

Tensor conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t padding) {
  if (input.dim() != 3 || weight.dim() != 3) {
    throw std::invalid_argument("conv1d expects input [B,C,L], weight [O,C,K]");
  }
  const int64_t B = input.size(0), Cin = input.size(1), L = input.size(2);
  const int64_t Cout = weight.size(0), K = weight.size(2);
  if (weight.size(1) != Cin) throw std::invalid_argument("conv1d channel mismatch");
  const int64_t Lout = L + 2 * padding - K + 1;
  if (Lout <= 0) throw std::invalid_argument("conv1d: kernel larger than input");
  Tensor out = Tensor::zeros({B, Cout, Lout});
  const real* pi = input.data();
  const real* pw = weight.data();
  const real* pb = bias.defined() ? bias.data() : nullptr;
  real* po = out.data();
  for (int64_t b = 0; b < B; ++b)
    for (int64_t co = 0; co < Cout; ++co) {
      real* orow = po + (b * Cout + co) * Lout;
      if (pb) {
        for (int64_t t = 0; t < Lout; ++t) orow[t] = pb[co];
      }
      for (int64_t ci = 0; ci < Cin; ++ci) {
        const real* irow = pi + (b * Cin + ci) * L;
        const real* wrow = pw + (co * Cin + ci) * K;
        for (int64_t t = 0; t < Lout; ++t) {
          real acc = 0;
          const int64_t k0 = std::max<int64_t>(0, padding - t);
          const int64_t k1 = std::min<int64_t>(K, L + padding - t);
          for (int64_t k = k0; k < k1; ++k) acc += wrow[k] * irow[t + k - padding];
          orow[t] += acc;
        }
      }
    }
  std::vector<Tensor> ins = {input, weight};
  if (bias.defined()) ins.push_back(bias);
  const bool has_bias = bias.defined();
  return record(
      std::move(out), "conv1d", ins,
      [input, weight, padding, L, Cout, K, has_bias](
          const Tensor& g, const std::vector<bool>& needs) {
        // First-order only: these gradients do not record further graph.
        std::vector<Tensor> gs(has_bias ? 3 : 2);
        if (needs[0]) gs[0] = conv1d_grad_input(g, weight, padding, L);
        if (needs[1]) gs[1] = conv1d_grad_weight(g, input, padding, Cout, K);
        if (has_bias && needs[2]) {
          // Sum g over batch and length.
          const int64_t B2 = g.size(0), Lout2 = g.size(2);
          Tensor gb = Tensor::zeros({Cout});
          const real* pg = g.data();
          for (int64_t b = 0; b < B2; ++b)
            for (int64_t co = 0; co < Cout; ++co)
              for (int64_t t = 0; t < Lout2; ++t)
                gb.flat(co) += pg[(b * Cout + co) * Lout2 + t];
          gs[2] = gb;
        }
        return gs;
      });
}

real reduce_max_abs(const Tensor& t) {
  real m = 0;
  for (int64_t i = 0; i < t.numel(); ++i) m = std::max(m, std::abs(t.flat(i)));
  return m;
}

real mse(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) throw std::invalid_argument("mse: size mismatch");
  real acc = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const real d = a.flat(i) - b.flat(i);
    acc += d * d;
  }
  return acc / static_cast<real>(a.numel());
}

real mae(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) throw std::invalid_argument("mae: size mismatch");
  real acc = 0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += std::abs(a.flat(i) - b.flat(i));
  return acc / static_cast<real>(a.numel());
}

}  // namespace mf::ad::ops
