#include "ad/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ad/kernels.hpp"
#include "ad/program.hpp"
#include "ad/scalar_fns.hpp"
#include "ad/small_shape.hpp"

namespace mf::ad::ops {

namespace {

using sfn::kGeluCoeff;

// Forward kernels run through the shared sfn functors and report to the
// program capture hooks (no-ops outside Program::capture), so a captured
// step replays the exact same instructions the eager op executed.

template <typename F>
Tensor elementwise_binary_fwd(const Tensor& a, const Tensor& b,
                              prog::Binary id, F&& f) {
  const Shape out_shape = broadcast_shape(a.shape(), b.shape());
  Tensor out = Tensor::zeros(out_shape);
  if (a.shape() == b.shape()) {
    kernels::map_binary(a.data(), b.data(), out.data(), out.numel(), f);
    if (prog::capturing()) prog::on_binary(id, a, b, out);
  } else {
    kernels::BroadcastPlan plan(out_shape, a.shape(), b.shape());
    kernels::map_broadcast(plan, a.data(), b.data(), out.data(), f);
    if (prog::capturing()) prog::on_binary_bcast(id, plan, a, b, out);
  }
  return out;
}

template <typename F, typename B>
Tensor elementwise_unary(const Tensor& a, const char* name, prog::Unary id,
                         real scalar, F&& f, B&& backward) {
  Tensor out = Tensor::zeros(a.shape());
  kernels::map_unary(a.data(), out.data(), a.numel(), f);
  if (prog::capturing()) prog::on_unary(id, scalar, a, out);
  return record(std::move(out), name, {a}, std::forward<B>(backward));
}

// ---- typed tape nodes for the hottest ops ----
//
// These carry no captured state: everything the backward needs is read
// from the stored inputs, so recording one is a single arena bump with no
// shape copies or closures.

struct AddNode final : Node {
  AddNode() : Node("add") {}
  std::vector<Tensor> backward(const Tensor& g,
                               const std::vector<bool>& needs) override {
    std::vector<Tensor> gs(2);
    if (needs[0]) gs[0] = reduce_to(g, input(0).shape());
    if (needs[1]) gs[1] = reduce_to(g, input(1).shape());
    return gs;
  }
};

struct MulNode final : Node {
  MulNode() : Node("mul") {}
  std::vector<Tensor> backward(const Tensor& g,
                               const std::vector<bool>& needs) override {
    std::vector<Tensor> gs(2);
    if (needs[0]) gs[0] = reduce_to(mul(g, input(1)), input(0).shape());
    if (needs[1]) gs[1] = reduce_to(mul(g, input(0)), input(1).shape());
    return gs;
  }
};

struct MatmulNode final : Node {
  MatmulNode() : Node("matmul") {}
  std::vector<Tensor> backward(const Tensor& g,
                               const std::vector<bool>& needs) override {
    const Tensor& a = input(0);
    const Tensor& b = input(1);
    std::vector<Tensor> gs(2);
    if (needs[0]) gs[0] = matmul(g, transpose(b));
    if (needs[1]) {
      Tensor a2 = reshape(a, {-1, a.size(-1)});
      Tensor g2 = reshape(g, {a2.size(0), -1});
      gs[1] = matmul(transpose(a2), g2);
    }
    return gs;
  }
};

struct LinearNode final : Node {
  LinearNode() : Node("linear") {}
  std::vector<Tensor> backward(const Tensor& g,
                               const std::vector<bool>& needs) override {
    const Tensor& x = input(0);
    const Tensor& w = input(1);
    const bool has_bias = num_inputs() == 3;
    std::vector<Tensor> gs(has_bias ? 3 : 2);
    if (needs[0]) gs[0] = matmul(g, transpose(w));
    if (needs[1]) {
      Tensor x2 = reshape(x, {-1, x.size(-1)});
      Tensor g2 = reshape(g, {x2.size(0), -1});
      gs[1] = matmul(transpose(x2), g2);
    }
    if (has_bias && needs[2]) gs[2] = reduce_to(g, input(2).shape());
    return gs;
  }
};

struct GeluNode final : Node {
  GeluNode() : Node("gelu") {}
  std::vector<Tensor> backward(const Tensor& g,
                               const std::vector<bool>&) override {
    const Tensor& a = input(0);
    Tensor x2 = mul(a, a);
    Tensor u = mul_scalar(add(a, mul_scalar(mul(x2, a), 0.044715)), kGeluCoeff);
    Tensor t = tanh(u);
    // du/dx = sqrt(2/pi) * (1 + 3 * 0.044715 x^2)
    Tensor dudx = mul_scalar(add_scalar(mul_scalar(x2, 3 * 0.044715), 1.0),
                             kGeluCoeff);
    Tensor sech2 = add_scalar(neg(mul(t, t)), 1.0);
    Tensor d = add(mul_scalar(add_scalar(t, 1.0), 0.5),
                   mul_scalar(mul(mul(a, sech2), dudx), 0.5));
    return std::vector<Tensor>{mul(g, d)};
  }
};

}  // namespace

Shape broadcast_shape(const Shape& a, const Shape& b) {
  const std::size_t nd = std::max(a.size(), b.size());
  Shape out(nd, 1);
  for (std::size_t d = 0; d < nd; ++d) {
    const int64_t da = d < nd - a.size() ? 1 : a[d - (nd - a.size())];
    const int64_t db = d < nd - b.size() ? 1 : b[d - (nd - b.size())];
    if (da != db && da != 1 && db != 1) {
      throw std::invalid_argument("cannot broadcast " + shape_str(a) + " with " +
                                  shape_str(b));
    }
    out[d] = std::max(da, db);
  }
  return out;
}

Tensor broadcast_to(const Tensor& t, const Shape& shape) {
  if (t.shape() == shape) return t;
  // Validate by broadcasting.
  if (broadcast_shape(t.shape(), shape) != shape) {
    throw std::invalid_argument("broadcast_to: " + shape_str(t.shape()) +
                                " -> " + shape_str(shape));
  }
  Tensor out = Tensor::zeros(shape);
  kernels::BroadcastPlan plan(shape, t.shape(), t.shape());
  kernels::broadcast_copy(plan, t.data(), out.data());
  if (prog::capturing()) prog::on_broadcast_copy(plan, t, out);
  const SmallShape orig = t.shape();
  return record(std::move(out), "broadcast_to", {t},
                [orig](const Tensor& g, const std::vector<bool>&) {
                  return std::vector<Tensor>{reduce_to(g, orig.to_shape())};
                });
}

Tensor reduce_to(const Tensor& t, const Shape& shape) {
  if (t.shape() == shape) return t;
  if (broadcast_shape(shape, t.shape()) != t.shape()) {
    throw std::invalid_argument("reduce_to: " + shape_str(t.shape()) + " -> " +
                                shape_str(shape));
  }
  Tensor out = Tensor::zeros(shape);
  kernels::ReducePlan plan(t.shape(), shape);
  kernels::reduce_broadcast(plan, t.data(), out.data());
  if (prog::capturing()) prog::on_reduce(plan, t, out);
  const SmallShape orig = t.shape();
  return record(std::move(out), "reduce_to", {t},
                [orig](const Tensor& g, const std::vector<bool>&) {
                  return std::vector<Tensor>{broadcast_to(g, orig.to_shape())};
                });
}

Tensor reshape(const Tensor& t, const Shape& shape) {
  Shape resolved = shape;
  int64_t known = 1;
  int64_t infer = -1;
  for (std::size_t d = 0; d < resolved.size(); ++d) {
    if (resolved[d] == -1) {
      infer = static_cast<int64_t>(d);
    } else {
      known *= resolved[d];
    }
  }
  if (infer >= 0) resolved[static_cast<std::size_t>(infer)] = t.numel() / known;
  if (numel_of(resolved) != t.numel()) {
    throw std::invalid_argument("reshape: cannot view " + shape_str(t.shape()) +
                                " as " + shape_str(resolved));
  }
  Tensor out = Tensor::from_data(t.data(), resolved);
  if (prog::capturing()) prog::on_copy(t, out);
  const SmallShape orig = t.shape();
  return record(std::move(out), "reshape", {t},
                [orig](const Tensor& g, const std::vector<bool>&) {
                  return std::vector<Tensor>{reshape(g, orig.to_shape())};
                });
}

Tensor transpose(const Tensor& t) {
  if (t.dim() != 2) throw std::invalid_argument("transpose expects 2-D tensor");
  const int64_t m = t.size(0), n = t.size(1);
  Tensor out = Tensor::zeros({n, m});
  kernels::transpose(t.data(), out.data(), m, n);
  if (prog::capturing()) prog::on_transpose(t, out, m, n);
  return record(std::move(out), "transpose", {t},
                [](const Tensor& g, const std::vector<bool>&) {
                  return std::vector<Tensor>{transpose(g)};
                });
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = elementwise_binary_fwd(a, b, prog::Binary::kAdd, sfn::Add{});
  const Tensor ins[2] = {a, b};
  return record_typed<AddNode>(std::move(out), ins, 2);
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = elementwise_binary_fwd(a, b, prog::Binary::kSub, sfn::Sub{});
  const SmallShape sa = a.shape(), sb = b.shape();
  return record(std::move(out), "sub", {a, b},
                [sa, sb](const Tensor& g, const std::vector<bool>& needs) {
                  std::vector<Tensor> gs(2);
                  if (needs[0]) gs[0] = reduce_to(g, sa.to_shape());
                  if (needs[1]) gs[1] = reduce_to(neg(g), sb.to_shape());
                  return gs;
                });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = elementwise_binary_fwd(a, b, prog::Binary::kMul, sfn::Mul{});
  const Tensor ins[2] = {a, b};
  return record_typed<MulNode>(std::move(out), ins, 2);
}

Tensor div(const Tensor& a, const Tensor& b) {
  Tensor out = elementwise_binary_fwd(a, b, prog::Binary::kDiv, sfn::Div{});
  const SmallShape sa = a.shape(), sb = b.shape();
  return record(std::move(out), "div", {a, b},
                [a, b, sa, sb](const Tensor& g, const std::vector<bool>& needs) {
                  std::vector<Tensor> gs(2);
                  if (needs[0]) gs[0] = reduce_to(div(g, b), sa.to_shape());
                  if (needs[1]) {
                    gs[1] = reduce_to(neg(div(mul(g, a), mul(b, b))),
                                      sb.to_shape());
                  }
                  return gs;
                });
}

Tensor add_scalar(const Tensor& a, real s) {
  return elementwise_unary(
      a, "add_scalar", prog::Unary::kAddScalar, s, sfn::AddScalar{s},
      [](const Tensor& g, const std::vector<bool>&) {
        return std::vector<Tensor>{g};
      });
}

Tensor mul_scalar(const Tensor& a, real s) {
  return elementwise_unary(
      a, "mul_scalar", prog::Unary::kMulScalar, s, sfn::MulScalar{s},
      [s](const Tensor& g, const std::vector<bool>&) {
        return std::vector<Tensor>{mul_scalar(g, s)};
      });
}

Tensor pow_scalar(const Tensor& a, real exponent) {
  return elementwise_unary(
      a, "pow_scalar", prog::Unary::kPowScalar, exponent,
      sfn::PowScalar{exponent},
      [a, exponent](const Tensor& g, const std::vector<bool>&) {
        Tensor d = mul_scalar(pow_scalar(a, exponent - 1), exponent);
        return std::vector<Tensor>{mul(g, d)};
      });
}

Tensor neg(const Tensor& a) {
  return elementwise_unary(
      a, "neg", prog::Unary::kNeg, 0, sfn::Neg{},
      [](const Tensor& g, const std::vector<bool>&) {
        return std::vector<Tensor>{neg(g)};
      });
}

Tensor exp(const Tensor& a) {
  return elementwise_unary(
      a, "exp", prog::Unary::kExp, 0, sfn::Exp{},
      [a](const Tensor& g, const std::vector<bool>&) {
        return std::vector<Tensor>{mul(g, exp(a))};
      });
}

Tensor log(const Tensor& a) {
  return elementwise_unary(
      a, "log", prog::Unary::kLog, 0, sfn::Log{},
      [a](const Tensor& g, const std::vector<bool>&) {
        return std::vector<Tensor>{div(g, a)};
      });
}

Tensor sqrt(const Tensor& a) {
  return elementwise_unary(
      a, "sqrt", prog::Unary::kSqrt, 0, sfn::Sqrt{},
      [a](const Tensor& g, const std::vector<bool>&) {
        return std::vector<Tensor>{mul(g, mul_scalar(pow_scalar(a, -0.5), 0.5))};
      });
}

Tensor tanh(const Tensor& a) {
  return elementwise_unary(
      a, "tanh", prog::Unary::kTanh, 0, sfn::Tanh{},
      [a](const Tensor& g, const std::vector<bool>&) {
        Tensor y = tanh(a);
        Tensor one_minus = add_scalar(neg(mul(y, y)), 1.0);
        return std::vector<Tensor>{mul(g, one_minus)};
      });
}

Tensor abs(const Tensor& a) {
  return elementwise_unary(
      a, "abs", prog::Unary::kAbs, 0, sfn::Abs{},
      [a](const Tensor& g, const std::vector<bool>&) {
        // sign(a) treated as a constant (derivative zero a.e.)
        Tensor s = Tensor::zeros(a.shape());
        kernels::map_unary(a.data(), s.data(), a.numel(), sfn::Sign{});
        if (prog::capturing()) prog::on_unary(prog::Unary::kSign, 0, a, s);
        return std::vector<Tensor>{mul(g, s)};
      });
}

Tensor square(const Tensor& a) { return mul(a, a); }

Tensor gelu(const Tensor& a) {
  // 0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 x^3))), fused into one
  // pass. The backward is compositional (recorded ops), so all higher
  // derivatives of the PDE loss still work (see GeluNode).
  Tensor out = Tensor::zeros(a.shape());
  kernels::map_unary(a.data(), out.data(), a.numel(), sfn::Gelu{});
  if (prog::capturing()) prog::on_unary(prog::Unary::kGelu, 0, a, out);
  const Tensor ins[1] = {a};
  return record_typed<GeluNode>(std::move(out), ins, 1);
}

Tensor sigmoid(const Tensor& a) {
  // 0.5 * (1 + tanh(x/2)) — compositional, all orders differentiable.
  return mul_scalar(add_scalar(tanh(mul_scalar(a, 0.5)), 1.0), 0.5);
}

Tensor sum(const Tensor& a) {
  Tensor out = Tensor::scalar(kernels::reduce_sum(a.data(), a.numel()));
  if (prog::capturing()) prog::on_sum_all(a, out);
  const SmallShape orig = a.shape();
  return record(std::move(out), "sum", {a},
                [orig](const Tensor& g, const std::vector<bool>&) {
                  return std::vector<Tensor>{broadcast_to(
                      reshape(g, Shape(orig.size(), 1)), orig.to_shape())};
                });
}

Tensor mean(const Tensor& a) {
  return mul_scalar(sum(a), 1.0 / static_cast<real>(a.numel()));
}

Tensor sum_axis(const Tensor& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.dim();
  const Shape& s = a.shape();
  Shape kept = s;
  kept[static_cast<std::size_t>(axis)] = 1;
  // outer x axis x inner decomposition
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= s[static_cast<std::size_t>(d)];
  for (int64_t d = axis + 1; d < a.dim(); ++d) inner *= s[static_cast<std::size_t>(d)];
  const int64_t n_axis = s[static_cast<std::size_t>(axis)];
  Tensor out = Tensor::zeros(kept);
  kernels::sum_axis(a.data(), out.data(), outer, n_axis, inner);
  if (prog::capturing()) prog::on_sum_axis(a, out, outer, n_axis, inner);
  const SmallShape orig = s;
  Tensor res = record(std::move(out), "sum_axis", {a},
                      [orig](const Tensor& g, const std::vector<bool>&) {
                        return std::vector<Tensor>{
                            broadcast_to(g, orig.to_shape())};
                      });
  if (!keepdim) {
    Shape squeezed;
    for (int64_t d = 0; d < a.dim(); ++d) {
      if (d != axis) squeezed.push_back(s[static_cast<std::size_t>(d)]);
    }
    res = reshape(res, squeezed);
  }
  return res;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (b.dim() != 2) throw std::invalid_argument("matmul: rhs must be 2-D");
  if (a.dim() < 2) throw std::invalid_argument("matmul: lhs must be >= 2-D");
  const int64_t k = a.size(-1);
  if (k != b.size(0)) {
    throw std::invalid_argument("matmul: inner dims " + shape_str(a.shape()) +
                                " x " + shape_str(b.shape()));
  }
  const int64_t n = b.size(1);
  const int64_t m = a.numel() / k;
  Shape out_shape = a.shape();
  out_shape.back() = n;
  Tensor out = Tensor::zeros(out_shape);
  kernels::matmul(a.data(), b.data(), /*bias=*/nullptr, out.data(), m, k, n);
  if (prog::capturing()) prog::on_matmul(a, b, nullptr, out, m, k, n);
  const Tensor ins[2] = {a, b};
  return record_typed<MatmulNode>(std::move(out), ins, 2);
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b) {
  if (w.dim() != 2) throw std::invalid_argument("linear: weight must be 2-D");
  if (x.dim() < 2) throw std::invalid_argument("linear: input must be >= 2-D");
  const int64_t k = x.size(-1);
  if (k != w.size(0)) {
    throw std::invalid_argument("linear: inner dims " + shape_str(x.shape()) +
                                " x " + shape_str(w.shape()));
  }
  const int64_t n = w.size(1);
  if (b.defined() && (b.dim() != 1 || b.size(0) != n)) {
    throw std::invalid_argument("linear: bias must be [" + std::to_string(n) +
                                "]");
  }
  const int64_t m = x.numel() / k;
  Shape out_shape = x.shape();
  out_shape.back() = n;
  Tensor out = Tensor::zeros(out_shape);
  kernels::matmul(x.data(), w.data(), b.defined() ? b.data() : nullptr,
                  out.data(), m, k, n);
  if (prog::capturing()) prog::on_matmul(x, w, &b, out, m, k, n);
  const Tensor ins[3] = {x, w, b};
  return record_typed<LinearNode>(std::move(out), ins,
                                  b.defined() ? std::size_t{3} : std::size_t{2});
}

Tensor slice(const Tensor& t, int64_t axis, int64_t start, int64_t len) {
  if (axis < 0) axis += t.dim();
  const Shape& s = t.shape();
  const int64_t n_axis = s[static_cast<std::size_t>(axis)];
  if (start < 0 || start + len > n_axis) {
    throw std::out_of_range("slice out of range");
  }
  Shape out_shape = s;
  out_shape[static_cast<std::size_t>(axis)] = len;
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= s[static_cast<std::size_t>(d)];
  for (int64_t d = axis + 1; d < t.dim(); ++d) inner *= s[static_cast<std::size_t>(d)];
  Tensor out = Tensor::zeros(out_shape);
  const real* p = t.data();
  real* po = out.data();
  kernels::parallel_for(outer, len * inner, [&](int64_t begin, int64_t end) {
    for (int64_t o = begin; o < end; ++o) {
      std::memcpy(po + o * len * inner, p + (o * n_axis + start) * inner,
                  static_cast<std::size_t>(len * inner) * sizeof(real));
    }
  });
  if (prog::capturing()) {
    prog::on_slice_pack(t, out, outer, len, inner, n_axis, start);
  }
  const SmallShape orig = s;
  return record(std::move(out), "slice", {t},
                [orig, axis, start, len, outer, inner, n_axis](
                    const Tensor& g, const std::vector<bool>&) {
                  // Embed g into zeros of the original shape ("pad").
                  Tensor padded = Tensor::zeros(orig.to_shape());
                  const real* pg = g.data();
                  real* pp = padded.data();
                  for (int64_t o = 0; o < outer; ++o) {
                    std::memcpy(pp + (o * n_axis + start) * inner,
                                pg + o * len * inner,
                                static_cast<std::size_t>(len * inner) * sizeof(real));
                  }
                  if (prog::capturing()) {
                    prog::on_slice_scatter(g, padded, outer, len, inner,
                                           n_axis, start);
                  }
                  Tensor res = record(
                      std::move(padded), "slice_backward", {g},
                      [axis, start, len](const Tensor& gg, const std::vector<bool>&) {
                        return std::vector<Tensor>{slice(gg, axis, start, len)};
                      });
                  return std::vector<Tensor>{res};
                });
}

Tensor concat(const std::vector<Tensor>& parts, int64_t axis) {
  if (parts.empty()) throw std::invalid_argument("concat: empty input");
  if (axis < 0) axis += parts[0].dim();
  Shape out_shape = parts[0].shape();
  int64_t total = 0;
  for (const auto& p : parts) total += p.size(axis);
  out_shape[static_cast<std::size_t>(axis)] = total;
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= out_shape[static_cast<std::size_t>(d)];
  for (int64_t d = axis + 1; d < static_cast<int64_t>(out_shape.size()); ++d)
    inner *= out_shape[static_cast<std::size_t>(d)];
  Tensor out = Tensor::zeros(out_shape);
  real* po = out.data();
  int64_t offset = 0;
  for (const auto& p : parts) {
    const int64_t len = p.size(axis);
    const real* pp = p.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(po + (o * total + offset) * inner, pp + o * len * inner,
                  static_cast<std::size_t>(len * inner) * sizeof(real));
    }
    if (prog::capturing()) {
      prog::on_concat_part(p, out, outer, total, offset, len, inner);
    }
    offset += len;
  }
  if (parts.size() <= SmallShape::kMaxRank) {
    SmallShape lens;
    for (const auto& p : parts) lens.push_back(p.size(axis));
    return record(std::move(out), "concat", parts,
                  [axis, lens](const Tensor& g, const std::vector<bool>& needs) {
                    std::vector<Tensor> gs(lens.size());
                    int64_t off = 0;
                    for (std::size_t i = 0; i < lens.size(); ++i) {
                      if (needs[i]) gs[i] = slice(g, axis, off, lens[i]);
                      off += lens[i];
                    }
                    return gs;
                  });
  }
  // Wide concats are off the hot path; a heap-owned length list is fine.
  std::vector<int64_t> lens;
  for (const auto& p : parts) lens.push_back(p.size(axis));
  return record(std::move(out), "concat", parts,
                [axis, lens](const Tensor& g, const std::vector<bool>& needs) {
                  std::vector<Tensor> gs(lens.size());
                  int64_t off = 0;
                  for (std::size_t i = 0; i < lens.size(); ++i) {
                    if (needs[i]) gs[i] = slice(g, axis, off, lens[i]);
                    off += lens[i];
                  }
                  return gs;
                });
}

Tensor conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t padding) {
  if (input.dim() != 3 || weight.dim() != 3) {
    throw std::invalid_argument("conv1d expects input [B,C,L], weight [O,C,K]");
  }
  const int64_t B = input.size(0), Cin = input.size(1), L = input.size(2);
  const int64_t Cout = weight.size(0), K = weight.size(2);
  if (weight.size(1) != Cin) throw std::invalid_argument("conv1d channel mismatch");
  const int64_t Lout = L + 2 * padding - K + 1;
  if (Lout <= 0) throw std::invalid_argument("conv1d: kernel larger than input");
  Tensor out = Tensor::zeros({B, Cout, Lout});
  kernels::conv1d_forward(input.data(), weight.data(),
                          bias.defined() ? bias.data() : nullptr, out.data(), B,
                          Cin, L, Cout, K, padding);
  if (prog::capturing()) {
    prog::on_conv1d_forward(input, weight, &bias, out, B, Cin, L, Cout, K,
                            padding);
  }
  const bool has_bias = bias.defined();
  const Tensor ins[3] = {input, weight, bias};
  auto backward_fn = [input, weight, padding, B, Cin, L, Cout, K, has_bias](
                         const Tensor& g, const std::vector<bool>& needs) {
    // First-order only: these gradients do not record further graph.
    std::vector<Tensor> gs(has_bias ? 3 : 2);
    if (needs[0]) {
      Tensor gi = Tensor::zeros({B, Cin, L});
      kernels::conv1d_grad_input(g.data(), weight.data(), gi.data(), B, Cin,
                                 L, Cout, K, padding);
      if (prog::capturing()) {
        prog::on_conv1d_grad_input(g, weight, gi, B, Cin, L, Cout, K, padding);
      }
      gs[0] = gi;
    }
    if (needs[1]) {
      Tensor gw = Tensor::zeros({Cout, Cin, K});
      kernels::conv1d_grad_weight(g.data(), input.data(), gw.data(), B, Cin,
                                  L, Cout, K, padding);
      if (prog::capturing()) {
        prog::on_conv1d_grad_weight(g, input, gw, B, Cin, L, Cout, K, padding);
      }
      gs[1] = gw;
    }
    if (has_bias && needs[2]) {
      Tensor gb = Tensor::zeros({Cout});
      kernels::conv1d_grad_bias(g.data(), gb.data(), g.size(0), Cout,
                                g.size(2));
      if (prog::capturing()) {
        prog::on_conv1d_grad_bias(g, gb, g.size(0), Cout, g.size(2));
      }
      gs[2] = gb;
    }
    return gs;
  };
  return record(std::move(out), "conv1d", ins,
                has_bias ? std::size_t{3} : std::size_t{2},
                std::move(backward_fn));
}

real reduce_max_abs(const Tensor& t) {
  return kernels::reduce_max_abs(t.data(), t.numel());
}

real mse(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) throw std::invalid_argument("mse: size mismatch");
  return kernels::reduce_sq_diff(a.data(), b.data(), a.numel()) /
         static_cast<real>(a.numel());
}

real mae(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) throw std::invalid_argument("mae: size mismatch");
  return kernels::reduce_abs_diff(a.data(), b.data(), a.numel()) /
         static_cast<real>(a.numel());
}

}  // namespace mf::ad::ops
