#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mf::scenario {

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kPoisson:
      return "poisson";
    case Kind::kVarCoef:
      return "varcoef";
    case Kind::kConvDiff:
      return "convdiff";
    case Kind::kMasked:
      return "masked";
  }
  return "poisson";
}

Kind kind_from_name(const std::string& name) {
  if (name == "poisson") return Kind::kPoisson;
  if (name == "varcoef") return Kind::kVarCoef;
  if (name == "convdiff") return Kind::kConvDiff;
  if (name == "masked") return Kind::kMasked;
  throw std::invalid_argument("scenario: unknown kind name '" + name + "'");
}

bool DomainMask::full() const {
  if (pts.empty()) return true;
  return std::all_of(pts.begin(), pts.end(),
                     [](std::uint8_t v) { return v != 0; });
}

bool DomainMask::subdomain_active(int64_t gx, int64_t gy, int64_t m) const {
  if (pts.empty()) return true;
  for (int64_t j = gy; j <= gy + m; ++j) {
    for (int64_t i = gx; i <= gx + m; ++i) {
      if (!point_active(i, j)) return false;
    }
  }
  return true;
}

bool DomainMask::subdomain_dead(int64_t gx, int64_t gy, int64_t m) const {
  if (pts.empty()) return false;
  for (int64_t j = gy + 1; j < gy + m; ++j) {
    for (int64_t i = gx + 1; i < gx + m; ++i) {
      if (point_active(i, j)) return false;
    }
  }
  return true;
}

namespace {

DomainMask make_all_active(int64_t nx_cells, int64_t ny_cells) {
  DomainMask mask;
  mask.nx_cells = nx_cells;
  mask.ny_cells = ny_cells;
  mask.pts.assign(static_cast<std::size_t>((nx_cells + 1) * (ny_cells + 1)), 1);
  return mask;
}

int64_t snap_down(int64_t v, int64_t snap) {
  if (snap <= 1) return v;
  int64_t s = (v / snap) * snap;
  return s > 0 ? s : snap;
}

}  // namespace

DomainMask DomainMask::full_mask(int64_t nx_cells, int64_t ny_cells) {
  return make_all_active(nx_cells, ny_cells);
}

DomainMask DomainMask::l_shape(int64_t nx_cells, int64_t ny_cells,
                               int64_t snap) {
  DomainMask mask = make_all_active(nx_cells, ny_cells);
  const int64_t cx = snap_down(nx_cells / 2, snap);
  const int64_t cy = snap_down(ny_cells / 2, snap);
  // The cut edges (gx == cx or gy == cy inside the removed quadrant) are
  // inactive: they are the Dirichlet boundary of the L, pinned at 0.
  for (int64_t gy = cy; gy <= ny_cells; ++gy) {
    for (int64_t gx = cx; gx <= nx_cells; ++gx) {
      mask.pts[static_cast<std::size_t>(gy * (nx_cells + 1) + gx)] = 0;
    }
  }
  return mask;
}

DomainMask DomainMask::with_hole(int64_t nx_cells, int64_t ny_cells,
                                 int64_t snap) {
  DomainMask mask = make_all_active(nx_cells, ny_cells);
  const int64_t x0 = snap_down(nx_cells / 3, snap);
  const int64_t y0 = snap_down(ny_cells / 3, snap);
  const int64_t x1 = std::max(x0 + snap, snap_down(2 * nx_cells / 3, snap));
  const int64_t y1 = std::max(y0 + snap, snap_down(2 * ny_cells / 3, snap));
  for (int64_t gy = y0; gy <= std::min(y1, ny_cells); ++gy) {
    for (int64_t gx = x0; gx <= std::min(x1, nx_cells); ++gx) {
      mask.pts[static_cast<std::size_t>(gy * (nx_cells + 1) + gx)] = 0;
    }
  }
  return mask;
}

int64_t conditioning_size(Kind kind, int64_t m) {
  switch (kind) {
    case Kind::kVarCoef:
      return 8 * m;  // boundary + subdomain k perimeter
    case Kind::kConvDiff:
      return 4 * m + 2;  // boundary + (vx, vy)
    case Kind::kPoisson:
    case Kind::kMasked:
      return 4 * m;
  }
  return 4 * m;
}

Field sample_field(Kind kind, int64_t nx_cells, int64_t ny_cells,
                   util::Rng& rng, int64_t snap) {
  Field field;
  field.kind = kind;
  switch (kind) {
    case Kind::kPoisson:
      break;
    case Kind::kVarCoef: {
      // Separable log-field log k = a(x) + b(y): two 1-D GP draws keep
      // the sampling cost linear in the grid edge while still producing
      // genuinely variable coefficients in both directions.
      const gp::RbfKernel kernel{0.3, 0.5};
      gp::GpSampler sx(kernel, gp::unit_circle_points(nx_cells + 1));
      gp::GpSampler sy(kernel, gp::unit_circle_points(ny_cells + 1));
      const std::vector<double> a = sx.sample(rng);
      const std::vector<double> b = sy.sample(rng);
      field.k = linalg::Grid2D(nx_cells + 1, ny_cells + 1);
      for (int64_t j = 0; j <= ny_cells; ++j) {
        for (int64_t i = 0; i <= nx_cells; ++i) {
          const double logk = std::clamp(
              a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(j)],
              -1.2, 1.2);
          field.k.at(i, j) = std::exp(logk);
        }
      }
      break;
    }
    case Kind::kConvDiff:
      field.vx = rng.uniform(-4.0, 4.0);
      field.vy = rng.uniform(-4.0, 4.0);
      field.k = linalg::Grid2D(nx_cells + 1, ny_cells + 1);
      field.k.fill(1.0);
      break;
    case Kind::kMasked:
      field.mask = DomainMask::l_shape(nx_cells, ny_cells, snap);
      break;
  }
  return field;
}

linalg::StencilOperator field_operator(const Field& field, double h) {
  const int64_t nx = field.k.numel() > 0
                         ? field.k.nx()
                         : (field.mask.defined() ? field.mask.nx_cells + 1 : 0);
  const int64_t ny = field.k.numel() > 0
                         ? field.k.ny()
                         : (field.mask.defined() ? field.mask.ny_cells + 1 : 0);
  linalg::StencilOperator op;
  switch (field.kind) {
    case Kind::kVarCoef:
      op = linalg::StencilOperator::variable_diffusion(field.k, h);
      break;
    case Kind::kConvDiff:
      op = linalg::StencilOperator::convection_diffusion(field.k, field.vx,
                                                         field.vy, h);
      break;
    case Kind::kPoisson:
    case Kind::kMasked:
      if (nx == 0) {
        throw std::invalid_argument(
            "field_operator: poisson/masked field has no extents; set "
            "field.k or field.mask");
      }
      op = linalg::StencilOperator::laplace(nx, ny, h);
      break;
  }
  if (field.mask.defined()) op.apply_mask(field.mask.pts);
  return op;
}

void conditioning_suffix_into(const Field& field, int64_t m, int64_t gx,
                              int64_t gy, std::vector<double>& out) {
  switch (field.kind) {
    case Kind::kPoisson:
    case Kind::kMasked:
      break;
    case Kind::kVarCoef: {
      // k at the subdomain perimeter in the canonical boundary order
      // (CCW from the corner, matching subdomain_boundary_into).
      const linalg::Grid2D& k = field.k;
      out.reserve(out.size() + static_cast<std::size_t>(4 * m));
      for (int64_t i = 0; i < m; ++i) out.push_back(k.at(gx + i, gy));
      for (int64_t j = 0; j < m; ++j) out.push_back(k.at(gx + m, gy + j));
      for (int64_t i = m; i > 0; --i) out.push_back(k.at(gx + i, gy + m));
      for (int64_t j = m; j > 0; --j) out.push_back(k.at(gx, gy + j));
      break;
    }
    case Kind::kConvDiff:
      out.push_back(field.vx);
      out.push_back(field.vy);
      break;
  }
}

void zero_masked_boundary(std::vector<double>& boundary,
                          const DomainMask& mask) {
  if (!mask.defined()) return;
  const int64_t nx = mask.nx_cells, ny = mask.ny_cells;
  if (static_cast<int64_t>(boundary.size()) != 2 * nx + 2 * ny) {
    throw std::invalid_argument("zero_masked_boundary: size mismatch");
  }
  std::size_t p = 0;
  for (int64_t i = 0; i < nx; ++i, ++p) {
    if (!mask.point_active(i, 0)) boundary[p] = 0.0;
  }
  for (int64_t j = 0; j < ny; ++j, ++p) {
    if (!mask.point_active(nx, j)) boundary[p] = 0.0;
  }
  for (int64_t i = nx; i > 0; --i, ++p) {
    if (!mask.point_active(i, ny)) boundary[p] = 0.0;
  }
  for (int64_t j = ny; j > 0; --j, ++p) {
    if (!mask.point_active(0, j)) boundary[p] = 0.0;
  }
}

namespace {

double bilinear(const linalg::Grid2D& g, double x, double y) {
  const int64_t nx = g.nx(), ny = g.ny();
  const double fx = std::clamp(x, 0.0, 1.0) * static_cast<double>(nx - 1);
  const double fy = std::clamp(y, 0.0, 1.0) * static_cast<double>(ny - 1);
  const int64_t i0 = std::min<int64_t>(static_cast<int64_t>(fx), nx - 2);
  const int64_t j0 = std::min<int64_t>(static_cast<int64_t>(fy), ny - 2);
  const double tx = fx - static_cast<double>(i0);
  const double ty = fy - static_cast<double>(j0);
  return (1 - tx) * (1 - ty) * g.at(i0, j0) + tx * (1 - ty) * g.at(i0 + 1, j0) +
         (1 - tx) * ty * g.at(i0, j0 + 1) + tx * ty * g.at(i0 + 1, j0 + 1);
}

}  // namespace

double sample_k(const Field& field, double x, double y) {
  if (field.k.numel() == 0) return 1.0;
  return bilinear(field.k, x, y);
}

std::array<double, 5> coeffs_at(const Field& field, double x, double y) {
  std::array<double, 5> c{1.0, 0.0, 0.0, field.vx, field.vy};
  if (field.k.numel() == 0) return c;
  c[0] = sample_k(field, x, y);
  const double d = 0.5 / static_cast<double>(field.k.nx() - 1);
  c[1] = (sample_k(field, x + d, y) - sample_k(field, x - d, y)) / (2 * d);
  c[2] = (sample_k(field, x, y + d) - sample_k(field, x, y - d)) / (2 * d);
  return c;
}

}  // namespace mf::scenario
