// Scenario axis: named PDE/geometry families the solver stack serves.
//
// A scenario bundles (a) the differential operator — constant Poisson,
// variable-coefficient diffusion -∇·(k(x)∇u), or upwinded
// convection–diffusion -∇·(k∇u) + v·∇u — and (b) the domain geometry
// (full rectangle or a masked L-shape/holed region). Scenarios condition
// the neural subdomain solver through an extended input vector: the 4m
// perimeter values are followed by a per-scenario suffix (the subdomain's
// k-perimeter for varcoef, the drift (vx, vy) for convdiff), so one SDNet
// checkpoint per scenario serves every subdomain of that family.
//
// Layering: linalg → gp → scenario → mosaic → serve. This header owns the
// scenario vocabulary shared by the dataset generator, the predictor, the
// serving layer and the benches.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "gp/gaussian_process.hpp"
#include "linalg/stencil.hpp"
#include "util/rng.hpp"

namespace mf::scenario {

enum class Kind {
  kPoisson,   // -Δu = 0, full rectangle (the original workload)
  kVarCoef,   // -∇·(k(x)∇u) = 0, k a positive GP-sampled field
  kConvDiff,  // -Δu + v·∇u = 0, constant drift, upwinded
  kMasked,    // -Δu = 0 on an L-shaped (masked) domain
};

/// Canonical lowercase scenario names ("poisson", "varcoef", "convdiff",
/// "masked") — used by CLI flags, the zoo manifest, and BENCH_JSON keys.
const char* kind_name(Kind kind);
/// Inverse of kind_name; throws std::invalid_argument on unknown names.
Kind kind_from_name(const std::string& name);

/// Point-activity mask over an (nx_cells+1) x (ny_cells+1) point grid.
/// Inactive points are held at Dirichlet value 0: excluded from
/// residuals, smoothing, and lattice updates. Points on the cut edges of
/// an L/hole are inactive too — they are the Dirichlet boundary of the
/// retained region.
struct DomainMask {
  int64_t nx_cells = 0, ny_cells = 0;
  std::vector<std::uint8_t> pts;  // (nx+1)*(ny+1) row-major, 1 = active

  bool defined() const { return !pts.empty(); }
  bool full() const;
  bool point_active(int64_t gx, int64_t gy) const {
    return pts.empty() ||
           pts[static_cast<std::size_t>(gy * (nx_cells + 1) + gx)] != 0;
  }
  /// All (m+1)^2 points of the subdomain with corner (gx, gy) active —
  /// the subdomain solves pure interior physics and can go to the
  /// neural solver.
  bool subdomain_active(int64_t gx, int64_t gy, int64_t m) const;
  /// No interior point of the subdomain is active — nothing to solve.
  bool subdomain_dead(int64_t gx, int64_t gy, int64_t m) const;

  static DomainMask full_mask(int64_t nx_cells, int64_t ny_cells);
  /// Remove the (open) upper-right quadrant: points with gx >= cx and
  /// gy >= cy are inactive, cx/cy the midpoints snapped down to a
  /// multiple of `snap` (pass the subdomain size so mask edges land on
  /// lattice lines).
  static DomainMask l_shape(int64_t nx_cells, int64_t ny_cells,
                            int64_t snap = 1);
  /// Remove a centered rectangular hole spanning the middle third of
  /// each axis, snapped to multiples of `snap`.
  static DomainMask with_hole(int64_t nx_cells, int64_t ny_cells,
                              int64_t snap = 1);
};

/// One concrete problem instance of a scenario on an
/// nx_cells x ny_cells grid.
struct Field {
  Kind kind = Kind::kPoisson;
  linalg::Grid2D k;       // varcoef: positive coefficient field (points)
  double vx = 0, vy = 0;  // convdiff: constant drift
  DomainMask mask;        // masked: point activity
};

/// Length of the neural conditioning vector for subdomain size m:
/// poisson/masked 4m (boundary only), varcoef 8m (boundary + k
/// perimeter), convdiff 4m + 2 (boundary + drift).
int64_t conditioning_size(Kind kind, int64_t m);

/// Sample a scenario instance. varcoef draws k = exp(a(x) + b(y)) from
/// two 1-D GP sample paths (clamped log-range, so k stays in roughly
/// [0.3, 3.3]); convdiff draws the drift uniformly from [-4, 4]^2;
/// masked builds the L-shape snapped to multiples of `snap`.
Field sample_field(Kind kind, int64_t nx_cells, int64_t ny_cells,
                   util::Rng& rng, int64_t snap = 1);

/// The discrete operator of the field at grid spacing h (mask applied).
linalg::StencilOperator field_operator(const Field& field, double h);

/// Append the scenario conditioning suffix of the subdomain with corner
/// (gx, gy) to `out` (no-op for poisson/masked). The suffix depends only
/// on the static field, never on iteration state.
void conditioning_suffix_into(const Field& field, int64_t m, int64_t gx,
                              int64_t gy, std::vector<double>& out);

/// Zero boundary entries whose perimeter point is masked inactive, so
/// Dirichlet data is continuous with the mask's zero-valued cut edges.
void zero_masked_boundary(std::vector<double>& boundary,
                          const DomainMask& mask);

/// Bilinear sample of the field's k at unit coordinates (x, y in [0,1]);
/// 1.0 when the field has no k grid (poisson/masked).
double sample_k(const Field& field, double x, double y);

/// (k, k_x, k_y, v_x, v_y) at a unit-square point — the collocation
/// coefficients scenario_pde_loss consumes. The gradient of k comes from
/// central differences of the bilinear interpolant at half-cell offset.
std::array<double, 5> coeffs_at(const Field& field, double x, double y);

}  // namespace mf::scenario
