// 1-D Gaussian-process sampling of boundary conditions (Sec. 5.1).
// A periodic squared-exponential kernel on the subdomain perimeter gives
// infinitely differentiable boundary curves that close continuously around
// the four corners.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace mf::gp {

/// Squared-exponential kernel k(s, s') = variance * exp(-(s-s')^2 / 2l^2).
struct RbfKernel {
  double length_scale = 0.2;
  double variance = 1.0;
  double operator()(double s, double t) const;
};

/// Periodic squared-exponential kernel with period 1:
/// k(s, s') = variance * exp(-2 sin^2(pi (s - s')) / l^2).
struct PeriodicRbfKernel {
  double length_scale = 0.2;
  double variance = 1.0;
  double operator()(double s, double t) const;
};

/// Dense Cholesky factorization A = L L^T with jitter escalation.
/// Returns the lower factor; throws if the matrix is not PD even with the
/// maximum jitter.
std::vector<double> cholesky(std::vector<double> a, int64_t n,
                             double initial_jitter = 1e-10);

/// Draws sample paths of a 1-D GP evaluated at `points` (values of the
/// curve parameter, typically equispaced in [0,1)).
class GpSampler {
 public:
  template <typename Kernel>
  GpSampler(const Kernel& kernel, std::vector<double> points)
      : points_(std::move(points)) {
    build(kernel);
  }

  /// One sample path: values at each point.
  std::vector<double> sample(util::Rng& rng) const;

  int64_t size() const { return static_cast<int64_t>(points_.size()); }
  const std::vector<double>& points() const { return points_; }

 private:
  template <typename Kernel>
  void build(const Kernel& kernel) {
    const int64_t n = size();
    std::vector<double> cov(static_cast<std::size_t>(n * n));
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < n; ++j)
        cov[static_cast<std::size_t>(i * n + j)] =
            kernel(points_[static_cast<std::size_t>(i)],
                   points_[static_cast<std::size_t>(j)]);
    chol_ = cholesky(std::move(cov), n);
  }

  std::vector<double> points_;
  std::vector<double> chol_;  // lower triangular, row-major n x n
};

/// Equispaced parameter values {0, 1/n, ..., (n-1)/n}.
std::vector<double> unit_circle_points(int64_t n);

}  // namespace mf::gp
