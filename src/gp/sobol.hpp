// Sobol low-discrepancy sequence (Sec. 5.1: kernel hyperparameters of the
// boundary-condition Gaussian processes are drawn from a Sobol sequence).
#pragma once

#include <cstdint>
#include <vector>

namespace mf::gp {

/// Gray-code Sobol sequence generator, direction numbers from Joe & Kuo.
/// Supports up to 8 dimensions (the data-generation recipe needs 2-3).
class SobolSequence {
 public:
  explicit SobolSequence(int dimensions);

  /// Next point in [0,1)^d.
  std::vector<double> next();

  /// Skip ahead (regenerates from scratch; O(n)).
  void skip(std::uint64_t n);

  int dimensions() const { return dim_; }

  static constexpr int kMaxDimensions = 8;

 private:
  int dim_;
  std::uint64_t index_ = 0;
  std::vector<std::vector<std::uint32_t>> v_;  // direction numbers per dim
  std::vector<std::uint32_t> x_;               // current integer state
};

}  // namespace mf::gp
