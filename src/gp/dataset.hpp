// Dataset generation following Sec. 5.1 of the paper: boundary conditions
// are sample paths of 1-D Gaussian processes whose kernel hyperparameters
// come from a Sobol sequence; each boundary value problem is solved with
// the multigrid solver (our pyAMG substitute) to produce ground truth.
#pragma once

#include <cstdint>
#include <vector>

#include "ad/tensor.hpp"
#include "gp/gaussian_process.hpp"
#include "gp/sobol.hpp"
#include "linalg/grid2d.hpp"
#include "scenario/scenario.hpp"
#include "util/rng.hpp"

namespace mf::gp {

/// A boundary value problem for the Laplace equation together with its
/// numerical reference solution.
struct SolvedBvp {
  std::vector<double> boundary;  // perimeter values, canonical order
  linalg::Grid2D solution;       // (nx x ny) points including boundary
  scenario::Field field;         // scenario instance (poisson by default)
  std::vector<double> extra;     // conditioning suffix (empty for poisson)
};

/// Ranges for the GP kernel hyperparameters swept by the Sobol sequence.
struct GpBoundaryConfig {
  double min_length_scale = 0.10;
  double max_length_scale = 0.60;
  double min_variance = 0.25;
  double max_variance = 1.00;
};

/// Training tensors for one batch of boundary value problems.
struct SdnetBatch {
  ad::Tensor g;         // [B, G]  conditioning: boundary (+ scenario suffix)
  ad::Tensor x_data;    // [B, q, 2] coordinates with known solution
  ad::Tensor y_data;    // [B, q, 1] reference solution values
  ad::Tensor x_colloc;  // [B, qc, 2] collocation coordinates
  ad::Tensor coeffs;    // [B, qc, 5] (k,kx,ky,vx,vy); undefined for poisson
};

/// Generates solved BVPs on the (m cells per side) training subdomain and
/// assembles training batches for SDNet.
class LaplaceDatasetGenerator {
 public:
  /// `m`: grid cells per subdomain side (boundary has 4m points).
  /// `kind` selects the PDE scenario the generator samples: non-Poisson
  /// kinds draw per-BVP coefficient fields/drifts, solve ground truth
  /// through the stencil operator, and extend the conditioning vector
  /// (see scenario::conditioning_size). kPoisson keeps the original
  /// sampling trajectory bit-for-bit.
  LaplaceDatasetGenerator(int64_t m, GpBoundaryConfig cfg = {},
                          std::uint64_t seed = 0,
                          scenario::Kind kind = scenario::Kind::kPoisson);

  /// A fresh BVP: new kernel hyperparameters from the Sobol sequence, a GP
  /// sample path as boundary, multigrid solution as ground truth.
  SolvedBvp generate();

  /// `count` BVPs.
  std::vector<SolvedBvp> generate_many(int64_t count);

  /// Assemble training tensors. Data points are drawn from the solution
  /// grid; collocation points are uniform in the open unit square.
  SdnetBatch make_batch(const std::vector<SolvedBvp>& bvps, int64_t q_data,
                        int64_t q_colloc);

  /// GP boundary + multigrid reference on an arbitrary rectangle of
  /// (nx_cells x ny_cells) grid cells — test problems for the MF predictor.
  SolvedBvp generate_global(int64_t nx_cells, int64_t ny_cells);

  /// Global test problem for an explicit scenario field: boundary from
  /// the GP (zeroed on masked segments), ground truth from the stencil
  /// solve of the field's operator at spacing 1/m.
  SolvedBvp generate_global(int64_t nx_cells, int64_t ny_cells,
                            const scenario::Field& field);

  int64_t m() const { return m_; }
  int64_t boundary_size() const { return 4 * m_; }
  scenario::Kind kind() const { return kind_; }
  /// Neural conditioning width: boundary_size plus the scenario suffix.
  int64_t conditioning_size() const {
    return scenario::conditioning_size(kind_, m_);
  }

  /// The generator's RNG, exposed so checkpointing can serialize and
  /// restore the sampling trajectory (make_batch draws from it).
  util::Rng& rng() { return rng_; }

 private:
  PeriodicRbfKernel next_kernel();

  int64_t m_;
  GpBoundaryConfig cfg_;
  SobolSequence sobol_{2};
  util::Rng rng_;
  scenario::Kind kind_ = scenario::Kind::kPoisson;
};

/// Deterministic analytic boundary g(x) = sin(2*pi*x) applied along the
/// bottom edge with zero elsewhere — the Fig. 7 test condition.
std::vector<double> sin_boundary(int64_t nx, int64_t ny, double frequency = 1.0);

}  // namespace mf::gp
