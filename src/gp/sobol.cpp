#include "gp/sobol.hpp"

#include <bit>
#include <stdexcept>

namespace mf::gp {

namespace {

constexpr int kBits = 31;

/// Joe & Kuo (2008) primitive polynomials and initial direction numbers
/// for dimensions 2..8 (dimension 1 uses the van der Corput sequence).
struct DimInit {
  std::uint32_t s;        // degree
  std::uint32_t a;        // polynomial coefficient bits
  std::uint32_t m[8];     // initial m values
};

constexpr DimInit kDims[] = {
    {1, 0, {1, 0, 0, 0, 0, 0, 0, 0}},
    {2, 1, {1, 3, 0, 0, 0, 0, 0, 0}},
    {3, 1, {1, 3, 1, 0, 0, 0, 0, 0}},
    {3, 2, {1, 1, 1, 0, 0, 0, 0, 0}},
    {4, 1, {1, 1, 3, 3, 0, 0, 0, 0}},
    {4, 4, {1, 3, 5, 13, 0, 0, 0, 0}},
    {5, 2, {1, 1, 5, 5, 17, 0, 0, 0}},
};

}  // namespace

SobolSequence::SobolSequence(int dimensions) : dim_(dimensions) {
  if (dimensions < 1 || dimensions > kMaxDimensions) {
    throw std::invalid_argument("SobolSequence: 1..8 dimensions supported");
  }
  v_.resize(static_cast<std::size_t>(dim_));
  x_.assign(static_cast<std::size_t>(dim_), 0);
  // Dimension 0: van der Corput — v[k] = 2^(kBits - k - 1).
  v_[0].resize(kBits);
  for (int k = 0; k < kBits; ++k) v_[0][static_cast<std::size_t>(k)] = 1u << (kBits - k - 1);
  for (int d = 1; d < dim_; ++d) {
    const DimInit& di = kDims[d - 1];
    auto& v = v_[static_cast<std::size_t>(d)];
    v.resize(kBits);
    const auto s = di.s;
    for (std::uint32_t k = 0; k < s && k < kBits; ++k) {
      v[k] = di.m[k] << (kBits - k - 1);
    }
    for (std::uint32_t k = s; k < kBits; ++k) {
      v[k] = v[k - s] ^ (v[k - s] >> s);
      for (std::uint32_t l = 1; l < s; ++l) {
        if ((di.a >> (s - 1 - l)) & 1u) v[k] ^= v[k - l];
      }
    }
  }
}

std::vector<double> SobolSequence::next() {
  // Gray-code update: flip the direction number of the lowest zero bit.
  std::vector<double> out(static_cast<std::size_t>(dim_));
  if (index_ == 0) {
    // First point is the origin.
    for (int d = 0; d < dim_; ++d) out[static_cast<std::size_t>(d)] = 0.0;
    ++index_;
    return out;
  }
  const int c = std::countr_one(index_ - 1);  // position of lowest zero bit
  for (int d = 0; d < dim_; ++d) {
    x_[static_cast<std::size_t>(d)] ^= v_[static_cast<std::size_t>(d)][static_cast<std::size_t>(c)];
    out[static_cast<std::size_t>(d)] =
        static_cast<double>(x_[static_cast<std::size_t>(d)]) /
        static_cast<double>(1ull << kBits);
  }
  ++index_;
  return out;
}

void SobolSequence::skip(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) next();
}

}  // namespace mf::gp
