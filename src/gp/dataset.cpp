#include "gp/dataset.hpp"

#include <cmath>

#include "linalg/multigrid.hpp"
#include "linalg/stencil.hpp"

namespace mf::gp {

using ad::Tensor;

LaplaceDatasetGenerator::LaplaceDatasetGenerator(int64_t m, GpBoundaryConfig cfg,
                                                 std::uint64_t seed,
                                                 scenario::Kind kind)
    : m_(m), cfg_(cfg), rng_(seed + 0x5eed), kind_(kind) {
  if (m < 2) throw std::invalid_argument("subdomain needs >= 2 cells per side");
}

PeriodicRbfKernel LaplaceDatasetGenerator::next_kernel() {
  const auto p = sobol_.next();
  PeriodicRbfKernel k;
  k.length_scale = cfg_.min_length_scale +
                   p[0] * (cfg_.max_length_scale - cfg_.min_length_scale);
  k.variance = cfg_.min_variance + p[1] * (cfg_.max_variance - cfg_.min_variance);
  return k;
}

SolvedBvp LaplaceDatasetGenerator::generate() {
  const int64_t n = m_ + 1;
  GpSampler sampler(next_kernel(), unit_circle_points(4 * m_));
  SolvedBvp bvp;
  bvp.boundary = sampler.sample(rng_);
  bvp.solution = linalg::Grid2D(n, n);
  linalg::apply_perimeter(bvp.solution, bvp.boundary);
  // kMasked trains no dedicated net: masked lattices reuse the Poisson
  // checkpoint for fully-interior subdomains and solve cut subdomains
  // classically, so its training samples are plain Poisson too.
  if (kind_ == scenario::Kind::kPoisson || kind_ == scenario::Kind::kMasked) {
    linalg::solve_laplace_mg(bvp.solution, 1.0 / static_cast<double>(m_));
    return bvp;
  }
  bvp.field = scenario::sample_field(kind_, m_, m_, rng_);
  const double h = 1.0 / static_cast<double>(m_);
  const linalg::StencilOperator op = scenario::field_operator(bvp.field, h);
  const linalg::Grid2D zero_rhs(n, n);
  if (linalg::stencil_solve(op, bvp.solution, zero_rhs) < 0) {
    throw std::runtime_error("dataset: scenario ground-truth solve diverged");
  }
  scenario::conditioning_suffix_into(bvp.field, m_, 0, 0, bvp.extra);
  return bvp;
}

std::vector<SolvedBvp> LaplaceDatasetGenerator::generate_many(int64_t count) {
  std::vector<SolvedBvp> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int64_t i = 0; i < count; ++i) out.push_back(generate());
  return out;
}

SdnetBatch LaplaceDatasetGenerator::make_batch(const std::vector<SolvedBvp>& bvps,
                                               int64_t q_data, int64_t q_colloc) {
  const int64_t B = static_cast<int64_t>(bvps.size());
  const int64_t Gb = boundary_size();
  const int64_t G = conditioning_size();
  const bool has_coeffs = G != Gb || kind_ == scenario::Kind::kConvDiff;
  SdnetBatch batch;
  batch.g = Tensor::zeros({B, G});
  batch.x_data = Tensor::zeros({B, q_data, 2});
  batch.y_data = Tensor::zeros({B, q_data, 1});
  batch.x_colloc = Tensor::zeros({B, q_colloc, 2});
  if (has_coeffs) batch.coeffs = Tensor::zeros({B, q_colloc, 5});
  const double inv_m = 1.0 / static_cast<double>(m_);
  for (int64_t b = 0; b < B; ++b) {
    const SolvedBvp& bvp = bvps[static_cast<std::size_t>(b)];
    for (int64_t k = 0; k < Gb; ++k) {
      batch.g.flat(b * G + k) = bvp.boundary[static_cast<std::size_t>(k)];
    }
    for (int64_t k = Gb; k < G; ++k) {
      batch.g.flat(b * G + k) = bvp.extra[static_cast<std::size_t>(k - Gb)];
    }
    for (int64_t q = 0; q < q_data; ++q) {
      const int64_t i = rng_.randint(0, m_);
      const int64_t j = rng_.randint(0, m_);
      batch.x_data.flat((b * q_data + q) * 2 + 0) = i * inv_m;
      batch.x_data.flat((b * q_data + q) * 2 + 1) = j * inv_m;
      batch.y_data.flat(b * q_data + q) = bvp.solution.at(i, j);
    }
    for (int64_t q = 0; q < q_colloc; ++q) {
      const double x = rng_.uniform(0.02, 0.98);
      const double y = rng_.uniform(0.02, 0.98);
      batch.x_colloc.flat((b * q_colloc + q) * 2 + 0) = x;
      batch.x_colloc.flat((b * q_colloc + q) * 2 + 1) = y;
      if (has_coeffs) {
        const std::array<double, 5> c = scenario::coeffs_at(bvp.field, x, y);
        for (int64_t d = 0; d < 5; ++d) {
          batch.coeffs.flat((b * q_colloc + q) * 5 + d) =
              c[static_cast<std::size_t>(d)];
        }
      }
    }
  }
  return batch;
}

SolvedBvp LaplaceDatasetGenerator::generate_global(int64_t nx_cells,
                                                   int64_t ny_cells) {
  const int64_t nx = nx_cells + 1, ny = ny_cells + 1;
  const int64_t perim = linalg::perimeter_size(nx, ny);
  GpSampler sampler(next_kernel(), unit_circle_points(perim));
  SolvedBvp bvp{sampler.sample(rng_), linalg::Grid2D(nx, ny)};
  linalg::apply_perimeter(bvp.solution, bvp.boundary);
  // Physical spacing matches the training subdomain: m_ cells per unit.
  linalg::solve_laplace_mg(bvp.solution, 1.0 / static_cast<double>(m_));
  return bvp;
}

SolvedBvp LaplaceDatasetGenerator::generate_global(
    int64_t nx_cells, int64_t ny_cells, const scenario::Field& field) {
  const int64_t nx = nx_cells + 1, ny = ny_cells + 1;
  const int64_t perim = linalg::perimeter_size(nx, ny);
  GpSampler sampler(next_kernel(), unit_circle_points(perim));
  SolvedBvp bvp;
  bvp.boundary = sampler.sample(rng_);
  bvp.field = field;
  scenario::zero_masked_boundary(bvp.boundary, field.mask);
  bvp.solution = linalg::Grid2D(nx, ny);
  linalg::apply_perimeter(bvp.solution, bvp.boundary);
  if (field.kind == scenario::Kind::kPoisson && !field.mask.defined()) {
    linalg::solve_laplace_mg(bvp.solution, 1.0 / static_cast<double>(m_));
    return bvp;
  }
  scenario::Field sized = field;
  if (sized.k.numel() == 0 && !sized.mask.defined()) {
    sized.mask = scenario::DomainMask::full_mask(nx_cells, ny_cells);
  }
  const linalg::StencilOperator op =
      scenario::field_operator(sized, 1.0 / static_cast<double>(m_));
  const linalg::Grid2D zero_rhs(nx, ny);
  if (linalg::stencil_solve(op, bvp.solution, zero_rhs) < 0) {
    throw std::runtime_error("dataset: global scenario solve diverged");
  }
  return bvp;
}

std::vector<double> sin_boundary(int64_t nx, int64_t ny, double frequency) {
  std::vector<double> b(static_cast<std::size_t>(linalg::perimeter_size(nx, ny)), 0.0);
  // Bottom edge: indices [0, nx-1), parameterized by x in [0, 1).
  for (int64_t i = 0; i < nx - 1; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(nx - 1);
    b[static_cast<std::size_t>(i)] = std::sin(2 * M_PI * frequency * x);
  }
  return b;
}

}  // namespace mf::gp
