#include "gp/gaussian_process.hpp"

#include <cmath>
#include <stdexcept>

namespace mf::gp {

double RbfKernel::operator()(double s, double t) const {
  const double d = s - t;
  return variance * std::exp(-d * d / (2 * length_scale * length_scale));
}

double PeriodicRbfKernel::operator()(double s, double t) const {
  const double sp = std::sin(M_PI * (s - t));
  return variance * std::exp(-2 * sp * sp / (length_scale * length_scale));
}

std::vector<double> cholesky(std::vector<double> a, int64_t n,
                             double initial_jitter) {
  const std::vector<double> original = a;
  double jitter = initial_jitter;
  for (int attempt = 0; attempt < 12; ++attempt) {
    a = original;
    for (int64_t i = 0; i < n; ++i) a[static_cast<std::size_t>(i * n + i)] += jitter;
    bool ok = true;
    for (int64_t j = 0; j < n && ok; ++j) {
      double d = a[static_cast<std::size_t>(j * n + j)];
      for (int64_t k = 0; k < j; ++k) {
        const double l = a[static_cast<std::size_t>(j * n + k)];
        d -= l * l;
      }
      if (d <= 0) {
        ok = false;
        break;
      }
      const double dj = std::sqrt(d);
      a[static_cast<std::size_t>(j * n + j)] = dj;
      for (int64_t i = j + 1; i < n; ++i) {
        double s = a[static_cast<std::size_t>(i * n + j)];
        for (int64_t k = 0; k < j; ++k) {
          s -= a[static_cast<std::size_t>(i * n + k)] *
               a[static_cast<std::size_t>(j * n + k)];
        }
        a[static_cast<std::size_t>(i * n + j)] = s / dj;
      }
    }
    if (ok) {
      // Zero the strict upper triangle for cleanliness.
      for (int64_t i = 0; i < n; ++i)
        for (int64_t j = i + 1; j < n; ++j) a[static_cast<std::size_t>(i * n + j)] = 0;
      return a;
    }
    jitter *= 10;
  }
  throw std::runtime_error("cholesky: matrix not positive definite");
}

std::vector<double> GpSampler::sample(util::Rng& rng) const {
  const int64_t n = size();
  std::vector<double> z(static_cast<std::size_t>(n));
  for (auto& v : z) v = rng.normal();
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    double s = 0;
    for (int64_t j = 0; j <= i; ++j) {
      s += chol_[static_cast<std::size_t>(i * n + j)] * z[static_cast<std::size_t>(j)];
    }
    out[static_cast<std::size_t>(i)] = s;
  }
  return out;
}

std::vector<double> unit_circle_points(int64_t n) {
  std::vector<double> pts(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    pts[static_cast<std::size_t>(i)] = static_cast<double>(i) / static_cast<double>(n);
  }
  return pts;
}

}  // namespace mf::gp
