#include "serve/request_gen.hpp"

#include <cmath>
#include <stdexcept>

namespace mf::serve {

RequestGenerator::RequestGenerator(std::vector<GeometrySpec> zoo,
                                   const RequestGenConfig& cfg)
    : zoo_(std::move(zoo)), cfg_(cfg), rng_(cfg.seed) {
  if (zoo_.empty()) {
    throw std::invalid_argument("RequestGenerator: empty geometry zoo");
  }
  for (const auto& spec : zoo_) {
    if (spec.nx_cells % spec.m != 0 || spec.ny_cells % spec.m != 0) {
      throw std::invalid_argument(
          "RequestGenerator: domain cells must be a multiple of m");
    }
    if (spec.scenario == scenario::Kind::kMasked) {
      throw std::invalid_argument(
          "RequestGenerator: masked domains are not served; use "
          "mosaic_predict_scenario");
    }
  }
}

SolveRequest RequestGenerator::next() {
  SolveRequest req;
  req.id = next_id_++;
  const std::size_t zi =
      static_cast<std::size_t>(rng_.randint(0, static_cast<int64_t>(zoo_.size()) - 1));
  const GeometrySpec& spec = zoo_[zi];
  req.zoo_index = spec.zoo_index;
  req.nx_cells = spec.nx_cells;
  req.ny_cells = spec.ny_cells;

  // Poisson arrivals with a periodic burst curve: the thinning-free
  // piecewise construction just uses the rate in effect at the current
  // process time (bursts are long relative to inter-arrival gaps).
  const double phase = cfg_.burst_period_s > 0
                           ? std::fmod(clock_s_, cfg_.burst_period_s)
                           : 0.0;
  const bool in_burst = cfg_.burst_period_s > 0 &&
                        phase < cfg_.burst_duty * cfg_.burst_period_s;
  const double rate =
      cfg_.rate_hz * (in_burst ? cfg_.burst_factor : 1.0);
  const double u = rng_.uniform(1e-12, 1.0);
  clock_s_ += -std::log(u) / rate;
  req.arrival_s = clock_s_;

  // Log-uniform deadline in [min, max].
  const double ld = rng_.uniform(std::log(cfg_.deadline_ms_min),
                                 std::log(cfg_.deadline_ms_max));
  req.deadline_ms = std::exp(ld);

  req.max_iters = 4 * rng_.randint(cfg_.min_cycles, cfg_.max_cycles);
  req.tol = cfg_.tol;

  // Smooth periodic boundary: a low-order Fourier series over the
  // perimeter walk (the canonical order is a contiguous counterclockwise
  // loop, so periodicity in the index means continuity on the boundary).
  const int64_t P = 2 * (req.nx_cells + req.ny_cells);
  req.boundary.resize(static_cast<std::size_t>(P));
  std::vector<double> amp(static_cast<std::size_t>(cfg_.boundary_modes));
  std::vector<double> phi(static_cast<std::size_t>(cfg_.boundary_modes));
  for (int k = 0; k < cfg_.boundary_modes; ++k) {
    amp[static_cast<std::size_t>(k)] = rng_.normal(0.0, 1.0 / (k + 1));
    phi[static_cast<std::size_t>(k)] = rng_.uniform(0.0, 2.0 * M_PI);
  }
  const double offset = rng_.normal(0.0, 0.5);
  for (int64_t i = 0; i < P; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(P);
    double v = offset;
    for (int k = 0; k < cfg_.boundary_modes; ++k) {
      v += amp[static_cast<std::size_t>(k)] *
           std::sin(2.0 * M_PI * (k + 1) * t + phi[static_cast<std::size_t>(k)]);
    }
    req.boundary[static_cast<std::size_t>(i)] = v;
  }

  // Scenario coefficients, drawn last so all-Poisson streams consume the
  // exact RNG trajectory of the pre-scenario generator (bitwise-stable
  // workloads for the Poisson baselines). Poisson draws nothing here.
  if (spec.scenario != scenario::Kind::kPoisson) {
    req.field = scenario::sample_field(spec.scenario, req.nx_cells,
                                       req.ny_cells, rng_);
  }
  return req;
}

std::vector<SolveRequest> RequestGenerator::generate(int64_t n) {
  std::vector<SolveRequest> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace mf::serve
