// Iteration-level cross-request batching (the serve tentpole). Each
// in-flight solve job is one Schwarz iteration state machine; every tick
// the scheduler advances ALL in-flight jobs by one iteration, gathering
// each job's current-phase subdomain boundaries into one shared batch per
// zoo model and dispatching a single solver call for the whole group.
// Same-geometry requests therefore share GEMMs (the compiled-program
// cache widens one captured plan to the combined batch, chunking odd
// remainders to eager); converged jobs retire immediately at the
// iteration boundary where their cycle delta crosses tol, and new jobs
// join the batch at the next tick. Because the batched kernels compute
// rows independently, every job's trajectory is bitwise identical to
// running it alone through mosaic_predict — batching changes wall-clock,
// never results.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "mosaic/predictor.hpp"
#include "serve/request_gen.hpp"
#include "serve/stats.hpp"

namespace mf::serve {

/// One tenant model: an SDNet-backed subdomain solver serving all
/// requests with zoo_index equal to its position in the zoo vector.
/// `scenario` names the PDE family the net was trained for; admitted
/// requests must carry the same kind, and the net's conditioning width
/// (net->config().boundary_size) is 4m plus the scenario suffix.
struct ServeModel {
  int64_t m = 8;
  scenario::Kind scenario = scenario::Kind::kPoisson;
  std::shared_ptr<const mosaic::Sdnet> net;
  std::shared_ptr<const mosaic::NeuralSubdomainSolver> solver;
};

/// What to do when a request blows its deadline (checked at iteration
/// boundaries, mirroring the distributed predictor's degraded mode).
enum class DeadlineAction {
  /// Keep iterating to the budget; count degraded iterations (default —
  /// keeps per-request iteration counts independent of timing).
  kAccount,
  /// Retire the job immediately with its current lattice state
  /// (converged=false). Latency-bounded, timing-dependent results.
  kRetire,
};

struct SchedulerOptions {
  bool batching = true;  // false = per-job solver calls (hatch/baseline)
  /// Pad cross-request batches with zero rows (results discarded) up to
  /// a multiple of this, so every dispatch is served whole by a widened
  /// plan captured at this base batch instead of chunking its remainder
  /// to eager. 0 = no padding (odd sizes chunk). Rows are computed
  /// independently, so padding never changes any real row's bits.
  int64_t pad_to = 0;
  double relaxation = 1.0;
  mosaic::LatticeInit init = mosaic::LatticeInit::kCoons;
  DeadlineAction deadline_action = DeadlineAction::kAccount;
};

/// In-flight (or finished) solve job.
struct ServeJob {
  SolveRequest req;
  mosaic::LatticeWindow window;
  int64_t iter = 0;
  double cycle_num = 0, cycle_den = 0;
  double final_delta = 0;
  bool done = false;
  bool converged = false;
  bool deadline_missed = false;
  int64_t degraded_iterations = 0;
  double admit_s = 0, finish_s = 0;
  linalg::Grid2D solution;  // filled at retirement

  ServeJob(SolveRequest r, mosaic::LatticeInit init);
};

/// Single-worker scheduler: owns its in-flight jobs (no locking inside a
/// tick; the server gives each worker thread its own scheduler).
class IterationScheduler {
 public:
  IterationScheduler(const std::vector<ServeModel>& zoo,
                     const SchedulerOptions& opts);

  /// Prime the calling thread's compiled-program cache: capture + widen
  /// one plan per zoo model at batch size `warm_batch`, so the very
  /// first traffic batches replay wide instead of paying first-sight
  /// eager runs and captures. No-op when warm_batch <= 0.
  void warm(int64_t warm_batch);

  /// Admit a request (jobs join at iteration boundaries: call between
  /// ticks). `now_s` stamps the admission time.
  void admit(SolveRequest req, double now_s);

  /// Advance every in-flight job by one Schwarz iteration; retire jobs
  /// that converged, exhausted their budget, or (kRetire) missed their
  /// deadline. Returns the number of jobs still in flight.
  std::size_t tick(double now_s);

  std::size_t inflight() const { return jobs_.size(); }
  /// Move out jobs finished since the last call.
  std::vector<ServeJob> take_finished();
  const SchedulerCounters& counters() const { return counters_; }

 private:
  const mosaic::SubdomainGeometry& geometry(int64_t m);
  void finalize(ServeJob& job, double now_s);

  const std::vector<ServeModel>& zoo_;
  SchedulerOptions opts_;
  std::map<int64_t, mosaic::SubdomainGeometry> geoms_;  // keyed by m
  std::vector<std::unique_ptr<ServeJob>> jobs_;
  std::vector<ServeJob> finished_;
  SchedulerCounters counters_;
  // Reused batch buffers (scheduler-owned, not the thread-local phase
  // scratch: retirement's predict_interior uses that underneath us).
  std::vector<std::vector<double>> batch_boundaries_;
  std::vector<std::vector<double>> batch_predictions_;
};

}  // namespace mf::serve
