// Multi-tenant solve server: a model zoo plus per-worker iteration
// schedulers behind one admission queue. Requests are admitted at
// iteration boundaries up to a per-worker in-flight cap; each worker
// advances all of its jobs one Schwarz iteration per tick with
// cross-request batching (see scheduler.hpp). Configuration comes from
// MF_SERVE_* environment variables by default:
//   MF_SERVE_THREADS           worker threads (default 1)
//   MF_SERVE_MAX_INFLIGHT      concurrent jobs per worker (default 8)
//   MF_SERVE_DISABLE_BATCHING  1 = per-job solver calls (hatch)
//   MF_SERVE_WARM_BATCH        plan-priming batch size, 0 = off (default 4)
//   MF_SERVE_PAD_TO            pad shared batches to a multiple (default 0)
//   MF_SERVE_DEADLINE_ACTION   "account" (default) or "retire"
//   MF_SERVE_ZOO               directory with a versioned on-disk model
//                              zoo (zoo.manifest + parameter files); when
//                              set the server loads trained checkpoints
//                              instead of building random-weight models
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/request_gen.hpp"
#include "serve/scheduler.hpp"
#include "serve/stats.hpp"

namespace mf::serve {

struct ServeOptions {
  int threads = 1;
  int max_inflight = 8;
  bool batching = true;
  int64_t warm_batch = 4;
  /// Pad shared batches with zero rows to a multiple of this (0 = off).
  /// With base-1 warmed plans every size already replays wide, so
  /// padding only helps when wide-context reuse matters more than the
  /// wasted rows.
  int64_t pad_to = 0;
  /// true: honor request arrival_s offsets (open loop); false: admit as
  /// fast as capacity allows (closed loop).
  bool realtime = false;
  double relaxation = 1.0;
  DeadlineAction deadline_action = DeadlineAction::kAccount;
  /// Injectable time source (seconds); null = steady wall clock. Tests
  /// drive deadlines with a synthetic clock through this.
  std::function<double()> clock;
};

/// Options with the MF_SERVE_* environment applied over the defaults.
ServeOptions serve_options_from_env();

/// One per-request outcome: completion record + solution grid.
struct ServeResult {
  RequestRecord record;
  double final_delta = 0;
  linalg::Grid2D solution;
};

/// Build a zoo of seeded random-weight SDNet solvers, one per subdomain
/// size in `ms` (base.boundary_size is overridden to 4m per model).
std::vector<ServeModel> make_model_zoo(const std::vector<int64_t>& ms,
                                       const mosaic::SdnetConfig& base,
                                       std::uint64_t seed);

/// The named-integer configuration a zoo manifest entry must carry so
/// make_model_zoo_from_dir can rebuild the model: subdomain size plus
/// every SdnetConfig field. Kept next to the reader so the key sets
/// cannot drift apart.
std::vector<std::pair<std::string, std::int64_t>> zoo_entry_config(
    const mosaic::SdnetConfig& cfg, int64_t m);

/// Load a model zoo from an on-disk directory written by
/// `train_sdnet --zoo`: one ServeModel per manifest entry, in manifest
/// order (zoo_index = entry position). The manifest container and every
/// referenced parameter file are CRC-verified; any corruption, swap or
/// truncation throws std::runtime_error naming the file.
std::vector<ServeModel> make_model_zoo_from_dir(const std::string& dir);

/// Zoo selection honoring MF_SERVE_ZOO: when the variable names a
/// directory, load the versioned on-disk zoo from it; otherwise build
/// the synthetic random-weight zoo from `ms`/`base`/`seed`.
std::vector<ServeModel> make_model_zoo_env(const std::vector<int64_t>& ms,
                                           const mosaic::SdnetConfig& base,
                                           std::uint64_t seed);

class SolveServer {
 public:
  SolveServer(std::vector<ServeModel> zoo,
              ServeOptions opts = serve_options_from_env());

  /// Serve `requests` to completion (arrival_s offsets are relative to
  /// the start of the run). Returns results in request order. Worker
  /// threads > 1 pin their compute to one core each (SerialRegionGuard)
  /// so schedulers don't oversubscribe the OpenMP pool.
  std::vector<ServeResult> run(std::vector<SolveRequest> requests);

  const ServeStats& stats() const { return stats_; }
  const std::vector<ServeModel>& zoo() const { return zoo_; }

 private:
  std::vector<ServeModel> zoo_;
  ServeOptions opts_;
  ServeStats stats_;
};

}  // namespace mf::serve
