#include "serve/scheduler.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/grid2d.hpp"
#include "mosaic/scenario_predictor.hpp"
#include "mosaic/subdomain_solver.hpp"
#include "util/timing.hpp"

namespace mf::serve {

ServeJob::ServeJob(SolveRequest r, mosaic::LatticeInit init)
    : req(std::move(r)),
      window(0, 0, req.nx_cells, req.ny_cells) {
  linalg::apply_perimeter(window.grid(), req.boundary);
  if (init == mosaic::LatticeInit::kCoons) mosaic::coons_init(window.grid());
}

IterationScheduler::IterationScheduler(const std::vector<ServeModel>& zoo,
                                       const SchedulerOptions& opts)
    : zoo_(zoo), opts_(opts) {
  if (zoo_.empty()) {
    throw std::invalid_argument("IterationScheduler: empty model zoo");
  }
  // The per-tenant hot widened plans (cross at warm_batch and base 1,
  // interior at base 1) must survive whatever transient batch shapes
  // drift through the cache.
  mosaic::infer_cache_reserve(3 * zoo_.size() + 4);
}

const mosaic::SubdomainGeometry& IterationScheduler::geometry(int64_t m) {
  return geoms_.try_emplace(m, m).first->second;
}

void IterationScheduler::warm(int64_t warm_batch) {
  if (warm_batch <= 0) return;
  std::vector<std::vector<double>> boundaries(
      static_cast<std::size_t>(warm_batch));
  std::vector<std::vector<double>> one(1);
  std::vector<std::vector<double>> out;
  for (const auto& model : zoo_) {
    const mosaic::SubdomainGeometry& geom = geometry(model.m);
    // Conditioning width = 4m boundary values + the scenario suffix
    // (k perimeter / drift); the net's input layer is sized to it.
    const std::size_t G =
        static_cast<std::size_t>(model.net->config().boundary_size);
    for (auto& b : boundaries) b.assign(G, 0.0);
    one[0].assign(G, 0.0);
    // Two calls each: the cache captures a shape on its second sight and
    // offers the plan for widening. Cross plans warm at warm_batch (so
    // padded multiples replay through the wider base) AND at base 1;
    // interior plans warm at base 1. A base-1 widened plan makes ANY
    // batch size a whole multiple, so with padding off every phase group
    // and every retirement interior still replays wide — no eager rows,
    // no per-shape captures, whatever sizes the traffic produces.
    model.solver->predict(boundaries, geom.cross_queries, out);
    model.solver->predict(boundaries, geom.cross_queries, out);
    model.solver->predict(one, geom.cross_queries, out);
    model.solver->predict(one, geom.cross_queries, out);
    model.solver->predict(one, geom.interior_queries, out);
    model.solver->predict(one, geom.interior_queries, out);
  }
}

void IterationScheduler::admit(SolveRequest req, double now_s) {
  if (req.zoo_index < 0 ||
      static_cast<std::size_t>(req.zoo_index) >= zoo_.size()) {
    throw std::invalid_argument("IterationScheduler: bad zoo index");
  }
  if (req.field.kind !=
      zoo_[static_cast<std::size_t>(req.zoo_index)].scenario) {
    throw std::invalid_argument(
        "IterationScheduler: request scenario does not match the zoo model");
  }
  if (req.field.mask.defined()) {
    throw std::invalid_argument(
        "IterationScheduler: masked domains are not served; use "
        "mosaic_predict_scenario");
  }
  auto job = std::make_unique<ServeJob>(std::move(req), opts_.init);
  job->admit_s = now_s;
  jobs_.push_back(std::move(job));
  ++counters_.admitted;
}

void IterationScheduler::finalize(ServeJob& job, double now_s) {
  const double t0 = util::wall_seconds();
  const ServeModel& model = zoo_[static_cast<std::size_t>(job.req.zoo_index)];
  job.solution =
      linalg::Grid2D(job.req.nx_cells + 1, job.req.ny_cells + 1);
  // Poisson jobs delegate to the plain interior pass inside (bitwise the
  // pre-scenario retirement); other scenarios append their conditioning
  // suffix per tile.
  mosaic::predict_interior_field(job.window, *model.solver, geometry(model.m),
                                 job.req.field, job.req.nx_cells,
                                 job.req.ny_cells, job.solution);
  job.finish_s = now_s;
  job.done = true;
  ++counters_.retired;
  counters_.finalize_seconds += util::wall_seconds() - t0;
}

std::size_t IterationScheduler::tick(double now_s) {
  ++counters_.ticks;
  // Deadline check at the iteration boundary. kAccount keeps iterating
  // (degraded-mode accounting, PR 8 style: progress outside the SLO is
  // still progress); kRetire ships the current lattice state now.
  for (auto& jp : jobs_) {
    ServeJob& job = *jp;
    if (job.done || job.req.deadline_ms <= 0) continue;
    if ((now_s - job.req.arrival_s) * 1e3 <= job.req.deadline_ms) continue;
    if (!job.deadline_missed) {
      job.deadline_missed = true;
      ++counters_.deadline_misses;
    }
    if (opts_.deadline_action == DeadlineAction::kRetire) {
      job.converged = false;
      finalize(job, now_s);
    } else {
      ++job.degraded_iterations;
      ++counters_.degraded_iterations;
    }
  }

  // One Schwarz iteration for every in-flight job, batched per model:
  // all jobs' current-phase boundaries concatenate into one solver call.
  // Jobs sit in different phases (they were admitted at different
  // ticks), but the cross queries — hence the program shape — depend
  // only on m, so the rows still share one (widened) plan.
  struct Part {
    ServeJob* job;
    std::vector<std::pair<int64_t, int64_t>> corners;
    std::size_t offset;
  };
  std::vector<Part> parts;
  for (std::size_t mi = 0; mi < zoo_.size(); ++mi) {
    const ServeModel& model = zoo_[mi];
    const mosaic::SubdomainGeometry& geom = geometry(model.m);
    parts.clear();
    std::size_t total = 0;
    std::size_t contributing = 0;
    for (auto& jp : jobs_) {
      ServeJob& job = *jp;
      if (job.done || static_cast<std::size_t>(job.req.zoo_index) != mi)
        continue;
      const int64_t phase = job.iter % 4;
      auto corners = mosaic::phase_corners(
          phase, geom.h, geom.m, job.req.nx_cells, job.req.ny_cells, 0,
          job.req.nx_cells / geom.h, 0, job.req.ny_cells / geom.h);
      if (!corners.empty()) ++contributing;
      const std::size_t offset = total;
      total += corners.size();
      parts.push_back({&job, std::move(corners), offset});
    }
    if (total == 0) continue;
    if (opts_.batching) {
      std::size_t padded = total;
      if (opts_.pad_to > 0) {
        const std::size_t p = static_cast<std::size_t>(opts_.pad_to);
        padded = (total + p - 1) / p * p;
      }
      double t0 = util::wall_seconds();
      batch_boundaries_.resize(padded);
      for (const Part& part : parts) {
        mosaic::gather_phase_boundaries(part.job->window, geom, part.corners,
                                        batch_boundaries_, part.offset);
        if (model.scenario != scenario::Kind::kPoisson) {
          // Per-row scenario conditioning suffix (the gather resizes each
          // row to exactly 4m, so this appends to G = boundary_size).
          for (std::size_t b = 0; b < part.corners.size(); ++b) {
            scenario::conditioning_suffix_into(
                part.job->req.field, model.m, part.corners[b].first,
                part.corners[b].second, batch_boundaries_[part.offset + b]);
          }
        }
      }
      const std::size_t G =
          static_cast<std::size_t>(model.net->config().boundary_size);
      for (std::size_t i = total; i < padded; ++i) {
        batch_boundaries_[i].assign(G, 0.0);
      }
      double t1 = util::wall_seconds();
      counters_.gather_seconds += t1 - t0;
      model.solver->predict(batch_boundaries_, geom.cross_queries,
                            batch_predictions_);
      double t2 = util::wall_seconds();
      counters_.predict_seconds += t2 - t1;
      ++counters_.batches;
      counters_.batched_rows += total;
      counters_.pad_rows += padded - total;
      if (contributing >= 2) ++counters_.shared_batches;
      for (const Part& part : parts) {
        mosaic::PhaseResult pr;
        mosaic::scatter_phase_predictions(part.job->window, geom, part.corners,
                                          batch_predictions_, part.offset,
                                          opts_.relaxation, pr);
        part.job->cycle_num += pr.delta_num;
        part.job->cycle_den += pr.delta_den;
      }
      counters_.scatter_seconds += util::wall_seconds() - t2;
    } else {
      // Hatch/baseline: one solver call per job, no cross-request GEMMs.
      for (const Part& part : parts) {
        if (part.corners.empty()) continue;
        batch_boundaries_.resize(part.corners.size());
        mosaic::gather_phase_boundaries(part.job->window, geom, part.corners,
                                        batch_boundaries_, 0);
        if (model.scenario != scenario::Kind::kPoisson) {
          for (std::size_t b = 0; b < part.corners.size(); ++b) {
            scenario::conditioning_suffix_into(
                part.job->req.field, model.m, part.corners[b].first,
                part.corners[b].second, batch_boundaries_[b]);
          }
        }
        model.solver->predict(batch_boundaries_, geom.cross_queries,
                              batch_predictions_);
        ++counters_.batches;
        counters_.batched_rows += part.corners.size();
        mosaic::PhaseResult pr;
        mosaic::scatter_phase_predictions(part.job->window, geom, part.corners,
                                          batch_predictions_, 0,
                                          opts_.relaxation, pr);
        part.job->cycle_num += pr.delta_num;
        part.job->cycle_den += pr.delta_den;
      }
    }
  }

  // Advance iteration bookkeeping — the exact mosaic_predict convergence
  // rule, evaluated per job so batching cannot change when a job stops.
  for (auto& jp : jobs_) {
    ServeJob& job = *jp;
    if (job.done) continue;
    const int64_t phase = job.iter % 4;
    job.iter += 1;
    if (phase == 3) {
      job.final_delta = job.cycle_den > 0
                            ? std::sqrt(job.cycle_num / job.cycle_den)
                            : 0.0;
      job.cycle_num = job.cycle_den = 0;
      if (job.final_delta < job.req.tol) {
        job.converged = true;
        job.done = true;
      }
    }
    if (!job.done && job.iter >= job.req.max_iters) job.done = true;
    if (job.done) finalize(job, now_s);
  }

  // Sweep retired jobs out of the in-flight set.
  std::vector<std::unique_ptr<ServeJob>> still;
  still.reserve(jobs_.size());
  for (auto& jp : jobs_) {
    if (jp->done) {
      finished_.push_back(std::move(*jp));
    } else {
      still.push_back(std::move(jp));
    }
  }
  jobs_.swap(still);
  return jobs_.size();
}

std::vector<ServeJob> IterationScheduler::take_finished() {
  std::vector<ServeJob> out;
  out.swap(finished_);
  return out;
}

}  // namespace mf::serve
