// Seeded workload generation for the multi-tenant solve server: solve
// jobs drawn from a small geometry zoo with Poisson/burst arrival curves
// and per-request latency deadlines. Fully deterministic given the seed,
// so load tests and the serve benchmark are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <vector>

#include "scenario/scenario.hpp"
#include "util/rng.hpp"

namespace mf::serve {

/// One solve job offered to the server.
struct SolveRequest {
  int64_t id = 0;
  int zoo_index = 0;  // which zoo model/geometry serves this request
  int64_t nx_cells = 0, ny_cells = 0;
  /// Global boundary, canonical perimeter order (2(nx+ny) values).
  std::vector<double> boundary;
  /// PDE scenario of this job: kind plus per-request coefficients
  /// (variable diffusivity field / drift). Default-constructed = plain
  /// Poisson, the pre-scenario workload. The kind must match the zoo
  /// model named by zoo_index; masked domains are not served (they go
  /// through mosaic_predict_scenario offline).
  scenario::Field field;
  double arrival_s = 0;    // offered arrival time relative to run start
  double deadline_ms = 0;  // latency budget; 0 = no deadline
  int64_t max_iters = 40;  // Schwarz iteration budget
  double tol = 1e-4;       // convergence threshold on the cycle delta
};

/// A domain shape served by one zoo model (subdomain size m). Cell counts
/// must be multiples of m.
struct GeometrySpec {
  int zoo_index = 0;
  int64_t m = 8;
  int64_t nx_cells = 32, ny_cells = 32;
  /// Scenario the zoo model serves; non-Poisson specs make the generator
  /// draw fresh per-request coefficient fields (the "scenario mix").
  scenario::Kind scenario = scenario::Kind::kPoisson;
};

struct RequestGenConfig {
  std::uint64_t seed = 20260807;
  /// Mean Poisson arrival rate outside bursts (requests / second).
  double rate_hz = 100;
  /// Periodic bursts: for `burst_duty` of every `burst_period_s` cycle
  /// the arrival rate is multiplied by `burst_factor`.
  double burst_factor = 4.0;
  double burst_period_s = 2.0;
  double burst_duty = 0.25;
  /// Per-request deadline, sampled log-uniformly in [min, max].
  double deadline_ms_min = 50;
  double deadline_ms_max = 500;
  /// Iteration budget in full 4-phase Schwarz cycles, sampled uniformly.
  /// Random-weight zoo nets rarely reach `tol`, so the budget is what
  /// actually staggers retirement; varied budgets make jobs join and
  /// leave the shared batch at different iterations.
  int64_t min_cycles = 2;
  int64_t max_cycles = 8;
  double tol = 1e-4;
  /// Fourier modes of the synthesized periodic boundary signal.
  int boundary_modes = 3;
};

/// Deterministic stream of solve jobs over a geometry zoo.
class RequestGenerator {
 public:
  RequestGenerator(std::vector<GeometrySpec> zoo, const RequestGenConfig& cfg);

  SolveRequest next();
  std::vector<SolveRequest> generate(int64_t n);

 private:
  std::vector<GeometrySpec> zoo_;
  RequestGenConfig cfg_;
  util::Rng rng_;
  int64_t next_id_ = 0;
  double clock_s_ = 0;  // arrival-process time
};

}  // namespace mf::serve
