#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "mosaic/subdomain_solver.hpp"

namespace mf::serve {

void SchedulerCounters::merge(const SchedulerCounters& o) {
  ticks += o.ticks;
  admitted += o.admitted;
  retired += o.retired;
  batches += o.batches;
  shared_batches += o.shared_batches;
  batched_rows += o.batched_rows;
  pad_rows += o.pad_rows;
  deadline_misses += o.deadline_misses;
  degraded_iterations += o.degraded_iterations;
  gather_seconds += o.gather_seconds;
  predict_seconds += o.predict_seconds;
  scatter_seconds += o.scatter_seconds;
  finalize_seconds += o.finalize_seconds;
}

void ServeStats::add_record(const RequestRecord& r) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(r);
}

void ServeStats::merge_counters(const SchedulerCounters& c) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.merge(c);
}

std::vector<RequestRecord> ServeStats::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

SchedulerCounters ServeStats::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double ServeStats::latency_percentile_ms(double p) const {
  std::vector<double> lat;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lat.reserve(records_.size());
    for (const auto& r : records_) lat.push_back(r.latency_ms());
  }
  return percentile(std::move(lat), p);
}

std::string ServeStats::summary_line(double wall_s) const {
  const SchedulerCounters c = counters();
  std::size_t n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = records_.size();
  }
  const double rps = wall_s > 0 ? static_cast<double>(n) / wall_s : 0.0;
  const mosaic::InferCacheStats ic = mosaic::infer_cache_stats();
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "serve: req=%zu rps=%.1f p50=%.2fms p99=%.2fms misses=%llu "
      "degraded_iters=%llu | batches=%llu shared=%llu rows=%llu | "
      "cache: exact=%llu wide=%llu chunked=%llu rem_rows=%llu eager=%llu "
      "captures=%llu evictions=%llu retired=%llu",
      n, rps, latency_percentile_ms(50), latency_percentile_ms(99),
      static_cast<unsigned long long>(c.deadline_misses),
      static_cast<unsigned long long>(c.degraded_iterations),
      static_cast<unsigned long long>(c.batches),
      static_cast<unsigned long long>(c.shared_batches),
      static_cast<unsigned long long>(c.batched_rows),
      static_cast<unsigned long long>(ic.exact_hits),
      static_cast<unsigned long long>(ic.widened_hits),
      static_cast<unsigned long long>(ic.chunked_hits),
      static_cast<unsigned long long>(ic.widen_remainder_rows),
      static_cast<unsigned long long>(ic.misses),
      static_cast<unsigned long long>(ic.captures),
      static_cast<unsigned long long>(ic.evictions),
      static_cast<unsigned long long>(ic.retired));
  return std::string(buf);
}

}  // namespace mf::serve
