#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "ad/kernels.hpp"
#include "util/timing.hpp"

namespace mf::serve {

ServeOptions serve_options_from_env() {
  ServeOptions opts;
  if (const char* v = std::getenv("MF_SERVE_THREADS")) {
    opts.threads = std::max(1, std::atoi(v));
  }
  if (const char* v = std::getenv("MF_SERVE_MAX_INFLIGHT")) {
    opts.max_inflight = std::max(1, std::atoi(v));
  }
  if (const char* v = std::getenv("MF_SERVE_DISABLE_BATCHING")) {
    opts.batching = !(v[0] != '\0' && v[0] != '0');
  }
  if (const char* v = std::getenv("MF_SERVE_WARM_BATCH")) {
    opts.warm_batch = std::atol(v);
  }
  if (const char* v = std::getenv("MF_SERVE_PAD_TO")) {
    opts.pad_to = std::atol(v);
  }
  if (const char* v = std::getenv("MF_SERVE_DEADLINE_ACTION")) {
    opts.deadline_action = std::strcmp(v, "retire") == 0
                               ? DeadlineAction::kRetire
                               : DeadlineAction::kAccount;
  }
  return opts;
}

std::vector<ServeModel> make_model_zoo(const std::vector<int64_t>& ms,
                                       const mosaic::SdnetConfig& base,
                                       std::uint64_t seed) {
  std::vector<ServeModel> zoo;
  zoo.reserve(ms.size());
  for (std::size_t i = 0; i < ms.size(); ++i) {
    ServeModel model;
    model.m = ms[i];
    mosaic::SdnetConfig cfg = base;
    cfg.boundary_size = 4 * model.m;
    util::Rng rng(seed + i);
    model.net = std::make_shared<mosaic::Sdnet>(cfg, rng);
    model.solver =
        std::make_shared<mosaic::NeuralSubdomainSolver>(model.net, model.m);
    zoo.push_back(std::move(model));
  }
  return zoo;
}

SolveServer::SolveServer(std::vector<ServeModel> zoo, ServeOptions opts)
    : zoo_(std::move(zoo)), opts_(std::move(opts)) {
  if (zoo_.empty()) throw std::invalid_argument("SolveServer: empty zoo");
  if (!opts_.clock) opts_.clock = [] { return util::wall_seconds(); };
}

namespace {

/// Admission state shared by the workers: requests sorted by arrival,
/// handed out under a mutex so each job lands on exactly one worker's
/// scheduler (workers own disjoint job sets; ticks never lock).
struct AdmissionQueue {
  std::vector<SolveRequest>* requests = nullptr;
  std::vector<std::size_t> order;  // request indices sorted by arrival_s
  std::vector<std::size_t> slot;   // order[i] -> original request index
  std::size_t next = 0;
  std::mutex mu;
};

}  // namespace

std::vector<ServeResult> SolveServer::run(std::vector<SolveRequest> requests) {
  const double t0 = opts_.clock();
  // Arrival offsets -> absolute server-clock times (deadlines and
  // latency are measured from these).
  for (auto& req : requests) req.arrival_s += t0;

  AdmissionQueue queue;
  queue.requests = &requests;
  queue.order.resize(requests.size());
  std::iota(queue.order.begin(), queue.order.end(), std::size_t{0});
  std::stable_sort(queue.order.begin(), queue.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].arrival_s < requests[b].arrival_s;
                   });

  std::vector<ServeResult> results(requests.size());
  std::mutex results_mu;

  SchedulerOptions sched_opts;
  sched_opts.batching = opts_.batching;
  sched_opts.pad_to = opts_.batching ? opts_.pad_to : 0;
  sched_opts.relaxation = opts_.relaxation;
  sched_opts.deadline_action = opts_.deadline_action;

  auto worker = [&](int worker_id) {
    // Several workers would oversubscribe the OpenMP pool (and wreck the
    // per-thread CPU-clock accounting); each worker computes serially
    // and parallelism comes from the worker count itself.
    std::unique_ptr<ad::kernels::SerialRegionGuard> guard;
    if (opts_.threads > 1) {
      guard = std::make_unique<ad::kernels::SerialRegionGuard>();
    }
    (void)worker_id;
    IterationScheduler sched(zoo_, sched_opts);
    sched.warm(opts_.warm_batch);
    // Job -> original request index, to place results.
    std::vector<std::pair<int64_t, std::size_t>> id_slots;
    while (true) {
      const double now = opts_.clock();
      bool drained = false;
      {
        std::lock_guard<std::mutex> lock(queue.mu);
        while (queue.next < queue.order.size() &&
               sched.inflight() <
                   static_cast<std::size_t>(opts_.max_inflight)) {
          const std::size_t ri = queue.order[queue.next];
          const SolveRequest& req = requests[ri];
          if (opts_.realtime && req.arrival_s > now) break;
          ++queue.next;
          id_slots.emplace_back(req.id, ri);
          sched.admit(req, now);
        }
        drained = queue.next >= queue.order.size();
      }
      if (sched.inflight() == 0) {
        if (drained) break;
        // Open loop, nothing in flight: wait for the next arrival.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      sched.tick(now);
      for (ServeJob& job : sched.take_finished()) {
        RequestRecord rec;
        rec.id = job.req.id;
        rec.zoo_index = job.req.zoo_index;
        rec.iterations = job.iter;
        rec.converged = job.converged;
        rec.deadline_missed = job.deadline_missed;
        rec.degraded_iterations = job.degraded_iterations;
        rec.arrival_s = job.req.arrival_s;
        rec.admit_s = job.admit_s;
        rec.finish_s = job.finish_s;
        stats_.add_record(rec);
        std::size_t ri = static_cast<std::size_t>(-1);
        for (const auto& [id, slot] : id_slots) {
          if (id == job.req.id) {
            ri = slot;
            break;
          }
        }
        std::lock_guard<std::mutex> lock(results_mu);
        ServeResult& res = results[ri];
        res.record = rec;
        res.final_delta = job.final_delta;
        res.solution = std::move(job.solution);
      }
    }
    stats_.merge_counters(sched.counters());
  };

  if (opts_.threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(opts_.threads));
    for (int t = 0; t < opts_.threads; ++t) threads.emplace_back(worker, t);
    for (auto& th : threads) th.join();
  }
  return results;
}

}  // namespace mf::serve
