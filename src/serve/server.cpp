#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "ad/kernels.hpp"
#include "nn/serialize.hpp"
#include "util/timing.hpp"

namespace mf::serve {

ServeOptions serve_options_from_env() {
  ServeOptions opts;
  if (const char* v = std::getenv("MF_SERVE_THREADS")) {
    opts.threads = std::max(1, std::atoi(v));
  }
  if (const char* v = std::getenv("MF_SERVE_MAX_INFLIGHT")) {
    opts.max_inflight = std::max(1, std::atoi(v));
  }
  if (const char* v = std::getenv("MF_SERVE_DISABLE_BATCHING")) {
    opts.batching = !(v[0] != '\0' && v[0] != '0');
  }
  if (const char* v = std::getenv("MF_SERVE_WARM_BATCH")) {
    opts.warm_batch = std::atol(v);
  }
  if (const char* v = std::getenv("MF_SERVE_PAD_TO")) {
    opts.pad_to = std::atol(v);
  }
  if (const char* v = std::getenv("MF_SERVE_DEADLINE_ACTION")) {
    opts.deadline_action = std::strcmp(v, "retire") == 0
                               ? DeadlineAction::kRetire
                               : DeadlineAction::kAccount;
  }
  return opts;
}

std::vector<ServeModel> make_model_zoo(const std::vector<int64_t>& ms,
                                       const mosaic::SdnetConfig& base,
                                       std::uint64_t seed) {
  std::vector<ServeModel> zoo;
  zoo.reserve(ms.size());
  for (std::size_t i = 0; i < ms.size(); ++i) {
    ServeModel model;
    model.m = ms[i];
    mosaic::SdnetConfig cfg = base;
    cfg.boundary_size = 4 * model.m;
    util::Rng rng(seed + i);
    model.net = std::make_shared<mosaic::Sdnet>(cfg, rng);
    model.solver =
        std::make_shared<mosaic::NeuralSubdomainSolver>(model.net, model.m);
    zoo.push_back(std::move(model));
  }
  return zoo;
}

std::vector<std::pair<std::string, std::int64_t>> zoo_entry_config(
    const mosaic::SdnetConfig& cfg, int64_t m) {
  return {
      {"m", m},
      {"boundary_size", cfg.boundary_size},
      {"hidden_width", cfg.hidden_width},
      {"mlp_depth", cfg.mlp_depth},
      {"activation", static_cast<std::int64_t>(cfg.activation)},
      {"use_conv_encoder", cfg.use_conv_encoder ? 1 : 0},
      {"conv_channels", cfg.conv_channels},
      {"conv_depth", cfg.conv_depth},
      {"conv_kernel", cfg.conv_kernel},
      {"use_split_embedding", cfg.use_split_embedding ? 1 : 0},
  };
}

std::vector<ServeModel> make_model_zoo_from_dir(const std::string& dir) {
  const nn::ZooManifest manifest = nn::load_zoo_manifest(dir);
  if (manifest.entries.empty()) {
    throw std::runtime_error("make_model_zoo_from_dir: empty manifest in " +
                             dir);
  }
  std::vector<ServeModel> zoo;
  zoo.reserve(manifest.entries.size());
  for (const nn::ZooEntry& entry : manifest.entries) {
    ServeModel model;
    model.m = entry.need_config("m");
    model.scenario = scenario::kind_from_name(entry.scenario);
    mosaic::SdnetConfig cfg;
    cfg.boundary_size = entry.need_config("boundary_size");
    cfg.hidden_width = entry.need_config("hidden_width");
    cfg.mlp_depth = entry.need_config("mlp_depth");
    cfg.activation =
        static_cast<nn::Activation>(entry.need_config("activation"));
    cfg.use_conv_encoder = entry.need_config("use_conv_encoder") != 0;
    cfg.conv_channels = entry.need_config("conv_channels");
    cfg.conv_depth = entry.need_config("conv_depth");
    cfg.conv_kernel = entry.need_config("conv_kernel");
    cfg.use_split_embedding = entry.need_config("use_split_embedding") != 0;
    // Seeded init only sizes the tensors; the checkpoint overwrites every
    // parameter, so the RNG seed here cannot affect served results.
    util::Rng rng(0);
    auto net = std::make_shared<mosaic::Sdnet>(cfg, rng);
    nn::load_parameters(*net, dir + "/" + entry.params_file);
    model.net = net;
    model.solver =
        std::make_shared<mosaic::NeuralSubdomainSolver>(net, model.m);
    zoo.push_back(std::move(model));
  }
  return zoo;
}

std::vector<ServeModel> make_model_zoo_env(const std::vector<int64_t>& ms,
                                           const mosaic::SdnetConfig& base,
                                           std::uint64_t seed) {
  if (const char* dir = std::getenv("MF_SERVE_ZOO")) {
    if (dir[0] != '\0') return make_model_zoo_from_dir(dir);
  }
  return make_model_zoo(ms, base, seed);
}

SolveServer::SolveServer(std::vector<ServeModel> zoo, ServeOptions opts)
    : zoo_(std::move(zoo)), opts_(std::move(opts)) {
  if (zoo_.empty()) throw std::invalid_argument("SolveServer: empty zoo");
  if (!opts_.clock) opts_.clock = [] { return util::wall_seconds(); };
}

namespace {

/// Admission state shared by the workers: requests sorted by arrival,
/// handed out under a mutex so each job lands on exactly one worker's
/// scheduler (workers own disjoint job sets; ticks never lock).
struct AdmissionQueue {
  std::vector<SolveRequest>* requests = nullptr;
  std::vector<std::size_t> order;  // request indices sorted by arrival_s
  std::vector<std::size_t> slot;   // order[i] -> original request index
  std::size_t next = 0;
  std::mutex mu;
};

}  // namespace

std::vector<ServeResult> SolveServer::run(std::vector<SolveRequest> requests) {
  const double t0 = opts_.clock();
  // Arrival offsets -> absolute server-clock times (deadlines and
  // latency are measured from these).
  for (auto& req : requests) req.arrival_s += t0;

  AdmissionQueue queue;
  queue.requests = &requests;
  queue.order.resize(requests.size());
  std::iota(queue.order.begin(), queue.order.end(), std::size_t{0});
  std::stable_sort(queue.order.begin(), queue.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].arrival_s < requests[b].arrival_s;
                   });

  std::vector<ServeResult> results(requests.size());
  std::mutex results_mu;

  SchedulerOptions sched_opts;
  sched_opts.batching = opts_.batching;
  sched_opts.pad_to = opts_.batching ? opts_.pad_to : 0;
  sched_opts.relaxation = opts_.relaxation;
  sched_opts.deadline_action = opts_.deadline_action;

  auto worker = [&](int worker_id) {
    // Several workers would oversubscribe the OpenMP pool (and wreck the
    // per-thread CPU-clock accounting); each worker computes serially
    // and parallelism comes from the worker count itself.
    std::unique_ptr<ad::kernels::SerialRegionGuard> guard;
    if (opts_.threads > 1) {
      guard = std::make_unique<ad::kernels::SerialRegionGuard>();
    }
    (void)worker_id;
    IterationScheduler sched(zoo_, sched_opts);
    sched.warm(opts_.warm_batch);
    // Job -> original request index, to place results.
    std::vector<std::pair<int64_t, std::size_t>> id_slots;
    while (true) {
      const double now = opts_.clock();
      bool drained = false;
      {
        std::lock_guard<std::mutex> lock(queue.mu);
        while (queue.next < queue.order.size() &&
               sched.inflight() <
                   static_cast<std::size_t>(opts_.max_inflight)) {
          const std::size_t ri = queue.order[queue.next];
          const SolveRequest& req = requests[ri];
          if (opts_.realtime && req.arrival_s > now) break;
          ++queue.next;
          id_slots.emplace_back(req.id, ri);
          sched.admit(req, now);
        }
        drained = queue.next >= queue.order.size();
      }
      if (sched.inflight() == 0) {
        if (drained) break;
        // Open loop, nothing in flight: wait for the next arrival.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      sched.tick(now);
      for (ServeJob& job : sched.take_finished()) {
        RequestRecord rec;
        rec.id = job.req.id;
        rec.zoo_index = job.req.zoo_index;
        rec.iterations = job.iter;
        rec.converged = job.converged;
        rec.deadline_missed = job.deadline_missed;
        rec.degraded_iterations = job.degraded_iterations;
        rec.arrival_s = job.req.arrival_s;
        rec.admit_s = job.admit_s;
        rec.finish_s = job.finish_s;
        stats_.add_record(rec);
        std::size_t ri = static_cast<std::size_t>(-1);
        for (const auto& [id, slot] : id_slots) {
          if (id == job.req.id) {
            ri = slot;
            break;
          }
        }
        std::lock_guard<std::mutex> lock(results_mu);
        ServeResult& res = results[ri];
        res.record = rec;
        res.final_delta = job.final_delta;
        res.solution = std::move(job.solution);
      }
    }
    stats_.merge_counters(sched.counters());
  };

  if (opts_.threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(opts_.threads));
    for (int t = 0; t < opts_.threads; ++t) threads.emplace_back(worker, t);
    for (auto& th : threads) th.join();
  }
  return results;
}

}  // namespace mf::serve
