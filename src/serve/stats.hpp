// Serve-side observability: per-request latency records, scheduler
// batching counters, and a one-line stats summary that folds in the
// compiled-inference cache counters (mosaic::infer_cache_stats), so a
// load run shows at a glance whether cross-request batching is actually
// sharing plans or silently degrading to eager dispatch.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mf::serve {

/// Completed-request record (times in seconds on the server clock).
struct RequestRecord {
  int64_t id = 0;
  int zoo_index = 0;
  int64_t iterations = 0;
  bool converged = false;
  bool deadline_missed = false;
  int64_t degraded_iterations = 0;  // iterations run past the deadline
  double arrival_s = 0, admit_s = 0, finish_s = 0;

  double latency_ms() const { return (finish_s - arrival_s) * 1e3; }
  double queue_ms() const { return (admit_s - arrival_s) * 1e3; }
};

/// Per-scheduler batching counters (merged across workers by ServeStats).
struct SchedulerCounters {
  std::uint64_t ticks = 0;
  std::uint64_t admitted = 0;
  std::uint64_t retired = 0;
  std::uint64_t batches = 0;         // solver dispatches from phase updates
  std::uint64_t shared_batches = 0;  // dispatches mixing >= 2 requests
  std::uint64_t batched_rows = 0;    // subdomain rows through those batches
  std::uint64_t pad_rows = 0;        // zero rows appended to reach pad_to
  std::uint64_t deadline_misses = 0;
  // Same degraded-mode accounting as the distributed predictor's
  // degraded_iterations (PR 8): progress made outside the SLO, not lost.
  std::uint64_t degraded_iterations = 0;
  // Where tick time goes (per-worker wall seconds, summed on merge).
  double gather_seconds = 0;
  double predict_seconds = 0;
  double scatter_seconds = 0;
  double finalize_seconds = 0;

  void merge(const SchedulerCounters& o);
};

/// Thread-safe sink for request records + counters.
class ServeStats {
 public:
  void add_record(const RequestRecord& r);
  void merge_counters(const SchedulerCounters& c);

  std::vector<RequestRecord> records() const;
  SchedulerCounters counters() const;

  /// Latency percentile in milliseconds (p in [0, 100]); 0 when empty.
  double latency_percentile_ms(double p) const;

  /// One-line summary: requests, throughput over `wall_s`, p50/p99,
  /// deadline misses, batching counters, and the inference-cache
  /// counters (hits/misses/chunk remainders/captures/retired).
  std::string summary_line(double wall_s) const;

 private:
  mutable std::mutex mu_;
  std::vector<RequestRecord> records_;
  SchedulerCounters counters_;
};

/// p-th percentile (nearest-rank) of a sample; 0 on empty input.
double percentile(std::vector<double> xs, double p);

}  // namespace mf::serve
