// Binary save/load of module parameters (a minimal state_dict).
#pragma once

#include <string>

#include "nn/module.hpp"

namespace mf::nn {

/// Write all named parameters of `m` to `path`. Format: little-endian
/// [count][per-entry: name, rank, dims..., payload doubles].
void save_parameters(const Module& m, const std::string& path);

/// Load parameters saved by save_parameters into `m`. Names and shapes
/// must match exactly.
void load_parameters(Module& m, const std::string& path);

}  // namespace mf::nn
