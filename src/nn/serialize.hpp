// Binary save/load of module parameters (a minimal state_dict) and full
// training checkpoints.
//
// Both file kinds share a little-endian container: a 32-byte header
// [magic u64, version u64, payload_bytes u64, payload crc32 u64]
// followed by the payload. Loads read the whole file, verify magic,
// version and CRC, then parse the payload through a bounds-checked
// reader — a truncated, corrupted or mislabeled file produces a clear
// error naming the path, never an out-of-bounds read or a silently
// wrong tensor. Saves write to `path + ".tmp"` and rename into place so
// a crash mid-save never clobbers the previous good file.
//
// Parameter files written before the header existed (raw
// [count][entries...] bodies) still load: a leading value that is not
// the magic is treated as the legacy count.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.hpp"

namespace mf::nn {

/// Write all named parameters of `m` to `path`. Payload format:
/// [count][per-entry: name, rank, dims..., payload doubles].
void save_parameters(const Module& m, const std::string& path);

/// Load parameters saved by save_parameters into `m`. Names and shapes
/// must match exactly; header (when present) is CRC-verified first.
void load_parameters(Module& m, const std::string& path);

/// Everything needed to restart training mid-trajectory, bitwise:
/// named double blobs (parameters, optimizer state), named integer
/// counters (step/epoch cursors), and the serialized RNG engine state.
struct TrainingCheckpoint {
  std::vector<std::pair<std::string, std::vector<double>>> blobs;
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::string rng_state;  // std::mt19937_64 stream representation

  const std::vector<double>* find_blob(const std::string& name) const;
  const std::int64_t* find_counter(const std::string& name) const;
};

/// Atomically write `ckpt` to `path` (tmp file + rename).
void save_checkpoint(const TrainingCheckpoint& ckpt, const std::string& path);

/// Load a checkpoint; throws std::runtime_error with the path and the
/// reason on any structural problem (bad magic/version/CRC/truncation).
TrainingCheckpoint load_checkpoint(const std::string& path);

// ---- model zoo manifest ----------------------------------------------------
//
// A zoo is a directory of parameter files plus one `zoo.manifest`
// describing each checkpoint: which scenario it serves, its geometry and
// network configuration (as generic named integers — this layer knows
// nothing about SDNet), the training precision and fingerprint, and the
// CRC32 of the referenced parameter file. The manifest itself rides in
// the same CRC-verified container as every other file here, and loading
// re-hashes every referenced parameter file against its recorded CRC, so
// a swapped, truncated or bit-flipped checkpoint is rejected at startup
// with a clear error instead of silently serving garbage.

struct ZooEntry {
  std::string scenario;     // canonical scenario name ("poisson", ...)
  std::string precision;    // compute precision note ("f64", "f32")
  std::string params_file;  // file name relative to the zoo directory
  std::string fingerprint;  // free-form training provenance (seed, epochs)
  std::uint64_t params_crc = 0;  // crc32 of the parameter file bytes
  /// Named integer configuration (subdomain size, network dims, flags).
  std::vector<std::pair<std::string, std::int64_t>> config;

  const std::int64_t* find_config(const std::string& name) const;
  /// find_config or throw a runtime_error naming the missing key.
  std::int64_t need_config(const std::string& name) const;
};

struct ZooManifest {
  std::vector<ZooEntry> entries;
  const ZooEntry* find(const std::string& scenario) const;
};

/// CRC32 of a file's bytes (for ZooEntry::params_crc).
std::uint64_t file_crc32(const std::string& path);

/// Atomically write `dir`/zoo.manifest.
void save_zoo_manifest(const ZooManifest& manifest, const std::string& dir);

/// Load `dir`/zoo.manifest. With `verify_params` (the default), every
/// entry's parameter file is re-hashed and compared against the recorded
/// CRC; any mismatch, missing file, or structural manifest problem
/// throws std::runtime_error naming the path and reason.
ZooManifest load_zoo_manifest(const std::string& dir,
                              bool verify_params = true);

}  // namespace mf::nn
