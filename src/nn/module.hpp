// Module base class: a registry of named parameters and submodules,
// mirroring the torch.nn.Module contract the paper's models are built on.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ad/tensor.hpp"
#include "util/rng.hpp"

namespace mf::nn {

using ad::Tensor;

class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module and its children.
  std::vector<Tensor> parameters() const;

  /// Parameters with hierarchical dotted names ("mlp.0.weight").
  std::vector<std::pair<std::string, Tensor>> named_parameters() const;

  /// Total scalar parameter count.
  int64_t parameter_count() const;

  /// Zero the gradient of every parameter.
  void zero_grad();

  /// Copy parameter values from another module with identical structure.
  void copy_parameters_from(const Module& other);

 protected:
  Tensor register_parameter(const std::string& name, Tensor t);
  void register_module(const std::string& name, std::shared_ptr<Module> child);

 private:
  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, Tensor>>& out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
};

// ---- initializers ----

/// Uniform(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out)).
void xavier_uniform_(Tensor& t, int64_t fan_in, int64_t fan_out,
                     util::Rng& rng, double gain = 1.0);

/// Normal(0, sqrt(2 / fan_in)) — He initialization.
void kaiming_normal_(Tensor& t, int64_t fan_in, util::Rng& rng);

}  // namespace mf::nn
