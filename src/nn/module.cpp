#include "nn/module.hpp"

#include <cmath>
#include <stdexcept>

namespace mf::nn {

std::vector<Tensor> Module::parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, t] : named_parameters()) out.push_back(t);
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  collect("", out);
  return out;
}

int64_t Module::parameter_count() const {
  int64_t n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

void Module::copy_parameters_from(const Module& other) {
  auto dst = named_parameters();
  auto src = other.named_parameters();
  if (dst.size() != src.size()) {
    throw std::invalid_argument("copy_parameters_from: structure mismatch");
  }
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (dst[i].second.shape() != src[i].second.shape()) {
      throw std::invalid_argument("copy_parameters_from: shape mismatch at " +
                                  dst[i].first);
    }
    dst[i].second.vec() = src[i].second.vec();
  }
}

Tensor Module::register_parameter(const std::string& name, Tensor t) {
  t.set_requires_grad(true);
  params_.emplace_back(name, t);
  return t;
}

void Module::register_module(const std::string& name,
                             std::shared_ptr<Module> child) {
  children_.emplace_back(name, std::move(child));
}

void Module::collect(const std::string& prefix,
                     std::vector<std::pair<std::string, Tensor>>& out) const {
  for (const auto& [name, t] : params_) {
    out.emplace_back(prefix.empty() ? name : prefix + "." + name, t);
  }
  for (const auto& [name, child] : children_) {
    child->collect(prefix.empty() ? name : prefix + "." + name, out);
  }
}

void xavier_uniform_(Tensor& t, int64_t fan_in, int64_t fan_out,
                     util::Rng& rng, double gain) {
  const double a = gain * std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (int64_t i = 0; i < t.numel(); ++i) t.flat(i) = rng.uniform(-a, a);
}

void kaiming_normal_(Tensor& t, int64_t fan_in, util::Rng& rng) {
  const double s = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (int64_t i = 0; i < t.numel(); ++i) t.flat(i) = rng.normal(0.0, s);
}

}  // namespace mf::nn
