#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace mf::nn {

namespace {

void write_u64(std::ofstream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

}  // namespace

void save_parameters(const Module& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_parameters: cannot open " + path);
  const auto params = m.named_parameters();
  write_u64(os, params.size());
  for (const auto& [name, t] : params) {
    write_u64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u64(os, t.shape().size());
    for (int64_t d : t.shape()) write_u64(os, static_cast<std::uint64_t>(d));
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(double)));
  }
  if (!os) throw std::runtime_error("save_parameters: write failed: " + path);
}

void load_parameters(Module& m, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_parameters: cannot open " + path);
  auto params = m.named_parameters();
  const std::uint64_t count = read_u64(is);
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (auto& [name, t] : params) {
    const std::uint64_t name_len = read_u64(is);
    std::string stored(name_len, '\0');
    is.read(stored.data(), static_cast<std::streamsize>(name_len));
    if (stored != name) {
      throw std::runtime_error("load_parameters: expected '" + name +
                               "', found '" + stored + "'");
    }
    const std::uint64_t rank = read_u64(is);
    ad::Shape shape(rank);
    for (auto& d : shape) d = static_cast<int64_t>(read_u64(is));
    if (shape != t.shape()) {
      throw std::runtime_error("load_parameters: shape mismatch for " + name);
    }
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(double)));
  }
  if (!is) throw std::runtime_error("load_parameters: truncated file: " + path);
}

}  // namespace mf::nn
