#include "nn/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/crc32.hpp"

namespace mf::nn {

namespace {

// "MFPARAM1" / "MFCKPT01" / "MFZOO001" as little-endian u64s.
constexpr std::uint64_t kParamsMagic = 0x314d41524150464dULL;
constexpr std::uint64_t kCheckpointMagic = 0x3130545048434d46ULL;
constexpr std::uint64_t kZooMagic = 0x3130304f4f5a464dULL;
constexpr std::uint64_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 4 * sizeof(std::uint64_t);

// ---- payload writer -------------------------------------------------------

struct BufWriter {
  std::vector<unsigned char> buf;

  void bytes(const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    buf.insert(buf.end(), c, c + n);
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i64(std::int64_t v) { bytes(&v, sizeof(v)); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void doubles(const double* p, std::size_t count) {
    bytes(p, count * sizeof(double));
  }
};

// ---- bounds-checked payload reader ---------------------------------------

class BufReader {
 public:
  BufReader(const unsigned char* data, std::size_t size, std::string context)
      : data_(data), size_(size), ctx_(std::move(context)) {}

  std::uint64_t u64() {
    std::uint64_t v;
    need(sizeof(v), "u64");
    std::memcpy(&v, data_ + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str() {
    const std::uint64_t len = u64();
    need(len, "string payload");
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }
  void doubles(double* out, std::size_t count) {
    need(count * sizeof(double), "double payload");
    std::memcpy(out, data_ + pos_, count * sizeof(double));
    pos_ += count * sizeof(double);
  }
  std::vector<double> doubles_vec(std::uint64_t count) {
    // Validate against the remaining bytes BEFORE sizing the vector, so
    // a corrupted huge count errors instead of attempting the allocation
    // (division, not multiplication — count * 8 could wrap u64).
    if (count > (size_ - pos_) / sizeof(double)) {
      throw std::runtime_error(ctx_ + ": truncated — blob of " +
                               std::to_string(count) +
                               " doubles exceeds the remaining " +
                               std::to_string(size_ - pos_) + " bytes");
    }
    std::vector<double> v(static_cast<std::size_t>(count));
    if (count > 0) {
      std::memcpy(v.data(), data_ + pos_, static_cast<std::size_t>(count) * sizeof(double));
      pos_ += static_cast<std::size_t>(count) * sizeof(double);
    }
    return v;
  }
  void require_done() const {
    if (pos_ != size_) {
      throw std::runtime_error(ctx_ + ": " + std::to_string(size_ - pos_) +
                               " trailing bytes after the last entry");
    }
  }

 private:
  void need(std::uint64_t n, const char* what) {
    if (n > size_ - pos_) {
      throw std::runtime_error(ctx_ + ": truncated — need " +
                               std::to_string(n) + " bytes for " + what +
                               " at offset " + std::to_string(pos_) +
                               ", only " + std::to_string(size_ - pos_) +
                               " remain");
    }
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string ctx_;
};

// ---- container ------------------------------------------------------------

void write_file_atomic(const std::string& path, std::uint64_t magic,
                       const std::vector<unsigned char>& payload,
                       const char* op) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error(std::string(op) + ": cannot open " + tmp);
    }
    const std::uint64_t header[4] = {
        magic, kFormatVersion, payload.size(),
        static_cast<std::uint64_t>(util::crc32(payload.data(), payload.size()))};
    os.write(reinterpret_cast<const char*>(header), sizeof(header));
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (!os) {
      throw std::runtime_error(std::string(op) + ": write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error(std::string(op) + ": rename to " + path +
                             " failed");
  }
}

std::vector<unsigned char> read_whole_file(const std::string& path,
                                           const char* op) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw std::runtime_error(std::string(op) + ": cannot open " + path);
  const std::streamsize size = is.tellg();
  is.seekg(0);
  std::vector<unsigned char> buf(static_cast<std::size_t>(size));
  if (size > 0) {
    is.read(reinterpret_cast<char*>(buf.data()), size);
  }
  if (!is) throw std::runtime_error(std::string(op) + ": read failed: " + path);
  return buf;
}

/// Verify the container header and return [payload_begin, payload_end)
/// within `file`. `legacy` is set when the file predates the header (no
/// magic — only allowed for parameter files).
std::pair<const unsigned char*, std::size_t> open_payload(
    const std::vector<unsigned char>& file, std::uint64_t magic,
    bool allow_legacy, const std::string& path, const char* op,
    bool* legacy = nullptr) {
  if (legacy) *legacy = false;
  std::uint64_t file_magic = 0;
  if (file.size() >= sizeof(file_magic)) {
    std::memcpy(&file_magic, file.data(), sizeof(file_magic));
  }
  if (file_magic != magic) {
    if (allow_legacy) {
      if (legacy) *legacy = true;
      return {file.data(), file.size()};
    }
    throw std::runtime_error(std::string(op) + ": " + path +
                             " is not a checkpoint (bad magic)");
  }
  if (file.size() < kHeaderBytes) {
    throw std::runtime_error(std::string(op) + ": " + path +
                             " truncated inside the header");
  }
  std::uint64_t header[4];
  std::memcpy(header, file.data(), sizeof(header));
  if (header[1] != kFormatVersion) {
    throw std::runtime_error(std::string(op) + ": " + path +
                             " has unsupported format version " +
                             std::to_string(header[1]));
  }
  if (header[2] != file.size() - kHeaderBytes) {
    throw std::runtime_error(std::string(op) + ": " + path +
                             " payload length mismatch (header says " +
                             std::to_string(header[2]) + ", file has " +
                             std::to_string(file.size() - kHeaderBytes) + ")");
  }
  const std::uint32_t crc =
      util::crc32(file.data() + kHeaderBytes, file.size() - kHeaderBytes);
  if (crc != static_cast<std::uint32_t>(header[3])) {
    throw std::runtime_error(std::string(op) + ": " + path +
                             " failed CRC verification (corrupted file)");
  }
  return {file.data() + kHeaderBytes, file.size() - kHeaderBytes};
}

}  // namespace

// ---- parameters ------------------------------------------------------------

void save_parameters(const Module& m, const std::string& path) {
  const auto params = m.named_parameters();
  BufWriter w;
  w.u64(params.size());
  for (const auto& [name, t] : params) {
    w.str(name);
    w.u64(t.shape().size());
    for (int64_t d : t.shape()) w.u64(static_cast<std::uint64_t>(d));
    w.doubles(t.data(), static_cast<std::size_t>(t.numel()));
  }
  write_file_atomic(path, kParamsMagic, w.buf, "save_parameters");
}

void load_parameters(Module& m, const std::string& path) {
  const auto file = read_whole_file(path, "load_parameters");
  const auto [payload, payload_size] = open_payload(
      file, kParamsMagic, /*allow_legacy=*/true, path, "load_parameters");
  BufReader r(payload, payload_size, "load_parameters: " + path);

  auto params = m.named_parameters();
  const std::uint64_t count = r.u64();
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: " + path +
                             ": parameter count mismatch (file has " +
                             std::to_string(count) + ", module has " +
                             std::to_string(params.size()) + ")");
  }
  for (auto& [name, t] : params) {
    const std::string stored = r.str();
    if (stored != name) {
      throw std::runtime_error("load_parameters: " + path + ": expected '" +
                               name + "', found '" + stored + "'");
    }
    const std::uint64_t rank = r.u64();
    ad::Shape shape(static_cast<std::size_t>(rank));
    for (auto& d : shape) d = static_cast<int64_t>(r.u64());
    if (shape != t.shape()) {
      throw std::runtime_error("load_parameters: " + path +
                               ": shape mismatch for " + name);
    }
    r.doubles(t.data(), static_cast<std::size_t>(t.numel()));
  }
  r.require_done();
}

// ---- checkpoints -----------------------------------------------------------

const std::vector<double>* TrainingCheckpoint::find_blob(
    const std::string& name) const {
  for (const auto& [n, v] : blobs)
    if (n == name) return &v;
  return nullptr;
}

const std::int64_t* TrainingCheckpoint::find_counter(
    const std::string& name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return &v;
  return nullptr;
}

void save_checkpoint(const TrainingCheckpoint& ckpt, const std::string& path) {
  BufWriter w;
  w.u64(ckpt.blobs.size());
  for (const auto& [name, v] : ckpt.blobs) {
    w.str(name);
    w.u64(v.size());
    w.doubles(v.data(), v.size());
  }
  w.u64(ckpt.counters.size());
  for (const auto& [name, v] : ckpt.counters) {
    w.str(name);
    w.i64(v);
  }
  w.str(ckpt.rng_state);
  write_file_atomic(path, kCheckpointMagic, w.buf, "save_checkpoint");
}

TrainingCheckpoint load_checkpoint(const std::string& path) {
  const auto file = read_whole_file(path, "load_checkpoint");
  const auto [payload, payload_size] = open_payload(
      file, kCheckpointMagic, /*allow_legacy=*/false, path, "load_checkpoint");
  BufReader r(payload, payload_size, "load_checkpoint: " + path);

  TrainingCheckpoint ckpt;
  const std::uint64_t n_blobs = r.u64();
  ckpt.blobs.reserve(static_cast<std::size_t>(n_blobs));
  for (std::uint64_t i = 0; i < n_blobs; ++i) {
    std::string name = r.str();
    const std::uint64_t len = r.u64();
    ckpt.blobs.emplace_back(std::move(name), r.doubles_vec(len));
  }
  const std::uint64_t n_counters = r.u64();
  ckpt.counters.reserve(static_cast<std::size_t>(n_counters));
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    std::string name = r.str();
    ckpt.counters.emplace_back(std::move(name), r.i64());
  }
  ckpt.rng_state = r.str();
  r.require_done();
  return ckpt;
}

// ---- model zoo manifest ----------------------------------------------------

const std::int64_t* ZooEntry::find_config(const std::string& name) const {
  for (const auto& [n, v] : config)
    if (n == name) return &v;
  return nullptr;
}

std::int64_t ZooEntry::need_config(const std::string& name) const {
  const std::int64_t* v = find_config(name);
  if (!v) {
    throw std::runtime_error("zoo manifest: entry '" + scenario +
                             "' is missing config key '" + name + "'");
  }
  return *v;
}

const ZooEntry* ZooManifest::find(const std::string& scenario) const {
  for (const auto& e : entries)
    if (e.scenario == scenario) return &e;
  return nullptr;
}

std::uint64_t file_crc32(const std::string& path) {
  const auto bytes = read_whole_file(path, "file_crc32");
  return util::crc32(bytes.data(), bytes.size());
}

void save_zoo_manifest(const ZooManifest& manifest, const std::string& dir) {
  BufWriter w;
  w.u64(manifest.entries.size());
  for (const auto& e : manifest.entries) {
    w.str(e.scenario);
    w.str(e.precision);
    w.str(e.params_file);
    w.str(e.fingerprint);
    w.u64(e.params_crc);
    w.u64(e.config.size());
    for (const auto& [name, v] : e.config) {
      w.str(name);
      w.i64(v);
    }
  }
  write_file_atomic(dir + "/zoo.manifest", kZooMagic, w.buf,
                    "save_zoo_manifest");
}

ZooManifest load_zoo_manifest(const std::string& dir, bool verify_params) {
  const std::string path = dir + "/zoo.manifest";
  const auto file = read_whole_file(path, "load_zoo_manifest");
  const auto [payload, payload_size] = open_payload(
      file, kZooMagic, /*allow_legacy=*/false, path, "load_zoo_manifest");
  BufReader r(payload, payload_size, "load_zoo_manifest: " + path);

  ZooManifest manifest;
  const std::uint64_t n = r.u64();
  manifest.entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    ZooEntry e;
    e.scenario = r.str();
    e.precision = r.str();
    e.params_file = r.str();
    e.fingerprint = r.str();
    e.params_crc = r.u64();
    const std::uint64_t nc = r.u64();
    e.config.reserve(static_cast<std::size_t>(nc));
    for (std::uint64_t c = 0; c < nc; ++c) {
      std::string name = r.str();
      e.config.emplace_back(std::move(name), r.i64());
    }
    manifest.entries.push_back(std::move(e));
  }
  r.require_done();

  if (verify_params) {
    for (const auto& e : manifest.entries) {
      if (e.params_file.find('/') != std::string::npos ||
          e.params_file.find("..") != std::string::npos) {
        throw std::runtime_error("load_zoo_manifest: " + path + ": entry '" +
                                 e.scenario +
                                 "' escapes the zoo directory: " +
                                 e.params_file);
      }
      const std::string params_path = dir + "/" + e.params_file;
      const std::uint64_t crc = file_crc32(params_path);
      if (crc != e.params_crc) {
        throw std::runtime_error(
            "load_zoo_manifest: " + params_path +
            " failed CRC verification against the manifest (corrupted or "
            "swapped checkpoint)");
      }
    }
  }
  return manifest;
}

}  // namespace mf::nn
