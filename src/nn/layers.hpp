// Neural network layers used by SDNet: Linear, Conv1d, activations, MLP
// stacks, and the paper's two input embeddings — the inefficient
// input-concat baseline (eq. (6)) and the optimized split layer (eq. (8)).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ad/ops.hpp"
#include "nn/module.hpp"

namespace mf::nn {

enum class Activation { kGelu, kTanh, kIdentity };

/// Apply the chosen activation elementwise.
Tensor activate(const Tensor& x, Activation act);

/// Affine map on the last axis: x [..., in] -> [..., out].
/// Weight is stored as [in, out] so the forward pass is a plain matmul.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, util::Rng& rng,
         bool bias = true);

  Tensor forward(const Tensor& x) const;

  int64_t in_features() const { return weight.size(0); }
  int64_t out_features() const { return weight.size(1); }

  Tensor weight;  // [in, out]
  Tensor bias;    // [out] or undefined
};

/// 1-D convolution over [B, C, L]; stride 1, symmetric zero padding.
class Conv1d : public Module {
 public:
  Conv1d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
         int64_t padding, util::Rng& rng);

  Tensor forward(const Tensor& x) const;

  int64_t padding() const { return padding_; }

  Tensor weight;  // [out, in, k]
  Tensor bias;    // [out]

 private:
  int64_t padding_;
};

/// A stack of Linear layers with an activation between them (none after
/// the final layer).
class MLP : public Module {
 public:
  MLP(const std::vector<int64_t>& widths, Activation act, util::Rng& rng);

  Tensor forward(const Tensor& x) const;

  const std::vector<std::shared_ptr<Linear>>& layers() const { return layers_; }

 private:
  std::vector<std::shared_ptr<Linear>> layers_;
  Activation act_;
};

/// The paper's optimized input embedding (eq. (8)):
///   U = act(g_emb W1^T (+ b)  ⊕  X W2^T)
/// where the boundary embedding is computed once per boundary condition and
/// broadcast over the q query points, instead of being replicated into the
/// input matrix. Cost drops from O(q N d) to O(N d + q d).
class SplitInputEmbedding : public Module {
 public:
  SplitInputEmbedding(int64_t g_features, int64_t coord_features, int64_t width,
                      Activation act, util::Rng& rng);

  /// g: [B, G], x: [B, q, C] -> [B, q, width]
  Tensor forward(const Tensor& g, const Tensor& x) const;

  std::shared_ptr<Linear> g_proj;   // with bias
  std::shared_ptr<Linear> x_proj;   // no bias (bias would be redundant)

 private:
  Activation act_;
};

/// The baseline input-concat embedding (eq. (6)): replicates the boundary
/// vector for every query point, forming the q x (G + C) input matrix I.
/// Kept as the reference implementation and for the Fig. 5 comparison.
class InputConcatEmbedding : public Module {
 public:
  InputConcatEmbedding(int64_t g_features, int64_t coord_features,
                       int64_t width, Activation act, util::Rng& rng);

  /// g: [B, G], x: [B, q, C] -> [B, q, width]
  Tensor forward(const Tensor& g, const Tensor& x) const;

  std::shared_ptr<Linear> proj;  // [(G+C), width]

 private:
  int64_t g_features_;
  Activation act_;
};

/// Boundary-condition encoder: a stack of 1-D convolutions over the
/// discretized boundary curve (Sec. 3.1), flattened to a feature vector.
class ConvBoundaryEncoder : public Module {
 public:
  ConvBoundaryEncoder(int64_t boundary_len, int64_t channels, int64_t depth,
                      int64_t kernel_size, Activation act, util::Rng& rng);

  /// g: [B, L] -> [B, L * channels]
  Tensor forward(const Tensor& g) const;

  int64_t out_features() const { return out_features_; }

 private:
  std::vector<std::shared_ptr<Conv1d>> convs_;
  Activation act_;
  int64_t boundary_len_;
  int64_t out_features_;
};

}  // namespace mf::nn
