#include "nn/layers.hpp"

namespace mf::nn {

namespace ops = ad::ops;

Tensor activate(const Tensor& x, Activation act) {
  switch (act) {
    case Activation::kGelu:
      return ops::gelu(x);
    case Activation::kTanh:
      return ops::tanh(x);
    case Activation::kIdentity:
      return x;
  }
  throw std::logic_error("unknown activation");
}

Linear::Linear(int64_t in_features, int64_t out_features, util::Rng& rng,
               bool with_bias) {
  Tensor w = Tensor::zeros({in_features, out_features});
  xavier_uniform_(w, in_features, out_features, rng);
  weight = register_parameter("weight", w);
  if (with_bias) {
    bias = register_parameter("bias", Tensor::zeros({out_features}));
  }
}

Tensor Linear::forward(const Tensor& x) const {
  // Fused matmul+bias: one kernel pass instead of matmul followed by a
  // broadcast add (and half the graph nodes on the training path).
  return ops::linear(x, weight, bias);
}

Conv1d::Conv1d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
               int64_t padding, util::Rng& rng)
    : padding_(padding) {
  Tensor w = Tensor::zeros({out_channels, in_channels, kernel_size});
  xavier_uniform_(w, in_channels * kernel_size, out_channels * kernel_size, rng);
  weight = register_parameter("weight", w);
  bias = register_parameter("bias", Tensor::zeros({out_channels}));
}

Tensor Conv1d::forward(const Tensor& x) const {
  return ops::conv1d(x, weight, bias, padding_);
}

MLP::MLP(const std::vector<int64_t>& widths, Activation act, util::Rng& rng)
    : act_(act) {
  if (widths.size() < 2) {
    throw std::invalid_argument("MLP needs at least input and output widths");
  }
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    auto layer = std::make_shared<Linear>(widths[i], widths[i + 1], rng);
    register_module(std::to_string(i), layer);
    layers_.push_back(std::move(layer));
  }
}

Tensor MLP::forward(const Tensor& x) const {
  Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(h);
    if (i + 1 < layers_.size()) h = activate(h, act_);
  }
  return h;
}

SplitInputEmbedding::SplitInputEmbedding(int64_t g_features,
                                         int64_t coord_features, int64_t width,
                                         Activation act, util::Rng& rng)
    : act_(act) {
  g_proj = std::make_shared<Linear>(g_features, width, rng, /*bias=*/true);
  x_proj = std::make_shared<Linear>(coord_features, width, rng, /*bias=*/false);
  register_module("g_proj", g_proj);
  register_module("x_proj", x_proj);
}

Tensor SplitInputEmbedding::forward(const Tensor& g, const Tensor& x) const {
  // g W1 (+ b): computed once per boundary condition — [B, d].
  Tensor ge = g_proj->forward(g);
  // X W2: [B, q, d].
  Tensor xe = x_proj->forward(x);
  // Broadcasted sum over the q axis (the ⊕ of eq. (8)).
  Tensor ge3 = ops::reshape(ge, {ge.size(0), 1, ge.size(1)});
  return activate(ops::add(ge3, xe), act_);
}

InputConcatEmbedding::InputConcatEmbedding(int64_t g_features,
                                           int64_t coord_features,
                                           int64_t width, Activation act,
                                           util::Rng& rng)
    : g_features_(g_features), act_(act) {
  proj = std::make_shared<Linear>(g_features + coord_features, width, rng);
  register_module("proj", proj);
}

Tensor InputConcatEmbedding::forward(const Tensor& g, const Tensor& x) const {
  const int64_t B = g.size(0);
  const int64_t q = x.size(1);
  // Replicate the boundary vector for every query point: the redundant
  // q x (G + C) input matrix I of eq. (5)/(6).
  Tensor g3 = ops::reshape(g, {B, 1, g_features_});
  Tensor grep = ops::broadcast_to(g3, {B, q, g_features_});
  Tensor input = ops::concat({grep, x}, 2);
  return activate(proj->forward(input), act_);
}

ConvBoundaryEncoder::ConvBoundaryEncoder(int64_t boundary_len, int64_t channels,
                                         int64_t depth, int64_t kernel_size,
                                         Activation act, util::Rng& rng)
    : act_(act), boundary_len_(boundary_len) {
  if (depth < 1) throw std::invalid_argument("encoder depth must be >= 1");
  const int64_t pad = kernel_size / 2;  // length-preserving
  for (int64_t i = 0; i < depth; ++i) {
    const int64_t in_ch = i == 0 ? 1 : channels;
    auto conv = std::make_shared<Conv1d>(in_ch, channels, kernel_size, pad, rng);
    register_module("conv" + std::to_string(i), conv);
    convs_.push_back(std::move(conv));
  }
  out_features_ = boundary_len * channels;
}

Tensor ConvBoundaryEncoder::forward(const Tensor& g) const {
  const int64_t B = g.size(0);
  Tensor h = ops::reshape(g, {B, 1, boundary_len_});
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    h = convs_[i]->forward(h);
    h = activate(h, act_);
  }
  return ops::reshape(h, {B, out_features_});
}

}  // namespace mf::nn
