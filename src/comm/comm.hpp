// Abstract communication transport for the rank runtime.
//
// The paper's distributed runs (Sec. 4.2-4.3) need ranks, matched
// send/recv, and collectives. `Comm` is the interface every distributed
// component (mosaic::distributed_mosaic_predict, the data-parallel
// trainer, the scaling benches and examples) programs against; concrete
// transports plug in underneath:
//   * world.hpp  — ThreadComm: in-process std::thread ranks with in-memory
//                  channels and an alpha-beta modeled network clock
//                  (the default; runs anywhere, models the cluster),
//   * mpi_comm.hpp — MpiComm: real MPI processes (built with
//                  -DMF_WITH_MPI=ON; selected automatically under mpirun).
// Both backends record CommStats (messages, bytes, modeled and wall
// seconds) uniformly, so every downstream scaling figure reports the same
// accounting whether the ranks are threads or processes.
#pragma once

#include <cstdint>
#include <vector>

namespace mf::comm {

/// Alpha-beta cost model: time(bytes) = alpha + bytes / beta.
struct AlphaBetaModel {
  double alpha = 2e-6;     // per-message latency (s); ~ConnectX-5 IB
  double beta = 12.5e9;    // bandwidth (bytes/s);     ~100 Gbit/s
  double time(std::size_t bytes) const {
    return alpha + static_cast<double>(bytes) / beta;
  }

  /// Presets mirroring Table 2 of the paper.
  static AlphaBetaModel infiniband_100g() { return {2e-6, 12.5e9}; }
  static AlphaBetaModel nvlink_200g() { return {1e-6, 200e9}; }
  static AlphaBetaModel pcie_32g() { return {3e-6, 32e9}; }
};

/// Per-category communication accounting for one rank.
struct CommStats {
  struct Entry {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    double modeled_seconds = 0;
    double wall_seconds = 0;
    void merge(const Entry& o);
  };
  Entry sendrecv;   // point-to-point (halo exchange)
  Entry allreduce;  // gradient/convergence reductions
  Entry allgather;  // final solution assembly
  Entry total() const;
  void reset();
};

/// User tags must be in [0, kMaxUserTag); the band above it is reserved
/// for the transports' internal use (MpiComm folds the negative internal
/// tags into it on the wire). Enforced identically by every backend so a
/// program cannot pass as threads and throw under mpirun.
constexpr int kMaxUserTag = 30000;

/// Internal tags used by the default collectives.
namespace internal_tag {
constexpr int kAllreduce = -101;
constexpr int kAllgather = -102;
constexpr int kBarrier = -103;
}  // namespace internal_tag

/// Abstract communicator handle for one rank. Thread-compatible: each rank
/// owns exactly one Comm and uses it from its own thread (or process).
///
/// Backends implement the transport hooks (transport_send/transport_recv);
/// the point-to-point wrappers here add uniform CommStats accounting, and
/// the collectives have default software implementations (recursive
/// doubling / ring / dissemination, see collectives.cpp) that a backend
/// may override with native ones.
class Comm {
 public:
  virtual ~Comm() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  // ---- point-to-point ----
  void send(int dst, const double* data, std::size_t n, int tag = 0);
  void send(int dst, const std::vector<double>& data, int tag = 0);
  /// Blocking receive of exactly `n` doubles matching (src, tag).
  void recv(int src, double* data, std::size_t n, int tag = 0);
  std::vector<double> recv_vec(int src, int tag = 0);
  /// Paired exchange with one neighbor.
  void sendrecv(int peer, const std::vector<double>& out,
                std::vector<double>& in, int tag = 0);

  // ---- nonblocking point-to-point (halo overlap) ----
  /// Handle for a posted receive (valid until its wait_recv). A
  /// monotonically increasing per-Comm id: a handle kept past its
  /// wait_recv (or never issued) is rejected — ids never recur, so a
  /// stale handle can never silently alias a later request.
  using Request = std::uint64_t;
  /// Buffered nonblocking send: the payload is copied out of the caller's
  /// buffer before returning (in-memory channel / MPI_Isend slot), so
  /// there is nothing to wait on — the matching receive completes
  /// delivery. Identical matching semantics to send().
  void isend(int dst, const double* data, std::size_t n, int tag = 0);
  void isend(int dst, const std::vector<double>& data, int tag = 0);
  /// Post a receive matching (src, tag). Posting a whole neighborhood of
  /// receives before waiting lets messages be drained in arrival order —
  /// progress() (called opportunistically by irecv itself) completes any
  /// posted receive whose message has already landed, so compute between
  /// the posts and the waits overlaps communication.
  Request irecv(int src, int tag = 0);
  /// Non-blocking: complete every posted receive whose message arrived.
  void progress();
  /// Complete a posted receive, blocking until its message arrives.
  std::vector<double> wait_recv(Request r);
  /// Deadline-bounded wait: poll progress() until request `r` completes
  /// or `timeout_ms` elapses. On success, moves the payload into `out`
  /// and consumes the request; on timeout returns false and leaves the
  /// request pending (a later progress()/wait_recv/wait_recv_for can
  /// still complete it). `timeout_ms < 0` degrades to blocking
  /// wait_recv. Requires a backend with nonblocking probe support
  /// (transport_try_recv); both ThreadComm and MpiComm have it.
  bool wait_recv_for(Request r, double timeout_ms, std::vector<double>& out);
  /// Posted receives still tracked by the bookkeeping table (unconsumed
  /// posts plus consumed entries awaiting amortized compaction). Bounded
  /// by O(outstanding posts) even when one straggler is never waited on.
  std::size_t pending_recv_count() const { return pending_recvs_.size(); }

  // ---- collectives ----
  virtual void allreduce_sum(double* data, std::size_t n);
  double allreduce_sum(double value);
  virtual void allreduce_max(double* data, std::size_t n);
  double allreduce_max(double value);
  /// Gather variable-size contributions from every rank, in rank order.
  virtual std::vector<std::vector<double>> allgatherv(
      const std::vector<double>& local);
  virtual void barrier();

  CommStats& stats() { return stats_; }
  const AlphaBetaModel& model() const { return model_; }

 protected:
  explicit Comm(AlphaBetaModel model = {}) : model_(model) {}

  /// Deliver `n` doubles to rank `dst` under `tag` (non-blocking-ish: must
  /// not deadlock when every rank sends before receiving).
  virtual void transport_send(int dst, const double* data, std::size_t n,
                              int tag) = 0;
  /// Blocking matched receive from (src, tag); returns the payload
  /// whatever its size.
  virtual std::vector<double> transport_recv(int src, int tag) = 0;

  /// Non-blocking probe-and-receive: when a message matching (src, tag)
  /// has already arrived, consume it into `out` and return true. The
  /// default (no nonblocking support) always reports "not yet", which
  /// degrades irecv/wait_recv to the blocking path.
  virtual bool transport_try_recv(int src, int tag, std::vector<double>& out) {
    (void)src;
    (void)tag;
    (void)out;
    return false;
  }

  /// Unchecked p2p with full stats accounting, for the default software
  /// collectives (their internal tags are outside the user range the
  /// public wrappers enforce).
  void send_internal(int dst, const double* data, std::size_t n, int tag);
  void recv_internal(int src, double* data, std::size_t n, int tag);
  std::vector<double> recv_vec_internal(int src, int tag);

  /// Stats bucket for a tag (collective internal tags map to their
  /// category, everything else is point-to-point).
  CommStats::Entry& stats_entry(int tag);
  /// Uniform accounting: one message of `bytes` with measured `wall`
  /// seconds; modeled seconds follow the alpha-beta model.
  void record(CommStats::Entry& e, std::size_t bytes, double wall_seconds);

  AlphaBetaModel model_;
  CommStats stats_;

 private:
  // FaultComm decorates another Comm by forwarding (and perturbing) its
  // protected transport hooks; it is the one sanctioned external caller.
  friend class FaultComm;

  struct PendingRecv {
    Request id = 0;         // monotonic post id (the caller's handle)
    int src = -1;
    int tag = 0;
    bool done = false;      // payload received (by progress())
    bool consumed = false;  // handed to the caller (by wait_recv())
    std::vector<double> payload;
  };
  // Append-only in post order, so it stays sorted by id and wait_recv
  // finds a handle by binary search. Consumed entries are removed by
  // amortized stable compaction (wait_recv) rather than waiting for the
  // whole table to drain — one never-consumed straggler no longer pins
  // every later entry in memory.
  std::vector<PendingRecv> pending_recvs_;
  Request next_recv_id_ = 1;           // 0 is never a valid handle
  std::size_t consumed_pending_ = 0;   // consumed entries not yet compacted
};

}  // namespace mf::comm
