#include "comm/fault_comm.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/crc32.hpp"

namespace mf::comm {

namespace {

// Per-frame decision hashing: splitmix64 over (seed, src, dst, tag, seq)
// gives independent, reproducible uniforms per channel frame.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t channel_key(int peer, int tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
}

constexpr std::size_t kHeaderDoubles = 2;  // [seq, crc]
constexpr int kMaxEmulatedLosses = 4;      // retransmit-ladder rung cap

double parse_number(const std::string& clause, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("MF_FAULT_SPEC: bad value in clause '" +
                                clause + "'");
  }
}

void check_probability(const std::string& key, double v) {
  if (v < 0 || v > 1) {
    throw std::invalid_argument("MF_FAULT_SPEC: " + key +
                                " must be a probability in [0,1], got " +
                                std::to_string(v));
  }
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec s;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find_first_of(";,", pos);
    if (end == std::string::npos) end = text.size();
    const std::string clause = text.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(
          "MF_FAULT_SPEC: clause '" + clause +
          "' is not key=value (grammar: seed=7;drop=0.05;delay=0.05;...)");
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "seed") {
      s.seed = static_cast<std::uint64_t>(parse_number(clause, value));
    } else if (key == "drop") {
      s.drop = parse_number(clause, value);
      check_probability(key, s.drop);
    } else if (key == "delay") {
      s.delay = parse_number(clause, value);
      check_probability(key, s.delay);
    } else if (key == "dup") {
      s.dup = parse_number(clause, value);
      check_probability(key, s.dup);
    } else if (key == "flip") {
      s.flip = parse_number(clause, value);
      check_probability(key, s.flip);
    } else if (key == "delay_ms") {
      s.delay_ms = parse_number(clause, value);
    } else if (key == "rto_ms") {
      s.rto_ms = parse_number(clause, value);
    } else if (key == "rto_max_ms") {
      s.rto_max_ms = parse_number(clause, value);
    } else if (key == "stall_rank") {
      s.stall_rank = static_cast<int>(parse_number(clause, value));
    } else if (key == "stall_ms") {
      s.stall_ms = parse_number(clause, value);
    } else if (key == "stall_every") {
      s.stall_every = static_cast<int>(parse_number(clause, value));
      if (s.stall_every < 1) {
        throw std::invalid_argument("MF_FAULT_SPEC: stall_every must be >= 1");
      }
    } else if (key == "liveness_ms") {
      s.liveness_ms = parse_number(clause, value);
    } else {
      throw std::invalid_argument("MF_FAULT_SPEC: unknown key '" + key +
                                  "' in clause '" + clause + "'");
    }
  }
  return s;
}

FaultEnvSpec fault_spec_from_env() {
  FaultEnvSpec e;
  const char* v = std::getenv("MF_FAULT_SPEC");
  if (v == nullptr || *v == '\0') return e;
  e.active = true;
  e.spec = FaultSpec::parse(v);
  return e;
}

FaultSpec::Decision FaultSpec::decide(int src, int dst, int tag,
                                      std::uint64_t seq) const {
  std::uint64_t base = splitmix64(
      seed ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
              << 32 |
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))));
  base = splitmix64(
      base ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag))));
  base = splitmix64(base ^ seq);
  const auto u = [&](std::uint64_t stream) {
    return uniform01(splitmix64(base + stream));
  };
  Decision d;
  if (drop > 0) {
    // Each rung of the ladder is one more emulated transmission loss;
    // the receiver holds the frame for the sum of the sender's capped
    // exponential retransmit timeouts.
    while (d.drop_losses < kMaxEmulatedLosses &&
           u(10 + static_cast<std::uint64_t>(d.drop_losses)) < drop) {
      d.hold_ms += std::min(rto_ms * static_cast<double>(1 << d.drop_losses),
                            rto_max_ms);
      ++d.drop_losses;
    }
  }
  if (d.drop_losses == 0 && delay > 0 && u(20) < delay) {
    d.delayed = true;
    d.hold_ms += delay_ms;
  }
  if (flip > 0 && u(30) < flip) {
    d.flip = true;
    // The corrupted copy is discarded on CRC mismatch; the clean frame
    // arrives one retransmit timeout later.
    d.hold_ms += std::min(rto_ms, rto_max_ms);
  }
  d.dup = dup > 0 && u(40) < dup;
  return d;
}

FaultComm::FaultComm(Comm& inner, FaultSpec spec)
    : Comm(inner.model()), inner_(inner), spec_(spec) {
  t0_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double FaultComm::now_ms() const {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
  return static_cast<double>(static_cast<std::uint64_t>(ns) - t0_ns_) * 1e-6;
}

void FaultComm::maybe_stall() {
  if (spec_.stall_rank != rank() || spec_.stall_ms <= 0) return;
  ++recv_calls_;
  if (recv_calls_ % static_cast<std::uint64_t>(spec_.stall_every) != 0) return;
  ++fstats_.stalls;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(spec_.stall_ms));
}

void FaultComm::transport_send(int dst, const double* data, std::size_t n,
                               int tag) {
  const std::uint64_t seq = send_seq_[channel_key(dst, tag)]++;
  std::vector<double> frame(kHeaderDoubles + n);
  frame[0] = static_cast<double>(seq);
  frame[1] =
      static_cast<double>(util::crc32(data, n * sizeof(double)));
  std::memcpy(frame.data() + kHeaderDoubles, data, n * sizeof(double));
  inner_.transport_send(dst, frame.data(), frame.size(), tag);
  ++fstats_.frames_sent;
}

void FaultComm::pump(int src, int tag, RecvChannel& ch) {
  std::vector<double> frame;
  while (inner_.transport_try_recv(src, tag, frame)) {
    if (frame.size() < kHeaderDoubles) {
      throw std::logic_error(
          "fault_comm: received an unframed message — every rank of the "
          "world must be wrapped in FaultComm consistently");
    }
    const auto seq = static_cast<std::uint64_t>(frame[0]);
    const auto wire_crc = static_cast<std::uint32_t>(frame[1]);
    std::vector<double> payload(frame.begin() + kHeaderDoubles, frame.end());
    const FaultSpec::Decision dec = spec_.decide(src, rank(), tag, seq);
    fstats_.injected_drops += static_cast<std::uint64_t>(dec.drop_losses);
    fstats_.injected_delays += dec.delayed ? 1 : 0;
    if (dec.flip && !payload.empty()) {
      // Deliver-and-verify the corrupted copy: flip one payload bit,
      // check the CRC the sender stamped, count the catch. The clean
      // frame is already scheduled one RTO later by decide().
      std::vector<double> corrupt = payload;
      const std::uint64_t bit =
          splitmix64(spec_.seed ^ seq ^ 0xF11Full) %
          (corrupt.size() * sizeof(double) * 8);
      reinterpret_cast<unsigned char*>(corrupt.data())[bit / 8] ^=
          static_cast<unsigned char>(1u << (bit % 8));
      ++fstats_.injected_flips;
      if (util::crc32(corrupt.data(), corrupt.size() * sizeof(double)) !=
          wire_crc) {
        ++fstats_.detected_corruptions;
      }
      // An undetected flip (CRC collision, ~2^-32) falls through and
      // delivers the clean copy anyway: the channel never lies.
    }
    if (util::crc32(payload.data(), payload.size() * sizeof(double)) !=
        wire_crc) {
      throw std::runtime_error(
          "fault_comm: CRC mismatch on an uninjected frame (real transport "
          "corruption)");
    }
    HeldFrame h;
    h.seq = seq;
    h.release_ms = now_ms() + dec.hold_ms;
    h.payload = std::move(payload);
    if (dec.dup) {
      ++fstats_.injected_dups;
      ch.held.push_back(h);  // duplicate copy; dedup discards one
    }
    ch.held.push_back(std::move(h));
  }
}

bool FaultComm::pop_ready(RecvChannel& ch, std::vector<double>& out) {
  while (!ch.held.empty()) {
    HeldFrame& f = ch.held.front();
    if (f.seq < ch.next_seq) {
      // Sequence-number dedup: an injected duplicate of an already
      // delivered frame.
      ++fstats_.duplicate_discards;
      ch.held.pop_front();
      continue;
    }
    if (now_ms() < f.release_ms) return false;  // head-of-line holdback
    if (f.seq != ch.next_seq) {
      throw std::logic_error("fault_comm: sequence gap — the inner "
                             "transport reordered or lost a frame");
    }
    ++ch.next_seq;
    ++fstats_.frames_delivered;
    out = std::move(f.payload);
    ch.held.pop_front();
    return true;
  }
  return false;
}

bool FaultComm::transport_try_recv(int src, int tag,
                                   std::vector<double>& out) {
  maybe_stall();
  RecvChannel& ch = recv_ch_[channel_key(src, tag)];
  pump(src, tag, ch);
  return pop_ready(ch, out);
}

std::vector<double> FaultComm::transport_recv(int src, int tag) {
  maybe_stall();
  RecvChannel& ch = recv_ch_[channel_key(src, tag)];
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> out;
  for (;;) {
    pump(src, tag, ch);
    if (pop_ready(ch, out)) return out;
    const double waited_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (waited_ms > spec_.liveness_ms) {
      // The inner try-recv path does not surface peer failure, so a dead
      // sender would otherwise spin this poll loop forever.
      throw std::runtime_error(
          "fault_comm: no frame from rank " + std::to_string(src) +
          " within liveness_ms=" + std::to_string(spec_.liveness_ms) +
          " (peer dead or stalled past the liveness bound)");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

}  // namespace mf::comm
