// Default collective operations built on the point-to-point layer; every
// transport inherits these, and a backend with native collectives (MPI)
// overrides them. Allreduce uses recursive doubling when the world size is
// a power of two (the configurations benchmarked in the paper: 1..32) and
// a gather+broadcast fallback otherwise, so modeled communication time
// reflects a realistic collective algorithm rather than a naive star.
#include <algorithm>
#include <bit>
#include <cmath>

#include "comm/comm.hpp"

namespace mf::comm {

namespace {

bool is_pow2(unsigned v) { return std::has_single_bit(v); }

}  // namespace

void Comm::allreduce_sum(double* data, std::size_t n) {
  const int P = size();
  if (P == 1) return;
  const int tag = internal_tag::kAllreduce;
  std::vector<double> incoming(n);
  if (is_pow2(static_cast<unsigned>(P))) {
    // Recursive doubling: log2(P) rounds of pairwise exchange.
    for (int dist = 1; dist < P; dist <<= 1) {
      const int peer = rank() ^ dist;
      send_internal(peer, data, n, tag);
      recv_internal(peer, incoming.data(), n, tag);
      for (std::size_t i = 0; i < n; ++i) data[i] += incoming[i];
    }
  } else {
    // Gather to root, reduce, broadcast.
    if (rank() == 0) {
      for (int r = 1; r < P; ++r) {
        recv_internal(r, incoming.data(), n, tag);
        for (std::size_t i = 0; i < n; ++i) data[i] += incoming[i];
      }
      for (int r = 1; r < P; ++r) send_internal(r, data, n, tag);
    } else {
      send_internal(0, data, n, tag);
      recv_internal(0, data, n, tag);
    }
  }
}

void Comm::allreduce_max(double* data, std::size_t n) {
  const int P = size();
  if (P == 1) return;
  const int tag = internal_tag::kAllreduce;
  std::vector<double> incoming(n);
  if (is_pow2(static_cast<unsigned>(P))) {
    for (int dist = 1; dist < P; dist <<= 1) {
      const int peer = rank() ^ dist;
      send_internal(peer, data, n, tag);
      recv_internal(peer, incoming.data(), n, tag);
      for (std::size_t i = 0; i < n; ++i) data[i] = std::max(data[i], incoming[i]);
    }
  } else {
    if (rank() == 0) {
      for (int r = 1; r < P; ++r) {
        recv_internal(r, incoming.data(), n, tag);
        for (std::size_t i = 0; i < n; ++i) data[i] = std::max(data[i], incoming[i]);
      }
      for (int r = 1; r < P; ++r) send_internal(r, data, n, tag);
    } else {
      send_internal(0, data, n, tag);
      recv_internal(0, data, n, tag);
    }
  }
}

std::vector<std::vector<double>> Comm::allgatherv(
    const std::vector<double>& local) {
  const int P = size();
  std::vector<std::vector<double>> all(static_cast<std::size_t>(P));
  all[static_cast<std::size_t>(rank())] = local;
  if (P == 1) return all;
  const int tag = internal_tag::kAllgather;
  // Ring allgather: P-1 steps; at step s we forward the block that
  // originated at rank (rank - s) mod P.
  const int next = (rank() + 1) % P;
  const int prev = (rank() + P - 1) % P;
  std::vector<double> block = local;
  for (int s = 0; s < P - 1; ++s) {
    send_internal(next, block.data(), block.size(), tag);
    block = recv_vec_internal(prev, tag);
    const int origin = (rank() - s - 1 + 2 * P) % P;
    all[static_cast<std::size_t>(origin)] = block;
  }
  return all;
}

void Comm::barrier() {
  // Dissemination barrier: ceil(log2(P)) rounds.
  const int P = size();
  if (P == 1) return;
  const int tag = internal_tag::kBarrier;
  double token = 0;
  for (int dist = 1; dist < P; dist <<= 1) {
    const int to = (rank() + dist) % P;
    const int from = (rank() - dist % P + P) % P;
    send_internal(to, &token, 1, tag);
    recv_internal(from, &token, 1, tag);
  }
}

}  // namespace mf::comm
