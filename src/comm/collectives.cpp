// Collective operations built on the point-to-point layer. Allreduce uses
// recursive doubling when the world size is a power of two (the
// configurations benchmarked in the paper: 1..32) and a gather+broadcast
// fallback otherwise, so modeled communication time reflects a realistic
// collective algorithm rather than a naive star.
#include <algorithm>
#include <bit>
#include <cmath>

#include "comm/world.hpp"

namespace mf::comm {

namespace {

bool is_pow2(unsigned v) { return std::has_single_bit(v); }

}  // namespace

void Communicator::allreduce_sum(double* data, std::size_t n) {
  const int P = size();
  if (P == 1) return;
  const int tag = internal_tag::kAllreduce;
  std::vector<double> incoming(n);
  if (is_pow2(static_cast<unsigned>(P))) {
    // Recursive doubling: log2(P) rounds of pairwise exchange.
    for (int dist = 1; dist < P; dist <<= 1) {
      const int peer = rank_ ^ dist;
      send(peer, data, n, tag);
      recv(peer, incoming.data(), n, tag);
      for (std::size_t i = 0; i < n; ++i) data[i] += incoming[i];
    }
  } else {
    // Gather to root, reduce, broadcast.
    if (rank_ == 0) {
      for (int r = 1; r < P; ++r) {
        recv(r, incoming.data(), n, tag);
        for (std::size_t i = 0; i < n; ++i) data[i] += incoming[i];
      }
      for (int r = 1; r < P; ++r) send(r, data, n, tag);
    } else {
      send(0, data, n, tag);
      recv(0, data, n, tag);
    }
  }
}

double Communicator::allreduce_sum(double value) {
  allreduce_sum(&value, 1);
  return value;
}

double Communicator::allreduce_max(double value) {
  const int P = size();
  if (P == 1) return value;
  const int tag = internal_tag::kAllreduce;
  double incoming = 0;
  if (is_pow2(static_cast<unsigned>(P))) {
    for (int dist = 1; dist < P; dist <<= 1) {
      const int peer = rank_ ^ dist;
      send(peer, &value, 1, tag);
      recv(peer, &incoming, 1, tag);
      value = std::max(value, incoming);
    }
  } else {
    if (rank_ == 0) {
      for (int r = 1; r < P; ++r) {
        recv(r, &incoming, 1, tag);
        value = std::max(value, incoming);
      }
      for (int r = 1; r < P; ++r) send(r, &value, 1, tag);
    } else {
      send(0, &value, 1, tag);
      recv(0, &value, 1, tag);
    }
  }
  return value;
}

std::vector<std::vector<double>> Communicator::allgatherv(
    const std::vector<double>& local) {
  const int P = size();
  std::vector<std::vector<double>> all(static_cast<std::size_t>(P));
  all[static_cast<std::size_t>(rank_)] = local;
  if (P == 1) return all;
  const int tag = internal_tag::kAllgather;
  // Ring allgather: P-1 steps; at step s we forward the block that
  // originated at rank (rank - s) mod P.
  const int next = (rank_ + 1) % P;
  const int prev = (rank_ + P - 1) % P;
  std::vector<double> block = local;
  for (int s = 0; s < P - 1; ++s) {
    send(next, block, tag);
    block = recv_vec(prev, tag);
    const int origin = (rank_ - s - 1 + 2 * P) % P;
    all[static_cast<std::size_t>(origin)] = block;
  }
  return all;
}

void Communicator::barrier() {
  // Dissemination barrier: ceil(log2(P)) rounds.
  const int P = size();
  if (P == 1) return;
  const int tag = internal_tag::kBarrier;
  double token = 0;
  for (int dist = 1; dist < P; dist <<= 1) {
    const int to = (rank_ + dist) % P;
    const int from = (rank_ - dist % P + P) % P;
    send(to, &token, 1, tag);
    recv(from, &token, 1, tag);
  }
}

}  // namespace mf::comm
