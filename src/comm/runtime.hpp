// Rank runtime: one entry point that runs a rank function on whichever
// transport the launch provides.
//
//   comm::RankLauncher launcher(argc, argv);
//   launcher.run(ranks, [&](comm::Comm& c) { ... });
//
// Launched plainly, ranks are in-process threads (world.hpp) and `ranks`
// is free to vary — scaling benches sweep 1..32 in one invocation.
// Launched under `mpirun -np N` (with -DMF_WITH_MPI=ON), ranks are real
// MPI processes, `run(N, ...)` binds to MPI_COMM_WORLD, and the same
// binary produces measured (not modeled) communication wall times.
// The environment variable MF_COMM=threads|mpi overrides the automatic
// choice (mpi requires the MPI build and fails loudly otherwise).
#pragma once

#include <functional>
#include <vector>

#include "comm/comm.hpp"

namespace mf::comm {

enum class Backend { kThreads, kMpi };

/// "threads" or "mpi".
const char* backend_name(Backend b);

/// True when the binary was compiled with the MPI transport.
bool mpi_compiled();

/// Backend selection plus MPI session management (when compiled in): the
/// first RankLauncher in a process runs MPI_Init, and MPI_Finalize
/// happens at program exit, so constructing several (e.g. across test
/// cases) is safe. Construct before any Comm use.
class RankLauncher {
 public:
  RankLauncher(int argc, char** argv, AlphaBetaModel model = {});
  ~RankLauncher();
  RankLauncher(const RankLauncher&) = delete;
  RankLauncher& operator=(const RankLauncher&) = delete;

  Backend backend() const { return backend_; }
  const char* backend_name() const { return comm::backend_name(backend_); }

  /// True on the rank that should print/write artifacts: the launching
  /// process for the threaded backend, MPI rank 0 for MPI.
  bool is_root() const { return mpi_rank_ == 0; }

  /// World size imposed by the launch: the MPI world size under mpirun,
  /// or 0 when the threaded backend may spawn any number of ranks.
  int fixed_world_size() const {
    return backend_ == Backend::kMpi ? mpi_size_ : 0;
  }

  /// Rank counts a scaling sweep should visit: `defaults` for the
  /// threaded backend, just {mpi world size} under MPI (one mpirun
  /// invocation measures one point of the sweep).
  std::vector<int> sweep_rank_counts(std::vector<int> defaults) const;

  /// Run `fn` on every rank of a `ranks`-sized world. Threads: spawns
  /// `ranks` threads (SerialRegionGuard applies, as always) and rethrows
  /// the first rank exception. MPI: `ranks` must equal the MPI world
  /// size; `fn` runs once in this process with the full OpenMP team
  /// available, and a rank exception MPI_Aborts the whole job (one
  /// unwound rank would deadlock its peers).
  void run(int ranks, const std::function<void(Comm&)>& fn);

 private:
  Backend backend_ = Backend::kThreads;
  AlphaBetaModel model_;
  int mpi_rank_ = 0;
  int mpi_size_ = 1;
};

}  // namespace mf::comm
