// Threaded in-process transport: MPI-like message passing over
// std::thread "ranks".
//
// The paper runs on GPU clusters with CUDA-aware MPI. This backend
// reproduces the *interface semantics* (ranks, matched send/recv,
// collectives, Cartesian topologies) over in-memory channels, and
// reproduces the *performance model* with an alpha-beta network clock
// (Sec. 4.3 of the paper): every receive advances a per-rank modeled
// communication time by alpha + bytes/beta. Benchmarks report both
// measured wall time and the modeled time, whose scaling shape matches
// the paper's cluster interconnect. For real multi-process runs, build
// with -DMF_WITH_MPI=ON and see mpi_comm.hpp / runtime.hpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/comm.hpp"

namespace mf::comm {

class World;

/// Threaded transport handle: delivers through the owning World's
/// in-memory mailboxes. Each rank owns exactly one ThreadComm and uses it
/// from its own thread.
class ThreadComm final : public Comm {
 public:
  int rank() const override { return rank_; }
  int size() const override;

 protected:
  void transport_send(int dst, const double* data, std::size_t n,
                      int tag) override;
  std::vector<double> transport_recv(int src, int tag) override;
  bool transport_try_recv(int src, int tag,
                          std::vector<double>& out) override;

 private:
  friend class World;
  ThreadComm(World* world, int rank);

  World* world_;
  int rank_;
};

/// Owns the mailboxes and spawns one thread per rank.
class World {
 public:
  explicit World(int size, AlphaBetaModel model = {});

  /// Run `rank_fn(comm)` on every rank; joins all threads; rethrows the
  /// first rank exception, if any.
  void run(const std::function<void(Comm&)>& rank_fn);

  int size() const { return size_; }
  const AlphaBetaModel& model() const { return model_; }

  /// Stats per rank from the last run().
  const std::vector<CommStats>& last_stats() const { return last_stats_; }
  /// Maximum modeled total communication seconds across ranks.
  double max_modeled_comm_seconds() const;

 private:
  friend class ThreadComm;

  struct Message {
    int src;
    int tag;
    std::vector<double> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  void deliver(int dst, Message msg);
  Message take(int dst, int src, int tag);
  /// Non-blocking take: consume a matching queued message if present.
  bool try_take(int dst, int src, int tag, Message& out);

  int size_;
  AlphaBetaModel model_;
  // Set when any rank throws; wakes blocked receivers so they fail too
  // instead of waiting forever for messages that will never arrive.
  std::atomic<bool> failed_{false};
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<CommStats> last_stats_;
};

}  // namespace mf::comm
