// MPI-like message passing over in-process threads.
//
// The paper runs on GPU clusters with CUDA-aware MPI. This box has one
// core and no MPI, so we reproduce the *interface semantics* (ranks,
// matched send/recv, collectives, Cartesian topologies) over std::thread
// "ranks" with in-memory channels, and reproduce the *performance model*
// with an alpha-beta network clock (Sec. 4.3 of the paper): every receive
// advances a per-rank modeled communication time by alpha + bytes/beta.
// Benchmarks report both measured wall time and the modeled time, whose
// scaling shape matches the paper's cluster interconnect.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace mf::comm {

/// Alpha-beta cost model: time(bytes) = alpha + bytes / beta.
struct AlphaBetaModel {
  double alpha = 2e-6;     // per-message latency (s); ~ConnectX-5 IB
  double beta = 12.5e9;    // bandwidth (bytes/s);     ~100 Gbit/s
  double time(std::size_t bytes) const {
    return alpha + static_cast<double>(bytes) / beta;
  }

  /// Presets mirroring Table 2 of the paper.
  static AlphaBetaModel infiniband_100g() { return {2e-6, 12.5e9}; }
  static AlphaBetaModel nvlink_200g() { return {1e-6, 200e9}; }
  static AlphaBetaModel pcie_32g() { return {3e-6, 32e9}; }
};

/// Per-category communication accounting for one rank.
struct CommStats {
  struct Entry {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    double modeled_seconds = 0;
    double wall_seconds = 0;
    void merge(const Entry& o);
  };
  Entry sendrecv;   // point-to-point (halo exchange)
  Entry allreduce;  // gradient/convergence reductions
  Entry allgather;  // final solution assembly
  Entry total() const;
  void reset();
};

class World;

/// Handle each rank uses to communicate. Thread-compatible: each rank owns
/// exactly one Communicator and uses it from its own thread.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  // ---- point-to-point ----
  void send(int dst, const double* data, std::size_t n, int tag = 0);
  void send(int dst, const std::vector<double>& data, int tag = 0);
  /// Blocking receive of exactly `n` doubles matching (src, tag).
  void recv(int src, double* data, std::size_t n, int tag = 0);
  std::vector<double> recv_vec(int src, int tag = 0);
  /// Paired exchange with one neighbor.
  void sendrecv(int peer, const std::vector<double>& out,
                std::vector<double>& in, int tag = 0);

  // ---- collectives (all built on the point-to-point layer) ----
  void allreduce_sum(double* data, std::size_t n);
  double allreduce_sum(double value);
  double allreduce_max(double value);
  /// Gather variable-size contributions from every rank, in rank order.
  std::vector<std::vector<double>> allgatherv(const std::vector<double>& local);
  void barrier();

  CommStats& stats() { return stats_; }
  const AlphaBetaModel& model() const;

 private:
  friend class World;
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}

  World* world_;
  int rank_;
  CommStats stats_;
};

/// Owns the mailboxes and spawns one thread per rank.
class World {
 public:
  explicit World(int size, AlphaBetaModel model = {});

  /// Run `rank_fn(comm)` on every rank; joins all threads; rethrows the
  /// first rank exception, if any.
  void run(const std::function<void(Communicator&)>& rank_fn);

  int size() const { return size_; }
  const AlphaBetaModel& model() const { return model_; }

  /// Stats per rank from the last run().
  const std::vector<CommStats>& last_stats() const { return last_stats_; }
  /// Maximum modeled total communication seconds across ranks.
  double max_modeled_comm_seconds() const;

 private:
  friend class Communicator;

  struct Message {
    int src;
    int tag;
    std::vector<double> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  void deliver(int dst, Message msg);
  Message take(int dst, int src, int tag);

  int size_;
  AlphaBetaModel model_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<CommStats> last_stats_;
};

/// Internal tags used by collectives; user tags must be >= 0.
namespace internal_tag {
constexpr int kAllreduce = -101;
constexpr int kAllgather = -102;
constexpr int kBarrier = -103;
}  // namespace internal_tag

}  // namespace mf::comm
