#include "comm/world.hpp"

#include <stdexcept>
#include <thread>

#include "ad/kernels.hpp"

namespace mf::comm {

namespace {

// Thrown to ranks blocked in recv when another rank has already failed;
// filtered in World::run so the originating exception is the one
// rethrown to the caller.
struct PeerFailedError : std::runtime_error {
  PeerFailedError() : std::runtime_error("comm: a peer rank failed") {}
};

}  // namespace

ThreadComm::ThreadComm(World* world, int rank)
    : Comm(world->model()), world_(world), rank_(rank) {}

int ThreadComm::size() const { return world_->size(); }

void ThreadComm::transport_send(int dst, const double* data, std::size_t n,
                                int tag) {
  World::Message msg{rank_, tag, std::vector<double>(data, data + n)};
  world_->deliver(dst, std::move(msg));
}

std::vector<double> ThreadComm::transport_recv(int src, int tag) {
  return world_->take(rank_, src, tag).payload;
}

bool ThreadComm::transport_try_recv(int src, int tag,
                                    std::vector<double>& out) {
  World::Message msg;
  if (!world_->try_take(rank_, src, tag, msg)) return false;
  out = std::move(msg.payload);
  return true;
}

World::World(int size, AlphaBetaModel model) : size_(size), model_(model) {
  if (size < 1) throw std::invalid_argument("World: size must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void World::run(const std::function<void(Comm&)>& rank_fn) {
  // Clear stale messages from a previous (possibly failed) run.
  failed_.store(false);
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lock(mb->mutex);
    mb->queue.clear();
  }
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  std::vector<std::unique_ptr<ThreadComm>> comms;
  comms.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    comms.push_back(std::unique_ptr<ThreadComm>(new ThreadComm(this, r)));
  }

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r]() {
      try {
        // Each rank models one device timesharing this machine: keep its
        // compute on its own thread (no nested OpenMP teams) so the
        // per-thread CPU-clock scaling measurements stay meaningful.
        ad::kernels::SerialRegionGuard serial_kernels;
        rank_fn(*comms[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Flag the failure and wake everyone: blocked receivers see the
        // flag in take() and throw PeerFailedError instead of waiting
        // forever for messages that will never arrive.
        failed_.store(true);
        for (auto& mb : mailboxes_) {
          std::lock_guard<std::mutex> lock(mb->mutex);
          mb->cv.notify_all();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  last_stats_.clear();
  for (const auto& c : comms) last_stats_.push_back(c->stats());
  // Rethrow the originating failure, not the secondary PeerFailedErrors
  // it induced on ranks that were blocked receiving.
  std::exception_ptr first_peer;
  for (const auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const PeerFailedError&) {
      if (!first_peer) first_peer = e;
    } catch (...) {
      throw;
    }
  }
  if (first_peer) std::rethrow_exception(first_peer);
}

double World::max_modeled_comm_seconds() const {
  double m = 0;
  for (const auto& s : last_stats_) {
    m = std::max(m, s.total().modeled_seconds);
  }
  return m;
}

void World::deliver(int dst, Message msg) {
  if (dst < 0 || dst >= size_) throw std::out_of_range("send: bad destination");
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_all();
}

bool World::try_take(int dst, int src, int tag, Message& out) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(mb.mutex);
  for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
    if (it->src == src && it->tag == tag) {
      out = std::move(*it);
      mb.queue.erase(it);
      return true;
    }
  }
  return false;
}

World::Message World::take(int dst, int src, int tag) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(mb.mutex);
  for (;;) {
    for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        Message msg = std::move(*it);
        mb.queue.erase(it);
        return msg;
      }
    }
    // Checked after the scan so a matching message that is already
    // queued still gets delivered even in a failing world.
    if (failed_.load()) throw PeerFailedError();
    mb.cv.wait(lock);
  }
}

}  // namespace mf::comm
