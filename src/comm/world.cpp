#include "comm/world.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "ad/kernels.hpp"

namespace mf::comm {

void CommStats::Entry::merge(const Entry& o) {
  messages += o.messages;
  bytes += o.bytes;
  modeled_seconds += o.modeled_seconds;
  wall_seconds += o.wall_seconds;
}

CommStats::Entry CommStats::total() const {
  Entry t;
  t.merge(sendrecv);
  t.merge(allreduce);
  t.merge(allgather);
  return t;
}

void CommStats::reset() { *this = CommStats{}; }

int Communicator::size() const { return world_->size(); }

const AlphaBetaModel& Communicator::model() const { return world_->model(); }

void Communicator::send(int dst, const double* data, std::size_t n, int tag) {
  World::Message msg{rank_, tag, std::vector<double>(data, data + n)};
  world_->deliver(dst, std::move(msg));
}

void Communicator::send(int dst, const std::vector<double>& data, int tag) {
  send(dst, data.data(), data.size(), tag);
}

void Communicator::recv(int src, double* data, std::size_t n, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  World::Message msg = world_->take(rank_, src, tag);
  if (msg.payload.size() != n) {
    throw std::logic_error("recv: size mismatch (expected " + std::to_string(n) +
                           ", got " + std::to_string(msg.payload.size()) + ")");
  }
  std::copy(msg.payload.begin(), msg.payload.end(), data);
  const auto t1 = std::chrono::steady_clock::now();
  auto& e = (tag == internal_tag::kAllreduce || tag == internal_tag::kBarrier)
                ? stats_.allreduce
                : (tag == internal_tag::kAllgather ? stats_.allgather
                                                   : stats_.sendrecv);
  e.messages += 1;
  e.bytes += n * sizeof(double);
  e.modeled_seconds += world_->model().time(n * sizeof(double));
  e.wall_seconds += std::chrono::duration<double>(t1 - t0).count();
}

std::vector<double> Communicator::recv_vec(int src, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  World::Message msg = world_->take(rank_, src, tag);
  const auto t1 = std::chrono::steady_clock::now();
  auto& e = (tag == internal_tag::kAllreduce || tag == internal_tag::kBarrier)
                ? stats_.allreduce
                : (tag == internal_tag::kAllgather ? stats_.allgather
                                                   : stats_.sendrecv);
  e.messages += 1;
  e.bytes += msg.payload.size() * sizeof(double);
  e.modeled_seconds += world_->model().time(msg.payload.size() * sizeof(double));
  e.wall_seconds += std::chrono::duration<double>(t1 - t0).count();
  return std::move(msg.payload);
}

void Communicator::sendrecv(int peer, const std::vector<double>& out,
                            std::vector<double>& in, int tag) {
  send(peer, out, tag);
  in = recv_vec(peer, tag);
}

World::World(int size, AlphaBetaModel model) : size_(size), model_(model) {
  if (size < 1) throw std::invalid_argument("World: size must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void World::run(const std::function<void(Communicator&)>& rank_fn) {
  // Clear stale messages from a previous (possibly failed) run.
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lock(mb->mutex);
    mb->queue.clear();
  }
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  std::vector<Communicator> comms;
  comms.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) comms.push_back(Communicator(this, r));

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r]() {
      try {
        // Each rank models one device timesharing this machine: keep its
        // compute on its own thread (no nested OpenMP teams) so the
        // per-thread CPU-clock scaling measurements stay meaningful.
        ad::kernels::SerialRegionGuard serial_kernels;
        rank_fn(comms[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Wake everyone so blocked ranks can eventually fail too. We keep
        // it simple: notify all mailboxes.
        for (auto& mb : mailboxes_) mb->cv.notify_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  last_stats_.clear();
  for (const auto& c : comms) last_stats_.push_back(c.stats_);
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

double World::max_modeled_comm_seconds() const {
  double m = 0;
  for (const auto& s : last_stats_) {
    m = std::max(m, s.total().modeled_seconds);
  }
  return m;
}

void World::deliver(int dst, Message msg) {
  if (dst < 0 || dst >= size_) throw std::out_of_range("send: bad destination");
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_all();
}

World::Message World::take(int dst, int src, int tag) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(mb.mutex);
  for (;;) {
    for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        Message msg = std::move(*it);
        mb.queue.erase(it);
        return msg;
      }
    }
    mb.cv.wait(lock);
  }
}

}  // namespace mf::comm
