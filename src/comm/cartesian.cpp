#include "comm/cartesian.hpp"

#include <cmath>
#include <stdexcept>

namespace mf::comm {

std::pair<int, int> direction_offset(Direction d) {
  switch (d) {
    case Direction::kWest: return {-1, 0};
    case Direction::kEast: return {1, 0};
    case Direction::kSouth: return {0, -1};
    case Direction::kNorth: return {0, 1};
    case Direction::kSouthWest: return {-1, -1};
    case Direction::kSouthEast: return {1, -1};
    case Direction::kNorthWest: return {-1, 1};
    case Direction::kNorthEast: return {1, 1};
  }
  throw std::logic_error("bad direction");
}

Direction opposite(Direction d) {
  switch (d) {
    case Direction::kWest: return Direction::kEast;
    case Direction::kEast: return Direction::kWest;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kSouthWest: return Direction::kNorthEast;
    case Direction::kSouthEast: return Direction::kNorthWest;
    case Direction::kNorthWest: return Direction::kSouthEast;
    case Direction::kNorthEast: return Direction::kSouthWest;
  }
  throw std::logic_error("bad direction");
}

CartesianGrid::CartesianGrid(int world_size) : px_(0), py_(0) {
  if (world_size < 1) throw std::invalid_argument("CartesianGrid: size >= 1");
  // Most square factorization with px >= py.
  int py = static_cast<int>(std::sqrt(static_cast<double>(world_size)));
  while (py > 1 && world_size % py != 0) --py;
  py_ = py;
  px_ = world_size / py;
}

CartesianGrid::CartesianGrid(int px, int py) : px_(px), py_(py) {
  if (px < 1 || py < 1) throw std::invalid_argument("CartesianGrid: bad dims");
}

int CartesianGrid::rank_of(int cx, int cy) const {
  if (cx < 0 || cx >= px_ || cy < 0 || cy >= py_) {
    throw std::out_of_range("CartesianGrid::rank_of");
  }
  return cy * px_ + cx;  // row-wise scan (paper Sec. 4.2)
}

std::pair<int, int> CartesianGrid::coords_of(int rank) const {
  if (rank < 0 || rank >= size()) throw std::out_of_range("coords_of");
  return {rank % px_, rank / px_};
}

int CartesianGrid::neighbor(int rank, Direction d) const {
  const auto [cx, cy] = coords_of(rank);
  const auto [dx, dy] = direction_offset(d);
  const int nx = cx + dx, ny = cy + dy;
  if (nx < 0 || nx >= px_ || ny < 0 || ny >= py_) return -1;
  return rank_of(nx, ny);
}

std::array<int, kNumDirections> CartesianGrid::neighbors(int rank) const {
  std::array<int, kNumDirections> out;
  for (int d = 0; d < kNumDirections; ++d) {
    out[static_cast<std::size_t>(d)] = neighbor(rank, static_cast<Direction>(d));
  }
  return out;
}

}  // namespace mf::comm
