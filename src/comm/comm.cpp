#include "comm/comm.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

namespace mf::comm {

void CommStats::Entry::merge(const Entry& o) {
  messages += o.messages;
  bytes += o.bytes;
  modeled_seconds += o.modeled_seconds;
  wall_seconds += o.wall_seconds;
}

CommStats::Entry CommStats::total() const {
  Entry t;
  t.merge(sendrecv);
  t.merge(allreduce);
  t.merge(allgather);
  return t;
}

void CommStats::reset() { *this = CommStats{}; }

CommStats::Entry& Comm::stats_entry(int tag) {
  if (tag == internal_tag::kAllreduce || tag == internal_tag::kBarrier) {
    return stats_.allreduce;
  }
  if (tag == internal_tag::kAllgather) return stats_.allgather;
  return stats_.sendrecv;
}

void Comm::record(CommStats::Entry& e, std::size_t bytes, double wall_seconds) {
  e.messages += 1;
  e.bytes += bytes;
  e.modeled_seconds += model_.time(bytes);
  e.wall_seconds += wall_seconds;
}

namespace {

void check_tag(int tag) {
  // The full user range is [0, kMaxUserTag): negative values would alias
  // the internal collective tags, higher values the MPI wire band.
  // Enforced on every backend, so tag misuse cannot hide on the threaded
  // transport and only surface under mpirun.
  if (tag < 0 || tag >= kMaxUserTag) {
    throw std::invalid_argument("comm: user tag " + std::to_string(tag) +
                                " is outside [0, " +
                                std::to_string(kMaxUserTag) + ")");
  }
}

}  // namespace

void Comm::send(int dst, const double* data, std::size_t n, int tag) {
  check_tag(tag);
  send_internal(dst, data, n, tag);
}

void Comm::send(int dst, const std::vector<double>& data, int tag) {
  send(dst, data.data(), data.size(), tag);
}

void Comm::recv(int src, double* data, std::size_t n, int tag) {
  check_tag(tag);
  recv_internal(src, data, n, tag);
}

std::vector<double> Comm::recv_vec(int src, int tag) {
  check_tag(tag);
  return recv_vec_internal(src, tag);
}

void Comm::send_internal(int dst, const double* data, std::size_t n, int tag) {
  // Receiver-side accounting (matching the paper's per-rank cost model):
  // only recv records messages/bytes/time.
  transport_send(dst, data, n, tag);
}

void Comm::recv_internal(int src, double* data, std::size_t n, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> payload = transport_recv(src, tag);
  if (payload.size() != n) {
    throw std::logic_error("recv: size mismatch (expected " + std::to_string(n) +
                           ", got " + std::to_string(payload.size()) + ")");
  }
  std::copy(payload.begin(), payload.end(), data);
  const auto t1 = std::chrono::steady_clock::now();
  record(stats_entry(tag), n * sizeof(double),
         std::chrono::duration<double>(t1 - t0).count());
}

std::vector<double> Comm::recv_vec_internal(int src, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> payload = transport_recv(src, tag);
  const auto t1 = std::chrono::steady_clock::now();
  record(stats_entry(tag), payload.size() * sizeof(double),
         std::chrono::duration<double>(t1 - t0).count());
  return payload;
}

void Comm::sendrecv(int peer, const std::vector<double>& out,
                    std::vector<double>& in, int tag) {
  send(peer, out, tag);
  in = recv_vec(peer, tag);
}

void Comm::isend(int dst, const double* data, std::size_t n, int tag) {
  // Both transports' sends are already buffered/non-blocking, so the
  // nonblocking send is the send: the name documents intent at call
  // sites that overlap communication with compute.
  check_tag(tag);
  send_internal(dst, data, n, tag);
}

void Comm::isend(int dst, const std::vector<double>& data, int tag) {
  isend(dst, data.data(), data.size(), tag);
}

Comm::Request Comm::irecv(int src, int tag) {
  check_tag(tag);
  PendingRecv p;
  p.src = src;
  p.tag = tag;
  pending_recvs_.push_back(std::move(p));
  const Request r = (static_cast<Request>(recv_generation_) << 32) |
                    static_cast<Request>(pending_recvs_.size() - 1);
  // Opportunistic drain: earlier posts whose messages already landed
  // complete now, so their buffers stop occupying the transport.
  progress();
  return r;
}

void Comm::progress() {
  // Once a probe for a (src, tag) signature comes back empty this pass,
  // later pending receives with the same signature must not probe again:
  // a message landing between the two probes belongs to the earlier post
  // (post-order matching), not to whichever probe happens to run next.
  std::vector<std::pair<int, int>> empty_sigs;
  auto sig_empty = [&](int src, int tag) {
    for (const auto& s : empty_sigs) {
      if (s.first == src && s.second == tag) return true;
    }
    return false;
  };
  for (auto& p : pending_recvs_) {
    if (p.done || p.consumed) continue;
    if (sig_empty(p.src, p.tag)) continue;
    const auto t0 = std::chrono::steady_clock::now();
    if (!transport_try_recv(p.src, p.tag, p.payload)) {
      empty_sigs.emplace_back(p.src, p.tag);
      continue;
    }
    const auto t1 = std::chrono::steady_clock::now();
    // Same receiver-side accounting as the blocking path; the wall time
    // is the probe cost, not a block — that is the overlap win.
    record(stats_entry(p.tag), p.payload.size() * sizeof(double),
           std::chrono::duration<double>(t1 - t0).count());
    p.done = true;
  }
}

std::vector<double> Comm::wait_recv(Request r) {
  const std::uint32_t generation = static_cast<std::uint32_t>(r >> 32);
  const std::size_t idx = static_cast<std::size_t>(r & 0xffffffffu);
  if (generation != recv_generation_ || idx >= pending_recvs_.size() ||
      pending_recvs_[idx].consumed) {
    throw std::logic_error("wait_recv: invalid or already-completed request");
  }
  PendingRecv& p = pending_recvs_[idx];
  if (!p.done) {
    // Post-order matching (MPI semantics): an earlier posted receive with
    // the same (src, tag) owns the earlier message, even when the caller
    // waits on a later request first.
    for (std::size_t i = 0; i <= idx; ++i) {
      PendingRecv& q = pending_recvs_[i];
      if (q.done || q.consumed || q.src != p.src || q.tag != p.tag) continue;
      const auto t0 = std::chrono::steady_clock::now();
      q.payload = transport_recv(q.src, q.tag);
      const auto t1 = std::chrono::steady_clock::now();
      record(stats_entry(q.tag), q.payload.size() * sizeof(double),
             std::chrono::duration<double>(t1 - t0).count());
      q.done = true;
    }
  }
  p.consumed = true;
  std::vector<double> payload = std::move(p.payload);
  // Recycle the table once every posted receive has been handed out;
  // the generation bump invalidates any handle kept past this point.
  bool all_consumed = true;
  for (const auto& q : pending_recvs_) all_consumed &= q.consumed;
  if (all_consumed) {
    pending_recvs_.clear();
    ++recv_generation_;
  }
  return payload;
}

double Comm::allreduce_sum(double value) {
  allreduce_sum(&value, 1);
  return value;
}

double Comm::allreduce_max(double value) {
  allreduce_max(&value, 1);
  return value;
}

}  // namespace mf::comm
