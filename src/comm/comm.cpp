#include "comm/comm.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>

namespace mf::comm {

void CommStats::Entry::merge(const Entry& o) {
  messages += o.messages;
  bytes += o.bytes;
  modeled_seconds += o.modeled_seconds;
  wall_seconds += o.wall_seconds;
}

CommStats::Entry CommStats::total() const {
  Entry t;
  t.merge(sendrecv);
  t.merge(allreduce);
  t.merge(allgather);
  return t;
}

void CommStats::reset() { *this = CommStats{}; }

CommStats::Entry& Comm::stats_entry(int tag) {
  if (tag == internal_tag::kAllreduce || tag == internal_tag::kBarrier) {
    return stats_.allreduce;
  }
  if (tag == internal_tag::kAllgather) return stats_.allgather;
  return stats_.sendrecv;
}

void Comm::record(CommStats::Entry& e, std::size_t bytes, double wall_seconds) {
  e.messages += 1;
  e.bytes += bytes;
  e.modeled_seconds += model_.time(bytes);
  e.wall_seconds += wall_seconds;
}

namespace {

void check_tag(int tag) {
  // The full user range is [0, kMaxUserTag): negative values would alias
  // the internal collective tags, higher values the MPI wire band.
  // Enforced on every backend, so tag misuse cannot hide on the threaded
  // transport and only surface under mpirun.
  if (tag < 0 || tag >= kMaxUserTag) {
    throw std::invalid_argument("comm: user tag " + std::to_string(tag) +
                                " is outside [0, " +
                                std::to_string(kMaxUserTag) + ")");
  }
}

}  // namespace

void Comm::send(int dst, const double* data, std::size_t n, int tag) {
  check_tag(tag);
  send_internal(dst, data, n, tag);
}

void Comm::send(int dst, const std::vector<double>& data, int tag) {
  send(dst, data.data(), data.size(), tag);
}

void Comm::recv(int src, double* data, std::size_t n, int tag) {
  check_tag(tag);
  recv_internal(src, data, n, tag);
}

std::vector<double> Comm::recv_vec(int src, int tag) {
  check_tag(tag);
  return recv_vec_internal(src, tag);
}

void Comm::send_internal(int dst, const double* data, std::size_t n, int tag) {
  // Receiver-side accounting (matching the paper's per-rank cost model):
  // only recv records messages/bytes/time.
  transport_send(dst, data, n, tag);
}

void Comm::recv_internal(int src, double* data, std::size_t n, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> payload = transport_recv(src, tag);
  if (payload.size() != n) {
    throw std::logic_error("recv: size mismatch (expected " + std::to_string(n) +
                           ", got " + std::to_string(payload.size()) + ")");
  }
  std::copy(payload.begin(), payload.end(), data);
  const auto t1 = std::chrono::steady_clock::now();
  record(stats_entry(tag), n * sizeof(double),
         std::chrono::duration<double>(t1 - t0).count());
}

std::vector<double> Comm::recv_vec_internal(int src, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> payload = transport_recv(src, tag);
  const auto t1 = std::chrono::steady_clock::now();
  record(stats_entry(tag), payload.size() * sizeof(double),
         std::chrono::duration<double>(t1 - t0).count());
  return payload;
}

void Comm::sendrecv(int peer, const std::vector<double>& out,
                    std::vector<double>& in, int tag) {
  send(peer, out, tag);
  in = recv_vec(peer, tag);
}

void Comm::isend(int dst, const double* data, std::size_t n, int tag) {
  // Both transports' sends are already buffered/non-blocking, so the
  // nonblocking send is the send: the name documents intent at call
  // sites that overlap communication with compute.
  check_tag(tag);
  send_internal(dst, data, n, tag);
}

void Comm::isend(int dst, const std::vector<double>& data, int tag) {
  isend(dst, data.data(), data.size(), tag);
}

Comm::Request Comm::irecv(int src, int tag) {
  check_tag(tag);
  PendingRecv p;
  p.id = next_recv_id_++;
  p.src = src;
  p.tag = tag;
  pending_recvs_.push_back(std::move(p));
  const Request r = pending_recvs_.back().id;
  // Opportunistic drain: earlier posts whose messages already landed
  // complete now, so their buffers stop occupying the transport.
  progress();
  return r;
}

void Comm::progress() {
  // Once a probe for a (src, tag) signature comes back empty this pass,
  // later pending receives with the same signature must not probe again:
  // a message landing between the two probes belongs to the earlier post
  // (post-order matching), not to whichever probe happens to run next.
  // Exhausted signatures go in a hash set, so one pass is O(pending)
  // rather than O(pending * distinct signatures).
  std::unordered_set<std::uint64_t> empty_sigs;
  const auto sig_key = [](int src, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  };
  for (auto& p : pending_recvs_) {
    if (p.done || p.consumed) continue;
    const std::uint64_t key = sig_key(p.src, p.tag);
    if (empty_sigs.count(key) != 0) continue;
    const auto t0 = std::chrono::steady_clock::now();
    if (!transport_try_recv(p.src, p.tag, p.payload)) {
      empty_sigs.insert(key);
      continue;
    }
    const auto t1 = std::chrono::steady_clock::now();
    // Same receiver-side accounting as the blocking path; the wall time
    // is the probe cost, not a block — that is the overlap win.
    record(stats_entry(p.tag), p.payload.size() * sizeof(double),
           std::chrono::duration<double>(t1 - t0).count());
    p.done = true;
  }
}

std::vector<double> Comm::wait_recv(Request r) {
  const auto it = std::lower_bound(
      pending_recvs_.begin(), pending_recvs_.end(), r,
      [](const PendingRecv& q, Request id) { return q.id < id; });
  if (it == pending_recvs_.end() || it->id != r || it->consumed) {
    throw std::logic_error("wait_recv: invalid or already-completed request");
  }
  PendingRecv& p = *it;
  if (!p.done) {
    // Post-order matching (MPI semantics): an earlier posted receive with
    // the same (src, tag) owns the earlier message, even when the caller
    // waits on a later request first.
    for (auto jt = pending_recvs_.begin();; ++jt) {
      PendingRecv& q = *jt;
      if (!q.done && !q.consumed && q.src == p.src && q.tag == p.tag) {
        const auto t0 = std::chrono::steady_clock::now();
        q.payload = transport_recv(q.src, q.tag);
        const auto t1 = std::chrono::steady_clock::now();
        record(stats_entry(q.tag), q.payload.size() * sizeof(double),
               std::chrono::duration<double>(t1 - t0).count());
        q.done = true;
      }
      if (jt == it) break;
    }
  }
  p.consumed = true;
  ++consumed_pending_;
  std::vector<double> payload = std::move(p.payload);
  // Amortized compaction: drop consumed entries once they make up half
  // the table (stable removal, so post-order matching among the
  // survivors is untouched). The table stays O(outstanding posts) even
  // when one straggler is never waited on — previously it could only
  // recycle when *every* post had been consumed, so a single straggler
  // pinned unbounded growth.
  constexpr std::size_t kCompactMin = 16;
  if (consumed_pending_ >= kCompactMin &&
      consumed_pending_ * 2 >= pending_recvs_.size()) {
    pending_recvs_.erase(
        std::remove_if(pending_recvs_.begin(), pending_recvs_.end(),
                       [](const PendingRecv& q) { return q.consumed; }),
        pending_recvs_.end());
    consumed_pending_ = 0;
  }
  return payload;
}

bool Comm::wait_recv_for(Request r, double timeout_ms,
                         std::vector<double>& out) {
  if (timeout_ms < 0) {
    out = wait_recv(r);
    return true;
  }
  const auto find = [this](Request id) {
    return std::lower_bound(
        pending_recvs_.begin(), pending_recvs_.end(), id,
        [](const PendingRecv& q, Request want) { return q.id < want; });
  };
  {
    // Validate the handle up front so a stale handle throws instead of
    // spinning until the deadline.
    const auto it = find(r);
    if (it == pending_recvs_.end() || it->id != r || it->consumed) {
      throw std::logic_error(
          "wait_recv_for: invalid or already-completed request");
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  for (;;) {
    progress();
    const auto it = find(r);
    if (it != pending_recvs_.end() && it->id == r && it->done &&
        !it->consumed) {
      // Completes without blocking and reuses wait_recv's post-order
      // consume + amortized compaction.
      out = wait_recv(r);
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

double Comm::allreduce_sum(double value) {
  allreduce_sum(&value, 1);
  return value;
}

double Comm::allreduce_max(double value) {
  allreduce_max(&value, 1);
  return value;
}

}  // namespace mf::comm
