#include "comm/comm.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

namespace mf::comm {

void CommStats::Entry::merge(const Entry& o) {
  messages += o.messages;
  bytes += o.bytes;
  modeled_seconds += o.modeled_seconds;
  wall_seconds += o.wall_seconds;
}

CommStats::Entry CommStats::total() const {
  Entry t;
  t.merge(sendrecv);
  t.merge(allreduce);
  t.merge(allgather);
  return t;
}

void CommStats::reset() { *this = CommStats{}; }

CommStats::Entry& Comm::stats_entry(int tag) {
  if (tag == internal_tag::kAllreduce || tag == internal_tag::kBarrier) {
    return stats_.allreduce;
  }
  if (tag == internal_tag::kAllgather) return stats_.allgather;
  return stats_.sendrecv;
}

void Comm::record(CommStats::Entry& e, std::size_t bytes, double wall_seconds) {
  e.messages += 1;
  e.bytes += bytes;
  e.modeled_seconds += model_.time(bytes);
  e.wall_seconds += wall_seconds;
}

namespace {

void check_tag(int tag) {
  // The full user range is [0, kMaxUserTag): negative values would alias
  // the internal collective tags, higher values the MPI wire band.
  // Enforced on every backend, so tag misuse cannot hide on the threaded
  // transport and only surface under mpirun.
  if (tag < 0 || tag >= kMaxUserTag) {
    throw std::invalid_argument("comm: user tag " + std::to_string(tag) +
                                " is outside [0, " +
                                std::to_string(kMaxUserTag) + ")");
  }
}

}  // namespace

void Comm::send(int dst, const double* data, std::size_t n, int tag) {
  check_tag(tag);
  send_internal(dst, data, n, tag);
}

void Comm::send(int dst, const std::vector<double>& data, int tag) {
  send(dst, data.data(), data.size(), tag);
}

void Comm::recv(int src, double* data, std::size_t n, int tag) {
  check_tag(tag);
  recv_internal(src, data, n, tag);
}

std::vector<double> Comm::recv_vec(int src, int tag) {
  check_tag(tag);
  return recv_vec_internal(src, tag);
}

void Comm::send_internal(int dst, const double* data, std::size_t n, int tag) {
  // Receiver-side accounting (matching the paper's per-rank cost model):
  // only recv records messages/bytes/time.
  transport_send(dst, data, n, tag);
}

void Comm::recv_internal(int src, double* data, std::size_t n, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> payload = transport_recv(src, tag);
  if (payload.size() != n) {
    throw std::logic_error("recv: size mismatch (expected " + std::to_string(n) +
                           ", got " + std::to_string(payload.size()) + ")");
  }
  std::copy(payload.begin(), payload.end(), data);
  const auto t1 = std::chrono::steady_clock::now();
  record(stats_entry(tag), n * sizeof(double),
         std::chrono::duration<double>(t1 - t0).count());
}

std::vector<double> Comm::recv_vec_internal(int src, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> payload = transport_recv(src, tag);
  const auto t1 = std::chrono::steady_clock::now();
  record(stats_entry(tag), payload.size() * sizeof(double),
         std::chrono::duration<double>(t1 - t0).count());
  return payload;
}

void Comm::sendrecv(int peer, const std::vector<double>& out,
                    std::vector<double>& in, int tag) {
  send(peer, out, tag);
  in = recv_vec(peer, tag);
}

double Comm::allreduce_sum(double value) {
  allreduce_sum(&value, 1);
  return value;
}

double Comm::allreduce_max(double value) {
  allreduce_max(&value, 1);
  return value;
}

}  // namespace mf::comm
