// Deterministic fault injection over any comm::Comm backend.
//
// FaultComm decorates an inner transport (ThreadComm or MpiComm) with a
// reliable-delivery layer that deliberately misbehaves on schedule:
// every point-to-point payload is framed with a per-(peer, tag) sequence
// number and a CRC-32, and the receiver draws a deterministic fault
// decision per frame from hash(seed, src, dst, tag, seq):
//
//   * drop  — the frame is withheld for an emulated retransmit ladder
//             (capped exponential backoff: rto_ms, 2*rto_ms, ... capped
//             at rto_max_ms, one rung per consecutive emulated loss);
//   * delay — the frame is withheld for delay_ms;
//   * flip  — a bit-flipped copy is CRC-verified first (the mismatch is
//             counted as a detected corruption), then the clean frame is
//             released after one retransmit timeout;
//   * dup   — the frame is delivered twice; the second copy is discarded
//             by the sequence-number dedup;
//   * stall — every stall_every-th receive call on stall_rank sleeps
//             stall_ms, emulating a slow/overloaded rank.
//
// Frames are released strictly in sequence order per (src, tag) — a
// held-back frame blocks the frames behind it, exactly like a real
// retransmission window — so the channel stays exactly-once, in-order,
// contents-exact: only *timing* degrades. With an all-zero spec the
// holdback queue never holds anything and delivered payloads (hence
// solver results) are bitwise identical to the bare backend.
//
// The schedule (which frames are dropped/delayed/flipped/duplicated) is
// a pure function of the spec string, so two runs of the same program
// under the same MF_FAULT_SPEC inject the identical fault schedule.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/comm.hpp"

namespace mf::comm {

/// Parsed MF_FAULT_SPEC. Grammar: `key=value` pairs separated by `;` or
/// `,`, e.g. "seed=7;drop=0.05;delay=0.05;delay_ms=2". Unknown keys and
/// malformed values throw std::invalid_argument with the offending
/// clause in the message.
struct FaultSpec {
  std::uint64_t seed = 1;
  double drop = 0;   // P(frame enters the retransmit ladder)
  double delay = 0;  // P(frame held for delay_ms)
  double dup = 0;    // P(frame delivered twice)
  double flip = 0;   // P(bit-flipped copy delivered first)
  double delay_ms = 2.0;
  double rto_ms = 2.0;       // retransmit-timeout base (drop/flip holds)
  double rto_max_ms = 16.0;  // exponential-backoff cap
  int stall_rank = -1;       // -1: no rank stalls
  double stall_ms = 0;
  int stall_every = 16;
  double liveness_ms = 20000;  // blocking-receive poll cap before erroring

  bool any_faults() const {
    return drop > 0 || delay > 0 || dup > 0 || flip > 0 ||
           (stall_rank >= 0 && stall_ms > 0);
  }

  static FaultSpec parse(const std::string& text);

  /// The deterministic per-frame schedule: what happens to frame `seq`
  /// of channel (src -> dst, tag). Pure function of (spec, arguments).
  struct Decision {
    int drop_losses = 0;  // consecutive emulated transmission losses
    bool delayed = false;
    bool flip = false;
    bool dup = false;
    double hold_ms = 0;  // total receiver-side holdback before release
  };
  Decision decide(int src, int dst, int tag, std::uint64_t seq) const;
};

/// Result of parsing MF_FAULT_SPEC: inactive when the variable is unset
/// or empty, otherwise the parsed spec.
struct FaultEnvSpec {
  bool active = false;
  FaultSpec spec;
};
FaultEnvSpec fault_spec_from_env();

/// Injection accounting for one rank's FaultComm.
struct FaultStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t injected_drops = 0;  // emulated losses (ladder rungs)
  std::uint64_t injected_delays = 0;
  std::uint64_t injected_dups = 0;
  std::uint64_t duplicate_discards = 0;  // dedup hits (== dups delivered)
  std::uint64_t injected_flips = 0;
  std::uint64_t detected_corruptions = 0;  // CRC mismatches caught
  std::uint64_t stalls = 0;
};

class FaultComm final : public Comm {
 public:
  /// Decorate `inner`, which must outlive this object. All ranks of a
  /// world must be wrapped consistently (all or none): the framing is a
  /// wire-format change.
  FaultComm(Comm& inner, FaultSpec spec);

  int rank() const override { return inner_.rank(); }
  int size() const override { return inner_.size(); }

  const FaultSpec& spec() const { return spec_; }
  const FaultStats& fault_stats() const { return fstats_; }

 protected:
  void transport_send(int dst, const double* data, std::size_t n,
                      int tag) override;
  std::vector<double> transport_recv(int src, int tag) override;
  bool transport_try_recv(int src, int tag, std::vector<double>& out) override;

 private:
  struct HeldFrame {
    std::uint64_t seq = 0;
    double release_ms = 0;  // monotonic clock, ms since comm creation
    std::vector<double> payload;
  };
  struct RecvChannel {
    std::uint64_t next_seq = 0;  // next sequence number to deliver
    std::deque<HeldFrame> held;  // arrival (== seq) order
  };

  double now_ms() const;
  void maybe_stall();
  /// Drain every frame the inner transport has for (src, tag) into the
  /// channel's holdback queue, applying the fault schedule per frame.
  void pump(int src, int tag, RecvChannel& ch);
  /// Deliver the front frame if its release time has passed (discarding
  /// injected duplicates on the way).
  bool pop_ready(RecvChannel& ch, std::vector<double>& out);

  Comm& inner_;
  FaultSpec spec_;
  FaultStats fstats_;
  std::unordered_map<std::uint64_t, std::uint64_t> send_seq_;
  std::unordered_map<std::uint64_t, RecvChannel> recv_ch_;
  std::uint64_t recv_calls_ = 0;
  std::uint64_t t0_ns_ = 0;  // steady_clock origin for release times
};

}  // namespace mf::comm
