// Real MPI transport (built only with -DMF_WITH_MPI=ON).
//
// MpiComm implements the Comm interface over MPI_Send/Recv and overrides
// the collectives with native MPI_Allreduce/Allgatherv/Barrier. Wall
// seconds in CommStats are measured; modeled seconds still follow the
// alpha-beta model, accounted with the same algorithm shapes as the
// threaded backend's software collectives (recursive doubling, ring,
// dissemination), so stats stay comparable across backends.
//
// Unlike the threaded backend, each MPI rank is a real process and keeps
// its full OpenMP team: there is no SerialRegionGuard, because processes
// do not timeshare one thread-CPU clock.
#pragma once

#include "comm/comm.hpp"

#ifdef MF_HAVE_MPI

#include <mpi.h>

namespace mf::comm {

class MpiComm final : public Comm {
 public:
  explicit MpiComm(MPI_Comm comm = MPI_COMM_WORLD, AlphaBetaModel model = {});
  ~MpiComm() override;

  int rank() const override { return rank_; }
  int size() const override { return size_; }

  // Native collectives (the base-class software ones would work over
  // transport_send/recv, but real MPI has optimized implementations).
  void allreduce_sum(double* data, std::size_t n) override;
  using Comm::allreduce_sum;  // keep the scalar convenience overloads
  void allreduce_max(double* data, std::size_t n) override;
  using Comm::allreduce_max;
  std::vector<std::vector<double>> allgatherv(
      const std::vector<double>& local) override;
  void barrier() override;

 protected:
  void transport_send(int dst, const double* data, std::size_t n,
                      int tag) override;
  std::vector<double> transport_recv(int src, int tag) override;
  /// MPI_Iprobe-backed nonblocking receive: consumes an already-arrived
  /// message without blocking (and reaps completed Isend slots while at
  /// it), so posted halo receives drain in arrival order.
  bool transport_try_recv(int src, int tag, std::vector<double>& out) override;

 private:
  /// MPI tags must be non-negative; internal (negative) tags are folded
  /// into a reserved high band.
  static int wire_tag(int tag);
  /// Account a native collective: `messages` rounds moving `bytes` total,
  /// measured `wall` seconds, into stats entry `e`.
  void record_collective(CommStats::Entry& e, int messages, std::size_t bytes,
                         double wall_seconds);
  /// Allreduce accounting shaped like the threaded software algorithm
  /// (recursive doubling / gather+broadcast), for cross-backend parity.
  void record_allreduce(std::size_t n_doubles, double wall_seconds);
  /// Erase pending buffered sends whose MPI_Isend has completed.
  void reap_completed_sends();

  /// A buffered in-flight send: we own the payload until MPI completes it.
  struct PendingSend {
    MPI_Request req;
    std::vector<double> buf;
  };

  MPI_Comm comm_;
  int rank_ = 0;
  int size_ = 1;
  std::vector<PendingSend> pending_;
};

}  // namespace mf::comm

#endif  // MF_HAVE_MPI
