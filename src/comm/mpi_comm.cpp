#include "comm/mpi_comm.hpp"

#ifdef MF_HAVE_MPI

#include <bit>
#include <cmath>
#include <iterator>
#include <stdexcept>
#include <string>

#include "util/timing.hpp"

namespace mf::comm {

namespace {

using util::wall_seconds;

void check(int err, const char* what) {
  if (err != MPI_SUCCESS) {
    throw std::runtime_error(std::string("MPI error in ") + what + ": code " +
                             std::to_string(err));
  }
}

int log2_rounds(int P) {
  int rounds = 0;
  for (int dist = 1; dist < P; dist <<= 1) ++rounds;
  return rounds;
}

}  // namespace

MpiComm::MpiComm(MPI_Comm comm, AlphaBetaModel model)
    : Comm(model), comm_(comm) {
  int initialized = 0;
  check(MPI_Initialized(&initialized), "MPI_Initialized");
  if (!initialized) {
    throw std::logic_error(
        "MpiComm: MPI is not initialized (construct a RankLauncher first)");
  }
  check(MPI_Comm_rank(comm_, &rank_), "MPI_Comm_rank");
  check(MPI_Comm_size(comm_, &size_), "MPI_Comm_size");
}

MpiComm::~MpiComm() {
  // Every send a correct program posts gets received, so the remaining
  // requests complete; don't throw from a destructor on the off chance.
  for (auto& p : pending_) {
    MPI_Wait(&p.req, MPI_STATUS_IGNORE);
  }
}

int MpiComm::wire_tag(int tag) {
  // User tags (enforced < kMaxUserTag by the Comm layer) pass through;
  // internal collective tags (small negatives) map into
  // [kMaxUserTag, kMaxUserTag + 1000), inside the >= 32767 floor the MPI
  // standard guarantees for MPI_TAG_UB.
  return tag >= 0 ? tag : kMaxUserTag - tag;
}

void MpiComm::transport_send(int dst, const double* data, std::size_t n,
                             int tag) {
  // The Comm contract requires sends that do not deadlock when every rank
  // sends before receiving (the halo pattern is all-sends-then-all-recvs).
  // A blocking MPI_Send can rendezvous past the eager threshold, so we
  // copy the payload into a pending slot we own and MPI_Isend from it;
  // completed slots are reaped on the next send and in the destructor.
  pending_.push_back(PendingSend{MPI_REQUEST_NULL,
                                 std::vector<double>(data, data + n)});
  PendingSend& slot = pending_.back();
  check(MPI_Isend(slot.buf.data(), static_cast<int>(n), MPI_DOUBLE, dst,
                  wire_tag(tag), comm_, &slot.req),
        "MPI_Isend");
  reap_completed_sends();
}

void MpiComm::reap_completed_sends() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    int done = 0;
    check(MPI_Test(&it->req, &done, MPI_STATUS_IGNORE), "MPI_Test");
    it = done ? pending_.erase(it) : std::next(it);
  }
}

std::vector<double> MpiComm::transport_recv(int src, int tag) {
  MPI_Status status;
  check(MPI_Probe(src, wire_tag(tag), comm_, &status), "MPI_Probe");
  int count = 0;
  check(MPI_Get_count(&status, MPI_DOUBLE, &count), "MPI_Get_count");
  std::vector<double> payload(static_cast<std::size_t>(count));
  check(MPI_Recv(payload.data(), count, MPI_DOUBLE, src, wire_tag(tag), comm_,
                 MPI_STATUS_IGNORE),
        "MPI_Recv");
  return payload;
}

bool MpiComm::transport_try_recv(int src, int tag, std::vector<double>& out) {
  // Progress our own outstanding Isends while polling: a rank spinning in
  // halo progress should also let its sent buffers retire.
  reap_completed_sends();
  int flag = 0;
  MPI_Status status;
  check(MPI_Iprobe(src, wire_tag(tag), comm_, &flag, &status), "MPI_Iprobe");
  if (!flag) return false;
  int count = 0;
  check(MPI_Get_count(&status, MPI_DOUBLE, &count), "MPI_Get_count");
  out.resize(static_cast<std::size_t>(count));
  check(MPI_Recv(out.data(), count, MPI_DOUBLE, src, wire_tag(tag), comm_,
                 MPI_STATUS_IGNORE),
        "MPI_Recv");
  return true;
}

void MpiComm::record_collective(CommStats::Entry& e, int messages,
                                std::size_t bytes, double wall_seconds) {
  e.messages += static_cast<std::uint64_t>(messages);
  e.bytes += bytes;
  // Model each round as one alpha plus its share of the bytes.
  e.modeled_seconds += messages * model_.alpha +
                       static_cast<double>(bytes) / model_.beta;
  e.wall_seconds += wall_seconds;
}

void MpiComm::record_allreduce(std::size_t n_doubles, double wall_seconds) {
  // Mirror the threaded software allreduce's accounting exactly so
  // CommStats stay comparable across backends: recursive doubling at
  // power-of-two sizes; gather+broadcast otherwise, where the root
  // receives P-1 blocks and every other rank receives 1.
  const std::size_t bytes = n_doubles * sizeof(double);
  if (std::has_single_bit(static_cast<unsigned>(size_))) {
    const int rounds = log2_rounds(size_);
    record_collective(stats_.allreduce, rounds,
                      static_cast<std::size_t>(rounds) * bytes, wall_seconds);
  } else if (rank_ == 0) {
    record_collective(stats_.allreduce, size_ - 1,
                      static_cast<std::size_t>(size_ - 1) * bytes,
                      wall_seconds);
  } else {
    record_collective(stats_.allreduce, 1, bytes, wall_seconds);
  }
}

void MpiComm::allreduce_sum(double* data, std::size_t n) {
  if (size_ == 1) return;
  const double t0 = wall_seconds();
  check(MPI_Allreduce(MPI_IN_PLACE, data, static_cast<int>(n), MPI_DOUBLE,
                      MPI_SUM, comm_),
        "MPI_Allreduce");
  record_allreduce(n, wall_seconds() - t0);
}

void MpiComm::allreduce_max(double* data, std::size_t n) {
  if (size_ == 1) return;
  const double t0 = wall_seconds();
  check(MPI_Allreduce(MPI_IN_PLACE, data, static_cast<int>(n), MPI_DOUBLE,
                      MPI_MAX, comm_),
        "MPI_Allreduce");
  record_allreduce(n, wall_seconds() - t0);
}

std::vector<std::vector<double>> MpiComm::allgatherv(
    const std::vector<double>& local) {
  std::vector<std::vector<double>> all(static_cast<std::size_t>(size_));
  all[static_cast<std::size_t>(rank_)] = local;
  if (size_ == 1) return all;

  const double t0 = wall_seconds();
  const int my_count = static_cast<int>(local.size());
  std::vector<int> counts(static_cast<std::size_t>(size_), 0);
  check(MPI_Allgather(&my_count, 1, MPI_INT, counts.data(), 1, MPI_INT, comm_),
        "MPI_Allgather");
  std::vector<int> displs(static_cast<std::size_t>(size_), 0);
  int total = 0;
  for (int r = 0; r < size_; ++r) {
    displs[static_cast<std::size_t>(r)] = total;
    total += counts[static_cast<std::size_t>(r)];
  }
  std::vector<double> flat(static_cast<std::size_t>(total));
  check(MPI_Allgatherv(local.data(), my_count, MPI_DOUBLE, flat.data(),
                       counts.data(), displs.data(), MPI_DOUBLE, comm_),
        "MPI_Allgatherv");
  std::size_t incoming_bytes = 0;
  for (int r = 0; r < size_; ++r) {
    const auto ru = static_cast<std::size_t>(r);
    all[ru].assign(flat.begin() + displs[ru],
                   flat.begin() + displs[ru] + counts[ru]);
    if (r != rank_) {
      incoming_bytes += static_cast<std::size_t>(counts[ru]) * sizeof(double);
    }
  }
  // Ring shape: P-1 steps, receiving every other rank's block once.
  record_collective(stats_.allgather, size_ - 1, incoming_bytes,
                    wall_seconds() - t0);
  return all;
}

void MpiComm::barrier() {
  if (size_ == 1) return;
  const double t0 = wall_seconds();
  check(MPI_Barrier(comm_), "MPI_Barrier");
  const int rounds = log2_rounds(size_);
  record_collective(stats_.allreduce, rounds,
                    static_cast<std::size_t>(rounds) * sizeof(double),
                    wall_seconds() - t0);
}

}  // namespace mf::comm

#endif  // MF_HAVE_MPI
