// 2-D processor grid with row-wise scan rank placement and the 8-neighbor
// stencil used by the distributed MF predictor (Sec. 4.2, Fig. 4).
#pragma once

#include <array>
#include <cstdint>

namespace mf::comm {

/// Stencil directions; orthogonal first, then diagonal (matching the
/// paper's Fig. 4 distinction between orthogonal and diagonal neighbors).
enum class Direction : int {
  kWest = 0,
  kEast = 1,
  kSouth = 2,
  kNorth = 3,
  kSouthWest = 4,
  kSouthEast = 5,
  kNorthWest = 6,
  kNorthEast = 7,
};

constexpr int kNumDirections = 8;

/// The (dx, dy) offset of a direction.
std::pair<int, int> direction_offset(Direction d);
/// The direction pointing the opposite way (for matching send/recv tags).
Direction opposite(Direction d);

/// Factorizes P into the most square px x py grid (px >= py) and maps
/// ranks row-wise: rank = cy * px + cx.
class CartesianGrid {
 public:
  explicit CartesianGrid(int world_size);
  CartesianGrid(int px, int py);

  int px() const { return px_; }
  int py() const { return py_; }
  int size() const { return px_ * py_; }

  int rank_of(int cx, int cy) const;
  std::pair<int, int> coords_of(int rank) const;

  /// Neighbor rank in direction `d`, or -1 at the domain edge.
  int neighbor(int rank, Direction d) const;

  /// All 8 neighbors (indexed by Direction), -1 where absent.
  std::array<int, kNumDirections> neighbors(int rank) const;

 private:
  int px_, py_;
};

}  // namespace mf::comm
