#include "comm/runtime.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "comm/fault_comm.hpp"
#include "comm/world.hpp"

#ifdef MF_HAVE_MPI
#include <mpi.h>

#include "comm/mpi_comm.hpp"
#endif

namespace mf::comm {

#ifdef MF_HAVE_MPI
namespace {

// MPI may be initialized and finalized at most once per process, but a
// process (a test binary, say) may create several RankLaunchers. The
// session is therefore a function-local static: first launcher inits,
// static destruction finalizes at program exit.
struct MpiSession {
  bool we_initialized = false;
  MpiSession(int argc, char** argv) {
    int initialized = 0;
    MPI_Initialized(&initialized);
    if (!initialized) {
      // FUNNELED, not SINGLE: ranks keep their OpenMP teams (and the
      // threaded backend may coexist in the same process), with all MPI
      // calls funneled through the main thread.
      int provided = 0;
      if (argv != nullptr && argc > 0) {
        MPI_Init_thread(&argc, &argv, MPI_THREAD_FUNNELED, &provided);
      } else {
        MPI_Init_thread(nullptr, nullptr, MPI_THREAD_FUNNELED, &provided);
      }
      if (provided < MPI_THREAD_FUNNELED) {
        std::fprintf(stderr,
                     "warning: MPI provides thread level %d < FUNNELED; "
                     "run with OMP_NUM_THREADS=1 to be safe\n",
                     provided);
      }
      we_initialized = true;
    }
  }
  ~MpiSession() {
    if (we_initialized) {
      int finalized = 0;
      MPI_Finalized(&finalized);
      if (!finalized) MPI_Finalize();
    }
  }
};

void ensure_mpi_session(int argc, char** argv) {
  static MpiSession session(argc, argv);
  (void)session;
}

}  // namespace
#endif

const char* backend_name(Backend b) {
  return b == Backend::kMpi ? "mpi" : "threads";
}

bool mpi_compiled() {
#ifdef MF_HAVE_MPI
  return true;
#else
  return false;
#endif
}

RankLauncher::RankLauncher(int argc, char** argv, AlphaBetaModel model)
    : model_(model) {
  const char* forced = std::getenv("MF_COMM");
  const bool force_threads = forced && std::strcmp(forced, "threads") == 0;
  const bool force_mpi = forced && std::strcmp(forced, "mpi") == 0;
  if (force_mpi && !mpi_compiled()) {
    throw std::runtime_error(
        "MF_COMM=mpi but this binary was built without MPI "
        "(configure with -DMF_WITH_MPI=ON)");
  }
#ifdef MF_HAVE_MPI
  if (!force_threads) {
    ensure_mpi_session(argc, argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &mpi_rank_);
    MPI_Comm_size(MPI_COMM_WORLD, &mpi_size_);
    // A single-process launch keeps the threaded backend (so scaling
    // sweeps still work from a plain ./bench invocation) unless the
    // caller forces MPI.
    if (mpi_size_ > 1 || force_mpi) backend_ = Backend::kMpi;
  }
#else
  (void)argc;
  (void)argv;
#endif
  (void)force_threads;
  if (backend_ == Backend::kThreads) {
    // If the threaded backend runs under a process launcher anyway (a
    // non-MPI build under mpirun, or MF_COMM=threads), every process
    // would otherwise think it is root and race on output files. Read
    // the launcher-provided rank so is_root() stays honest.
    for (const char* var : {"OMPI_COMM_WORLD_RANK", "PMI_RANK", "PMIX_RANK",
                            "SLURM_PROCID"}) {
      if (const char* v = std::getenv(var)) {
        const int r = std::atoi(v);
        if (r > 0) mpi_rank_ = r;
        break;
      }
    }
  }
}

RankLauncher::~RankLauncher() = default;

std::vector<int> RankLauncher::sweep_rank_counts(
    std::vector<int> defaults) const {
  if (backend_ == Backend::kMpi) return {mpi_size_};
  return defaults;
}

void RankLauncher::run(int ranks, const std::function<void(Comm&)>& fn) {
  if (ranks < 1) throw std::invalid_argument("RankLauncher::run: ranks < 1");
  // Chaos hatch: MF_FAULT_SPEC wraps every rank's transport in the
  // deterministic fault injector. Parsed once per run() so a bad spec
  // fails fast with its grammar error rather than deadlocking ranks.
  const FaultEnvSpec fault = fault_spec_from_env();
  const auto rank_fn = [&](Comm& inner) {
    if (fault.active) {
      FaultComm faulty(inner, fault.spec);
      fn(faulty);
    } else {
      fn(inner);
    }
  };
  if (backend_ == Backend::kMpi) {
#ifdef MF_HAVE_MPI
    if (ranks != mpi_size_) {
      throw std::invalid_argument(
          "RankLauncher::run: requested " + std::to_string(ranks) +
          " ranks but mpirun launched " + std::to_string(mpi_size_) +
          " processes");
    }
    MpiComm comm(MPI_COMM_WORLD, model_);
    try {
      rank_fn(comm);
    } catch (const std::exception& e) {
      // A rank that unwinds past its peers would deadlock the job (its
      // pending sends never get matched, everyone else blocks in recv),
      // so fail the whole world fast instead.
      std::fprintf(stderr, "rank %d: fatal: %s\n", comm.rank(), e.what());
      MPI_Abort(MPI_COMM_WORLD, 1);
    } catch (...) {
      std::fprintf(stderr, "rank %d: fatal: unknown exception\n", comm.rank());
      MPI_Abort(MPI_COMM_WORLD, 1);
    }
    // Keep invocations of run() separated so a next world's messages
    // cannot race ahead into this one's matching window.
    comm.barrier();
    return;
#endif
  }
  World world(ranks, model_);
  world.run(rank_fn);
}

}  // namespace mf::comm
