#include "mosaic/predictor.hpp"

#include <cmath>
#include <stdexcept>

#include "ad/kernels.hpp"
#include "util/timing.hpp"

namespace mf::mosaic {

std::vector<std::pair<int64_t, int64_t>> phase_corners(
    int64_t phase, int64_t h, int64_t m, int64_t nx_cells, int64_t ny_cells,
    int64_t cx0, int64_t cx1, int64_t cy0, int64_t cy1) {
  const int64_t px = phase & 1;
  const int64_t py = (phase >> 1) & 1;
  std::vector<std::pair<int64_t, int64_t>> corners;
  for (int64_t j = cy0; j < cy1; ++j) {
    if ((j & 1) != py) continue;
    const int64_t gy = j * h;
    if (gy + m > ny_cells) continue;
    for (int64_t i = cx0; i < cx1; ++i) {
      if ((i & 1) != px) continue;
      const int64_t gx = i * h;
      if (gx + m > nx_cells) continue;
      corners.emplace_back(gx, gy);
    }
  }
  return corners;
}

void predict_interior(const LatticeWindow& window,
                      const SubdomainSolver& solver,
                      const SubdomainGeometry& geom, int64_t nx_cells,
                      int64_t ny_cells, linalg::Grid2D& solution,
                      double* inference_seconds, double* boundary_io_seconds) {
  const int64_t m = geom.m;
  const int64_t h = geom.h;
  std::vector<std::pair<int64_t, int64_t>> tiles;
  for (int64_t gy = 0; gy + m <= ny_cells; gy += m)
    for (int64_t gx = 0; gx + m <= nx_cells; gx += m) tiles.emplace_back(gx, gy);
  // Same reusable gather/scatter buffers as the phase updates.
  PhaseScratch& scratch = phase_scratch();
  std::vector<std::vector<double>>& boundaries = scratch.boundaries;
  boundaries.resize(tiles.size());
  util::StopwatchAccum io_time, inf_time;
  {
    util::ScopedCpuTimer t(io_time);
    gather_phase_boundaries(window, geom, tiles, boundaries);
  }
  std::vector<std::vector<double>>& interiors = scratch.predictions;
  {
    util::ScopedCpuTimer t(inf_time);
    solver.predict(boundaries, geom.interior_queries, interiors);
  }
  {
    util::ScopedCpuTimer t(io_time);
    // The tiling is non-overlapping, so interior scatter writes disjoint
    // points per tile.
    ad::kernels::parallel_for(
        static_cast<int64_t>(tiles.size()),
        static_cast<int64_t>(geom.interior_offsets.size()),
        [&](int64_t begin, int64_t end) {
          for (int64_t b = begin; b < end; ++b) {
            const auto [gx, gy] = tiles[static_cast<std::size_t>(b)];
            for (std::size_t k = 0; k < geom.interior_offsets.size(); ++k) {
              const auto [di, dj] = geom.interior_offsets[k];
              solution.at(gx + di, gy + dj) =
                  interiors[static_cast<std::size_t>(b)][k];
            }
          }
        });
    // Lattice lines (including the global boundary) come from the
    // iterated window state.
    for (int64_t gy = 0; gy <= ny_cells; ++gy)
      for (int64_t gx = 0; gx <= nx_cells; ++gx)
        if (gx % h == 0 || gy % h == 0) solution.at(gx, gy) = window.at(gx, gy);
  }
  if (inference_seconds) *inference_seconds += inf_time.total();
  if (boundary_io_seconds) *boundary_io_seconds += io_time.total();
}

MfpResult mosaic_predict(const SubdomainSolver& solver, int64_t nx_cells,
                         int64_t ny_cells,
                         const std::vector<double>& global_boundary,
                         const MfpOptions& options) {
  const int64_t m = solver.m();
  if (nx_cells % m != 0 || ny_cells % m != 0) {
    throw std::invalid_argument(
        "mosaic_predict: domain cells must be a multiple of the subdomain size");
  }
  SubdomainGeometry geom(m);
  const int64_t h = geom.h;

  // Window over the full domain; set global boundary and initialize.
  LatticeWindow window(0, 0, nx_cells, ny_cells);
  linalg::apply_perimeter(window.grid(), global_boundary);
  if (options.init == LatticeInit::kCoons) coons_init(window.grid());

  MfpResult result{linalg::Grid2D(nx_cells + 1, ny_cells + 1), 0, 0, 0, 0, 0};

  const int64_t ci_max_x = nx_cells / h;  // corner indices are in [0, ci_max)
  const int64_t ci_max_y = ny_cells / h;

  // Convergence is judged on a full 4-phase cycle: a single phase can
  // touch very few subdomains (near domain corners) and report a
  // misleadingly small delta.
  double cycle_num = 0, cycle_den = 0;
  for (int64_t iter = 0; iter < options.max_iters; ++iter) {
    const int64_t phase = iter % 4;
    auto corners = phase_corners(phase, h, m, nx_cells, ny_cells, 0, ci_max_x,
                                 0, ci_max_y);
    PhaseResult pr =
        update_subdomains(window, solver, geom, corners, options.batched,
                          /*collect_writes=*/false, options.relaxation);
    result.inference_seconds += pr.inference_seconds;
    result.boundary_io_seconds += pr.boundary_io_seconds;
    result.iterations = iter + 1;
    cycle_num += pr.delta_num;
    cycle_den += pr.delta_den;
    if (phase == 3) {
      result.final_delta =
          cycle_den > 0 ? std::sqrt(cycle_num / cycle_den) : 0.0;
      cycle_num = cycle_den = 0;
      if (result.final_delta < options.tol) break;
    }
    if (options.reference && options.target_mae > 0 &&
        (iter + 1) % options.check_every == 0) {
      result.lattice_mae = lattice_mae(window, *options.reference, h, 0, 0,
                                       nx_cells, ny_cells);
      if (result.lattice_mae < options.target_mae) break;
    }
  }

  // Final phase: predict the full interior of the non-overlapping tiling
  // (even corner indices), then keep lattice-line values from the iterated
  // state. Union covers every interior point.
  predict_interior(window, solver, geom, nx_cells, ny_cells, result.solution,
                   &result.inference_seconds, &result.boundary_io_seconds);

  if (options.reference) {
    result.lattice_mae = linalg::Grid2D::mean_abs_diff(result.solution,
                                                       *options.reference);
  }
  return result;
}

}  // namespace mf::mosaic
