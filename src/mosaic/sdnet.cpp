#include "mosaic/sdnet.hpp"

#include <stdexcept>

namespace mf::mosaic {

Sdnet::Sdnet(const SdnetConfig& config, util::Rng& rng) : config_(config) {
  if (config.conv_kernel % 2 == 0) {
    throw std::invalid_argument("Sdnet: conv_kernel must be odd");
  }
  int64_t g_features = config.boundary_size;
  if (config.use_conv_encoder) {
    encoder_ = std::make_shared<nn::ConvBoundaryEncoder>(
        config.boundary_size, config.conv_channels, config.conv_depth,
        config.conv_kernel, config.activation, rng);
    register_module("encoder", encoder_);
    g_features = encoder_->out_features();
  }
  if (config.use_split_embedding) {
    split_embedding_ = std::make_shared<nn::SplitInputEmbedding>(
        g_features, 2, config.hidden_width, config.activation, rng);
    register_module("embedding", split_embedding_);
  } else {
    concat_embedding_ = std::make_shared<nn::InputConcatEmbedding>(
        g_features, 2, config.hidden_width, config.activation, rng);
    register_module("embedding", concat_embedding_);
  }
  std::vector<int64_t> widths(static_cast<std::size_t>(config.mlp_depth),
                              config.hidden_width);
  widths.push_back(1);
  mlp_ = std::make_shared<nn::MLP>(widths, config.activation, rng);
  register_module("mlp", mlp_);
}

Tensor Sdnet::forward(const Tensor& g, const Tensor& x) const {
  Tensor gf = config_.use_conv_encoder ? encoder_->forward(g) : g;
  Tensor h = config_.use_split_embedding ? split_embedding_->forward(gf, x)
                                         : concat_embedding_->forward(gf, x);
  return mlp_->forward(h);
}

Tensor Sdnet::predict(const Tensor& g, const Tensor& x) const {
  ad::NoGradGuard no_grad;
  return forward(g, x);
}

}  // namespace mf::mosaic
