// Subdomain solver abstraction used by the Mosaic Flow predictor.
//
// The MFP only needs "given a subdomain's discretized boundary, predict
// values at query points inside it". Three implementations:
//  * NeuralSubdomainSolver  — a trained SDNet (the paper's solver)
//  * HarmonicKernelSolver   — exact discrete Poisson-kernel superposition
//    (the Laplace solution operator is linear in the boundary data), a
//    "perfectly trained SDNet" used to isolate algorithmic convergence of
//    the predictor from neural approximation error
//  * MultigridSubdomainSolver — per-call numerical solve; the classical
//    Schwarz subdomain solver for baseline comparisons
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ad/program.hpp"
#include "linalg/grid2d.hpp"
#include "mosaic/sdnet.hpp"

namespace mf::mosaic {

/// Query positions are relative coordinates in the unit subdomain square.
using QueryList = std::vector<std::pair<double, double>>;

/// Process-wide observability counters for the compiled-inference caches
/// (the per-thread shape-keyed program caches behind
/// NeuralSubdomainSolver::predict), aggregated across threads and solvers.
/// The serve stats line reports these so cross-request batching
/// effectiveness — shared plans vs eager fallbacks — is visible in
/// production, and tests assert them.
struct InferCacheStats {
  std::uint64_t exact_hits = 0;    // replays through an exact-shape plan
  std::uint64_t widened_hits = 0;  // batches covered whole by a widened plan
  std::uint64_t chunked_hits = 0;  // widened cover + eager remainder batches
  std::uint64_t widen_remainder_rows = 0;  // rows sent eager by chunking
  std::uint64_t misses = 0;        // eager batches (first sight / retired)
  std::uint64_t captures = 0;      // successful plan captures
  std::uint64_t evictions = 0;     // cache-bound evictions
  std::uint64_t retired = 0;       // health-sentinel plan retirements
};
InferCacheStats infer_cache_stats();
void infer_cache_stats_reset();

/// Current per-thread plan-cache capacity (process-global setting).
std::size_t infer_cache_capacity();
/// Raise the plan-cache capacity to at least `min_entries` (never
/// shrinks; default is 8). Multi-tenant serving calls this so each
/// tenant's hot widened plan survives the one-shot interior batch
/// shapes that churn through the cache at job retirement.
void infer_cache_reserve(std::size_t min_entries);

class SubdomainSolver {
 public:
  virtual ~SubdomainSolver() = default;

  /// Grid cells per subdomain side; boundary vectors carry 4m values in
  /// the canonical perimeter order (neural scenario solvers may accept a
  /// longer vector: 4m boundary values followed by a conditioning
  /// suffix — see scenario::conditioning_size).
  virtual int64_t m() const = 0;

  /// Predict values at `queries` for every boundary in the batch.
  /// out[b][k] = u(queries[k]; boundaries[b]). Implementations may batch
  /// internally; results must not depend on the batch split. `out` is
  /// resized, not reassigned, so callers can recycle its buffers across
  /// iterations.
  virtual void predict(const std::vector<std::vector<double>>& boundaries,
                       const QueryList& queries,
                       std::vector<std::vector<double>>& out) const = 0;

  /// Single-subdomain call writing into a reusable buffer. The default
  /// wraps predict(); NeuralSubdomainSolver overrides it to reuse its
  /// input/output tensors across calls (the paper's unbatched baseline
  /// stays one-network-call-per-subdomain, just without tensor churn).
  virtual void predict_one_into(const std::vector<double>& boundary,
                                const QueryList& queries,
                                std::vector<double>& out) const;

  /// Convenience single-subdomain call.
  std::vector<double> predict_one(const std::vector<double>& boundary,
                                  const QueryList& queries) const;
};

/// SDNet-backed solver.
class NeuralSubdomainSolver final : public SubdomainSolver {
 public:
  /// `net` must accept conditioning vectors of >= 4m values (4m boundary
  /// values, then any scenario suffix the checkpoint was trained with).
  NeuralSubdomainSolver(std::shared_ptr<const Sdnet> net, int64_t m);
  /// Purges this solver's captured programs from the calling thread's
  /// cache (they pin the network weights); entries captured by other
  /// threads age out of their bounded caches instead.
  ~NeuralSubdomainSolver() override;

  int64_t m() const override { return m_; }
  /// Batched inference runs through a captured Program per (batch, query)
  /// shape: the network forward is traced once and replayed dispatch-free
  /// for every following phase with the same geometry. Each captured plan
  /// is additionally offered for batch widening (Program::widen on its
  /// {g, x, pred} tensors); when that succeeds, the one plan also serves
  /// every batch size that is a multiple of its capture batch via
  /// replay_widened — no extra captures for the Schwarz phases whose
  /// batches are multiples of each other. Programs are per-thread and
  /// read the network weights live, so a retrained net needs no
  /// invalidation. MF_DISABLE_PROGRAM=1 restores the eager path;
  /// MF_DISABLE_WIDENING=1 keeps per-shape captures only.
  void predict(const std::vector<std::vector<double>>& boundaries,
               const QueryList& queries,
               std::vector<std::vector<double>>& out) const override;
  void predict_one_into(const std::vector<double>& boundary,
                        const QueryList& queries,
                        std::vector<double>& out) const override;

  /// Aggregate capture/replay stats of this solver's inference programs
  /// on the calling thread (programs are thread-local and shape-keyed).
  ad::Program::Stats thread_program_stats() const;

 private:
  std::shared_ptr<const Sdnet> net_;
  int64_t m_;
  std::uint64_t serial_;  // keys the per-thread program cache safely
};

/// Exact solver by superposition of precomputed discrete harmonic basis
/// functions: u(q) = sum_k g_k * B_k(q) where B_k solves the Laplace
/// equation with the k-th unit boundary condition.
class HarmonicKernelSolver final : public SubdomainSolver {
 public:
  explicit HarmonicKernelSolver(int64_t m);

  int64_t m() const override { return m_; }
  void predict(const std::vector<std::vector<double>>& boundaries,
               const QueryList& queries,
               std::vector<std::vector<double>>& out) const override;

  /// Value of basis function k at relative coordinates (qx, qy)
  /// (bilinear interpolation between grid points).
  double basis_value(int64_t k, double qx, double qy) const;

 private:
  int64_t m_;
  std::vector<linalg::Grid2D> basis_;  // 4m grids of (m+1)^2 points
};

/// Classical numerical subdomain solve (multigrid) per call.
class MultigridSubdomainSolver final : public SubdomainSolver {
 public:
  explicit MultigridSubdomainSolver(int64_t m, double tol = 1e-10);

  int64_t m() const override { return m_; }
  void predict(const std::vector<std::vector<double>>& boundaries,
               const QueryList& queries,
               std::vector<std::vector<double>>& out) const override;

 private:
  int64_t m_;
  double tol_;
};

/// Bilinear sample of a unit-square grid field at relative coordinates.
double sample_bilinear(const linalg::Grid2D& g, double qx, double qy);

}  // namespace mf::mosaic
