#include "mosaic/subdomain_solver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "ad/kernels.hpp"
#include "linalg/multigrid.hpp"

namespace mf::mosaic {

namespace {

/// One captured batched-inference plan: leaf tensors + program for a
/// specific (solver, batch size, query count) geometry. A geometry is
/// captured on its *second* occurrence: one-shot shapes (a phase that
/// never recurs) stay eager and pay nothing, recurring shapes (the 4
/// Schwarz phases of a convergence run) replay from their third call on.
/// When the captured plan widens (Program::widen on {g, x, pred}), one
/// entry additionally serves every batch size that is a multiple of its
/// capture batch — the widened replay packs B instances into batch-scaled
/// buffers and runs the same plan with every batch-carrying slot's
/// leading dimension scaled, turning many skinny GEMMs into few wide
/// ones. Batch sizes that are not multiples of a widened entry's base
/// still get their own per-shape entry, exactly as before.
struct InferEntry {
  std::uint64_t solver_serial = 0;
  int64_t B = -1, q = -1, G = -1;
  bool wide = false;  // widening analysis succeeded for this plan
  // Part of the cache key: a process that flips MF_PRECISION (tests,
  // mixed pipelines) must not replay a plan lowered at the other width.
  ad::DType dt = ad::DType::kF64;
  // Dtype the plan is actually (re)captured at. Starts equal to `dt`;
  // the health-sentinel ladder forces it to kF64 after an f32 trip.
  ad::DType capture_dt = ad::DType::kF64;
  // Terminal ladder rung: the sentinel tripped on an f64 plan too, so
  // this geometry stays eager (the bad values come from the data or the
  // weights, not the precision policy).
  bool eager_only = false;
  ad::Tensor g, x, pred;
  ad::Program program;
};

// Per-thread shape-keyed cache. Keyed by a per-solver serial number — not
// the solver pointer — so a new solver constructed at a recycled address
// can never replay a dead solver's captured weights. Bounded: the oldest
// entry is evicted, dropping its pinned buffers (its capture/replay
// counters are folded into a per-thread tally so stats survive eviction).
thread_local std::vector<InferEntry> t_infer_cache;
thread_local std::vector<std::pair<std::uint64_t, ad::Program::Stats>>
    t_evicted_stats;
// Capacity is process-global (each thread's cache honours it at insert
// time). 8 covers a single solve's working set; multi-tenant serving
// raises it via infer_cache_reserve so per-tenant hot plans survive the
// interior-batch churn at job retirement.
constexpr std::size_t kDefaultInferEntries = 8;
std::atomic<std::size_t> g_infer_capacity{kDefaultInferEntries};

void fold_stats(ad::Program::Stats& agg, const ad::Program::Stats& s) {
  agg.steps += s.steps;
  agg.slots += s.slots;
  agg.external_slots += s.external_slots;
  agg.arena_bytes += s.arena_bytes;
  agg.pinned_bytes += s.pinned_bytes;
  agg.fused_steps += s.fused_steps;
  agg.fused_ops += s.fused_ops;
  agg.cast_steps += s.cast_steps;
  agg.optim_steps += s.optim_steps;
  agg.waves += s.waves;
  agg.wide_instances += s.wide_instances;
  agg.max_widen_batch = std::max(agg.max_widen_batch, s.max_widen_batch);
  agg.capture_ms += s.capture_ms;
  agg.captures += s.captures;
  agg.replays += s.replays;
  agg.widened_replays += s.widened_replays;
}

// Process-wide cache observability. Relaxed atomics: the counters are
// monotone tallies, never used for synchronization.
struct AtomicInferStats {
  std::atomic<std::uint64_t> exact_hits{0};
  std::atomic<std::uint64_t> widened_hits{0};
  std::atomic<std::uint64_t> chunked_hits{0};
  std::atomic<std::uint64_t> widen_remainder_rows{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> captures{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> retired{0};
};
AtomicInferStats g_infer_stats;

void bump(std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
  c.fetch_add(n, std::memory_order_relaxed);
}

// The cache is kept in LRU order: hits rotate the used entry to the
// back (see touch_entry), so the front is the least-recently-useful
// shape. Under mixed serve traffic this keeps the hot widened plans
// (hit every tick) pinned while one-shot batch shapes age out.
void evict_oldest_entry() {
  bump(g_infer_stats.evictions);
  const InferEntry& victim = t_infer_cache.front();
  if (victim.program.captured()) {
    bool folded = false;
    for (auto& [serial, tally] : t_evicted_stats) {
      if (serial == victim.solver_serial) {
        fold_stats(tally, victim.program.stats());
        folded = true;
        break;
      }
    }
    if (!folded) {
      // Bounded best-effort: a long-lived thread cycling through many
      // solvers must not accumulate tallies for dead serials forever.
      constexpr std::size_t kMaxTallies = 64;
      if (t_evicted_stats.size() >= kMaxTallies) {
        t_evicted_stats.erase(t_evicted_stats.begin());
      }
      t_evicted_stats.emplace_back(victim.solver_serial,
                                   victim.program.stats());
    }
  }
  t_infer_cache.erase(t_infer_cache.begin());
}

std::atomic<std::uint64_t> g_solver_serial{1};

// LRU maintenance: rotate the entry just used to the back of the cache.
// Invalidates every InferEntry pointer into the cache — call only after
// the last use of such pointers on the current path.
void touch_entry(InferEntry* e) {
  const std::size_t idx = static_cast<std::size_t>(e - t_infer_cache.data());
  if (idx + 1 < t_infer_cache.size()) {
    std::rotate(t_infer_cache.begin() + static_cast<std::ptrdiff_t>(idx),
                t_infer_cache.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                t_infer_cache.end());
  }
}

}  // namespace

InferCacheStats infer_cache_stats() {
  InferCacheStats s;
  s.exact_hits = g_infer_stats.exact_hits.load(std::memory_order_relaxed);
  s.widened_hits = g_infer_stats.widened_hits.load(std::memory_order_relaxed);
  s.chunked_hits = g_infer_stats.chunked_hits.load(std::memory_order_relaxed);
  s.widen_remainder_rows =
      g_infer_stats.widen_remainder_rows.load(std::memory_order_relaxed);
  s.misses = g_infer_stats.misses.load(std::memory_order_relaxed);
  s.captures = g_infer_stats.captures.load(std::memory_order_relaxed);
  s.evictions = g_infer_stats.evictions.load(std::memory_order_relaxed);
  s.retired = g_infer_stats.retired.load(std::memory_order_relaxed);
  return s;
}

std::size_t infer_cache_capacity() {
  return g_infer_capacity.load(std::memory_order_relaxed);
}

void infer_cache_reserve(std::size_t min_entries) {
  std::size_t cur = g_infer_capacity.load(std::memory_order_relaxed);
  while (cur < min_entries &&
         !g_infer_capacity.compare_exchange_weak(cur, min_entries,
                                                 std::memory_order_relaxed)) {
  }
}

void infer_cache_stats_reset() {
  g_infer_stats.exact_hits.store(0, std::memory_order_relaxed);
  g_infer_stats.widened_hits.store(0, std::memory_order_relaxed);
  g_infer_stats.chunked_hits.store(0, std::memory_order_relaxed);
  g_infer_stats.widen_remainder_rows.store(0, std::memory_order_relaxed);
  g_infer_stats.misses.store(0, std::memory_order_relaxed);
  g_infer_stats.captures.store(0, std::memory_order_relaxed);
  g_infer_stats.evictions.store(0, std::memory_order_relaxed);
  g_infer_stats.retired.store(0, std::memory_order_relaxed);
}

void SubdomainSolver::predict_one_into(const std::vector<double>& boundary,
                                       const QueryList& queries,
                                       std::vector<double>& out) const {
  std::vector<std::vector<double>> batch_out;
  predict({boundary}, queries, batch_out);
  out = std::move(batch_out[0]);
}

std::vector<double> SubdomainSolver::predict_one(
    const std::vector<double>& boundary, const QueryList& queries) const {
  std::vector<double> out;
  predict_one_into(boundary, queries, out);
  return out;
}

double sample_bilinear(const linalg::Grid2D& g, double qx, double qy) {
  const double fx = qx * static_cast<double>(g.nx() - 1);
  const double fy = qy * static_cast<double>(g.ny() - 1);
  const int64_t i0 = std::clamp<int64_t>(static_cast<int64_t>(fx), 0, g.nx() - 2);
  const int64_t j0 = std::clamp<int64_t>(static_cast<int64_t>(fy), 0, g.ny() - 2);
  const double tx = fx - static_cast<double>(i0);
  const double ty = fy - static_cast<double>(j0);
  return (1 - tx) * (1 - ty) * g.at(i0, j0) + tx * (1 - ty) * g.at(i0 + 1, j0) +
         (1 - tx) * ty * g.at(i0, j0 + 1) + tx * ty * g.at(i0 + 1, j0 + 1);
}

NeuralSubdomainSolver::NeuralSubdomainSolver(std::shared_ptr<const Sdnet> net,
                                             int64_t m)
    : net_(std::move(net)),
      m_(m),
      serial_(g_solver_serial.fetch_add(1, std::memory_order_relaxed)) {
  // Scenario nets condition on the 4m boundary plus a suffix (k
  // perimeter, drift, ...), so anything >= 4m is a valid input width.
  if (net_->config().boundary_size < 4 * m) {
    throw std::invalid_argument(
        "NeuralSubdomainSolver: network boundary size < 4m");
  }
}

NeuralSubdomainSolver::~NeuralSubdomainSolver() {
  // Release this thread's captured plans (and their pinned weight
  // payloads) now rather than waiting for FIFO eviction; stats tallies
  // for the dead serial can never be queried again either.
  auto dead = [this](const auto& e) { return e.solver_serial == serial_; };
  t_infer_cache.erase(
      std::remove_if(t_infer_cache.begin(), t_infer_cache.end(), dead),
      t_infer_cache.end());
  auto dead_tally = [this](const auto& e) { return e.first == serial_; };
  t_evicted_stats.erase(std::remove_if(t_evicted_stats.begin(),
                                       t_evicted_stats.end(), dead_tally),
                        t_evicted_stats.end());
}

namespace {

// Raw-pointer forms so the same packing serves the master tensors and a
// widened replay's batch-scaled buffers (identical layout: instance-major
// rows, so packing B instances into a widened buffer lays them out
// exactly as B0-sized chunks of the base plan would see them).
void pack_batch(const std::vector<std::vector<double>>& boundaries,
                const QueryList& queries, int64_t B, int64_t G, int64_t q,
                ad::real* g, ad::real* x, int64_t first = 0) {
  // Batch packing threads over subdomains; each batch row is disjoint.
  // `first` selects a row range [first, first + B) of `boundaries` so
  // chunked widen dispatch can pack the covered prefix and the eager
  // remainder through the same code.
  ad::kernels::parallel_for(B, G + 2 * q, [&](int64_t begin, int64_t end) {
    for (int64_t b = begin; b < end; ++b) {
      const auto& bd = boundaries[static_cast<std::size_t>(first + b)];
      for (int64_t k = 0; k < G; ++k) g[b * G + k] = bd[static_cast<std::size_t>(k)];
      for (int64_t k = 0; k < q; ++k) {
        x[(b * q + k) * 2 + 0] = queries[static_cast<std::size_t>(k)].first;
        x[(b * q + k) * 2 + 1] = queries[static_cast<std::size_t>(k)].second;
      }
    }
  });
}

void pack_batch(const std::vector<std::vector<double>>& boundaries,
                const QueryList& queries, int64_t B, int64_t G, int64_t q,
                ad::Tensor& g, ad::Tensor& x) {
  pack_batch(boundaries, queries, B, G, q, g.data(), x.data());
}

// Writes rows [first, first + B) of `out` (which must already be sized)
// from a contiguous prediction buffer of B instances.
void unpack_rows(const ad::real* pred, int64_t B, int64_t q,
                 std::vector<std::vector<double>>& out, int64_t first) {
  ad::kernels::parallel_for(B, q, [&](int64_t begin, int64_t end) {
    for (int64_t b = begin; b < end; ++b) {
      auto& row = out[static_cast<std::size_t>(first + b)];
      row.resize(static_cast<std::size_t>(q));
      for (int64_t k = 0; k < q; ++k)
        row[static_cast<std::size_t>(k)] = pred[b * q + k];
    }
  });
}

void unpack_batch(const ad::real* pred, int64_t B, int64_t q,
                  std::vector<std::vector<double>>& out) {
  // Resize (not assign) so caller-recycled buffers keep their capacity.
  out.resize(static_cast<std::size_t>(B));
  unpack_rows(pred, B, q, out, /*first=*/0);
}

void unpack_batch(const ad::Tensor& pred, int64_t B, int64_t q,
                  std::vector<std::vector<double>>& out) {
  unpack_batch(pred.data(), B, q, out);
}

}  // namespace

void NeuralSubdomainSolver::predict(
    const std::vector<std::vector<double>>& boundaries, const QueryList& queries,
    std::vector<std::vector<double>>& out) const {
  const int64_t B = static_cast<int64_t>(boundaries.size());
  const int64_t G = net_->config().boundary_size;
  const int64_t q = static_cast<int64_t>(queries.size());
  for (const auto& bd : boundaries) {
    if (static_cast<int64_t>(bd.size()) != G) {
      throw std::invalid_argument("predict: boundary size mismatch");
    }
  }
  // Compiled path: trace the network forward once per geometry, replay it
  // for every later batch of the same shape. Skipped inside an enclosing
  // capture (the outer program records this call's kernels itself).
  if (ad::program_enabled() && !ad::prog::capturing() && B > 0 && q > 0) {
    const ad::DType dt = ad::compute_dtype();
    InferEntry* exact = nullptr;
    InferEntry* wide = nullptr;
    InferEntry* cover = nullptr;  // widest partial cover of a non-multiple B
    int64_t cover_rows = 0;
    for (auto& entry : t_infer_cache) {
      if (entry.solver_serial != serial_ || entry.q != q || entry.G != G ||
          entry.dt != dt)
        continue;
      if (entry.B == B) {
        exact = &entry;
      } else if (entry.wide && B % entry.B == 0) {
        wide = &entry;
      } else if (entry.wide && entry.B < B) {
        const int64_t c = entry.program.widen_cover(B);
        if (c > cover_rows) {
          cover_rows = c;
          cover = &entry;
        }
      }
    }
    // Health-sentinel fallback ladder (only ever taken when a post-replay
    // scan trips, i.e. under MF_HEALTH_CHECKS): the poisoned plan is
    // dropped, an f32 plan is recaptured at f64 on the geometry's next
    // recurrence, an f64 trip retires the geometry to eager — and the
    // current batch is always recomputed eagerly in f64 below, so tripped
    // garbage never reaches the caller.
    const auto retire = [](InferEntry& e) {
      bump(g_infer_stats.retired);
      e.program.reset();
      e.wide = false;
      if (e.capture_dt == ad::DType::kF32) {
        e.capture_dt = ad::DType::kF64;
        ad::health_note_fallback(/*to_eager=*/false);
      } else {
        e.eager_only = true;
        ad::health_note_fallback(/*to_eager=*/true);
      }
    };
    if (exact && exact->eager_only) {
      // Sentinel-retired geometry: straight to the eager path below.
      bump(g_infer_stats.misses);
    } else if (exact && exact->program.captured()) {
      pack_batch(boundaries, queries, B, G, q, exact->g, exact->x);
      exact->program.replay();
      if (exact->program.last_replay_healthy()) {
        bump(g_infer_stats.exact_hits);
        unpack_batch(exact->pred, B, q, out);
        touch_entry(exact);
        return;
      }
      retire(*exact);
      bump(g_infer_stats.misses);
    } else if (wide) {
      // No captured plan at exactly B, but a widened entry's plan covers
      // it: pack all B instances into the batch-scaled buffers and replay
      // with every batch-carrying slot's leading dimension multiplied.
      // One plan, one wide GEMM sequence — no per-shape capture needed.
      pack_batch(boundaries, queries, B, G, q,
                 wide->program.widened_buffer(wide->g, B),
                 wide->program.widened_buffer(wide->x, B));
      wide->program.replay_widened(B);
      if (wide->program.last_replay_healthy()) {
        bump(g_infer_stats.widened_hits);
        unpack_batch(wide->program.widened_buffer(wide->pred, B), B, q, out);
        touch_entry(wide);
        return;
      }
      retire(*wide);
      bump(g_infer_stats.misses);
    } else if (cover) {
      // Chunked widen dispatch: B is not a multiple of any widened plan's
      // base, but one covers a prefix of widen_cover(B) rows. Replay that
      // prefix wide and run only the odd remainder eagerly — no per-shape
      // entry is created, so transient batch sizes from cross-request
      // scheduling cannot churn the cache.
      pack_batch(boundaries, queries, cover_rows, G, q,
                 cover->program.widened_buffer(cover->g, cover_rows),
                 cover->program.widened_buffer(cover->x, cover_rows));
      cover->program.replay_widened(cover_rows);
      if (cover->program.last_replay_healthy()) {
        const int64_t rem = B - cover_rows;
        out.resize(static_cast<std::size_t>(B));
        unpack_rows(cover->program.widened_buffer(cover->pred, cover_rows),
                    cover_rows, q, out, /*first=*/0);
        ad::Tensor g_r = ad::Tensor::zeros({rem, G});
        ad::Tensor x_r = ad::Tensor::zeros({rem, q, 2});
        pack_batch(boundaries, queries, rem, G, q, g_r.data(), x_r.data(),
                   /*first=*/cover_rows);
        ad::Tensor pred_r = net_->predict(g_r, x_r);  // [rem, q, 1]
        unpack_rows(pred_r.data(), rem, q, out, /*first=*/cover_rows);
        bump(g_infer_stats.chunked_hits);
        bump(g_infer_stats.widen_remainder_rows,
             static_cast<std::uint64_t>(rem));
        touch_entry(cover);
        return;
      }
      retire(*cover);
      bump(g_infer_stats.misses);
    } else if (!exact) {
      // First sight of this geometry: note it and run eagerly below —
      // capture only pays off if the shape comes back.
      while (t_infer_cache.size() >=
             g_infer_capacity.load(std::memory_order_relaxed)) {
        evict_oldest_entry();
      }
      t_infer_cache.emplace_back();
      exact = &t_infer_cache.back();
      exact->solver_serial = serial_;
      exact->B = B;
      exact->q = q;
      exact->G = G;
      exact->dt = dt;
      exact->capture_dt = dt;
      bump(g_infer_stats.misses);
    } else {
      // Second sight: the geometry recurs — trace it, then try to widen
      // so this one plan also serves every multiple of B (fail-closed:
      // on refusal the entry just keeps exact-shape replay). capture_dt
      // (not dt) so a sentinel-downgraded geometry recaptures at f64.
      exact->g = ad::Tensor::zeros({B, G});
      exact->x = ad::Tensor::zeros({B, q, 2});
      pack_batch(boundaries, queries, B, G, q, exact->g, exact->x);
      exact->program.set_compute_dtype(exact->capture_dt);
      exact->program.capture(
          [&] { exact->pred = net_->predict(exact->g, exact->x); });
      if (exact->program.captured()) {
        exact->wide = exact->program.widen({exact->g, exact->x, exact->pred});
        bump(g_infer_stats.captures);
      } else {
        bump(g_infer_stats.misses);
      }
      unpack_batch(exact->pred, B, q, out);
      touch_entry(exact);
      return;
    }
  }
  ad::Tensor g = ad::Tensor::zeros({B, G});
  ad::Tensor x = ad::Tensor::zeros({B, q, 2});
  pack_batch(boundaries, queries, B, G, q, g, x);
  ad::Tensor pred = net_->predict(g, x);  // [B, q, 1]
  unpack_batch(pred, B, q, out);
}

ad::Program::Stats NeuralSubdomainSolver::thread_program_stats() const {
  ad::Program::Stats agg;
  for (const auto& entry : t_infer_cache) {
    if (entry.solver_serial == serial_) fold_stats(agg, entry.program.stats());
  }
  for (const auto& [serial, tally] : t_evicted_stats) {
    if (serial == serial_) fold_stats(agg, tally);
  }
  return agg;
}

void NeuralSubdomainSolver::predict_one_into(const std::vector<double>& boundary,
                                             const QueryList& queries,
                                             std::vector<double>& out) const {
  const int64_t G = net_->config().boundary_size;
  const int64_t q = static_cast<int64_t>(queries.size());
  if (static_cast<int64_t>(boundary.size()) != G) {
    throw std::invalid_argument("predict: boundary size mismatch");
  }
  // The unbatched (atomic) baseline calls the network once per subdomain;
  // rebuilding the [1,G] / [1,q,2] input tensors per call was pure churn.
  // Keep one pair per thread and refill in place — still exactly one
  // network call per subdomain. Safe to mutate between calls: predict()
  // runs under NoGradGuard, so no graph retains these tensors.
  struct Scratch {
    int64_t G = -1, q = -1;
    ad::Tensor g, x;
  };
  thread_local Scratch s;
  if (s.G != G || s.q != q) {
    s.g = ad::Tensor::zeros({1, G});
    s.x = ad::Tensor::zeros({1, q, 2});
    s.G = G;
    s.q = q;
  }
  for (int64_t k = 0; k < G; ++k) s.g.flat(k) = boundary[static_cast<std::size_t>(k)];
  for (int64_t k = 0; k < q; ++k) {
    s.x.flat(k * 2 + 0) = queries[static_cast<std::size_t>(k)].first;
    s.x.flat(k * 2 + 1) = queries[static_cast<std::size_t>(k)].second;
  }
  ad::Tensor pred = net_->predict(s.g, s.x);  // [1, q, 1]
  out.resize(static_cast<std::size_t>(q));
  for (int64_t k = 0; k < q; ++k) out[static_cast<std::size_t>(k)] = pred.flat(k);
}

HarmonicKernelSolver::HarmonicKernelSolver(int64_t m) : m_(m) {
  const int64_t G = 4 * m;
  basis_.reserve(static_cast<std::size_t>(G));
  std::vector<double> e(static_cast<std::size_t>(G), 0.0);
  for (int64_t k = 0; k < G; ++k) {
    e[static_cast<std::size_t>(k)] = 1.0;
    linalg::Grid2D u(m + 1, m + 1);
    linalg::apply_perimeter(u, e);
    linalg::solve_laplace_mg(u, 1.0 / static_cast<double>(m));
    basis_.push_back(std::move(u));
    e[static_cast<std::size_t>(k)] = 0.0;
  }
}

double HarmonicKernelSolver::basis_value(int64_t k, double qx, double qy) const {
  return sample_bilinear(basis_[static_cast<std::size_t>(k)], qx, qy);
}

void HarmonicKernelSolver::predict(
    const std::vector<std::vector<double>>& boundaries, const QueryList& queries,
    std::vector<std::vector<double>>& out) const {
  const std::size_t B = boundaries.size();
  const std::size_t q = queries.size();
  const std::size_t G = static_cast<std::size_t>(4 * m_);
  // Precompute basis values at the query points once per call.
  std::vector<double> bq(G * q);
  for (std::size_t k = 0; k < G; ++k)
    for (std::size_t j = 0; j < q; ++j)
      bq[k * q + j] = basis_value(static_cast<int64_t>(k), queries[j].first,
                                  queries[j].second);
  out.resize(B);
  for (auto& row : out) row.assign(q, 0.0);  // reuse capacity, zero-fill
  // Superposition is independent per subdomain: thread over the batch.
  ad::kernels::parallel_for(
      static_cast<int64_t>(B), static_cast<int64_t>(G * q),
      [&](int64_t begin, int64_t end) {
        for (int64_t b = begin; b < end; ++b) {
          const auto& bd = boundaries[static_cast<std::size_t>(b)];
          auto& row = out[static_cast<std::size_t>(b)];
          for (std::size_t k = 0; k < G; ++k) {
            const double gk = bd[k];
            if (gk == 0) continue;
            const double* basis_row = &bq[k * q];
            for (std::size_t j = 0; j < q; ++j) row[j] += gk * basis_row[j];
          }
        }
      });
}

MultigridSubdomainSolver::MultigridSubdomainSolver(int64_t m, double tol)
    : m_(m), tol_(tol) {}

void MultigridSubdomainSolver::predict(
    const std::vector<std::vector<double>>& boundaries, const QueryList& queries,
    std::vector<std::vector<double>>& out) const {
  out.resize(boundaries.size());
  for (auto& row : out) row.resize(queries.size());
  for (std::size_t b = 0; b < boundaries.size(); ++b) {
    linalg::Grid2D u(m_ + 1, m_ + 1);
    linalg::apply_perimeter(u, boundaries[b]);
    linalg::MultigridOptions opts;
    opts.tol = tol_;
    linalg::solve_laplace_mg(u, 1.0 / static_cast<double>(m_), opts);
    for (std::size_t j = 0; j < queries.size(); ++j) {
      out[b][j] = sample_bilinear(u, queries[j].first, queries[j].second);
    }
  }
}

}  // namespace mf::mosaic
