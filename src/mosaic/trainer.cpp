#include "mosaic/trainer.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "ad/engine.hpp"
#include "nn/serialize.hpp"
#include "util/timing.hpp"

namespace mf::mosaic {

namespace ops = ad::ops;
using ad::Tensor;

StepLossTensors training_step_graph(Sdnet& net, const gp::SdnetBatch& batch,
                                    const TrainConfig& config) {
  // Step 1 (Algorithm 1, lines 5-6): data points — forward and backward
  // on each process, gradients accumulate locally.
  StepLossTensors losses;
  losses.data = data_loss(net, batch.g, batch.x_data, batch.y_data);
  ad::backward(losses.data);

  // Step 2 (lines 8-9): collocation points. Gradients accumulate onto the
  // data-point gradients (ad::backward adds into .grad). Batches carrying
  // per-point PDE coefficients (varcoef/convdiff scenarios) use the
  // generalized residual; Poisson batches keep the original loss verbatim.
  if (config.use_pde_loss) {
    Tensor xc = batch.x_colloc.detach();
    xc.set_requires_grad(true);
    Tensor pde = batch.coeffs.defined()
                     ? scenario_pde_loss(net, batch.g, xc, batch.coeffs)
                     : pde_loss(net, batch.g, xc);
    losses.pde = ops::mul_scalar(pde, config.pde_loss_weight);
    ad::backward(losses.pde);
  }
  return losses;
}

std::pair<double, double> training_step(Sdnet& net, const gp::SdnetBatch& batch,
                                        const TrainConfig& config) {
  StepLossTensors losses = training_step_graph(net, batch, config);
  return {losses.data.item(), losses.pde.defined() ? losses.pde.item() : 0.0};
}

bool CompiledTrainStep::shapes_match(const gp::SdnetBatch& batch) const {
  if (leaves_.coeffs.defined() != batch.coeffs.defined()) return false;
  if (leaves_.coeffs.defined() &&
      leaves_.coeffs.shape() != batch.coeffs.shape()) {
    return false;
  }
  return leaves_.g.defined() && leaves_.g.shape() == batch.g.shape() &&
         leaves_.x_data.shape() == batch.x_data.shape() &&
         leaves_.y_data.shape() == batch.y_data.shape() &&
         leaves_.x_colloc.shape() == batch.x_colloc.shape();
}

std::pair<double, double> CompiledTrainStep::run(const gp::SdnetBatch& batch) {
  last_was_replay_ = false;
  const bool in_plan = optimizer_in_plan();
  if (!ad::program_enabled() || ad::prog::capturing() || capture_failed_) {
    // Eager path (escape hatch, or already inside an enclosing capture
    // that should record this step itself). Drop any captured plan: the
    // eager step re-binds every parameter's .grad to fresh tensors, so a
    // kept plan would keep writing the orphaned old buffers on a later
    // replay while the optimizer reads the new ones.
    program_.reset();
    leaves_ = gp::SdnetBatch{};
    net_.zero_grad();
    auto losses = training_step(net_, batch, config_);
    if (opt_) opt_->step();
    return losses;
  }
  // Precision-policy change invalidates the plan: a captured program is
  // lowered at one compute dtype, so flipping MF_PRECISION (or the
  // process-wide set_compute_dtype) mid-training must re-capture rather
  // than replay steps typed at the old width.
  const ad::DType dt = force_f64_ ? ad::DType::kF64 : ad::compute_dtype();
  if (program_.captured() && program_.compute_dtype() != dt) {
    program_.reset();
    leaves_ = gp::SdnetBatch{};
  }
  program_.set_compute_dtype(dt);
  if (!program_.captured() || !shapes_match(batch)) {
    // (Re-)capture on this batch geometry. The batch tensors become the
    // program's leaf slots; later iterations refill them in place.
    leaves_ = batch;
    net_.zero_grad();
    program_.capture([&] {
      losses_ = training_step_graph(net_, leaves_, config_);
      if (in_plan) {
        // The optimizer records its own update into the plan. Dropping
        // the parameters' .grad bindings afterwards leaves the plan as
        // the only owner of the gradient buffers, so lowering packs them
        // onto the plan arena like any other intermediate.
        opt_->step();
        for (auto& p : net_.parameters()) p.set_grad(ad::Tensor{});
      }
    });
    if (!program_.captured()) {
      // Something in the body poisoned the capture (prog::on_uncapturable
      // — e.g. a non-capturable optimizer stepping inside it). The body
      // already ran eagerly and correctly; there is just no plan. Stay
      // eager permanently instead of re-capturing (and failing) every
      // iteration — and never replay a half-captured step.
      capture_failed_ = true;
      leaves_ = gp::SdnetBatch{};
    }
    if (opt_ && !in_plan) opt_->step();
  } else {
    // Refill the captured leaves and replay. No zero_grad: the replayed
    // accumulation chain starts from a fresh copy, exactly like the
    // captured step did after its zero_grad.
    std::copy(batch.g.data(), batch.g.data() + batch.g.numel(),
              leaves_.g.data());
    std::copy(batch.x_data.data(), batch.x_data.data() + batch.x_data.numel(),
              leaves_.x_data.data());
    std::copy(batch.y_data.data(), batch.y_data.data() + batch.y_data.numel(),
              leaves_.y_data.data());
    std::copy(batch.x_colloc.data(),
              batch.x_colloc.data() + batch.x_colloc.numel(),
              leaves_.x_colloc.data());
    if (leaves_.coeffs.defined()) {
      std::copy(batch.coeffs.data(), batch.coeffs.data() + batch.coeffs.numel(),
                leaves_.coeffs.data());
    }
    program_.replay();
    last_was_replay_ = true;
    if (ad::health_checks_enabled() && !program_.last_replay_healthy()) {
      // The replay produced NaN/Inf/runaway values. Demote the plan —
      // an f32 plan recaptures at f64 on the next run, an f64 plan
      // retires this step to permanent eager — and drop it now so the
      // poisoned arena never replays again.
      const bool was_f32 = program_.compute_dtype() == ad::DType::kF32;
      program_.reset();
      leaves_ = gp::SdnetBatch{};
      if (was_f32) {
        force_f64_ = true;
        ad::health_note_fallback(/*to_eager=*/false);
      } else {
        capture_failed_ = true;
        ad::health_note_fallback(/*to_eager=*/true);
      }
      if (!in_plan) {
        // The optimizer has not applied yet, so this batch is fully
        // recoverable: discard the poisoned gradients and rerun the
        // step eagerly (eager compute is always f64).
        last_was_replay_ = false;
        net_.zero_grad();
        auto losses = training_step(net_, batch, config_);
        if (opt_) opt_->step();
        return losses;
      }
      // In-plan optimizer: the parameter update already ran inside the
      // replay, so the weights may be contaminated — nothing local to
      // undo. Report the poisoned losses honestly; checkpoint/restart
      // is the recovery path for the trajectory.
    } else if (opt_ && !in_plan) {
      opt_->step();
    }
  }
  return {losses_.data.item(), losses_.pde.defined() ? losses_.pde.item() : 0.0};
}

void average_gradients(Sdnet& net, comm::Comm& comm) {
  auto params = net.parameters();
  // Pack into one contiguous buffer: one allreduce per iteration (the
  // paper's communication optimization in Sec. 3.3). The buffer persists
  // per rank thread across iterations — assign() refills without
  // reallocating once warm.
  std::size_t total = 0;
  for (const auto& p : params) total += static_cast<std::size_t>(p.numel());
  thread_local std::vector<double> flat;
  flat.assign(total, 0.0);
  std::size_t off = 0;
  for (const auto& p : params) {
    Tensor g = p.grad();
    if (g.defined()) {
      std::copy(g.data(), g.data() + g.numel(), flat.begin() + static_cast<std::ptrdiff_t>(off));
    }
    off += static_cast<std::size_t>(p.numel());
  }
  comm.allreduce_sum(flat.data(), flat.size());
  const double inv_p = 1.0 / static_cast<double>(comm.size());
  off = 0;
  for (auto& p : params) {
    Tensor g = p.grad();
    if (!g.defined()) {
      g = ad::Tensor::zeros(p.shape());
      p.set_grad(g);
    }
    for (int64_t i = 0; i < p.numel(); ++i) {
      g.flat(i) = flat[off + static_cast<std::size_t>(i)] * inv_p;
    }
    off += static_cast<std::size_t>(p.numel());
  }
}

namespace {

/// Per-rank checkpoint file: rank 0 owns `path` itself (the file other
/// tools consume), other ranks suffix their rank.
std::string rank_checkpoint_path(const std::string& path, int rank) {
  return rank == 0 ? path : path + ".rank" + std::to_string(rank);
}

void save_training_checkpoint(const std::string& path, Sdnet& net,
                              const optim::Optimizer& opt,
                              gp::LaplaceDatasetGenerator& gen,
                              int64_t epoch_next, int64_t step, int ranks) {
  nn::TrainingCheckpoint ckpt;
  std::vector<double> flat;
  for (const auto& p : net.parameters()) {
    flat.insert(flat.end(), p.data(), p.data() + p.numel());
  }
  ckpt.blobs.emplace_back("params", std::move(flat));
  ckpt.blobs.emplace_back("optimizer", opt.state_to());
  ckpt.counters.emplace_back("epoch_next", epoch_next);
  ckpt.counters.emplace_back("step", step);
  ckpt.counters.emplace_back("world_size", static_cast<int64_t>(ranks));
  std::ostringstream os;
  os << gen.rng().engine();
  ckpt.rng_state = os.str();
  nn::save_checkpoint(ckpt, path);
}

/// Restore net/optimizer/RNG/cursors from `path`. Returns false when the
/// file does not exist (fresh start); throws on a structurally bad file
/// or a world-size mismatch — resuming a 4-rank trajectory on 2 ranks
/// would silently change the data order, so it is refused.
bool restore_training_checkpoint(const std::string& path, Sdnet& net,
                                 optim::Optimizer& opt,
                                 gp::LaplaceDatasetGenerator& gen,
                                 int64_t& epoch_next, int64_t& step,
                                 int ranks) {
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return false;
  }
  const nn::TrainingCheckpoint ckpt = nn::load_checkpoint(path);
  const auto need_counter = [&](const char* name) {
    const std::int64_t* v = ckpt.find_counter(name);
    if (!v) {
      throw std::runtime_error("resume: " + path + " is missing counter '" +
                               std::string(name) + "'");
    }
    return *v;
  };
  if (need_counter("world_size") != ranks) {
    throw std::runtime_error(
        "resume: " + path + " was written by a " +
        std::to_string(need_counter("world_size")) + "-rank run, not " +
        std::to_string(ranks));
  }
  const std::vector<double>* params_blob = ckpt.find_blob("params");
  const std::vector<double>* opt_blob = ckpt.find_blob("optimizer");
  if (!params_blob || !opt_blob) {
    throw std::runtime_error("resume: " + path +
                             " is missing the params/optimizer blobs");
  }
  auto params = net.parameters();
  std::size_t total = 0;
  for (const auto& p : params) total += static_cast<std::size_t>(p.numel());
  if (params_blob->size() != total) {
    throw std::runtime_error(
        "resume: " + path + " holds " + std::to_string(params_blob->size()) +
        " parameter values, the network has " + std::to_string(total) +
        " (architecture mismatch)");
  }
  std::size_t off = 0;
  for (auto& p : params) {
    std::copy(params_blob->begin() + static_cast<std::ptrdiff_t>(off),
              params_blob->begin() +
                  static_cast<std::ptrdiff_t>(off + static_cast<std::size_t>(p.numel())),
              p.data());
    off += static_cast<std::size_t>(p.numel());
  }
  opt.state_from(*opt_blob);
  epoch_next = need_counter("epoch_next");
  step = need_counter("step");
  std::istringstream is(ckpt.rng_state);
  is >> gen.rng().engine();
  if (!is) {
    throw std::runtime_error("resume: " + path + " has a malformed RNG state");
  }
  return true;
}

}  // namespace

double validation_mse(const Sdnet& net, const std::vector<gp::SolvedBvp>& bvps,
                      int64_t m) {
  if (bvps.empty()) return 0.0;
  ad::NoGradGuard no_grad;
  const int64_t B = static_cast<int64_t>(bvps.size());
  // Conditioning width comes from the network: scenario nets take the 4m
  // boundary plus a per-scenario suffix (stored in SolvedBvp::extra).
  const int64_t G = net.config().boundary_size;
  const int64_t Gb = 4 * m;
  const int64_t q = (m - 1) * (m - 1);
  Tensor g = Tensor::zeros({B, G});
  Tensor x = Tensor::zeros({B, q, 2});
  const double inv_m = 1.0 / static_cast<double>(m);
  for (int64_t b = 0; b < B; ++b) {
    const gp::SolvedBvp& bvp = bvps[static_cast<std::size_t>(b)];
    if (Gb + static_cast<int64_t>(bvp.extra.size()) != G) {
      throw std::invalid_argument(
          "validation_mse: BVP conditioning does not match the network");
    }
    for (int64_t k = 0; k < Gb; ++k)
      g.flat(b * G + k) = bvp.boundary[static_cast<std::size_t>(k)];
    for (int64_t k = Gb; k < G; ++k)
      g.flat(b * G + k) = bvp.extra[static_cast<std::size_t>(k - Gb)];
    int64_t qi = 0;
    for (int64_t j = 1; j < m; ++j)
      for (int64_t i = 1; i < m; ++i) {
        x.flat((b * q + qi) * 2 + 0) = i * inv_m;
        x.flat((b * q + qi) * 2 + 1) = j * inv_m;
        ++qi;
      }
  }
  Tensor pred = net.predict(g, x);
  double acc = 0;
  for (int64_t b = 0; b < B; ++b) {
    int64_t qi = 0;
    for (int64_t j = 1; j < m; ++j)
      for (int64_t i = 1; i < m; ++i) {
        const double d = pred.flat(b * q + qi) -
                         bvps[static_cast<std::size_t>(b)].solution.at(i, j);
        acc += d * d;
        ++qi;
      }
  }
  return acc / static_cast<double>(B * q);
}

std::vector<EpochStats> train_sdnet(
    Sdnet& net, const std::vector<gp::SolvedBvp>& train,
    const std::vector<gp::SolvedBvp>& val, const TrainConfig& config,
    gp::LaplaceDatasetGenerator& gen, comm::Comm* comm,
    const std::function<void(const EpochStats&)>& on_epoch) {
  const int ranks = comm ? comm->size() : 1;
  const int64_t iters_per_epoch =
      std::max<int64_t>(1, static_cast<int64_t>(train.size()) / config.batch_size);
  const int64_t total_iters = config.epochs * iters_per_epoch;

  double max_lr = config.max_lr;
  double warmup_frac = config.warmup_fraction;
  if (config.apply_batch_scaling_rules && ranks > 1) {
    max_lr = optim::sqrt_lr_scaling(config.max_lr, ranks);
    warmup_frac = optim::scaled_warmup_fraction(config.warmup_fraction, ranks);
  }
  optim::WarmupPolyDecay schedule(
      max_lr, static_cast<int64_t>(warmup_frac * static_cast<double>(total_iters)),
      total_iters, config.poly_power);

  std::unique_ptr<optim::Optimizer> opt;
  switch (config.optimizer) {
    case OptimizerKind::kAdamW:
      opt = std::make_unique<optim::Adam>(net.parameters(), max_lr, 0.9, 0.999,
                                          1e-8, config.weight_decay, true);
      break;
    case OptimizerKind::kLamb:
      opt = std::make_unique<optim::Lamb>(net.parameters(), max_lr, 0.9, 0.999,
                                          1e-6, config.weight_decay);
      break;
    case OptimizerKind::kSgd:
      opt = std::make_unique<optim::Sgd>(net.parameters(), max_lr, 0.9,
                                         config.weight_decay);
      break;
  }

  std::vector<EpochStats> history;
  const auto t_start = std::chrono::steady_clock::now();
  const double cpu_start = util::thread_cpu_seconds();
  // Capture the step once, replay it every iteration after (re-capturing
  // if the batch geometry ever changes). Bitwise identical to the eager
  // loop; MF_DISABLE_PROGRAM=1 falls back to it outright. On a single
  // rank the optimizer rides inside the compiled step (in-plan for
  // Adam/AdamW, eagerly after each replay otherwise); with multiple
  // ranks the gradient allreduce has to run between compute and update,
  // so the optimizer stays outside.
  const bool multi_rank = comm && comm->size() > 1;
  CompiledTrainStep cstep(net, config, multi_rank ? nullptr : opt.get());

  // Checkpoint/restart plumbing. Every rank checkpoints its own replica
  // (they are bitwise identical, but each rank's dataset RNG is not).
  std::string ckpt_path = config.checkpoint_path;
  int64_t ckpt_every = config.checkpoint_every;
  if (!ckpt_path.empty()) {
    ckpt_path = rank_checkpoint_path(ckpt_path, comm ? comm->rank() : 0);
    if (ckpt_every <= 0) {
      if (const char* e = std::getenv("MF_CHECKPOINT_EVERY")) {
        ckpt_every = std::atoll(e);
      }
      if (ckpt_every <= 0) ckpt_every = 1;
    }
  }
  int64_t start_epoch = 0;
  int64_t step = 0;
  if (config.resume && !ckpt_path.empty()) {
    restore_training_checkpoint(ckpt_path, net, *opt, gen, start_epoch, step,
                                ranks);
  }

  for (int64_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    double loss_acc = 0;
    for (int64_t it = 0; it < iters_per_epoch; ++it) {
      // Local shard batch (wraps around the shard).
      std::vector<gp::SolvedBvp> local;
      for (int64_t b = 0; b < config.batch_size; ++b) {
        const std::size_t idx = static_cast<std::size_t>(
            (it * config.batch_size + b) % static_cast<int64_t>(train.size()));
        local.push_back(train[idx]);
      }
      auto batch = gen.make_batch(local, config.q_data, config.q_colloc);
      // The schedule's rate for this iteration must be set before run():
      // an in-plan optimizer reads the live lr during replay.
      opt->set_lr(schedule(step++));
      auto [ld, lp] = cstep.run(batch);
      if (multi_rank) {
        average_gradients(net, *comm);
        opt->step();
      }
      loss_acc += ld + lp;
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_acc / static_cast<double>(iters_per_epoch);
    stats.val_mse = validation_mse(net, val, gen.m());
    stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
            .count();
    stats.cpu_seconds = util::thread_cpu_seconds() - cpu_start;
    stats.comm_seconds = comm ? comm->stats().allreduce.modeled_seconds : 0.0;
    history.push_back(stats);
    // Snapshot BEFORE the epoch callback: a callback that decides to stop
    // the process (or a crash inside it) always finds this epoch durably
    // on disk.
    if (!ckpt_path.empty() &&
        ((epoch + 1) % ckpt_every == 0 || epoch + 1 == config.epochs)) {
      save_training_checkpoint(ckpt_path, net, *opt, gen, epoch + 1, step,
                               ranks);
    }
    if (on_epoch) on_epoch(stats);
  }
  return history;
}

}  // namespace mf::mosaic
