#include "mosaic/lattice.hpp"

#include <stdexcept>

#include "ad/kernels.hpp"
#include "util/timing.hpp"

namespace mf::mosaic {

SubdomainGeometry::SubdomainGeometry(int64_t m_in) : m(m_in), h(m_in / 2) {
  if (m < 4 || m % 2 != 0) {
    throw std::invalid_argument("SubdomainGeometry: m must be even and >= 4");
  }
  const double inv_m = 1.0 / static_cast<double>(m);
  // Vertical center line x = 1/2, y interior.
  for (int64_t k = 1; k < m; ++k) {
    cross_queries.emplace_back(0.5, k * inv_m);
    cross_offsets.emplace_back(h, k);
  }
  // Horizontal center line y = 1/2, x interior, center point excluded.
  for (int64_t k = 1; k < m; ++k) {
    if (k == h) continue;
    cross_queries.emplace_back(k * inv_m, 0.5);
    cross_offsets.emplace_back(k, h);
  }
  // Full interior.
  for (int64_t j = 1; j < m; ++j) {
    for (int64_t i = 1; i < m; ++i) {
      interior_queries.emplace_back(i * inv_m, j * inv_m);
      interior_offsets.emplace_back(i, j);
    }
  }
}

LatticeWindow::LatticeWindow(int64_t x0, int64_t y0, int64_t x1, int64_t y1)
    : x0_(x0), y0_(y0), x1_(x1), y1_(y1), grid_(x1 - x0 + 1, y1 - y0 + 1) {
  if (x1 <= x0 || y1 <= y0) throw std::invalid_argument("LatticeWindow: empty");
}

std::vector<double> subdomain_boundary(const LatticeWindow& window,
                                       const SubdomainGeometry& geom,
                                       int64_t gx, int64_t gy) {
  std::vector<double> b;
  subdomain_boundary_into(window, geom, gx, gy, b);
  return b;
}

void subdomain_boundary_into(const LatticeWindow& window,
                             const SubdomainGeometry& geom, int64_t gx,
                             int64_t gy, std::vector<double>& out) {
  const int64_t m = geom.m;
  out.resize(static_cast<std::size_t>(4 * m));
  double* b = out.data();
  int64_t k = 0;
  for (int64_t i = 0; i < m; ++i) b[k++] = window.at(gx + i, gy);
  for (int64_t j = 0; j < m; ++j) b[k++] = window.at(gx + m, gy + j);
  for (int64_t i = m; i > 0; --i) b[k++] = window.at(gx + i, gy + m);
  for (int64_t j = m; j > 0; --j) b[k++] = window.at(gx, gy + j);
}

PhaseScratch& phase_scratch() {
  thread_local PhaseScratch scratch;
  return scratch;
}

void gather_phase_boundaries(
    const LatticeWindow& window, const SubdomainGeometry& geom,
    const std::vector<std::pair<int64_t, int64_t>>& corners,
    std::vector<std::vector<double>>& boundaries, std::size_t offset) {
  if (boundaries.size() < offset + corners.size()) {
    boundaries.resize(offset + corners.size());
  }
  // Read-only gather from the shared window; subdomains are independent.
  ad::kernels::parallel_for(
      static_cast<int64_t>(corners.size()), 4 * geom.m,
      [&](int64_t begin, int64_t end) {
        for (int64_t b = begin; b < end; ++b) {
          const auto [gx, gy] = corners[static_cast<std::size_t>(b)];
          subdomain_boundary_into(window, geom, gx, gy,
                                  boundaries[offset + static_cast<std::size_t>(b)]);
        }
      });
}

void scatter_phase_predictions(
    LatticeWindow& window, const SubdomainGeometry& geom,
    const std::vector<std::pair<int64_t, int64_t>>& corners,
    const std::vector<std::vector<double>>& predictions, std::size_t offset,
    double relaxation, PhaseResult& result, std::vector<DirtyWrite>* writes) {
  for (std::size_t b = 0; b < corners.size(); ++b) {
    const auto [gx, gy] = corners[b];
    const std::vector<double>& pred = predictions[offset + b];
    for (std::size_t k = 0; k < geom.cross_offsets.size(); ++k) {
      const auto [di, dj] = geom.cross_offsets[k];
      const int64_t px = gx + di, py = gy + dj;
      double& slot = window.at(px, py);
      // Under-relaxation damps error amplification when the subdomain
      // solver is an imperfectly trained network; relaxation = 1 is the
      // paper's plain update.
      const double nv = relaxation * pred[k] + (1 - relaxation) * slot;
      result.delta_num += (nv - slot) * (nv - slot);
      result.delta_den += slot * slot;
      slot = nv;
      if (writes) writes->push_back({px, py, nv});
    }
  }
}

PhaseResult update_subdomains(
    LatticeWindow& window, const SubdomainSolver& solver,
    const SubdomainGeometry& geom,
    const std::vector<std::pair<int64_t, int64_t>>& corners, bool batched,
    bool collect_writes, double relaxation) {
  PhaseResult result;
  if (corners.empty()) return result;

  util::StopwatchAccum io_time, inf_time;
  // Reused across iterations: inner-buffer capacities survive the resize,
  // so the steady-state gather performs no allocations.
  PhaseScratch& scratch = phase_scratch();
  std::vector<std::vector<double>>& boundaries = scratch.boundaries;
  boundaries.resize(corners.size());
  {
    util::ScopedCpuTimer t(io_time);
    gather_phase_boundaries(window, geom, corners, boundaries);
  }

  std::vector<std::vector<double>>& predictions = scratch.predictions;
  {
    util::ScopedCpuTimer t(inf_time);
    if (batched) {
      solver.predict(boundaries, geom.cross_queries, predictions);
    } else {
      predictions.resize(corners.size());
      for (std::size_t b = 0; b < corners.size(); ++b) {
        solver.predict_one_into(boundaries[b], geom.cross_queries,
                                predictions[b]);
      }
    }
  }

  {
    util::ScopedCpuTimer t(io_time);
    scatter_phase_predictions(window, geom, corners, predictions, 0,
                              relaxation, result,
                              collect_writes ? &result.writes : nullptr);
  }
  result.inference_seconds = inf_time.total();
  result.boundary_io_seconds = io_time.total();
  return result;
}

void coons_init(linalg::Grid2D& grid) {
  const int64_t nx = grid.nx(), ny = grid.ny();
  const double c00 = grid.at(0, 0), c10 = grid.at(nx - 1, 0);
  const double c01 = grid.at(0, ny - 1), c11 = grid.at(nx - 1, ny - 1);
  for (int64_t j = 1; j < ny - 1; ++j) {
    const double t = static_cast<double>(j) / static_cast<double>(ny - 1);
    for (int64_t i = 1; i < nx - 1; ++i) {
      const double s = static_cast<double>(i) / static_cast<double>(nx - 1);
      const double bottom = grid.at(i, 0), top = grid.at(i, ny - 1);
      const double left = grid.at(0, j), right = grid.at(nx - 1, j);
      grid.at(i, j) = (1 - t) * bottom + t * top + (1 - s) * left + s * right -
                      ((1 - s) * (1 - t) * c00 + s * (1 - t) * c10 +
                       (1 - s) * t * c01 + s * t * c11);
    }
  }
}

double lattice_mae(const LatticeWindow& window, const linalg::Grid2D& reference,
                   int64_t h, int64_t ox0, int64_t oy0, int64_t ox1, int64_t oy1) {
  double acc = 0;
  int64_t count = 0;
  for (int64_t gy = oy0; gy <= oy1; ++gy) {
    for (int64_t gx = ox0; gx <= ox1; ++gx) {
      if (gx % h != 0 && gy % h != 0) continue;  // lattice lines only
      acc += std::abs(window.at(gx, gy) - reference.at(gx, gy));
      ++count;
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

}  // namespace mf::mosaic
