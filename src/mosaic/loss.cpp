#include "mosaic/loss.hpp"

#include "ad/engine.hpp"

namespace mf::mosaic {

namespace ops = ad::ops;

Tensor data_loss(const Sdnet& net, const Tensor& g, const Tensor& x,
                 const Tensor& y) {
  return ops::mean(ops::square(ops::sub(net.forward(g, x), y)));
}

Tensor network_laplacian(const Sdnet& net, const Tensor& g, const Tensor& x,
                         bool create_graph) {
  if (!x.requires_grad()) {
    throw std::logic_error(
        "network_laplacian: x must be a leaf with requires_grad");
  }
  Tensor out = net.forward(g, x);  // [B, q, 1]
  // Each output depends only on its own query point, so the gradient of
  // sum(out) w.r.t. x is the per-point spatial gradient (standard PINN
  // diagonal trick).
  Tensor du = ad::grad(ops::sum(out), {x}, Tensor(), /*create_graph=*/true)[0];
  Tensor ux = ops::slice(du, -1, 0, 1);  // [B, q, 1]
  Tensor uy = ops::slice(du, -1, 1, 1);
  Tensor dux = ad::grad(ops::sum(ux), {x}, Tensor(), create_graph)[0];
  Tensor duy = ad::grad(ops::sum(uy), {x}, Tensor(), create_graph)[0];
  Tensor uxx = ops::slice(dux, -1, 0, 1);
  Tensor uyy = ops::slice(duy, -1, 1, 1);
  return ops::add(uxx, uyy);
}

Tensor pde_loss(const Sdnet& net, const Tensor& g, const Tensor& x_colloc) {
  Tensor lap = network_laplacian(net, g, x_colloc, /*create_graph=*/true);
  return ops::mean(ops::square(lap));
}

}  // namespace mf::mosaic
