#include "mosaic/loss.hpp"

#include "ad/engine.hpp"

namespace mf::mosaic {

namespace ops = ad::ops;

Tensor data_loss(const Sdnet& net, const Tensor& g, const Tensor& x,
                 const Tensor& y) {
  return ops::mean(ops::square(ops::sub(net.forward(g, x), y)));
}

Tensor network_laplacian(const Sdnet& net, const Tensor& g, const Tensor& x,
                         bool create_graph) {
  if (!x.requires_grad()) {
    throw std::logic_error(
        "network_laplacian: x must be a leaf with requires_grad");
  }
  Tensor out = net.forward(g, x);  // [B, q, 1]
  // Each output depends only on its own query point, so the gradient of
  // sum(out) w.r.t. x is the per-point spatial gradient (standard PINN
  // diagonal trick).
  Tensor du = ad::grad(ops::sum(out), {x}, Tensor(), /*create_graph=*/true)[0];
  Tensor ux = ops::slice(du, -1, 0, 1);  // [B, q, 1]
  Tensor uy = ops::slice(du, -1, 1, 1);
  Tensor dux = ad::grad(ops::sum(ux), {x}, Tensor(), create_graph)[0];
  Tensor duy = ad::grad(ops::sum(uy), {x}, Tensor(), create_graph)[0];
  Tensor uxx = ops::slice(dux, -1, 0, 1);
  Tensor uyy = ops::slice(duy, -1, 1, 1);
  return ops::add(uxx, uyy);
}

Tensor pde_loss(const Sdnet& net, const Tensor& g, const Tensor& x_colloc) {
  Tensor lap = network_laplacian(net, g, x_colloc, /*create_graph=*/true);
  return ops::mean(ops::square(lap));
}

Tensor scenario_pde_loss(const Sdnet& net, const Tensor& g,
                         const Tensor& x_colloc, const Tensor& coeffs) {
  if (!x_colloc.requires_grad()) {
    throw std::logic_error(
        "scenario_pde_loss: x_colloc must be a leaf with requires_grad");
  }
  Tensor out = net.forward(g, x_colloc);  // [B, q, 1]
  Tensor du =
      ad::grad(ops::sum(out), {x_colloc}, Tensor(), /*create_graph=*/true)[0];
  Tensor ux = ops::slice(du, -1, 0, 1);  // [B, q, 1]
  Tensor uy = ops::slice(du, -1, 1, 1);
  Tensor dux =
      ad::grad(ops::sum(ux), {x_colloc}, Tensor(), /*create_graph=*/true)[0];
  Tensor duy =
      ad::grad(ops::sum(uy), {x_colloc}, Tensor(), /*create_graph=*/true)[0];
  Tensor uxx = ops::slice(dux, -1, 0, 1);
  Tensor uyy = ops::slice(duy, -1, 1, 1);
  Tensor k = ops::slice(coeffs, -1, 0, 1);
  Tensor kx = ops::slice(coeffs, -1, 1, 1);
  Tensor ky = ops::slice(coeffs, -1, 2, 1);
  Tensor vx = ops::slice(coeffs, -1, 3, 1);
  Tensor vy = ops::slice(coeffs, -1, 4, 1);
  Tensor advection = ops::add(ops::mul(vx, ux), ops::mul(vy, uy));
  Tensor diffusion = ops::add(ops::mul(k, ops::add(uxx, uyy)),
                              ops::add(ops::mul(kx, ux), ops::mul(ky, uy)));
  return ops::mean(ops::square(ops::sub(advection, diffusion)));
}

}  // namespace mf::mosaic
