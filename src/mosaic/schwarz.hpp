// Classical overlapping Schwarz methods on the grid (paper Sec. 2.3) —
// the numerical baseline the MFP is contrasted against: every iteration
// solves full subdomain interiors, whereas the MFP only infers subdomain
// center lines until the final pass.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/grid2d.hpp"
#include "scenario/scenario.hpp"

namespace mf::mosaic {

enum class SchwarzVariant {
  kAlternating,  // multiplicative: blocks solved in sequence, immediate updates
  kAdditive,     // parallel: all blocks solved from the same previous iterate
};

struct SchwarzOptions {
  int64_t block_cells = 16;   // block size (cells) before extension
  int64_t overlap = 4;        // overlap in grid cells on each side
  int64_t max_iters = 200;
  double tol = 1e-8;          // max-abs change threshold
  SchwarzVariant variant = SchwarzVariant::kAlternating;
};

struct SchwarzResult {
  linalg::Grid2D solution;
  int64_t iterations = 0;
  double final_change = 0;
  int64_t subdomain_solves = 0;
  /// Health sentinel: true when the residual went non-finite (the loop
  /// stops immediately instead of iterating on NaNs until max_iters).
  bool diverged = false;
};

/// Solve the Laplace BVP (boundary held on the edges of `boundary_grid`)
/// by overlapping block Schwarz iteration with multigrid subdomain solves.
SchwarzResult schwarz_solve(const linalg::Grid2D& boundary_grid, double h_phys,
                            const SchwarzOptions& options = {});

/// Scenario-generalized Schwarz baseline: blocks of a non-Poisson or
/// masked field solve their Dirichlet problems through the block-
/// restricted StencilOperator (CG / upwinded Gauss–Seidel); masked
/// points stay pinned at 0 and are excluded from the block solves and
/// the convergence check. A plain-Poisson full-rectangle field delegates
/// to schwarz_solve (bitwise).
SchwarzResult schwarz_solve_scenario(const linalg::Grid2D& boundary_grid,
                                     double h_phys,
                                     const scenario::Field& field,
                                     const SchwarzOptions& options = {});

}  // namespace mf::mosaic
