#include "mosaic/scenario_predictor.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "linalg/stencil.hpp"
#include "util/timing.hpp"

namespace mf::mosaic {

namespace {

enum class TileKind { kNeural, kClassical, kStencil, kDead };

struct ScenarioPlan {
  const scenario::Field* field = nullptr;
  int64_t m = 0;
  int64_t nx_cells = 0, ny_cells = 0;
  double h_phys = 0;  // physical grid spacing (1/m, training units)
  const SubdomainSolver* classical = nullptr;
  const std::function<bool(int64_t, int64_t)>* use_classical = nullptr;
  // Static per-corner state, built lazily: conditioning suffixes for the
  // neural group and restricted operators for mask-cut subdomains.
  std::unordered_map<int64_t, std::vector<double>> suffixes;
  std::unordered_map<int64_t, linalg::StencilOperator> local_ops;

  int64_t key(int64_t gx, int64_t gy) const {
    return gy * (nx_cells + 1) + gx;
  }

  TileKind classify(int64_t gx, int64_t gy) const {
    const scenario::DomainMask& mask = field->mask;
    if (mask.defined()) {
      if (mask.subdomain_dead(gx, gy, m)) return TileKind::kDead;
      if (!mask.subdomain_active(gx, gy, m)) return TileKind::kStencil;
    }
    if (classical && use_classical && *use_classical &&
        (*use_classical)(gx, gy)) {
      return TileKind::kClassical;
    }
    return TileKind::kNeural;
  }

  const std::vector<double>& suffix(int64_t gx, int64_t gy) {
    auto [it, inserted] = suffixes.try_emplace(key(gx, gy));
    if (inserted) {
      scenario::conditioning_suffix_into(*field, m, gx, gy, it->second);
    }
    return it->second;
  }

  const linalg::StencilOperator& local_op(int64_t gx, int64_t gy) {
    auto [it, inserted] = local_ops.try_emplace(key(gx, gy));
    if (inserted) {
      linalg::Grid2D kw(m + 1, m + 1, 1.0);
      if (field->k.numel() > 0) {
        for (int64_t j = 0; j <= m; ++j)
          for (int64_t i = 0; i <= m; ++i)
            kw.at(i, j) = field->k.at(gx + i, gy + j);
      }
      linalg::StencilOperator op =
          (field->kind == scenario::Kind::kConvDiff)
              ? linalg::StencilOperator::convection_diffusion(
                    kw, field->vx, field->vy, h_phys)
              : (field->kind == scenario::Kind::kVarCoef
                     ? linalg::StencilOperator::variable_diffusion(kw, h_phys)
                     : linalg::StencilOperator::laplace(m + 1, m + 1, h_phys));
      if (field->mask.defined()) {
        std::vector<std::uint8_t> local(
            static_cast<std::size_t>((m + 1) * (m + 1)), 1);
        for (int64_t j = 0; j <= m; ++j)
          for (int64_t i = 0; i <= m; ++i)
            local[static_cast<std::size_t>(j * (m + 1) + i)] =
                field->mask.point_active(gx + i, gy + j) ? 1 : 0;
        op.apply_mask(local);
      }
      it->second = std::move(op);
    }
    return it->second;
  }

  /// Local solve of the subdomain at (gx, gy): perimeter (and pinned
  /// masked points) from the window, interior from a fresh zero start so
  /// the result depends only on the current lattice state.
  linalg::Grid2D solve_local(const LatticeWindow& window, int64_t gx,
                             int64_t gy) {
    linalg::Grid2D u(m + 1, m + 1);
    for (int64_t i = 0; i <= m; ++i) {
      u.at(i, 0) = window.at(gx + i, gy);
      u.at(i, m) = window.at(gx + i, gy + m);
    }
    for (int64_t j = 0; j <= m; ++j) {
      u.at(0, j) = window.at(gx, gy + j);
      u.at(m, j) = window.at(gx + m, gy + j);
    }
    const linalg::StencilOperator& op = local_op(gx, gy);
    const linalg::Grid2D zero_rhs(m + 1, m + 1);
    if (linalg::stencil_solve(op, u, zero_rhs) < 0) {
      throw std::runtime_error(
          "mosaic_predict_scenario: local stencil solve diverged");
    }
    return u;
  }
};

/// One phase of the heterogeneous update: split the corner list into the
/// neural / classical / mask-cut groups (deterministic row-major order
/// within each) and apply each group's solver to the shared window.
PhaseResult update_scenario_phase(
    LatticeWindow& window, const SubdomainSolver& solver,
    const SubdomainGeometry& geom,
    const std::vector<std::pair<int64_t, int64_t>>& corners,
    ScenarioPlan& plan, const MfpOptions& options) {
  PhaseResult result;
  std::vector<std::pair<int64_t, int64_t>> neural, classical, cut;
  for (const auto& c : corners) {
    switch (plan.classify(c.first, c.second)) {
      case TileKind::kNeural:
        neural.push_back(c);
        break;
      case TileKind::kClassical:
        classical.push_back(c);
        break;
      case TileKind::kStencil:
        cut.push_back(c);
        break;
      case TileKind::kDead:
        break;
    }
  }

  util::StopwatchAccum io_time, inf_time;
  std::vector<std::vector<double>> boundaries, predictions;

  const auto run_group = [&](const std::vector<std::pair<int64_t, int64_t>>& g,
                             const SubdomainSolver& s, bool with_suffix) {
    if (g.empty()) return;
    {
      util::ScopedCpuTimer t(io_time);
      boundaries.resize(g.size());
      gather_phase_boundaries(window, geom, g, boundaries);
      if (with_suffix) {
        for (std::size_t b = 0; b < g.size(); ++b) {
          const std::vector<double>& sfx = plan.suffix(g[b].first, g[b].second);
          boundaries[b].insert(boundaries[b].end(), sfx.begin(), sfx.end());
        }
      }
    }
    {
      util::ScopedCpuTimer t(inf_time);
      if (options.batched) {
        s.predict(boundaries, geom.cross_queries, predictions);
      } else {
        predictions.resize(g.size());
        for (std::size_t b = 0; b < g.size(); ++b) {
          s.predict_one_into(boundaries[b], geom.cross_queries, predictions[b]);
        }
      }
    }
    {
      util::ScopedCpuTimer t(io_time);
      scatter_phase_predictions(window, geom, g, predictions, 0,
                                options.relaxation, result, nullptr);
    }
  };

  run_group(neural, solver, /*with_suffix=*/true);
  if (!classical.empty()) run_group(classical, *plan.classical, false);

  if (!cut.empty()) {
    util::ScopedCpuTimer t(inf_time);
    predictions.resize(cut.size());
    for (std::size_t b = 0; b < cut.size(); ++b) {
      const auto [gx, gy] = cut[b];
      const linalg::Grid2D u = plan.solve_local(window, gx, gy);
      std::vector<double>& pred = predictions[b];
      pred.resize(geom.cross_offsets.size());
      for (std::size_t k = 0; k < geom.cross_offsets.size(); ++k) {
        const auto [di, dj] = geom.cross_offsets[k];
        // Inactive cross points stay pinned: predicting the current
        // window value makes the scatter a no-op with zero delta.
        pred[k] = plan.field->mask.point_active(gx + di, gy + dj)
                      ? u.at(di, dj)
                      : window.at(gx + di, gy + dj);
      }
    }
    scatter_phase_predictions(window, geom, cut, predictions, 0,
                              options.relaxation, result, nullptr);
  }

  result.inference_seconds = inf_time.total();
  result.boundary_io_seconds = io_time.total();
  return result;
}

/// Final pass of the general path: fill the non-overlapping tiling's
/// interiors group by group, masked points staying at 0, lattice lines
/// from the iterated window.
void predict_interior_scenario(const LatticeWindow& window,
                               const SubdomainSolver& solver,
                               const SubdomainGeometry& geom,
                               ScenarioPlan& plan, linalg::Grid2D& solution,
                               MfpResult& result) {
  const int64_t m = geom.m, h = geom.h;
  const int64_t nx_cells = plan.nx_cells, ny_cells = plan.ny_cells;
  std::vector<std::pair<int64_t, int64_t>> neural, classical;
  util::StopwatchAccum io_time, inf_time;
  for (int64_t gy = 0; gy + m <= ny_cells; gy += m) {
    for (int64_t gx = 0; gx + m <= nx_cells; gx += m) {
      switch (plan.classify(gx, gy)) {
        case TileKind::kNeural:
          neural.emplace_back(gx, gy);
          break;
        case TileKind::kClassical:
          classical.emplace_back(gx, gy);
          break;
        case TileKind::kStencil: {
          util::ScopedCpuTimer t(inf_time);
          const linalg::Grid2D u = plan.solve_local(window, gx, gy);
          for (std::size_t k = 0; k < geom.interior_offsets.size(); ++k) {
            const auto [di, dj] = geom.interior_offsets[k];
            solution.at(gx + di, gy + dj) =
                plan.field->mask.point_active(gx + di, gy + dj) ? u.at(di, dj)
                                                                : 0.0;
          }
          break;
        }
        case TileKind::kDead:
          // Grid2D zero-initializes; masked interiors stay 0.
          break;
      }
    }
  }

  std::vector<std::vector<double>> boundaries, interiors;
  const auto run_group = [&](const std::vector<std::pair<int64_t, int64_t>>& g,
                             const SubdomainSolver& s, bool with_suffix) {
    if (g.empty()) return;
    {
      util::ScopedCpuTimer t(io_time);
      boundaries.resize(g.size());
      gather_phase_boundaries(window, geom, g, boundaries);
      if (with_suffix) {
        for (std::size_t b = 0; b < g.size(); ++b) {
          const std::vector<double>& sfx = plan.suffix(g[b].first, g[b].second);
          boundaries[b].insert(boundaries[b].end(), sfx.begin(), sfx.end());
        }
      }
    }
    {
      util::ScopedCpuTimer t(inf_time);
      s.predict(boundaries, geom.interior_queries, interiors);
    }
    {
      util::ScopedCpuTimer t(io_time);
      for (std::size_t b = 0; b < g.size(); ++b) {
        const auto [gx, gy] = g[b];
        for (std::size_t k = 0; k < geom.interior_offsets.size(); ++k) {
          const auto [di, dj] = geom.interior_offsets[k];
          solution.at(gx + di, gy + dj) = interiors[b][k];
        }
      }
    }
  };
  run_group(neural, solver, /*with_suffix=*/true);
  if (!classical.empty()) run_group(classical, *plan.classical, false);

  for (int64_t gy = 0; gy <= ny_cells; ++gy)
    for (int64_t gx = 0; gx <= nx_cells; ++gx)
      if (gx % h == 0 || gy % h == 0) solution.at(gx, gy) = window.at(gx, gy);

  result.inference_seconds += inf_time.total();
  result.boundary_io_seconds += io_time.total();
}

}  // namespace

void predict_interior_field(const LatticeWindow& window,
                            const SubdomainSolver& solver,
                            const SubdomainGeometry& geom,
                            const scenario::Field& field, int64_t nx_cells,
                            int64_t ny_cells, linalg::Grid2D& solution) {
  if (field.kind == scenario::Kind::kPoisson && !field.mask.defined()) {
    predict_interior(window, solver, geom, nx_cells, ny_cells, solution);
    return;
  }
  ScenarioPlan plan;
  plan.field = &field;
  plan.m = geom.m;
  plan.nx_cells = nx_cells;
  plan.ny_cells = ny_cells;
  plan.h_phys = 1.0 / static_cast<double>(geom.m);
  MfpResult scratch{linalg::Grid2D(2, 2), 0, 0, 0, 0, 0};
  predict_interior_scenario(window, solver, geom, plan, solution, scratch);
}

MfpResult mosaic_predict_scenario(const SubdomainSolver& solver,
                                  const scenario::Field& field,
                                  int64_t nx_cells, int64_t ny_cells,
                                  const std::vector<double>& global_boundary,
                                  const ScenarioSolveOptions& options) {
  const bool heterogeneous =
      options.classical != nullptr && options.use_classical;
  if (field.kind == scenario::Kind::kPoisson && !field.mask.defined() &&
      !heterogeneous) {
    // The original workload: delegate so Poisson stays bitwise identical.
    return mosaic_predict(solver, nx_cells, ny_cells, global_boundary,
                          options.mfp);
  }

  const int64_t m = solver.m();
  if (nx_cells % m != 0 || ny_cells % m != 0) {
    throw std::invalid_argument(
        "mosaic_predict_scenario: domain cells must be a multiple of the "
        "subdomain size");
  }
  if (field.mask.defined() &&
      (field.mask.nx_cells != nx_cells || field.mask.ny_cells != ny_cells)) {
    throw std::invalid_argument(
        "mosaic_predict_scenario: mask extents do not match the domain");
  }
  SubdomainGeometry geom(m);
  const int64_t h = geom.h;

  ScenarioPlan plan;
  plan.field = &field;
  plan.m = m;
  plan.nx_cells = nx_cells;
  plan.ny_cells = ny_cells;
  plan.h_phys = 1.0 / static_cast<double>(m);
  plan.classical = options.classical;
  plan.use_classical = &options.use_classical;

  LatticeWindow window(0, 0, nx_cells, ny_cells);
  std::vector<double> boundary = global_boundary;
  scenario::zero_masked_boundary(boundary, field.mask);
  linalg::apply_perimeter(window.grid(), boundary);
  if (options.mfp.init == LatticeInit::kCoons) coons_init(window.grid());
  if (field.mask.defined()) {
    // Masked points are Dirichlet pins at 0 for the whole solve — clear
    // whatever the Coons extension put there.
    for (int64_t gy = 0; gy <= ny_cells; ++gy)
      for (int64_t gx = 0; gx <= nx_cells; ++gx)
        if (!field.mask.point_active(gx, gy)) window.at(gx, gy) = 0.0;
  }

  MfpResult result{linalg::Grid2D(nx_cells + 1, ny_cells + 1), 0, 0, 0, 0, 0};
  const int64_t ci_max_x = nx_cells / h;
  const int64_t ci_max_y = ny_cells / h;

  double cycle_num = 0, cycle_den = 0;
  for (int64_t iter = 0; iter < options.mfp.max_iters; ++iter) {
    const int64_t phase = iter % 4;
    auto corners = phase_corners(phase, h, m, nx_cells, ny_cells, 0, ci_max_x,
                                 0, ci_max_y);
    PhaseResult pr =
        update_scenario_phase(window, solver, geom, corners, plan, options.mfp);
    result.inference_seconds += pr.inference_seconds;
    result.boundary_io_seconds += pr.boundary_io_seconds;
    result.iterations = iter + 1;
    cycle_num += pr.delta_num;
    cycle_den += pr.delta_den;
    if (phase == 3) {
      result.final_delta =
          cycle_den > 0 ? std::sqrt(cycle_num / cycle_den) : 0.0;
      cycle_num = cycle_den = 0;
      if (result.final_delta < options.mfp.tol) break;
    }
    if (options.mfp.reference && options.mfp.target_mae > 0 &&
        (iter + 1) % options.mfp.check_every == 0) {
      result.lattice_mae = lattice_mae(window, *options.mfp.reference, h, 0, 0,
                                       nx_cells, ny_cells);
      if (result.lattice_mae < options.mfp.target_mae) break;
    }
  }

  predict_interior_scenario(window, solver, geom, plan, result.solution,
                            result);

  if (options.mfp.reference) {
    result.lattice_mae = linalg::Grid2D::mean_abs_diff(result.solution,
                                                       *options.mfp.reference);
  }
  return result;
}

}  // namespace mf::mosaic
