#include "mosaic/schwarz.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/multigrid.hpp"

namespace mf::mosaic {

namespace {

struct Block {
  int64_t x0, y0, x1, y1;  // closed point ranges including overlap
};

std::vector<Block> make_blocks(int64_t nx_cells, int64_t ny_cells,
                               int64_t block_cells, int64_t overlap) {
  std::vector<Block> blocks;
  for (int64_t by = 0; by < ny_cells; by += block_cells) {
    for (int64_t bx = 0; bx < nx_cells; bx += block_cells) {
      Block b;
      b.x0 = std::max<int64_t>(0, bx - overlap);
      b.y0 = std::max<int64_t>(0, by - overlap);
      b.x1 = std::min<int64_t>(nx_cells, bx + block_cells + overlap);
      b.y1 = std::min<int64_t>(ny_cells, by + block_cells + overlap);
      blocks.push_back(b);
    }
  }
  return blocks;
}

/// Solve the block's Dirichlet problem using `source` for boundary values
/// and write the interior into `target`.
void solve_block(const Block& b, const linalg::Grid2D& source,
                 linalg::Grid2D& target, double h_phys) {
  const int64_t nx = b.x1 - b.x0 + 1, ny = b.y1 - b.y0 + 1;
  linalg::Grid2D local(nx, ny);
  for (int64_t j = 0; j < ny; ++j)
    for (int64_t i = 0; i < nx; ++i)
      local.at(i, j) = source.at(b.x0 + i, b.y0 + j);
  linalg::solve_laplace_mg(local, h_phys);
  for (int64_t j = 1; j < ny - 1; ++j)
    for (int64_t i = 1; i < nx - 1; ++i)
      target.at(b.x0 + i, b.y0 + j) = local.at(i, j);
}

/// Scenario variant of solve_block: the block's operator comes from the
/// field restricted to the block (coefficients and mask window).
void solve_block_scenario(const Block& b, const linalg::Grid2D& source,
                          linalg::Grid2D& target, double h_phys,
                          const scenario::Field& field) {
  const int64_t nx = b.x1 - b.x0 + 1, ny = b.y1 - b.y0 + 1;
  linalg::Grid2D local(nx, ny);
  for (int64_t j = 0; j < ny; ++j)
    for (int64_t i = 0; i < nx; ++i)
      local.at(i, j) = source.at(b.x0 + i, b.y0 + j);
  linalg::Grid2D kw(nx, ny, 1.0);
  if (field.k.numel() > 0) {
    for (int64_t j = 0; j < ny; ++j)
      for (int64_t i = 0; i < nx; ++i)
        kw.at(i, j) = field.k.at(b.x0 + i, b.y0 + j);
  }
  linalg::StencilOperator op =
      field.kind == scenario::Kind::kConvDiff
          ? linalg::StencilOperator::convection_diffusion(kw, field.vx,
                                                          field.vy, h_phys)
          : (field.kind == scenario::Kind::kVarCoef
                 ? linalg::StencilOperator::variable_diffusion(kw, h_phys)
                 : linalg::StencilOperator::laplace(nx, ny, h_phys));
  if (field.mask.defined()) {
    std::vector<std::uint8_t> mask(static_cast<std::size_t>(nx * ny), 1);
    for (int64_t j = 0; j < ny; ++j)
      for (int64_t i = 0; i < nx; ++i)
        mask[static_cast<std::size_t>(j * nx + i)] =
            field.mask.point_active(b.x0 + i, b.y0 + j) ? 1 : 0;
    op.apply_mask(mask);
  }
  const linalg::Grid2D zero_rhs(nx, ny);
  linalg::stencil_solve(op, local, zero_rhs, 1e-10,
                        /*max_iters=*/20000);
  for (int64_t j = 1; j < ny - 1; ++j)
    for (int64_t i = 1; i < nx - 1; ++i)
      if (op.active[op.idx(i, j)] != 0)
        target.at(b.x0 + i, b.y0 + j) = local.at(i, j);
}

}  // namespace

SchwarzResult schwarz_solve(const linalg::Grid2D& boundary_grid, double h_phys,
                            const SchwarzOptions& options) {
  const int64_t nx_cells = boundary_grid.nx() - 1;
  const int64_t ny_cells = boundary_grid.ny() - 1;
  auto blocks = make_blocks(nx_cells, ny_cells, options.block_cells,
                            options.overlap);

  SchwarzResult result{boundary_grid, 0, 0, 0};
  result.solution.zero_interior();

  for (int64_t iter = 0; iter < options.max_iters; ++iter) {
    linalg::Grid2D previous = result.solution;
    if (options.variant == SchwarzVariant::kAlternating) {
      for (const Block& b : blocks) {
        solve_block(b, result.solution, result.solution, h_phys);
        ++result.subdomain_solves;
      }
    } else {
      // Additive: all blocks read the previous iterate.
      linalg::Grid2D next = result.solution;
      for (const Block& b : blocks) {
        solve_block(b, previous, next, h_phys);
        ++result.subdomain_solves;
      }
      result.solution = next;
    }
    result.iterations = iter + 1;
    result.final_change = linalg::Grid2D::max_abs_diff(previous, result.solution);
    if (!std::isfinite(result.final_change)) {
      // A NaN/Inf residual only contaminates further: stop and report
      // instead of burning the remaining iterations on poisoned data.
      result.diverged = true;
      break;
    }
    if (result.final_change < options.tol) break;
  }
  return result;
}

SchwarzResult schwarz_solve_scenario(const linalg::Grid2D& boundary_grid,
                                     double h_phys,
                                     const scenario::Field& field,
                                     const SchwarzOptions& options) {
  if (field.kind == scenario::Kind::kPoisson && !field.mask.defined()) {
    return schwarz_solve(boundary_grid, h_phys, options);
  }
  const int64_t nx_cells = boundary_grid.nx() - 1;
  const int64_t ny_cells = boundary_grid.ny() - 1;
  auto blocks = make_blocks(nx_cells, ny_cells, options.block_cells,
                            options.overlap);

  SchwarzResult result{boundary_grid, 0, 0, 0};
  result.solution.zero_interior();
  if (field.mask.defined()) {
    for (int64_t j = 0; j <= ny_cells; ++j)
      for (int64_t i = 0; i <= nx_cells; ++i)
        if (!field.mask.point_active(i, j)) result.solution.at(i, j) = 0.0;
  }

  for (int64_t iter = 0; iter < options.max_iters; ++iter) {
    linalg::Grid2D previous = result.solution;
    if (options.variant == SchwarzVariant::kAlternating) {
      for (const Block& b : blocks) {
        solve_block_scenario(b, result.solution, result.solution, h_phys,
                             field);
        ++result.subdomain_solves;
      }
    } else {
      linalg::Grid2D next = result.solution;
      for (const Block& b : blocks) {
        solve_block_scenario(b, previous, next, h_phys, field);
        ++result.subdomain_solves;
      }
      result.solution = next;
    }
    result.iterations = iter + 1;
    result.final_change =
        linalg::Grid2D::max_abs_diff(previous, result.solution);
    if (!std::isfinite(result.final_change)) {
      result.diverged = true;
      break;
    }
    if (result.final_change < options.tol) break;
  }
  return result;
}

}  // namespace mf::mosaic
