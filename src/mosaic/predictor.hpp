// The Mosaic Flow predictor (single device): iterate SDNet center-cross
// inferences over the overlapping subdomain lattice until the boundary
// values converge, then predict full subdomain interiors (Sec. 2.4, 4.1).
#pragma once

#include <cstdint>
#include <vector>

#include "mosaic/lattice.hpp"

namespace mf::mosaic {

enum class LatticeInit {
  kZero,   // zero interior (pure Schwarz start)
  kCoons,  // transfinite interpolation of the global boundary
};

struct MfpOptions {
  int64_t max_iters = 4000;
  /// Convergence threshold on delta = ||g_i - g_{i-1}|| / ||g_{i-1}||.
  double tol = 1e-6;
  /// Batch all subdomains of a phase into one solver call (Sec. 4.1);
  /// false reproduces the unbatched baseline.
  bool batched = true;
  LatticeInit init = LatticeInit::kCoons;
  /// Damping of center-cross updates (1 = paper's plain update). Values
  /// below 1 stabilize iteration with imperfectly trained solvers.
  double relaxation = 1.0;
  /// Distributed only: exchange halos every k iterations instead of every
  /// iteration — the communication-avoiding variant the paper proposes in
  /// its "Open problems" (Sec. 5.3). k > 1 trades halo staleness (more
  /// iterations to converge) for fewer, larger messages.
  int64_t halo_every = 1;
  /// Optional reference solution; when set together with target_mae > 0,
  /// iteration stops once the lattice MAE falls below the target (the
  /// stopping rule of the paper's scaling experiments).
  const linalg::Grid2D* reference = nullptr;
  double target_mae = 0.0;
  int64_t check_every = 25;  // cadence of the MAE check
  /// Distributed only: per-direction deadline for each halo message, in
  /// milliseconds. A neighbor missing the deadline contributes its
  /// last-known boundary values for that iteration (degraded mode; the
  /// late message is applied when it arrives). Negative (the default)
  /// reads MF_HALO_TIMEOUT_MS, and when that is unset too the exchange
  /// blocks — bitwise identical to the pre-deadline behavior.
  double halo_timeout_ms = -1;
};

struct MfpResult {
  linalg::Grid2D solution;
  int64_t iterations = 0;
  double final_delta = 0;
  double lattice_mae = 0;  // vs reference (if provided)
  double inference_seconds = 0;
  double boundary_io_seconds = 0;
};

/// Solve the Laplace BVP on a domain of nx_cells x ny_cells grid cells
/// with `global_boundary` (canonical perimeter order) using pre-trained
/// subdomain inferences only. Cell counts must be multiples of the
/// subdomain size solver.m().
MfpResult mosaic_predict(const SubdomainSolver& solver, int64_t nx_cells,
                         int64_t ny_cells,
                         const std::vector<double>& global_boundary,
                         const MfpOptions& options = {});

/// Final MFP pass: predict the full interior of the non-overlapping
/// subdomain tiling from the iterated window state and assemble the
/// solution grid (interiors from the solver, lattice lines — including
/// the global boundary — from the window). Factored out of
/// mosaic_predict so the serve scheduler's job retirement produces
/// bitwise-identical solutions. `solution` must be (nx_cells+1) x
/// (ny_cells+1); the timing accumulators may be null.
void predict_interior(const LatticeWindow& window,
                      const SubdomainSolver& solver,
                      const SubdomainGeometry& geom, int64_t nx_cells,
                      int64_t ny_cells, linalg::Grid2D& solution,
                      double* inference_seconds = nullptr,
                      double* boundary_io_seconds = nullptr);

/// The subdomain corner positions of parity phase (`phase` in 0..3) whose
/// corners lie in [cx0, cx1) x [cy0, cy1) (corner indices in units of h)
/// and whose subdomain fits inside the global domain.
std::vector<std::pair<int64_t, int64_t>> phase_corners(
    int64_t phase, int64_t h, int64_t m, int64_t nx_cells, int64_t ny_cells,
    int64_t cx0, int64_t cx1, int64_t cy0, int64_t cy1);

}  // namespace mf::mosaic
