// SDNet: the physics-informed neural subdomain solver (paper Sec. 3).
// Architecture (Fig. 3): 1-D convolutions embed the discretized boundary
// condition, the split input layer (eq. (8)) combines the embedding with
// query coordinates, and a GELU MLP predicts the solution value.
#pragma once

#include <memory>

#include "nn/layers.hpp"

namespace mf::mosaic {

using ad::Tensor;

struct SdnetConfig {
  int64_t boundary_size = 64;   // 4m discretized boundary values
  int64_t hidden_width = 64;    // width d of the embedding/MLP
  int64_t mlp_depth = 4;        // linear layers after the input embedding
  nn::Activation activation = nn::Activation::kGelu;

  // Boundary encoder (Sec. 3.1). Disabled -> raw boundary to the embedding.
  bool use_conv_encoder = true;
  int64_t conv_channels = 2;
  int64_t conv_depth = 2;
  int64_t conv_kernel = 5;      // must be odd (length-preserving)

  // false selects the inefficient input-concat baseline of eq. (6),
  // kept for the Fig. 5 performance comparison.
  bool use_split_embedding = true;
};

/// N(g, x; theta) ~ u(x; g) for the BVP with boundary condition g on the
/// unit training subdomain.
class Sdnet : public nn::Module {
 public:
  Sdnet(const SdnetConfig& config, util::Rng& rng);

  /// g: [B, 4m] boundary conditions, x: [B, q, 2] query coordinates in
  /// the unit square. Returns [B, q, 1] predicted solution values.
  Tensor forward(const Tensor& g, const Tensor& x) const;

  /// Inference without autograd recording.
  Tensor predict(const Tensor& g, const Tensor& x) const;

  const SdnetConfig& config() const { return config_; }

 private:
  SdnetConfig config_;
  std::shared_ptr<nn::ConvBoundaryEncoder> encoder_;          // optional
  std::shared_ptr<nn::SplitInputEmbedding> split_embedding_;  // either this
  std::shared_ptr<nn::InputConcatEmbedding> concat_embedding_;  // or this
  std::shared_ptr<nn::MLP> mlp_;
};

}  // namespace mf::mosaic
