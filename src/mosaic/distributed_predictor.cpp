#include "mosaic/distributed_predictor.hpp"

#include <array>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <stdexcept>

#include "ad/kernels.hpp"
#include "util/timing.hpp"

namespace mf::mosaic {

namespace {

constexpr int kHaloTagBase = 500;

struct RankLayout {
  // Owned closed block [ox0, ox1] x [oy0, oy1] (global point indices).
  int64_t ox0, oy0, ox1, oy1;
  // Window = owned + halo where a neighbor exists.
  int64_t wx0, wy0, wx1, wy1;
  // Corner-index range of owned subdomain positions (units of h).
  int64_t ci_x0, ci_x1, ci_y0, ci_y1;
};

RankLayout make_layout(const comm::CartesianGrid& grid, int rank,
                       int64_t nx_cells, int64_t ny_cells, int64_t h) {
  const auto [cx, cy] = grid.coords_of(rank);
  const int64_t lx = nx_cells / grid.px();
  const int64_t ly = ny_cells / grid.py();
  RankLayout L{};
  L.ox0 = cx * lx;
  L.oy0 = cy * ly;
  L.ox1 = L.ox0 + lx;
  L.oy1 = L.oy0 + ly;
  L.wx0 = cx > 0 ? L.ox0 - h : 0;
  L.wy0 = cy > 0 ? L.oy0 - h : 0;
  L.wx1 = cx < grid.px() - 1 ? L.ox1 + h : nx_cells;
  L.wy1 = cy < grid.py() - 1 ? L.oy1 + h : ny_cells;
  // Positions owned by this rank: corner in [ox0, ox1) (half-open so each
  // position has a unique owner).
  L.ci_x0 = L.ox0 / h;
  L.ci_x1 = L.ox1 / h;
  L.ci_y0 = L.oy0 / h;
  L.ci_y1 = L.oy1 / h;
  return L;
}

// Backpressure bound on per-direction un-drained halo requests in
// degraded mode: past this, the exchange blocks on the oldest straggler
// rather than letting the backlog (and the transport's buffered
// messages) grow without bound.
constexpr std::size_t kMaxHaloBacklog = 64;

double resolve_halo_timeout_ms(const MfpOptions& options) {
  if (options.halo_timeout_ms >= 0) return options.halo_timeout_ms;
  if (const char* v = std::getenv("MF_HALO_TIMEOUT_MS")) {
    if (*v != '\0') return std::atof(v);
  }
  return -1;  // blocking exchange (pre-deadline behavior)
}

}  // namespace

DistMfpResult distributed_mosaic_predict(
    comm::Comm& comm, const comm::CartesianGrid& grid,
    const SubdomainSolver& solver, int64_t nx_cells, int64_t ny_cells,
    const std::vector<double>& global_boundary, const MfpOptions& options) {
  const int64_t m = solver.m();
  SubdomainGeometry geom(m);
  const int64_t h = geom.h;
  if (nx_cells % (grid.px() * m) != 0 || ny_cells % (grid.py() * m) != 0) {
    throw std::invalid_argument(
        "distributed_mosaic_predict: cells must divide by (grid dim * m)");
  }
  const int rank = comm.rank();
  const RankLayout L = make_layout(grid, rank, nx_cells, ny_cells, h);
  const auto neighbors = grid.neighbors(rank);

  // Neighbor window bounds (deterministic on every rank) for routing
  // dirty writes.
  std::array<RankLayout, comm::kNumDirections> neighbor_layout{};
  for (int d = 0; d < comm::kNumDirections; ++d) {
    const int nr = neighbors[static_cast<std::size_t>(d)];
    if (nr >= 0) {
      neighbor_layout[static_cast<std::size_t>(d)] =
          make_layout(grid, nr, nx_cells, ny_cells, h);
    }
  }

  // ---- initialization: global boundary + transfinite interior ----
  // Every rank evaluates the same deterministic initialization and copies
  // its window (the global boundary is problem input known to all ranks).
  LatticeWindow window(L.wx0, L.wy0, L.wx1, L.wy1);
  {
    linalg::Grid2D init(nx_cells + 1, ny_cells + 1);
    linalg::apply_perimeter(init, global_boundary);
    if (options.init == LatticeInit::kCoons) coons_init(init);
    for (int64_t gy = L.wy0; gy <= L.wy1; ++gy)
      for (int64_t gx = L.wx0; gx <= L.wx1; ++gx)
        window.at(gx, gy) = init.at(gx, gy);
  }

  DistMfpResult result;
  comm.stats().reset();
  // Outgoing dirty writes per direction, accumulated between halo
  // exchanges (flushed every options.halo_every iterations).
  std::array<std::vector<double>, comm::kNumDirections> pending;
  double cycle_num = 0, cycle_den = 0;

  // Deadline-aware halo exchange: with a timeout configured, each
  // direction keeps a queue of outstanding receives (oldest first). A
  // direction whose backlog cannot be drained within the deadline leaves
  // this iteration running on the neighbor's last-known boundary values
  // (degraded); the late messages are applied — strictly in send order,
  // so the latest value still wins — on a later iteration or in the
  // final drain. With no timeout the queue always holds exactly one
  // request and is drained blocking: bitwise identical to before.
  const double halo_timeout_ms = resolve_halo_timeout_ms(options);
  const bool halo_deadline = halo_timeout_ms >= 0;
  struct PostedHalo {
    comm::Comm::Request req;
    int64_t iter;
  };
  std::array<std::deque<PostedHalo>, comm::kNumDirections> outstanding;
  const auto apply_packed = [&](const std::vector<double>& packed) {
    for (std::size_t k = 0; k + 2 < packed.size(); k += 3) {
      const int64_t gx = static_cast<int64_t>(packed[k]);
      const int64_t gy = static_cast<int64_t>(packed[k + 1]);
      if (window.contains(gx, gy)) window.at(gx, gy) = packed[k + 2];
    }
  };

  // ---- iteration loop (Algorithm 2, lines 2-9) ----
  for (int64_t iter = 0; iter < options.max_iters; ++iter) {
    const int64_t phase = iter % 4;
    auto corners = phase_corners(phase, h, m, nx_cells, ny_cells, L.ci_x0,
                                 L.ci_x1, L.ci_y0, L.ci_y1);
    PhaseResult pr =
        update_subdomains(window, solver, geom, corners, options.batched,
                          /*collect_writes=*/true, options.relaxation);
    result.timings.inference_seconds += pr.inference_seconds;
    result.timings.boundary_io_seconds += pr.boundary_io_seconds;

    // communicate_new_boundaries: route this phase's fresh writes to every
    // neighbor whose window contains them. One message per neighbor per
    // exchange (possibly empty — latency-only, as in the paper's 8*I*alpha
    // cost term). With halo_every > 1 (the communication-avoiding variant
    // of Sec. 5.3's open problems) writes accumulate across iterations and
    // are flushed together; receivers apply them in order, so the latest
    // value wins.
    for (int d = 0; d < comm::kNumDirections; ++d) {
      const int nr = neighbors[static_cast<std::size_t>(d)];
      if (nr < 0) continue;
      const RankLayout& NL = neighbor_layout[static_cast<std::size_t>(d)];
      auto& outbox = pending[static_cast<std::size_t>(d)];
      for (const DirtyWrite& w : pr.writes) {
        if (w.gx >= NL.wx0 && w.gx <= NL.wx1 && w.gy >= NL.wy0 && w.gy <= NL.wy1) {
          outbox.push_back(static_cast<double>(w.gx));
          outbox.push_back(static_cast<double>(w.gy));
          outbox.push_back(w.value);
        }
      }
    }
    const bool exchange = (iter + 1) % options.halo_every == 0 ||
                          iter + 1 == options.max_iters;
    // Nonblocking halo: post every receive, then every (buffered) send,
    // so all eight messages are in flight before any rank blocks.
    // Already-arrived messages drain opportunistically while the local
    // bookkeeping between post and wait runs; the waits only block on
    // stragglers. Received writes are still applied in fixed direction
    // order, so the result is bitwise identical to the blocking exchange.
    if (exchange) {
      for (int d = 0; d < comm::kNumDirections; ++d) {
        const int nr = neighbors[static_cast<std::size_t>(d)];
        if (nr < 0) continue;
        // The neighbor tags its message with the direction from *its*
        // perspective, which is the opposite of ours.
        const int tag = kHaloTagBase + static_cast<int>(comm::opposite(
                                           static_cast<comm::Direction>(d)));
        outstanding[static_cast<std::size_t>(d)].push_back(
            PostedHalo{comm.irecv(nr, tag), iter});
      }
      for (int d = 0; d < comm::kNumDirections; ++d) {
        const int nr = neighbors[static_cast<std::size_t>(d)];
        if (nr < 0) continue;
        comm.isend(nr, pending[static_cast<std::size_t>(d)], kHaloTagBase + d);
        pending[static_cast<std::size_t>(d)].clear();
      }
    }
    // Fold this iteration's convergence contribution — when an exchange
    // is in flight this overlaps the halo messages (pure local
    // arithmetic, no halo dependency).
    cycle_num += pr.delta_num;
    cycle_den += pr.delta_den;
    result.iterations = iter + 1;
    if (exchange) {
      comm.progress();
      bool degraded_iter = false;
      for (int d = 0; d < comm::kNumDirections; ++d) {
        auto& queue = outstanding[static_cast<std::size_t>(d)];
        if (queue.empty()) continue;
        if (!halo_deadline) {
          // Blocking exchange: the queue always holds exactly this
          // iteration's request.
          apply_packed(comm.wait_recv(queue.front().req));
          queue.pop_front();
          continue;
        }
        const auto dir_start = std::chrono::steady_clock::now();
        bool timed_out = false;
        while (!queue.empty()) {
          double left_ms =
              halo_timeout_ms -
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - dir_start)
                  .count();
          if (left_ms < 0) left_ms = 0;
          std::vector<double> packed;
          if (!comm.wait_recv_for(queue.front().req, left_ms, packed)) {
            timed_out = true;
            break;
          }
          if (queue.front().iter != iter) ++result.late_halo_applies;
          apply_packed(packed);
          queue.pop_front();
        }
        if (timed_out) {
          ++result.halo_timeouts;
          degraded_iter = true;
          // Backpressure: a persistently slow neighbor may not grow an
          // unbounded backlog — block on its oldest straggler instead.
          while (queue.size() > kMaxHaloBacklog) {
            apply_packed(comm.wait_recv(queue.front().req));
            ++result.late_halo_applies;
            queue.pop_front();
          }
        }
      }
      if (degraded_iter) ++result.degraded_iterations;
    }

    // Convergence test (lines 5-8): global relative change over a full
    // 4-phase cycle (single phases can touch too few subdomains for a
    // meaningful delta).
    if (phase == 3) {
      double nums[2] = {cycle_num, cycle_den};
      comm.allreduce_sum(nums, 2);
      result.final_delta = nums[1] > 0 ? std::sqrt(nums[0] / nums[1]) : 0.0;
      cycle_num = cycle_den = 0;
      if (!std::isfinite(result.final_delta)) {
        // Health sentinel on the residual: a NaN/Inf delta (solver blowup
        // or corrupted halo) must never satisfy `< tol`; count it and
        // keep iterating — fresh updates can still wash the poison out.
        ++result.health_events;
      } else if (result.final_delta < options.tol) {
        break;
      }
    }

    if (options.reference && options.target_mae > 0 &&
        (iter + 1) % options.check_every == 0) {
      // MAE over owned lattice points, reduced globally. Half-open
      // ownership avoids double counting shared border lines.
      const int64_t hx1 = L.ox1 == nx_cells ? L.ox1 : L.ox1 - 1;
      const int64_t hy1 = L.oy1 == ny_cells ? L.oy1 : L.oy1 - 1;
      double acc = 0, count = 0;
      for (int64_t gy = L.oy0; gy <= hy1; ++gy)
        for (int64_t gx = L.ox0; gx <= hx1; ++gx) {
          if (gx % h != 0 && gy % h != 0) continue;
          acc += std::abs(window.at(gx, gy) - options.reference->at(gx, gy));
          count += 1;
        }
      double sums[2] = {acc, count};
      comm.allreduce_sum(sums, 2);
      result.mae = sums[0] / std::max(1.0, sums[1]);
      if (!std::isfinite(result.mae)) {
        ++result.health_events;
      } else if (result.mae < options.target_mae) {
        break;
      }
    }
  }

  // Degraded-mode epilogue: drain every straggler before the final
  // interiors so the freshest boundary data feeds them. All ranks leave
  // the loop at the same iteration (both stopping rules are allreduced),
  // so every matching send has been posted and a blocking drain cannot
  // deadlock. Applies stay in per-direction send order (latest wins).
  for (int d = 0; d < comm::kNumDirections; ++d) {
    auto& queue = outstanding[static_cast<std::size_t>(d)];
    while (!queue.empty()) {
      apply_packed(comm.wait_recv(queue.front().req));
      ++result.late_halo_applies;
      queue.pop_front();
    }
  }

  // ---- final interiors (line 10) ----
  {
    std::vector<std::pair<int64_t, int64_t>> tiles;
    for (int64_t gy = L.oy0; gy + m <= L.oy1; gy += m)
      for (int64_t gx = L.ox0; gx + m <= L.ox1; gx += m) tiles.emplace_back(gx, gy);
    // Per-rank-thread reusable gather/scatter buffers (shared with the
    // per-iteration phase updates above).
    PhaseScratch& scratch = phase_scratch();
    std::vector<std::vector<double>>& boundaries = scratch.boundaries;
    boundaries.resize(tiles.size());
    util::StopwatchAccum inf_time, io_time;
    {
      util::ScopedCpuTimer t(io_time);
      ad::kernels::parallel_for(
          static_cast<int64_t>(tiles.size()), 4 * m,
          [&](int64_t begin, int64_t end) {
            for (int64_t b = begin; b < end; ++b) {
              const auto [gx, gy] = tiles[static_cast<std::size_t>(b)];
              subdomain_boundary_into(window, geom, gx, gy,
                                      boundaries[static_cast<std::size_t>(b)]);
            }
          });
    }
    std::vector<std::vector<double>>& interiors = scratch.predictions;
    {
      util::ScopedCpuTimer t(inf_time);
      solver.predict(boundaries, geom.interior_queries, interiors);
    }
    {
      util::ScopedCpuTimer t(io_time);
      // Tiles step by m, so each writes a disjoint interior block.
      ad::kernels::parallel_for(
          static_cast<int64_t>(tiles.size()),
          static_cast<int64_t>(geom.interior_offsets.size()),
          [&](int64_t begin, int64_t end) {
            for (int64_t b = begin; b < end; ++b) {
              const auto [gx, gy] = tiles[static_cast<std::size_t>(b)];
              for (std::size_t k = 0; k < geom.interior_offsets.size(); ++k) {
                const auto [di, dj] = geom.interior_offsets[k];
                const int64_t px = gx + di, py = gy + dj;
                if (px % h != 0 && py % h != 0) {  // keep iterated lattice values
                  window.at(px, py) = interiors[static_cast<std::size_t>(b)][k];
                }
              }
            }
          });
    }
    result.timings.inference_seconds += inf_time.total();
    result.timings.boundary_io_seconds += io_time.total();
  }

  // ---- all_gather and averaging (lines 11-12) ----
  {
    // Pack this rank's owned closed block.
    std::vector<double> block;
    block.reserve(static_cast<std::size_t>((L.ox1 - L.ox0 + 1) * (L.oy1 - L.oy0 + 1) + 4));
    block.push_back(static_cast<double>(L.ox0));
    block.push_back(static_cast<double>(L.oy0));
    block.push_back(static_cast<double>(L.ox1));
    block.push_back(static_cast<double>(L.oy1));
    for (int64_t gy = L.oy0; gy <= L.oy1; ++gy)
      for (int64_t gx = L.ox0; gx <= L.ox1; ++gx) block.push_back(window.at(gx, gy));
    auto all = comm.allgatherv(block);

    result.solution = linalg::Grid2D(nx_cells + 1, ny_cells + 1);
    linalg::Grid2D counts(nx_cells + 1, ny_cells + 1);
    for (const auto& blk : all) {
      const int64_t bx0 = static_cast<int64_t>(blk[0]);
      const int64_t by0 = static_cast<int64_t>(blk[1]);
      const int64_t bx1 = static_cast<int64_t>(blk[2]);
      const int64_t by1 = static_cast<int64_t>(blk[3]);
      std::size_t k = 4;
      for (int64_t gy = by0; gy <= by1; ++gy)
        for (int64_t gx = bx0; gx <= bx1; ++gx) {
          result.solution.at(gx, gy) += blk[k++];
          counts.at(gx, gy) += 1;
        }
    }
    // Average where processor blocks overlap (shared border lines).
    for (int64_t gy = 0; gy <= ny_cells; ++gy)
      for (int64_t gx = 0; gx <= nx_cells; ++gx)
        result.solution.at(gx, gy) /= std::max(1.0, counts.at(gx, gy));
  }

  if (options.reference) {
    result.mae = linalg::Grid2D::mean_abs_diff(result.solution, *options.reference);
  }

  const auto& stats = comm.stats();
  result.timings.sendrecv_modeled_seconds = stats.sendrecv.modeled_seconds;
  result.timings.allgather_modeled_seconds = stats.allgather.modeled_seconds;
  result.timings.allreduce_modeled_seconds = stats.allreduce.modeled_seconds;
  result.timings.sendrecv_wall_seconds = stats.sendrecv.wall_seconds;
  result.timings.allgather_wall_seconds = stats.allgather.wall_seconds;
  return result;
}

}  // namespace mf::mosaic
