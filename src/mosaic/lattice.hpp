// Lattice bookkeeping for the Mosaic Flow predictor (paper Sec. 2.4, 4.2).
//
// Geometry. The global domain is a grid of (Nx+1) x (Ny+1) points. Atomic
// subdomains are m x m cells; their corners sit on the lattice of lines
// spaced h = m/2 apart (the paper's 1/(2m) spacing in physical units,
// d = 2). Subdomain positions overlap by half a subdomain in each
// direction; positions whose corner indices (i, j) = (gx/h, gy/h) share
// the same parity form one *phase* — the non-overlapping tiling the paper
// batches within a single iteration (Sec. 4.1). Iterations cycle through
// the four parity phases.
//
// Each iteration, SDNet maps a subdomain's perimeter values (4m) to the
// values on its center cross (the two half-spacing lattice lines through
// its middle), which are the boundaries of the half-offset neighboring
// subdomains.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/grid2d.hpp"
#include "mosaic/subdomain_solver.hpp"

namespace mf::mosaic {

/// Precomputed query coordinates / grid offsets for one subdomain size.
struct SubdomainGeometry {
  explicit SubdomainGeometry(int64_t m);

  int64_t m;  // cells per side (even)
  int64_t h;  // lattice spacing m/2

  /// Center-cross points, relative coords: vertical line x=1/2 (y interior)
  /// then horizontal line y=1/2 (x interior, center excluded).
  QueryList cross_queries;
  /// Same points as grid offsets from the subdomain corner.
  std::vector<std::pair<int64_t, int64_t>> cross_offsets;

  /// Full interior, row-major (m-1)^2 points.
  QueryList interior_queries;
  std::vector<std::pair<int64_t, int64_t>> interior_offsets;
};

/// A rank's view of the global point grid: global point indices
/// [x0, x1] x [y0, y1], inclusive. A single-rank predictor uses the whole
/// domain as its window; distributed ranks use owned region + halo.
class LatticeWindow {
 public:
  LatticeWindow(int64_t x0, int64_t y0, int64_t x1, int64_t y1);

  bool contains(int64_t gx, int64_t gy) const {
    return gx >= x0_ && gx <= x1_ && gy >= y0_ && gy <= y1_;
  }
  double& at(int64_t gx, int64_t gy) { return grid_.at(gx - x0_, gy - y0_); }
  double at(int64_t gx, int64_t gy) const { return grid_.at(gx - x0_, gy - y0_); }

  int64_t x0() const { return x0_; }
  int64_t y0() const { return y0_; }
  int64_t x1() const { return x1_; }
  int64_t y1() const { return y1_; }

  linalg::Grid2D& grid() { return grid_; }
  const linalg::Grid2D& grid() const { return grid_; }

 private:
  int64_t x0_, y0_, x1_, y1_;
  linalg::Grid2D grid_;
};

/// One write performed by a phase update (global coordinates).
struct DirtyWrite {
  int64_t gx, gy;
  double value;
};

/// Outcome of updating one phase's subdomains.
struct PhaseResult {
  double delta_num = 0;  // sum (new - old)^2 over written points
  double delta_den = 0;  // sum old^2 over written points
  std::vector<DirtyWrite> writes;  // filled when collect_writes
  double inference_seconds = 0;
  double boundary_io_seconds = 0;
};

/// Perimeter values of the subdomain with corner (gx, gy), canonical order.
std::vector<double> subdomain_boundary(const LatticeWindow& window,
                                       const SubdomainGeometry& geom,
                                       int64_t gx, int64_t gy);

/// In-place variant: fills `out` (resized to 4m) without surrendering its
/// capacity, so per-iteration gather loops reuse one buffer per slot.
void subdomain_boundary_into(const LatticeWindow& window,
                             const SubdomainGeometry& geom, int64_t gx,
                             int64_t gy, std::vector<double>& out);

/// Reusable gather/scatter buffers for the phase-update and interior
/// prediction loops. Thread-local: each comm rank thread gets its own, and
/// buffer capacities persist across iterations / Schwarz cycles so the
/// steady state performs no allocations in the boundary-I/O path.
struct PhaseScratch {
  std::vector<std::vector<double>> boundaries;
  std::vector<std::vector<double>> predictions;
};
PhaseScratch& phase_scratch();

/// Gather half of a phase update: fill `boundaries[offset + i]` with the
/// perimeter of `corners[i]` (the vector grows to at least offset +
/// corners.size() rows, earlier rows untouched). Offsets let the serve
/// scheduler pack several requests' subdomains into one shared batch.
void gather_phase_boundaries(
    const LatticeWindow& window, const SubdomainGeometry& geom,
    const std::vector<std::pair<int64_t, int64_t>>& corners,
    std::vector<std::vector<double>>& boundaries, std::size_t offset = 0);

/// Scatter half of a phase update: write `predictions[offset + i]` back
/// onto the center cross of `corners[i]`, accumulating the convergence
/// deltas exactly as update_subdomains does (same sequential order, so
/// the sums are bitwise identical however the batch was formed).
/// `writes` collects the touched points when non-null.
void scatter_phase_predictions(
    LatticeWindow& window, const SubdomainGeometry& geom,
    const std::vector<std::pair<int64_t, int64_t>>& corners,
    const std::vector<std::vector<double>>& predictions, std::size_t offset,
    double relaxation, PhaseResult& result,
    std::vector<DirtyWrite>* writes = nullptr);

/// Solve every subdomain in `corners` with `solver` and write the
/// center-cross predictions back into the window. `batched == false`
/// reproduces the paper's unbatched baseline (one SDNet call per
/// subdomain, Fig. 8).
PhaseResult update_subdomains(
    LatticeWindow& window, const SubdomainSolver& solver,
    const SubdomainGeometry& geom,
    const std::vector<std::pair<int64_t, int64_t>>& corners, bool batched,
    bool collect_writes, double relaxation = 1.0);

/// Transfinite (Coons-patch) interpolation of the global boundary into the
/// domain interior — the predictor's initial lattice state.
void coons_init(linalg::Grid2D& grid);

/// Mean absolute difference restricted to lattice-line points (x or y a
/// multiple of h), optionally clipped to a half-open ownership rectangle.
double lattice_mae(const LatticeWindow& window, const linalg::Grid2D& reference,
                   int64_t h, int64_t ox0, int64_t oy0, int64_t ox1, int64_t oy1);

}  // namespace mf::mosaic
