// Distributed Mosaic Flow predictor (paper Sec. 4.2, Algorithm 2).
//
// The global domain is split across a 2-D processor grid (row-wise scan).
// Each rank owns a closed block of grid points plus a halo of h = m/2
// points toward every neighbor. Each iteration a rank:
//   1. updates its phase subdomains with SDNet inferences (line 3),
//   2. exchanges the freshly written boundary values that fall inside
//      neighbor windows with all 8 stencil neighbors — one message per
//      neighbor per iteration, the paper's *relaxed synchronization*
//      (line 4, communicate_new_boundaries),
//   3. allreduces the convergence delta (lines 5-8).
// After the loop, every rank infers its subdomain interiors and an
// all_gather assembles the global solution, averaging where processor
// blocks overlap (lines 10-12).
#pragma once

#include "comm/cartesian.hpp"
#include "comm/comm.hpp"
#include "mosaic/predictor.hpp"

namespace mf::mosaic {

struct DistMfpTimings {
  double inference_seconds = 0;
  double boundary_io_seconds = 0;
  double sendrecv_modeled_seconds = 0;
  double allgather_modeled_seconds = 0;
  double allreduce_modeled_seconds = 0;
  double sendrecv_wall_seconds = 0;
  double allgather_wall_seconds = 0;
};

struct DistMfpResult {
  linalg::Grid2D solution;  // assembled global solution (every rank)
  int64_t iterations = 0;
  double final_delta = 0;
  double mae = 0;  // vs reference (if provided)
  DistMfpTimings timings;  // this rank's breakdown
  // Degraded-mode bookkeeping (deadline-aware halo exchange; all zero
  // when deadlines are off or every message makes its deadline).
  int64_t degraded_iterations = 0;  // iterations where >= 1 halo was stale
  int64_t halo_timeouts = 0;        // per-direction deadline misses
  int64_t late_halo_applies = 0;    // halo messages applied after their iter
  int64_t health_events = 0;        // non-finite residual/MAE detections
};

/// Run the distributed MFP on the calling rank, over any comm transport
/// (threaded ranks or MPI processes). All ranks must call with identical
/// arguments. Domain cell counts must be divisible by
/// (processor grid dimension * m).
DistMfpResult distributed_mosaic_predict(
    comm::Comm& comm, const comm::CartesianGrid& grid,
    const SubdomainSolver& solver, int64_t nx_cells, int64_t ny_cells,
    const std::vector<double>& global_boundary, const MfpOptions& options = {});

}  // namespace mf::mosaic
