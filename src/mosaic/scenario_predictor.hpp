// Scenario-generalized Mosaic Flow predictor: masked (non-rectangular)
// domains, variable-coefficient/convection–diffusion operators, and
// heterogeneous lattices mixing neural and classical subdomain solvers
// per region.
//
// The plain-Poisson full-rectangle case delegates verbatim to
// mosaic_predict (bitwise-stability contract with earlier PRs). The
// general path classifies each lattice subdomain once:
//   - fully active + neural region   → SDNet inference, with the
//     scenario conditioning suffix appended to the gathered boundary;
//   - fully active + classical region→ the caller-provided classical
//     SubdomainSolver (multigrid/CG), batched like the neural path;
//   - cut by the mask                → a local masked stencil solve
//     (CG/Gauss–Seidel on the subdomain with inactive points pinned 0);
//   - fully masked                   → skipped.
// Masked lattice points are excluded from residual/delta accounting,
// smoothing updates, and the final interior pass.
#pragma once

#include <functional>

#include "mosaic/predictor.hpp"
#include "scenario/scenario.hpp"

namespace mf::mosaic {

struct ScenarioSolveOptions {
  MfpOptions mfp;
  /// Heterogeneous lattices: subdomains whose corner satisfies
  /// use_classical(gx, gy) are solved by `classical` (any SubdomainSolver,
  /// e.g. MultigridSubdomainSolver) instead of the neural solver. Only
  /// valid when `classical` matches the field's operator (multigrid
  /// solves -Δ, so poisson/masked kinds).
  const SubdomainSolver* classical = nullptr;
  std::function<bool(int64_t, int64_t)> use_classical;
};

/// Solve the field's BVP on nx_cells x ny_cells grid cells with
/// `global_boundary` in canonical perimeter order (masked segments are
/// zeroed internally). Cell counts must be multiples of solver.m(), and
/// for masked fields the mask must be snapped to the half-subdomain
/// lattice pitch h = m/2 so cut edges land on lattice lines.
MfpResult mosaic_predict_scenario(const SubdomainSolver& solver,
                                  const scenario::Field& field,
                                  int64_t nx_cells, int64_t ny_cells,
                                  const std::vector<double>& global_boundary,
                                  const ScenarioSolveOptions& options = {});

/// Scenario-aware final interior pass over the iterated window state,
/// for callers that drive the iteration themselves (the serve
/// scheduler's job retirement): interiors from the solver with the
/// field's conditioning suffix appended, masked points pinned at 0,
/// lattice lines from the window. A plain-Poisson full-rectangle field
/// delegates to predict_interior (bitwise).
void predict_interior_field(const LatticeWindow& window,
                            const SubdomainSolver& solver,
                            const SubdomainGeometry& geom,
                            const scenario::Field& field, int64_t nx_cells,
                            int64_t ny_cells, linalg::Grid2D& solution);

}  // namespace mf::mosaic
