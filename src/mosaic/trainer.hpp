// SDNet training (paper Sec. 3.3, Algorithm 1).
//
// Each iteration runs two separate forward/backward passes — one for data
// points, one for collocation points — accumulating gradients locally, and
// performs exactly ONE allreduce of the summed gradients, preserving SGD
// semantics (a true global average rather than a sum of averages).
#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "ad/program.hpp"
#include "comm/comm.hpp"
#include "gp/dataset.hpp"
#include "mosaic/loss.hpp"
#include "mosaic/sdnet.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizers.hpp"

namespace mf::mosaic {

enum class OptimizerKind { kAdamW, kLamb, kSgd };

struct TrainConfig {
  int64_t epochs = 50;
  int64_t batch_size = 8;       // boundary conditions per local batch
  int64_t q_data = 32;          // data points per boundary condition
  int64_t q_colloc = 32;        // collocation points per boundary condition
  double max_lr = 1e-3;
  double warmup_fraction = 0.001;  // of total iterations (Sec. 5.2)
  double poly_power = 1.0;
  double weight_decay = 0.0;
  double pde_loss_weight = 1.0;
  OptimizerKind optimizer = OptimizerKind::kLamb;
  bool use_pde_loss = true;
  /// Scale LR by sqrt(ranks) and warmup fraction linearly (Sec. 5.2).
  bool apply_batch_scaling_rules = true;
  /// Checkpoint/restart: when `checkpoint_path` is non-empty a full
  /// training checkpoint (parameters, optimizer moments, step counters,
  /// RNG state) is written atomically every `checkpoint_every` epochs
  /// (0 reads MF_CHECKPOINT_EVERY; still 0 → every epoch). Multi-rank
  /// runs write per-rank files (`path` for rank 0, `path.rank<r>`
  /// otherwise). With `resume`, an existing checkpoint is restored
  /// before the first iteration and training continues the trajectory
  /// bitwise — epochs run from the saved cursor up to `epochs`.
  std::string checkpoint_path;
  int64_t checkpoint_every = 0;
  bool resume = false;
};

struct EpochStats {
  int64_t epoch = 0;
  double train_loss = 0;       // mean combined loss over iterations
  double val_mse = 0;          // validation MSE (rank-0 shard)
  double wall_seconds = 0;     // cumulative wall time at end of epoch
  double cpu_seconds = 0;      // cumulative thread CPU time ("device" time)
  double comm_seconds = 0;     // cumulative modeled allreduce time
};

/// One Algorithm-1 step on a local batch; returns (data_loss, pde_loss).
/// Gradients are left accumulated on the parameters (caller averages
/// across ranks and applies the optimizer).
std::pair<double, double> training_step(Sdnet& net, const gp::SdnetBatch& batch,
                                        const TrainConfig& config);

/// The loss tensors of one training step (graph already consumed by the
/// backward passes; keep the tensors to read the loss values).
struct StepLossTensors {
  ad::Tensor data;
  ad::Tensor pde;  // undefined when config.use_pde_loss is false
};

/// Same as training_step but returns the loss tensors instead of their
/// values — the capturable form: a Program that records this call can
/// read the replayed losses back out of the same tensors.
StepLossTensors training_step_graph(Sdnet& net, const gp::SdnetBatch& batch,
                                    const TrainConfig& config);

/// Program-backed training step: captures the full forward + three-
/// backward-pass step once (per batch geometry), then replays it with
/// zero node recording and zero payload allocation. The first run() — and
/// every run() after a batch-shape change — executes eagerly under
/// capture; subsequent runs refill the captured leaf tensors in place and
/// replay. Gradients land in the same `.grad` buffers either way, so
/// average_gradients and the optimizers are untouched. With programs
/// disabled (MF_DISABLE_PROGRAM=1) every run() is plain eager
/// zero_grad + training_step, bit-for-bit.
///
/// With an optimizer attached, run() performs the whole iteration —
/// compute *and* parameter update — so the caller only sets the learning
/// rate before each run(). A plan-capturable optimizer (Adam/AdamW/LAMB)
/// is folded into the captured plan: replay runs forward, three
/// backwards and the parameter update with zero eager tensor ops, and
/// the `.grad` buffers — read by nothing outside the plan anymore — get
/// liveness-packed onto the plan arena (they are invisible to callers
/// afterwards; don't attach the optimizer when gradients must stay
/// readable, e.g. for cross-rank averaging). Non-capturable optimizers
/// (SGD) are stepped eagerly after each capture/replay/fallback — and if
/// one steps *inside* a capture it poisons it (see capture_failed()), so
/// the step degrades to fully-eager instead of replaying a plan with the
/// update missing.
class CompiledTrainStep {
 public:
  CompiledTrainStep(Sdnet& net, const TrainConfig& config,
                    optim::Optimizer* opt = nullptr)
      : net_(net), config_(config), opt_(opt) {}

  /// Run one step on `batch`; returns (data_loss, pde_loss).
  std::pair<double, double> run(const gp::SdnetBatch& batch);

  const ad::Program& program() const { return program_; }
  /// True when the last run() replayed the captured plan (false for the
  /// eager fallback and for capture runs).
  bool last_was_replay() const { return last_was_replay_; }
  /// True when the attached optimizer's update is part of the plan.
  bool optimizer_in_plan() const {
    return opt_ != nullptr && opt_->plan_capturable();
  }
  /// True once a capture attempt ended poisoned (prog::on_uncapturable):
  /// this step runs eagerly for the rest of its life — deterministic
  /// fallback, never a half-captured plan.
  bool capture_failed() const { return capture_failed_; }
  /// True once the health sentinel tripped on an f32 replay and demoted
  /// this step to f64 plans (ignoring MF_PRECISION for its lifetime).
  bool forced_f64() const { return force_f64_; }

 private:
  bool shapes_match(const gp::SdnetBatch& batch) const;

  Sdnet& net_;
  TrainConfig config_;
  optim::Optimizer* opt_ = nullptr;
  ad::Program program_;
  gp::SdnetBatch leaves_;  // the captured step's input slots
  StepLossTensors losses_;
  bool last_was_replay_ = false;
  bool capture_failed_ = false;
  bool force_f64_ = false;  // health sentinel demoted f32 plans to f64
};

/// Flatten all parameter gradients, allreduce-sum, divide by world size,
/// and scatter back — the single collective of Algorithm 1 (step 3).
void average_gradients(Sdnet& net, comm::Comm& comm);

/// Data-parallel SDNet training on one rank. Every rank owns `train`
/// (its shard) and optimizes a replica of `net`; replicas stay bitwise
/// identical because they see identical averaged gradients.
/// Returns per-epoch statistics (validation computed against `val`).
std::vector<EpochStats> train_sdnet(
    Sdnet& net, const std::vector<gp::SolvedBvp>& train,
    const std::vector<gp::SolvedBvp>& val, const TrainConfig& config,
    gp::LaplaceDatasetGenerator& gen, comm::Comm* comm = nullptr,
    const std::function<void(const EpochStats&)>& on_epoch = {});

/// Validation MSE of the network against solved BVPs (grid data points).
double validation_mse(const Sdnet& net, const std::vector<gp::SolvedBvp>& bvps,
                      int64_t m);

}  // namespace mf::mosaic
