// Physics-informed losses (paper Sec. 2.2, eq. (3)): the data MSE against
// reference solutions and the Laplace residual at collocation points,
// computed via second-order automatic differentiation.
#pragma once

#include "mosaic/sdnet.hpp"

namespace mf::mosaic {

/// Mean squared error between predictions N(g, x) and reference y.
Tensor data_loss(const Sdnet& net, const Tensor& g, const Tensor& x,
                 const Tensor& y);

/// Discrete Laplacian of the network output with respect to its input
/// coordinates: returns [B, q, 1] holding u_xx + u_yy at each query.
/// `x` must be a leaf tensor with requires_grad set. When
/// `create_graph` is true the result is differentiable w.r.t. parameters
/// (needed inside the training loss).
Tensor network_laplacian(const Sdnet& net, const Tensor& g, const Tensor& x,
                         bool create_graph);

/// L_pde = mean (Delta N)^2 over the collocation batch (eq. (3)).
Tensor pde_loss(const Sdnet& net, const Tensor& g, const Tensor& x_colloc);

/// Scenario-generalized PDE residual loss. `coeffs` is a constant leaf
/// tensor [B, q, 5] holding (k, k_x, k_y, v_x, v_y) at each collocation
/// point; the residual is
///   v·∇u − (k·Δu + ∇k·∇u)  ==  −∇·(k∇u) + v·∇u
/// and the loss its mean square. Poisson coefficients (1,0,0,0,0) reduce
/// to −Δu, but the original pde_loss path is kept verbatim for the
/// bitwise-stability contract. Built from capturable ops only, so it
/// lowers/fuses/widens and runs at MF_PRECISION=f32 like pde_loss.
Tensor scenario_pde_loss(const Sdnet& net, const Tensor& g,
                         const Tensor& x_colloc, const Tensor& coeffs);

}  // namespace mf::mosaic
