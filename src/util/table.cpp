#include "util/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace mf::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c] << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::cout << str() << std::flush; }

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

}  // namespace mf::util
