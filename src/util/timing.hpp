// Timing utilities. Scaling benchmarks on this single-core box report
// "virtual" per-rank compute time measured with the per-thread CPU clock:
// rank threads timeshare one core, so each thread's CPU time equals the
// compute it would perform on its own device, which is the quantity the
// paper's strong/weak scaling plots show.
#pragma once

#include <chrono>
#include <ctime>

namespace mf::util {

/// CPU time consumed by the calling thread, in seconds.
inline double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Wall-clock seconds since an arbitrary epoch.
inline double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Accumulates time spent in repeated scoped sections.
class StopwatchAccum {
 public:
  void add(double seconds) { total_ += seconds; }
  double total() const { return total_; }

 private:
  double total_ = 0;
};

/// RAII: adds the elapsed thread-CPU time of the scope to an accumulator.
class ScopedCpuTimer {
 public:
  explicit ScopedCpuTimer(StopwatchAccum& acc)
      : acc_(acc), start_(thread_cpu_seconds()) {}
  ~ScopedCpuTimer() { acc_.add(thread_cpu_seconds() - start_); }
  ScopedCpuTimer(const ScopedCpuTimer&) = delete;
  ScopedCpuTimer& operator=(const ScopedCpuTimer&) = delete;

 private:
  StopwatchAccum& acc_;
  double start_;
};

}  // namespace mf::util
