// Grayscale PGM output of grid fields — the Fig. 1 style solution and
// absolute-difference maps, viewable with any image tool.
#pragma once

#include <string>

#include "linalg/grid2d.hpp"

namespace mf::util {

/// Write `g` as an 8-bit PGM, mapping [lo, hi] to [0, 255]. When
/// lo == hi, the range is taken from the data.
void write_pgm(const linalg::Grid2D& g, const std::string& path, double lo = 0,
               double hi = 0);

}  // namespace mf::util
