// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), software table.
//
// Shared integrity primitive for the robustness layer: fault_comm frames
// every point-to-point payload with a CRC so injected bit-flips are
// *detected* (not silently delivered), and nn/serialize stamps the same
// CRC into its checkpoint header so a truncated or corrupted snapshot is
// rejected at load instead of deserializing garbage.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mf::util {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// Incremental form: feed `crc32_update(prev, ...)` successive chunks,
/// starting from and finishing with crc32_init/crc32_final.
constexpr std::uint32_t crc32_init = 0xFFFFFFFFu;

inline std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                  std::size_t nbytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = detail::crc32_table();
  for (std::size_t i = 0; i < nbytes; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

inline std::uint32_t crc32_final(std::uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

/// One-shot CRC-32 of a buffer.
inline std::uint32_t crc32(const void* data, std::size_t nbytes) {
  return crc32_final(crc32_update(crc32_init, data, nbytes));
}

}  // namespace mf::util
