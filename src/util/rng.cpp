#include "util/rng.hpp"

// Header-only; this TU anchors the module in the build.
