// Fixed-width console table printing for benchmark output — every bench
// prints the same rows/series as the corresponding paper table or figure.
#pragma once

#include <string>
#include <vector>

namespace mf::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with `precision` significant digits.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  /// Render with aligned columns.
  std::string str() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double compactly ("1.23e-05", "42.7", ...).
std::string format_double(double v, int precision = 4);

}  // namespace mf::util
