// Deterministic random number generation used across the library. A thin
// wrapper over std::mt19937_64 so every module draws from the same,
// explicitly seeded source (reproducibility requirement for experiments).
#pragma once

#include <cstdint>
#include <random>

namespace mf::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : gen_(seed) {}

  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace mf::util
