#include "util/cli.hpp"

#include <cstdlib>
#include <cstring>

namespace mf::util {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) continue;
    std::string body = arg + 2;
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // boolean switch
    }
  }
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) > 0; }

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t CliArgs::get_int(const std::string& name, int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace mf::util
