// Minimal command-line flag parsing for examples and benchmark binaries:
// --name value or --name=value, plus boolean switches.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace mf::util {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  int64_t get_int(const std::string& name, int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace mf::util
