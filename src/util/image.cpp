#include "util/image.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace mf::util {

void write_pgm(const linalg::Grid2D& g, const std::string& path, double lo,
               double hi) {
  if (lo == hi) {
    lo = 1e300;
    hi = -1e300;
    for (double v : g.vec()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (lo == hi) hi = lo + 1;
  }
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_pgm: cannot open " + path);
  os << "P5\n" << g.nx() << " " << g.ny() << "\n255\n";
  for (int64_t j = g.ny() - 1; j >= 0; --j) {  // top row first
    for (int64_t i = 0; i < g.nx(); ++i) {
      const double t = std::clamp((g.at(i, j) - lo) / (hi - lo), 0.0, 1.0);
      os.put(static_cast<char>(static_cast<unsigned char>(t * 255.0)));
    }
  }
}

}  // namespace mf::util
