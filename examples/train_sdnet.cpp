// Full SDNet training driver with data-parallel ranks (Algorithm 1).
// Produces a model file consumable by large_domain_distributed --model.
//
// Run:  ./train_sdnet [--ranks 4] [--epochs 100] [--m 8] [--bvps 256]
//       [--width 64] [--depth 4] [--lr 1e-2] [--out sdnet.bin]
//       [--optimizer lamb|adamw|sgd]
//       [--scenario poisson|varcoef|convdiff]  (PDE family; non-Poisson
//                                 scenarios widen the conditioning vector
//                                 and train against stencil ground truth)
//       [--zoo DIR]              (also save the model into DIR and upsert
//                                 its entry in DIR/zoo.manifest, the
//                                 CRC-verified manifest the solve server
//                                 loads via MF_SERVE_ZOO)
//       [--checkpoint ckpt.bin] [--checkpoint-every 5] [--resume]
//       [--kill-after-epoch N]   (fault-injection: SIGKILL the process
//                                 right after epoch N's checkpoint lands,
//                                 for kill/resume recovery tests)
// or, built with -DMF_WITH_MPI=ON, data-parallel over real processes:
//       mpirun -np 4 ./example_train_sdnet --epochs 100
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "comm/runtime.hpp"
#include "mosaic/trainer.hpp"
#include "nn/serialize.hpp"
#include "scenario/scenario.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  comm::RankLauncher launcher(argc, argv);
  const int ranks = launcher.fixed_world_size() > 0
                        ? launcher.fixed_world_size()
                        : static_cast<int>(args.get_int("ranks", 1));
  const int64_t m = args.get_int("m", 8);
  const int64_t epochs = args.get_int("epochs", 60);
  const int64_t n_bvps = args.get_int("bvps", 128);
  const std::string out = args.get("out", "sdnet.bin");
  const std::string opt_name = args.get("optimizer", "adamw");
  const scenario::Kind kind =
      scenario::kind_from_name(args.get("scenario", "poisson"));
  const std::string zoo_dir = args.get("zoo", "");

  if (launcher.is_root()) {
    std::printf("=== SDNet data-parallel training (%s backend) ===\n",
                launcher.backend_name());
    std::printf("ranks %d, epochs %ld, %ld BVPs, subdomain %ld cells, "
                "scenario %s\n",
                ranks, epochs, n_bvps, m, scenario::kind_name(kind));
  }

  // Shared dataset generated once; ranks take strided shards.
  gp::LaplaceDatasetGenerator gen(m, {}, 1234, kind);
  auto all = gen.generate_many(n_bvps);
  auto val = gen.generate_many(16);

  mosaic::SdnetConfig net_cfg;
  net_cfg.boundary_size = scenario::conditioning_size(kind, m);
  net_cfg.hidden_width = args.get_int("width", 64);
  net_cfg.mlp_depth = args.get_int("depth", 4);
  mosaic::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = args.get_int("batch", 8);
  cfg.q_data = args.get_int("q-data", 48);
  cfg.q_colloc = args.get_int("q-colloc", 16);
  cfg.max_lr = args.get_double("lr", 1e-2);
  cfg.pde_loss_weight = args.get_double("pde-weight", 0.3);
  cfg.optimizer = opt_name == "lamb"   ? mosaic::OptimizerKind::kLamb
                  : opt_name == "sgd"  ? mosaic::OptimizerKind::kSgd
                                       : mosaic::OptimizerKind::kAdamW;
  cfg.checkpoint_path = args.get("checkpoint", "");
  cfg.checkpoint_every = args.get_int("checkpoint-every", 0);
  cfg.resume = args.get_bool("resume");
  const int64_t kill_after = args.get_int("kill-after-epoch", -1);

  mosaic::EpochStats root_stats;
  launcher.run(ranks, [&](comm::Comm& c) {
    util::Rng rng(42);  // identical replica initialization on every rank
    mosaic::Sdnet net(net_cfg, rng);
    // Strided shard: rank r takes BVPs r, r+P, r+2P, ...
    std::vector<gp::SolvedBvp> shard;
    for (std::size_t i = static_cast<std::size_t>(c.rank()); i < all.size();
         i += static_cast<std::size_t>(ranks)) {
      shard.push_back(all[i]);
    }
    gp::LaplaceDatasetGenerator local_gen(
        m, {}, 99 + static_cast<unsigned>(c.rank()), kind);
    auto history = mosaic::train_sdnet(
        net, shard, val, cfg, local_gen, ranks > 1 ? &c : nullptr,
        [&](const mosaic::EpochStats& s) {
          if (c.rank() == 0 && s.epoch % 10 == 0) {
            std::printf("  epoch %3ld  loss %.4f  val MSE %.6f  (%.1fs)\n",
                        static_cast<long>(s.epoch), s.train_loss, s.val_mse,
                        s.wall_seconds);
          }
          if (kill_after >= 0 && s.epoch == kill_after) {
            // Crash test: the trainer checkpoints before this callback,
            // so the snapshot for this epoch is already durable. Die the
            // hard way — no destructors, no flushes — like a real
            // preemption.
            std::fflush(stdout);
            std::raise(SIGKILL);
          }
        });
    if (c.rank() == 0) {
      root_stats = history.back();
      nn::save_parameters(net, out);
      if (!zoo_dir.empty()) {
        std::filesystem::create_directories(zoo_dir);
        const std::string fname =
            std::string(scenario::kind_name(kind)) + ".params";
        const std::string fpath = zoo_dir + "/" + fname;
        nn::save_parameters(net, fpath);
        nn::ZooManifest manifest;
        try {
          // Existing entries survive; skip per-file CRC verification so a
          // stale sibling checkpoint can't block updating this one.
          manifest = nn::load_zoo_manifest(zoo_dir, /*verify_params=*/false);
        } catch (const std::exception&) {
          // No manifest yet (or an unreadable one being rebuilt).
        }
        nn::ZooEntry entry;
        entry.scenario = scenario::kind_name(kind);
        const char* prec = std::getenv("MF_PRECISION");
        entry.precision = (prec && prec == std::string("f32")) ? "f32" : "f64";
        entry.params_file = fname;
        char fp[160];
        std::snprintf(fp, sizeof(fp), "seed=42 epochs=%ld bvps=%ld m=%ld",
                      static_cast<long>(epochs), static_cast<long>(n_bvps),
                      static_cast<long>(m));
        entry.fingerprint = fp;
        entry.params_crc = nn::file_crc32(fpath);
        entry.config = serve::zoo_entry_config(net_cfg, m);
        bool replaced = false;
        for (auto& e : manifest.entries) {
          if (e.scenario == entry.scenario) {
            e = entry;
            replaced = true;
          }
        }
        if (!replaced) manifest.entries.push_back(entry);
        nn::save_zoo_manifest(manifest, zoo_dir);
        std::printf("zoo: wrote %s, updated %s/zoo.manifest\n", fpath.c_str(),
                    zoo_dir.c_str());
      }
    }
  });

  if (launcher.is_root()) {
    std::printf("\nfinal val MSE %.6f; model saved to %s\n",
                root_stats.val_mse, out.c_str());
    std::printf("rank-0 device time %.1fs, modeled allreduce %.4fs\n",
                root_stats.cpu_seconds, root_stats.comm_seconds);
  }
  return 0;
}
