// Classical Schwarz vs Mosaic Flow: why inferring only subdomain
// *center lines* wins.
//
// Both methods decompose the domain into overlapping subdomains and
// iterate. Classical alternating Schwarz solves every grid point of every
// subdomain each sweep; the MF predictor only infers the subdomain center
// lines (a 1-D set) until the single final full-interior pass — the
// asymptotic advantage highlighted in Sec. 2.4 of the paper.
//
// Run:  ./schwarz_vs_mosaic [--cells 64] [--m 8]
#include <cstdio>

#include "gp/dataset.hpp"
#include "mosaic/predictor.hpp"
#include "mosaic/schwarz.hpp"
#include "util/cli.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const int64_t m = args.get_int("m", 8);
  const int64_t cells = args.get_int("cells", 64);

  gp::LaplaceDatasetGenerator gen(m, {}, 11);
  auto problem = gen.generate_global(cells, cells);
  std::printf("=== classical Schwarz vs Mosaic Flow (%ld x %ld cells) ===\n\n",
              cells, cells);

  // Classical alternating Schwarz with multigrid block solves.
  linalg::Grid2D start(cells + 1, cells + 1);
  linalg::apply_perimeter(start, problem.boundary);
  mosaic::SchwarzOptions sopts;
  sopts.block_cells = m;
  sopts.overlap = m / 2;
  sopts.max_iters = 200;
  sopts.tol = 1e-7;
  const double t0 = util::wall_seconds();
  auto schwarz = mosaic::schwarz_solve(start, 1.0 / static_cast<double>(m), sopts);
  const double schwarz_time = util::wall_seconds() - t0;
  const double schwarz_mae =
      linalg::Grid2D::mean_abs_diff(schwarz.solution, problem.solution);

  // Mosaic Flow with the exact subdomain solver (same subdomain size).
  mosaic::HarmonicKernelSolver solver(m);
  mosaic::MfpOptions mopts;
  mopts.max_iters = 4000;
  mopts.tol = 1e-7;
  const double t1 = util::wall_seconds();
  auto mosaic_r = mosaic::mosaic_predict(solver, cells, cells, problem.boundary, mopts);
  const double mosaic_time = util::wall_seconds() - t1;
  const double mosaic_mae =
      linalg::Grid2D::mean_abs_diff(mosaic_r.solution, problem.solution);

  // Work accounting: points computed per iteration.
  const int64_t schwarz_pts_per_solve = (m + sopts.overlap * 2) * (m + sopts.overlap * 2);
  const int64_t mosaic_pts_per_subdomain = 2 * m - 3;  // center cross only

  std::printf("%-26s %14s %14s\n", "", "Schwarz (ASM)", "Mosaic Flow");
  std::printf("%-26s %14ld %14ld\n", "iterations",
              static_cast<long>(schwarz.iterations),
              static_cast<long>(mosaic_r.iterations));
  std::printf("%-26s %14.4f %14.4f\n", "MAE vs multigrid", schwarz_mae, mosaic_mae);
  std::printf("%-26s %14.2f %14.2f\n", "wall time (s)", schwarz_time, mosaic_time);
  std::printf("%-26s %14ld %14ld\n", "points per subdomain visit",
              static_cast<long>(schwarz_pts_per_solve),
              static_cast<long>(mosaic_pts_per_subdomain));
  std::printf("\nMosaic Flow touches ~%.0fx fewer points per subdomain visit;\n"
              "with a neural solver each visit is a single batched inference.\n",
              static_cast<double>(schwarz_pts_per_solve) /
                  static_cast<double>(mosaic_pts_per_subdomain));
  return 0;
}
