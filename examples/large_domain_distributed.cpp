// Distributed Mosaic Flow on a large domain (the paper's headline
// experiment, scaled to this machine): solve the Laplace equation on a
// domain far larger than the training subdomain using only subdomain
// inferences, distributed across a grid of ranks.
//
// Uses the exact harmonic-kernel subdomain solver by default (a perfectly
// trained SDNet stand-in) so accuracy reflects the *algorithm*; pass a
// trained model with --model to use a neural solver.
//
// Run:  ./large_domain_distributed [--ranks 4] [--cells 128] [--m 16]
//       [--target-mae 0.05] [--model path.bin]
// or, built with -DMF_WITH_MPI=ON, on real processes:
//       mpirun -np 4 ./example_large_domain_distributed --cells 128
#include <cstdio>
#include <memory>

#include "comm/cartesian.hpp"
#include "comm/runtime.hpp"
#include "gp/dataset.hpp"
#include "mosaic/distributed_predictor.hpp"
#include "nn/serialize.hpp"
#include "util/cli.hpp"
#include "util/image.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  comm::RankLauncher launcher(argc, argv);
  const int ranks = launcher.fixed_world_size() > 0
                        ? launcher.fixed_world_size()
                        : static_cast<int>(args.get_int("ranks", 4));
  const int64_t m = args.get_int("m", 16);
  const int64_t cells = args.get_int("cells", 128);
  const double target_mae = args.get_double("target-mae", 0.05);

  comm::CartesianGrid grid(ranks);
  if (launcher.is_root()) {
    std::printf("=== distributed Mosaic Flow (%s backend) ===\n",
                launcher.backend_name());
    std::printf("domain: %ld x %ld cells (%.1fx the training area), "
                "%d ranks as %d x %d grid\n",
                cells, cells,
                static_cast<double>(cells * cells) / static_cast<double>(m * m),
                ranks, grid.px(), grid.py());
  }

  gp::LaplaceDatasetGenerator gen(m, {}, /*seed=*/7);
  auto problem = gen.generate_global(cells, cells);
  if (launcher.is_root())
    std::printf("reference solved by multigrid (pyAMG substitute)\n");

  std::shared_ptr<mosaic::SubdomainSolver> solver;
  if (args.has("model")) {
    util::Rng rng(0);
    mosaic::SdnetConfig cfg;
    cfg.boundary_size = 4 * m;
    auto net = std::make_shared<mosaic::Sdnet>(cfg, rng);
    nn::load_parameters(*net, args.get("model", ""));
    solver = std::make_shared<mosaic::NeuralSubdomainSolver>(net, m);
    if (launcher.is_root())
      std::printf("subdomain solver: SDNet from %s\n", args.get("model", "").c_str());
  } else {
    solver = std::make_shared<mosaic::HarmonicKernelSolver>(m);
    if (launcher.is_root())
      std::printf("subdomain solver: exact harmonic kernel (ideal SDNet)\n");
  }

  mosaic::MfpOptions opts;
  opts.max_iters = args.get_int("max-iters", 4000);
  opts.tol = 0;
  opts.reference = &problem.solution;
  opts.target_mae = target_mae;
  opts.check_every = 10;

  mosaic::DistMfpResult root_result;
  std::vector<std::vector<double>> rank_timings;
  launcher.run(ranks, [&](comm::Comm& c) {
    auto r = mosaic::distributed_mosaic_predict(c, grid, *solver, cells, cells,
                                                problem.boundary, opts);
    // Gather every rank's timing breakdown so the root can print the
    // per-rank table no matter whether ranks are threads or processes.
    const auto& t = r.timings;
    std::vector<double> mine = {t.inference_seconds,
                                t.sendrecv_modeled_seconds,
                                t.allgather_modeled_seconds,
                                t.boundary_io_seconds};
    auto all = c.allgatherv(mine);
    if (c.rank() == 0) {
      root_result = std::move(r);
      rank_timings = std::move(all);
    }
  });
  if (!launcher.is_root()) return 0;

  std::printf("\nconverged to MAE %.4f (target %.3f) in %ld iterations\n",
              root_result.mae, target_mae,
              static_cast<long>(root_result.iterations));
  std::printf("%-6s %-12s %-12s %-12s %-12s\n", "rank", "infer (s)", "halo (s,mdl)",
              "gather(s,mdl)", "IO (s)");
  for (int r = 0; r < ranks; ++r) {
    const auto& t = rank_timings[static_cast<std::size_t>(r)];
    std::printf("%-6d %-12.3f %-12.6f %-12.6f %-12.3f\n", r, t[0], t[1], t[2],
                t[3]);
  }

  util::write_pgm(problem.solution, "reference.pgm");
  util::write_pgm(root_result.solution, "mosaic_flow.pgm");
  linalg::Grid2D diff(problem.solution.nx(), problem.solution.ny());
  for (int64_t k = 0; k < diff.numel(); ++k) {
    diff.vec()[static_cast<std::size_t>(k)] =
        std::abs(problem.solution.vec()[static_cast<std::size_t>(k)] -
                 root_result.solution.vec()[static_cast<std::size_t>(k)]);
  }
  util::write_pgm(diff, "abs_difference.pgm");
  std::printf("\nwrote reference.pgm, mosaic_flow.pgm, abs_difference.pgm "
              "(Fig. 1 style)\n");
  return 0;
}
