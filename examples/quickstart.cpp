// Quickstart: the full Mosaic Flow workflow in one file.
//
//   1. Generate training data (GP boundary conditions + multigrid ground
//      truth) on a small 0.5 x 0.5 subdomain.
//   2. Train SDNet, the physics-informed neural subdomain solver.
//   3. Use the Mosaic Flow predictor to solve a brand new BVP on a domain
//      4x larger than anything the network saw in training — inference
//      only, no retraining.
//   4. Compare against the numerical reference.
//
// Run:  ./quickstart [--epochs N] [--m M] [--train-bvps N]
#include <cmath>
#include <cstdio>
#include <memory>

#include "gp/dataset.hpp"
#include "linalg/multigrid.hpp"
#include "mosaic/predictor.hpp"
#include "mosaic/trainer.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const int64_t m = args.get_int("m", 8);             // subdomain cells
  const int64_t epochs = args.get_int("epochs", 30);
  const int64_t n_train = args.get_int("train-bvps", 64);

  std::printf("=== Mosaic Flow quickstart ===\n");
  std::printf("subdomain: %ld x %ld cells (boundary %ld values)\n\n", m, m, 4 * m);

  // 1. Data.
  gp::LaplaceDatasetGenerator gen(m);
  auto train = gen.generate_many(n_train);
  auto val = gen.generate_many(8);
  std::printf("generated %ld training BVPs + 8 validation BVPs\n",
              static_cast<long>(train.size()));

  // 2. Train SDNet.
  util::Rng rng(42);
  mosaic::SdnetConfig net_cfg;
  net_cfg.boundary_size = 4 * m;
  net_cfg.hidden_width = 64;
  net_cfg.mlp_depth = 4;
  auto net = std::make_shared<mosaic::Sdnet>(net_cfg, rng);
  std::printf("SDNet parameters: %ld\n", static_cast<long>(net->parameter_count()));

  mosaic::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.batch_size = 8;
  train_cfg.q_data = 48;
  train_cfg.q_colloc = 16;
  train_cfg.max_lr = 1e-2;
  train_cfg.pde_loss_weight = 0.3;
  train_cfg.optimizer = mosaic::OptimizerKind::kAdamW;
  auto history = mosaic::train_sdnet(*net, train, val, train_cfg, gen,
                                     /*comm=*/nullptr,
                                     [](const mosaic::EpochStats& s) {
                                       if (s.epoch % 5 == 0) {
                                         std::printf(
                                             "  epoch %3ld  train loss %.4f  val "
                                             "MSE %.5f\n",
                                             static_cast<long>(s.epoch),
                                             s.train_loss, s.val_mse);
                                       }
                                     });
  std::printf("training done: val MSE %.5f in %.1fs\n\n",
              history.back().val_mse, history.back().wall_seconds);

  // 3. Solve a 2 x 2 (unit) domain = 4x the training area, new boundary.
  const int64_t cells = 4 * m;
  auto problem = gen.generate_global(cells, cells);
  mosaic::NeuralSubdomainSolver solver(net, m);
  mosaic::MfpOptions mfp;
  mfp.max_iters = 400;
  mfp.tol = 1e-5;
  // Damp updates: a CPU-budget-trained SDNet is far less accurate than the
  // paper's (MSE 2.5e-6 after 500 GPU epochs); relaxation keeps the
  // Schwarz-style iteration stable at this accuracy level.
  mfp.relaxation = 0.5;
  auto result = mosaic::mosaic_predict(solver, cells, cells, problem.boundary, mfp);

  // 4. Compare.
  const double mae =
      linalg::Grid2D::mean_abs_diff(result.solution, problem.solution);
  const double maxe =
      linalg::Grid2D::max_abs_diff(result.solution, problem.solution);
  std::printf("Mosaic Flow predictor on %ld x %ld cells:\n", cells, cells);
  std::printf("  iterations: %ld   final delta: %.2e\n",
              static_cast<long>(result.iterations), result.final_delta);
  std::printf("  MAE vs multigrid:  %.4f\n", mae);
  std::printf("  max error:         %.4f\n", maxe);
  std::printf("  inference time:    %.2fs   boundary IO: %.2fs\n",
              result.inference_seconds, result.boundary_io_seconds);
  std::printf("  SDNet per-point RMSE: %.4f (MFP error tracks this floor)\n",
              std::sqrt(history.back().val_mse));
  std::printf("\nNote: accuracy tracks SDNet quality; raise --epochs and\n"
              "--train-bvps (the paper trains 500 epochs on 18k BVPs to\n"
              "MSE 2.5e-6). Swap in mosaic::HarmonicKernelSolver — an exact\n"
              "subdomain solver — to see the predictor converge to 1e-4.\n");
  return 0;
}
