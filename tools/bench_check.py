#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json trajectories.

Each committed BENCH_fig*.json file holds one JSON object per line, one
line per PR, appended when a PR lands with its headline benchmark numbers.
The bench-smoke CI job re-runs the benches at small shapes, strips the
fresh ``BENCH_JSON`` line from the output, and calls this script to
compare the fresh headline metric against the *last committed* line. A
fresh value below ``--min-ratio`` (default 0.85) of the committed one
fails the job, so a perf regression cannot land silently.

The comparison is also emitted as a Markdown table, appended to
``$GITHUB_STEP_SUMMARY`` when set (the Actions job summary) or to the
path given with ``--summary``.

Usage:
    bench_check.py --min-ratio 0.85 \
        --check fig6 build/fig6_line.json BENCH_fig6.json replay_steps_per_sec \
        --check fig8 build/fig8_line.json BENCH_fig8.json batched_sub_updates_per_sec

Caveat worth knowing when reading CI history: the committed lines are
measured on the dev machine that landed the PR, so the gate is really a
"same-order-of-magnitude and not collapsing" check on heterogeneous CI
hardware, not a precision measurement. The table records both numbers and
the ratio so a hardware mismatch is visible at a glance.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def last_json_line(path: str) -> dict:
    """Parse the last non-empty line of a JSON-lines file."""
    last = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                last = line
    if last is None:
        raise ValueError(f"{path}: no JSON lines found")
    try:
        return json.loads(last)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: last line is not valid JSON: {exc}") from exc


def run_check(name: str, fresh_path: str, baseline_path: str, metric: str,
              min_ratio: float) -> dict:
    fresh = last_json_line(fresh_path)
    if metric not in fresh:
        raise ValueError(f"{fresh_path}: metric '{metric}' missing from fresh line")
    fresh_v = float(fresh[metric])
    # A missing/empty committed trajectory (or a metric introduced by the
    # current PR) is a bootstrap condition, not a regression: record the
    # fresh value, note why there is nothing to compare against, and let
    # the gate pass. The fresh side above stays strict — a bench that
    # stopped emitting its metric is a real failure.
    skip_note = None
    try:
        baseline = last_json_line(baseline_path)
    except (OSError, ValueError) as exc:
        skip_note = f"no committed baseline ({exc})"
    else:
        if metric not in baseline:
            skip_note = f"metric '{metric}' not in committed line"
    if skip_note is not None:
        return {
            "name": name,
            "metric": metric,
            "committed_pr": "-",
            "committed": None,
            "fresh": fresh_v,
            "ratio": None,
            "ok": True,
            "note": skip_note,
        }
    base_v = float(baseline[metric])
    ratio = fresh_v / base_v if base_v > 0 else float("inf")
    return {
        "name": name,
        "metric": metric,
        "committed_pr": baseline.get("pr", "?"),
        "committed": base_v,
        "fresh": fresh_v,
        "ratio": ratio,
        "ok": ratio >= min_ratio,
    }


def markdown_table(rows: list[dict], min_ratio: float) -> str:
    lines = [
        f"### Bench perf gate (fresh ≥ {min_ratio:.2f}× last committed line)",
        "",
        "| bench | metric | committed (pr) | fresh | ratio | status |",
        "|---|---|---|---|---|---|",
    ]
    for r in rows:
        if r.get("note") is not None:
            lines.append(
                f"| {r['name']} | `{r['metric']}` | — "
                f"| {r['fresh']:.4g} | — | ⚠️ skipped: {r['note']} |")
            continue
        status = "✅ pass" if r["ok"] else "❌ **regression**"
        lines.append(
            f"| {r['name']} | `{r['metric']}` "
            f"| {r['committed']:.4g} (pr:{r['committed_pr']}) "
            f"| {r['fresh']:.4g} | {r['ratio']:.3f}x | {status} |")
    lines.append("")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--check", nargs=4, action="append", required=True,
                    metavar=("NAME", "FRESH_JSON", "BASELINE_JSON", "METRIC"),
                    help="one gate: fresh bench line vs committed trajectory file")
    ap.add_argument("--min-ratio", type=float, default=0.85,
                    help="fail when fresh/committed drops below this (default 0.85)")
    ap.add_argument("--summary", default=os.environ.get("GITHUB_STEP_SUMMARY"),
                    help="append the Markdown comparison table to this file "
                         "(default: $GITHUB_STEP_SUMMARY when set)")
    args = ap.parse_args(argv)

    rows = []
    for name, fresh_path, baseline_path, metric in args.check:
        try:
            rows.append(run_check(name, fresh_path, baseline_path, metric,
                                  args.min_ratio))
        except (OSError, ValueError) as exc:
            print(f"bench_check: {exc}", file=sys.stderr)
            return 2

    table = markdown_table(rows, args.min_ratio)
    print(table)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as fh:
            fh.write(table + "\n")

    for r in rows:
        if r.get("note") is not None:
            print(f"bench_check: SKIP {r['name']}.{r['metric']}: {r['note']}",
                  file=sys.stderr)

    failures = [r for r in rows if not r["ok"]]
    for r in failures:
        print(f"bench_check: FAIL {r['name']}.{r['metric']} = {r['fresh']:.4g} "
              f"is {r['ratio']:.3f}x of committed {r['committed']:.4g} "
              f"(threshold {args.min_ratio:.2f}x)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
