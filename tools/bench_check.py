#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json trajectories.

Each committed BENCH_fig*.json file holds one JSON object per line, one
line per PR, appended when a PR lands with its headline benchmark numbers.
The bench-smoke CI job re-runs the benches at small shapes, strips the
fresh ``BENCH_JSON`` line from the output, and calls this script to
compare the fresh headline metric against the *last committed* line. A
fresh value below ``--min-ratio`` (default 0.85) of the committed one
fails the job, so a perf regression cannot land silently.

Metric spec syntax (the fourth ``--check`` operand)::

    METRIC[@key=value[,key=value...]][:lower]

``@key=value`` filters the *committed* trajectory: the baseline is the
last line whose fields match every pair (a line missing the key does not
match, so old lines written before a key existed are skipped cleanly).
Since PR 7 the trajectories carry per-dtype lines, e.g.
``batched_sub_updates_per_sec@compute_dtype=f32`` gates the f32 line
against the f32 baseline instead of whichever line happens to be last.

``:lower`` flips the gate to lower-is-better (quality metrics such as
MAE): the fresh value must stay below ``--max-ratio`` (default 1.10)
times the committed one. Used for the fig7 solution-quality band — a
precision-policy or kernel change that degrades MFP accuracy fails CI
even when it makes the bench faster.

The comparison is also emitted as a Markdown table, appended to
``$GITHUB_STEP_SUMMARY`` when set (the Actions job summary) or to the
path given with ``--summary``.

Usage:
    bench_check.py --min-ratio 0.85 \
        --check fig6 build/fig6_line.json BENCH_fig6.json replay_steps_per_sec \
        --check fig8-f32 build/fig8_f32.json BENCH_fig8.json \
            batched_sub_updates_per_sec@compute_dtype=f32 \
        --check fig7-f32 build/fig7_f32.json BENCH_fig7.json \
            mae_mean@compute_dtype=f64:lower \
        --check serve build/serve_line.json BENCH_serve.json req_per_sec \
        --check serve-p99 build/serve_line.json BENCH_serve.json p99_ms:lower

Caveat worth knowing when reading CI history: the committed lines are
measured on the dev machine that landed the PR, so the gate is really a
"same-order-of-magnitude and not collapsing" check on heterogeneous CI
hardware, not a precision measurement. The table records both numbers and
the ratio so a hardware mismatch is visible at a glance. (The ``:lower``
quality gates are the exception — MAE at a fixed seed and shape is
hardware-stable, so their band can be tight.)
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys


class NoFilterMatchError(ValueError):
    """``@key=value`` filters matched zero committed lines.

    Unlike a missing trajectory file (a bootstrap condition that skips the
    gate), an existing trajectory where *no* line matches the filters means
    the check is misconfigured or its baseline was never committed — e.g. a
    new scenario gate without a committed per-scenario line. That must fail
    loudly (exit 2), not pass green.
    """


def parse_metric_spec(spec: str) -> tuple[str, dict[str, str], bool]:
    """Split ``METRIC[@k=v,...][:lower]`` into (metric, filters, lower)."""
    lower = False
    if spec.endswith(":lower"):
        lower = True
        spec = spec[: -len(":lower")]
    filters: dict[str, str] = {}
    if "@" in spec:
        spec, _, filter_part = spec.partition("@")
        for pair in filter_part.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key:
                raise ValueError(f"bad metric filter clause '{pair}' "
                                 f"(expected key=value)")
            filters[key] = value
    if not spec:
        raise ValueError("empty metric name in --check spec")
    return spec, filters, lower


def _matches(obj: dict, filters: dict[str, str]) -> bool:
    for key, want in filters.items():
        if key not in obj:
            return False
        have = obj[key]
        # Compare against both the Python str() and the JSON rendering so
        # `openmp=true` matches a JSON boolean and `m=8` matches a number.
        if str(have) != want and json.dumps(have) != want:
            return False
    return True


def last_json_line(path: str, filters: dict[str, str] | None = None) -> dict:
    """Parse the last (matching) non-empty line of a JSON-lines file."""
    last = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if filters:
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if _matches(obj, filters):
                    last = line
            else:
                last = line
    if last is None:
        if filters:
            raise NoFilterMatchError(
                f"{path}: no committed JSON line matches "
                f"{','.join(f'{k}={v}' for k, v in filters.items())} — "
                f"commit a baseline line for this filter or fix the spec")
        raise ValueError(f"{path}: no JSON lines found")
    try:
        return json.loads(last)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: last line is not valid JSON: {exc}") from exc


def metric_value(obj: dict, metric: str, origin: str) -> float:
    """Extract ``obj[metric]`` as a finite float, or raise a clear error.

    A bench that crashed mid-run can emit ``null``/``"nan"``/``inf`` (or
    drop the key entirely); all of those must fail the gate with a
    one-line diagnosis, not a TypeError traceback or a vacuous
    NaN-compares-false verdict.
    """
    if metric not in obj:
        raise ValueError(f"{origin}: metric '{metric}' missing from line")
    raw = obj[metric]
    if isinstance(raw, bool) or not isinstance(raw, (int, float, str)):
        raise ValueError(f"{origin}: metric '{metric}' is not numeric "
                         f"(got {json.dumps(raw)})")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"{origin}: metric '{metric}' is not numeric "
                         f"(got {json.dumps(raw)})") from exc
    if not math.isfinite(value):
        raise ValueError(f"{origin}: metric '{metric}' is {value!r} — the "
                         f"bench diverged or failed to measure")
    return value


def run_check(name: str, fresh_path: str, baseline_path: str, spec: str,
              min_ratio: float, max_ratio: float) -> dict:
    metric, filters, lower = parse_metric_spec(spec)
    fresh = last_json_line(fresh_path)
    fresh_v = metric_value(fresh, metric, fresh_path)
    # A missing/empty committed trajectory (or a metric/filter introduced
    # by the current PR) is a bootstrap condition, not a regression:
    # record the fresh value, note why there is nothing to compare
    # against, and let the gate pass. The fresh side above stays strict —
    # a bench that stopped emitting its metric is a real failure.
    skip_note = None
    base_v = None
    baseline = {}
    try:
        baseline = last_json_line(baseline_path, filters)
        base_v = metric_value(baseline, metric, baseline_path)
    except NoFilterMatchError:
        # Zero filter matches in an existing trajectory is a configuration
        # error, not a bootstrap skip: propagate to the exit-2 path.
        raise
    except (OSError, ValueError) as exc:
        # Includes a committed value that is null/NaN/non-numeric: a broken
        # baseline is not this PR's regression, but it is worth a visible
        # skip note rather than a silent pass or a crash.
        skip_note = f"no usable committed baseline ({exc})"
    if skip_note is not None:
        return {
            "name": name,
            "metric": metric,
            "lower": lower,
            "committed_pr": "-",
            "committed": None,
            "fresh": fresh_v,
            "ratio": None,
            "ok": True,
            "note": skip_note,
        }
    if base_v > 0:
        ratio = fresh_v / base_v
    else:
        ratio = float("inf") if fresh_v > 0 else 1.0
    ok = (ratio <= max_ratio) if lower else (ratio >= min_ratio)
    return {
        "name": name,
        "metric": metric,
        "lower": lower,
        "committed_pr": baseline.get("pr", "?"),
        "committed": base_v,
        "fresh": fresh_v,
        "ratio": ratio,
        "ok": ok,
    }


def markdown_table(rows: list[dict], min_ratio: float, max_ratio: float) -> str:
    lines = [
        f"### Bench gate (higher-is-better: fresh ≥ {min_ratio:.2f}× committed; "
        f"lower-is-better: fresh ≤ {max_ratio:.2f}× committed)",
        "",
        "| bench | metric | committed (pr) | fresh | ratio | status |",
        "|---|---|---|---|---|---|",
    ]
    for r in rows:
        metric = r["metric"] + (" ↓" if r.get("lower") else "")
        if r.get("note") is not None:
            lines.append(
                f"| {r['name']} | `{metric}` | — "
                f"| {r['fresh']:.4g} | — | ⚠️ skipped: {r['note']} |")
            continue
        status = "✅ pass" if r["ok"] else "❌ **regression**"
        lines.append(
            f"| {r['name']} | `{metric}` "
            f"| {r['committed']:.4g} (pr:{r['committed_pr']}) "
            f"| {r['fresh']:.4g} | {r['ratio']:.3f}x | {status} |")
    lines.append("")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--check", nargs=4, action="append", required=True,
                    metavar=("NAME", "FRESH_JSON", "BASELINE_JSON", "METRIC"),
                    help="one gate: fresh bench line vs committed trajectory "
                         "file; METRIC may carry @key=value baseline filters "
                         "and a :lower suffix for lower-is-better metrics")
    ap.add_argument("--min-ratio", type=float, default=0.85,
                    help="higher-is-better gate: fail when fresh/committed "
                         "drops below this (default 0.85)")
    ap.add_argument("--max-ratio", type=float, default=1.10,
                    help="lower-is-better (:lower) gate: fail when "
                         "fresh/committed exceeds this (default 1.10)")
    ap.add_argument("--summary", default=os.environ.get("GITHUB_STEP_SUMMARY"),
                    help="append the Markdown comparison table to this file "
                         "(default: $GITHUB_STEP_SUMMARY when set)")
    args = ap.parse_args(argv)

    rows = []
    for name, fresh_path, baseline_path, spec in args.check:
        try:
            rows.append(run_check(name, fresh_path, baseline_path, spec,
                                  args.min_ratio, args.max_ratio))
        except (OSError, ValueError, TypeError) as exc:
            print(f"bench_check: {name}: {exc}", file=sys.stderr)
            return 2

    table = markdown_table(rows, args.min_ratio, args.max_ratio)
    print(table)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as fh:
            fh.write(table + "\n")

    for r in rows:
        if r.get("note") is not None:
            print(f"bench_check: SKIP {r['name']}.{r['metric']}: {r['note']}",
                  file=sys.stderr)

    failures = [r for r in rows if not r["ok"]]
    for r in failures:
        direction = (f"exceeds {args.max_ratio:.2f}x" if r.get("lower")
                     else f"is below {args.min_ratio:.2f}x")
        print(f"bench_check: FAIL {r['name']}.{r['metric']} = {r['fresh']:.4g} "
              f"is {r['ratio']:.3f}x of committed {r['committed']:.4g} "
              f"({direction} threshold)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
