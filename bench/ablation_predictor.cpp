// Ablation of Mosaic Flow predictor design choices (DESIGN.md §5):
//   1. lattice initialization: zero vs transfinite (Coons) interpolation
//   2. subdomain size m at fixed resolution (the paper's Sec. 2.3
//      observation: many small subdomains with little overlap converge
//      slower than fewer large ones)
//   3. update relaxation under a noisy subdomain solver (our stabilizer
//      for imperfectly trained SDNets)
#include <cstdio>
#include <vector>

#include "gp/dataset.hpp"
#include "mosaic/predictor.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace mf;

/// HarmonicKernelSolver with additive uniform noise — a controllable model
/// of neural prediction error.
class NoisySolver final : public mosaic::SubdomainSolver {
 public:
  NoisySolver(int64_t m, double noise) : exact_(m), noise_(noise) {}
  int64_t m() const override { return exact_.m(); }
  void predict(const std::vector<std::vector<double>>& boundaries,
               const mosaic::QueryList& queries,
               std::vector<std::vector<double>>& out) const override {
    exact_.predict(boundaries, queries, out);
    for (auto& row : out)
      for (auto& v : row) v += rng_.uniform(-noise_, noise_);
  }

 private:
  mosaic::HarmonicKernelSolver exact_;
  double noise_;
  mutable util::Rng rng_{77};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const int64_t cells = args.get_int("cells", 64);

  std::printf("== Ablation: Mosaic Flow predictor design choices ==\n\n");

  // --- 1. initialization scheme ---
  {
    gp::LaplaceDatasetGenerator gen(8, {}, 41);
    auto problem = gen.generate_global(cells, cells);
    mosaic::HarmonicKernelSolver solver(8);
    util::Table t({"init", "iterations to tol 1e-7", "final MAE"});
    for (auto init : {mosaic::LatticeInit::kZero, mosaic::LatticeInit::kCoons}) {
      mosaic::MfpOptions opts;
      opts.max_iters = 20000;
      opts.tol = 1e-7;
      opts.init = init;
      opts.reference = &problem.solution;
      auto r = mosaic::mosaic_predict(solver, cells, cells, problem.boundary, opts);
      t.add_row({init == mosaic::LatticeInit::kZero ? "zero" : "Coons patch",
                 std::to_string(r.iterations), util::format_double(r.lattice_mae)});
    }
    std::printf("-- 1. lattice initialization (%ld x %ld cells) --\n\n", cells, cells);
    t.print();
  }

  // --- 2. subdomain size at fixed resolution ---
  {
    std::printf("\n-- 2. subdomain size m (fixed %ld x %ld grid) --\n", cells, cells);
    std::printf("   (Sec. 2.3: smaller subdomains/less overlap => more "
                "iterations)\n\n");
    util::Table t({"m", "subdomain positions", "iterations to tol 1e-7",
                   "final MAE"});
    for (int64_t m : {int64_t{8}, int64_t{16}, int64_t{32}}) {
      if (cells % m != 0) continue;
      gp::LaplaceDatasetGenerator gen(m, {}, 41);
      auto problem = gen.generate_global(cells, cells);
      mosaic::HarmonicKernelSolver solver(m);
      mosaic::MfpOptions opts;
      opts.max_iters = 40000;
      opts.tol = 1e-7;
      opts.reference = &problem.solution;
      auto r = mosaic::mosaic_predict(solver, cells, cells, problem.boundary, opts);
      const int64_t pos = (2 * cells / m - 1) * (2 * cells / m - 1);
      t.add_row({std::to_string(m), std::to_string(pos),
                 std::to_string(r.iterations), util::format_double(r.lattice_mae)});
    }
    t.print();
  }

  // --- 3. relaxation under solver noise ---
  {
    std::printf("\n-- 3. update relaxation with a noisy solver (noise 0.05) --\n");
    std::printf("   (stabilizer for CPU-budget-trained SDNets; 1.0 = paper)\n\n");
    gp::LaplaceDatasetGenerator gen(8, {}, 43);
    auto problem = gen.generate_global(cells, cells);
    NoisySolver noisy(8, 0.05);
    util::Table t({"relaxation", "final MAE", "final delta"});
    for (double w : {1.0, 0.7, 0.5, 0.3}) {
      mosaic::MfpOptions opts;
      opts.max_iters = 600;
      opts.tol = 0;
      opts.relaxation = w;
      opts.reference = &problem.solution;
      auto r = mosaic::mosaic_predict(noisy, cells, cells, problem.boundary, opts);
      t.add_row({util::format_double(w, 2), util::format_double(r.lattice_mae),
                 util::format_double(r.final_delta)});
    }
    t.print();
    std::printf("\nLower relaxation damps noise amplification (smaller MAE "
                "floor) at the cost of slower information propagation.\n");
  }
  return 0;
}
