// Figure 8: time per MFP iteration, batched vs unbatched atomic
// subdomains, as the domain grows (paper: 64x128 ... 1024x1024 pixels on
// a single GPU; batching wins up to ~100x by keeping the device busy).
//
// On CPU the batching advantage comes from amortizing per-call overhead
// and boundary-embedding reuse rather than occupancy, so the gap is
// smaller but the *shape* is identical: unbatched time grows linearly
// with subdomain count, batched time grows with a much smaller slope.
#include <cstdio>
#include <memory>
#include <vector>

#include "ad/kernels.hpp"
#include "gp/dataset.hpp"
#include "mosaic/predictor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const bool paper = args.get_bool("paper-scale");
  const int64_t m = args.get_int("m", 8);
  const int64_t iters = args.get_int("iters", 8);
  // Domain sizes in cells (x, y).
  std::vector<std::pair<int64_t, int64_t>> sizes;
  if (paper) {
    sizes = {{32, 64}, {64, 64}, {64, 128}, {128, 128}, {128, 256}, {256, 256}};
  } else {
    sizes = {{16, 32}, {32, 32}, {32, 64}, {64, 64}, {64, 128}};
  }

  std::printf("== Figure 8: batched vs unbatched atomic subdomain inference ==\n");
  std::printf("time per MFP iteration (averaged over %ld iterations), SDNet "
              "solver\n\n", iters);

  util::Rng rng(8);
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = 4 * m;
  cfg.hidden_width = 64;
  cfg.mlp_depth = 4;
  auto net = std::make_shared<mosaic::Sdnet>(cfg, rng);
  mosaic::NeuralSubdomainSolver solver(net, m);
  gp::LaplaceDatasetGenerator gen(m, {}, 17);

  util::Table table({"domain (cells)", "subdomains", "unbatched s/iter",
                     "batched s/iter", "speedup"});
  double total_sub_updates = 0, total_unbatched_s = 0, total_batched_s = 0;
  for (const auto& [cx, cy] : sizes) {
    auto problem_boundary = gen.generate_global(cx, cy).boundary;
    auto run = [&](bool batched) {
      mosaic::MfpOptions opts;
      opts.max_iters = iters;
      opts.tol = 0;
      opts.batched = batched;
      // Wall clock, not the per-thread CPU clock: the kernels may spread
      // work across OpenMP workers whose cycles a thread-CPU timer would
      // miss, and elapsed time is the quantity batching is meant to cut.
      const double t0 = util::wall_seconds();
      mosaic::mosaic_predict(solver, cx, cy, problem_boundary, opts);
      return (util::wall_seconds() - t0) / static_cast<double>(iters);
    };
    const double tu = run(false);
    const double tb = run(true);
    const int64_t h = m / 2;
    const int64_t n_sub = (cx / h - 1) * (cy / h - 1);
    // phase_corners visits roughly a quarter of the subdomain positions per
    // iteration (4-phase coloring), so n_sub/4 updates per iteration.
    total_sub_updates += static_cast<double>(n_sub) / 4.0;
    total_unbatched_s += tu;
    total_batched_s += tb;
    table.add_row({std::to_string(cx) + " x " + std::to_string(cy),
                   std::to_string(n_sub), util::format_double(tu),
                   util::format_double(tb), util::format_double(tu / tb, 3)});
  }
  table.print();
  std::printf("\nShape check vs paper (Fig. 8): unbatched time grows linearly "
              "with domain size; batching flattens the curve (up to ~100x on "
              "GPUs where occupancy dominates; smaller but same-shaped gains "
              "on CPU).\n");
  // Stable machine-readable line for BENCH_*.json trend tracking: aggregate
  // subdomain updates per second over the whole size ladder. Keep the key
  // set append-only so downstream parsers never break.
  std::printf(
      "\nBENCH_JSON {\"bench\":\"fig8_batched_inference\",\"m\":%lld,"
      "\"threads\":%d,\"openmp\":%s,\"clock\":\"wall\","
      "\"batched_sub_updates_per_sec\":%.6g,"
      "\"unbatched_sub_updates_per_sec\":%.6g,\"speedup\":%.4g}\n",
      static_cast<long long>(m), ad::kernels::max_threads(),
      ad::kernels::openmp_enabled() ? "true" : "false",
      total_sub_updates / total_batched_s, total_sub_updates / total_unbatched_s,
      total_unbatched_s / total_batched_s);
  return 0;
}
