// Figure 8: time per MFP iteration, batched vs unbatched atomic
// subdomains, as the domain grows (paper: 64x128 ... 1024x1024 pixels on
// a single GPU; batching wins up to ~100x by keeping the device busy).
//
// On CPU the batching advantage comes from amortizing per-call overhead
// and boundary-embedding reuse rather than occupancy, so the gap is
// smaller but the *shape* is identical: unbatched time grows linearly
// with subdomain count, batched time grows with a much smaller slope.
#include <cstdio>
#include <memory>
#include <vector>

#include "ad/kernels.hpp"
#include "ad/program.hpp"
#include "gp/dataset.hpp"
#include "mosaic/predictor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const bool paper = args.get_bool("paper-scale");
  const int64_t m = args.get_int("m", 8);
  const int64_t iters = args.get_int("iters", 8);
  // Domain sizes in cells (x, y).
  std::vector<std::pair<int64_t, int64_t>> sizes;
  if (paper) {
    sizes = {{32, 64}, {64, 64}, {64, 128}, {128, 128}, {128, 256}, {256, 256}};
  } else {
    sizes = {{16, 32}, {32, 32}, {32, 64}, {64, 64}, {64, 128}};
  }

  std::printf("== Figure 8: batched vs unbatched atomic subdomain inference ==\n");
  std::printf("time per MFP iteration (averaged over %ld iterations), SDNet "
              "solver\n\n", iters);

  util::Rng rng(8);
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = 4 * m;
  cfg.hidden_width = 64;
  cfg.mlp_depth = 4;
  auto net = std::make_shared<mosaic::Sdnet>(cfg, rng);
  mosaic::NeuralSubdomainSolver solver(net, m);
  gp::LaplaceDatasetGenerator gen(m, {}, 17);

  util::Table table({"domain (cells)", "subdomains", "unbatched s/iter",
                     "batched s/iter", "compiled s/iter", "speedup"});
  const bool prog_available = ad::program_enabled();
  double total_sub_updates = 0, total_unbatched_s = 0, total_batched_s = 0;
  double total_compiled_s = 0;
  for (const auto& [cx, cy] : sizes) {
    auto problem_boundary = gen.generate_global(cx, cy).boundary;
    auto run = [&](bool batched, bool compiled) {
      mosaic::MfpOptions opts;
      opts.max_iters = iters;
      opts.tol = 0;
      opts.batched = batched;
      // Honor MF_DISABLE_PROGRAM: with the hatch set, the "compiled"
      // window must stay eager too.
      const bool prev = ad::program_set_enabled(compiled && prog_available);
      // Wall clock, not the per-thread CPU clock: the kernels may spread
      // work across OpenMP workers whose cycles a thread-CPU timer would
      // miss, and elapsed time is the quantity batching is meant to cut.
      const double t0 = util::wall_seconds();
      mosaic::mosaic_predict(solver, cx, cy, problem_boundary, opts);
      const double dt = (util::wall_seconds() - t0) / static_cast<double>(iters);
      ad::program_set_enabled(prev);
      return dt;
    };
    const double tu = run(false, false);
    const double tb = run(true, false);
    // Batched inference through captured programs. The first compiled
    // pass pays the phase-geometry captures for *this* size (the
    // per-thread cache caps at 8 entries, enough for one size's 4 phase
    // shapes + final tiling, so the adjacent timed pass reuses them);
    // the timed pass replays every phase — only the once-per-run final
    // tiling geometry, seen for the second time, still captures there.
    run(true, true);
    const double tc = run(true, true);
    const int64_t h = m / 2;
    const int64_t n_sub = (cx / h - 1) * (cy / h - 1);
    // phase_corners visits roughly a quarter of the subdomain positions per
    // iteration (4-phase coloring), so n_sub/4 updates per iteration.
    total_sub_updates += static_cast<double>(n_sub) / 4.0;
    total_unbatched_s += tu;
    total_batched_s += tb;
    total_compiled_s += tc;
    table.add_row({std::to_string(cx) + " x " + std::to_string(cy),
                   std::to_string(n_sub), util::format_double(tu),
                   util::format_double(tb), util::format_double(tc),
                   util::format_double(tu / tb, 3)});
  }
  table.print();
  std::printf("\nShape check vs paper (Fig. 8): unbatched time grows linearly "
              "with domain size; batching flattens the curve (up to ~100x on "
              "GPUs where occupancy dominates; smaller but same-shaped gains "
              "on CPU).\n");
  const auto prog = solver.thread_program_stats();
  // Stable machine-readable line for BENCH_*.json trend tracking: aggregate
  // subdomain updates per second over the whole size ladder. Keep the key
  // set append-only so downstream parsers never break. The gated
  // `batched_sub_updates_per_sec` is the production path — compiled
  // replay with batch widening; the plain eager batched column keeps its
  // own key (`eager_batched_sub_updates_per_sec`) so the trend of both
  // survives the rewiring.
  std::printf(
      "\nBENCH_JSON {\"bench\":\"fig8_batched_inference\",\"m\":%lld,"
      "\"threads\":%d,\"openmp\":%s,\"clock\":\"wall\","
      "\"batched_sub_updates_per_sec\":%.6g,"
      "\"unbatched_sub_updates_per_sec\":%.6g,\"speedup\":%.4g,"
      "\"replay_sub_updates_per_sec\":%.6g,\"replay_steps_per_sec\":%.6g,"
      "\"capture_ms\":%.6g,\"plan_steps\":%zu,\"program_captures\":%llu,"
      "\"program_replays\":%llu,\"fused_steps\":%zu,\"fused_ops\":%zu,"
      "\"eager_batched_sub_updates_per_sec\":%.6g,\"plan_waves\":%zu,"
      "\"batch_width\":%lld,\"widened_replays\":%llu,"
      "\"plan_threads\":%d,\"compute_dtype\":\"%s\",\"cast_steps\":%zu}\n",
      static_cast<long long>(m), ad::kernels::max_threads(),
      ad::kernels::openmp_enabled() ? "true" : "false",
      total_sub_updates / total_compiled_s,
      total_sub_updates / total_unbatched_s,
      total_unbatched_s / total_compiled_s,
      total_sub_updates / total_compiled_s,
      static_cast<double>(sizes.size()) / total_compiled_s,
      prog.capture_ms, prog.steps,
      static_cast<unsigned long long>(prog.captures),
      static_cast<unsigned long long>(prog.replays),
      prog.fused_steps, prog.fused_ops,
      total_sub_updates / total_batched_s, prog.waves,
      static_cast<long long>(prog.max_widen_batch),
      static_cast<unsigned long long>(prog.widened_replays),
      ad::program_plan_threads(), ad::dtype_name(ad::compute_dtype()),
      prog.cast_steps);
  return 0;
}
