// Figure 9a + Table 4: strong scaling of the distributed MF predictor.
//
// A fixed global domain (paper: 32x32 spatial = 2048x2048 resolution,
// 4096 atomic subdomains) is solved to a target MAE with 1..32 ranks.
// We report, per rank count:
//   * iterations to reach the MAE target      (Table 4: 3200 -> 3500)
//   * per-rank device compute time (max)      (Fig. 9a: Model Inference)
//   * modeled sendrecv / allgather time       (Fig. 9a: SendRecv, Allgather)
//   * boundary IO time                        (Fig. 9a: Boundaries IO)
//   * speedup vs 1 rank                       (paper: ~10x at 32)
//
// Device compute is per-thread CPU time: rank threads timeshare this
// single core, so each thread's CPU time is the work it would do on its
// own device (see DESIGN.md, substitution table).
#include <cstdio>
#include <algorithm>
#include <vector>

#include "comm/world.hpp"
#include "gp/dataset.hpp"
#include "mosaic/distributed_predictor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const bool paper = args.get_bool("paper-scale");
  const int64_t m = args.get_int("m", paper ? 32 : 8);
  const int64_t cells = args.get_int("cells", paper ? 2048 : 256);
  const double target_mae = args.get_double("target-mae", 0.05);
  std::vector<int> rank_counts = paper ? std::vector<int>{1, 2, 4, 8, 16, 32}
                                       : std::vector<int>{1, 2, 4, 8, 16};
  if (args.has("max-ranks")) {
    rank_counts.clear();
    for (int r = 1; r <= args.get_int("max-ranks", 16); r *= 2) rank_counts.push_back(r);
  }

  std::printf("== Figure 9a / Table 4: strong scaling of distributed MFP ==\n");
  std::printf("domain %ld x %ld cells, %ld atomic subdomain positions, "
              "target MAE %.3f\n\n", cells, cells,
              (2 * cells / m - 1) * (2 * cells / m - 1), target_mae);

  gp::LaplaceDatasetGenerator gen(m, {}, 99);
  std::printf("generating reference solution (multigrid)...\n");
  auto problem = gen.generate_global(cells, cells);
  mosaic::HarmonicKernelSolver solver(m);

  mosaic::MfpOptions opts;
  opts.max_iters = args.get_int("max-iters", 20000);
  opts.tol = 0;
  opts.reference = &problem.solution;
  opts.target_mae = target_mae;
  opts.check_every = 10;

  util::Table table({"ranks", "iterations", "infer s", "halo s (mdl)",
                     "allgather s (mdl)", "IO s", "total s", "speedup"});
  double t1 = -1;
  for (int ranks : rank_counts) {
    if (cells % (comm::CartesianGrid(ranks).px() * m) != 0) continue;
    comm::CartesianGrid grid(ranks);
    comm::World world(ranks);
    std::vector<mosaic::DistMfpResult> results(static_cast<std::size_t>(ranks));
    std::vector<double> device_seconds(static_cast<std::size_t>(ranks));
    world.run([&](comm::Communicator& c) {
      const double c0 = util::thread_cpu_seconds();
      results[static_cast<std::size_t>(c.rank())] = mosaic::distributed_mosaic_predict(
          c, grid, solver, cells, cells, problem.boundary, opts);
      device_seconds[static_cast<std::size_t>(c.rank())] =
          util::thread_cpu_seconds() - c0;
    });
    // Max over ranks (the critical path).
    double infer = 0, halo = 0, gather = 0, io = 0, device = 0;
    for (int r = 0; r < ranks; ++r) {
      const auto& t = results[static_cast<std::size_t>(r)].timings;
      infer = std::max(infer, t.inference_seconds);
      halo = std::max(halo, t.sendrecv_modeled_seconds);
      gather = std::max(gather, t.allgather_modeled_seconds);
      io = std::max(io, t.boundary_io_seconds);
      device = std::max(device, device_seconds[static_cast<std::size_t>(r)]);
    }
    const double total = device + halo + gather;
    if (ranks == 1) t1 = total;
    table.add_row({std::to_string(ranks),
                   std::to_string(results[0].iterations),
                   util::format_double(infer, 4), util::format_double(halo, 4),
                   util::format_double(gather, 4), util::format_double(io, 4),
                   util::format_double(total, 4),
                   t1 > 0 ? util::format_double(t1 / total, 3) : "-"});
    std::printf("ranks %2d: %ld iterations, MAE %.4f\n", ranks,
                static_cast<long>(results[0].iterations), results[0].mae);
  }
  std::printf("\n");
  table.print();

  // Table 4's iteration creep comes from halo staleness. Our per-iteration
  // dirty exchange is exact, so we demonstrate the same staleness tradeoff
  // with the communication-avoiding variant (halo exchange every k
  // iterations — the paper's Sec. 5.3 open problem).
  std::printf("\n-- Table 4 analogue: iterations to MAE %.2f vs halo staleness "
              "(4 ranks) --\n\n", target_mae);
  util::Table t4({"halo exchange every", "iterations", "halo msgs (max rank)"});
  for (int64_t k : {int64_t{1}, int64_t{2}, int64_t{4}, int64_t{8}}) {
    mosaic::MfpOptions stale = opts;
    stale.halo_every = k;
    stale.target_mae = target_mae / 5;  // tighter target exposes staleness
    stale.check_every = 4;
    stale.init = mosaic::LatticeInit::kZero;
    comm::CartesianGrid grid(4);
    comm::World world(4);
    std::vector<mosaic::DistMfpResult> results(4);
    std::vector<std::uint64_t> msgs(4);
    world.run([&](comm::Communicator& c) {
      results[static_cast<std::size_t>(c.rank())] = mosaic::distributed_mosaic_predict(
          c, grid, solver, cells, cells, problem.boundary, stale);
      msgs[static_cast<std::size_t>(c.rank())] = c.stats().sendrecv.messages;
    });
    t4.add_row({std::to_string(k) + " iters",
                std::to_string(results[0].iterations),
                std::to_string(*std::max_element(msgs.begin(), msgs.end()))});
  }
  t4.print();

  std::printf("\nShape check vs paper: iteration count creeps up slightly with "
              "rank count (Table 4: 3200 at 1 GPU -> 3500 at 32) because halo "
              "values go stale under relaxed synchronization; compute shrinks "
              "~1/P while communication grows, yielding ~10x speedup at 32 "
              "GPUs in the paper.\n");
  return 0;
}
