// Figure 9a + Table 4: strong scaling of the distributed MF predictor.
//
// A fixed global domain (paper: 32x32 spatial = 2048x2048 resolution,
// 4096 atomic subdomains) is solved to a target MAE with 1..32 ranks.
// We report, per rank count:
//   * iterations to reach the MAE target      (Table 4: 3200 -> 3500)
//   * per-rank device compute time (max)      (Fig. 9a: Model Inference)
//   * modeled sendrecv / allgather time       (Fig. 9a: SendRecv, Allgather)
//   * boundary IO time                        (Fig. 9a: Boundaries IO)
//   * speedup vs 1 rank                       (paper: ~10x at 32)
//
// Runs on the rank runtime: plain invocation sweeps rank counts as
// in-process threads (device compute is per-thread CPU time: rank threads
// timeshare this machine, so each thread's CPU time is the work it would
// do on its own device); under `mpirun -np N` (built with
// -DMF_WITH_MPI=ON) the same binary measures one real N-process point.
#include <cstdio>
#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "gp/dataset.hpp"
#include "mosaic/distributed_predictor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  comm::RankLauncher launcher(argc, argv);
  const bool paper = args.get_bool("paper-scale");
  const int64_t m = args.get_int("m", paper ? 32 : 8);
  const int64_t cells = args.get_int("cells", paper ? 2048 : 256);
  const double target_mae = args.get_double("target-mae", 0.05);
  std::vector<int> rank_counts = paper ? std::vector<int>{1, 2, 4, 8, 16, 32}
                                       : std::vector<int>{1, 2, 4, 8, 16};
  if (args.has("max-ranks")) {
    rank_counts.clear();
    for (int r = 1; r <= args.get_int("max-ranks", 16); r *= 2) rank_counts.push_back(r);
  }
  rank_counts = launcher.sweep_rank_counts(rank_counts);

  if (launcher.is_root()) {
    std::printf("== Figure 9a / Table 4: strong scaling of distributed MFP "
                "(%s backend) ==\n", launcher.backend_name());
    std::printf("domain %ld x %ld cells, %ld atomic subdomain positions, "
                "target MAE %.3f\n\n", cells, cells,
                (2 * cells / m - 1) * (2 * cells / m - 1), target_mae);
    std::printf("generating reference solution (multigrid)...\n");
  }

  gp::LaplaceDatasetGenerator gen(m, {}, 99);
  auto problem = gen.generate_global(cells, cells);
  mosaic::HarmonicKernelSolver solver(m);

  mosaic::MfpOptions opts;
  opts.max_iters = args.get_int("max-iters", 20000);
  opts.tol = 0;
  opts.reference = &problem.solution;
  opts.target_mae = target_mae;
  opts.check_every = 10;

  // Critical-path (max over ranks) metrics, reduced through the comm so
  // the aggregation is identical for thread and process ranks.
  struct Agg {
    int64_t iterations = 0;
    double mae = 0;
    double infer = 0, halo = 0, gather = 0, io = 0, device = 0, wall = 0;
  };

  util::Table table({"ranks", "iterations", "infer s", "halo s (mdl)",
                     "allgather s (mdl)", "IO s", "total s", "speedup"});
  double t1 = -1;
  int measured = 0;
  for (int ranks : rank_counts) {
    comm::CartesianGrid grid(ranks);
    if (cells % (grid.px() * m) != 0 || cells % (grid.py() * m) != 0) {
      if (launcher.is_root()) {
        std::printf("skipping %d ranks: %ld cells not divisible by "
                    "(grid dim %d x %d) * m=%ld\n",
                    ranks, cells, grid.px(), grid.py(), m);
      }
      continue;
    }
    ++measured;
    Agg agg;
    launcher.run(ranks, [&](comm::Comm& c) {
      bench::RankClock clock(launcher.backend());
      auto r = mosaic::distributed_mosaic_predict(c, grid, solver, cells,
                                                  cells, problem.boundary, opts);
      // One collective over all critical-path metrics; named slots so the
      // pack and unpack cannot silently drift apart.
      enum Slot { kInfer, kHalo, kGather, kIo, kDevice, kWall, kNumSlots };
      double vals[kNumSlots];
      vals[kInfer] = r.timings.inference_seconds;
      vals[kHalo] = r.timings.sendrecv_modeled_seconds;
      vals[kGather] = r.timings.allgather_modeled_seconds;
      vals[kIo] = r.timings.boundary_io_seconds;
      vals[kDevice] = clock.device();
      vals[kWall] = clock.wall();
      c.allreduce_max(vals, kNumSlots);
      if (c.rank() == 0) {
        agg.iterations = r.iterations;
        agg.mae = r.mae;
        agg.infer = vals[kInfer];
        agg.halo = vals[kHalo];
        agg.gather = vals[kGather];
        agg.io = vals[kIo];
        agg.device = vals[kDevice];
        agg.wall = vals[kWall];
      }
    });
    if (!launcher.is_root()) continue;
    const double total = agg.device + agg.halo + agg.gather;
    if (ranks == 1) t1 = total;
    table.add_row({std::to_string(ranks), std::to_string(agg.iterations),
                   util::format_double(agg.infer, 4),
                   util::format_double(agg.halo, 4),
                   util::format_double(agg.gather, 4),
                   util::format_double(agg.io, 4),
                   util::format_double(total, 4),
                   t1 > 0 ? util::format_double(t1 / total, 3) : "-"});
    std::printf("ranks %2d: %ld iterations, MAE %.4f\n", ranks,
                static_cast<long>(agg.iterations), agg.mae);
    // Stable machine-readable line per rank count for BENCH_*.json trend
    // tracking across PRs. Keep the key set append-only.
    std::printf(
        "BENCH_JSON {\"bench\":\"fig9a_strong_scaling\",\"backend\":\"%s\","
        "\"ranks\":%d,\"m\":%lld,\"cells\":%lld,\"iterations\":%lld,"
        "\"mae\":%.6g,\"wall_seconds\":%.6g,\"device_seconds\":%.6g,"
        "\"modeled_comm_seconds\":%.6g}\n",
        launcher.backend_name(), ranks, static_cast<long long>(m),
        static_cast<long long>(cells), static_cast<long long>(agg.iterations),
        agg.mae, agg.wall, agg.device, agg.halo + agg.gather);
  }
  if (launcher.is_root()) {
    std::printf("\n");
    table.print();
    if (measured == 0) {
      std::printf("WARNING: no rank count was measurable — pick --cells "
                  "divisible by (processor grid dims * m) for this launch "
                  "size.\n");
    }
  }

  // Table 4's iteration creep comes from halo staleness. Our per-iteration
  // dirty exchange is exact, so we demonstrate the same staleness tradeoff
  // with the communication-avoiding variant (halo exchange every k
  // iterations — the paper's Sec. 5.3 open problem). Needs a 4-rank world:
  // under MPI it runs only when mpirun provided exactly 4 processes.
  const int t4_ranks = 4;
  if (launcher.fixed_world_size() == 0 ||
      launcher.fixed_world_size() == t4_ranks) {
    if (launcher.is_root()) {
      std::printf("\n-- Table 4 analogue: iterations to MAE %.2f vs halo "
                  "staleness (4 ranks) --\n\n", target_mae);
    }
    util::Table t4({"halo exchange every", "iterations", "halo msgs (max rank)"});
    for (int64_t k : {int64_t{1}, int64_t{2}, int64_t{4}, int64_t{8}}) {
      mosaic::MfpOptions stale = opts;
      stale.halo_every = k;
      stale.target_mae = target_mae / 5;  // tighter target exposes staleness
      stale.check_every = 4;
      stale.init = mosaic::LatticeInit::kZero;
      comm::CartesianGrid grid(t4_ranks);
      int64_t iterations = 0;
      std::uint64_t max_msgs = 0;
      launcher.run(t4_ranks, [&](comm::Comm& c) {
        auto r = mosaic::distributed_mosaic_predict(
            c, grid, solver, cells, cells, problem.boundary, stale);
        const auto msgs = c.stats().sendrecv.messages;
        const auto all_max = static_cast<std::uint64_t>(
            c.allreduce_max(static_cast<double>(msgs)));
        if (c.rank() == 0) {
          iterations = r.iterations;
          max_msgs = all_max;
        }
      });
      if (launcher.is_root()) {
        t4.add_row({std::to_string(k) + " iters", std::to_string(iterations),
                    std::to_string(max_msgs)});
      }
    }
    if (launcher.is_root()) t4.print();
  }

  if (launcher.is_root()) {
    std::printf("\nShape check vs paper: iteration count creeps up slightly "
                "with rank count (Table 4: 3200 at 1 GPU -> 3500 at 32) "
                "because halo values go stale under relaxed synchronization; "
                "compute shrinks ~1/P while communication grows, yielding "
                "~10x speedup at 32 GPUs in the paper.\n");
  }
  return 0;
}
