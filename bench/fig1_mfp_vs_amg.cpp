// Figure 1: distributed Mosaic Flow prediction vs the numerical (pyAMG-
// substitute) solution of the Laplace equation on a 2x2 spatial domain
// with a Gaussian-process boundary condition; reports the absolute
// difference and writes the three panels as PGM images.
//
// Paper setup: 2x2 spatial domain at 128x128 resolution (0.5 x 0.5
// subdomains at 32x32). Default here: m=16 cells per subdomain, domain
// 4x4 subdomains = 64x64 cells; --paper-scale uses m=32, 128x128 cells.
#include <cmath>
#include <cstdio>

#include "comm/world.hpp"
#include "gp/dataset.hpp"
#include "mosaic/distributed_predictor.hpp"
#include "util/cli.hpp"
#include "util/image.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const bool paper = args.get_bool("paper-scale");
  const int64_t m = args.get_int("m", paper ? 32 : 16);
  const int64_t cells = args.get_int("cells", paper ? 128 : 64);
  const int ranks = static_cast<int>(args.get_int("ranks", 4));

  std::printf("== Figure 1: Mosaic Flow prediction vs numerical solution ==\n");
  std::printf("domain %ld x %ld cells (2x2 spatial units), subdomain m=%ld, "
              "%d ranks\n\n", cells, cells, m, ranks);

  gp::LaplaceDatasetGenerator gen(m, {}, /*seed=*/2023);
  auto problem = gen.generate_global(cells, cells);

  mosaic::HarmonicKernelSolver solver(m);
  mosaic::MfpOptions opts;
  opts.max_iters = 6000;
  opts.tol = 1e-8;

  comm::CartesianGrid grid(ranks);
  comm::World world(ranks);
  std::vector<mosaic::DistMfpResult> results(static_cast<std::size_t>(ranks));
  world.run([&](comm::Comm& c) {
    results[static_cast<std::size_t>(c.rank())] = mosaic::distributed_mosaic_predict(
        c, grid, solver, cells, cells, problem.boundary, opts);
  });
  const auto& mf_solution = results[0].solution;

  double max_diff = linalg::Grid2D::max_abs_diff(mf_solution, problem.solution);
  double mae = linalg::Grid2D::mean_abs_diff(mf_solution, problem.solution);

  util::Table table({"quantity", "value"});
  table.add_row({"iterations", std::to_string(results[0].iterations)});
  table.add_row({"MAE (abs difference mean)", util::format_double(mae)});
  table.add_row({"max abs difference", util::format_double(max_diff)});
  table.add_row({"paper reference (Fig. 1 scale)", "abs diff in [0, 0.04]"});
  table.print();

  linalg::Grid2D diff(mf_solution.nx(), mf_solution.ny());
  for (int64_t k = 0; k < diff.numel(); ++k) {
    diff.vec()[static_cast<std::size_t>(k)] = std::abs(
        mf_solution.vec()[static_cast<std::size_t>(k)] -
        problem.solution.vec()[static_cast<std::size_t>(k)]);
  }
  util::write_pgm(problem.solution, "fig1_pyamg_substitute.pgm");
  util::write_pgm(mf_solution, "fig1_mosaic_flow.pgm");
  util::write_pgm(diff, "fig1_abs_difference.pgm");
  std::printf("\nwrote fig1_{pyamg_substitute,mosaic_flow,abs_difference}.pgm\n");
  std::printf(
      "\nBENCH_JSON {\"bench\":\"fig1_mfp_vs_amg\",\"m\":%lld,"
      "\"cells\":%lld,\"ranks\":%d,\"iterations\":%lld,"
      "\"mae\":%.6g,\"max_abs_diff\":%.6g}\n",
      static_cast<long long>(m), static_cast<long long>(cells), ranks,
      static_cast<long long>(results[0].iterations), mae, max_diff);
  return 0;
}
