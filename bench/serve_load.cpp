// Serve load benchmark: sustained throughput and latency of the
// multi-tenant solve server under a seeded request stream, against the
// serial job-at-a-time baseline (each request solved alone through
// mosaic_predict, the pre-serving way).
//
// Three measurements feed BENCH_serve.json:
//  * closed-loop batched throughput at 1..N worker threads. The
//    headline req_per_sec is the 1-worker point, compared against TWO
//    job-at-a-time baselines run on the same core: the paper's serial
//    per-subdomain predictor (speedup_vs_serial, the acceptance
//    metric) and the PR 6 within-job batched predictor
//    (speedup_vs_serial_batched, reported for transparency — on a
//    single core it is already near the per-row compute floor);
//  * an open-loop Poisson/burst sweep at fractions of the measured
//    capacity, reporting p50/p99 latency vs offered load;
//  * a determinism check: the same seed must reproduce identical
//    per-request iteration counts (cross-request batching is
//    result-invariant, so scheduling cannot change convergence).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ad/kernels.hpp"
#include "ad/program.hpp"
#include "mosaic/scenario_predictor.hpp"
#include "mosaic/subdomain_solver.hpp"
#include "serve/request_gen.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

using namespace mf;

namespace {

serve::RequestGenConfig gen_config(std::uint64_t seed, double rate_hz) {
  serve::RequestGenConfig cfg;
  cfg.seed = seed;
  cfg.rate_hz = rate_hz;
  cfg.burst_factor = 4.0;
  cfg.burst_period_s = 1.0;
  cfg.burst_duty = 0.25;
  cfg.deadline_ms_min = 50;
  cfg.deadline_ms_max = 500;
  cfg.min_cycles = 3;
  cfg.max_cycles = 4;
  return cfg;
}

/// FNV-1a over the raw solution bytes of every result, in request order —
/// the bitwise-identity fingerprint the zoo round-trip CI step compares
/// across server restarts.
std::uint64_t solutions_hash(const std::vector<serve::ServeResult>& results) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&](const void* p, std::size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& r : results) {
    mix(r.solution.data(),
        static_cast<std::size_t>(r.solution.numel()) * sizeof(double));
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke");
  const int64_t n_requests = args.get_int("requests", smoke ? 96 : 256);
  const int max_workers = static_cast<int>(args.get_int("threads", 2));
  const int max_inflight = static_cast<int>(args.get_int("inflight", 8));
  const int64_t pad_to = args.get_int("pad", 8);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20260807));

  // Six tenants (independently seeded SDNets, all m=4) over a geometry
  // zoo of small mixed domains. The m=4 / width-16 regime is where
  // serving economics bite: per-subdomain inference is dispatch-bound
  // (the fixed per-call overhead rivals the GEMM work at this size), so
  // the serial per-subdomain predictor pays ~2x the per-row price of a
  // batched widened replay. On top of that, each request touches ~4
  // distinct batch shapes, so job-at-a-time serving keeps >20 live
  // shapes thrashing the plan cache while the server funnels all
  // traffic through per-tenant plans that stay hot across requests.
  mosaic::SdnetConfig base;
  base.hidden_width = 16;
  base.mlp_depth = 2;
  // MF_SERVE_ZOO: serve trained checkpoints from an on-disk manifest
  // instead of the synthetic random-weight tenants; the geometry specs
  // then carry each model's scenario, so the generated stream is a
  // per-request-sampled scenario mix.
  const char* zoo_env = std::getenv("MF_SERVE_ZOO");
  const bool zoo_from_disk = zoo_env != nullptr && zoo_env[0] != '\0';
  auto make_zoo = [&]() {
    return zoo_from_disk ? serve::make_model_zoo_from_dir(zoo_env)
                         : serve::make_model_zoo({4, 4, 4, 4, 4, 4}, base,
                                                 seed);
  };
  auto zoo = make_zoo();
  std::vector<serve::GeometrySpec> specs;
  if (zoo_from_disk) {
    const int64_t dims[][2] = {{4, 4}, {3, 3}, {4, 3}, {3, 4}, {5, 3}};
    for (std::size_t i = 0; i < zoo.size(); ++i) {
      const auto& d = dims[i % 5];
      specs.push_back({static_cast<int>(i), zoo[i].m, d[0] * zoo[i].m,
                       d[1] * zoo[i].m, zoo[i].scenario});
    }
  } else {
    specs = {
        {0, 4, 16, 16}, {1, 4, 12, 12}, {2, 4, 16, 12},
        {3, 4, 12, 16}, {4, 4, 20, 12}, {5, 4, 16, 16},
    };
  }

  auto make_requests = [&](double rate_hz) {
    serve::RequestGenerator gen(specs, gen_config(seed, rate_hz));
    return gen.generate(n_requests);
  };
  const std::vector<serve::SolveRequest> requests = make_requests(200.0);

  std::printf("== serve_load: multi-tenant solve server ==\n");
  std::printf("requests=%lld tenants=%zu specs=%zu inflight=%d\n\n",
              static_cast<long long>(n_requests), zoo.size(), specs.size(),
              max_inflight);

  // --- Job-at-a-time baselines: each request alone, in order. Two
  // flavours of the pre-serving status quo:
  //  * serial: the paper's per-subdomain predictor (one network call per
  //    subdomain, MfpOptions::batched = false) — the headline
  //    speedup_vs_serial baseline;
  //  * batched: within-job phase batching (PR 6) but still one job at a
  //    time, reported as speedup_vs_serial_batched. On a single core
  //    this one is already near the per-row compute floor, so the gap
  //    over it isolates plan-capture amortization alone.
  auto run_job_at_a_time = [&](bool batched, std::size_t limit) {
    auto solo_zoo = make_zoo();
    const std::size_t n = std::min(limit, requests.size());
    const double t0 = util::wall_seconds();
    for (std::size_t i = 0; i < n; ++i) {
      const auto& req = requests[i];
      mosaic::ScenarioSolveOptions opts;
      opts.mfp.max_iters = req.max_iters;
      opts.mfp.tol = req.tol;
      opts.mfp.batched = batched;
      const auto& solver =
          *solo_zoo[static_cast<std::size_t>(req.zoo_index)].solver;
      // Poisson requests delegate to mosaic_predict inside (bitwise the
      // pre-scenario baseline); scenario requests condition on req.field.
      mosaic::mosaic_predict_scenario(solver, req.field, req.nx_cells,
                                      req.ny_cells, req.boundary, opts);
    }
    return static_cast<double>(n) / (util::wall_seconds() - t0);
  };
  auto run_server = [&](int workers, serve::SchedulerCounters* out_counters,
                        double* out_p50, double* out_p99) {
    serve::ServeOptions opts = serve::serve_options_from_env();
    opts.pad_to = pad_to;
    opts.threads = workers;
    opts.max_inflight = max_inflight;
    opts.realtime = false;
    serve::SolveServer server(zoo, opts);
    const double t0 = util::wall_seconds();
    server.run(requests);
    const double dt = util::wall_seconds() - t0;
    if (out_counters) *out_counters = server.stats().counters();
    if (out_p50) *out_p50 = server.stats().latency_percentile_ms(50);
    if (out_p99) *out_p99 = server.stats().latency_percentile_ms(99);
    return static_cast<double>(n_requests) / dt;
  };

  // Untimed warm-up: page in the allocator/kernels before any timed
  // window (the measured windows are short enough that first-touch costs
  // would otherwise skew whichever baseline runs first).
  run_job_at_a_time(true, 16);
  run_job_at_a_time(false, 16);

  // The timed windows are short (~0.1 s), so a machine-speed wobble in
  // one window can distort a throughput ratio badly. Interleave repeated
  // windows of all three measurements and take per-measurement medians:
  // each repetition sees roughly the same machine conditions, and the
  // median discards a throttled outlier window.
  const int reps = static_cast<int>(args.get_int("reps", 3));
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  std::vector<double> serial_samples, serial_batched_samples, server_samples;
  serve::SchedulerCounters c1;
  for (int rep = 0; rep < reps; ++rep) {
    serial_samples.push_back(run_job_at_a_time(false, requests.size()));
    serial_batched_samples.push_back(
        run_job_at_a_time(true, requests.size()));
    server_samples.push_back(run_server(1, &c1, nullptr, nullptr));
  }
  const double serial_rps = median(serial_samples);
  const double serial_batched_rps = median(serial_batched_samples);
  std::printf(
      "job-at-a-time (median of %d): serial %.1f req/s, batched %.1f req/s\n",
      reps, serial_rps, serial_batched_rps);

  // --- Closed-loop batched server, 1..N worker threads. ---
  util::Table table({"workers", "req/s", "speedup vs serial", "shared batches",
                     "batched rows"});
  struct Point {
    std::string kind;
    double x = 0, rps = 0, p50 = 0, p99 = 0;
    std::uint64_t shared = 0;
  };
  std::vector<Point> points;
  const double batched_rps = median(server_samples);
  const std::uint64_t shared_batches = c1.shared_batches;
  const std::uint64_t batched_rows = c1.batched_rows;
  std::printf(
      "  [1w breakdown] gather %.3fs predict %.3fs scatter %.3fs "
      "finalize %.3fs | batches %llu pad_rows %llu ticks %llu\n",
      c1.gather_seconds, c1.predict_seconds, c1.scatter_seconds,
      c1.finalize_seconds, static_cast<unsigned long long>(c1.batches),
      static_cast<unsigned long long>(c1.pad_rows),
      static_cast<unsigned long long>(c1.ticks));
  points.push_back({"closed_loop", 1.0, batched_rps, 0, 0, shared_batches});
  table.add_row({"1", util::format_double(batched_rps, 1),
                 util::format_double(batched_rps / serial_rps, 3),
                 std::to_string(c1.shared_batches),
                 std::to_string(c1.batched_rows)});
  for (int workers = 2; workers <= max_workers; ++workers) {
    serve::SchedulerCounters c;
    double p50 = 0, p99 = 0;
    const double rps = run_server(workers, &c, &p50, &p99);
    points.push_back({"closed_loop", static_cast<double>(workers), rps, p50,
                      p99, c.shared_batches});
    table.add_row({std::to_string(workers), util::format_double(rps, 1),
                   util::format_double(rps / serial_rps, 3),
                   std::to_string(c.shared_batches),
                   std::to_string(c.batched_rows)});
  }
  table.print();
  std::printf("\n");

  // --- Open-loop latency vs offered load (1 worker). ---
  double p50_ms = 0, p99_ms = 0;
  {
    util::Table lt({"offered (x capacity)", "req/s offered", "p50 ms", "p99 ms",
                    "deadline misses"});
    for (const double frac : {0.5, 0.9, 1.5}) {
      const double rate = frac * batched_rps;
      auto open_requests = make_requests(rate);
      serve::ServeOptions opts = serve::serve_options_from_env();
      opts.pad_to = pad_to;
      opts.threads = 1;
      opts.max_inflight = max_inflight;
      opts.realtime = true;
      serve::SolveServer server(zoo, opts);
      server.run(open_requests);
      const double p50 = server.stats().latency_percentile_ms(50);
      const double p99 = server.stats().latency_percentile_ms(99);
      if (frac == 0.9) {
        p50_ms = p50;
        p99_ms = p99;
      }
      points.push_back({"open_loop", frac, rate, p50, p99,
                        server.stats().counters().shared_batches});
      lt.add_row({util::format_double(frac, 2), util::format_double(rate, 1),
                  util::format_double(p50, 2), util::format_double(p99, 2),
                  std::to_string(server.stats().counters().deadline_misses)});
    }
    lt.print();
    std::printf("\n");
  }

  // --- Determinism: same seed, twice, identical iteration counts AND
  // bitwise-identical solutions (hash over every solution grid — the
  // fingerprint the zoo round-trip CI step compares across restarts). ---
  bool deterministic = true;
  std::uint64_t solution_hash = 0;
  {
    auto run_once = [&]() {
      serve::ServeOptions opts = serve::serve_options_from_env();
      opts.pad_to = pad_to;
      opts.threads = max_workers;
      opts.max_inflight = max_inflight;
      opts.realtime = false;
      serve::SolveServer server(zoo, opts);
      auto results = server.run(requests);
      std::vector<int64_t> iters;
      iters.reserve(results.size());
      for (const auto& r : results) iters.push_back(r.record.iterations);
      return std::make_pair(std::move(iters), solutions_hash(results));
    };
    const auto a = run_once();
    const auto b = run_once();
    deterministic = a == b;
    solution_hash = a.second;
    std::printf("deterministic rerun (workers=%d): %s (solutions %016llx)\n",
                max_workers,
                deterministic ? "identical iterations and solutions"
                              : "MISMATCH",
                static_cast<unsigned long long>(solution_hash));
  }

  const mosaic::InferCacheStats ic = mosaic::infer_cache_stats();
  std::printf(
      "\nBENCH_JSON {\"bench\":\"serve_load\",\"requests\":%lld,"
      "\"tenants\":%zu,\"inflight\":%d,\"threads\":%d,\"openmp\":%s,"
      "\"smoke\":%s,\"req_per_sec\":%.6g,\"serial_req_per_sec\":%.6g,"
      "\"serial_batched_req_per_sec\":%.6g,"
      "\"speedup_vs_serial\":%.4g,\"speedup_vs_serial_batched\":%.4g,"
      "\"p50_ms\":%.6g,\"p99_ms\":%.6g,"
      "\"shared_batches\":%llu,\"batched_rows\":%llu,\"deterministic\":%s,"
      "\"zoo_source\":\"%s\",\"solution_hash\":\"%016llx\","
      "\"cache_exact_hits\":%llu,\"cache_widened_hits\":%llu,"
      "\"cache_chunked_hits\":%llu,\"cache_widen_remainder_rows\":%llu,"
      "\"cache_misses\":%llu,\"cache_captures\":%llu,"
      "\"cache_evictions\":%llu,\"cache_retired\":%llu}\n",
      static_cast<long long>(n_requests), zoo.size(), max_inflight,
      ad::kernels::max_threads(),
      ad::kernels::openmp_enabled() ? "true" : "false",
      smoke ? "true" : "false", batched_rps, serial_rps, serial_batched_rps,
      batched_rps / serial_rps, batched_rps / serial_batched_rps, p50_ms,
      p99_ms,
      static_cast<unsigned long long>(shared_batches),
      static_cast<unsigned long long>(batched_rows),
      deterministic ? "true" : "false",
      zoo_from_disk ? "disk" : "synthetic",
      static_cast<unsigned long long>(solution_hash),
      static_cast<unsigned long long>(ic.exact_hits),
      static_cast<unsigned long long>(ic.widened_hits),
      static_cast<unsigned long long>(ic.chunked_hits),
      static_cast<unsigned long long>(ic.widen_remainder_rows),
      static_cast<unsigned long long>(ic.misses),
      static_cast<unsigned long long>(ic.captures),
      static_cast<unsigned long long>(ic.evictions),
      static_cast<unsigned long long>(ic.retired));
  return deterministic ? 0 : 1;
}
