// Figure 5: SDNet inference (a) and training-step (b) performance vs
// batch size, comparing the input-concat baseline (eq. (6)) with the
// split-layer optimized model (eq. (8)).
//
// The paper's finding: the optimized model is faster at every batch size
// and scales to much larger batches before exhausting memory (baseline
// OOMs at 10k points on a V100; optimized reaches 50k). We report
// points/second and the peak autodiff memory per configuration.
#include <cstdio>
#include <vector>

#include "gp/dataset.hpp"
#include "mosaic/trainer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using namespace mf;

struct Measurement {
  double seconds;
  std::size_t peak_bytes;
};

Measurement time_inference(const mosaic::Sdnet& net, const ad::Tensor& g,
                           const ad::Tensor& x, int trials) {
  auto& mt = ad::MemoryTracker::instance();
  mt.reset_peak();
  const std::size_t base = mt.peak_bytes();
  const double t0 = util::thread_cpu_seconds();
  for (int t = 0; t < trials; ++t) net.predict(g, x);
  return {(util::thread_cpu_seconds() - t0) / trials, mt.peak_bytes() - base};
}

Measurement time_training_step(mosaic::Sdnet& net, const gp::SdnetBatch& batch,
                               int trials) {
  auto& mt = ad::MemoryTracker::instance();
  mt.reset_peak();
  const std::size_t base = mt.peak_bytes();
  mosaic::TrainConfig tc;
  const double t0 = util::thread_cpu_seconds();
  for (int t = 0; t < trials; ++t) {
    net.zero_grad();
    mosaic::training_step(net, batch, tc);
  }
  return {(util::thread_cpu_seconds() - t0) / trials, mt.peak_bytes() - base};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const bool paper = args.get_bool("paper-scale");
  const int64_t m = args.get_int("m", 16);
  const int trials = static_cast<int>(args.get_int("trials", 3));
  std::vector<int64_t> inference_batches =
      paper ? std::vector<int64_t>{100, 1000, 10000, 50000}
            : std::vector<int64_t>{100, 1000, 5000, 20000};
  std::vector<int64_t> training_batches =
      paper ? std::vector<int64_t>{100, 320, 1000} : std::vector<int64_t>{64, 160, 320};

  util::Rng rng(6);
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = 4 * m;
  cfg.hidden_width = 64;
  cfg.mlp_depth = 4;
  cfg.use_split_embedding = true;
  mosaic::Sdnet optimized(cfg, rng);
  cfg.use_split_embedding = false;
  mosaic::Sdnet baseline(cfg, rng);

  gp::LaplaceDatasetGenerator gen(m);
  auto bvp = gen.generate();

  std::printf("== Figure 5a: inference time vs batch size (points) ==\n\n");
  util::Table ta({"points", "baseline s", "optimized s", "speedup",
                  "baseline MB", "optimized MB"});
  int64_t infer_points = 0;
  Measurement infer_base{}, infer_opt{};
  for (int64_t q : inference_batches) {
    ad::Tensor g = ad::Tensor::zeros({1, 4 * m});
    for (int64_t k = 0; k < 4 * m; ++k) g.flat(k) = bvp.boundary[static_cast<std::size_t>(k)];
    ad::Tensor x = ad::Tensor::zeros({1, q, 2});
    util::Rng qr(7);
    for (int64_t k = 0; k < x.numel(); ++k) x.flat(k) = qr.uniform(0, 1);
    auto mb = time_inference(baseline, g, x, trials);
    auto mo = time_inference(optimized, g, x, trials);
    infer_points = q;
    infer_base = mb;
    infer_opt = mo;
    ta.add_row({std::to_string(q), util::format_double(mb.seconds),
                util::format_double(mo.seconds),
                util::format_double(mb.seconds / mo.seconds, 3),
                util::format_double(static_cast<double>(mb.peak_bytes) / 1048576.0, 4),
                util::format_double(static_cast<double>(mo.peak_bytes) / 1048576.0, 4)});
  }
  ta.print();

  std::printf("\n== Figure 5b: training-step time vs batch size ==\n");
  std::printf("(batch = domains x 32 points; PDE loss on)\n\n");
  util::Table tb({"points", "baseline s", "optimized s", "speedup",
                  "baseline MB", "optimized MB"});
  int64_t train_points = 0;
  Measurement train_base{}, train_opt{};
  for (int64_t pts : training_batches) {
    const int64_t domains = std::max<int64_t>(1, pts / 32);
    auto bvps = gen.generate_many(domains);
    auto batch = gen.make_batch(bvps, 16, 16);
    auto mb = time_training_step(baseline, batch, trials);
    auto mo = time_training_step(optimized, batch, trials);
    train_points = domains * 32;
    train_base = mb;
    train_opt = mo;
    tb.add_row({std::to_string(domains * 32), util::format_double(mb.seconds),
                util::format_double(mo.seconds),
                util::format_double(mb.seconds / mo.seconds, 3),
                util::format_double(static_cast<double>(mb.peak_bytes) / 1048576.0, 4),
                util::format_double(static_cast<double>(mo.peak_bytes) / 1048576.0, 4)});
  }
  tb.print();
  std::printf("\nShape check vs paper: optimized faster at every batch size, "
              "gap widening with batch; optimized peak memory ~O(N + q) vs "
              "baseline ~O(N*q).\n");
  // Largest-batch points of both panels, for trend tracking in
  // BENCH_fig5.json (higher optimized points/s, lower peak bytes = good).
  std::printf(
      "\nBENCH_JSON {\"bench\":\"fig5_batch_scaling\",\"m\":%lld,"
      "\"trials\":%d,\"infer_points\":%lld,"
      "\"infer_baseline_pts_per_sec\":%.6g,"
      "\"infer_optimized_pts_per_sec\":%.6g,\"infer_speedup\":%.4g,"
      "\"infer_baseline_peak_bytes\":%zu,\"infer_optimized_peak_bytes\":%zu,"
      "\"train_points\":%lld,\"train_baseline_pts_per_sec\":%.6g,"
      "\"train_optimized_pts_per_sec\":%.6g,\"train_speedup\":%.4g,"
      "\"train_baseline_peak_bytes\":%zu,\"train_optimized_peak_bytes\":%zu}\n",
      static_cast<long long>(m), trials, static_cast<long long>(infer_points),
      static_cast<double>(infer_points) / infer_base.seconds,
      static_cast<double>(infer_points) / infer_opt.seconds,
      infer_base.seconds / infer_opt.seconds, infer_base.peak_bytes,
      infer_opt.peak_bytes, static_cast<long long>(train_points),
      static_cast<double>(train_points) / train_base.seconds,
      static_cast<double>(train_points) / train_opt.seconds,
      train_base.seconds / train_opt.seconds, train_base.peak_bytes,
      train_opt.peak_bytes);
  return 0;
}
