// Figure 9b: weak scaling of the distributed MF predictor. Each rank owns
// a fixed-size processor subdomain (paper: 1024x512 resolution per GPU,
// 2000 iterations); the global domain grows with the rank count.
//
// Paper finding: compute time stays flat (only overlap averaging grows);
// communication grows ~4x from 2 to 8 ranks as the neighbor count rises
// from 1-3 to 8, then plateaus — a latency effect.
//
// Runs on the rank runtime: in-process threads by default, real MPI
// processes under `mpirun -np N` (built with -DMF_WITH_MPI=ON).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "gp/dataset.hpp"
#include "mosaic/distributed_predictor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  comm::RankLauncher launcher(argc, argv);
  const bool paper = args.get_bool("paper-scale");
  const int64_t m = args.get_int("m", paper ? 32 : 8);
  // Per-rank block (cells): paper 1024 x 512 resolution at m=32.
  const int64_t block_x = args.get_int("block-x", paper ? 1024 : 64);
  const int64_t block_y = args.get_int("block-y", paper ? 512 : 32);
  const int64_t iters = args.get_int("iters", paper ? 2000 : 200);
  std::vector<int> rank_counts = paper ? std::vector<int>{1, 2, 4, 8, 16, 32}
                                       : std::vector<int>{1, 2, 4, 8, 16};
  rank_counts = launcher.sweep_rank_counts(rank_counts);

  if (launcher.is_root()) {
    std::printf("== Figure 9b: weak scaling, %ld x %ld cells per rank, %ld "
                "iterations (%s backend) ==\n\n", block_x, block_y, iters,
                launcher.backend_name());
  }

  mosaic::HarmonicKernelSolver solver(m);

  util::Table table({"ranks", "domain", "infer s", "halo s (mdl)",
                     "halo msgs", "IO s", "device s"});
  for (int ranks : rank_counts) {
    comm::CartesianGrid grid(ranks);
    const int64_t cells_x = block_x * grid.px();
    const int64_t cells_y = block_y * grid.py();
    // Weak scaling keeps per-rank work fixed; skip the reference solve on
    // big domains and just run the fixed iteration budget.
    gp::LaplaceDatasetGenerator gen(m, {}, 55);
    gp::GpSampler sampler(
        gp::PeriodicRbfKernel{0.3, 0.8},
        gp::unit_circle_points(linalg::perimeter_size(cells_x + 1, cells_y + 1)));
    util::Rng brng(55);
    auto boundary = sampler.sample(brng);

    mosaic::MfpOptions opts;
    opts.max_iters = iters;
    opts.tol = 0;

    struct Agg {
      double infer = 0, halo = 0, io = 0, device = 0, wall = 0;
      std::uint64_t msgs = 0;
    };
    Agg agg;
    launcher.run(ranks, [&](comm::Comm& c) {
      bench::RankClock clock(launcher.backend());
      auto r = mosaic::distributed_mosaic_predict(c, grid, solver, cells_x,
                                                  cells_y, boundary, opts);
      // One collective over all critical-path metrics; named slots so the
      // pack and unpack cannot silently drift apart.
      enum Slot { kInfer, kHalo, kIo, kDevice, kWall, kMsgs, kNumSlots };
      double vals[kNumSlots];
      vals[kInfer] = r.timings.inference_seconds;
      vals[kHalo] = r.timings.sendrecv_modeled_seconds;
      vals[kIo] = r.timings.boundary_io_seconds;
      vals[kDevice] = clock.device();
      vals[kWall] = clock.wall();
      vals[kMsgs] = static_cast<double>(c.stats().sendrecv.messages);
      c.allreduce_max(vals, kNumSlots);
      if (c.rank() == 0) {
        agg.infer = vals[kInfer];
        agg.halo = vals[kHalo];
        agg.io = vals[kIo];
        agg.device = vals[kDevice];
        agg.wall = vals[kWall];
        agg.msgs = static_cast<std::uint64_t>(vals[kMsgs]);
      }
    });
    if (!launcher.is_root()) continue;
    table.add_row({std::to_string(ranks),
                   std::to_string(cells_x) + " x " + std::to_string(cells_y),
                   util::format_double(agg.infer, 4),
                   util::format_double(agg.halo, 4), std::to_string(agg.msgs),
                   util::format_double(agg.io, 4),
                   util::format_double(agg.device, 4)});
    // Stable machine-readable line per rank count for BENCH_*.json trend
    // tracking across PRs. Keep the key set append-only.
    std::printf(
        "BENCH_JSON {\"bench\":\"fig9b_weak_scaling\",\"backend\":\"%s\","
        "\"ranks\":%d,\"m\":%lld,\"block_x\":%lld,\"block_y\":%lld,"
        "\"iters\":%lld,\"halo_msgs\":%llu,\"wall_seconds\":%.6g,"
        "\"device_seconds\":%.6g,\"modeled_halo_seconds\":%.6g}\n",
        launcher.backend_name(), ranks, static_cast<long long>(m),
        static_cast<long long>(block_x), static_cast<long long>(block_y),
        static_cast<long long>(iters),
        static_cast<unsigned long long>(agg.msgs), agg.wall, agg.device,
        agg.halo);
  }
  if (launcher.is_root()) {
    table.print();
    std::printf("\nShape check vs paper: per-rank compute stays ~flat; halo "
                "communication grows with the neighbor count (1-3 neighbors "
                "at 2 ranks -> 8 at >= 9 ranks) and then plateaus — the "
                "paper's latency-dominated regime.\n");
  }
  return 0;
}
