// Figure 9b: weak scaling of the distributed MF predictor. Each rank owns
// a fixed-size processor subdomain (paper: 1024x512 resolution per GPU,
// 2000 iterations); the global domain grows with the rank count.
//
// Paper finding: compute time stays flat (only overlap averaging grows);
// communication grows ~4x from 2 to 8 ranks as the neighbor count rises
// from 1-3 to 8, then plateaus — a latency effect.
#include <cstdio>
#include <vector>

#include "comm/world.hpp"
#include "gp/dataset.hpp"
#include "mosaic/distributed_predictor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const bool paper = args.get_bool("paper-scale");
  const int64_t m = args.get_int("m", paper ? 32 : 8);
  // Per-rank block (cells): paper 1024 x 512 resolution at m=32.
  const int64_t block_x = args.get_int("block-x", paper ? 1024 : 64);
  const int64_t block_y = args.get_int("block-y", paper ? 512 : 32);
  const int64_t iters = args.get_int("iters", paper ? 2000 : 200);
  std::vector<int> rank_counts = paper ? std::vector<int>{1, 2, 4, 8, 16, 32}
                                       : std::vector<int>{1, 2, 4, 8, 16};

  std::printf("== Figure 9b: weak scaling, %ld x %ld cells per rank, %ld "
              "iterations ==\n\n", block_x, block_y, iters);

  mosaic::HarmonicKernelSolver solver(m);

  util::Table table({"ranks", "domain", "infer s", "halo s (mdl)",
                     "halo msgs", "IO s", "device s"});
  for (int ranks : rank_counts) {
    comm::CartesianGrid grid(ranks);
    const int64_t cells_x = block_x * grid.px();
    const int64_t cells_y = block_y * grid.py();
    // Weak scaling keeps per-rank work fixed; skip the reference solve on
    // big domains and just run the fixed iteration budget.
    gp::LaplaceDatasetGenerator gen(m, {}, 55);
    gp::GpSampler sampler(
        gp::PeriodicRbfKernel{0.3, 0.8},
        gp::unit_circle_points(linalg::perimeter_size(cells_x + 1, cells_y + 1)));
    util::Rng brng(55);
    auto boundary = sampler.sample(brng);

    mosaic::MfpOptions opts;
    opts.max_iters = iters;
    opts.tol = 0;

    comm::World world(ranks);
    std::vector<mosaic::DistMfpResult> results(static_cast<std::size_t>(ranks));
    std::vector<double> device_seconds(static_cast<std::size_t>(ranks));
    std::vector<std::uint64_t> halo_msgs(static_cast<std::size_t>(ranks));
    world.run([&](comm::Communicator& c) {
      const double c0 = util::thread_cpu_seconds();
      results[static_cast<std::size_t>(c.rank())] = mosaic::distributed_mosaic_predict(
          c, grid, solver, cells_x, cells_y, boundary, opts);
      device_seconds[static_cast<std::size_t>(c.rank())] =
          util::thread_cpu_seconds() - c0;
      halo_msgs[static_cast<std::size_t>(c.rank())] = c.stats().sendrecv.messages;
    });
    double infer = 0, halo = 0, io = 0, device = 0;
    std::uint64_t msgs = 0;
    for (int r = 0; r < ranks; ++r) {
      const auto& t = results[static_cast<std::size_t>(r)].timings;
      infer = std::max(infer, t.inference_seconds);
      halo = std::max(halo, t.sendrecv_modeled_seconds);
      io = std::max(io, t.boundary_io_seconds);
      device = std::max(device, device_seconds[static_cast<std::size_t>(r)]);
      msgs = std::max(msgs, halo_msgs[static_cast<std::size_t>(r)]);
    }
    table.add_row({std::to_string(ranks),
                   std::to_string(cells_x) + " x " + std::to_string(cells_y),
                   util::format_double(infer, 4), util::format_double(halo, 4),
                   std::to_string(msgs), util::format_double(io, 4),
                   util::format_double(device, 4)});
  }
  table.print();
  std::printf("\nShape check vs paper: per-rank compute stays ~flat; halo "
              "communication grows with the neighbor count (1-3 neighbors at "
              "2 ranks -> 8 at >= 9 ranks) and then plateaus — the paper's "
              "latency-dominated regime.\n");
  return 0;
}
