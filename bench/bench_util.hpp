// Shared helpers for the scaling benches.
#pragma once

#include "comm/runtime.hpp"
#include "util/timing.hpp"

namespace mf::bench {

/// Per-rank clock for scaling benches. Thread ranks timeshare this
/// machine, so per-thread CPU time is each rank's virtual device time;
/// MPI ranks are real processes with full OpenMP teams whose workers the
/// thread-CPU clock cannot see, so there the device metric is measured
/// wall time. (Per-op infer/IO breakdowns inside the predictor stay
/// thread-CPU and undercount under MPI + OpenMP; wall/device are the
/// authoritative measured numbers there.)
class RankClock {
 public:
  explicit RankClock(comm::Backend backend)
      : mpi_(backend == comm::Backend::kMpi),
        cpu0_(util::thread_cpu_seconds()),
        wall0_(util::wall_seconds()) {}

  double wall() const { return util::wall_seconds() - wall0_; }
  double device() const {
    return mpi_ ? wall() : util::thread_cpu_seconds() - cpu0_;
  }

 private:
  bool mpi_;
  double cpu0_;
  double wall0_;
};

}  // namespace mf::bench
