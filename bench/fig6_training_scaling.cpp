// Figure 6: data-parallel SDNet training across rank counts.
//  (a) validation MSE vs epoch per rank count,
//  (b) validation MSE vs (virtual device) runtime,
//  (c) time to reach a target MSE vs rank count.
//
// Strong scaling: the global dataset is fixed and sharded across ranks,
// so per-rank iterations per epoch shrink with rank count. LR follows the
// sqrt batch-scaling rule and warmup scales linearly (Sec. 5.2). Device
// time is per-thread CPU time (ranks timeshare one core here), plus the
// alpha-beta-modeled allreduce time.
#include <cstdio>
#include <vector>

#include "ad/arena.hpp"
#include "ad/kernels.hpp"
#include "ad/pool.hpp"
#include "comm/world.hpp"
#include "mosaic/trainer.hpp"
#include "optim/optimizers.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const bool paper = args.get_bool("paper-scale");
  const int64_t m = args.get_int("m", 8);
  const int64_t epochs = args.get_int("epochs", paper ? 500 : 16);
  const int64_t n_bvps = args.get_int("bvps", paper ? 18000 : 96);
  std::vector<int> rank_counts = paper ? std::vector<int>{1, 2, 4, 8, 16, 32}
                                       : std::vector<int>{1, 2, 4, 8};
  if (args.has("max-ranks")) {
    rank_counts.clear();
    for (int r = 1; r <= args.get_int("max-ranks", 8); r *= 2) rank_counts.push_back(r);
  }

  std::printf("== Figure 6: multi-rank training performance & convergence ==\n");
  std::printf("%ld BVPs total (sharded), %ld epochs, sqrt-LR scaling, LAMB\n\n",
              n_bvps, epochs);

  gp::LaplaceDatasetGenerator gen(m, {}, 2024);
  auto all = gen.generate_many(n_bvps);
  auto val = gen.generate_many(16);

  mosaic::SdnetConfig net_cfg;
  net_cfg.boundary_size = 4 * m;
  net_cfg.hidden_width = 64;
  net_cfg.mlp_depth = 4;

  struct RunSummary {
    int ranks;
    std::vector<mosaic::EpochStats> history;
    double device_seconds;  // max over ranks of (cpu + modeled comm)
  };
  std::vector<RunSummary> runs;

  for (int ranks : rank_counts) {
    comm::World world(ranks);
    std::vector<std::vector<mosaic::EpochStats>> histories(
        static_cast<std::size_t>(ranks));
    world.run([&](comm::Comm& c) {
      util::Rng rng(42);
      mosaic::Sdnet net(net_cfg, rng);
      std::vector<gp::SolvedBvp> shard;
      for (std::size_t i = static_cast<std::size_t>(c.rank()); i < all.size();
           i += static_cast<std::size_t>(ranks)) {
        shard.push_back(all[i]);
      }
      mosaic::TrainConfig cfg;
      cfg.epochs = epochs;
      cfg.batch_size = 8;
      cfg.q_data = 32;
      cfg.q_colloc = 16;
      cfg.max_lr = 5e-3;
      cfg.pde_loss_weight = 0.3;
      cfg.optimizer = mosaic::OptimizerKind::kLamb;
      gp::LaplaceDatasetGenerator local_gen(m, {}, 7 + static_cast<unsigned>(c.rank()));
      histories[static_cast<std::size_t>(c.rank())] = mosaic::train_sdnet(
          net, shard, val, cfg, local_gen, ranks > 1 ? &c : nullptr);
    });
    RunSummary run{ranks, histories[0], 0};
    for (const auto& h : histories) {
      run.device_seconds =
          std::max(run.device_seconds, h.back().cpu_seconds + h.back().comm_seconds);
    }
    runs.push_back(std::move(run));
    std::printf("ranks %2d done: final val MSE %.5f, device time %.1fs\n", ranks,
                runs.back().history.back().val_mse, runs.back().device_seconds);
  }

  std::printf("\n-- Fig 6a: validation MSE vs epoch --\n\n");
  util::Table ta({"epoch", "1 rank", "2", "4", "8", "16", "32"});
  const std::size_t stride = std::max<std::size_t>(1, static_cast<std::size_t>(epochs) / 8);
  for (std::size_t e = 0; e < static_cast<std::size_t>(epochs); e += stride) {
    std::vector<std::string> row{std::to_string(e)};
    for (const auto& run : runs) {
      row.push_back(e < run.history.size()
                        ? util::format_double(run.history[e].val_mse)
                        : "-");
    }
    ta.add_row(row);
  }
  ta.print();

  std::printf("\n-- Fig 6b/6c: device time per run and time-to-target --\n\n");
  // Target: the best MSE achieved by the 1-rank run (relative criterion,
  // analogous to the paper's 2.5e-6 target for its converged model).
  double target = 1e300;
  for (const auto& s : runs[0].history) target = std::min(target, s.val_mse);
  target *= 1.25;
  util::Table tb({"ranks", "final val MSE", "device s", "modeled comm s",
                  "time to target s", "speedup"});
  double t1 = -1;
  for (const auto& run : runs) {
    double tt = -1;
    for (const auto& s : run.history) {
      const double elapsed = s.cpu_seconds + s.comm_seconds;
      if (s.val_mse <= target) {
        tt = elapsed;
        break;
      }
    }
    // Scale per-epoch device time: each rank trains concurrently.
    if (run.ranks == 1 && tt > 0) t1 = tt;
    tb.add_row({std::to_string(run.ranks),
                util::format_double(run.history.back().val_mse),
                util::format_double(run.device_seconds, 3),
                util::format_double(run.history.back().comm_seconds, 3),
                tt > 0 ? util::format_double(tt, 3) : "not reached",
                (tt > 0 && t1 > 0) ? util::format_double(t1 / tt, 3) : "-"});
  }
  tb.print();
  std::printf("\nShape check vs paper: per-epoch device time drops ~1/ranks; "
              "MSE-vs-epoch curves nearly overlap (within ~1.5e-6 in the "
              "paper); time-to-target shrinks with ranks (12x at 32 GPUs in "
              "the paper).\n");

  // Steady-state profile of the three-backward-pass training step (single
  // rank): after a short warmup the payload pool and tape arena serve the
  // eager step without touching the heap, and the compiled program (PR 4)
  // replays the whole step with no recording at all. Both rates and the
  // program's capture cost are tracked in BENCH_fig6.json across PRs.
  {
    util::Rng rng(42);
    mosaic::Sdnet net(net_cfg, rng);
    gp::LaplaceDatasetGenerator sgen(m, {}, 99);
    auto bvps = sgen.generate_many(8);
    mosaic::TrainConfig cfg;
    cfg.pde_loss_weight = 0.3;
    optim::Adam opt(net.parameters(), 1e-3);
    const int64_t warmup = 3, measured = 24;

    // Eager reference: the pre-PR-4 path (program hatch closed). With
    // MF_DISABLE_PROGRAM=1 the "compiled" window below is eager too, so
    // the hatch is measured end to end.
    const bool prev_prog = ad::program_set_enabled(false);
    auto eager_step = [&] {
      auto batch = sgen.make_batch(bvps, 32, 16);
      net.zero_grad();
      mosaic::training_step(net, batch, cfg);
      opt.step();
    };
    for (int64_t i = 0; i < warmup; ++i) eager_step();
    double t0 = util::wall_seconds();
    for (int64_t i = 0; i < measured; ++i) eager_step();
    const double eager_sps =
        static_cast<double>(measured) / (util::wall_seconds() - t0);

    // Compiled path: capture once (optimizer folded into the plan),
    // replay the whole iteration — forward, three backwards, Adam — every
    // step. Under MF_DISABLE_PROGRAM run() steps the optimizer eagerly,
    // so the hatch still measures the full iteration.
    ad::program_set_enabled(prev_prog);
    mosaic::CompiledTrainStep cstep(net, cfg, &opt);
    auto step = [&] {
      auto batch = sgen.make_batch(bvps, 32, 16);
      cstep.run(batch);
    };
    for (int64_t i = 0; i < warmup; ++i) step();
    const ad::PoolStats p0 = ad::PayloadPool::stats();
    t0 = util::wall_seconds();
    for (int64_t i = 0; i < measured; ++i) step();
    const double seconds = util::wall_seconds() - t0;
    const ad::PoolStats p1 = ad::PayloadPool::stats();
    const double replay_sps = static_cast<double>(measured) / seconds;
    const double allocs_per_step =
        static_cast<double>((p1.fresh_allocs() + p1.adopted) -
                            (p0.fresh_allocs() + p0.adopted)) /
        static_cast<double>(measured);
    const double hit_rate =
        static_cast<double>(p1.hits - p0.hits) /
        static_cast<double>((p1.hits - p0.hits) + (p1.misses - p0.misses) + 1e-300);
    const auto arena = ad::this_thread_tape_arena()->stats();
    const auto prog = cstep.program().stats();
    std::printf(
        "\nBENCH_JSON {\"bench\":\"fig6_training_scaling\",\"m\":%lld,"
        "\"threads\":%d,\"openmp\":%s,\"clock\":\"wall\",\"ranks\":1,"
        "\"batch\":8,\"q_data\":32,\"q_colloc\":16,"
        "\"steps_per_sec\":%.6g,\"payload_allocs_per_step\":%.6g,"
        "\"pool_hit_rate\":%.6g,\"pool_enabled\":%s,"
        "\"tape_high_water_bytes\":%zu,"
        "\"program_enabled\":%s,\"eager_steps_per_sec\":%.6g,"
        "\"replay_steps_per_sec\":%.6g,\"capture_ms\":%.6g,"
        "\"plan_steps\":%zu,\"plan_slots\":%zu,"
        "\"plan_arena_bytes\":%zu,\"plan_pinned_bytes\":%zu,"
        "\"fused_steps\":%zu,\"fused_ops\":%zu,\"optim_steps\":%zu,"
        "\"compute_dtype\":\"%s\",\"cast_steps\":%zu}\n",
        static_cast<long long>(m), ad::kernels::max_threads(),
        ad::kernels::openmp_enabled() ? "true" : "false", replay_sps,
        allocs_per_step, hit_rate,
        ad::PayloadPool::enabled() ? "true" : "false", arena.high_water,
        ad::program_enabled() ? "true" : "false", eager_sps, replay_sps,
        prog.capture_ms, prog.steps, prog.slots, prog.arena_bytes,
        prog.pinned_bytes, prog.fused_steps, prog.fused_ops,
        prog.optim_steps, ad::dtype_name(ad::compute_dtype()),
        prog.cast_steps);
  }
  return 0;
}
