// Table 3: memory allocated during a training step with and without the
// PDE loss, as a function of the number of domains (boundary conditions)
// in the batch. The PDE loss retains the autograd graph needed for the
// three backward passes, inflating peak memory by a large factor — this
// is the paper's motivation for data-parallel training.
//
// Paper rows: 5 / 320 / 640 domains on a 16 GB V100; 640 with PDE loss is
// OOM. We print measured payload bytes of the autodiff engine and mark
// rows exceeding a configurable budget (--budget-gb, default 16) as OOM.
#include <cstdio>
#include <vector>

#include "gp/dataset.hpp"
#include "mosaic/trainer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const bool paper = args.get_bool("paper-scale");
  const int64_t m = args.get_int("m", paper ? 16 : 8);
  const double budget_gb = args.get_double("budget-gb", 16.0);
  std::vector<int64_t> domain_counts =
      paper ? std::vector<int64_t>{5, 320, 640} : std::vector<int64_t>{5, 40, 80};

  std::printf("== Table 3: training-step memory, with vs without PDE loss ==\n");
  std::printf("(per-domain points: %ld data + %ld collocation; paper rows "
              "5/320/640 on a 16 GB V100 with the 640-domain PDE row OOM)\n\n",
              paper ? int64_t{128} : int64_t{64}, paper ? int64_t{128} : int64_t{64});

  util::Rng rng(5);
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = 4 * m;
  cfg.hidden_width = paper ? 128 : 64;
  cfg.mlp_depth = 4;
  mosaic::Sdnet net(cfg, rng);
  gp::LaplaceDatasetGenerator gen(m);
  const int64_t q = paper ? 128 : 64;

  auto measure = [&](int64_t domains, bool pde) -> std::size_t {
    auto bvps = gen.generate_many(domains);
    auto batch = gen.make_batch(bvps, q, q);
    mosaic::TrainConfig tc;
    tc.use_pde_loss = pde;
    net.zero_grad();
    auto& mt = ad::MemoryTracker::instance();
    mt.reset_peak();
    const std::size_t base = mt.peak_bytes();
    mosaic::training_step(net, batch, tc);
    return mt.peak_bytes() - base;
  };

  util::Table table({"# domains", "no PDE loss", "with PDE loss", "ratio"});
  int64_t last_domains = 0;
  std::size_t last_without = 0, last_with = 0;
  for (int64_t d : domain_counts) {
    const std::size_t without = measure(d, false);
    const std::size_t with = measure(d, true);
    last_domains = d;
    last_without = without;
    last_with = with;
    const double gb = static_cast<double>(with) / (1024.0 * 1024.0 * 1024.0);
    std::string with_str = util::format_double(
        static_cast<double>(with) / (1024.0 * 1024.0), 4) + " MB";
    if (gb > budget_gb) with_str = "OOM (" + with_str + ")";
    table.add_row({std::to_string(d),
                   util::format_double(static_cast<double>(without) / (1024.0 * 1024.0), 4) + " MB",
                   with_str,
                   util::format_double(static_cast<double>(with) /
                                       static_cast<double>(without), 3)});
  }
  table.print();
  std::printf("\nShape check vs paper: ratio should be ~5-6x (paper: 0.503/0.05 "
              "= 10x at 5 domains, 15.11/2.77 = 5.5x at 320).\n");
  std::printf(
      "\nBENCH_JSON {\"bench\":\"table3_pde_loss_memory\",\"m\":%lld,"
      "\"domains\":%lld,\"peak_bytes_no_pde\":%zu,\"peak_bytes_pde\":%zu,"
      "\"pde_memory_ratio\":%.4g}\n",
      static_cast<long long>(m), static_cast<long long>(last_domains),
      last_without, last_with,
      static_cast<double>(last_with) / static_cast<double>(last_without));
  return 0;
}
