// Figure 7: MAE of the MF predictor using SDNet models trained with
// varying rank counts, on test domains of increasing size with the
// analytic boundary condition g(x) = sin(2*pi*x).
//
// The paper's finding: despite small validation-MSE differences between
// models trained at different rank counts (Fig. 6a), all models yield
// MFP predictions of equivalent quality. We train one model per rank
// count (data-parallel), run the MFP on each test domain, and add the
// exact harmonic-kernel solver as the ideal-SDNet reference row.
#include <cstdio>
#include <memory>
#include <vector>

#include "comm/world.hpp"
#include "mosaic/distributed_predictor.hpp"
#include "linalg/multigrid.hpp"
#include "mosaic/trainer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const bool paper = args.get_bool("paper-scale");
  const int64_t m = args.get_int("m", 8);
  const int64_t epochs = args.get_int("epochs", paper ? 500 : 12);
  std::vector<int> rank_counts = paper ? std::vector<int>{1, 2, 4, 8, 16, 32}
                                       : std::vector<int>{1, 2, 4};
  std::vector<int64_t> domain_sizes{2 * m, 4 * m, 8 * m};  // cells per side

  std::printf("== Figure 7: MFP MAE with models trained at each rank count ==\n");
  std::printf("boundary g(x) = sin(2 pi x) on the bottom edge, zero elsewhere\n\n");

  gp::LaplaceDatasetGenerator gen(m, {}, 31);
  auto all = gen.generate_many(96);
  auto val = gen.generate_many(8);

  mosaic::SdnetConfig net_cfg;
  net_cfg.boundary_size = 4 * m;
  net_cfg.hidden_width = 64;
  net_cfg.mlp_depth = 4;

  // Train one replica set per rank count; keep the rank-0 model.
  std::vector<std::shared_ptr<mosaic::Sdnet>> models;
  std::vector<double> val_mses;
  for (int ranks : rank_counts) {
    util::Rng init_rng(42);  // placeholder init; overwritten after training
    auto model = std::make_shared<mosaic::Sdnet>(net_cfg, init_rng);
    comm::World world(ranks);
    std::vector<double> mses(static_cast<std::size_t>(ranks));
    world.run([&](comm::Comm& c) {
      util::Rng rng(42);
      mosaic::Sdnet net(net_cfg, rng);
      std::vector<gp::SolvedBvp> shard;
      for (std::size_t i = static_cast<std::size_t>(c.rank()); i < all.size();
           i += static_cast<std::size_t>(ranks)) {
        shard.push_back(all[i]);
      }
      mosaic::TrainConfig cfg;
      cfg.epochs = epochs;
      cfg.batch_size = 8;
      cfg.q_data = 32;
      cfg.q_colloc = 16;
      cfg.max_lr = 5e-3;
      cfg.pde_loss_weight = 0.3;
      cfg.optimizer = mosaic::OptimizerKind::kLamb;
      gp::LaplaceDatasetGenerator local_gen(m, {}, 7 + static_cast<unsigned>(c.rank()));
      auto history = mosaic::train_sdnet(net, shard, val, cfg, local_gen,
                                         ranks > 1 ? &c : nullptr);
      mses[static_cast<std::size_t>(c.rank())] = history.back().val_mse;
      if (c.rank() == 0) model->copy_parameters_from(net);
    });
    models.push_back(model);
    val_mses.push_back(mses[0]);
    std::printf("trained with %2d ranks: val MSE %.5f\n", ranks, mses[0]);
  }

  // Evaluate the MFP per model per domain size.
  std::vector<std::string> headers{"domain (cells)", "reference row: exact solver"};
  util::Table table({"model", "val MSE", "MAE " + std::to_string(domain_sizes[0]),
                     "MAE " + std::to_string(domain_sizes[1]),
                     "MAE " + std::to_string(domain_sizes[2])});
  mosaic::HarmonicKernelSolver exact(m);

  auto run_mfp = [&](const mosaic::SubdomainSolver& solver, int64_t cells,
                     double relaxation) {
    linalg::Grid2D ref(cells + 1, cells + 1);
    auto boundary = gp::sin_boundary(cells + 1, cells + 1);
    linalg::apply_perimeter(ref, boundary);
    linalg::solve_laplace_mg(ref, 1.0 / static_cast<double>(m));
    mosaic::MfpOptions opts;
    opts.max_iters = 1200;
    opts.tol = 1e-7;
    opts.relaxation = relaxation;
    auto result = mosaic::mosaic_predict(solver, cells, cells, boundary, opts);
    return linalg::Grid2D::mean_abs_diff(result.solution, ref);
  };

  for (std::size_t k = 0; k < models.size(); ++k) {
    mosaic::NeuralSubdomainSolver solver(models[k], m);
    std::vector<std::string> row{
        std::to_string(rank_counts[k]) + " ranks",
        util::format_double(val_mses[k])};
    for (int64_t cells : domain_sizes) {
      row.push_back(util::format_double(run_mfp(solver, cells, 0.5)));
    }
    table.add_row(row);
  }
  std::vector<std::string> exact_row{"exact kernel", "0"};
  for (int64_t cells : domain_sizes) {
    exact_row.push_back(util::format_double(run_mfp(exact, cells, 1.0)));
  }
  table.add_row(exact_row);
  std::printf("\n");
  table.print();
  std::printf("\nShape check vs paper: MAE is consistent across models trained "
              "at different rank counts (rows differ far less than their val "
              "MSE might suggest); absolute MAE tracks SDNet quality, with the "
              "exact-solver row as the algorithmic floor.\n");
  return 0;
}
