// Figure 7: MAE of the MF predictor using SDNet models trained with
// varying rank counts, on test domains of increasing size with the
// analytic boundary condition g(x) = sin(2*pi*x).
//
// The paper's finding: despite small validation-MSE differences between
// models trained at different rank counts (Fig. 6a), all models yield
// MFP predictions of equivalent quality. We train one model per rank
// count (data-parallel), run the MFP on each test domain, and add the
// exact harmonic-kernel solver as the ideal-SDNet reference row.
// With --scenario varcoef|convdiff|masked the same harness measures the
// scenario family instead: training data, conditioning width, reference
// solves (stencil operator) and the predictor (mosaic_predict_scenario)
// all follow the scenario, and the BENCH_JSON line carries a "scenario"
// key so per-scenario CI gates filter their own committed baseline.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "ad/dtype.hpp"
#include "ad/kernels.hpp"
#include "comm/world.hpp"
#include "linalg/stencil.hpp"
#include "mosaic/distributed_predictor.hpp"
#include "linalg/multigrid.hpp"
#include "mosaic/scenario_predictor.hpp"
#include "mosaic/trainer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mf;
  util::CliArgs args(argc, argv);
  const bool paper = args.get_bool("paper-scale");
  const int64_t m = args.get_int("m", 8);
  const int64_t epochs = args.get_int("epochs", paper ? 500 : 12);
  const int64_t n_bvps = args.get_int("bvps", 96);
  const scenario::Kind kind =
      scenario::kind_from_name(args.get("scenario", "poisson"));
  // CI smoke cap: --max-ranks 1 trains only the single-rank model, which
  // keeps the run deterministic under OMP_NUM_THREADS=1 (the committed
  // BENCH_fig7.json quality baseline is recorded at that config).
  const int64_t max_ranks = args.get_int("max-ranks", 0);
  std::vector<int> rank_counts = paper ? std::vector<int>{1, 2, 4, 8, 16, 32}
                                       : std::vector<int>{1, 2, 4};
  if (max_ranks > 0) {
    std::erase_if(rank_counts,
                  [&](int r) { return static_cast<int64_t>(r) > max_ranks; });
  }
  std::vector<int64_t> domain_sizes{2 * m, 4 * m, 8 * m};  // cells per side

  std::printf("== Figure 7: MFP MAE with models trained at each rank count ==\n");
  std::printf("boundary g(x) = sin(2 pi x) on the bottom edge, zero elsewhere; "
              "scenario %s\n\n",
              scenario::kind_name(kind));

  gp::LaplaceDatasetGenerator gen(m, {}, 31, kind);
  auto all = gen.generate_many(n_bvps);
  auto val = gen.generate_many(8);

  mosaic::SdnetConfig net_cfg;
  net_cfg.boundary_size = scenario::conditioning_size(kind, m);
  net_cfg.hidden_width = 64;
  net_cfg.mlp_depth = 4;

  // Train one replica set per rank count; keep the rank-0 model.
  std::vector<std::shared_ptr<mosaic::Sdnet>> models;
  std::vector<double> val_mses;
  for (int ranks : rank_counts) {
    util::Rng init_rng(42);  // placeholder init; overwritten after training
    auto model = std::make_shared<mosaic::Sdnet>(net_cfg, init_rng);
    comm::World world(ranks);
    std::vector<double> mses(static_cast<std::size_t>(ranks));
    world.run([&](comm::Comm& c) {
      util::Rng rng(42);
      mosaic::Sdnet net(net_cfg, rng);
      std::vector<gp::SolvedBvp> shard;
      for (std::size_t i = static_cast<std::size_t>(c.rank()); i < all.size();
           i += static_cast<std::size_t>(ranks)) {
        shard.push_back(all[i]);
      }
      mosaic::TrainConfig cfg;
      cfg.epochs = epochs;
      cfg.batch_size = 8;
      cfg.q_data = 32;
      cfg.q_colloc = 16;
      cfg.max_lr = 5e-3;
      cfg.pde_loss_weight = 0.3;
      cfg.optimizer = mosaic::OptimizerKind::kLamb;
      gp::LaplaceDatasetGenerator local_gen(
          m, {}, 7 + static_cast<unsigned>(c.rank()), kind);
      auto history = mosaic::train_sdnet(net, shard, val, cfg, local_gen,
                                         ranks > 1 ? &c : nullptr);
      mses[static_cast<std::size_t>(c.rank())] = history.back().val_mse;
      if (c.rank() == 0) model->copy_parameters_from(net);
    });
    models.push_back(model);
    val_mses.push_back(mses[0]);
    std::printf("trained with %2d ranks: val MSE %.5f\n", ranks, mses[0]);
  }

  // Evaluate the MFP per model per domain size.
  std::vector<std::string> headers{"domain (cells)", "reference row: exact solver"};
  util::Table table({"model", "val MSE", "MAE " + std::to_string(domain_sizes[0]),
                     "MAE " + std::to_string(domain_sizes[1]),
                     "MAE " + std::to_string(domain_sizes[2])});
  mosaic::HarmonicKernelSolver exact(m);

  // One deterministic scenario field per domain size (seeded by the
  // size), shared between the reference solve and every model row. The
  // mask is snapped to the half-subdomain lattice pitch h = m/2 so cut
  // edges land on lattice lines.
  auto make_field = [&](int64_t cells) {
    util::Rng field_rng(static_cast<std::uint64_t>(77 + cells));
    return scenario::sample_field(kind, cells, cells, field_rng,
                                  std::max<int64_t>(1, m / 2));
  };
  auto run_mfp = [&](const mosaic::SubdomainSolver& solver, int64_t cells,
                     double relaxation) {
    linalg::Grid2D ref(cells + 1, cells + 1);
    auto boundary = gp::sin_boundary(cells + 1, cells + 1);
    const scenario::Field field = make_field(cells);
    scenario::zero_masked_boundary(boundary, field.mask);
    linalg::apply_perimeter(ref, boundary);
    if (kind == scenario::Kind::kPoisson) {
      linalg::solve_laplace_mg(ref, 1.0 / static_cast<double>(m));
    } else {
      const linalg::StencilOperator op =
          scenario::field_operator(field, 1.0 / static_cast<double>(m));
      const linalg::Grid2D zero_rhs(cells + 1, cells + 1);
      if (linalg::stencil_solve(op, ref, zero_rhs, 1e-10, 40000) < 0) {
        std::fprintf(stderr, "fig7: reference stencil solve diverged\n");
        std::exit(1);
      }
    }
    mosaic::ScenarioSolveOptions opts;
    opts.mfp.max_iters = 1200;
    opts.mfp.tol = 1e-7;
    opts.mfp.relaxation = relaxation;
    auto result = mosaic::mosaic_predict_scenario(solver, field, cells, cells,
                                                  boundary, opts);
    return linalg::Grid2D::mean_abs_diff(result.solution, ref);
  };

  std::vector<double> model0_maes;
  for (std::size_t k = 0; k < models.size(); ++k) {
    mosaic::NeuralSubdomainSolver solver(models[k], m);
    std::vector<std::string> row{
        std::to_string(rank_counts[k]) + " ranks",
        util::format_double(val_mses[k])};
    for (int64_t cells : domain_sizes) {
      const double mae = run_mfp(solver, cells, 0.5);
      if (k == 0) model0_maes.push_back(mae);
      row.push_back(util::format_double(mae));
    }
    table.add_row(row);
  }
  // The harmonic-kernel reference solves the Laplace operator only, so
  // the ideal-solver row exists for the poisson/masked scenarios alone.
  if (kind == scenario::Kind::kPoisson || kind == scenario::Kind::kMasked) {
    std::vector<std::string> exact_row{"exact kernel", "0"};
    for (int64_t cells : domain_sizes) {
      exact_row.push_back(util::format_double(run_mfp(exact, cells, 1.0)));
    }
    table.add_row(exact_row);
  }
  std::printf("\n");
  table.print();
  std::printf("\nShape check vs paper: MAE is consistent across models trained "
              "at different rank counts (rows differ far less than their val "
              "MSE might suggest); absolute MAE tracks SDNet quality, with the "
              "exact-solver row as the algorithmic floor.\n");
  // Machine-readable quality line for BENCH_fig7.json: the single-rank
  // model's validation MSE and its MFP MAE per domain size, lower is
  // better. CI re-runs this at the smoke config under MF_PRECISION=f32
  // and gates the fresh MAE against the committed f64 baseline, so a
  // precision policy (or kernel change) that degrades solution quality
  // fails the job even when it speeds the bench up.
  double mae_mean = 0;
  for (double v : model0_maes) mae_mean += v;
  mae_mean /= static_cast<double>(model0_maes.size());
  std::printf(
      "\nBENCH_JSON {\"bench\":\"fig7_mfp_model_quality\",\"scenario\":\"%s\","
      "\"m\":%lld,"
      "\"epochs\":%lld,\"bvps\":%lld,\"threads\":%d,\"openmp\":%s,"
      "\"compute_dtype\":\"%s\",\"val_mse\":%.6g,"
      "\"mae_small\":%.6g,\"mae_medium\":%.6g,\"mae_large\":%.6g,"
      "\"mae_mean\":%.6g}\n",
      scenario::kind_name(kind), static_cast<long long>(m),
      static_cast<long long>(epochs),
      static_cast<long long>(n_bvps), ad::kernels::max_threads(),
      ad::kernels::openmp_enabled() ? "true" : "false",
      ad::dtype_name(ad::compute_dtype()), val_mses[0], model0_maes[0],
      model0_maes[1], model0_maes[2], mae_mean);
  return 0;
}
