// Payload pool + tape arena coverage: bitwise pooled-vs-plain parity,
// MemoryTracker accuracy under pooling (the Table 3 methodology), the
// zero-steady-state-allocation guarantee, and second-order gradcheck on
// the arena-backed tape.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "ad/arena.hpp"
#include "ad/dtype.hpp"
#include "ad/engine.hpp"
#include "ad/gradcheck.hpp"
#include "ad/ops.hpp"
#include "ad/pool.hpp"
#include "ad/tensor.hpp"
#include "gp/dataset.hpp"
#include "mosaic/trainer.hpp"
#include "optim/optimizers.hpp"

namespace {

using namespace mf;
using ad::Tensor;

/// Restores the pool toggle on scope exit so tests cannot leak state.
struct PoolToggleGuard {
  explicit PoolToggleGuard(bool on) : prev_(ad::PayloadPool::set_enabled(on)) {}
  ~PoolToggleGuard() { ad::PayloadPool::set_enabled(prev_); }
  bool prev_;
};

/// A few seeded PDE-loss training steps; returns every parameter value.
std::vector<double> run_training(int64_t steps) {
  util::Rng rng(1234);
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = 16;  // m = 4
  cfg.hidden_width = 16;
  cfg.mlp_depth = 2;
  mosaic::Sdnet net(cfg, rng);
  gp::LaplaceDatasetGenerator gen(4, {}, 77);
  auto bvps = gen.generate_many(3);
  mosaic::TrainConfig tc;
  tc.pde_loss_weight = 0.3;
  optim::Adam opt(net.parameters(), 1e-3);
  // Fixed batch so both runs see the identical input stream.
  auto batch = gen.make_batch(bvps, 8, 6);
  for (int64_t i = 0; i < steps; ++i) {
    net.zero_grad();
    mosaic::training_step(net, batch, tc);
    opt.step();
  }
  std::vector<double> out;
  for (const auto& p : net.parameters()) {
    out.insert(out.end(), p.data(), p.data() + p.numel());
  }
  return out;
}

TEST(PayloadPool, PooledVsPlainBitwiseParity) {
  std::vector<double> pooled, plain;
  {
    PoolToggleGuard g(true);
    pooled = run_training(4);
  }
  {
    PoolToggleGuard g(false);
    ad::PayloadPool::trim_thread_cache();
    plain = run_training(4);
  }
  ASSERT_EQ(pooled.size(), plain.size());
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    // Bitwise: recycled buffers must be indistinguishable from fresh ones.
    EXPECT_EQ(pooled[i], plain[i]) << "parameter " << i;
  }
}

TEST(PayloadPool, MemoryTrackerUnchangedByPooling) {
  // The Table 3 methodology: peak live payload bytes over a PDE-loss
  // training step. Pooling must not perturb it — a pooled buffer counts
  // as live only while a tensor owns it.
  auto measure_peak = [&] {
    util::Rng rng(5);
    mosaic::SdnetConfig cfg;
    cfg.boundary_size = 16;
    cfg.hidden_width = 16;
    cfg.mlp_depth = 2;
    mosaic::Sdnet net(cfg, rng);
    gp::LaplaceDatasetGenerator gen(4, {}, 9);
    auto bvps = gen.generate_many(4);
    auto batch = gen.make_batch(bvps, 8, 8);
    mosaic::TrainConfig tc;
    auto& mt = ad::MemoryTracker::instance();
    net.zero_grad();
    mt.reset_peak();
    const std::size_t base = mt.peak_bytes();
    mosaic::training_step(net, batch, tc);
    return mt.peak_bytes() - base;
  };
  std::size_t peak_pooled, peak_plain;
  {
    PoolToggleGuard g(true);
    peak_pooled = measure_peak();
  }
  {
    PoolToggleGuard g(false);
    ad::PayloadPool::trim_thread_cache();
    peak_plain = measure_peak();
  }
  EXPECT_EQ(peak_pooled, peak_plain);
}

TEST(PayloadPool, LiveBytesReturnToBaselineAndIdleBytesAreSeparate) {
  PoolToggleGuard g(true);
  auto& mt = ad::MemoryTracker::instance();
  const std::size_t live_before = mt.live_bytes();
  {
    Tensor a = Tensor::ones({64, 64});
    Tensor b = ad::ops::mul_scalar(a, 2.0);
    EXPECT_EQ(mt.live_bytes(),
              live_before + 2 * 64 * 64 * sizeof(double));
    (void)b;
  }
  // Dead tensors no longer count as live even though their buffers are
  // parked on the pool's free list.
  EXPECT_EQ(mt.live_bytes(), live_before);
  EXPECT_GE(mt.pooled_idle_bytes(), 2 * 64 * 64 * sizeof(double));
}

TEST(PayloadPool, SteadyStateTrainingStepDoesNoPayloadMallocs) {
  PoolToggleGuard g(true);
  util::Rng rng(31);
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = 16;
  cfg.hidden_width = 16;
  cfg.mlp_depth = 2;
  mosaic::Sdnet net(cfg, rng);
  gp::LaplaceDatasetGenerator gen(4, {}, 13);
  auto bvps = gen.generate_many(3);
  mosaic::TrainConfig tc;
  tc.pde_loss_weight = 0.3;
  optim::Adam opt(net.parameters(), 1e-3);
  auto step = [&] {
    // Fresh batch every step, like the real loop: batch tensors must be
    // pool hits too.
    auto batch = gen.make_batch(bvps, 8, 6);
    net.zero_grad();
    mosaic::training_step(net, batch, tc);
    opt.step();
  };
  for (int i = 0; i < 3; ++i) step();  // warmup fills the free lists
  const ad::PoolStats before = ad::PayloadPool::stats();
  for (int i = 0; i < 5; ++i) step();
  const ad::PoolStats after = ad::PayloadPool::stats();
  EXPECT_EQ(after.fresh_allocs() + after.adopted,
            before.fresh_allocs() + before.adopted)
      << "steady-state training step allocated fresh payloads";
  EXPECT_GT(after.hits, before.hits);
}

TEST(PayloadPool, StatsAndToggleRoundTrip) {
  const bool prev = ad::PayloadPool::set_enabled(true);
  EXPECT_TRUE(ad::PayloadPool::enabled());
  EXPECT_TRUE(ad::PayloadPool::set_enabled(false));
  EXPECT_FALSE(ad::PayloadPool::enabled());
  ad::PayloadPool::set_enabled(prev);
  // Recycle round trip: a released buffer of size n is served again.
  PoolToggleGuard g(true);
  const ad::PoolStats s0 = ad::PayloadPool::stats();
  { Tensor t = Tensor::zeros({123}); }
  { Tensor t = Tensor::zeros({123}); }
  const ad::PoolStats s1 = ad::PayloadPool::stats();
  EXPECT_GT(s1.hits, s0.hits);
}

TEST(PayloadPool, ThreadExitWithTensorOwningThreadLocalIsSafe) {
  // A function-local thread_local holding a Tensor registers its
  // destructor *before* the pool's thread cache exists (first pool touch
  // happens later), so at thread exit the cache dies first and the
  // tensor's release must take the dead-cache bypass instead of pushing
  // into a destroyed map.
  PoolToggleGuard g(true);
  std::thread([] {
    struct Holder {
      Tensor t;
    };
    thread_local Holder h;
    h.t = Tensor::zeros({64});
    for (int i = 0; i < 4; ++i) {
      Tensor tmp = Tensor::zeros({64});
      (void)tmp;
    }
  }).join();
  SUCCEED();
}

TEST(TapeArena, SecondOrderGradcheckOnArenaTape) {
  // The PDE loss differentiates through gradients (create_graph); the
  // arena-backed tape with typed linear/gelu/matmul/add/mul nodes must
  // deliver correct second derivatives.
  util::Rng rng(7);
  Tensor w = Tensor::zeros({3, 3});
  for (int64_t i = 0; i < w.numel(); ++i) w.flat(i) = 0.3 * rng.normal();
  auto f = [&w](const std::vector<Tensor>& ins) {
    Tensor h = ad::ops::gelu(ad::ops::linear(ins[0], w, Tensor()));
    Tensor y = ad::ops::mul(h, ad::ops::add(h, ins[0]));
    return ad::ops::sum(ad::ops::matmul(y, w));
  };
  Tensor x = Tensor::zeros({2, 3});
  for (int64_t i = 0; i < x.numel(); ++i) x.flat(i) = 0.5 * rng.normal();
  x.set_requires_grad(true);
  auto res = ad::gradcheck_second_order(f, {x});
  EXPECT_TRUE(res.ok) << "max abs err " << res.max_abs_err << " rel "
                      << res.max_rel_err;
}

TEST(TapeArena, RewindsAfterGraphDies) {
  const auto& arena = ad::this_thread_tape_arena();
  // Build and drop a graph; the next recording may rewind the arena, so
  // high-water should stabilize across repeated identical graphs.
  auto build = [] {
    Tensor x = Tensor::ones({8, 8});
    x.set_requires_grad(true);
    Tensor y = ad::ops::sum(ad::ops::gelu(ad::ops::mul(x, x)));
    ad::backward(y);
  };
  build();
  const std::size_t high1 = arena->stats().high_water;
  for (int i = 0; i < 10; ++i) build();
  const std::size_t high2 = arena->stats().high_water;
  if (ad::tape_arena_enabled()) {
    // Without rewinds the bump pointer would grow ~10x.
    EXPECT_EQ(high1, high2);
    EXPECT_GT(arena->stats().rewinds, 0u);
  }
  EXPECT_EQ(arena->stats().live_blocks, 0);
}

TEST(TapeArena, GraphSurvivesAcrossManyRecordingsAndScopes) {
  // A held graph must keep its nodes valid while unrelated graphs come
  // and go (the arena must not rewind under it).
  Tensor x = Tensor::ones({4});
  x.set_requires_grad(true);
  Tensor kept = ad::ops::mul_scalar(ad::ops::gelu(x), 2.0);
  for (int i = 0; i < 50; ++i) {
    Tensor t = Tensor::ones({16});
    t.set_requires_grad(true);
    ad::backward(ad::ops::sum(ad::ops::mul(t, t)));
  }
  ad::backward(ad::ops::sum(kept));
  ASSERT_TRUE(x.grad().defined());
  // d/dx [2*gelu(x)] at x=1: 2 * gelu'(1) (tanh approximation).
  EXPECT_NEAR(x.grad().flat(0), 2.16592, 1e-4);
}

// ---------------------------------------------------------------------
// Byte-keyed free lists: f32 and f64 payloads of equal byte capacity
// recycle through the same bucket (the pool keys on bytes, not element
// counts), and the accounting stays exact at either width.
// ---------------------------------------------------------------------

TEST(PayloadPool, F32AndF64ShareByteKeyedFreeLists) {
  PoolToggleGuard g(true);
  constexpr std::size_t kBytes = 256 * sizeof(double);  // == 512 floats
  {
    auto v = ad::PayloadPool::acquire_zeroed(kBytes);
    ad::PayloadPool::release(std::move(v));
  }
  // Same byte capacity requested "as f32": the bucket is warm now, so
  // this must hit the free list and allocate nothing fresh.
  {
    const ad::PoolStats s0 = ad::PayloadPool::stats();
    auto w = ad::PayloadPool::acquire_zeroed(512 * sizeof(float));
    const ad::PoolStats s1 = ad::PayloadPool::stats();
    EXPECT_EQ(s1.fresh_allocs(), s0.fresh_allocs())
        << "f32-sized acquisition must reuse the released f64-sized buffer";
    EXPECT_EQ(s1.hits, s0.hits + 1);
    ad::PayloadPool::release(std::move(w));
  }
  // And through the tagged Payload wrapper the tensors use.
  const ad::PoolStats s2 = ad::PayloadPool::stats();
  { ad::Payload p(256, ad::DType::kF64); }
  { ad::Payload q(512, ad::DType::kF32); }
  const ad::PoolStats s3 = ad::PayloadPool::stats();
  EXPECT_EQ(s3.hits, s2.hits + 2) << "dtype-tagged payloads must share buckets";
  EXPECT_EQ(s3.fresh_allocs(), s2.fresh_allocs())
      << "both widths should be served from the warmed byte bucket";
}

TEST(PayloadPool, IdleBytesAccountsBothDtypes) {
  PoolToggleGuard g(true);
  // Caller-owned buffers are not idle; released ones are, at either
  // width, by exact byte capacity.
  auto a = ad::PayloadPool::acquire_zeroed(96 * sizeof(double));
  auto b = ad::PayloadPool::acquire_zeroed(31 * sizeof(float));
  const std::size_t a_cap = a.capacity(), b_cap = b.capacity();
  const std::size_t idle0 = ad::PayloadPool::idle_bytes();
  ad::PayloadPool::release(std::move(a));
  ad::PayloadPool::release(std::move(b));
  EXPECT_EQ(ad::PayloadPool::idle_bytes(), idle0 + a_cap + b_cap);
  // Reacquiring moves the bytes from idle back to caller-owned.
  auto c = ad::PayloadPool::acquire_zeroed(96 * sizeof(double));
  EXPECT_EQ(ad::PayloadPool::idle_bytes(), idle0 + a_cap + b_cap - c.capacity());
  ad::PayloadPool::release(std::move(c));
}

TEST(PayloadPool, SteadyStateF32CompiledStepDoesNoPayloadMallocs) {
  // The 0-payload-malloc guarantee must hold at f32 too: the plan arena
  // (raw byte vectors) is allocated once at lowering, cast shadows live
  // on that arena, and steady-state replay touches the pool not at all.
  PoolToggleGuard g(true);
  const bool prog_prev = ad::program_set_enabled(true);
  const ad::DType dt_prev = ad::set_compute_dtype(ad::DType::kF32);
  {
    util::Rng rng(41);
    mosaic::SdnetConfig cfg;
    cfg.boundary_size = 16;
    cfg.hidden_width = 16;
    cfg.mlp_depth = 2;
    mosaic::Sdnet net(cfg, rng);
    gp::LaplaceDatasetGenerator gen(4, {}, 19);
    auto bvps = gen.generate_many(3);
    mosaic::TrainConfig tc;
    tc.pde_loss_weight = 0.3;
    optim::Adam opt(net.parameters(), 1e-3);
    mosaic::CompiledTrainStep cstep(net, tc);
    auto step = [&] {
      auto batch = gen.make_batch(bvps, 8, 6);
      cstep.run(batch);
      opt.step();
    };
    for (int i = 0; i < 3; ++i) step();  // capture at f32 + warm the pool
    EXPECT_GT(cstep.program().stats().cast_steps, 0u);
    const ad::PoolStats before = ad::PayloadPool::stats();
    for (int i = 0; i < 5; ++i) step();
    const ad::PoolStats after = ad::PayloadPool::stats();
    EXPECT_EQ(after.fresh_allocs() + after.adopted,
              before.fresh_allocs() + before.adopted)
        << "steady-state f32 replay allocated fresh payloads";
  }
  ad::set_compute_dtype(dt_prev);
  ad::program_set_enabled(prog_prev);
}

}  // namespace
