// End-to-end integration tests across modules: train -> serialize ->
// reload -> distributed predict; replica consistency under data-parallel
// training; full-pipeline determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "comm/world.hpp"
#include "mosaic/distributed_predictor.hpp"
#include "mosaic/trainer.hpp"
#include "nn/serialize.hpp"

namespace mosaic = mf::mosaic;
namespace la = mf::linalg;

namespace {

mosaic::SdnetConfig small_net(int64_t m) {
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = 4 * m;
  cfg.hidden_width = 32;
  cfg.mlp_depth = 3;
  return cfg;
}

}  // namespace

TEST(Integration, TrainSaveLoadPredictPipeline) {
  const int64_t m = 8;
  mf::util::Rng rng(7);
  mosaic::Sdnet net(small_net(m), rng);
  mf::gp::LaplaceDatasetGenerator gen(m, {}, 3);
  auto train = gen.generate_many(16);
  auto val = gen.generate_many(4);
  mosaic::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 8;
  cfg.q_data = 16;
  cfg.q_colloc = 8;
  cfg.optimizer = mosaic::OptimizerKind::kAdamW;
  mosaic::train_sdnet(net, train, val, cfg, gen);

  const std::string path = "/tmp/mf_integration_model.bin";
  mf::nn::save_parameters(net, path);
  mf::util::Rng rng2(99);
  auto reloaded = std::make_shared<mosaic::Sdnet>(small_net(m), rng2);
  mf::nn::load_parameters(*reloaded, path);
  std::remove(path.c_str());

  // Reloaded model is bitwise identical as a subdomain solver.
  mosaic::NeuralSubdomainSolver s_orig(
      std::make_shared<mosaic::Sdnet>(small_net(m), rng2), m);
  mosaic::NeuralSubdomainSolver s_loaded(reloaded, m);
  // (s_orig has random weights; just check the loaded one against net.)
  mosaic::SubdomainGeometry geom(m);
  auto bvp = gen.generate();
  auto direct = mosaic::NeuralSubdomainSolver(
                    std::shared_ptr<mosaic::Sdnet>(&net, [](mosaic::Sdnet*) {}), m)
                    .predict_one(bvp.boundary, geom.cross_queries);
  auto loaded = s_loaded.predict_one(bvp.boundary, geom.cross_queries);
  for (std::size_t k = 0; k < direct.size(); ++k) {
    EXPECT_EQ(direct[k], loaded[k]);
  }

  // And drives the distributed predictor without error.
  const int64_t cells = 16;
  auto problem = gen.generate_global(cells, cells);
  mf::comm::CartesianGrid grid(2);
  mf::comm::World world(2);
  mosaic::MfpOptions opts;
  opts.max_iters = 20;
  opts.tol = 0;
  opts.relaxation = 0.5;
  world.run([&](mf::comm::Comm& c) {
    auto r = mosaic::distributed_mosaic_predict(c, grid, s_loaded, cells, cells,
                                                problem.boundary, opts);
    EXPECT_EQ(r.solution.nx(), cells + 1);
    EXPECT_EQ(r.iterations, 20);
  });
}

TEST(Integration, DataParallelReplicasStayIdentical) {
  // After several Algorithm-1 steps with the single allreduce, all rank
  // replicas must hold bitwise-identical parameters.
  const int64_t m = 8;
  mf::gp::LaplaceDatasetGenerator gen(m, {}, 11);
  auto data = gen.generate_many(12);
  auto val = gen.generate_many(2);

  const int ranks = 3;  // non-power-of-two exercises the fallback allreduce
  mf::comm::World world(ranks);
  std::vector<std::vector<double>> params(static_cast<std::size_t>(ranks));
  world.run([&](mf::comm::Comm& c) {
    mf::util::Rng rng(5);
    mosaic::Sdnet net(small_net(m), rng);
    std::vector<mf::gp::SolvedBvp> shard;
    for (std::size_t i = static_cast<std::size_t>(c.rank()); i < data.size();
         i += static_cast<std::size_t>(ranks)) {
      shard.push_back(data[i]);
    }
    mosaic::TrainConfig cfg;
    cfg.epochs = 3;
    cfg.batch_size = 4;
    cfg.q_data = 8;
    cfg.q_colloc = 8;
    cfg.optimizer = mosaic::OptimizerKind::kLamb;
    mf::gp::LaplaceDatasetGenerator local_gen(m, {}, 77);  // same sampling
    mosaic::train_sdnet(net, shard, val, cfg, local_gen, &c);
    std::vector<double> flat;
    for (const auto& p : net.parameters()) {
      flat.insert(flat.end(), p.data(), p.data() + p.numel());
    }
    params[static_cast<std::size_t>(c.rank())] = flat;
  });
  for (int r = 1; r < ranks; ++r) {
    ASSERT_EQ(params[0].size(), params[static_cast<std::size_t>(r)].size());
    for (std::size_t i = 0; i < params[0].size(); ++i) {
      ASSERT_EQ(params[0][i], params[static_cast<std::size_t>(r)][i])
          << "rank " << r << " param " << i;
    }
  }
}

TEST(Integration, FullPipelineIsDeterministic) {
  // Same seeds -> same dataset -> same training -> same prediction.
  const int64_t m = 8;
  auto run_once = [&]() {
    mf::util::Rng rng(123);
    mosaic::Sdnet net(small_net(m), rng);
    mf::gp::LaplaceDatasetGenerator gen(m, {}, 55);
    auto train = gen.generate_many(8);
    auto val = gen.generate_many(2);
    mosaic::TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch_size = 4;
    cfg.q_data = 8;
    cfg.q_colloc = 8;
    auto history = mosaic::train_sdnet(net, train, val, cfg, gen);
    return history.back().val_mse;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Integration, MemoryIsReleasedAfterTrainingStep) {
  // The autograd graph must be fully freed between steps — a leak here
  // would OOM long trainings.
  const int64_t m = 8;
  mf::util::Rng rng(9);
  mosaic::Sdnet net(small_net(m), rng);
  mf::gp::LaplaceDatasetGenerator gen(m, {}, 13);
  auto bvps = gen.generate_many(4);
  auto batch = gen.make_batch(bvps, 16, 16);
  mosaic::TrainConfig cfg;

  auto& mt = mf::ad::MemoryTracker::instance();
  net.zero_grad();
  mosaic::training_step(net, batch, cfg);
  net.zero_grad();
  const std::size_t live_after_first = mt.live_bytes();
  for (int i = 0; i < 5; ++i) {
    net.zero_grad();
    mosaic::training_step(net, batch, cfg);
  }
  net.zero_grad();
  EXPECT_EQ(mt.live_bytes(), live_after_first);
}

TEST(Integration, MultigridSolverAsMfpSubdomainSolver) {
  // The MFP is solver-agnostic: the classical multigrid subdomain solver
  // must drive it to the same fixed point as the harmonic kernel.
  const int64_t m = 8;
  mf::gp::LaplaceDatasetGenerator gen(m, {}, 17);
  auto problem = gen.generate_global(16, 16);
  mosaic::MfpOptions opts;
  opts.max_iters = 400;
  opts.tol = 1e-8;
  mosaic::MultigridSubdomainSolver mg_solver(m);
  auto a = mosaic::mosaic_predict(mg_solver, 16, 16, problem.boundary, opts);
  mosaic::HarmonicKernelSolver hk_solver(m);
  auto b = mosaic::mosaic_predict(hk_solver, 16, 16, problem.boundary, opts);
  EXPECT_LT(la::Grid2D::max_abs_diff(a.solution, b.solution), 1e-5);
}
