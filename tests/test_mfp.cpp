// Mosaic Flow predictor tests: subdomain solvers, lattice geometry, the
// sequential/batched predictor against multigrid ground truth, the
// distributed predictor's equivalence to the single-rank algorithm, and
// the classical Schwarz baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "comm/world.hpp"
#include "gp/dataset.hpp"
#include "linalg/multigrid.hpp"
#include "mosaic/distributed_predictor.hpp"
#include "mosaic/predictor.hpp"
#include "mosaic/schwarz.hpp"

namespace la = mf::linalg;
namespace mosaic = mf::mosaic;

namespace {

/// Multigrid reference for a GP boundary on an (nx_cells x ny_cells) domain.
mf::gp::SolvedBvp make_problem(int64_t nx_cells, int64_t ny_cells, int64_t m,
                               std::uint64_t seed = 3) {
  mf::gp::LaplaceDatasetGenerator gen(m, {}, seed);
  return gen.generate_global(nx_cells, ny_cells);
}

}  // namespace

// ---- geometry ----

TEST(SubdomainGeometry, CountsAndOffsets) {
  mosaic::SubdomainGeometry geom(8);
  EXPECT_EQ(geom.h, 4);
  // Cross: (m-1) vertical + (m-2) horizontal (center excluded once).
  EXPECT_EQ(geom.cross_queries.size(), 13u);
  EXPECT_EQ(geom.cross_offsets.size(), 13u);
  EXPECT_EQ(geom.interior_queries.size(), 49u);
  // Offsets within the open subdomain square.
  for (const auto& [di, dj] : geom.cross_offsets) {
    EXPECT_GT(di, 0);
    EXPECT_LT(di, 8);
    EXPECT_GT(dj, 0);
    EXPECT_LT(dj, 8);
    EXPECT_TRUE(di == 4 || dj == 4);  // on the center cross
  }
  EXPECT_THROW(mosaic::SubdomainGeometry(7), std::invalid_argument);
  EXPECT_THROW(mosaic::SubdomainGeometry(2), std::invalid_argument);
}

TEST(SubdomainGeometry, QueriesMatchOffsets) {
  mosaic::SubdomainGeometry geom(8);
  for (std::size_t k = 0; k < geom.cross_queries.size(); ++k) {
    EXPECT_NEAR(geom.cross_queries[k].first * 8,
                static_cast<double>(geom.cross_offsets[k].first), 1e-12);
    EXPECT_NEAR(geom.cross_queries[k].second * 8,
                static_cast<double>(geom.cross_offsets[k].second), 1e-12);
  }
}

TEST(PhaseCorners, DisjointWithinPhaseAndFullCoverage) {
  const int64_t h = 4, m = 8, cells = 32;
  std::set<std::pair<int64_t, int64_t>> all;
  for (int64_t phase = 0; phase < 4; ++phase) {
    auto corners = mosaic::phase_corners(phase, h, m, cells, cells, 0,
                                         cells / h, 0, cells / h);
    // Subdomains within one phase must not overlap (corner spacing >= m).
    for (std::size_t a = 0; a < corners.size(); ++a)
      for (std::size_t b = a + 1; b < corners.size(); ++b) {
        const bool overlap_x = std::abs(corners[a].first - corners[b].first) < m;
        const bool overlap_y = std::abs(corners[a].second - corners[b].second) < m;
        EXPECT_FALSE(overlap_x && overlap_y);
      }
    for (const auto& c : corners) EXPECT_TRUE(all.insert(c).second);
  }
  // All positions covered across the 4 phases: (cells/h - 1)^2.
  EXPECT_EQ(all.size(), 49u);
}

TEST(LatticeWindow, GlobalIndexing) {
  mosaic::LatticeWindow w(4, 8, 12, 16);
  EXPECT_TRUE(w.contains(4, 8));
  EXPECT_TRUE(w.contains(12, 16));
  EXPECT_FALSE(w.contains(3, 8));
  EXPECT_FALSE(w.contains(4, 17));
  w.at(5, 9) = 3.25;
  EXPECT_EQ(w.at(5, 9), 3.25);
  EXPECT_EQ(w.grid().at(1, 1), 3.25);
}

TEST(CoonsInit, ReproducesBilinearExactly) {
  // Transfinite interpolation is exact for bilinear boundary data.
  la::Grid2D g(17, 9);
  auto f = [](double x, double y) { return 2 + 3 * x - y + 0.5 * x * y; };
  for (int64_t i = 0; i < 17; ++i) {
    g.at(i, 0) = f(i / 16.0, 0);
    g.at(i, 8) = f(i / 16.0, 1);
  }
  for (int64_t j = 0; j < 9; ++j) {
    g.at(0, j) = f(0, j / 8.0);
    g.at(16, j) = f(1, j / 8.0);
  }
  mosaic::coons_init(g);
  for (int64_t j = 0; j < 9; ++j)
    for (int64_t i = 0; i < 17; ++i)
      EXPECT_NEAR(g.at(i, j), f(i / 16.0, j / 8.0), 1e-12);
}

// ---- subdomain solvers ----

TEST(HarmonicKernelSolver, MatchesMultigridOnRandomBoundary) {
  const int64_t m = 8;
  mosaic::HarmonicKernelSolver kernel(m);
  mosaic::MultigridSubdomainSolver mg(m);
  mf::gp::LaplaceDatasetGenerator gen(m);
  auto bvp = gen.generate();
  mosaic::SubdomainGeometry geom(m);
  auto a = kernel.predict_one(bvp.boundary, geom.interior_queries);
  auto b = mg.predict_one(bvp.boundary, geom.interior_queries);
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_NEAR(a[k], b[k], 1e-7);
}

TEST(HarmonicKernelSolver, LinearityInBoundary) {
  const int64_t m = 8;
  mosaic::HarmonicKernelSolver solver(m);
  mf::gp::LaplaceDatasetGenerator gen(m);
  auto b1 = gen.generate().boundary;
  auto b2 = gen.generate().boundary;
  std::vector<double> combo(b1.size());
  for (std::size_t i = 0; i < b1.size(); ++i) combo[i] = 2 * b1[i] - 0.5 * b2[i];
  mosaic::SubdomainGeometry geom(m);
  auto p1 = solver.predict_one(b1, geom.cross_queries);
  auto p2 = solver.predict_one(b2, geom.cross_queries);
  auto pc = solver.predict_one(combo, geom.cross_queries);
  for (std::size_t k = 0; k < pc.size(); ++k) {
    EXPECT_NEAR(pc[k], 2 * p1[k] - 0.5 * p2[k], 1e-10);
  }
}

TEST(SampleBilinear, ExactAtGridPointsAndLinearBetween) {
  la::Grid2D g(3, 3);
  for (int64_t j = 0; j < 3; ++j)
    for (int64_t i = 0; i < 3; ++i) g.at(i, j) = i + 10.0 * j;
  EXPECT_NEAR(mosaic::sample_bilinear(g, 0.5, 0.5), 1 + 10.0, 1e-12);
  EXPECT_NEAR(mosaic::sample_bilinear(g, 0.25, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(mosaic::sample_bilinear(g, 1.0, 1.0), 2 + 20.0, 1e-12);
}

TEST(NeuralSubdomainSolver, BatchSplitInvariance) {
  mf::util::Rng rng(31);
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = 32;
  cfg.hidden_width = 16;
  cfg.mlp_depth = 2;
  auto net = std::make_shared<mosaic::Sdnet>(cfg, rng);
  mosaic::NeuralSubdomainSolver solver(net, 8);
  mf::gp::LaplaceDatasetGenerator gen(8);
  auto b1 = gen.generate().boundary;
  auto b2 = gen.generate().boundary;
  mosaic::SubdomainGeometry geom(8);
  std::vector<std::vector<double>> batched;
  solver.predict({b1, b2}, geom.cross_queries, batched);
  auto s1 = solver.predict_one(b1, geom.cross_queries);
  auto s2 = solver.predict_one(b2, geom.cross_queries);
  for (std::size_t k = 0; k < s1.size(); ++k) {
    EXPECT_NEAR(batched[0][k], s1[k], 1e-12);
    EXPECT_NEAR(batched[1][k], s2[k], 1e-12);
  }
}

TEST(NeuralSubdomainSolver, BoundarySizeMismatchThrows) {
  mf::util::Rng rng(32);
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = 32;
  auto net = std::make_shared<mosaic::Sdnet>(cfg, rng);
  EXPECT_THROW(mosaic::NeuralSubdomainSolver(net, 16), std::invalid_argument);
}

// ---- the Mosaic Flow predictor ----

TEST(MosaicPredictor, ConvergesToMultigridWithExactSolver) {
  // With the exact subdomain solver, the MFP is a pure Schwarz-type
  // iteration and must converge to the global discrete solution.
  const int64_t m = 8;
  auto problem = make_problem(32, 32, m);
  mosaic::HarmonicKernelSolver solver(m);
  mosaic::MfpOptions opts;
  opts.max_iters = 2000;
  opts.tol = 1e-9;
  auto result = mosaic::mosaic_predict(solver, 32, 32, problem.boundary, opts);
  EXPECT_LT(result.iterations, 2000);
  const double mae = la::Grid2D::mean_abs_diff(result.solution, problem.solution);
  EXPECT_LT(mae, 2e-4) << "iterations " << result.iterations;
}

TEST(MosaicPredictor, RectangularDomain) {
  const int64_t m = 8;
  auto problem = make_problem(32, 16, m);
  mosaic::HarmonicKernelSolver solver(m);
  mosaic::MfpOptions opts;
  opts.max_iters = 1500;
  opts.tol = 1e-9;
  auto result = mosaic::mosaic_predict(solver, 32, 16, problem.boundary, opts);
  EXPECT_LT(la::Grid2D::mean_abs_diff(result.solution, problem.solution), 2e-4);
}

TEST(MosaicPredictor, BatchedEqualsUnbatched) {
  const int64_t m = 8;
  auto problem = make_problem(16, 16, m);
  mosaic::HarmonicKernelSolver solver(m);
  mosaic::MfpOptions opts;
  opts.max_iters = 60;
  opts.tol = 0;  // run a fixed number of iterations
  opts.batched = true;
  auto a = mosaic::mosaic_predict(solver, 16, 16, problem.boundary, opts);
  opts.batched = false;
  auto b = mosaic::mosaic_predict(solver, 16, 16, problem.boundary, opts);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_LT(la::Grid2D::max_abs_diff(a.solution, b.solution), 1e-12);
}

TEST(MosaicPredictor, InitSchemesConvergeToSameSolution) {
  // The fixed point is independent of the initial lattice state.
  const int64_t m = 8;
  auto problem = make_problem(32, 32, m, 5);
  mosaic::HarmonicKernelSolver solver(m);
  mosaic::MfpOptions opts;
  opts.max_iters = 3000;
  opts.tol = 1e-10;
  opts.init = mosaic::LatticeInit::kCoons;
  auto coons = mosaic::mosaic_predict(solver, 32, 32, problem.boundary, opts);
  opts.init = mosaic::LatticeInit::kZero;
  auto zero = mosaic::mosaic_predict(solver, 32, 32, problem.boundary, opts);
  EXPECT_LT(la::Grid2D::max_abs_diff(coons.solution, zero.solution), 1e-6);
  EXPECT_LT(la::Grid2D::mean_abs_diff(coons.solution, problem.solution), 1e-4);
}

TEST(MosaicPredictor, MaeTargetStopsIteration) {
  const int64_t m = 8;
  auto problem = make_problem(16, 16, m, 7);
  mosaic::HarmonicKernelSolver solver(m);
  mosaic::MfpOptions opts;
  opts.max_iters = 4000;
  opts.tol = 0;
  opts.reference = &problem.solution;
  opts.target_mae = 0.05;
  opts.check_every = 4;
  auto result = mosaic::mosaic_predict(solver, 16, 16, problem.boundary, opts);
  EXPECT_LT(result.iterations, 4000);
  EXPECT_LT(result.lattice_mae, 0.05 + 1e-9);
}

TEST(MosaicPredictor, DomainNotMultipleOfSubdomainThrows) {
  mosaic::HarmonicKernelSolver solver(8);
  std::vector<double> boundary(static_cast<std::size_t>(la::perimeter_size(21, 17)), 0.0);
  EXPECT_THROW(mosaic::mosaic_predict(solver, 20, 16, boundary), std::invalid_argument);
}

TEST(MosaicPredictor, TimingBreakdownPopulated) {
  const int64_t m = 8;
  auto problem = make_problem(16, 16, m, 9);
  mosaic::HarmonicKernelSolver solver(m);
  mosaic::MfpOptions opts;
  opts.max_iters = 16;
  opts.tol = 0;
  auto result = mosaic::mosaic_predict(solver, 16, 16, problem.boundary, opts);
  EXPECT_GT(result.inference_seconds, 0.0);
  EXPECT_GT(result.boundary_io_seconds, 0.0);
}

// ---- distributed predictor (Algorithm 2) ----

class DistributedMfp : public ::testing::TestWithParam<int> {};

TEST_P(DistributedMfp, MatchesSingleRankResult) {
  const int ranks = GetParam();
  const int64_t m = 8;
  const int64_t cells = 32;
  auto problem = make_problem(cells, cells, m, 11);
  mosaic::HarmonicKernelSolver solver(m);

  mosaic::MfpOptions opts;
  opts.max_iters = 120;
  opts.tol = 0;  // fixed iteration count for exact comparison
  auto single = mosaic::mosaic_predict(solver, cells, cells, problem.boundary, opts);

  mf::comm::CartesianGrid grid(ranks);
  mf::comm::World world(ranks);
  std::vector<la::Grid2D> solutions(static_cast<std::size_t>(ranks));
  world.run([&](mf::comm::Comm& c) {
    auto result = mosaic::distributed_mosaic_predict(c, grid, solver, cells,
                                                     cells, problem.boundary, opts);
    solutions[static_cast<std::size_t>(c.rank())] = result.solution;
  });

  for (int r = 0; r < ranks; ++r) {
    // Relaxed synchronization delivers every fresh write before the next
    // phase reads it, so the distributed iterates match the sequential
    // algorithm exactly (up to floating-point associativity).
    EXPECT_LT(la::Grid2D::max_abs_diff(solutions[static_cast<std::size_t>(r)],
                                       single.solution),
              1e-10)
        << "rank " << r << " of " << ranks;
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedMfp, ::testing::Values(1, 2, 4));

TEST(DistributedMfpChecks, ConvergesToReferenceAndReportsTimings) {
  const int64_t m = 8, cells = 32;
  auto problem = make_problem(cells, cells, m, 13);
  mosaic::HarmonicKernelSolver solver(m);
  mosaic::MfpOptions opts;
  opts.max_iters = 2000;
  opts.tol = 1e-9;
  opts.reference = &problem.solution;

  mf::comm::CartesianGrid grid(4);
  mf::comm::World world(4);
  std::vector<mosaic::DistMfpResult> results(4);
  world.run([&](mf::comm::Comm& c) {
    results[static_cast<std::size_t>(c.rank())] = mosaic::distributed_mosaic_predict(
        c, grid, solver, cells, cells, problem.boundary, opts);
  });
  for (const auto& r : results) {
    EXPECT_LT(r.mae, 2e-4);
    EXPECT_GT(r.timings.inference_seconds, 0.0);
    EXPECT_GT(r.timings.sendrecv_modeled_seconds, 0.0);
    EXPECT_GT(r.timings.allgather_modeled_seconds, 0.0);
  }
}

TEST(DistributedMfpChecks, BadDecompositionThrows) {
  mosaic::HarmonicKernelSolver solver(8);
  mf::comm::CartesianGrid grid(4);
  mf::comm::World world(4);
  std::vector<double> boundary(static_cast<std::size_t>(la::perimeter_size(25, 25)), 0.0);
  EXPECT_THROW(world.run([&](mf::comm::Comm& c) {
    mosaic::distributed_mosaic_predict(c, grid, solver, 24, 24, boundary, {});
  }),
               std::invalid_argument);
}

// ---- classical Schwarz baseline ----

TEST(Schwarz, AlternatingConvergesToGlobalSolution) {
  const int64_t m = 8;
  auto problem = make_problem(32, 32, m, 15);
  la::Grid2D start(33, 33);
  la::apply_perimeter(start, problem.boundary);
  mosaic::SchwarzOptions opts;
  opts.block_cells = 8;
  opts.overlap = 4;
  opts.max_iters = 100;
  opts.tol = 1e-9;
  auto result = mosaic::schwarz_solve(start, 1.0 / m, opts);
  EXPECT_LT(result.iterations, 100);
  EXPECT_LT(la::Grid2D::mean_abs_diff(result.solution, problem.solution), 1e-5);
}

TEST(Schwarz, AdditiveNeedsMoreIterationsThanAlternating) {
  const int64_t m = 8;
  auto problem = make_problem(16, 16, m, 17);
  la::Grid2D start(17, 17);
  la::apply_perimeter(start, problem.boundary);
  mosaic::SchwarzOptions opts;
  opts.block_cells = 8;
  opts.overlap = 2;
  opts.max_iters = 200;
  opts.tol = 1e-8;
  opts.variant = mosaic::SchwarzVariant::kAlternating;
  auto alt = mosaic::schwarz_solve(start, 1.0 / m, opts);
  opts.variant = mosaic::SchwarzVariant::kAdditive;
  auto add = mosaic::schwarz_solve(start, 1.0 / m, opts);
  EXPECT_LE(alt.iterations, add.iterations);
  EXPECT_LT(la::Grid2D::mean_abs_diff(add.solution, problem.solution), 1e-5);
}

TEST(Schwarz, MoreOverlapConvergesFaster) {
  // The classical Schwarz property quoted in Sec. 2.3 of the paper.
  const int64_t m = 8;
  auto problem = make_problem(32, 32, m, 19);
  la::Grid2D start(33, 33);
  la::apply_perimeter(start, problem.boundary);
  mosaic::SchwarzOptions opts;
  opts.block_cells = 8;
  opts.max_iters = 300;
  opts.tol = 1e-8;
  opts.overlap = 2;
  auto small = mosaic::schwarz_solve(start, 1.0 / m, opts);
  opts.overlap = 6;
  auto large = mosaic::schwarz_solve(start, 1.0 / m, opts);
  EXPECT_LT(large.iterations, small.iterations);
}

TEST(DistributedMfpChecks, CommunicationAvoidingVariantStillConverges) {
  // halo_every > 1 (the paper's Sec. 5.3 communication-avoiding proposal)
  // trades staleness for fewer messages: it must still converge, possibly
  // needing more iterations, with fewer halo messages.
  const int64_t m = 8, cells = 32;
  auto problem = make_problem(cells, cells, m, 23);
  mosaic::HarmonicKernelSolver solver(m);
  mosaic::MfpOptions opts;
  opts.max_iters = 4000;
  opts.tol = 0;
  opts.reference = &problem.solution;
  opts.target_mae = 0.01;
  opts.check_every = 4;

  auto run = [&](int64_t halo_every) {
    opts.halo_every = halo_every;
    mf::comm::CartesianGrid grid(4);
    mf::comm::World world(4);
    std::vector<mosaic::DistMfpResult> results(4);
    std::vector<std::uint64_t> msgs(4);
    world.run([&](mf::comm::Comm& c) {
      results[static_cast<std::size_t>(c.rank())] =
          mosaic::distributed_mosaic_predict(c, grid, solver, cells, cells,
                                             problem.boundary, opts);
      msgs[static_cast<std::size_t>(c.rank())] = c.stats().sendrecv.messages;
    });
    return std::make_pair(results[0], msgs[0]);
  };

  auto [exact, exact_msgs] = run(1);
  auto [stale, stale_msgs] = run(4);
  EXPECT_LT(exact.mae, 0.01 + 1e-12);
  EXPECT_LT(stale.mae, 0.01 + 1e-12);
  EXPECT_GE(stale.iterations, exact.iterations);       // staleness costs iterations
  EXPECT_LT(stale_msgs, exact_msgs);                   // but saves messages
}
