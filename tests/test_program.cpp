// Compiled tape programs (ad/program.hpp): capture/replay correctness.
//
//  * The replayed training step must be *bitwise* identical to the eager
//    one — same losses, same gradients, same weight trajectory — because
//    replay re-executes the exact kernel sequence the eager step ran.
//  * Second-order chains (the PDE loss's grad-of-grad) must survive
//    capture: gradients read back after replay are checked against finite
//    differences of the replayed loss.
//  * Shape changes must trigger re-capture; MF_DISABLE_PROGRAM must
//    reproduce eager behavior exactly; steady-state replay must perform
//    zero payload allocations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "ad/engine.hpp"
#include "ad/ops.hpp"
#include "ad/pool.hpp"
#include "ad/program.hpp"
#include "gp/dataset.hpp"
#include "mosaic/subdomain_solver.hpp"
#include "mosaic/trainer.hpp"
#include "optim/optimizers.hpp"
#include "util/rng.hpp"

namespace {

using namespace mf;
using ad::Tensor;
namespace ops = ad::ops;

/// RAII toggle for the global program switch (tests must not leak state).
class ProgramEnabledGuard {
 public:
  explicit ProgramEnabledGuard(bool on) : prev_(ad::program_set_enabled(on)) {}
  ~ProgramEnabledGuard() { ad::program_set_enabled(prev_); }

 private:
  bool prev_;
};

/// Same for the fusion switch (checked at capture/lowering time).
class FusionEnabledGuard {
 public:
  explicit FusionEnabledGuard(bool on)
      : prev_(ad::program_fusion_set_enabled(on)) {}
  ~FusionEnabledGuard() { ad::program_fusion_set_enabled(prev_); }

 private:
  bool prev_;
};

void expect_adam_state_bitwise_equal(const optim::Adam& a,
                                     const optim::Adam& b) {
  ASSERT_EQ(a.steps_taken(), b.steps_taken());
  const auto &ma = a.moments_m(), &mb = b.moments_m();
  const auto &va = a.moments_v(), &vb = b.moments_v();
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t i = 0; i < ma.size(); ++i) {
    ASSERT_EQ(ma[i].size(), mb[i].size());
    for (std::size_t j = 0; j < ma[i].size(); ++j) {
      ASSERT_EQ(ma[i][j], mb[i][j]) << "m[" << i << "][" << j << "]";
      ASSERT_EQ(va[i][j], vb[i][j]) << "v[" << i << "][" << j << "]";
    }
  }
}

mosaic::SdnetConfig small_net_config(int64_t m) {
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = 4 * m;
  cfg.hidden_width = 16;
  cfg.mlp_depth = 2;
  return cfg;
}

mosaic::TrainConfig small_train_config() {
  mosaic::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 4;
  cfg.q_data = 8;
  cfg.q_colloc = 6;
  cfg.pde_loss_weight = 0.3;
  cfg.optimizer = mosaic::OptimizerKind::kAdamW;
  return cfg;
}

void expect_params_bitwise_equal(const mosaic::Sdnet& a,
                                 const mosaic::Sdnet& b,
                                 bool compare_grads) {
  auto pa = a.parameters();
  auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].numel(), pb[i].numel());
    for (int64_t j = 0; j < pa[i].numel(); ++j) {
      ASSERT_EQ(pa[i].flat(j), pb[i].flat(j)) << "param " << i << "[" << j << "]";
    }
    if (compare_grads) {
      Tensor ga = pa[i].grad(), gb = pb[i].grad();
      ASSERT_EQ(ga.defined(), gb.defined());
      if (!ga.defined()) continue;
      for (int64_t j = 0; j < ga.numel(); ++j) {
        ASSERT_EQ(ga.flat(j), gb.flat(j)) << "grad " << i << "[" << j << "]";
      }
    }
  }
}

TEST(Program, TrainingReplayBitwiseMatchesEager) {
  const int64_t m = 4;
  const auto net_cfg = small_net_config(m);
  const auto cfg = small_train_config();

  // Two identical replicas fed identical batch streams; one trains
  // eagerly, one through the compiled program (capture on the first
  // iteration, replay on every following one).
  util::Rng rng_a(7), rng_b(7);
  mosaic::Sdnet eager_net(net_cfg, rng_a);
  mosaic::Sdnet replay_net(net_cfg, rng_b);
  expect_params_bitwise_equal(eager_net, replay_net, false);

  gp::LaplaceDatasetGenerator gen_a(m, {}, 11), gen_b(m, {}, 11);
  auto bvps_a = gen_a.generate_many(6);
  auto bvps_b = gen_b.generate_many(6);

  optim::Adam opt_a(eager_net.parameters(), 1e-3);
  optim::Adam opt_b(replay_net.parameters(), 1e-3);

  mosaic::CompiledTrainStep cstep(replay_net, cfg);
  for (int iter = 0; iter < 6; ++iter) {
    auto batch_a = gen_a.make_batch(bvps_a, cfg.q_data, cfg.q_colloc);
    auto batch_b = gen_b.make_batch(bvps_b, cfg.q_data, cfg.q_colloc);

    double ld_a, lp_a;
    {
      ProgramEnabledGuard off(false);
      eager_net.zero_grad();
      std::tie(ld_a, lp_a) = mosaic::training_step(eager_net, batch_a, cfg);
    }
    double ld_b, lp_b;
    {
      ProgramEnabledGuard on(true);
      std::tie(ld_b, lp_b) = cstep.run(batch_b);
    }
    ASSERT_EQ(ld_a, ld_b) << "iter " << iter;
    ASSERT_EQ(lp_a, lp_b) << "iter " << iter;
    expect_params_bitwise_equal(eager_net, replay_net, true);
    opt_a.step();
    opt_b.step();
    expect_params_bitwise_equal(eager_net, replay_net, false);
    if (iter >= 1) {
      EXPECT_TRUE(cstep.last_was_replay()) << "iter " << iter;
    }
  }
  const auto st = cstep.program().stats();
  EXPECT_EQ(st.captures, 1u);
  EXPECT_EQ(st.replays, 5u);
  EXPECT_GT(st.steps, 0u);
}

TEST(Program, SecondOrderGradcheckThroughReplay) {
  ProgramEnabledGuard on(true);
  util::Rng rng(3);
  Tensor x = Tensor::zeros({5, 2});
  Tensor w = Tensor::zeros({2, 3});
  for (int64_t i = 0; i < x.numel(); ++i) x.flat(i) = rng.uniform(-1.0, 1.0);
  for (int64_t i = 0; i < w.numel(); ++i) w.flat(i) = rng.uniform(-0.8, 0.8);
  w.set_requires_grad(true);

  // Loss with a genuine second-order chain: differentiate the network
  // output w.r.t. its input under create_graph, then differentiate the
  // squared gradient w.r.t. the weights (the PDE-loss pattern).
  ad::Program program;
  Tensor loss;
  auto step = [&] {
    Tensor xl = x.detach();
    xl.set_requires_grad(true);
    Tensor y = ops::sum(ops::gelu(ops::matmul(xl, w)));
    Tensor dx = ad::grad(y, {xl}, Tensor(), /*create_graph=*/true)[0];
    loss = ops::mean(ops::square(dx));
    w.zero_grad();
    ad::backward(loss);
  };
  program.capture(step);

  // Replays recompute loss and w.grad from the live contents of x and w.
  program.replay();
  Tensor g = w.grad();
  ASSERT_TRUE(g.defined());
  std::vector<double> analytic(static_cast<std::size_t>(g.numel()));
  for (int64_t j = 0; j < g.numel(); ++j) analytic[static_cast<std::size_t>(j)] = g.flat(j);

  const double eps = 1e-6;
  for (int64_t j = 0; j < w.numel(); ++j) {
    const double w0 = w.flat(j);
    w.flat(j) = w0 + eps;
    program.replay();
    const double lp = loss.item();
    w.flat(j) = w0 - eps;
    program.replay();
    const double lm = loss.item();
    w.flat(j) = w0;
    const double fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(analytic[static_cast<std::size_t>(j)], fd,
                1e-5 * std::max(1.0, std::abs(fd)))
        << "w[" << j << "]";
  }
}

TEST(Program, ShapeChangeTriggersRecapture) {
  ProgramEnabledGuard on(true);
  const int64_t m = 4;
  const auto net_cfg = small_net_config(m);
  auto cfg = small_train_config();

  util::Rng rng(5);
  mosaic::Sdnet net(net_cfg, rng);
  gp::LaplaceDatasetGenerator gen(m, {}, 21);
  auto bvps = gen.generate_many(4);

  mosaic::CompiledTrainStep cstep(net, cfg);
  auto b4 = gen.make_batch(bvps, cfg.q_data, cfg.q_colloc);
  cstep.run(b4);
  EXPECT_EQ(cstep.program().stats().captures, 1u);
  cstep.run(b4);
  EXPECT_TRUE(cstep.last_was_replay());

  // Different batch size -> different leaf shapes -> fresh capture.
  std::vector<gp::SolvedBvp> fewer(bvps.begin(), bvps.begin() + 2);
  auto b2 = gen.make_batch(fewer, cfg.q_data, cfg.q_colloc);
  cstep.run(b2);
  EXPECT_FALSE(cstep.last_was_replay());
  EXPECT_EQ(cstep.program().stats().captures, 2u);  // re-captured
  cstep.run(b2);
  EXPECT_TRUE(cstep.last_was_replay());

  // Different collocation count changes only the PDE branch shapes.
  auto b_qc = gen.make_batch(fewer, cfg.q_data, cfg.q_colloc + 2);
  cstep.run(b_qc);
  EXPECT_FALSE(cstep.last_was_replay());
}

TEST(Program, DisabledHatchReproducesEagerExactly) {
  const int64_t m = 4;
  const auto net_cfg = small_net_config(m);
  const auto cfg = small_train_config();

  util::Rng rng_a(9), rng_b(9);
  mosaic::Sdnet net_a(net_cfg, rng_a);
  mosaic::Sdnet net_b(net_cfg, rng_b);
  gp::LaplaceDatasetGenerator gen_a(m, {}, 31), gen_b(m, {}, 31);
  auto bvps_a = gen_a.generate_many(4);
  auto bvps_b = gen_b.generate_many(4);

  ProgramEnabledGuard off(false);
  mosaic::CompiledTrainStep cstep(net_b, cfg);
  for (int iter = 0; iter < 3; ++iter) {
    auto batch_a = gen_a.make_batch(bvps_a, cfg.q_data, cfg.q_colloc);
    auto batch_b = gen_b.make_batch(bvps_b, cfg.q_data, cfg.q_colloc);
    net_a.zero_grad();
    auto [ld_a, lp_a] = mosaic::training_step(net_a, batch_a, cfg);
    auto [ld_b, lp_b] = cstep.run(batch_b);
    ASSERT_EQ(ld_a, ld_b);
    ASSERT_EQ(lp_a, lp_b);
    EXPECT_FALSE(cstep.last_was_replay());
    expect_params_bitwise_equal(net_a, net_b, true);
  }
  EXPECT_FALSE(cstep.program().captured());
  EXPECT_EQ(cstep.program().stats().captures, 0u);
}

TEST(Program, EagerFallbackInvalidatesCapturedPlan) {
  // An eager-fallback run() re-binds every parameter's .grad to fresh
  // tensors; a kept plan would then replay into the orphaned buffers.
  // The fallback must drop the plan so the next enabled run re-captures
  // against the live gradient bindings.
  const int64_t m = 4;
  const auto net_cfg = small_net_config(m);
  const auto cfg = small_train_config();
  util::Rng rng_a(51), rng_b(51);
  mosaic::Sdnet eager_net(net_cfg, rng_a);
  mosaic::Sdnet prog_net(net_cfg, rng_b);
  gp::LaplaceDatasetGenerator gen_a(m, {}, 61), gen_b(m, {}, 61);
  auto bvps_a = gen_a.generate_many(4);
  auto bvps_b = gen_b.generate_many(4);

  mosaic::CompiledTrainStep cstep(prog_net, cfg);
  for (int iter = 0; iter < 4; ++iter) {
    auto batch_a = gen_a.make_batch(bvps_a, cfg.q_data, cfg.q_colloc);
    auto batch_b = gen_b.make_batch(bvps_b, cfg.q_data, cfg.q_colloc);
    eager_net.zero_grad();
    mosaic::training_step(eager_net, batch_a, cfg);
    // Capture on iter 0, eager fallback on iter 1, re-capture on 2,
    // replay on 3 — gradients must track the eager twin throughout.
    ProgramEnabledGuard toggle(iter != 1);
    cstep.run(batch_b);
    expect_params_bitwise_equal(eager_net, prog_net, true);
  }
  EXPECT_TRUE(cstep.last_was_replay());
}

TEST(Program, BatchedInferenceReplayMatchesEager) {
  const int64_t m = 4;
  util::Rng rng(13);
  auto net = std::make_shared<mosaic::Sdnet>(small_net_config(m), rng);
  mosaic::NeuralSubdomainSolver solver(net, m);

  const int64_t G = 4 * m;
  mosaic::QueryList queries;
  for (int k = 0; k < 5; ++k) queries.emplace_back(0.1 + 0.15 * k, 0.3);

  util::Rng brng(17);
  auto make_boundaries = [&](int64_t B) {
    std::vector<std::vector<double>> bs(static_cast<std::size_t>(B));
    for (auto& b : bs) {
      b.resize(static_cast<std::size_t>(G));
      for (auto& v : b) v = brng.uniform(-1.0, 1.0);
    }
    return bs;
  };
  const auto batch1 = make_boundaries(6);
  const auto batch2 = make_boundaries(6);
  const auto batch3 = make_boundaries(6);

  std::vector<std::vector<double>> eager1, eager2, eager3, prog1, prog2, prog3;
  {
    ProgramEnabledGuard off(false);
    solver.predict(batch1, queries, eager1);
    solver.predict(batch2, queries, eager2);
    solver.predict(batch3, queries, eager3);
  }
  {
    ProgramEnabledGuard on(true);
    solver.predict(batch1, queries, prog1);  // first sight: eager
    solver.predict(batch2, queries, prog2);  // recurring shape: capture
    solver.predict(batch3, queries, prog3);  // replay
    const auto st = solver.thread_program_stats();
    EXPECT_EQ(st.captures, 1u);
    EXPECT_EQ(st.replays, 1u);
  }
  for (std::size_t b = 0; b < eager1.size(); ++b) {
    for (std::size_t k = 0; k < eager1[b].size(); ++k) {
      ASSERT_EQ(eager1[b][k], prog1[b][k]);
      ASSERT_EQ(eager2[b][k], prog2[b][k]);
      ASSERT_EQ(eager3[b][k], prog3[b][k]);
    }
  }
}

TEST(Program, FusedReplayWithInPlanAdamBitwiseMatchesEagerTrajectory) {
  // The strongest parity statement in this file: a compiled step with the
  // optimizer folded into the plan (fusion on) must track a fully eager
  // twin — weights, Adam moments, step counter and both losses — bitwise
  // over a long trajectory, including a changing learning rate (the plan
  // reads the live lr at every replay).
  const int64_t m = 4;
  const auto net_cfg = small_net_config(m);
  const auto cfg = small_train_config();

  util::Rng rng_a(7), rng_b(7);
  mosaic::Sdnet eager_net(net_cfg, rng_a);
  mosaic::Sdnet replay_net(net_cfg, rng_b);
  gp::LaplaceDatasetGenerator gen_a(m, {}, 11), gen_b(m, {}, 11);
  auto bvps_a = gen_a.generate_many(6);
  auto bvps_b = gen_b.generate_many(6);

  optim::Adam opt_a(eager_net.parameters(), 1e-3);
  optim::Adam opt_b(replay_net.parameters(), 1e-3);
  ASSERT_TRUE(opt_b.plan_capturable());

  FusionEnabledGuard fuse_on(true);
  mosaic::CompiledTrainStep cstep(replay_net, cfg, &opt_b);
  EXPECT_TRUE(cstep.optimizer_in_plan());
  const int kSteps = 52;
  for (int iter = 0; iter < kSteps; ++iter) {
    const double lr = 1e-3 * (1.0 + 0.01 * iter);
    opt_a.set_lr(lr);
    opt_b.set_lr(lr);
    auto batch_a = gen_a.make_batch(bvps_a, cfg.q_data, cfg.q_colloc);
    auto batch_b = gen_b.make_batch(bvps_b, cfg.q_data, cfg.q_colloc);

    double ld_a, lp_a;
    {
      ProgramEnabledGuard off(false);
      eager_net.zero_grad();
      std::tie(ld_a, lp_a) = mosaic::training_step(eager_net, batch_a, cfg);
      opt_a.step();
    }
    double ld_b, lp_b;
    {
      ProgramEnabledGuard on(true);
      std::tie(ld_b, lp_b) = cstep.run(batch_b);
    }
    ASSERT_EQ(ld_a, ld_b) << "iter " << iter;
    ASSERT_EQ(lp_a, lp_b) << "iter " << iter;
    // The compiled twin's .grad buffers live only inside the plan now, so
    // weights + optimizer state are the comparable surface — and they are
    // exactly what the in-plan update must keep bitwise.
    expect_params_bitwise_equal(eager_net, replay_net, false);
    expect_adam_state_bitwise_equal(opt_a, opt_b);
  }
  const auto st = cstep.program().stats();
  EXPECT_EQ(st.captures, 1u);
  EXPECT_EQ(st.replays, static_cast<std::uint64_t>(kSteps - 1));
  EXPECT_GT(st.fused_steps, 0u) << "training plan should contain fused runs";
  EXPECT_GT(st.fused_ops, st.fused_steps);
  EXPECT_GT(st.optim_steps, 0u) << "Adam update should be in-plan";
}

TEST(Program, FusionDisabledHatchIsBitwiseIdentical) {
  // MF_DISABLE_FUSION keeps programs on but lowers every elementwise step
  // individually; both plans must produce the identical trajectory.
  const int64_t m = 4;
  const auto net_cfg = small_net_config(m);
  const auto cfg = small_train_config();

  util::Rng rng_a(19), rng_b(19);
  mosaic::Sdnet fused_net(net_cfg, rng_a);
  mosaic::Sdnet plain_net(net_cfg, rng_b);
  gp::LaplaceDatasetGenerator gen_a(m, {}, 71), gen_b(m, {}, 71);
  auto bvps_a = gen_a.generate_many(5);
  auto bvps_b = gen_b.generate_many(5);
  optim::Adam opt_a(fused_net.parameters(), 2e-3);
  optim::Adam opt_b(plain_net.parameters(), 2e-3);

  ProgramEnabledGuard on(true);
  mosaic::CompiledTrainStep fused_step(fused_net, cfg, &opt_a);
  mosaic::CompiledTrainStep plain_step(plain_net, cfg, &opt_b);
  for (int iter = 0; iter < 8; ++iter) {
    auto batch_a = gen_a.make_batch(bvps_a, cfg.q_data, cfg.q_colloc);
    auto batch_b = gen_b.make_batch(bvps_b, cfg.q_data, cfg.q_colloc);
    double ld_a, lp_a, ld_b, lp_b;
    {
      FusionEnabledGuard fuse(true);
      std::tie(ld_a, lp_a) = fused_step.run(batch_a);
    }
    {
      FusionEnabledGuard nofuse(false);
      std::tie(ld_b, lp_b) = plain_step.run(batch_b);
    }
    ASSERT_EQ(ld_a, ld_b) << "iter " << iter;
    ASSERT_EQ(lp_a, lp_b) << "iter " << iter;
    expect_params_bitwise_equal(fused_net, plain_net, false);
    expect_adam_state_bitwise_equal(opt_a, opt_b);
  }
  EXPECT_GT(fused_step.program().stats().fused_steps, 0u);
  EXPECT_EQ(plain_step.program().stats().fused_steps, 0u);
  // Fusion drops the folded intermediates from the packed arena.
  EXPECT_LT(fused_step.program().stats().steps,
            plain_step.program().stats().steps);
  EXPECT_LE(fused_step.program().stats().arena_bytes,
            plain_step.program().stats().arena_bytes);
}

TEST(Program, LaterNonFusedReaderBlocksFusion) {
  // add -> gelu is an adjacent elementwise producer->consumer pair, but
  // the add's output is also read by a later non-elementwise step (sum).
  // Folding the pair would leave that reader with a never-materialized
  // operand, so the pass must keep the whole run unfused.
  ProgramEnabledGuard on(true);
  Tensor x = Tensor::zeros({64});
  util::Rng rng(91);
  for (int64_t i = 0; i < x.numel(); ++i) x.flat(i) = rng.uniform(-1.0, 1.0);

  ad::Program blocked;
  Tensor out_blocked;
  blocked.capture([&] {
    Tensor t1 = ops::add(x, x);
    Tensor g = ops::gelu(t1);   // adjacent elementwise consumer of t1
    Tensor s = ops::sum(t1);    // later non-fused reader of t1
    out_blocked = ops::add(g, s);
  });
  EXPECT_EQ(blocked.stats().fused_steps, 0u)
      << "a slot read by a later non-fused step must block fusion";

  // Control: the identical chain without the extra reader fuses whole.
  ad::Program chained;
  Tensor out_chained;
  chained.capture([&] {
    out_chained = ops::mul(ops::gelu(ops::add(x, x)), x);
  });
  EXPECT_EQ(chained.stats().fused_steps, 1u);
  EXPECT_EQ(chained.stats().fused_ops, 3u);

  // Both programs replay bitwise against a fresh eager evaluation, also
  // after the leaf contents change.
  for (int round = 0; round < 2; ++round) {
    blocked.replay();
    chained.replay();
    Tensor eager_blocked, eager_chained;
    {
      Tensor t1 = ops::add(x, x);
      eager_blocked = ops::add(ops::gelu(t1), ops::sum(t1));
      eager_chained = ops::mul(ops::gelu(ops::add(x, x)), x);
    }
    for (int64_t i = 0; i < out_blocked.numel(); ++i) {
      ASSERT_EQ(out_blocked.flat(i), eager_blocked.flat(i)) << "round " << round;
    }
    for (int64_t i = 0; i < out_chained.numel(); ++i) {
      ASSERT_EQ(out_chained.flat(i), eager_chained.flat(i)) << "round " << round;
    }
    for (int64_t i = 0; i < x.numel(); ++i) x.flat(i) = rng.uniform(-1.0, 1.0);
  }
}

TEST(Program, SteadyStateReplayWithInPlanOptimizerIsAllocationFree) {
  // PR 4's allocation-free guarantee must survive the optimizer moving
  // into the plan: replays that now also perform the Adam update still
  // touch no payload allocations in steady state.
  ProgramEnabledGuard on(true);
  const int64_t m = 4;
  const auto net_cfg = small_net_config(m);
  const auto cfg = small_train_config();

  util::Rng rng(29);
  mosaic::Sdnet net(net_cfg, rng);
  gp::LaplaceDatasetGenerator gen(m, {}, 43);
  auto bvps = gen.generate_many(4);
  optim::Adam opt(net.parameters(), 1e-3);

  mosaic::CompiledTrainStep cstep(net, cfg, &opt);
  auto one = [&] {
    auto batch = gen.make_batch(bvps, cfg.q_data, cfg.q_colloc);
    cstep.run(batch);
  };
  for (int i = 0; i < 3; ++i) one();  // capture + warm the pool
  ASSERT_TRUE(cstep.optimizer_in_plan());
  const ad::PoolStats p0 = ad::PayloadPool::stats();
  for (int i = 0; i < 5; ++i) one();
  const ad::PoolStats p1 = ad::PayloadPool::stats();
  EXPECT_EQ(p1.fresh_allocs() + p1.adopted, p0.fresh_allocs() + p0.adopted)
      << "steady-state replay with the optimizer in-plan must not allocate";
  EXPECT_TRUE(cstep.last_was_replay());
  EXPECT_GT(cstep.program().stats().optim_steps, 0u);
}

TEST(Program, InPlanLambBitwiseMatchesEagerTrajectory) {
  // LAMB's whole-tensor update (Adam direction, norm accumulation, trust
  // scaling) now records into the plan via kLambParam; the compiled twin
  // must track a fully eager twin bitwise — weights, moments, step
  // counter and both losses — across a trajectory with a moving lr.
  const int64_t m = 4;
  const auto net_cfg = small_net_config(m);
  auto cfg = small_train_config();
  cfg.optimizer = mosaic::OptimizerKind::kLamb;

  util::Rng rng_a(7), rng_b(7);
  mosaic::Sdnet eager_net(net_cfg, rng_a);
  mosaic::Sdnet replay_net(net_cfg, rng_b);
  gp::LaplaceDatasetGenerator gen_a(m, {}, 11), gen_b(m, {}, 11);
  auto bvps_a = gen_a.generate_many(6);
  auto bvps_b = gen_b.generate_many(6);

  optim::Lamb opt_a(eager_net.parameters(), 1e-3, 0.9, 0.999, 1e-6, 0.01);
  optim::Lamb opt_b(replay_net.parameters(), 1e-3, 0.9, 0.999, 1e-6, 0.01);
  ASSERT_TRUE(opt_b.plan_capturable());

  mosaic::CompiledTrainStep cstep(replay_net, cfg, &opt_b);
  EXPECT_TRUE(cstep.optimizer_in_plan());
  const int kSteps = 20;
  for (int iter = 0; iter < kSteps; ++iter) {
    const double lr = 1e-3 * (1.0 + 0.01 * iter);
    opt_a.set_lr(lr);
    opt_b.set_lr(lr);
    auto batch_a = gen_a.make_batch(bvps_a, cfg.q_data, cfg.q_colloc);
    auto batch_b = gen_b.make_batch(bvps_b, cfg.q_data, cfg.q_colloc);
    double ld_a, lp_a;
    {
      ProgramEnabledGuard off(false);
      eager_net.zero_grad();
      std::tie(ld_a, lp_a) = mosaic::training_step(eager_net, batch_a, cfg);
      opt_a.step();
    }
    double ld_b, lp_b;
    {
      ProgramEnabledGuard on(true);
      std::tie(ld_b, lp_b) = cstep.run(batch_b);
    }
    ASSERT_EQ(ld_a, ld_b) << "iter " << iter;
    ASSERT_EQ(lp_a, lp_b) << "iter " << iter;
    expect_params_bitwise_equal(eager_net, replay_net, false);
    expect_adam_state_bitwise_equal(opt_a, opt_b);
  }
  const auto st = cstep.program().stats();
  EXPECT_EQ(st.captures, 1u);
  EXPECT_EQ(st.replays, static_cast<std::uint64_t>(kSteps - 1));
  EXPECT_GT(st.optim_steps, 0u) << "LAMB update should be in-plan";
}

TEST(Program, SgdInsideCapturePoisonsThePlanNotTheStep) {
  // SGD has no in-plan form. Stepping it inside a capture must leave NO
  // half-captured plan behind (a plan that replays forward/backward but
  // silently skips the update): the capture is poisoned, the step runs
  // eagerly — once — and the compiled wrapper stays eager from then on,
  // tracking an eager twin bitwise.
  const int64_t m = 4;
  const auto net_cfg = small_net_config(m);
  auto cfg = small_train_config();
  cfg.optimizer = mosaic::OptimizerKind::kSgd;

  util::Rng rng_a(7), rng_b(7);
  mosaic::Sdnet eager_net(net_cfg, rng_a);
  mosaic::Sdnet compiled_net(net_cfg, rng_b);
  gp::LaplaceDatasetGenerator gen_a(m, {}, 11), gen_b(m, {}, 11);
  auto bvps_a = gen_a.generate_many(6);
  auto bvps_b = gen_b.generate_many(6);

  optim::Sgd opt_a(eager_net.parameters(), 1e-3, 0.9, 0.0);
  optim::Sgd opt_b(compiled_net.parameters(), 1e-3, 0.9, 0.0);
  ASSERT_FALSE(opt_b.plan_capturable());

  ProgramEnabledGuard on(true);
  // Force the poison path: pretend SGD is capturable so CompiledTrainStep
  // records the step body with the optimizer inside. There is no hook for
  // that, so drive the capture directly.
  ad::Program program;
  compiled_net.zero_grad();
  auto batch0 = gen_b.make_batch(bvps_b, cfg.q_data, cfg.q_colloc);
  program.capture([&] {
    (void)mosaic::training_step_graph(compiled_net, batch0, cfg);
    opt_b.step();  // poisons: no kSgd step exists
  });
  EXPECT_FALSE(program.captured())
      << "a capture containing an SGD step must not survive";
  // The body still ran eagerly and exactly once: the eager twin after one
  // identical iteration matches bitwise.
  {
    ProgramEnabledGuard off(false);
    eager_net.zero_grad();
    auto batch_a = gen_a.make_batch(bvps_a, cfg.q_data, cfg.q_colloc);
    (void)mosaic::training_step(eager_net, batch_a, cfg);
    opt_a.step();
  }
  expect_params_bitwise_equal(eager_net, compiled_net, false);

  // The wrapper never puts a non-capturable optimizer inside the plan:
  // the step compiles without the update, SGD runs eagerly after each
  // replay, nothing is poisoned, and the twin stays bitwise.
  mosaic::CompiledTrainStep cstep(compiled_net, cfg, &opt_b);
  EXPECT_FALSE(cstep.optimizer_in_plan());
  for (int iter = 1; iter < 5; ++iter) {
    auto batch_a = gen_a.make_batch(bvps_a, cfg.q_data, cfg.q_colloc);
    auto batch_b = gen_b.make_batch(bvps_b, cfg.q_data, cfg.q_colloc);
    {
      ProgramEnabledGuard off(false);
      eager_net.zero_grad();
      (void)mosaic::training_step(eager_net, batch_a, cfg);
      opt_a.step();
    }
    (void)cstep.run(batch_b);
    if (iter >= 2) {
      EXPECT_TRUE(cstep.last_was_replay()) << "iter " << iter;
    }
    expect_params_bitwise_equal(eager_net, compiled_net, false);
  }
  EXPECT_FALSE(cstep.capture_failed());
}

/// RAII toggles for the wave executor and widening knobs.
class ParallelEnabledGuard {
 public:
  explicit ParallelEnabledGuard(bool on)
      : prev_(ad::program_parallel_set_enabled(on)) {}
  ~ParallelEnabledGuard() { ad::program_parallel_set_enabled(prev_); }

 private:
  bool prev_;
};

class PlanThreadsGuard {
 public:
  explicit PlanThreadsGuard(int n) : prev_(ad::program_set_plan_threads(n)) {}
  ~PlanThreadsGuard() { ad::program_set_plan_threads(prev_); }

 private:
  int prev_;
};

class WideningEnabledGuard {
 public:
  explicit WideningEnabledGuard(bool on)
      : prev_(ad::program_widening_set_enabled(on)) {}
  ~WideningEnabledGuard() { ad::program_widening_set_enabled(prev_); }

 private:
  bool prev_;
};

TEST(Program, ParallelReplayBitwiseMatchesSerial) {
  // The wave executor must be invisible in the bits: the same training
  // plan replayed across N workers and replayed serially produce the
  // same losses, weights and optimizer state at every iteration (the
  // per-step SerialRegionGuard makes a step the unit of parallelism, so
  // every FP reduction runs in its captured order either way).
  const int64_t m = 4;
  const auto net_cfg = small_net_config(m);
  const auto cfg = small_train_config();

  util::Rng rng_a(7), rng_b(7);
  mosaic::Sdnet serial_net(net_cfg, rng_a);
  mosaic::Sdnet parallel_net(net_cfg, rng_b);
  gp::LaplaceDatasetGenerator gen_a(m, {}, 11), gen_b(m, {}, 11);
  auto bvps_a = gen_a.generate_many(6);
  auto bvps_b = gen_b.generate_many(6);
  optim::Adam opt_a(serial_net.parameters(), 1e-3);
  optim::Adam opt_b(parallel_net.parameters(), 1e-3);

  ProgramEnabledGuard on(true);
  mosaic::CompiledTrainStep serial_step(serial_net, cfg, &opt_a);
  mosaic::CompiledTrainStep parallel_step(parallel_net, cfg, &opt_b);
  for (int iter = 0; iter < 6; ++iter) {
    auto batch_a = gen_a.make_batch(bvps_a, cfg.q_data, cfg.q_colloc);
    auto batch_b = gen_b.make_batch(bvps_b, cfg.q_data, cfg.q_colloc);
    double ld_a, lp_a, ld_b, lp_b;
    {
      ParallelEnabledGuard serial(false);
      std::tie(ld_a, lp_a) = serial_step.run(batch_a);
    }
    {
      ParallelEnabledGuard parallel(true);
      PlanThreadsGuard threads(4);
      std::tie(ld_b, lp_b) = parallel_step.run(batch_b);
    }
    ASSERT_EQ(ld_a, ld_b) << "iter " << iter;
    ASSERT_EQ(lp_a, lp_b) << "iter " << iter;
    expect_params_bitwise_equal(serial_net, parallel_net, false);
    expect_adam_state_bitwise_equal(opt_a, opt_b);
  }
  const auto st = parallel_step.program().stats();
  EXPECT_GT(st.waves, 0u);
  EXPECT_LT(st.waves, st.steps)
      << "a training plan should expose cross-step parallelism";
}

TEST(Program, WidenedPlanMatchesPerInstanceReplay) {
  // Plan-level widening parity: a captured matmul+activation evaluated
  // once at width b must be bitwise identical to b/B0 base-width replays
  // of the same instance rows. Also covers the MF_DISABLE_WIDENING hatch
  // and the b == B0 aliasing special case.
  ProgramEnabledGuard on(true);
  ad::NoGradGuard no_grad;
  const int64_t B0 = 2, K = 3, N = 4;
  Tensor x = Tensor::zeros({B0, K});
  Tensor w = Tensor::zeros({K, N});
  util::Rng rng(31);
  for (int64_t i = 0; i < w.numel(); ++i) w.flat(i) = rng.uniform(-1.0, 1.0);
  for (int64_t i = 0; i < x.numel(); ++i) x.flat(i) = rng.uniform(-1.0, 1.0);

  ad::Program p;
  Tensor y;
  p.capture([&] { y = ops::tanh(ops::matmul(x, w)); });
  ASSERT_TRUE(p.captured());
  {
    WideningEnabledGuard off(false);
    EXPECT_FALSE(p.widen({x, y}));
    EXPECT_FALSE(p.widened());
  }
  ASSERT_TRUE(p.widen({x, y}));
  EXPECT_TRUE(p.widened());

  // b == B0: the widened buffers alias the tensors' own payloads.
  EXPECT_EQ(p.widened_buffer(x, B0), x.data());
  EXPECT_EQ(p.widened_buffer(y, B0), y.data());

  const int64_t b = 6;  // factor 3
  std::vector<double> xs(static_cast<std::size_t>(b * K));
  for (auto& v : xs) v = rng.uniform(-1.0, 1.0);
  ad::real* xw = p.widened_buffer(x, b);
  std::copy(xs.begin(), xs.end(), xw);
  p.replay_widened(b);
  std::vector<double> ys(p.widened_buffer(y, b),
                         p.widened_buffer(y, b) + b * N);

  // Reference: replay the base plan chunk by chunk through the tensors'
  // own payloads.
  for (int64_t c = 0; c < b / B0; ++c) {
    std::copy(xs.begin() + c * B0 * K, xs.begin() + (c + 1) * B0 * K, x.data());
    p.replay();
    for (int64_t i = 0; i < B0 * N; ++i) {
      ASSERT_EQ(y.flat(i), ys[static_cast<std::size_t>(c * B0 * N + i)])
          << "chunk " << c << " elem " << i;
    }
  }
  const auto st = p.stats();
  EXPECT_EQ(st.widened_replays, 1u);
  EXPECT_EQ(st.max_widen_batch, b);
  EXPECT_GE(st.wide_instances, 1u);
}

TEST(Program, WidenRejectsInstanceMixingPlans) {
  // Fail-closed: any step that mixes batch instances must refuse
  // widening — the plan stays fully usable for plain replay.
  ProgramEnabledGuard on(true);
  ad::NoGradGuard no_grad;
  Tensor x = Tensor::zeros({2, 3});
  for (int64_t i = 0; i < x.numel(); ++i) x.flat(i) = 0.25 * double(i);

  {
    ad::Program p;
    Tensor y;
    p.capture([&] { y = ops::transpose(x); });
    ASSERT_TRUE(p.captured());
    EXPECT_FALSE(p.widen({x}));      // transpose reshuffles the batch axis
    EXPECT_FALSE(p.widen({x, y}));   // and the declared dim0s disagree
    p.replay();                      // still replayable after refusal
    EXPECT_EQ(y.flat(0), x.flat(0));
  }
  {
    ad::Program p;
    Tensor y;
    p.capture([&] { y = ops::sum(x); });
    ASSERT_TRUE(p.captured());
    EXPECT_FALSE(p.widen({x}));  // full reduction sums across instances
  }
  {
    ad::Program p;
    Tensor y;
    p.capture([&] { y = ops::sum_axis(x, /*axis=*/0, /*keepdim=*/false); });
    ASSERT_TRUE(p.captured());
    EXPECT_FALSE(p.widen({x}));  // axis-0 reduction mixes instances
  }
}

TEST(Program, WidenedBatchedInferenceBitwiseMatchesEager) {
  // Solver-level widening: one plan captured at the base batch serves
  // every multiple of it, bitwise identical to the eager per-batch path
  // and with no additional captures.
  const int64_t m = 4;
  util::Rng rng(13);
  auto net = std::make_shared<mosaic::Sdnet>(small_net_config(m), rng);
  mosaic::NeuralSubdomainSolver solver(net, m);

  const int64_t G = 4 * m;
  mosaic::QueryList queries;
  for (int k = 0; k < 5; ++k) queries.emplace_back(0.1 + 0.15 * k, 0.3);
  util::Rng brng(17);
  auto make_boundaries = [&](int64_t B) {
    std::vector<std::vector<double>> bs(static_cast<std::size_t>(B));
    for (auto& b : bs) {
      b.resize(static_cast<std::size_t>(G));
      for (auto& v : b) v = brng.uniform(-1.0, 1.0);
    }
    return bs;
  };
  const auto base1 = make_boundaries(2), base2 = make_boundaries(2);
  const auto quad = make_boundaries(4), six = make_boundaries(6);

  std::vector<std::vector<double>> e1, e2, e4, e6, p1, p2, p4, p6;
  {
    ProgramEnabledGuard off(false);
    solver.predict(base1, queries, e1);
    solver.predict(base2, queries, e2);
    solver.predict(quad, queries, e4);
    solver.predict(six, queries, e6);
  }
  {
    ProgramEnabledGuard on(true);
    solver.predict(base1, queries, p1);  // first sight: eager
    solver.predict(base2, queries, p2);  // second sight: capture + widen
    solver.predict(quad, queries, p4);   // 2x base: widened replay
    solver.predict(six, queries, p6);    // 3x base: widened replay
    const auto st = solver.thread_program_stats();
    EXPECT_EQ(st.captures, 1u) << "widening must avoid per-shape captures";
    EXPECT_EQ(st.widened_replays, 2u);
    EXPECT_EQ(st.max_widen_batch, 6);
  }
  auto expect_rows_equal = [](const std::vector<std::vector<double>>& a,
                              const std::vector<std::vector<double>>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].size(), b[i].size());
      for (std::size_t k = 0; k < a[i].size(); ++k) {
        ASSERT_EQ(a[i][k], b[i][k]) << "row " << i << " elem " << k;
      }
    }
  };
  expect_rows_equal(e1, p1);
  expect_rows_equal(e2, p2);
  expect_rows_equal(e4, p4);
  expect_rows_equal(e6, p6);
}

TEST(Program, ConcurrentCompiledStepsAreDeterministic) {
  // N threads, each with its own identically-seeded net + compiled step,
  // all replaying through the shared worker pool concurrently: every
  // thread's final weights must match a reference trajectory bitwise.
  const int64_t m = 4;
  const auto net_cfg = small_net_config(m);
  const auto cfg = small_train_config();
  const int kIters = 5;

  auto run_trajectory = [&]() {
    util::Rng rng(7);
    mosaic::Sdnet net(net_cfg, rng);
    gp::LaplaceDatasetGenerator gen(m, {}, 11);
    auto bvps = gen.generate_many(6);
    optim::Adam opt(net.parameters(), 1e-3);
    mosaic::CompiledTrainStep cstep(net, cfg, &opt);
    for (int iter = 0; iter < kIters; ++iter) {
      auto batch = gen.make_batch(bvps, cfg.q_data, cfg.q_colloc);
      cstep.run(batch);
    }
    std::vector<double> flat;
    for (const auto& p : net.parameters()) {
      for (int64_t j = 0; j < p.numel(); ++j) flat.push_back(p.flat(j));
    }
    return flat;
  };

  ProgramEnabledGuard on(true);
  ParallelEnabledGuard parallel(true);
  PlanThreadsGuard threads(3);
  const auto reference = run_trajectory();

  const int kThreads = 4;
  std::vector<std::vector<double>> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] { results[static_cast<std::size_t>(t)] = run_trajectory(); });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    const auto& r = results[static_cast<std::size_t>(t)];
    ASSERT_EQ(r.size(), reference.size()) << "thread " << t;
    for (std::size_t i = 0; i < r.size(); ++i) {
      ASSERT_EQ(r[i], reference[i]) << "thread " << t << " param " << i;
    }
  }
}

TEST(Program, SteadyStateReplayIsPayloadAllocationFree) {
  ProgramEnabledGuard on(true);
  const int64_t m = 4;
  const auto net_cfg = small_net_config(m);
  const auto cfg = small_train_config();

  util::Rng rng(23);
  mosaic::Sdnet net(net_cfg, rng);
  gp::LaplaceDatasetGenerator gen(m, {}, 41);
  auto bvps = gen.generate_many(4);
  optim::Adam opt(net.parameters(), 1e-3);

  mosaic::CompiledTrainStep cstep(net, cfg);
  auto one = [&] {
    auto batch = gen.make_batch(bvps, cfg.q_data, cfg.q_colloc);
    cstep.run(batch);
    opt.step();
  };
  for (int i = 0; i < 3; ++i) one();  // capture + warm the pool
  const ad::PoolStats p0 = ad::PayloadPool::stats();
  for (int i = 0; i < 5; ++i) one();
  const ad::PoolStats p1 = ad::PayloadPool::stats();
  EXPECT_EQ(p1.fresh_allocs() + p1.adopted, p0.fresh_allocs() + p0.adopted)
      << "steady-state replay must not allocate payloads";
}

}  // namespace
