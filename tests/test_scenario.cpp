// Scenario axis: masked (non-rectangular) domains, heterogeneous
// neural/classical lattices, the variable-coefficient and upwinded
// convection–diffusion operator family, and the on-disk model zoo
// manifest the solve server loads.
//
// The masked predictor's reference is the same problem embedded in the
// full rectangle: a StencilOperator over the whole grid with the
// inactive points pinned at 0 is exactly the masked BVP, so the lattice
// solve and a direct stencil solve must agree to solver tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "ad/dtype.hpp"
#include "ad/engine.hpp"
#include "ad/gradcheck.hpp"
#include "ad/ops.hpp"
#include "ad/program.hpp"
#include "gp/dataset.hpp"
#include "linalg/multigrid.hpp"
#include "linalg/stencil.hpp"
#include "mosaic/loss.hpp"
#include "mosaic/scenario_predictor.hpp"
#include "mosaic/subdomain_solver.hpp"
#include "mosaic/trainer.hpp"
#include "nn/serialize.hpp"
#include "scenario/scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace mf;
using ad::Tensor;
namespace ops = ad::ops;

Tensor randt(const ad::Shape& shape, unsigned seed, double lo = -1.0,
             double hi = 1.0) {
  util::Rng rng(seed);
  Tensor t = Tensor::zeros(shape);
  for (int64_t i = 0; i < t.numel(); ++i) t.flat(i) = rng.uniform(lo, hi);
  return t;
}

/// RAII override of the process-wide precision policy.
class PrecisionGuard {
 public:
  explicit PrecisionGuard(ad::DType dt) : prev_(ad::set_compute_dtype(dt)) {}
  ~PrecisionGuard() { ad::set_compute_dtype(prev_); }

 private:
  ad::DType prev_;
};

/// Direct solve of the masked Poisson problem embedded in the full
/// rectangle: boundary data applied, masked points pinned at 0, stencil
/// CG to tight tolerance.
linalg::Grid2D masked_reference(const scenario::Field& field, int64_t cells,
                                const std::vector<double>& boundary,
                                int64_t m) {
  linalg::Grid2D ref(cells + 1, cells + 1);
  std::vector<double> b = boundary;
  scenario::zero_masked_boundary(b, field.mask);
  linalg::apply_perimeter(ref, b);
  const linalg::StencilOperator op =
      scenario::field_operator(field, 1.0 / static_cast<double>(m));
  const linalg::Grid2D zero_rhs(cells + 1, cells + 1);
  EXPECT_GE(linalg::stencil_solve(op, ref, zero_rhs, 1e-11, 40000), 0);
  return ref;
}

// ---------------------------------------------------------------------
// Masked lattices
// ---------------------------------------------------------------------

TEST(MaskedPredictor, LShapeMatchesEmbeddedStencilReference) {
  const int64_t m = 4, cells = 16;
  scenario::Field field;
  field.kind = scenario::Kind::kMasked;
  field.mask = scenario::DomainMask::l_shape(cells, cells, m / 2);
  ASSERT_FALSE(field.mask.full());

  auto boundary = gp::sin_boundary(cells + 1, cells + 1);
  const linalg::Grid2D ref = masked_reference(field, cells, boundary, m);

  mosaic::HarmonicKernelSolver exact(m);
  mosaic::ScenarioSolveOptions opts;
  opts.mfp.max_iters = 2000;
  opts.mfp.tol = 1e-9;
  auto result =
      mosaic::mosaic_predict_scenario(exact, field, cells, cells, boundary, opts);

  EXPECT_GT(result.iterations, 0);
  EXPECT_LT(linalg::Grid2D::mean_abs_diff(result.solution, ref), 1e-5);
  // Masked points are Dirichlet pins: exactly zero in the solution.
  for (int64_t gy = 0; gy <= cells; ++gy) {
    for (int64_t gx = 0; gx <= cells; ++gx) {
      if (!field.mask.point_active(gx, gy)) {
        EXPECT_EQ(result.solution.at(gx, gy), 0.0) << gx << "," << gy;
      }
    }
  }
}

TEST(MaskedPredictor, HoledDomainMatchesEmbeddedStencilReference) {
  const int64_t m = 4, cells = 16;
  scenario::Field field;
  field.kind = scenario::Kind::kMasked;
  field.mask = scenario::DomainMask::with_hole(cells, cells, m / 2);
  ASSERT_FALSE(field.mask.full());

  auto boundary = gp::sin_boundary(cells + 1, cells + 1);
  const linalg::Grid2D ref = masked_reference(field, cells, boundary, m);

  mosaic::HarmonicKernelSolver exact(m);
  mosaic::ScenarioSolveOptions opts;
  opts.mfp.max_iters = 2000;
  opts.mfp.tol = 1e-9;
  auto result =
      mosaic::mosaic_predict_scenario(exact, field, cells, cells, boundary, opts);
  EXPECT_LT(linalg::Grid2D::mean_abs_diff(result.solution, ref), 1e-5);
}

TEST(MaskedPredictor, FullMaskMatchesUnmaskedRectangle) {
  // A defined-but-all-active mask must reproduce the plain rectangle
  // solve: same lattice, same phases, no masked exclusions anywhere.
  const int64_t m = 4, cells = 16;
  scenario::Field field;
  field.kind = scenario::Kind::kMasked;
  field.mask = scenario::DomainMask::full_mask(cells, cells);
  ASSERT_TRUE(field.mask.full());

  auto boundary = gp::sin_boundary(cells + 1, cells + 1);
  mosaic::HarmonicKernelSolver exact(m);
  mosaic::ScenarioSolveOptions opts;
  opts.mfp.max_iters = 2000;
  opts.mfp.tol = 1e-9;
  auto masked = mosaic::mosaic_predict_scenario(exact, field, cells, cells,
                                                boundary, opts);
  auto plain = mosaic::mosaic_predict(exact, cells, cells, boundary, opts.mfp);
  EXPECT_LT(linalg::Grid2D::mean_abs_diff(masked.solution, plain.solution),
            1e-9);
}

// ---------------------------------------------------------------------
// Heterogeneous lattices
// ---------------------------------------------------------------------

TEST(HeterogeneousLattice, NeuralPlusClassicalConverges) {
  // Left half of the lattice solved by the "neural" solver (the exact
  // harmonic kernel standing in for a perfectly trained SDNet), right
  // half by the classical multigrid subdomain solver. Both solve the
  // same operator, so the mixed lattice must converge to the global
  // multigrid solution.
  const int64_t m = 4, cells = 16;
  scenario::Field field;  // plain Poisson, full rectangle

  auto boundary = gp::sin_boundary(cells + 1, cells + 1);
  linalg::Grid2D ref(cells + 1, cells + 1);
  linalg::apply_perimeter(ref, boundary);
  linalg::solve_laplace_mg(ref, 1.0 / static_cast<double>(m));

  mosaic::HarmonicKernelSolver neural(m);
  mosaic::MultigridSubdomainSolver classical(m);
  mosaic::ScenarioSolveOptions opts;
  opts.mfp.max_iters = 2000;
  opts.mfp.tol = 1e-9;
  opts.classical = &classical;
  opts.use_classical = [cells](int64_t gx, int64_t) {
    return gx < cells / 2;
  };
  auto result = mosaic::mosaic_predict_scenario(neural, field, cells, cells,
                                                boundary, opts);
  EXPECT_GT(result.iterations, 0);
  EXPECT_LT(linalg::Grid2D::mean_abs_diff(result.solution, ref), 1e-5);
}

// ---------------------------------------------------------------------
// Variable-coefficient / convection–diffusion end to end
// ---------------------------------------------------------------------

TEST(ScenarioEndToEnd, TinyTrainedModelsSolveVarcoefAndConvdiff) {
  // The real pipeline at toy scale: per-scenario dataset generation with
  // stencil ground truth and widened conditioning, a few epochs of
  // training, then the scenario predictor against the direct stencil
  // solve. The quality bar is loose (a tiny net, two epochs) — this
  // pins the plumbing end to end, the fig7 scenario gates in CI pin the
  // quality trajectory.
  const int64_t m = 4, cells = 8;
  for (auto kind : {scenario::Kind::kVarCoef, scenario::Kind::kConvDiff}) {
    SCOPED_TRACE(scenario::kind_name(kind));
    gp::LaplaceDatasetGenerator gen(m, {}, 5, kind);
    auto train = gen.generate_many(6);
    auto val = gen.generate_many(2);

    mosaic::SdnetConfig net_cfg;
    net_cfg.boundary_size = scenario::conditioning_size(kind, m);
    net_cfg.hidden_width = 16;
    net_cfg.mlp_depth = 2;
    util::Rng rng(42);
    auto net = std::make_shared<mosaic::Sdnet>(net_cfg, rng);

    mosaic::TrainConfig cfg;
    cfg.epochs = 3;
    cfg.batch_size = 4;
    cfg.q_data = 8;
    cfg.q_colloc = 4;
    auto history = mosaic::train_sdnet(*net, train, val, cfg, gen);
    ASSERT_FALSE(history.empty());
    EXPECT_TRUE(std::isfinite(history.back().val_mse));

    util::Rng field_rng(7);
    const scenario::Field field =
        scenario::sample_field(kind, cells, cells, field_rng);
    auto boundary = gp::sin_boundary(cells + 1, cells + 1);

    linalg::Grid2D ref(cells + 1, cells + 1);
    linalg::apply_perimeter(ref, boundary);
    const linalg::StencilOperator op =
        scenario::field_operator(field, 1.0 / static_cast<double>(m));
    const linalg::Grid2D zero_rhs(cells + 1, cells + 1);
    ASSERT_GE(linalg::stencil_solve(op, ref, zero_rhs, 1e-10, 40000), 0);

    mosaic::NeuralSubdomainSolver solver(net, m);
    mosaic::ScenarioSolveOptions opts;
    opts.mfp.max_iters = 400;
    opts.mfp.tol = 1e-5;
    opts.mfp.relaxation = 0.5;
    auto result = mosaic::mosaic_predict_scenario(solver, field, cells, cells,
                                                  boundary, opts);
    EXPECT_GT(result.iterations, 0);
    for (int64_t i = 0; i < result.solution.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(result.solution.data()[i])) << "i=" << i;
    }
    // Barely-trained net: just require the prediction to be in the same
    // ballpark as the reference, not diverged.
    EXPECT_LT(linalg::Grid2D::mean_abs_diff(result.solution, ref), 0.5);
  }
}

// ---------------------------------------------------------------------
// Upwind PDE loss through captured plans
// ---------------------------------------------------------------------

/// [B, q, 5] constant coefficients for a pure-advection-over-diffusion
/// residual: k = 1, ∇k = 0, constant drift — the upwinded convdiff
/// training configuration.
Tensor convdiff_coeffs(int64_t B, int64_t q, double vx, double vy) {
  Tensor c = Tensor::zeros({B, q, 5});
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t i = 0; i < q; ++i) {
      c.flat((b * q + i) * 5 + 0) = 1.0;
      c.flat((b * q + i) * 5 + 3) = vx;
      c.flat((b * q + i) * 5 + 4) = vy;
    }
  }
  return c;
}

TEST(ScenarioLoss, UpwindResidualGradcheckWrtParameters) {
  // Gradcheck of the upwinded residual loss against finite differences
  // w.r.t. a network parameter — the gradient the optimizer actually
  // consumes during scenario training (second-order: the loss already
  // contains d u/d x under create_graph).
  const int64_t m = 4;
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = scenario::conditioning_size(scenario::Kind::kConvDiff, m);
  cfg.hidden_width = 12;
  cfg.mlp_depth = 2;
  util::Rng rng(11);
  mosaic::Sdnet net(cfg, rng);

  const int64_t B = 2, q = 3;
  Tensor g0 = randt({B, cfg.boundary_size}, 13);
  Tensor xc = randt({B, q, 2}, 14, 0.3, 0.7);
  Tensor coeffs = convdiff_coeffs(B, q, 2.5, -1.5);

  // ad::gradcheck disables grad recording during its FD phase, which a
  // loss that internally calls ad::grad (this one) cannot survive —
  // hand-roll the central differences instead, like the
  // network_laplacian FD test does.
  auto eval = [&] {
    Tensor x = xc.detach();
    x.set_requires_grad(true);
    return mosaic::scenario_pde_loss(net, g0, x, coeffs);
  };
  net.zero_grad();
  Tensor loss = eval();
  ad::backward(loss);

  auto params = net.parameters();
  ASSERT_FALSE(params.empty());
  const double eps = 1e-5;
  int checked = 0;
  for (Tensor w : {params[0], params.back()}) {
    // The output layer's bias is additive in u, so every derivative of
    // u — and hence the residual — is genuinely independent of it.
    if (!w.grad().defined()) continue;
    ++checked;
    for (int64_t j : {int64_t{0}, w.numel() / 2, w.numel() - 1}) {
      const double analytic = w.grad().flat(j);
      const double w0 = w.flat(j);
      w.flat(j) = w0 + eps;
      const double lp = eval().item();
      w.flat(j) = w0 - eps;
      const double lm = eval().item();
      w.flat(j) = w0;
      const double fd = (lp - lm) / (2 * eps);
      EXPECT_NEAR(analytic, fd, 1e-5 * std::max(1.0, std::abs(fd)))
          << "param flat index " << j;
    }
  }
  EXPECT_GE(checked, 1);
}

TEST(ScenarioLoss, UpwindGradThroughCapturedPlanMatchesFiniteDifference) {
  // Capture forward+backward of the convdiff residual loss into a plan,
  // then finite-difference a parameter through plan *replays*: the
  // compiled gradient must match the compiled loss surface.
  const int64_t m = 4;
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = scenario::conditioning_size(scenario::Kind::kConvDiff, m);
  cfg.hidden_width = 12;
  cfg.mlp_depth = 2;
  util::Rng rng(21);
  mosaic::Sdnet net(cfg, rng);

  const int64_t B = 2, q = 3;
  Tensor g0 = randt({B, cfg.boundary_size}, 23);
  Tensor xc = randt({B, q, 2}, 24, 0.3, 0.7);
  Tensor coeffs = convdiff_coeffs(B, q, 3.0, -2.0);

  ad::Program program;
  Tensor loss;
  program.capture([&] {
    Tensor x = xc.detach();
    x.set_requires_grad(true);
    loss = mosaic::scenario_pde_loss(net, g0, x, coeffs);
    net.zero_grad();
    ad::backward(loss);
  });
  ASSERT_TRUE(program.captured());

  auto params = net.parameters();
  ASSERT_FALSE(params.empty());
  Tensor w = params[0];
  program.replay();
  ASSERT_TRUE(w.grad().defined());
  const double f64_loss = loss.item();
  EXPECT_TRUE(std::isfinite(f64_loss));

  const double eps = 1e-6;
  for (int64_t j : {int64_t{0}, w.numel() / 2, w.numel() - 1}) {
    program.replay();
    const double analytic = w.grad().flat(j);
    const double w0 = w.flat(j);
    w.flat(j) = w0 + eps;
    program.replay();
    const double lp = loss.item();
    w.flat(j) = w0 - eps;
    program.replay();
    const double lm = loss.item();
    w.flat(j) = w0;
    const double fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(analytic, fd, 1e-4 * std::max(1.0, std::abs(fd)))
        << "param flat index " << j;
  }

  // The same capture at the f32 policy must insert dtype-boundary casts
  // and track the f64 loss to single-precision accuracy.
  {
    PrecisionGuard f32(ad::DType::kF32);
    ad::Program p32;
    p32.set_compute_dtype(ad::DType::kF32);
    Tensor loss32;
    p32.capture([&] {
      Tensor x = xc.detach();
      x.set_requires_grad(true);
      loss32 = mosaic::scenario_pde_loss(net, g0, x, coeffs);
      net.zero_grad();
      ad::backward(loss32);
    });
    ASSERT_TRUE(p32.captured());
    EXPECT_GT(p32.stats().cast_steps, 0u);
    p32.replay();
    EXPECT_TRUE(std::isfinite(loss32.item()));
    EXPECT_NEAR(loss32.item(), f64_loss,
                2e-3 * std::max(1.0, std::abs(f64_loss)));
    for (const auto& p : net.parameters()) {
      if (!p.grad().defined()) continue;
      for (int64_t i = 0; i < p.grad().numel(); ++i) {
        ASSERT_TRUE(std::isfinite(p.grad().flat(i)));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Model zoo manifest
// ---------------------------------------------------------------------

class ZooManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mf_zoo_test_" + std::to_string(::getpid()) + "_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A tiny real checkpoint plus its manifest entry.
  nn::ZooEntry make_entry(const std::string& scenario) {
    mosaic::SdnetConfig cfg;
    cfg.boundary_size =
        scenario::conditioning_size(scenario::kind_from_name(scenario), 4);
    cfg.hidden_width = 8;
    cfg.mlp_depth = 2;
    util::Rng rng(3);
    mosaic::Sdnet net(cfg, rng);
    const std::string fname = scenario + ".params";
    nn::save_parameters(net, (dir_ / fname).string());
    nn::ZooEntry e;
    e.scenario = scenario;
    e.precision = "f64";
    e.params_file = fname;
    e.fingerprint = "seed=3 test";
    e.params_crc = nn::file_crc32((dir_ / fname).string());
    e.config = {{"m", 4},
                {"boundary_size", cfg.boundary_size},
                {"hidden_width", cfg.hidden_width},
                {"mlp_depth", cfg.mlp_depth}};
    return e;
  }

  std::filesystem::path dir_;
};

TEST_F(ZooManifestTest, RoundTripPreservesEveryField) {
  nn::ZooManifest manifest;
  manifest.entries.push_back(make_entry("poisson"));
  manifest.entries.push_back(make_entry("convdiff"));
  nn::save_zoo_manifest(manifest, dir_.string());

  const nn::ZooManifest loaded = nn::load_zoo_manifest(dir_.string());
  ASSERT_EQ(loaded.entries.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& a = manifest.entries[i];
    const auto& b = loaded.entries[i];
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.precision, b.precision);
    EXPECT_EQ(a.params_file, b.params_file);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.params_crc, b.params_crc);
    ASSERT_EQ(a.config.size(), b.config.size());
    for (std::size_t k = 0; k < a.config.size(); ++k) {
      EXPECT_EQ(a.config[k], b.config[k]);
    }
  }
  EXPECT_NE(loaded.find("convdiff"), nullptr);
  EXPECT_EQ(loaded.find("nope"), nullptr);
  EXPECT_EQ(*loaded.entries[0].find_config("m"), 4);
  EXPECT_EQ(loaded.entries[0].find_config("missing"), nullptr);
  EXPECT_THROW(loaded.entries[0].need_config("missing"), std::runtime_error);
}

TEST_F(ZooManifestTest, RejectsBitFlippedCheckpoint) {
  nn::ZooManifest manifest;
  manifest.entries.push_back(make_entry("poisson"));
  nn::save_zoo_manifest(manifest, dir_.string());

  // Flip one byte mid-payload; the manifest CRC must catch it.
  const auto path = dir_ / "poisson.params";
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(64);
  char c;
  f.seekg(64);
  f.get(c);
  f.seekp(64);
  f.put(static_cast<char>(c ^ 0x42));
  f.close();
  EXPECT_THROW(nn::load_zoo_manifest(dir_.string()), std::runtime_error);
  // verify_params=false skips the per-file hash (the trainer's upsert
  // path uses this so a stale sibling cannot block a rewrite).
  EXPECT_NO_THROW(nn::load_zoo_manifest(dir_.string(), false));
}

TEST_F(ZooManifestTest, RejectsTruncatedCheckpointAndManifest) {
  nn::ZooManifest manifest;
  manifest.entries.push_back(make_entry("poisson"));
  nn::save_zoo_manifest(manifest, dir_.string());

  const auto params = dir_ / "poisson.params";
  const auto size = std::filesystem::file_size(params);
  std::filesystem::resize_file(params, size / 2);
  EXPECT_THROW(nn::load_zoo_manifest(dir_.string()), std::runtime_error);

  // Restore the checkpoint, truncate the manifest container itself.
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = scenario::conditioning_size(scenario::Kind::kPoisson, 4);
  cfg.hidden_width = 8;
  cfg.mlp_depth = 2;
  util::Rng rng(3);
  mosaic::Sdnet net(cfg, rng);
  nn::save_parameters(net, params.string());
  const auto mpath = dir_ / "zoo.manifest";
  const auto msize = std::filesystem::file_size(mpath);
  std::filesystem::resize_file(mpath, msize - 5);
  EXPECT_THROW(nn::load_zoo_manifest(dir_.string()), std::runtime_error);
}

TEST_F(ZooManifestTest, RejectsPathEscape) {
  nn::ZooManifest manifest;
  nn::ZooEntry e = make_entry("poisson");
  e.params_file = "../outside.params";
  manifest.entries.push_back(e);
  nn::save_zoo_manifest(manifest, dir_.string());
  EXPECT_THROW(nn::load_zoo_manifest(dir_.string()), std::runtime_error);
}

}  // namespace
