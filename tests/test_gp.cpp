// Data-generation tests: Sobol sequence properties, GP kernel/covariance
// properties, Cholesky, boundary datasets, perimeter round trips.
#include <gtest/gtest.h>

#include <cmath>

#include "gp/dataset.hpp"
#include "gp/gaussian_process.hpp"
#include "gp/sobol.hpp"
#include "linalg/grid2d.hpp"

namespace gp = mf::gp;
namespace la = mf::linalg;

TEST(Sobol, FirstPointsMatchReference) {
  gp::SobolSequence s(2);
  auto p0 = s.next();
  EXPECT_EQ(p0[0], 0.0);
  EXPECT_EQ(p0[1], 0.0);
  auto p1 = s.next();
  EXPECT_NEAR(p1[0], 0.5, 1e-12);
  EXPECT_NEAR(p1[1], 0.5, 1e-12);
  auto p2 = s.next();
  EXPECT_NEAR(p2[0], 0.75, 1e-12);
  EXPECT_NEAR(p2[1], 0.25, 1e-12);
  auto p3 = s.next();
  EXPECT_NEAR(p3[0], 0.25, 1e-12);
  EXPECT_NEAR(p3[1], 0.75, 1e-12);
}

TEST(Sobol, EquidistributionInUnitSquare) {
  // 1024 Sobol points: each quadrant must hold exactly 256.
  gp::SobolSequence s(2);
  int counts[2][2] = {{0, 0}, {0, 0}};
  for (int i = 0; i < 1024; ++i) {
    auto p = s.next();
    counts[p[0] < 0.5 ? 0 : 1][p[1] < 0.5 ? 0 : 1]++;
  }
  EXPECT_EQ(counts[0][0], 256);
  EXPECT_EQ(counts[0][1], 256);
  EXPECT_EQ(counts[1][0], 256);
  EXPECT_EQ(counts[1][1], 256);
}

TEST(Sobol, StratificationPerDimension) {
  gp::SobolSequence s(4);
  const int n = 256;
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < n; ++i) pts.push_back(s.next());
  for (int d = 0; d < 4; ++d) {
    // Every length-1/16 bin holds exactly n/16 points (a (t,m,s)-net
    // property of the one-dimensional projections).
    std::vector<int> bins(16, 0);
    for (const auto& p : pts) {
      bins[static_cast<std::size_t>(std::min(15.0, p[static_cast<std::size_t>(d)] * 16))]++;
    }
    for (int b = 0; b < 16; ++b) EXPECT_EQ(bins[static_cast<std::size_t>(b)], 16)
        << "dim " << d << " bin " << b;
  }
}

TEST(Sobol, InvalidDimensionsThrow) {
  EXPECT_THROW(gp::SobolSequence(0), std::invalid_argument);
  EXPECT_THROW(gp::SobolSequence(9), std::invalid_argument);
}

TEST(Cholesky, ReconstructsMatrix) {
  // A = L L^T for a hand-built SPD matrix.
  const int64_t n = 3;
  std::vector<double> a = {4, 2, 1, 2, 5, 3, 1, 3, 6};
  auto l = gp::cholesky(a, n, 0.0);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j) {
      double s = 0;
      for (int64_t k = 0; k < n; ++k)
        s += l[static_cast<std::size_t>(i * n + k)] * l[static_cast<std::size_t>(j * n + k)];
      EXPECT_NEAR(s, a[static_cast<std::size_t>(i * n + j)], 1e-10);
    }
}

TEST(Cholesky, JitterRescuesSemidefinite) {
  // Rank-1 matrix is PSD but not PD; jitter must rescue it.
  std::vector<double> a = {1, 1, 1, 1};
  auto l = gp::cholesky(a, 2);
  EXPECT_GT(l[0], 0.0);
}

TEST(Kernels, RbfBasicProperties) {
  gp::RbfKernel k{0.3, 2.0};
  EXPECT_NEAR(k(0.5, 0.5), 2.0, 1e-12);          // variance on diagonal
  EXPECT_GT(k(0.1, 0.2), k(0.1, 0.5));           // decays with distance
  EXPECT_NEAR(k(0.1, 0.4), k(0.4, 0.1), 1e-15);  // symmetric
}

TEST(Kernels, PeriodicWrapsAround) {
  gp::PeriodicRbfKernel k{0.3, 1.0};
  // s = 0.01 and t = 0.99 are close on the circle.
  EXPECT_GT(k(0.01, 0.99), k(0.01, 0.5));
  EXPECT_NEAR(k(0.0, 1.0), k(0.0, 0.0), 1e-12);  // exact period
}

TEST(GpSampler, SampleStatisticsMatchKernel) {
  // Variance of samples at a point approximates the kernel variance.
  gp::PeriodicRbfKernel k{0.25, 0.8};
  gp::GpSampler sampler(k, gp::unit_circle_points(16));
  mf::util::Rng rng(7);
  const int trials = 4000;
  double mean = 0, m2 = 0;
  for (int t = 0; t < trials; ++t) {
    const double v = sampler.sample(rng)[3];
    mean += v;
    m2 += v * v;
  }
  mean /= trials;
  const double var = m2 / trials - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 0.8, 0.12);
}

TEST(GpSampler, SmoothnessScalesWithLengthScale) {
  // Longer length scales give smaller mean-square increments.
  mf::util::Rng rng(8);
  auto roughness = [&](double ell) {
    gp::PeriodicRbfKernel k{ell, 1.0};
    gp::GpSampler sampler(k, gp::unit_circle_points(64));
    double acc = 0;
    for (int t = 0; t < 50; ++t) {
      auto s = sampler.sample(rng);
      for (std::size_t i = 1; i < s.size(); ++i) acc += std::pow(s[i] - s[i - 1], 2);
    }
    return acc;
  };
  EXPECT_GT(roughness(0.05), roughness(0.5) * 2);
}

TEST(Perimeter, SizeAndRoundTrip) {
  EXPECT_EQ(la::perimeter_size(5, 5), 16);
  EXPECT_EQ(la::perimeter_size(9, 5), 24);
  la::Grid2D g(5, 4);
  std::vector<double> b(static_cast<std::size_t>(la::perimeter_size(5, 4)));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<double>(i) + 1;
  la::apply_perimeter(g, b);
  EXPECT_EQ(la::extract_perimeter(g), b);
  // Canonical order: first entry is the (0,0) corner.
  EXPECT_EQ(g.at(0, 0), 1.0);
  // Interior untouched.
  EXPECT_EQ(g.at(2, 1), 0.0);
}

TEST(Perimeter, CoordsFollowOrdering) {
  auto pc = la::perimeter_coords(3, 3, 0.5);
  ASSERT_EQ(pc.size(), 8u);
  EXPECT_EQ(pc[0], (std::pair<double, double>{0.0, 0.0}));
  EXPECT_EQ(pc[1], (std::pair<double, double>{0.5, 0.0}));
  EXPECT_EQ(pc[2], (std::pair<double, double>{1.0, 0.0}));  // right edge start
  EXPECT_EQ(pc[4], (std::pair<double, double>{1.0, 1.0}));  // top right
}

TEST(Perimeter, SizeMismatchThrows) {
  la::Grid2D g(4, 4);
  EXPECT_THROW(la::apply_perimeter(g, {1, 2, 3}), std::invalid_argument);
}

TEST(Dataset, GeneratedBvpIsSolved) {
  gp::LaplaceDatasetGenerator gen(8);
  auto bvp = gen.generate();
  EXPECT_EQ(bvp.boundary.size(), 32u);
  EXPECT_EQ(bvp.solution.nx(), 9);
  // The solution must satisfy the discrete Laplace equation.
  mf::linalg::Grid2D f(9, 9);
  EXPECT_LT(la::residual_norm(bvp.solution, f, 1.0 / 8), 1e-8);
  // And carry the boundary on its perimeter.
  EXPECT_EQ(la::extract_perimeter(bvp.solution), bvp.boundary);
}

TEST(Dataset, DistinctBvpsFromSobolSweep) {
  gp::LaplaceDatasetGenerator gen(4);
  auto a = gen.generate();
  auto b = gen.generate();
  double diff = 0;
  for (std::size_t i = 0; i < a.boundary.size(); ++i)
    diff += std::abs(a.boundary[i] - b.boundary[i]);
  EXPECT_GT(diff, 1e-6);
}

TEST(Dataset, BatchShapesAndValues) {
  gp::LaplaceDatasetGenerator gen(4);
  auto bvps = gen.generate_many(3);
  auto batch = gen.make_batch(bvps, 10, 20);
  EXPECT_EQ(batch.g.shape(), (mf::ad::Shape{3, 16}));
  EXPECT_EQ(batch.x_data.shape(), (mf::ad::Shape{3, 10, 2}));
  EXPECT_EQ(batch.y_data.shape(), (mf::ad::Shape{3, 10, 1}));
  EXPECT_EQ(batch.x_colloc.shape(), (mf::ad::Shape{3, 20, 2}));
  // Coordinates within the unit square.
  for (int64_t i = 0; i < batch.x_data.numel(); ++i) {
    EXPECT_GE(batch.x_data.flat(i), 0.0);
    EXPECT_LE(batch.x_data.flat(i), 1.0);
  }
  // Boundary rows match the BVPs.
  for (int64_t k = 0; k < 16; ++k)
    EXPECT_EQ(batch.g.flat(16 + k), bvps[1].boundary[static_cast<std::size_t>(k)]);
}

TEST(Dataset, GlobalDomainGeneration) {
  gp::LaplaceDatasetGenerator gen(8);
  auto bvp = gen.generate_global(32, 16);
  EXPECT_EQ(bvp.solution.nx(), 33);
  EXPECT_EQ(bvp.solution.ny(), 17);
  la::Grid2D f(33, 17);
  EXPECT_LT(la::residual_norm(bvp.solution, f, 1.0 / 8), 1e-8);
}

TEST(Dataset, SinBoundaryMatchesFormula) {
  auto b = gp::sin_boundary(9, 9);
  EXPECT_NEAR(b[0], 0.0, 1e-12);
  EXPECT_NEAR(b[2], 1.0, 1e-12);  // sin(pi/2) at x = 1/4
  // Non-bottom edges are zero.
  for (std::size_t i = 8; i < b.size(); ++i) EXPECT_EQ(b[i], 0.0);
}
