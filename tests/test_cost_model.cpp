// Validates the paper's Sec. 4.3 cost analysis against measured
// communication statistics of the distributed predictor:
//   C_comm = 8 I alpha + (1/beta) I (16 N d / sqrt(P))   per processor
//   C_comp = c (d N)^2 / (m^2 P)
// i.e. message count is 8 per iteration independent of N and P (interior
// ranks), halo bytes scale with the processor-subdomain side length
// N / sqrt(P), and compute scales as 1/P.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/world.hpp"
#include "gp/dataset.hpp"
#include "mosaic/distributed_predictor.hpp"

namespace mosaic = mf::mosaic;

namespace {

struct CommProfile {
  std::uint64_t max_msgs = 0;
  std::uint64_t max_bytes = 0;
  double max_modeled = 0;
  int64_t iterations = 0;
  int64_t corner_subdomains = 0;  // per-rank subdomain count (rank 0)
};

CommProfile profile(int ranks, int64_t cells, int64_t m, int64_t iters) {
  mf::gp::LaplaceDatasetGenerator gen(m, {}, 5);
  mf::gp::GpSampler sampler(
      mf::gp::PeriodicRbfKernel{0.3, 0.8},
      mf::gp::unit_circle_points(mf::linalg::perimeter_size(cells + 1, cells + 1)));
  mf::util::Rng rng(5);
  auto boundary = sampler.sample(rng);
  mosaic::HarmonicKernelSolver solver(m);
  mosaic::MfpOptions opts;
  opts.max_iters = iters;
  opts.tol = 0;

  mf::comm::CartesianGrid grid(ranks);
  mf::comm::World world(ranks);
  CommProfile p;
  std::vector<mf::comm::CommStats> stats(static_cast<std::size_t>(ranks));
  world.run([&](mf::comm::Comm& c) {
    auto r = mosaic::distributed_mosaic_predict(c, grid, solver, cells, cells,
                                                boundary, opts);
    stats[static_cast<std::size_t>(c.rank())] = c.stats();
    if (c.rank() == 0) p.iterations = r.iterations;
  });
  for (const auto& s : stats) {
    p.max_msgs = std::max(p.max_msgs, s.sendrecv.messages);
    p.max_bytes = std::max(p.max_bytes, s.sendrecv.bytes);
    p.max_modeled = std::max(p.max_modeled, s.sendrecv.modeled_seconds);
  }
  return p;
}

}  // namespace

TEST(CostModel, MessageCountIsStencilTimesIterations) {
  // A rank with all 8 neighbors receives 8 messages per iteration; the
  // 3x3 grid's center rank has exactly that.
  auto p = profile(/*ranks=*/9, /*cells=*/48, /*m=*/8, /*iters=*/40);
  EXPECT_EQ(p.max_msgs, 8u * 40u);
}

TEST(CostModel, MessageCountIndependentOfDomainSize) {
  // The latency term 8*I*alpha does not depend on N (Sec. 4.3).
  auto small = profile(4, 32, 8, 24);
  auto large = profile(4, 64, 8, 24);
  EXPECT_EQ(small.max_msgs, large.max_msgs);
}

TEST(CostModel, HaloBytesScaleWithSubdomainSide) {
  // Bandwidth term ~ 16 N d / sqrt(P): doubling N should roughly double
  // the per-rank halo traffic (our dirty-triple packing sends 3 doubles
  // per point, a constant factor).
  auto small = profile(4, 32, 8, 24);
  auto large = profile(4, 64, 8, 24);
  const double ratio = static_cast<double>(large.max_bytes) /
                       static_cast<double>(small.max_bytes);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(CostModel, HaloBytesShrinkWithMoreRanks) {
  // At fixed N, the per-rank border length shrinks ~ 1/sqrt(P).
  auto p4 = profile(4, 64, 8, 24);
  auto p16 = profile(16, 64, 8, 24);
  EXPECT_LT(p16.max_bytes, p4.max_bytes);
}

TEST(CostModel, ModeledTimeMatchesAlphaBetaFormula) {
  // modeled_seconds must equal sum over messages of alpha + bytes/beta.
  const mf::comm::AlphaBetaModel model;  // default world model
  auto p = profile(4, 32, 8, 16);
  // Lower bound: latency-only; upper bound: latency + all bytes at once.
  const double lat = model.alpha * static_cast<double>(p.max_msgs);
  EXPECT_GE(p.max_modeled, lat);
  EXPECT_LE(p.max_modeled,
            lat + static_cast<double>(p.max_bytes) / model.beta + 1e-12);
}

TEST(CostModel, EdgeRanksSendFewerMessages) {
  // Ranks on the processor-grid boundary have < 8 neighbors (paper: "for
  // processors on the four boundaries, the communication group will not
  // include all 9 processors").
  const int ranks = 4;  // 2x2: every rank is a corner with 3 neighbors
  auto p = profile(ranks, 32, 8, 20);
  EXPECT_EQ(p.max_msgs, 3u * 20u);
}
