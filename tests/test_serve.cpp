// Multi-tenant solve server tests: batch-composition invariance (server
// results bitwise-identical to solo mosaic_predict runs), deterministic
// scheduling, concurrent plan-cache use with seeded health retirement,
// inference-cache observability counters, and deadline enforcement with
// an injected clock.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ad/dtype.hpp"
#include "ad/program.hpp"
#include "mosaic/predictor.hpp"
#include "mosaic/subdomain_solver.hpp"
#include "serve/request_gen.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"

namespace ad = mf::ad;
namespace mosaic = mf::mosaic;
namespace serve = mf::serve;

namespace {

/// The bitwise server-vs-solo guarantee only holds in full f64: under
/// f32 compute the eager and replayed paths round differently, so pin
/// the dtype for every test in this file.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { prev_ = ad::set_compute_dtype(ad::DType::kF64); }
  void TearDown() override { ad::set_compute_dtype(prev_); }

 private:
  ad::DType prev_ = ad::DType::kF64;
};

/// Re-enable (or disable) the health sentinel for one test body.
struct HealthGuard {
  explicit HealthGuard(bool on) : prev_(ad::health_checks_set_enabled(on)) {}
  ~HealthGuard() { ad::health_checks_set_enabled(prev_); }

 private:
  bool prev_;
};

mosaic::SdnetConfig tiny_config() {
  mosaic::SdnetConfig cfg;
  cfg.hidden_width = 8;
  cfg.mlp_depth = 2;
  return cfg;
}

std::vector<serve::GeometrySpec> tiny_specs(std::size_t tenants) {
  std::vector<serve::GeometrySpec> specs;
  for (std::size_t i = 0; i < tenants; ++i) {
    serve::GeometrySpec s;
    s.zoo_index = static_cast<int>(i);
    s.m = 4;
    s.nx_cells = (i % 2 == 0) ? 8 : 12;
    s.ny_cells = 8;
    specs.push_back(s);
  }
  return specs;
}

std::vector<serve::SolveRequest> tiny_requests(std::size_t tenants,
                                               int64_t n,
                                               std::uint64_t seed = 99) {
  serve::RequestGenConfig cfg;
  cfg.seed = seed;
  cfg.rate_hz = 1000;
  cfg.min_cycles = 2;
  cfg.max_cycles = 3;
  cfg.deadline_ms_min = 1e6;  // effectively no deadline
  cfg.deadline_ms_max = 1e6;
  serve::RequestGenerator gen(tiny_specs(tenants), cfg);
  return gen.generate(n);
}

bool grids_bitwise_equal(const mf::linalg::Grid2D& a,
                         const mf::linalg::Grid2D& b) {
  if (a.nx() != b.nx() || a.ny() != b.ny()) return false;
  return std::memcmp(a.vec().data(), b.vec().data(),
                     a.vec().size() * sizeof(double)) == 0;
}

}  // namespace

// The acceptance property: serving a request in a shared cross-request
// batch must produce exactly the bits that running it alone through
// mosaic_predict produces, iteration count included.
TEST_F(ServeTest, ServerMatchesSoloRunBitwise) {
  auto zoo = serve::make_model_zoo({4, 4}, tiny_config(), 7);
  auto requests = tiny_requests(zoo.size(), 10);

  serve::ServeOptions opts;
  opts.threads = 1;
  opts.max_inflight = 6;
  opts.pad_to = 4;
  opts.realtime = false;
  serve::SolveServer server(zoo, opts);
  auto results = server.run(requests);
  ASSERT_EQ(results.size(), requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& req = requests[i];
    mosaic::MfpOptions solo;
    solo.max_iters = req.max_iters;
    solo.tol = req.tol;
    auto ref = mosaic::mosaic_predict(
        *zoo[static_cast<std::size_t>(req.zoo_index)].solver, req.nx_cells,
        req.ny_cells, req.boundary, solo);
    EXPECT_EQ(results[i].record.id, req.id);
    EXPECT_EQ(results[i].record.iterations, ref.iterations)
        << "request " << i;
    EXPECT_TRUE(grids_bitwise_equal(results[i].solution, ref.solution))
        << "request " << i;
  }
}

// Disabling batching (the per-job hatch) must not change a single bit.
TEST_F(ServeTest, BatchingHatchBitwiseIdentical) {
  auto zoo = serve::make_model_zoo({4, 4}, tiny_config(), 7);
  auto requests = tiny_requests(zoo.size(), 8);

  auto run = [&](bool batching) {
    serve::ServeOptions opts;
    opts.threads = 1;
    opts.batching = batching;
    opts.realtime = false;
    serve::SolveServer server(zoo, opts);
    return server.run(requests);
  };
  auto batched = run(true);
  auto hatch = run(false);
  ASSERT_EQ(batched.size(), hatch.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].record.iterations, hatch[i].record.iterations);
    EXPECT_TRUE(grids_bitwise_equal(batched[i].solution, hatch[i].solution));
  }
}

// Same seed, same config, two runs with multiple workers: identical
// per-request iteration counts and solutions regardless of thread
// timing (jobs are partitioned dynamically, but every job's trajectory
// is independent of its batch-mates).
TEST_F(ServeTest, DeterministicAcrossRerunsAndWorkers) {
  auto zoo = serve::make_model_zoo({4, 4, 4}, tiny_config(), 11);
  auto requests = tiny_requests(zoo.size(), 18);

  auto run = [&](int threads) {
    serve::ServeOptions opts;
    opts.threads = threads;
    opts.max_inflight = 4;
    opts.realtime = false;
    serve::SolveServer server(zoo, opts);
    return server.run(requests);
  };
  auto a = run(2);
  auto b = run(2);
  auto serial = run(1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].record.iterations, b[i].record.iterations) << i;
    EXPECT_EQ(a[i].record.iterations, serial[i].record.iterations) << i;
    EXPECT_TRUE(grids_bitwise_equal(a[i].solution, b[i].solution)) << i;
    EXPECT_TRUE(grids_bitwise_equal(a[i].solution, serial[i].solution)) << i;
  }
}

// Concurrent plan-cache hammer: several worker threads, mixed
// geometries, and one tenant whose net is poisoned so the health
// sentinel retires its plans mid-run. Results must still match the
// serial run bitwise, and the retirement must show up in the
// process-global cache counters.
TEST_F(ServeTest, ConcurrentCacheWithHealthRetirementMatchesSerial) {
  HealthGuard health(true);
  auto zoo = serve::make_model_zoo({4, 4, 4}, tiny_config(), 13);
  {
    // Poison tenant 1: an output bias of 1e120 pushes every prediction
    // past the sentinel's 1e100 divergence bound (still finite in f64),
    // so the first replay of each of its plans trips and retires.
    mf::util::Rng rng(13 + 1);
    mosaic::SdnetConfig cfg = tiny_config();
    cfg.boundary_size = 4 * 4;
    auto poisoned = std::make_shared<mosaic::Sdnet>(cfg, rng);
    auto params = poisoned->parameters();
    ASSERT_FALSE(params.empty());
    ad::Tensor out_bias = params.back();
    for (int64_t k = 0; k < out_bias.numel(); ++k) out_bias.flat(k) = 1e120;
    zoo[1].net = poisoned;
    zoo[1].solver =
        std::make_shared<mosaic::NeuralSubdomainSolver>(zoo[1].net, zoo[1].m);
  }
  auto requests = tiny_requests(zoo.size(), 24, /*seed=*/5);

  mosaic::infer_cache_stats_reset();
  auto run = [&](int threads) {
    serve::ServeOptions opts;
    opts.threads = threads;
    opts.max_inflight = 4;
    opts.realtime = false;
    serve::SolveServer server(zoo, opts);
    return server.run(requests);
  };
  auto concurrent = run(4);
  const auto stats = mosaic::infer_cache_stats();
  EXPECT_GT(stats.retired, 0u);

  auto serial = run(1);
  ASSERT_EQ(concurrent.size(), serial.size());
  for (std::size_t i = 0; i < concurrent.size(); ++i) {
    EXPECT_EQ(concurrent[i].record.iterations, serial[i].record.iterations)
        << i;
    EXPECT_TRUE(grids_bitwise_equal(concurrent[i].solution,
                                    serial[i].solution))
        << i;
  }
}

// Observability: a batched server run must account its traffic in the
// inference-cache counters and the scheduler counters.
TEST_F(ServeTest, CacheAndSchedulerCountersObserved) {
  auto zoo = serve::make_model_zoo({4, 4}, tiny_config(), 17);
  auto requests = tiny_requests(zoo.size(), 12);

  mosaic::infer_cache_stats_reset();
  serve::ServeOptions opts;
  opts.threads = 1;
  opts.max_inflight = 6;
  opts.warm_batch = 4;
  opts.realtime = false;
  serve::SolveServer server(zoo, opts);
  server.run(requests);

  // Scheduler construction must have reserved room for every tenant's
  // hot plans (cross @ warm, cross @ 1, interior @ 1).
  EXPECT_GE(mosaic::infer_cache_capacity(), 3 * zoo.size() + 4);

  const auto stats = mosaic::infer_cache_stats();
  EXPECT_GT(stats.captures, 0u);  // warm-up captured per-tenant plans
  EXPECT_GT(stats.widened_hits + stats.exact_hits, 0u);
  // Base-1 warmed plans cover every batch size whole: traffic must not
  // fall back to chunked eager remainders.
  EXPECT_EQ(stats.widen_remainder_rows, 0u);
  EXPECT_EQ(stats.retired, 0u);

  const auto& c = server.stats().counters();
  EXPECT_EQ(c.admitted, static_cast<std::uint64_t>(requests.size()));
  EXPECT_EQ(c.retired, static_cast<std::uint64_t>(requests.size()));
  EXPECT_GT(c.shared_batches, 0u);
  EXPECT_GT(c.batched_rows, 0u);
  EXPECT_GT(c.ticks, 0u);
}

// Deadline enforcement at iteration boundaries, driven by an injected
// clock: kRetire ships the current state immediately, kAccount keeps
// iterating and counts degraded iterations (PR 8 semantics).
TEST_F(ServeTest, DeadlineRetireAndAccountWithInjectedClock) {
  auto zoo = serve::make_model_zoo({4}, tiny_config(), 23);
  auto requests = tiny_requests(zoo.size(), 2, /*seed=*/3);
  for (auto& req : requests) {
    req.arrival_s = 0;
    req.deadline_ms = 5;
    req.max_iters = 40;
    req.tol = 0;  // never converges: only the deadline can stop it early
  }

  for (const bool retire : {true, false}) {
    double now = 0.0;
    serve::ServeOptions opts;
    opts.threads = 1;
    opts.realtime = false;
    opts.deadline_action =
        retire ? serve::DeadlineAction::kRetire : serve::DeadlineAction::kAccount;
    // Each clock() call advances time 2 ms, so the 5 ms deadline blows
    // a few ticks in.
    opts.clock = [&now] {
      now += 2e-3;
      return now;
    };
    serve::SolveServer server(zoo, opts);
    auto results = server.run(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (const auto& res : results) {
      EXPECT_TRUE(res.record.deadline_missed);
      EXPECT_FALSE(res.record.converged);
      if (retire) {
        EXPECT_LT(res.record.iterations, 40);
      } else {
        EXPECT_EQ(res.record.iterations, 40);
        EXPECT_GT(res.record.degraded_iterations, 0);
      }
    }
    const auto& c = server.stats().counters();
    EXPECT_EQ(c.deadline_misses, static_cast<std::uint64_t>(requests.size()));
  }
}
