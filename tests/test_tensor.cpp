// Unit tests for the tensor substrate: construction, shape utilities,
// element access, memory tracking.
#include <gtest/gtest.h>

#include "ad/ops.hpp"
#include "ad/tensor.hpp"

namespace ad = mf::ad;
using ad::Shape;
using ad::Tensor;

TEST(Shape, NumelAndStrides) {
  EXPECT_EQ(ad::numel_of({2, 3, 4}), 24);
  EXPECT_EQ(ad::numel_of({}), 1);
  const auto s = ad::strides_of({2, 3, 4});
  EXPECT_EQ(s, (std::vector<int64_t>{12, 4, 1}));
}

TEST(Tensor, ZerosOnesFull) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(z.flat(i), 0.0);
  Tensor o = Tensor::ones({4});
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(o.flat(i), 1.0);
  Tensor f = Tensor::full({2, 2}, 3.5);
  EXPECT_EQ(f.at({1, 1}), 3.5);
}

TEST(Tensor, FromVectorShapeMismatchThrows) {
  EXPECT_THROW(Tensor::from_vector({1, 2, 3}, {2, 2}), std::invalid_argument);
}

TEST(Tensor, ScalarItem) {
  Tensor s = Tensor::scalar(7.25);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.item(), 7.25);
  Tensor v = Tensor::zeros({3});
  EXPECT_THROW(v.item(), std::logic_error);
}

TEST(Tensor, AtMultiIndex) {
  Tensor t = Tensor::from_vector({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(t.at({0, 0}), 1);
  EXPECT_EQ(t.at({0, 2}), 3);
  EXPECT_EQ(t.at({1, 0}), 4);
  EXPECT_EQ(t.at({1, 2}), 6);
}

TEST(Tensor, SizeNegativeAxis) {
  Tensor t = Tensor::zeros({2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
  EXPECT_THROW(t.size(3), std::out_of_range);
}

TEST(Tensor, DetachSharesNothing) {
  Tensor a = Tensor::ones({2});
  a.set_requires_grad(true);
  Tensor d = a.detach();
  EXPECT_FALSE(d.requires_grad());
  d.flat(0) = 5;
  EXPECT_EQ(a.flat(0), 1.0);
}

TEST(MemoryTracker, TracksLiveAndPeak) {
  auto& mt = ad::MemoryTracker::instance();
  const std::size_t before = mt.live_bytes();
  mt.reset_peak();
  {
    Tensor t = Tensor::zeros({1000});
    EXPECT_EQ(mt.live_bytes(), before + 1000 * sizeof(double));
    EXPECT_GE(mt.peak_bytes(), before + 1000 * sizeof(double));
  }
  EXPECT_EQ(mt.live_bytes(), before);
  // Peak persists after free.
  EXPECT_GE(mt.peak_bytes(), before + 1000 * sizeof(double));
}

TEST(MemoryTracker, PeakGrowsWithGraph) {
  auto& mt = ad::MemoryTracker::instance();
  mt.reset_peak();
  const std::size_t base = mt.peak_bytes();
  {
    Tensor x = Tensor::ones({256});
    x.set_requires_grad(true);
    Tensor y = x;
    for (int i = 0; i < 10; ++i) y = ad::ops::mul(y, y);
    // 10 intermediate tensors of 256 doubles must be retained by the graph.
    EXPECT_GE(mt.peak_bytes(), base + 10 * 256 * sizeof(double));
  }
}

TEST(GradMode, GuardRestores) {
  EXPECT_TRUE(ad::GradMode::enabled());
  {
    ad::NoGradGuard g;
    EXPECT_FALSE(ad::GradMode::enabled());
    {
      ad::NoGradGuard g2;
      EXPECT_FALSE(ad::GradMode::enabled());
    }
    EXPECT_FALSE(ad::GradMode::enabled());
  }
  EXPECT_TRUE(ad::GradMode::enabled());
}

TEST(Tensor, RequiresGradOnNonLeafThrows) {
  Tensor a = Tensor::ones({2});
  a.set_requires_grad(true);
  Tensor b = ad::ops::mul(a, a);
  EXPECT_TRUE(b.has_grad_fn());
  EXPECT_THROW(b.set_requires_grad(true), std::logic_error);
}

TEST(ShapeStr, Format) {
  EXPECT_EQ(ad::shape_str({2, 3}), "[2, 3]");
  EXPECT_EQ(ad::shape_str({}), "[]");
}
