// Mixed-precision compute path (MF_PRECISION / ad::DType): the f32
// policy trades bitwise reproducibility for throughput, so its contract
// is different from the rest of the suite:
//
//  * f64 policy (the default) must stay *bitwise* identical to a build
//    without the policy — that is covered by every existing test running
//    unchanged; here we only pin the policy plumbing (no casts inserted,
//    per-dtype plan caches).
//  * f32 kernels are tolerance-gated against f64 but *exactly* equal to
//    their own scalar float reference: the AVX2 lanes and the scalar
//    tails must agree bit-for-bit per dtype, and cast round-trips that
//    mathematics says are exact must be exact.
//  * End to end, an f32 forward must track the f64 one to ~1e-4 — the
//    fig7-style model-quality bar the bench gate enforces in CI.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "ad/dtype.hpp"
#include "ad/engine.hpp"
#include "ad/kernels.hpp"
#include "ad/ops.hpp"
#include "ad/program.hpp"
#include "ad/scalar_fns.hpp"
#include "gp/dataset.hpp"
#include "mosaic/subdomain_solver.hpp"
#include "mosaic/trainer.hpp"
#include "optim/optimizers.hpp"
#include "util/rng.hpp"

namespace {

using namespace mf;
using ad::DType;
using ad::Tensor;
namespace ops = ad::ops;
namespace sfn = ad::sfn;

class ProgramEnabledGuard {
 public:
  explicit ProgramEnabledGuard(bool on) : prev_(ad::program_set_enabled(on)) {}
  ~ProgramEnabledGuard() { ad::program_set_enabled(prev_); }

 private:
  bool prev_;
};

/// RAII override of the process-wide precision policy.
class PrecisionGuard {
 public:
  explicit PrecisionGuard(DType dt) : prev_(ad::set_compute_dtype(dt)) {}
  ~PrecisionGuard() { ad::set_compute_dtype(prev_); }

 private:
  DType prev_;
};

Tensor randt(const ad::Shape& shape, unsigned seed, double lo, double hi) {
  util::Rng rng(seed);
  Tensor t = Tensor::zeros(shape);
  for (int64_t i = 0; i < t.numel(); ++i) t.flat(i) = rng.uniform(lo, hi);
  return t;
}

// ---------------------------------------------------------------------
// Cast kernels: the exactness the shadow-slot validity rule relies on.
// ---------------------------------------------------------------------

TEST(Precision, CastWidenThenNarrowIsIdentity) {
  // Every float is exactly representable as a double, so
  // narrow(widen(x)) == x bitwise — including the scalar tail lanes
  // (n deliberately not a multiple of 8) and non-finite values.
  const int64_t n = 1003;
  util::Rng rng(7);
  std::vector<float> src(static_cast<std::size_t>(n));
  for (auto& v : src) v = static_cast<float>(rng.uniform(-1e6, 1e6));
  src[0] = 0.0f;
  src[1] = -0.0f;
  src[2] = std::numeric_limits<float>::infinity();
  src[3] = -std::numeric_limits<float>::infinity();
  src[4] = std::numeric_limits<float>::denorm_min();
  src[5] = std::numeric_limits<float>::max();

  std::vector<double> wide(static_cast<std::size_t>(n));
  std::vector<float> back(static_cast<std::size_t>(n));
  ad::kernels::cast_buffer(src.data(), wide.data(), n);
  ad::kernels::cast_buffer(wide.data(), back.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(std::memcmp(&src[static_cast<std::size_t>(i)],
                          &back[static_cast<std::size_t>(i)], sizeof(float)),
              0)
        << "i=" << i;
    EXPECT_EQ(wide[static_cast<std::size_t>(i)],
              static_cast<double>(src[static_cast<std::size_t>(i)]));
  }
  // NaN must survive both directions as NaN.
  float nan_f = std::numeric_limits<float>::quiet_NaN();
  double nan_d;
  ad::kernels::cast_buffer(&nan_f, &nan_d, 1);
  EXPECT_TRUE(std::isnan(nan_d));
  ad::kernels::cast_buffer(&nan_d, &nan_f, 1);
  EXPECT_TRUE(std::isnan(nan_f));
}

// ---------------------------------------------------------------------
// Float kernel tier: vector path == scalar float reference, exactly.
// ---------------------------------------------------------------------

TEST(Precision, FloatMapBinaryMatchesScalarReferenceExactly) {
  const int64_t n = 1003;  // odd: exercises the scalar tail
  util::Rng rng(11);
  std::vector<float> a(static_cast<std::size_t>(n)),
      b(static_cast<std::size_t>(n)), out(static_cast<std::size_t>(n));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(0.5, 2.5));

  auto check = [&](auto f, const char* name) {
    ad::kernels::map_binary(a.data(), b.data(), out.data(), n, f);
    for (int64_t i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      ASSERT_EQ(out[u], f(a[u], b[u])) << name << " i=" << i;
    }
  };
  check(sfn::Add{}, "add");
  check(sfn::Sub{}, "sub");
  check(sfn::Mul{}, "mul");
  check(sfn::Div{}, "div");
}

TEST(Precision, FloatFastTanhIsChunkInvariantAndSane) {
  // The float fast-tanh contract mirrors the double one: the vector body
  // and the scalar tail evaluate the same polynomial, so splitting the
  // array at any point must not change a single bit.
  const int64_t n = 517;
  util::Rng rng(13);
  std::vector<float> full(static_cast<std::size_t>(n));
  for (auto& v : full) v = static_cast<float>(rng.uniform(-12.0, 12.0));
  std::vector<float> parts = full;

  ad::kernels::tanh_block_inplace(full.data(), n);
  // Apply in awkward chunk sizes (1, 3, 8, remainder).
  int64_t off = 0;
  for (int64_t c : {int64_t{1}, int64_t{3}, int64_t{8}, n}) {
    const int64_t len = std::min(c, n - off);
    if (len <= 0) break;
    ad::kernels::tanh_block_inplace(parts.data() + off, len);
    off += len;
  }
  ad::kernels::tanh_block_inplace(parts.data() + off, n - off);
  for (int64_t i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    ASSERT_EQ(full[u], parts[u]) << "i=" << i;
  }

  // Range sanity: odd, bounded, saturating, NaN-transparent, and within
  // float rounding of the libm reference.
  float probe[6] = {0.0f, 1e-4f, -0.75f, 30.0f, -30.0f,
                    std::numeric_limits<float>::quiet_NaN()};
  ad::kernels::tanh_block_inplace(probe, 6);
  EXPECT_EQ(probe[0], 0.0f);
  EXPECT_NEAR(probe[1], std::tanh(1e-4f), 1e-7f);
  EXPECT_NEAR(probe[2], std::tanh(-0.75f), 4e-7f);
  EXPECT_EQ(probe[3], 1.0f);
  EXPECT_EQ(probe[4], -1.0f);
  EXPECT_TRUE(std::isnan(probe[5]));
}

TEST(Precision, GeluConstantsAreTypedAtElementWidth) {
  // The f32 path must evaluate float(0.79788...), not round a double
  // intermediate: the typed constants are the single source of truth.
  EXPECT_EQ(sfn::gelu_coeff<float>, static_cast<float>(sfn::gelu_coeff<double>));
  EXPECT_EQ(sfn::gelu_cubic<float>, static_cast<float>(sfn::gelu_cubic<double>));
  EXPECT_EQ(sfn::gelu_coeff<double>, sfn::kGeluCoeff);

  // And the functor applied at float equals the all-float expression.
  const float x = 0.62f;
  const float u =
      sfn::gelu_coeff<float> * (x + sfn::gelu_cubic<float> * x * x * x);
  const float want = 0.5f * x * (1.0f + std::tanh(u));
  EXPECT_EQ(sfn::Gelu{}(x), want);
}

// ---------------------------------------------------------------------
// Program-level policy: f32 plans vs their f64 twins.
// ---------------------------------------------------------------------

TEST(Precision, F32ReplayTracksF64OverShapeZoo) {
  ProgramEnabledGuard on(true);
  ad::NoGradGuard no_grad;
  struct Case {
    const char* name;
    ad::Shape a, b;
  };
  const Case cases[] = {
      {"same", {6, 5}, {6, 5}},          {"row-bcast", {6, 5}, {1, 5}},
      {"col-bcast", {6, 5}, {6, 1}},     {"scalar-bcast", {4, 3, 2}, {1}},
      {"rank-lift", {3, 4, 5}, {4, 5}},  {"vec", {257}, {257}},
  };
  unsigned seed = 100;
  for (const Case& c : cases) {
    Tensor a = randt(c.a, seed++, -1.5, 1.5);
    Tensor b = randt(c.b, seed++, 0.5, 2.0);

    // One composite through elementwise + broadcast + tanh + reduction.
    Tensor z, s;
    auto body = [&] {
      z = ops::tanh(ops::mul(ops::add(a, b), a));
      s = ops::sum(z);
    };

    ad::Program p64;
    p64.capture(body);
    ASSERT_TRUE(p64.captured()) << c.name;
    p64.replay();
    EXPECT_EQ(p64.stats().cast_steps, 0u) << c.name;
    std::vector<double> z64(z.data(), z.data() + z.numel());
    const double s64 = s.item();

    ad::Program p32;
    p32.set_compute_dtype(DType::kF32);
    p32.capture(body);
    ASSERT_TRUE(p32.captured()) << c.name;
    EXPECT_GT(p32.stats().cast_steps, 0u) << c.name;
    p32.replay();
    const double tol = 1e-5;
    for (int64_t i = 0; i < z.numel(); ++i) {
      const double want = z64[static_cast<std::size_t>(i)];
      ASSERT_NEAR(z.flat(i), want, tol * std::max(1.0, std::abs(want)))
          << c.name << " i=" << i;
    }
    EXPECT_NEAR(s.item(), s64,
                tol * std::max(1.0, std::abs(s64)) *
                    std::sqrt(static_cast<double>(z.numel())))
        << c.name;
  }
}

TEST(Precision, F32GradcheckWithLoosenedEps) {
  // Gradients computed by an f32-lowered plan, finite-differenced against
  // the same plan's replayed loss. Float forward noise is ~1e-7 relative,
  // so the step must be much larger than the double-path 1e-6 and the
  // tolerance correspondingly looser.
  ProgramEnabledGuard on(true);
  Tensor x = randt({5, 3}, 31, -1.0, 1.0);
  Tensor w = randt({3, 4}, 32, -0.8, 0.8);
  w.set_requires_grad(true);

  ad::Program p;
  p.set_compute_dtype(DType::kF32);
  Tensor loss;
  p.capture([&] {
    loss = ops::mean(ops::square(ops::tanh(ops::matmul(x, w))));
    w.zero_grad();
    ad::backward(loss);
  });
  ASSERT_TRUE(p.captured());
  p.replay();
  Tensor g = w.grad();
  ASSERT_TRUE(g.defined());
  std::vector<double> analytic(static_cast<std::size_t>(g.numel()));
  for (int64_t j = 0; j < g.numel(); ++j) {
    analytic[static_cast<std::size_t>(j)] = g.flat(j);
  }

  const double eps = 1e-3;
  for (int64_t j = 0; j < w.numel(); ++j) {
    const double w0 = w.flat(j);
    w.flat(j) = w0 + eps;
    p.replay();
    const double lp = loss.item();
    w.flat(j) = w0 - eps;
    p.replay();
    const double lm = loss.item();
    w.flat(j) = w0;
    const double fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(analytic[static_cast<std::size_t>(j)], fd,
                2e-3 * std::max(1.0, std::abs(fd)))
        << "w[" << j << "]";
  }
}

TEST(Precision, PolicySurvivesProgramReset) {
  // set_compute_dtype applies to the *next* capture and must survive
  // reset(): callers configure a program once, then capture/recapture.
  ad::Program p;
  EXPECT_EQ(p.compute_dtype(), DType::kF64);
  p.set_compute_dtype(DType::kF32);
  p.reset();
  EXPECT_EQ(p.compute_dtype(), DType::kF32);
}

// ---------------------------------------------------------------------
// Mosaic plumbing: per-dtype caches and the end-to-end quality bar.
// ---------------------------------------------------------------------

mosaic::SdnetConfig small_net_config(int64_t m) {
  mosaic::SdnetConfig cfg;
  cfg.boundary_size = 4 * m;
  cfg.hidden_width = 16;
  cfg.mlp_depth = 2;
  return cfg;
}

TEST(Precision, PredictCachesPerDtypeAndF32TracksF64) {
  // The fig7-style end-to-end bar: the f32 inference path must match the
  // f64 one to 1e-4 mean absolute difference, and the shape cache must
  // key on dtype so flipping the policy captures a fresh plan instead of
  // replaying one lowered at the other width.
  const int64_t m = 4;
  util::Rng rng(13);
  auto net = std::make_shared<mosaic::Sdnet>(small_net_config(m), rng);
  mosaic::NeuralSubdomainSolver solver(net, m);

  const int64_t G = 4 * m;
  mosaic::QueryList queries;
  for (int k = 0; k < 6; ++k) queries.emplace_back(0.1 + 0.12 * k, 0.4);
  util::Rng brng(17);
  std::vector<std::vector<double>> batch(8);
  for (auto& b : batch) {
    b.resize(static_cast<std::size_t>(G));
    for (auto& v : b) v = brng.uniform(-1.0, 1.0);
  }

  ProgramEnabledGuard on(true);
  std::vector<std::vector<double>> out64, out32;
  const auto st0 = solver.thread_program_stats();
  {
    PrecisionGuard f64(DType::kF64);
    solver.predict(batch, queries, out64);  // first sight: eager
    solver.predict(batch, queries, out64);  // capture (f64)
    solver.predict(batch, queries, out64);  // replay
  }
  {
    PrecisionGuard f32(DType::kF32);
    solver.predict(batch, queries, out32);  // first sight at f32: eager
    solver.predict(batch, queries, out32);  // capture (f32)
    solver.predict(batch, queries, out32);  // replay (f32 plan)
  }
  const auto st1 = solver.thread_program_stats();
  EXPECT_EQ(st1.captures - st0.captures, 2u)
      << "each dtype must capture its own plan";
  EXPECT_GT(st1.cast_steps, 0u);

  double mae = 0.0;
  int64_t cnt = 0;
  for (std::size_t b = 0; b < out64.size(); ++b) {
    for (std::size_t k = 0; k < out64[b].size(); ++k) {
      mae += std::abs(out64[b][k] - out32[b][k]);
      ++cnt;
    }
  }
  mae /= static_cast<double>(cnt);
  EXPECT_LT(mae, 1e-4) << "f32 inference drifted from f64";
}

TEST(Precision, CompiledTrainStepRecapturesOnPolicyFlip) {
  ProgramEnabledGuard on(true);
  const int64_t m = 4;
  mosaic::TrainConfig cfg;
  cfg.q_data = 8;
  cfg.q_colloc = 4;
  cfg.use_pde_loss = true;

  util::Rng rng(7);
  mosaic::Sdnet net(small_net_config(m), rng);
  gp::LaplaceDatasetGenerator gen(m, {}, 11);
  auto bvps = gen.generate_many(4);
  optim::Adam opt(net.parameters(), 1e-3);

  mosaic::CompiledTrainStep cstep(net, cfg);
  auto batch = gen.make_batch(bvps, cfg.q_data, cfg.q_colloc);
  {
    PrecisionGuard f64(DType::kF64);
    cstep.run(batch);
    cstep.run(batch);
    EXPECT_TRUE(cstep.last_was_replay());
    EXPECT_EQ(cstep.program().stats().captures, 1u);
    EXPECT_EQ(cstep.program().stats().cast_steps, 0u);
  }
  {
    PrecisionGuard f32(DType::kF32);
    auto [ld, lp] = cstep.run(batch);  // policy flip: must re-capture
    EXPECT_FALSE(cstep.last_was_replay());
    EXPECT_EQ(cstep.program().stats().captures, 2u);  // re-captured at f32
    EXPECT_GT(cstep.program().stats().cast_steps, 0u);
    EXPECT_TRUE(std::isfinite(ld));
    EXPECT_TRUE(std::isfinite(lp));
    auto [ld2, lp2] = cstep.run(batch);
    EXPECT_TRUE(cstep.last_was_replay());
    EXPECT_TRUE(std::isfinite(ld2));
    EXPECT_TRUE(std::isfinite(lp2));
    opt.step();  // master weights stayed f64: the eager optimizer still works
  }
}

TEST(Precision, F32TrainingTracksF64Losses) {
  // Twin nets, twin batch streams; one compiled at each policy. The f32
  // loss trajectory must track f64 to a few parts in 1e4 over several
  // optimizer steps — master weights and Adam moments stay double, so
  // only forward/backward compute rounds.
  ProgramEnabledGuard on(true);
  const int64_t m = 4;
  mosaic::TrainConfig cfg;
  cfg.q_data = 8;
  cfg.q_colloc = 4;
  cfg.use_pde_loss = true;

  util::Rng rng_a(7), rng_b(7);
  mosaic::Sdnet net_a(small_net_config(m), rng_a);
  mosaic::Sdnet net_b(small_net_config(m), rng_b);
  gp::LaplaceDatasetGenerator gen_a(m, {}, 11), gen_b(m, {}, 11);
  auto bvps_a = gen_a.generate_many(4);
  auto bvps_b = gen_b.generate_many(4);
  optim::Adam opt_a(net_a.parameters(), 1e-3);
  optim::Adam opt_b(net_b.parameters(), 1e-3);

  mosaic::CompiledTrainStep step_a(net_a, cfg);
  mosaic::CompiledTrainStep step_b(net_b, cfg);
  for (int iter = 0; iter < 5; ++iter) {
    auto batch_a = gen_a.make_batch(bvps_a, cfg.q_data, cfg.q_colloc);
    auto batch_b = gen_b.make_batch(bvps_b, cfg.q_data, cfg.q_colloc);
    double ld_a, lp_a, ld_b, lp_b;
    {
      PrecisionGuard f64(DType::kF64);
      std::tie(ld_a, lp_a) = step_a.run(batch_a);
    }
    {
      PrecisionGuard f32(DType::kF32);
      std::tie(ld_b, lp_b) = step_b.run(batch_b);
    }
    EXPECT_NEAR(ld_b, ld_a, 5e-4 * std::max(1.0, std::abs(ld_a)))
        << "iter " << iter;
    EXPECT_NEAR(lp_b, lp_a, 5e-4 * std::max(1.0, std::abs(lp_a)))
        << "iter " << iter;
    opt_a.step();
    opt_b.step();
  }
}

}  // namespace
